// crashdemo: watch failure atomicity at work. A small transaction script
// runs while a power failure is injected after *every single NVRAM write*,
// and each time the machine recovers to an all-or-nothing state — for all
// three atomicity designs. This is the mechanism behind the paper's
// correctness story, made observable.
//
//	go run ./examples/crashdemo
package main

import (
	"fmt"
	"log"

	"repro/ssp"
)

const (
	pageA = ssp.HeapBase + 1*ssp.PageBytes
	pageB = ssp.HeapBase + 2*ssp.PageBytes
)

// The script: three transactions spanning two pages (the multi-page commit
// of the paper's Figure 2, where naive metadata updates would tear).
var script = [][]uint64{
	{pageA + 0, pageA + 64, pageB + 0, pageB + 64}, // Figure 2's example
	{pageA + 0, pageB + 128},
	{pageA + 192},
}

func main() {
	for _, backend := range ssp.Backends() {
		run(backend)
	}
}

func cfg(b ssp.Backend) ssp.Config {
	return ssp.Config{Backend: b, Cores: 1, NVRAMMB: 32, DRAMMB: 2, MaxHeapPages: 256}
}

func run(backend ssp.Backend) {
	// Count the script's NVRAM writes first.
	ref := ssp.MustNew(cfg(backend))
	before := ref.Stats().NVRAMWriteLines
	execute(ref, -1)
	ref.Drain()
	writes := int64(ref.Stats().NVRAMWriteLines - before)

	torn := 0
	for k := int64(0); k <= writes; k++ {
		m := ssp.MustNew(cfg(backend))
		completed := execute(m, k)
		m.Mem().SetWriteTrap(-1)
		if err := m.Recover(); err != nil {
			log.Fatalf("%s: recovery failed at trap %d: %v", backend, k, err)
		}
		m.Heap().EnsureMapped(nil, 1, 2)
		if !consistent(m, completed) {
			torn++
			fmt.Printf("%s: trap %d left a torn state!\n", backend, k)
		}
	}
	fmt.Printf("%-9s: power-failed at %d distinct write points — %d torn states\n",
		backend, writes+1, torn)
	if torn > 0 {
		log.Fatal("failure atomicity violated")
	}
}

// execute runs the script with a trap after k NVRAM writes (-1 = no trap),
// returning how many transactions committed with power still on.
func execute(m *ssp.Machine, k int64) int {
	c := m.Core(0)
	m.Heap().EnsureMapped(nil, 1, 2)
	if k >= 0 {
		m.Mem().SetWriteTrap(k)
	}
	completed := 0
	for i, addrs := range script {
		if m.Mem().PoweredOff() {
			break
		}
		c.Begin()
		for _, va := range addrs {
			c.Store64(va, uint64(i+1))
		}
		c.Commit()
		if !m.Mem().PoweredOff() {
			completed++
		}
	}
	return completed
}

// consistent verifies that the recovered state equals the outcome of some
// prefix of the script — the all-or-nothing contract.
func consistent(m *ssp.Machine, minCompleted int) bool {
	c := m.Core(0)
	for prefix := len(script); prefix >= minCompleted; prefix-- {
		expect := map[uint64]uint64{}
		for i := 0; i < prefix; i++ {
			for _, va := range script[i] {
				expect[va] = uint64(i + 1)
			}
		}
		ok := true
		for _, addrs := range script {
			for _, va := range addrs {
				if c.Load64(va) != expect[va] {
					ok = false
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}
