// kvstore: the persistent memcached-like cache (ssp/kv) under a
// memslap-style SET/GET mix, with an eviction demonstration and crash
// recovery, comparing NVRAM write traffic across all three atomicity
// designs.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"repro/ssp"
	"repro/ssp/kv"
)

func main() {
	for _, backend := range ssp.Backends() {
		run(backend)
	}
}

func run(backend ssp.Backend) {
	m, err := ssp.New(ssp.Config{Backend: backend, Cores: 1})
	if err != nil {
		log.Fatal(err)
	}
	c := m.Core(0)

	c.Begin()
	cache := kv.Create(c, m.Heap(), kv.Config{Buckets: 256, Capacity: 500, ValueBytes: 64})
	m.SetRoot(c, 0, cache.Head())
	c.Commit()

	// 90% SET / 10% GET over a key space twice the capacity, so the cache
	// churns through evictions like a real memcached node.
	val := make([]byte, 64)
	buf := make([]byte, 64)
	sets, gets, evictions := 0, 0, 0
	for i := 0; i < 3000; i++ {
		key := uint64(i*2654435761) % 1000
		if i%10 == 9 {
			cache.Get(c, key, buf) // GETs need no transaction
			gets++
			continue
		}
		val[0] = byte(key)
		c.Begin()
		if cache.Set(c, key, val) {
			evictions++
		}
		c.Commit()
		sets++
	}

	// Crash and recover: the cache index, eviction list and values all
	// live in the persistent heap.
	image := m.Crash()
	m2, err := ssp.Restore(m.ConfigUsed(), image)
	if err != nil {
		log.Fatalf("%s: recovery failed: %v", backend, err)
	}
	c2 := m2.Core(0)
	cache2 := kv.Open(m2.Heap(), m2.Root(c2, 0))
	if n := cache2.Len(c2); n != 500 {
		log.Fatalf("%s: expected 500 entries after recovery, got %d", backend, n)
	}

	st := m.Stats()
	fmt.Printf("%-9s: %d SETs, %d GETs, %d evictions — NVRAM writes: %d lines (%d KiB), survived crash with %d entries\n",
		backend, sets, gets, evictions,
		st.NVRAMWriteLines, st.TotalWriteBytes()/1024, cache2.Len(c2))
}
