// treestore: the persistent B+-tree and red-black tree (ssp/pds) as an
// ordered index — inserts, ordered range scans, deletes, and crash
// recovery with invariant checking.
//
//	go run ./examples/treestore
package main

import (
	"fmt"
	"log"

	"repro/ssp"
	"repro/ssp/pds"
)

func main() {
	m, err := ssp.New(ssp.Config{Backend: ssp.SSP, Cores: 1})
	if err != nil {
		log.Fatal(err)
	}
	c := m.Core(0)

	c.Begin()
	bt := pds.CreateBTree(c, m.Heap())
	rb := pds.CreateRBTree(c, m.Heap())
	m.SetRoot(c, 0, bt.Head())
	m.SetRoot(c, 1, rb.Head())
	c.Commit()

	// One durable transaction per update, as in the paper's workloads.
	for k := uint64(0); k < 2000; k++ {
		key := (k * 2654435761) % 100000
		c.Begin()
		bt.Insert(c, key, key*10)
		rb.Insert(c, key, key*10)
		c.Commit()
	}
	for k := uint64(0); k < 500; k++ {
		key := (k * 2654435761) % 100000
		c.Begin()
		bt.Delete(c, key)
		rb.Delete(c, key)
		c.Commit()
	}

	fmt.Printf("btree: %d keys, rbtree: %d keys\n", bt.Len(c), rb.Len(c))

	// Ordered range scan over the B+-tree's leaf chain.
	fmt.Print("first 8 keys above 50000: ")
	bt.Range(c, 50000, 8, func(k, v uint64) bool {
		fmt.Printf("%d ", k)
		return true
	})
	fmt.Println()

	// Crash mid-transaction; recover; verify both structures.
	c.Begin()
	bt.Insert(c, 424242, 1)
	rb.Insert(c, 424242, 1)
	image := m.Crash()

	m2, err := ssp.Restore(m.ConfigUsed(), image)
	if err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	c2 := m2.Core(0)
	bt2 := pds.OpenBTree(m2.Heap(), m2.Root(c2, 0))
	rb2 := pds.OpenRBTree(m2.Heap(), m2.Root(c2, 1))

	if _, ok := bt2.Get(c2, 424242); ok {
		log.Fatal("uncommitted insert visible after crash")
	}
	if rb2.CheckInvariants(c2) < 0 {
		log.Fatal("red-black invariants broken after crash")
	}
	if bt2.Len(c2) != rb2.Len(c2) {
		log.Fatalf("trees diverged after crash: %d vs %d", bt2.Len(c2), rb2.Len(c2))
	}
	fmt.Printf("after crash: both trees recovered %d keys, invariants hold\n", bt2.Len(c2))
}
