// Quickstart: durable transactions on the simulated persistent-memory
// machine — allocate persistent objects, update them failure-atomically,
// crash the machine, and recover everything that committed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/ssp"
)

func main() {
	// A machine with Shadow Sub-Paging as the atomicity mechanism. Try
	// ssp.UndoLog or ssp.RedoLog: the programming model is identical.
	m, err := ssp.New(ssp.Config{Backend: ssp.SSP, Cores: 1})
	if err != nil {
		log.Fatal(err)
	}
	c := m.Core(0)

	// Everything inside Begin/Commit persists all-or-nothing.
	c.Begin()
	account := m.Heap().Alloc(c, 16) // balance, generation
	c.Store64(account+0, 1000)
	c.Store64(account+8, 1)
	m.SetRoot(c, 0, account) // name it so recovery can find it
	c.Commit()

	// A committed transfer...
	c.Begin()
	c.Store64(account+0, c.Load64(account+0)-250)
	c.Store64(account+8, c.Load64(account+8)+1)
	c.Commit()

	// ...and an in-flight one that the crash will erase.
	c.Begin()
	c.Store64(account+0, 0)
	c.Store64(account+8, 999)

	fmt.Println("power failure!")
	image := m.Crash()

	m2, err := ssp.Restore(m.ConfigUsed(), image)
	if err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	c2 := m2.Core(0)
	acct := m2.Root(c2, 0)
	balance := c2.Load64(acct + 0)
	gen := c2.Load64(acct + 8)
	fmt.Printf("recovered: balance=%d generation=%d\n", balance, gen)
	if balance != 750 || gen != 2 {
		log.Fatal("atomicity violated!")
	}
	fmt.Println("the committed transfer survived; the torn one vanished — as promised.")

	st := m2.Stats()
	fmt.Printf("recovery replayed %d journal records\n", st.ReplayedRecords)
}
