// Benchmarks regenerating the paper's evaluation (one per table/figure).
// Each benchmark runs the corresponding experiment at a fixed small scale
// and reports the paper's headline metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` prints the whole evaluation. The sspbench
// command runs the same experiments at larger scales with full rendering.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/workload"
	"repro/ssp"
)

// benchScale keeps every experiment in benchmark-friendly territory; the
// numbers in EXPERIMENTS.md come from `sspbench -scale full`. The shrunken
// STLB preserves TLB-pressure effects (consolidation) at small sizes.
func benchScale() experiments.Scale {
	return experiments.Scale{Ops: 1200, Keys: 8192, Elems: 1 << 17, Items: 4096, Tuples: 4096, Seed: 0xE0, STLB: 128}
}

func BenchmarkTable3_Characterisation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(benchScale())
		for _, r := range rows {
			b.ReportMetric(r.AvgLines, r.Kind.String()+"_lines/txn")
		}
	}
}

func BenchmarkFig5a_MicroTPS_1Thread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5(benchScale(), 1)
		for _, r := range rows {
			b.ReportMetric(r.TPS[ssp.SSP], r.Kind.String()+"_SSP/UNDO")
		}
	}
}

func BenchmarkFig5b_MicroTPS_4Threads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5(benchScale(), 4)
		for _, r := range rows {
			b.ReportMetric(r.TPS[ssp.SSP], r.Kind.String()+"_SSP/UNDO")
		}
	}
}

func BenchmarkFig6_LoggingWrites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6(benchScale(), 1)
		for _, r := range rows {
			b.ReportMetric(r.Norm[ssp.SSP], r.Kind.String()+"_SSP/UNDO")
		}
	}
}

func BenchmarkFig7a_NVRAMWrites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(benchScale(), 1)
		for _, r := range rows {
			b.ReportMetric(r.Norm[ssp.SSP], r.Kind.String()+"_SSP/UNDO")
		}
	}
}

func BenchmarkFig7b_SSPWriteBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(benchScale(), 1)
		for _, r := range rows {
			b.ReportMetric(r.ConsolidationPct, r.Kind.String()+"_consol%")
		}
	}
}

func BenchmarkFig8_NVRAMLatencySweep(b *testing.B) {
	sc := benchScale()
	sc.Ops = 600
	for i := 0; i < b.N; i++ {
		points := experiments.Fig8(sc)
		for _, pt := range points {
			if pt.Kind == workload.BTreeRand {
				b.ReportMetric(pt.TPS[ssp.SSP]/1e3, "BTree_SSP_kTPS_x"+itoa(pt.Multiple))
			}
		}
	}
}

func BenchmarkFig9_SSPCacheLatencySweep(b *testing.B) {
	sc := benchScale()
	sc.Ops = 600
	for i := 0; i < b.N; i++ {
		points := experiments.Fig9(sc)
		for _, pt := range points {
			if pt.Kind == workload.SPS {
				b.ReportMetric(pt.Speedup, "SPS_speedup_lat"+itoa(pt.Latency))
			}
		}
	}
}

func BenchmarkTable4_RealWorkloadSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table45(benchScale())
		for _, r := range rows {
			b.ReportMetric(r.SpeedupOver[ssp.UndoLog], r.Kind.String()+"_vsUNDO_%")
			b.ReportMetric(r.SpeedupOver[ssp.RedoLog], r.Kind.String()+"_vsREDO_%")
		}
	}
}

func BenchmarkTable5_RealWorkloadWriteSaving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table45(benchScale())
		for _, r := range rows {
			b.ReportMetric(r.SavingOver[ssp.UndoLog], r.Kind.String()+"_vsUNDO_%")
			b.ReportMetric(r.SavingOver[ssp.RedoLog], r.Kind.String()+"_vsREDO_%")
		}
	}
}

func BenchmarkAblation_SubPageGranularity(b *testing.B) {
	sc := benchScale()
	sc.Ops = 600
	for i := 0; i < b.N; i++ {
		rows := experiments.AblateSubPage(sc)
		for _, r := range rows {
			b.ReportMetric(r.TPS, r.Kind.String()+"_"+r.Name+"_TPS")
		}
	}
}

func BenchmarkAblation_ConsolidationPolicy(b *testing.B) {
	sc := benchScale()
	sc.Ops = 600
	for i := 0; i < b.N; i++ {
		rows := experiments.AblateConsolidationPolicy(sc)
		for _, r := range rows {
			b.ReportMetric(r.TPS, r.Kind.String()+"_"+r.Name+"_TPS")
		}
	}
}

func BenchmarkRecoveryEffort(b *testing.B) {
	sc := benchScale()
	sc.Ops = 400
	for i := 0; i < b.N; i++ {
		rows := experiments.RecoveryEffort(sc)
		for _, r := range rows {
			b.ReportMetric(float64(r.ReplayedRecords), "replayed_j"+itoa(r.JournalKB))
		}
	}
}

// BenchmarkParallelSmoke is the CI bench-regression gate (see cmd/benchjson
// and .github/workflows/ci.yml): SSP on the sharded memcached workload, 4
// goroutine-backed cores over a 4-channel interleaved memory with a 4-shard
// metadata journal (the optimized configuration), reporting committed
// transactions per simulated second for the parallel run, the 1-core serial
// baseline, and the resulting speedup. CI fails when SSP_cTPS drops more
// than 20% below the checked-in baseline (ci/bench_baseline.json).
func BenchmarkParallelSmoke(b *testing.B) {
	params := func(clients int) workload.Params {
		p := workload.Params{
			Kind:    workload.Memcached,
			Backend: ssp.SSP,
			Clients: clients,
			Ops:     4000,
			Items:   4096,
			Seed:    0xE0,
		}
		p.Machine.Channels = 4
		p.Machine.JournalShards = 4
		return p
	}
	for i := 0; i < b.N; i++ {
		serial := workload.Run(params(1))
		par := workload.RunParallel(params(4))
		sTPS := experiments.CommittedTPS(serial.Cycles, serial)
		pTPS := experiments.CommittedTPS(par.Cycles, par.Result)
		b.ReportMetric(pTPS, "SSP_cTPS")
		b.ReportMetric(sTPS, "SSP_serial_cTPS")
		if sTPS > 0 {
			b.ReportMetric(pTPS/sTPS, "SSP_speedup")
		}
		// Tracked (not gated): the 4-core data-flush fence cost the
		// commit-path knobs attack — see BenchmarkCommitPath.
		b.ReportMetric(float64(par.Stats.CommitBarrierWait), "SSP_barrierwait_cycles")
	}
}

// BenchmarkScaleSmoke is the deterministic-scheduler CI gate (see
// cmd/benchjson and .github/workflows/ci.yml): SSP on the sharded memcached
// workload with 8 goroutine-backed cores under the bounded-lag window
// scheduler (TimeWindow 4096, 4 channels, 4 journal shards, group-commit
// window on). Because the windowed run is a pure function of simulated
// state, every reported metric is exactly reproducible — CI gates
// Scale_cTPS at ±5%, which only a behavioural change can trip.
func BenchmarkScaleSmoke(b *testing.B) {
	params := func(clients int) workload.Params {
		p := workload.Params{
			Kind:    workload.Memcached,
			Backend: ssp.SSP,
			Clients: clients,
			Ops:     4000,
			Items:   4096,
			Seed:    0xE0,
		}
		p.Machine.Channels = 4
		p.Machine.JournalShards = 4
		p.Machine.GroupCommitWindow = 4096
		p.Machine.TimeWindow = 4096
		return p
	}
	for i := 0; i < b.N; i++ {
		serial := workload.Run(params(1))
		par := workload.RunParallel(params(8))
		sTPS := experiments.CommittedTPS(serial.Cycles, serial)
		pTPS := experiments.CommittedTPS(par.Cycles, par.Result)
		b.ReportMetric(pTPS, "Scale_cTPS")
		if sTPS > 0 {
			b.ReportMetric(pTPS/sTPS, "Scale_speedup")
		}
		// Tracked (not gated): the scheduler's deterministic activity and
		// the group-commit identity members (batches + followers = commits
		// exactly under TimeWindow > 0).
		b.ReportMetric(float64(par.WindowSched.Windows), "Scale_windows")
		b.ReportMetric(float64(par.Stats.GroupCommitBatches), "Scale_groupbatches")
		b.ReportMetric(float64(par.Stats.GroupCommitFollowers), "Scale_groupfollowers")

		// WindowParallel variant: the same cell under speculate-and-replay.
		// Its simulated metrics are byte-identical to the serial-grant run
		// by construction (TestWindowParallelMatchesSerialGrant enforces
		// it), so ScaleWinPar_cTPS shares the ±5% deterministic gate — a
		// divergence here means the replay path changed machine behaviour.
		// The host-side numbers are tracked, not gated: the wall-clock
		// ratio is Amdahl-bounded by the program-logic share of host time
		// (replayers still serialise simulated-hardware work on one slot)
		// and depends on the CI host.
		wp := params(8)
		wp.Machine.WindowParallel = true
		wpar := workload.RunParallel(wp)
		wTPS := experiments.CommittedTPS(wpar.Cycles, wpar.Result)
		b.ReportMetric(wTPS, "ScaleWinPar_cTPS")
		b.ReportMetric(float64(wpar.WindowSched.SpecParks), "ScaleWinPar_specparks")
		if wpar.Wall > 0 {
			b.ReportMetric(float64(par.Wall)/float64(wpar.Wall), "ScaleWinPar_hostspeedup")
		}
	}
}

// BenchmarkCrossShardSmoke is the distributed-commit companion of the
// parallel smoke, gated in CI via cmd/benchjson: the 2-core memcached
// cross-shard mix at a 50% global fraction over 4 journal shards — the
// configuration where PR 4 measured parallel speedup collapsing to 0.55x.
// The batched prepare fan-out (concurrent participant-shard flushes
// overlapping the data fence) is what moves it.
func BenchmarkCrossShardSmoke(b *testing.B) {
	params := func(clients int) workload.Params {
		p := workload.Params{
			Kind:    workload.MemcachedCross,
			Backend: ssp.SSP,
			Clients: clients,
			Ops:     4000,
			Items:   4096,
			Seed:    0xE0,
		}
		p.CrossPct = 50
		p.Machine.Channels = 4
		p.Machine.JournalShards = 4
		return p
	}
	for i := 0; i < b.N; i++ {
		base := workload.RunParallel(params(1))
		par := workload.RunParallel(params(2))
		bTPS := experiments.CommittedTPS(base.Cycles, base.Result)
		pTPS := experiments.CommittedTPS(par.Cycles, par.Result)
		b.ReportMetric(pTPS, "SSPCross_cTPS")
		if bTPS > 0 {
			b.ReportMetric(pTPS/bTPS, "SSPCross_speedup_50pct")
		}
		b.ReportMetric(float64(par.Stats.CommitBarrierWait), "SSPCross_barrierwait_cycles")
	}
}

// BenchmarkCommitPath records the commit-path batching trajectory for
// BENCH_5.json: the paper model versus both knobs on (eager write-behind
// flushing + a 4096-cycle group-commit window) on the two 4-core
// single-shard mixes. Reported rather than gated — the group rendezvous
// depends on host scheduling, so the knobs-on numbers carry run-to-run
// variance that a hard gate would turn into flakes.
func BenchmarkCommitPath(b *testing.B) {
	params := func(kind workload.Kind, eager bool, window int) workload.Params {
		p := workload.Params{
			Kind:    kind,
			Backend: ssp.SSP,
			Clients: 4,
			Ops:     4000,
			Items:   4096,
			Tuples:  4096,
			Seed:    0xE0,
		}
		p.Machine.Channels = 4
		p.Machine.JournalShards = 1
		if kind == workload.MemcachedCross {
			// The distributed mix needs per-core shards to have cross-shard
			// commits at all; the knobs then attack the fence and fan-out.
			p.Machine.JournalShards = 4
			p.CrossPct = 50
		}
		p.Machine.EagerFlush = eager
		p.Machine.GroupCommitWindow = window
		return p
	}
	for i := 0; i < b.N; i++ {
		for _, kind := range []workload.Kind{workload.Memcached, workload.Vacation, workload.MemcachedCross} {
			name := kind.String()
			base := workload.RunParallel(params(kind, false, 0))
			knobs := workload.RunParallel(params(kind, true, 4096))
			b.ReportMetric(experiments.CommittedTPS(base.Cycles, base.Result), name+"_base_cTPS")
			b.ReportMetric(experiments.CommittedTPS(knobs.Cycles, knobs.Result), name+"_knobs_cTPS")
			b.ReportMetric(float64(base.Stats.CommitBarrierWait), name+"_base_barrierwait_cycles")
			b.ReportMetric(float64(knobs.Stats.CommitBarrierWait), name+"_knobs_barrierwait_cycles")
			b.ReportMetric(100*experiments.BarrierWaitShare(base, 4), name+"_base_barrier_pct")
			b.ReportMetric(100*experiments.BarrierWaitShare(knobs, 4), name+"_knobs_barrier_pct")
			if knobs.Stats.GroupCommitBatches > 0 {
				b.ReportMetric(float64(knobs.Stats.GroupCommitBatches+knobs.Stats.GroupCommitFollowers)/float64(knobs.Stats.GroupCommitBatches),
					name+"_group_occupancy")
			}
		}
	}
}

// BenchmarkRelaxedSmoke records the epoch-batched relaxed-durability
// trajectory for BENCH_6.json: the 4-core single-shard memcached mix
// synchronous versus relaxed with a 100k-cycle epoch (~10 transactions per
// seal at this mix's commit rate). Committed (acknowledgment-window) TPS is
// the relaxed mode's headline; durable TPS includes the closing drain that
// hardens the tail epochs, so the two bracket the durability lag. Reported
// rather than gated, except the sanity ratio: the barrier share must
// collapse once commits stop waiting for their journal flush.
func BenchmarkRelaxedSmoke(b *testing.B) {
	params := func(epoch int) workload.Params {
		p := workload.Params{
			Kind:    workload.Memcached,
			Backend: ssp.SSP,
			Clients: 4,
			Ops:     4000,
			Items:   4096,
			Seed:    0xE0,
		}
		p.Machine.Channels = 4
		p.Machine.JournalShards = 1
		p.Machine.DurabilityEpoch = epoch
		p.Relaxed = epoch > 0
		return p
	}
	const epoch = 100000
	for i := 0; i < b.N; i++ {
		sync := workload.RunParallel(params(0))
		rel := workload.RunParallel(params(epoch))
		b.ReportMetric(sync.CommittedTPS, "Relaxed_sync_cTPS")
		b.ReportMetric(rel.CommittedTPS, "Relaxed_ack_cTPS")
		b.ReportMetric(rel.TPS, "Relaxed_durable_TPS")
		if sync.CommittedTPS > 0 {
			b.ReportMetric(rel.CommittedTPS/sync.CommittedTPS, "Relaxed_ack_speedup")
		}
		b.ReportMetric(100*experiments.BarrierWaitShare(sync, 4), "Relaxed_sync_barrier_pct")
		b.ReportMetric(100*experiments.BarrierWaitShare(rel, 4), "Relaxed_epoch_barrier_pct")
		b.ReportMetric(float64(rel.Stats.RelaxedCommits), "Relaxed_commits")
		b.ReportMetric(float64(rel.Stats.HardenedEpochs), "Relaxed_hardened_epochs")
		b.ReportMetric(experiments.MeanHardenLag(rel.Stats), "Relaxed_harden_lag_cycles")
	}
}

// BenchmarkServeSmoke is the serve-layer CI gate (see cmd/benchjson and
// .github/workflows/ci.yml): the open-loop sharded-kv service on 4 cores
// over the fence-floor machine (1 journal shard, 4 channels) at YCSB-style
// skew. A closed-loop probe sets Serve_cTPS (capacity, gated
// higher-is-better); sync and relaxed then serve the same 50%-of-capacity
// offered load (comfortably below the queueing knee, where the p99 is
// stable enough to gate), and the sync tail is gated lower-is-better as
// Serve_p99 (`-gate BenchmarkServeSmoke/Serve_p99:min`). Deriving the rate
// from the probe keeps the gated percentile self-normalizing: a machine
// that probes faster also offers itself proportionally more load. The
// relaxed row's tail and harden lag are reported alongside, un-gated, to
// record the latency/staleness split at equal load.
func BenchmarkServeSmoke(b *testing.B) {
	params := func(rate float64, relaxed bool) workload.ServeParams {
		p := workload.ServeParams{
			Backend:    ssp.SSP,
			Clients:    4,
			Ops:        12000,
			Items:      4096,
			Skew:       0.99,
			OfferedTPS: rate,
			Relaxed:    relaxed,
			Seed:       0xE0,
		}
		p.Machine.Channels = 4
		p.Machine.JournalShards = 1
		if relaxed {
			p.Machine.DurabilityEpoch = 100000
		}
		return p
	}
	for i := 0; i < b.N; i++ {
		probe := workload.RunServe(params(0, false))
		rate := probe.CommittedTPS * 0.5
		sync := workload.RunServe(params(rate, false))
		rel := workload.RunServe(params(rate, true))
		b.ReportMetric(probe.CommittedTPS, "Serve_cTPS")
		b.ReportMetric(float64(sync.LatencyP50), "Serve_p50")
		b.ReportMetric(float64(sync.LatencyP99), "Serve_p99")
		b.ReportMetric(float64(sync.LatencyP999), "Serve_p999")
		b.ReportMetric(float64(rel.LatencyP99), "Serve_relaxed_p99")
		b.ReportMetric(float64(rel.LatencyP999), "Serve_relaxed_p999")
		b.ReportMetric(experiments.MeanHardenLag(rel.Stats), "Serve_harden_lag_cycles")
		if rel.LatencyP99 > 0 {
			b.ReportMetric(float64(sync.LatencyP99)/float64(rel.LatencyP99), "Serve_sync_over_relaxed_p99")
		}
	}
}

// BenchmarkCacheSmoke is the DRAM-buffer-tier CI gate (see cmd/benchjson
// and .github/workflows/ci.yml): the cache experiment's serve mix — 4 cores,
// Zipfian keys, GET-path recency stamps, a 256 KiB L3 so the working set
// reaches memory — run bare and with a 1024-frame buffer tier. The cached
// run's committed TPS is the gated metric (Cache_cTPS); the bare row doubles
// as a sentinel that DRAMCacheFrames = 0 still models the bare-NVRAM machine
// (its numbers must track the historical serve figures at this mix). Hit
// rate, both runs' NVRAM data-write lines, and the speedup ride along
// un-gated.
func BenchmarkCacheSmoke(b *testing.B) {
	params := func(frames int) workload.ServeParams {
		return workload.ServeParams{
			Backend:    ssp.SSP,
			Clients:    4,
			Ops:        8000,
			Items:      4096,
			Skew:       0.99,
			ReadPct:    70,
			TouchOnGet: true,
			Seed:       0xE0,
			Machine:    ssp.Config{L3KB: 256, DRAMCacheFrames: frames},
		}
	}
	for i := 0; i < b.N; i++ {
		bare := workload.RunServe(params(0))
		cached := workload.RunServe(params(1024))
		b.ReportMetric(cached.CommittedTPS, "Cache_cTPS")
		b.ReportMetric(bare.CommittedTPS, "Cache_bare_cTPS")
		if r := cached.Stats.DRAMCacheReads; r > 0 {
			b.ReportMetric(100*float64(cached.Stats.DRAMCacheHits)/float64(r), "Cache_hit_pct")
		}
		b.ReportMetric(float64(experiments.DataWriteLines(bare.Stats)), "Cache_bare_dataWr_lines")
		b.ReportMetric(float64(experiments.DataWriteLines(cached.Stats)), "Cache_dataWr_lines")
		if bare.CommittedTPS > 0 {
			b.ReportMetric(cached.CommittedTPS/bare.CommittedTPS, "Cache_speedup")
		}
	}
}

// BenchmarkTxnPath measures the raw per-transaction cost of each design on
// a minimal two-store transaction (the mechanism overhead itself).
func BenchmarkTxnPath(b *testing.B) {
	for _, backend := range ssp.Backends() {
		b.Run(backend.String(), func(b *testing.B) {
			m := ssp.MustNew(ssp.Config{Backend: backend, Cores: 1})
			c := m.Core(0)
			m.Heap().EnsureMapped(nil, 1, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				page := ssp.HeapBase + uint64(1+(i&1))*ssp.PageBytes
				c.Begin()
				c.Store64(page+uint64(i%32)*64, uint64(i))
				c.Store64(page+uint64(32+i%32)*64, uint64(i)) // second line, same page
				c.Commit()
			}
			b.ReportMetric(float64(m.MaxClock())/float64(b.N), "simcycles/txn")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
