// Package repro reproduces "SSP: Eliminating Redundant Writes in
// Failure-Atomic NVRAMs via Shadow Sub-Paging" (Ni, Zhao, Litz, Bittman,
// Miller — MICRO 2019) as a self-contained Go library.
//
// The public API lives in repro/ssp (the simulated machine and durable
// transactions), repro/ssp/pds (persistent data structures) and
// repro/ssp/kv (a memcached-like persistent cache). The simulator
// substrates, the SSP mechanism, the logging baselines and the experiment
// harness live under internal/. See README.md for a tour, DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation:
//
//	go test -bench=. -benchmem .
package repro
