// Package repro reproduces "SSP: Eliminating Redundant Writes in
// Failure-Atomic NVRAMs via Shadow Sub-Paging" (Ni, Zhao, Litz, Bittman,
// Miller — MICRO 2019) as a self-contained Go library.
//
// The public API lives in repro/ssp (the simulated machine and durable
// transactions), repro/ssp/pds (persistent data structures) and
// repro/ssp/kv (a memcached-like persistent cache). The simulator
// substrates, the SSP mechanism, the logging baselines and the experiment
// harness live under internal/. See README.md for a tour, DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// # Concurrency contract
//
// The machine has two execution modes. Outside ssp.Machine.Run every call
// runs on the caller's goroutine and the simulation is bit-for-bit
// deterministic, as in the original single-goroutine model. Machine.Run(fn)
// invokes fn once per Core, each invocation on its own goroutine, so the
// simulated cores genuinely execute in parallel on the host. The rules:
//
//   - One goroutine per Core: a Core handle (Begin/Store64/Load64/Commit,
//     plus Heap/Arena allocation through it) belongs to the goroutine Run
//     hands it to, and must not be shared.
//   - Machine-level operations (Stats, WriteSet, Drain, Crash, Recover,
//     ResetStats, MaxClock, Restore) are not safe during a Run; call them
//     only before it starts or after it returns.
//   - Locks (ssp.Lock via Core.Acquire/Release) provide application-level
//     isolation, as in the paper; in concurrent mode they are backed by a
//     host mutex so simulated and host mutual exclusion coincide.
//   - Concurrent allocation goes through per-core arenas
//     (Machine.NewArena), never the shared Heap.
//   - Per-core results are deterministic for fixed seeds; aggregate
//     statistics are order-independent sums over per-core shards, while
//     cross-core timing (bank contention, lock hand-off order) depends on
//     the host schedule — unless the window scheduler below is on, which
//     makes the whole run, cross-core timing included, reproducible.
//
// # Deterministic bounded-lag window scheduler
//
// ssp.Config.TimeWindow (cycles; 0, the default, keeps the free-running
// mode above bit-for-bit) runs Machine.Run under a conservative bounded-lag
// scheduler (internal/machine/winsched.go): cores advance in lockstep
// windows of W simulated cycles, and within each window exactly one core
// executes at a time — always the ready core with the smallest
// (clock, core index) — so every shared-hardware arbitration the
// free-running mode resolves in host order (memory bank and bus wheels,
// row-buffer transitions, cache ownership transfers, lock hand-off,
// group-commit leader election, epoch hardening) resolves in simulated-time
// order with a deterministic core-index tie-break. Two runs with the same
// seed and core count then produce byte-identical Stats, histograms
// included (workload.TestWindowedRunsByteIdentical), and the group-commit
// identity batches + followers = group-path commits holds exactly rather
// than approximately. Locks integrate with the scheduler (release hands the
// lock to the waiter with the smallest resume clock, not to whichever
// goroutine the host wakes); group-commit followers park on flush tickets
// and leaders hold their windows open via a rendezvous that excludes parked
// cores, so the serialisation cannot deadlock. The price is host
// parallelism: execution is serialised, so wall-clock gains from extra host
// cores disappear while SIMULATED speedup curves are unaffected
// (conservative windows only fix the interleaving). Machine.WindowStats
// reports windows/grants/barrier stalls (deterministic) plus the host-side
// barrier-wait share used to pick the default W — at small scale W=4096
// keeps the barrier-wait share near the serialisation floor while bounding
// cross-core lag, and is the recommended setting. The server path's
// host-channel waits (Core.BlockExternal) remain live but host-dependent;
// everything inside the simulated machine is covered. The windowed
// crash class (crashsweep.TestTrapSweepWindowed) trap-sweeps a windowed
// 4-core machine with journal sharding, group commit and durability epochs
// composed, proving window barriers cannot reorder durability points.
// `sspbench -exp scale` sweeps window size × cores (1-16) and reports
// speedup, barrier-wait share and per-shard journal pressure; CI gates the
// windowed 8-core BenchmarkScaleSmoke at ±5%.
//
// # Host-parallel windowed execution (speculate-and-replay)
//
// ssp.Config.WindowParallel (requires TimeWindow > 0; default false keeps
// the serial-grant mode above bit-for-bit) recovers host parallelism from
// the windowed scheduler without touching its arbitration
// (internal/machine/winpar.go). Each core splits into two goroutines: a
// SPECULATOR runs the program against a functional image of the heap (a
// run-level shadow of every mapped page, seeded through the cache
// hierarchy's coherent peek path, plus a per-core byte-masked overlay of
// its own uncommitted stores) and records every Core operation into an op
// log; a REPLAYER drains that log through the machine's real execution
// paths under the UNCHANGED window scheduler — replayers occupy the
// scheduler slots exactly as program goroutines did, so every arbitration
// decision, Stats counter and histogram bucket is byte-identical to the
// serial-grant run (workload.TestWindowParallelMatchesSerialGrant enforces
// this on the determinism mixes; machine.TestWindowParallelStress under
// -race on the abort/global-commit mix). Operations whose results feed the
// program (Acquire, Now, Abort, HardenIdle, EnsureMapped, BlockExternal)
// PARK the speculator until its replayer catches up and replies, which
// also re-syncs the overlay against the shadow; stores, loads, commits and
// releases stream without blocking. Loads are validated on replay against
// the speculated bytes — a divergence (an unsynchronised cross-core read,
// impossible for lock-disciplined programs) panics with both values rather
// than silently corrupting determinism. WindowStats.SpecOps/SpecParks
// report the log volume and park rate (both deterministic). The host
// speedup is Amdahl-bounded by the program-logic share of host wall time:
// replayers still serialise all simulated-hardware work on one slot, and
// profiling shows the cache-simulation mutex (Hierarchy.Retag full scans,
// level.peek) dominates, so the measured gain on the memcached mixes is
// modest (see `sspbench -exp scale`, which re-runs every windowed cell
// under WindowParallel and prints the host-speedup and spec-park columns);
// sharding the L3/directory locks is the follow-on that would raise the
// ceiling. BlockExternal parks, so the server path runs functionally
// correct under WindowParallel, but serve-path determinism is forfeited
// exactly as it is under serial-grant windows (host-channel waits remain
// host-dependent).
//
// # Multi-channel memory model
//
// The memory system supports multiple independent channels
// (ssp.Config.Channels, default 1 = the paper's single-bus Table 2 model;
// internals in internal/memsim). Each channel owns a slice of the banks, a
// data-bus bandwidth ledger and its own timing lock; addresses interleave
// across channels per ssp.Config.Interleave — InterleaveLine (consecutive
// 64-byte lines rotate channels; default) or InterleavePage (a 4 KiB page
// stays on one channel). Channel and bank selectors are swizzled with
// higher address bits (permutation-based interleaving), so power-of-2
// strided regions such as the per-core logs spread across banks instead of
// aliasing onto one. Per-channel traffic and bus-occupancy counters land in
// stats.Stats (ChannelLines, ChannelBusyCycles), one stats shard per
// channel.
//
// Bank and bus occupancy is tracked in time-bucketed ledgers rather than
// "busy until" scalars, so concurrent cores queue only when their simulated
// windows genuinely overlap on the same resource; shared structures with a
// serial protocol — REDO's single write-back engine, cache-coherence
// ownership transfers — remain serialised in simulated time by design. The
// sweep `go run ./cmd/sspbench -exp channels -cores 4 -channels 8` reports
// committed TPS, speedup and per-channel bus utilization across the
// channels × cores grid.
//
// # Sharded SSP metadata journal
//
// The SSP metadata journal supports per-core sharding
// (ssp.Config.JournalShards, default 1 = the paper's single shared journal,
// max MaxJournalShards). Core i appends its commit batches to shard
// i mod JournalShards — an independent NVRAM ring with its own buffered
// tail line — under that shard's lock only; transaction IDs come from one
// global atomic allocator (drawn under the destination shard's lock, so
// every stream stays TID-monotonic), and slot-shadow mutation happens at
// per-page granularity under each page's own lock. Checkpointing is
// per-shard: a hot core fills and drains only its own ring. Recovery is a
// TID-merge — every shard is scanned and batch-validated independently
// (torn tails and batches without a durable End drop per shard, exactly as
// with one journal), the survivors merge by their globally monotonic TIDs,
// and a per-slot update version (persisted in both the slot array and each
// journal record) keeps a record left in one shard's ring from regressing a
// slot that another shard's checkpoint already advanced. The cross-shard
// crash semantics are enforced by the internal/crashsweep trap sweep on a
// multi-core multi-shard machine.
//
// # Cross-shard (global) transactions
//
// Core.BeginGlobal opens a failure-atomic section that may write pages
// owned by multiple arenas/journal shards. On SSP with JournalShards > 1
// such a section commits through a two-phase protocol layered on the
// commit pipeline of internal/core/commit.go: prepare records — payload
// identical to update records, including the slot update version — are
// appended and flushed into every participant shard (the shards owning the
// write-set pages' slots, ascending), then a single coordinator end record
// carrying the global TID is appended to the committing core's own shard
// and flushed; that one line write is the commit point. Slot-shadow
// publication follows only after it. Recovery applies a TID's prepare
// records from every shard iff its coordinator end record is durable, so a
// crash before the end rolls back every participant shard and a crash
// after it redoes all of them; the slot version guard still orders replay
// against participant-shard checkpoints. Checkpointing adds a dual rule: a
// COORDINATOR-shard checkpoint persists the participant slots of every
// global transaction whose end record its ring still holds before
// truncating, so prepares orphaned by the truncation are superseded by the
// slot array (recovery treats such version-superseded prepares as
// checkpointed remnants, not torn transactions). Locking adds one rule to the
// contract above: a global commit takes every involved shard's journalMu in
// ascending shard index (the full order is still structMu → journalMu[i] →
// pageMeta.mu, with the journalMu tier internally ordered by index), so
// global and single-shard commits can never deadlock. Applications must
// acquire the Locks of every structure a global section touches, in one
// consistent order — ascending shard/core index in the bundled workloads.
// Single-arena transactions (plain Begin, or BeginGlobal whose write set
// resolves to one shard, or any transaction at JournalShards=1) keep the
// exact single-shard fast path: same records, 24-byte payloads on the
// single-journal paper model, no extra traffic.
//
// # Commit-path batching: group commit and eager data flush
//
// The commit pipeline's persistence legs support batching and overlap
// (PR 5), behind two knobs that default to the paper model — at the
// defaults (EagerFlush off, GroupCommitWindow 0) serial throughput and the
// Figure 6/7 write-traffic ratios reproduce the PR 2/3/4 figures
// bit-for-bit.
//
// ssp.Config.EagerFlush turns the deferred commit-time data flush into a
// write-behind: each store's unit is clwb'd as it ages out of a small
// per-core queue (the two most recently stored units stay unflushed), so
// the commit fence degenerates to a probe — clean lines cost nothing, the
// fence is a max over the in-flight completions plus a write-back of the
// few units dirtied since their eager flush (Stats.EagerFlushLines counts
// the write-behind writes; re-dirtied units are the eager model's write
// amplification). Crash semantics are unchanged: eagerly flushed data is
// durable in the shadow locations that the committed bitmaps do not
// reference until the journal End record, so every pre-End crash rolls it
// back via the shadow slots (trap-swept by internal/crashsweep with the
// knob on). The page's metadata barrier moves to first-store time: pending
// consolidation/release records harden before the first eager flush may
// land in the page's frames.
//
// ssp.Config.GroupCommitWindow (cycles) coalesces the journal legs of
// commits concurrently bound for the same shard: the first committer (the
// leader) opens a window, followers whose clocks fall within the window on
// either side of the leader's append their batches behind it under the
// same shard lock and wait — holding no locks; the flush-ticket wait sits
// entirely outside the lock order — on the leader's flush ticket, and one
// ring flush hardens every member (Stats.GroupCommitBatches/Followers;
// batches + followers = commits routed through the group path). The ring
// bytes are exactly the members' ordinary batches in append order, so
// recovery's per-shard batch validation applies verbatim: a torn leader
// flush takes every follower behind the tear down with it. Grouping only
// forms when several cores share a shard (cores > JournalShards); serial
// execution degenerates to batches of one, bit-identical to the
// per-commit model.
//
// Independent of the knobs, two always-on simulated-hardware fixes take
// redundant serialisation off the commit path: the commit-time metadata
// barrier and the cross-shard prepare fan-out charge the max — not the sum
// — of their independent per-shard ring flushes, and a global commit's
// prepare leg (which carries no commit point) overlaps the data-flush
// fence in simulated time, with only the coordinator End waiting for both.
// Measured on the 4-shard 4-channel memcached cross-shard mix at a 50%
// global fraction (small scale): 2-core speedup 0.51x -> 0.61x, 4-core
// 0.39x -> 0.46x, and the 4-core commit-barrier wait falls from 4.8% to
// 2.0% of core-cycles (-58%). `sspbench -exp commitpath` sweeps the knob
// grid; BENCH_5.json records the trajectory.
//
// # Relaxed durability: epoch-batched commit (CommitRelaxed)
//
// Core.CommitRelaxed trades the durable-on-return guarantee for commit
// latency, governed by ssp.Config.DurabilityEpoch (cycles; 0, the default,
// makes CommitRelaxed identical to Commit and reproduces the synchronous
// model bit-for-bit). With an epoch configured, a relaxed commit appends
// its journal batch into its shard's ring and returns WITHOUT flushing:
// the acknowledgment is immediate, and durability arrives when the shard's
// open epoch hardens — an epoch-seal record is appended (reusing the
// stream's last TID, so a seal can never regress the TID order) and the
// ring flushes once for every commit buffered since the previous seal. An
// epoch hardens when its age reaches DurabilityEpoch (checked inline on
// the next commit), when Core.Sync is called (the explicit durability
// barrier: hardens every shard and waits), when a synchronous Commit or a
// checkpoint needs the shard flushed anyway, or at Machine.Drain.
//
// The crash contract, enforced per trap point by the
// internal/crashsweep relaxed sweeps (TestTrapSweepRelaxed,
// TestTrapSweepCrossRelaxed): a crash loses at most the open epochs —
// every acknowledged-but-unhardened transaction disappears WHOLE (epoch
// seals are the only replay cut points in recovery: each shard's records
// past its last durable seal drop before the TID merge, so an epoch is
// never torn), losses on each shard are a suffix of that shard's
// acknowledgment order, and everything acknowledged before a completed
// Sync survives. Cross-shard (BeginGlobal) relaxed commits keep two-phase
// atomicity: prepares flush eagerly into participant shards, the
// coordinator End buffers in the coordinator's open epoch, and recovery
// treats prepares whose End sits in a lost epoch as absent — participant
// checkpoints stall (prepHolds) until the coordinator epoch hardens.
// Stats counters: RelaxedCommits, EpochSeals, HardenedEpochs,
// EpochHardenLag (mean ack-to-durable lag = lag/hardened), and after a
// recovery DroppedEpochRecords/LostEpochTxns, with survivors +
// LostEpochTxns <= RelaxedCommits.
//
// Measured (small scale, 4-core single-shard 4-channel memcached — the
// fence-floor-bound mix): the commit-barrier share of core-cycles falls
// 36.5% -> 0% and acknowledged cTPS rises ~1.7x over synchronous commit,
// at a mean harden lag of roughly the epoch length.
// `sspbench -exp epoch` sweeps epoch length × cores and reports the
// committed-vs-durable TPS spread; BENCH_6.json records the trajectory and
// CI gates BenchmarkRelaxedSmoke/Relaxed_ack_cTPS.
//
// # Network KV front end and open-loop serve latency
//
// internal/server and cmd/sspserver expose the machine as a line-oriented
// TCP KV service (GET/SET/DEL/SYNC/STATS/QUIT): connection-handler
// goroutines parse requests and enqueue them to per-core worker queues;
// exactly Cores worker goroutines run inside Machine.Run, each owning one
// Core, one arena and one ssp/kv shard (keys route by key % Cores, SYNC to
// core 0), so the one-goroutine-per-Core contract holds with no ssp.Lock
// on the serve path. server.Config.Relaxed selects the acknowledgment
// model for writes: ack after Commit (including the journal fence) or
// after CommitRelaxed (durability bounded by DurabilityEpoch).
//
// internal/loadgen generates deterministic open-loop traffic — Zipfian or
// uniform keys, a seeded GET/SET/DEL mix, and index-computed arrival times
// (arrival_i = start + i*interval, no drift), so latency measured from the
// scheduled arrival to the ack includes queueing delay, the honest
// open-loop number. The same Stream/Pacer drive real sockets
// (loadgen.RunTCP, host nanoseconds) and the in-process serve driver
// (workload.RunServe, simulated cycles), and internal/stats.Histogram — a
// fixed-bucket log-scale histogram mergeable across cores — turns either
// into p50/p99/p999. `go run ./cmd/sspbench -exp serve` sweeps skew ×
// offered load × cores for sync vs relaxed acks;
// `go run ./cmd/sspserver -smoke` boots the real server on a loopback
// port and drives it over TCP (the CI smoke).
//
// # DRAM buffer cache and software wear-leveling
//
// ssp.Config.DRAMCacheFrames interposes a pager-style DRAM buffer tier
// (internal/buffercache) of that many 4 KiB frames between the CPU cache
// hierarchy and the NVRAM data frame pool — the front end every real NVRAM
// deployment runs that the paper's bare model omits. Shape: a sharded
// frame table with pin counts, per-shard LRU eviction and dirty
// write-back; frames live at real DRAM addresses of memsim, so hits and
// fills charge genuine DRAM bank/bus occupancy while the NVRAM banks stay
// idle. Only the data frame pool is buffered — journal, log, slot-array
// and page-table traffic is the durability mechanism itself and always
// passes through. Crash semantics (trap-swept by
// crashsweep.TestTrapSweepBuffered, alone and composed with EagerFlush,
// GroupCommitWindow and DurabilityEpoch): a dirty buffered line exists
// only for legally-volatile data (absorbed victim write-backs), commit
// flushes write through, and a commit fence covering a line whose only
// dirty copy was absorbed hardens it first — committed data is never
// only-in-DRAM past its fence, and power loss discards the tier whole.
// Counters: DRAMCacheReads/Hits/Misses/Absorbed/Hardens/WriteBacks/
// Evictions, with hits + misses = reads. 0 frames (default) is the bare
// paper model bit-for-bit. `sspbench -exp cache` sweeps frames × cores ×
// skew on a memcached mix with GET-path recency stamps
// (workload.ServeParams.TouchOnGet — the absorbable write class); at
// small scale the 4-core Zipfian point gains ~1.1x cTPS with ~6% of
// NVRAM data-write lines removed, and the uniform point ~16%.
//
// ssp.Config.WearRotateWrites adds SoftWear-style software wear-leveling
// on the NVRAM side: memsim keeps per-frame cumulative write counters
// (Stats.FrameWrites histogram, FrameWriteMax/FrameWriteTotal/
// FramesWritten), and at page consolidation — the one moment a page's
// frames are quiescent and about to be re-journaled — any frame at or
// past the threshold is retired: committed lines are copied into a cold
// frame, the flip rides the ordinary journaled consolidation record
// (flushed before the retired frames are recycled, so replay can never
// land on reused frames), and the hot frame returns to the allocator's
// cold end (vm.FrameAlloc.FreeCold; plain LIFO Free would hand the same
// hot frame right back). `sspbench -exp wear` runs a hot-key write-heavy
// mix and reports the write-distribution skew: at small scale rotation
// cuts max/mean frame-write skew from ~24 to ~5-8 for under 3% of data
// writes spent on rotation copies. 0 (default) disables rotation.
//
// The aggregate-vs-serial equivalence and race-freedom are enforced by
// `go test -race ./internal/machine -run TestParallel` and the workload
// smoke tests; the benchmark entry points are
// `go run ./cmd/sspbench -exp parallel -cores 4` (now with per-core
// commit-barrier wait shares from Stats.CommitBarrierWait),
// `go run ./cmd/sspbench -exp channels -cores 4`,
// `go run ./cmd/sspbench -exp journal -cores 4 -shards 4` (journal-shard ×
// core sweep with per-shard journal pressure and the CatMetaJournal bank
// occupancy that motivates it),
// `go run ./cmd/sspbench -exp crossshard -cores 4 -shards 4` (cross-shard
// transaction fraction × cores on the sharded memcached / partitioned
// vacation mixes, with global-commit and prepare-record traffic) and
// `go run ./cmd/sspbench -exp commitpath -cores 4` (the EagerFlush ×
// GroupCommitWindow knob grid with commit-barrier-wait shares and
// group-commit batch occupancy) and
// `go run ./cmd/sspbench -exp epoch -cores 4` (the relaxed-durability
// epoch-length × cores sweep with acknowledged-vs-durable TPS and mean
// harden lag) and
// `go run ./cmd/sspbench -exp cache -cores 4` /
// `go run ./cmd/sspbench -exp wear -cores 4` (the DRAM buffer tier and
// wear-leveling sweeps above).
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation:
//
//	go test -bench=. -benchmem .
package repro
