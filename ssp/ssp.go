// Package ssp is the public API of the SSP reproduction: a simulated
// persistent-memory machine offering failure-atomic durable transactions
// through one of three hardware mechanisms — Shadow Sub-Paging (the paper's
// contribution), hardware undo logging, or DHTM-style hardware redo logging.
//
// Quick start:
//
//	m, err := ssp.New(ssp.Config{Backend: ssp.SSP, Cores: 1})
//	if err != nil { ... }           // out-of-range Config field
//	c := m.Core(0)
//
//	c.Begin()                       // ATOMIC_BEGIN
//	obj := m.Heap().Alloc(c, 64)    // persistent allocation
//	c.Store64(obj, 42)              // ATOMIC_STORE
//	c.SetRoot(c, 0, obj)            // (see Machine.SetRoot)
//	c.Commit()                      // ATOMIC_END: durable on return
//
//	img := m.Crash()                // power failure
//	m2, _ := ssp.Restore(m.ConfigUsed(), img)
//	m2.Core(0).Load64(obj)          // => 42
//
// Everything run serially is deterministic: identical Config and operation
// sequences produce identical timing and traffic statistics.
//
// # Concurrency
//
// A Machine supports two execution modes. Outside Machine.Run, every call
// runs on the caller's goroutine (the historical single-goroutine model;
// fully deterministic). Machine.Run(fn) executes fn once per Core, each on
// its own goroutine, so the simulated cores genuinely run in parallel on
// the host:
//
//	m := ssp.MustNew(ssp.Config{Backend: ssp.SSP, Cores: 4})
//	m.Run(func(c *ssp.Core) {
//	    for i := 0; i < txnsPerCore; i++ { ... c.Begin(); ...; c.Commit() }
//	})
//
// The contract is one goroutine per Core: a Core handle must only be used
// by the goroutine Run hands it to. Shared machine structures (memory,
// caches, page table, backend metadata) synchronise internally; isolation
// of application data remains the program's job via Lock, exactly as in
// the paper. Machine-level calls (Stats, Drain, Crash, Recover, Restore)
// must not overlap a Run. Per-core results are deterministic for fixed
// per-core inputs; with Config.TimeWindow == 0 cross-core timing depends
// on the host schedule (aggregate statistics are order-independent sums of
// per-core shards), while Config.TimeWindow > 0 runs the deterministic
// bounded-lag window scheduler and the whole run — Stats included — is
// byte-identical across same-seed executions.
//
// Allocation in concurrent code goes through per-core Arenas (Machine.
// NewArena) rather than the shared Heap, so no two cores ever issue
// transactional stores to the same allocator metadata line.
//
// # Cross-shard transactions
//
// Core.BeginGlobal opens a section that may write pages owned by multiple
// arenas/journal shards (Config.JournalShards). SSP commits it with a
// two-phase protocol over the participant shards — prepare records in each,
// one coordinator end record — and recovery makes it all-or-nothing across
// every shard. Acquire the Lock of every structure such a section touches,
// in one consistent order, before BeginGlobal. On the logging backends, or
// with a single journal shard, BeginGlobal behaves exactly like Begin.
package ssp

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/pheap"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Backend selects the failure-atomicity mechanism.
type Backend = machine.BackendKind

// The three designs the paper evaluates (§5.1).
const (
	SSP     = machine.SSP
	UndoLog = machine.UndoLog
	RedoLog = machine.RedoLog
)

// Backends lists all designs in the paper's report order.
func Backends() []Backend { return machine.Backends() }

// Core is a simulated core's transactional interface (Begin / Store64 /
// Load64 / StoreBytes / LoadBytes / Commit / Abort / Acquire / Release).
type Core = machine.Core

// Lock is a simulated mutex serialising critical sections in simulated
// time.
type Lock = machine.Lock

// Heap is the persistent heap allocator (Alloc/Free inside transactions).
type Heap = pheap.Heap

// Arena is a per-core allocation shard of the heap: disjoint pages, own
// free lists, own metadata page. Used by concurrent workloads so cores
// never contend (or conflict transactionally) on allocator metadata.
type Arena = pheap.Arena

// Allocator is the allocation interface shared by *Heap and *Arena; the
// persistent data structures in ssp/pds and ssp/kv accept either.
type Allocator = pheap.Allocator

// Stats is the counter set every experiment derives its numbers from.
type Stats = stats.Stats

// WriteSetStats is the per-transaction write-set characterisation
// (Table 3).
type WriteSetStats = machine.WriteSetStats

// WindowStats is the deterministic window scheduler's per-Run activity
// report (Config.TimeWindow; see Machine.WindowStats).
type WindowStats = machine.WindowStats

// Cycles is simulated time in core clock cycles (3.7 GHz by default).
type Cycles = engine.Cycles

// Interleave selects the address→channel mapping of the multi-channel
// memory model (Config.Channels).
type Interleave = memsim.Interleave

// Interleaving policies: cacheline-granular (consecutive 64-byte lines
// rotate channels) and page-granular (a 4 KiB page lives on one channel).
const (
	InterleaveLine = memsim.InterleaveLine
	InterleavePage = memsim.InterleavePage
)

// MaxChannels is the largest supported Config.Channels.
const MaxChannels = memsim.MaxChannels

// MaxJournalShards is the largest supported Config.JournalShards.
const MaxJournalShards = vm.MaxJournalShards

// JournalShardPressure is one SSP metadata-journal shard's state at a
// quiescent point: ring fill, records appended and checkpoints drained
// (see Machine.JournalPressure).
type JournalShardPressure = machine.JournalShardPressure

// HeapBase is the first virtual address of the persistent heap.
const HeapBase = vm.HeapBase

// RootSlots is the number of named persistent root slots.
const RootSlots = pheap.RootSlots

// Config selects the machine to simulate. The zero value of any field
// falls back to the paper's Table 2 parameters.
type Config struct {
	Backend Backend
	Cores   int // default 1

	// Memory latencies in nanoseconds (Table 2: DRAM 50/50, NVRAM 50/200).
	NVRAMReadNS  float64
	NVRAMWriteNS float64
	DRAMNS       float64

	// Multi-channel memory model (beyond the paper's single-channel
	// Table 2). Channels splits memory into independent interleaved
	// channels, each with its own banks and data-bus timeline, so
	// concurrent cores only contend on memory they genuinely share.
	Channels   int        // independent memory channels (default 1, max 16)
	Interleave Interleave // address→channel policy (default InterleaveLine)

	// Capacities.
	NVRAMMB      int // simulated NVRAM size (default 128)
	DRAMMB       int // simulated DRAM size (default 32)
	MaxHeapPages int // persistent heap limit in 4 KiB pages
	JournalKB    int // SSP metadata journal region, per shard
	LogKB        int // per-core undo/redo log region
	TLBEntries   int // per-core L1 DTLB entries (default 64)
	STLBEntries  int // per-core L2 STLB entries (default 1024; -1 disables)
	L2KB         int // per-core L2 capacity in KiB (default 256; min 32)
	L3KB         int // shared L3 capacity in KiB (default 12288; min 64)

	// JournalShards splits the SSP metadata journal into independent
	// per-core regions (default 1 = the paper's single shared journal; max
	// MaxJournalShards). Each committing core appends its batches to shard
	// core mod JournalShards with its own buffered tail line, TIDs come
	// from one global monotonic allocator, and recovery merges the shards
	// back into a single TID-ordered replay. With one shard every commit's
	// journal append and tail-line flush serialises on one NVRAM bank —
	// SSP's main multi-core Amdahl term; sharding removes it.
	JournalShards int

	// SSP mechanism knobs.
	SSPCacheEntries int    // transient SSP cache capacity (default N·T+O)
	SSPCacheLatency Cycles // SSP cache access latency in cycles (Figure 9)
	SSPResident     int    // L3-resident SSP cache entries
	SubPageLines    int    // persistence granularity in lines (§4.3; 1 or 4)
	WSBEntries      int    // write-set buffer capacity in pages (§4.2)

	// Commit-path batching knobs (beyond the paper; both default to the
	// paper model, which reproduces every earlier figure bit-for-bit).
	//
	// EagerFlush issues each dirty write-set line's write-back (clwb)
	// immediately after the store instead of deferring it to the commit
	// fence, so the fence waits only on the tail of still-in-flight
	// flushes (Stats.CommitBarrierWait collapses). Repeated stores to a
	// line re-flush it — extra NVRAM data writes (Stats.EagerFlushLines)
	// are the price of the shorter critical path. Crash semantics are
	// unchanged: eagerly flushed data lands in the shadow locations the
	// committed bitmaps do not reference until the journal End record, so
	// a crash rolls it back exactly as before.
	EagerFlush bool
	// DurabilityEpoch, in cycles, enables the relaxed-durability commit
	// mode: Core.CommitRelaxed acknowledges a transaction as soon as its
	// journal batch is buffered, and each metadata-journal shard hardens
	// its open epoch — pending data fences, one epoch-seal record, one ring
	// flush, slot publication — once the epoch's age reaches this bound (or
	// earlier: at Core.Sync, Machine.Drain, any synchronous flush of the
	// shard, or a checkpoint). A crash loses at most the open epochs, each
	// atomically: recovery replays every shard only up to its last epoch
	// seal, so an acknowledged-but-unhardened transaction disappears
	// entirely — never partially — and Stats.LostEpochTxns counts it.
	// 0 = the paper's synchronous model, bit-for-bit; Core.Commit is always
	// synchronous regardless.
	DurabilityEpoch int
	// TimeWindow, in cycles, enables the deterministic bounded-lag window
	// scheduler for Machine.Run: cores advance in lockstep windows of this
	// many simulated cycles and execution within a window is serialised in
	// min-(clock, core-index) order, so all shared-hardware arbitration —
	// memory bank and bus occupancy, row-buffer transitions, cache
	// ownership transfers, group-commit admission, epoch hardening — is
	// resolved in simulated-time order and two runs with the same seed and
	// core count produce byte-identical Stats (see Machine.WindowStats for
	// the scheduler's own counters). The host-parallelism of Run is
	// forfeited — a windowed run uses one host core — while simulated
	// speedup curves are unaffected; 4096 is a good default window.
	// 0 (default) is the free-running concurrent mode, bit-for-bit.
	TimeWindow int
	// WindowParallel recovers host parallelism inside windowed Runs
	// (TimeWindow > 0) without giving up their determinism: each core
	// splits into a concurrent speculator running the program against a
	// functional heap image and a replayer driving the recorded operations
	// through the unchanged window scheduler, so every arbitration is
	// still resolved in (simulated clock, core index) order and results —
	// Stats and histograms included — stay byte-identical to
	// WindowParallel=false for the same seed. Requires TimeWindow > 0 and
	// the repo's locking discipline (shared persistent data accessed under
	// a Lock; a violation panics with a divergence report). The host
	// speedup is bounded by the program-logic share of host time — the
	// simulated-hardware work stays serialised — so expect a modest win;
	// see `sspbench -exp scale` host columns. Default false: the
	// serial-grant scheduler, bit-for-bit.
	WindowParallel bool
	// GroupCommitWindow, in cycles, coalesces the journal legs of commits
	// concurrently bound for the same metadata-journal shard: the first
	// committer holds its record batch open for the window, followers
	// append behind it and wait on the leader's flush ticket, and one ring
	// flush hardens every batch (Stats.GroupCommitBatches/
	// GroupCommitFollowers). 0 = the paper's flush-per-commit model.
	// Grouping only forms when several cores share a shard (cores >
	// JournalShards); serial execution degenerates to batches of one.
	GroupCommitWindow int
	// DRAMCacheFrames interposes a pager-style DRAM buffer cache of this
	// many 4 KiB frames between the CPU cache hierarchy and the NVRAM data
	// frame pool (beyond the paper). Clean fills and re-reads are served at
	// DRAM timing; clean cache victims evicted by capacity pressure are
	// absorbed in DRAM instead of rewritten to NVRAM, cutting NVRAM data
	// writes. Durability is unchanged: commit-path flushes write through to
	// NVRAM, and a fence over a line whose only dirty copy sits in the
	// buffer hardens it first. The frames must fit in DRAMMB. 0 (default)
	// is the paper's bare-NVRAM model, bit-for-bit.
	DRAMCacheFrames int
	// WearRotateWrites, when positive, enables SoftWear-style software
	// wear-leveling (beyond the paper): at page consolidation, a physical
	// frame whose cumulative NVRAM write count has reached this threshold
	// is retired — the page's committed lines are copied into a cold frame
	// from the allocator, the frame flip rides the same journaled
	// consolidation record, and the hot frame returns to the pool
	// (Stats.WearRotations, Stats.FrameWriteMax). 0 (default) disables
	// rotation, bit-for-bit.
	WearRotateWrites int
	// LazyConsolidation defers consolidation until slot pressure demands
	// it (the paper's §3.4 future-work variant).
	LazyConsolidation bool
	// FlipViaShootdown replaces the flip-current-bit broadcast with TLB
	// shootdowns (§4.3's simpler-hardware alternative).
	FlipViaShootdown bool

	// REDO-LOG knobs.
	RedoQueueLines int // post-commit write-back queue bound (per engine)
	// RedoWriteBackEngines is the number of background write-back engines
	// (default 1 = DHTM's single engine per memory controller, which pins
	// REDO-LOG's parallel speedup near 1x; per-core engines ablate that
	// serialisation — `sspbench -exp ablate`).
	RedoWriteBackEngines int

	// ConsolEpochCommits is the concurrent-mode consolidation epoch length:
	// during Machine.Run, SSP batches page consolidation and drains the
	// batch every N commits instead of consolidating inline at each commit
	// (which would serialise all cores on the metadata journal). Serial
	// execution ignores it. Default 32.
	ConsolEpochCommits int
}

// apply converts the public Config into the internal machine config.
func (c Config) apply() machine.Config {
	cores := c.Cores
	if cores <= 0 {
		cores = 1
	}
	mc := machine.DefaultConfig(c.Backend, cores)
	if c.Channels > 0 {
		mc.Mem.Channels = c.Channels
	}
	mc.Mem.Interleave = c.Interleave
	if c.NVRAMReadNS > 0 {
		mc.Mem.NVRAMRead = c.NVRAMReadNS
	}
	if c.NVRAMWriteNS > 0 {
		mc.Mem.NVRAMWrite = c.NVRAMWriteNS
	}
	if c.DRAMNS > 0 {
		mc.Mem.DRAMRead = c.DRAMNS
		mc.Mem.DRAMWrite = c.DRAMNS
	}
	if c.NVRAMMB > 0 {
		mc.Mem.NVRAMBytes = uint64(c.NVRAMMB) << 20
	}
	if c.DRAMMB > 0 {
		mc.Mem.DRAMBytes = uint64(c.DRAMMB) << 20
	}
	if c.MaxHeapPages > 0 {
		mc.Layout.MaxHeapPages = c.MaxHeapPages
	}
	if c.JournalKB > 0 {
		mc.Layout.JournalBytes = c.JournalKB << 10
	}
	if c.JournalShards > 0 {
		mc.Layout.JournalShards = c.JournalShards
	}
	if c.LogKB > 0 {
		mc.Layout.LogBytes = c.LogKB << 10
	}
	if c.L2KB > 0 {
		mc.Cache.L2Bytes = c.L2KB << 10
	}
	if c.L3KB > 0 {
		mc.Cache.L3Bytes = c.L3KB << 10
	}
	if c.TLBEntries > 0 {
		mc.TLBEntries = c.TLBEntries
	}
	if c.STLBEntries > 0 {
		mc.STLBEntries = c.STLBEntries
	} else if c.STLBEntries < 0 {
		mc.STLBEntries = 0
	}
	if c.TLBEntries > 0 || c.STLBEntries != 0 {
		// Re-derive the N·T+O sizing for the overridden TLB reach.
		mc.SSP.Entries = cores*(mc.TLBEntries+mc.STLBEntries) + 64
		mc.Layout.SSPSlots = mc.SSP.Entries
	}
	if c.SSPCacheEntries > 0 {
		mc.SSP.Entries = c.SSPCacheEntries
		if mc.Layout.SSPSlots < c.SSPCacheEntries {
			mc.Layout.SSPSlots = c.SSPCacheEntries
		}
	}
	if c.SSPCacheLatency > 0 {
		mc.SSP.CacheHitLat = c.SSPCacheLatency
	}
	if c.SSPResident > 0 {
		mc.SSP.ResidentEntries = c.SSPResident
	} else if c.SSPCacheEntries > 0 {
		mc.SSP.ResidentEntries = c.SSPCacheEntries
	}
	if c.SubPageLines > 0 {
		mc.SSP.SubPageLines = c.SubPageLines
	}
	if c.WSBEntries > 0 {
		mc.SSP.WSBEntries = c.WSBEntries
	}
	mc.DRAMCacheFrames = c.DRAMCacheFrames
	if c.WearRotateWrites > 0 {
		mc.SSP.WearRotateWrites = uint64(c.WearRotateWrites)
	}
	mc.SSP.LazyConsolidation = c.LazyConsolidation
	mc.SSP.FlipViaShootdown = c.FlipViaShootdown
	mc.SSP.EagerFlush = c.EagerFlush
	if c.TimeWindow > 0 {
		mc.TimeWindow = engine.Cycles(c.TimeWindow)
	}
	mc.WindowParallel = c.WindowParallel
	if c.GroupCommitWindow > 0 {
		mc.SSP.GroupCommitWindow = engine.Cycles(c.GroupCommitWindow)
	}
	if c.DurabilityEpoch > 0 {
		mc.SSP.DurabilityEpoch = engine.Cycles(c.DurabilityEpoch)
	}
	if c.RedoQueueLines > 0 {
		mc.Redo.QueueLines = c.RedoQueueLines
	}
	if c.RedoWriteBackEngines > 0 {
		mc.Redo.WriteBackEngines = c.RedoWriteBackEngines
	}
	if c.ConsolEpochCommits > 0 {
		mc.SSP.EpochCommits = c.ConsolEpochCommits
	}
	return mc
}

// Machine is one simulated system.
type Machine struct {
	*machine.Machine
	cfg Config
}

// Validate checks every Config field against its legal range. New and
// Restore call it; the zero value of any field is always legal (it selects
// the default).
func (c Config) Validate() error {
	if c.Cores < 0 {
		return fmt.Errorf("ssp: Cores is %d, want >= 0 (0 selects the default, 1)", c.Cores)
	}
	if c.Channels < 0 || c.Channels > MaxChannels {
		return fmt.Errorf("ssp: Channels is %d, want 0..%d (0 selects the default, 1)", c.Channels, MaxChannels)
	}
	if c.JournalShards < 0 || c.JournalShards > MaxJournalShards {
		return fmt.Errorf("ssp: JournalShards is %d, want 0..%d (0 selects the default, 1)", c.JournalShards, MaxJournalShards)
	}
	if c.NVRAMReadNS < 0 {
		return fmt.Errorf("ssp: NVRAMReadNS is %v, want >= 0 (0 selects the Table 2 default)", c.NVRAMReadNS)
	}
	if c.NVRAMWriteNS < 0 {
		return fmt.Errorf("ssp: NVRAMWriteNS is %v, want >= 0 (0 selects the Table 2 default)", c.NVRAMWriteNS)
	}
	if c.DRAMNS < 0 {
		return fmt.Errorf("ssp: DRAMNS is %v, want >= 0 (0 selects the Table 2 default)", c.DRAMNS)
	}
	if c.SubPageLines != 0 && c.SubPageLines != 1 && c.SubPageLines != 4 {
		return fmt.Errorf("ssp: SubPageLines is %d, want 1 or 4 (0 selects the default, 1)", c.SubPageLines)
	}
	if c.TimeWindow < 0 {
		return fmt.Errorf("ssp: TimeWindow is %d cycles, want >= 0 (0 selects free-running concurrent mode)", c.TimeWindow)
	}
	if c.WindowParallel && c.TimeWindow <= 0 {
		return fmt.Errorf("ssp: WindowParallel requires TimeWindow > 0 (the speculate-and-replay mode is defined only for windowed runs)")
	}
	if c.GroupCommitWindow < 0 {
		return fmt.Errorf("ssp: GroupCommitWindow is %d cycles, want >= 0 (0 disables group commit)", c.GroupCommitWindow)
	}
	if c.DurabilityEpoch < 0 {
		return fmt.Errorf("ssp: DurabilityEpoch is %d cycles, want >= 0 (0 keeps every commit synchronous)", c.DurabilityEpoch)
	}
	if c.L2KB < 0 || (c.L2KB > 0 && c.L2KB < 32) {
		return fmt.Errorf("ssp: L2KB is %d, want 0 or >= 32 (0 selects the default, 256)", c.L2KB)
	}
	if c.L3KB < 0 || (c.L3KB > 0 && c.L3KB < 64) {
		return fmt.Errorf("ssp: L3KB is %d, want 0 or >= 64 (0 selects the default, 12288)", c.L3KB)
	}
	if c.DRAMCacheFrames < 0 {
		return fmt.Errorf("ssp: DRAMCacheFrames is %d, want >= 0 (0 disables the DRAM buffer cache)", c.DRAMCacheFrames)
	}
	if c.DRAMCacheFrames > 0 {
		dramBytes := uint64(32) << 20
		if c.DRAMMB > 0 {
			dramBytes = uint64(c.DRAMMB) << 20
		}
		if uint64(c.DRAMCacheFrames)*PageBytes > dramBytes {
			return fmt.Errorf("ssp: DRAMCacheFrames is %d (%d KiB), want <= DRAM capacity %d MiB",
				c.DRAMCacheFrames, c.DRAMCacheFrames*4, dramBytes>>20)
		}
	}
	if c.WearRotateWrites < 0 {
		return fmt.Errorf("ssp: WearRotateWrites is %d, want >= 0 (0 disables wear rotation)", c.WearRotateWrites)
	}
	return nil
}

// New builds and formats a fresh machine. It returns an error — naming the
// offending field and its legal range — when the configuration is out of
// range (see Config.Validate).
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Machine{Machine: machine.New(cfg.apply()), cfg: cfg}, nil
}

// MustNew is New for call sites with no useful error path (examples, tests,
// benchmark drivers): it panics when the configuration is out of range.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Restore boots a machine from a crashed machine's NVRAM image and runs
// recovery. The configuration must match the image's.
func Restore(cfg Config, image []byte) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := machine.Restore(cfg.apply(), image)
	if err != nil {
		return nil, err
	}
	return &Machine{Machine: m, cfg: cfg}, nil
}

// ConfigUsed returns the Config the machine was built with.
func (m *Machine) ConfigUsed() Config { return m.cfg }

// Run executes fn once per core, each on its own goroutine, and returns
// when all of them finish — the machine's concurrent mode. See the package
// comment for the full contract (one goroutine per Core, no machine-level
// calls until Run returns).
func (m *Machine) Run(fn func(c *Core)) { m.Machine.Run(fn) }

// NewArena carves a per-core allocation arena of the given page count from
// the heap inside tx's open transaction. Create arenas during (serial)
// setup, then hand one to each core before Run.
func (m *Machine) NewArena(tx *Core, pages int) *Arena {
	return m.Heap().NewArena(tx, pages)
}

// FreqGHz returns the simulated core frequency.
func (m *Machine) FreqGHz() float64 { return m.Machine.Config().Mem.FreqGHz }

// Seconds converts a cycle count to simulated seconds.
func (m *Machine) Seconds(c Cycles) float64 {
	return float64(c) / (m.FreqGHz() * 1e9)
}

// RootVA returns the virtual address of persistent root slot i; roots are
// plain 8-byte words updated transactionally.
func RootVA(i int) uint64 { return pheap.RootVA(i) }

// SetRoot stores va into root slot i within tx's open transaction.
func (m *Machine) SetRoot(tx *Core, i int, va uint64) { tx.Store64(RootVA(i), va) }

// Root loads root slot i.
func (m *Machine) Root(tx *Core, i int) uint64 { return tx.Load64(RootVA(i)) }

// PageBytes and LineBytes expose the machine geometry.
const (
	PageBytes = memsim.PageBytes
	LineBytes = memsim.LineBytes
)
