// Package kv is a persistent in-memory key/value cache in the style of
// memcached — the paper's first real workload (§5.1, driven by a
// memslap-like generator: four clients, 90% SET). It provides SET/GET/
// DELETE over a chained hash index plus a doubly-linked eviction list
// (oldest-first), with every mutation a durable transaction.
//
// Keys are 64-bit (the workload generator draws them from a key space, as
// memslap does); values are fixed-capacity byte blocks sized at creation.
package kv

import (
	"fmt"

	"repro/ssp"
)

// Header layout (hdrBytes at head):
//
//	+0  bucket array VA
//	+8  bucket count (power of two)
//	+16 element count
//	+24 capacity (evict above this)
//	+32 eviction-list head (oldest)
//	+40 eviction-list tail (newest)
//	+48 value capacity in bytes
const hdrBytes = 56

// Entry layout (entry block of 40+valCap bytes):
//
//	+0  key
//	+8  chain next
//	+16 list prev
//	+24 list next
//	+32 value length
//	+40 value bytes
const entHdr = 40

// Config sizes a cache at creation.
type Config struct {
	Buckets    int // hash buckets, rounded up to a power of two
	Capacity   int // max entries before oldest-first eviction; 0 = unbounded
	ValueBytes int // value capacity per entry (default 64)
}

// Cache is a persistent memcached-like KV store.
type Cache struct {
	h    ssp.Allocator
	head uint64
}

// Create allocates an empty cache inside tx's open transaction.
func Create(tx *ssp.Core, h ssp.Allocator, cfg Config) *Cache {
	if cfg.Buckets <= 0 {
		cfg.Buckets = 1024
	}
	if cfg.ValueBytes <= 0 {
		cfg.ValueBytes = 64
	}
	n := 1
	for n < cfg.Buckets {
		n *= 2
	}
	head := h.Alloc(tx, hdrBytes)
	arr := h.Alloc(tx, n*8)
	tx.Store64(head+0, arr)
	tx.Store64(head+8, uint64(n))
	tx.Store64(head+16, 0)
	tx.Store64(head+24, uint64(cfg.Capacity))
	tx.Store64(head+32, 0)
	tx.Store64(head+40, 0)
	tx.Store64(head+48, uint64(cfg.ValueBytes))
	return &Cache{h: h, head: head}
}

// Open reattaches a cache from its head address.
func Open(h ssp.Allocator, head uint64) *Cache { return &Cache{h: h, head: head} }

// Head returns the cache's persistent head address.
func (s *Cache) Head() uint64 { return s.head }

// Len returns the entry count.
func (s *Cache) Len(tx *ssp.Core) uint64 { return tx.Load64(s.head + 16) }

// ValueBytes returns the per-entry value capacity.
func (s *Cache) ValueBytes(tx *ssp.Core) int { return int(tx.Load64(s.head + 48)) }

func (s *Cache) bucketVA(tx *ssp.Core, key uint64) uint64 {
	arr := tx.Load64(s.head)
	n := tx.Load64(s.head + 8)
	return arr + ((key*0x9e3779b97f4a7c15)&(n-1))*8
}

func (s *Cache) entrySize(tx *ssp.Core) int { return entHdr + s.ValueBytes(tx) }

// find returns (entry, chain predecessor) for key, or (0, pred of head).
func (s *Cache) find(tx *ssp.Core, key uint64) (uint64, uint64) {
	prev := uint64(0)
	e := tx.Load64(s.bucketVA(tx, key))
	for e != 0 {
		tx.Compute(2)
		if tx.Load64(e+0) == key {
			return e, prev
		}
		prev = e
		e = tx.Load64(e + 8)
	}
	return 0, prev
}

// Get copies the value for key into buf, returning its length.
func (s *Cache) Get(tx *ssp.Core, key uint64, buf []byte) (int, bool) {
	e, _ := s.find(tx, key)
	if e == 0 {
		return 0, false
	}
	n := int(tx.Load64(e + 32))
	if n > len(buf) {
		n = len(buf)
	}
	tx.LoadBytes(e+entHdr, buf[:n])
	return n, true
}

// Set stores val under key (insert or in-place update), evicting the
// oldest entry if the cache exceeds capacity. It reports whether an
// eviction happened.
func (s *Cache) Set(tx *ssp.Core, key uint64, val []byte) bool {
	if len(val) > s.ValueBytes(tx) {
		panic(fmt.Sprintf("kv: value of %d bytes exceeds capacity %d", len(val), s.ValueBytes(tx)))
	}
	if e, _ := s.find(tx, key); e != 0 {
		tx.Store64(e+32, uint64(len(val)))
		tx.StoreBytes(e+entHdr, val)
		return false
	}
	e := s.h.Alloc(tx, s.entrySize(tx))
	tx.Store64(e+0, key)
	tx.Store64(e+32, uint64(len(val)))
	tx.StoreBytes(e+entHdr, val)
	// Chain in.
	b := s.bucketVA(tx, key)
	tx.Store64(e+8, tx.Load64(b))
	tx.Store64(b, e)
	// Append to the eviction list tail.
	tail := tx.Load64(s.head + 40)
	tx.Store64(e+16, tail)
	tx.Store64(e+24, 0)
	if tail == 0 {
		tx.Store64(s.head+32, e)
	} else {
		tx.Store64(tail+24, e)
	}
	tx.Store64(s.head+40, e)
	count := tx.Load64(s.head+16) + 1
	tx.Store64(s.head+16, count)

	capacity := tx.Load64(s.head + 24)
	if capacity != 0 && count > capacity {
		s.evictOldest(tx)
		return true
	}
	return false
}

// Delete removes key, reporting whether it was present.
func (s *Cache) Delete(tx *ssp.Core, key uint64) bool {
	e, prev := s.find(tx, key)
	if e == 0 {
		return false
	}
	s.remove(tx, e, prev)
	return true
}

func (s *Cache) evictOldest(tx *ssp.Core) {
	oldest := tx.Load64(s.head + 32)
	if oldest == 0 {
		return
	}
	key := tx.Load64(oldest + 0)
	_, prev := s.find(tx, key)
	s.remove(tx, oldest, prev)
}

// remove unlinks e (whose chain predecessor is prev) from the chain and
// the eviction list and frees the block.
func (s *Cache) remove(tx *ssp.Core, e, prev uint64) {
	next := tx.Load64(e + 8)
	if prev == 0 {
		tx.Store64(s.bucketVA(tx, tx.Load64(e+0)), next)
	} else {
		tx.Store64(prev+8, next)
	}
	lp := tx.Load64(e + 16)
	ln := tx.Load64(e + 24)
	if lp == 0 {
		tx.Store64(s.head+32, ln)
	} else {
		tx.Store64(lp+24, ln)
	}
	if ln == 0 {
		tx.Store64(s.head+40, lp)
	} else {
		tx.Store64(ln+16, lp)
	}
	tx.Store64(s.head+16, tx.Load64(s.head+16)-1)
	s.h.Free(tx, e, s.entrySize(tx))
}
