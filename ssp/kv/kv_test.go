package kv

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/ssp"
)

func newMachine(b ssp.Backend) *ssp.Machine {
	return ssp.MustNew(ssp.Config{Backend: b, Cores: 1, NVRAMMB: 48, DRAMMB: 2, MaxHeapPages: 6144})
}

func val(tag byte, n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = tag
	}
	return v
}

func TestSetGetDelete(t *testing.T) {
	for _, b := range ssp.Backends() {
		t.Run(b.String(), func(t *testing.T) {
			m := newMachine(b)
			c := m.Core(0)
			c.Begin()
			s := Create(c, m.Heap(), Config{Buckets: 64, ValueBytes: 32})
			c.Commit()

			c.Begin()
			s.Set(c, 1, val('a', 10))
			c.Commit()
			buf := make([]byte, 32)
			n, ok := s.Get(c, 1, buf)
			if !ok || n != 10 || !bytes.Equal(buf[:10], val('a', 10)) {
				t.Fatalf("get after set: %d %v %q", n, ok, buf[:n])
			}
			// In-place update.
			c.Begin()
			s.Set(c, 1, val('b', 20))
			c.Commit()
			n, ok = s.Get(c, 1, buf)
			if !ok || n != 20 || buf[0] != 'b' {
				t.Fatalf("get after update: %d %v", n, ok)
			}
			if s.Len(c) != 1 {
				t.Fatalf("Len = %d", s.Len(c))
			}
			c.Begin()
			if !s.Delete(c, 1) {
				t.Fatal("delete failed")
			}
			c.Commit()
			if _, ok := s.Get(c, 1, buf); ok {
				t.Fatal("deleted key still present")
			}
			c.Begin()
			if s.Delete(c, 1) {
				t.Fatal("double delete reported success")
			}
			c.Commit()
		})
	}
}

func TestEvictionOldestFirst(t *testing.T) {
	m := newMachine(ssp.SSP)
	c := m.Core(0)
	c.Begin()
	s := Create(c, m.Heap(), Config{Buckets: 16, Capacity: 10, ValueBytes: 16})
	c.Commit()
	for k := uint64(0); k < 25; k++ {
		c.Begin()
		s.Set(c, k, val(byte(k), 8))
		c.Commit()
	}
	if got := s.Len(c); got != 10 {
		t.Fatalf("Len = %d, want 10", got)
	}
	buf := make([]byte, 16)
	// The oldest 15 must be gone, the newest 10 present.
	for k := uint64(0); k < 15; k++ {
		if _, ok := s.Get(c, k, buf); ok {
			t.Fatalf("old key %d survived eviction", k)
		}
	}
	for k := uint64(15); k < 25; k++ {
		if _, ok := s.Get(c, k, buf); !ok {
			t.Fatalf("new key %d evicted", k)
		}
	}
}

func TestAgainstReference(t *testing.T) {
	m := newMachine(ssp.SSP)
	c := m.Core(0)
	c.Begin()
	s := Create(c, m.Heap(), Config{Buckets: 64, ValueBytes: 16})
	c.Commit()
	rng := engine.NewRNG(99)
	ref := map[uint64][]byte{}
	buf := make([]byte, 16)
	for i := 0; i < 2000; i++ {
		k := rng.Uint64n(150)
		switch rng.Intn(10) {
		case 0: // delete
			c.Begin()
			got := s.Delete(c, k)
			c.Commit()
			if _, want := ref[k]; got != want {
				t.Fatalf("op %d delete mismatch", i)
			}
			delete(ref, k)
		case 1, 2: // get
			n, ok := s.Get(c, k, buf)
			want, wok := ref[k]
			if ok != wok || (ok && !bytes.Equal(buf[:n], want)) {
				t.Fatalf("op %d get mismatch: %v %v", i, ok, wok)
			}
		default: // set
			v := val(byte(rng.Intn(256)), 1+rng.Intn(16))
			c.Begin()
			s.Set(c, k, v)
			c.Commit()
			ref[k] = v
		}
	}
	if int(s.Len(c)) != len(ref) {
		t.Fatalf("Len = %d, want %d", s.Len(c), len(ref))
	}
}

func TestCrashRecovery(t *testing.T) {
	for _, b := range ssp.Backends() {
		t.Run(b.String(), func(t *testing.T) {
			m := newMachine(b)
			c := m.Core(0)
			c.Begin()
			s := Create(c, m.Heap(), Config{Buckets: 32, ValueBytes: 16})
			m.SetRoot(c, 0, s.Head())
			c.Commit()
			for k := uint64(0); k < 40; k++ {
				c.Begin()
				s.Set(c, k, val(byte(k), 8))
				c.Commit()
			}
			// Uncommitted SET, then crash.
			c.Begin()
			s.Set(c, 1000, val('X', 8))
			img := m.Crash()

			m2, err := ssp.Restore(m.ConfigUsed(), img)
			if err != nil {
				t.Fatal(err)
			}
			c2 := m2.Core(0)
			s2 := Open(m2.Heap(), m2.Root(c2, 0))
			buf := make([]byte, 16)
			for k := uint64(0); k < 40; k++ {
				if n, ok := s2.Get(c2, k, buf); !ok || buf[0] != byte(k) || n != 8 {
					t.Fatalf("lost key %d after crash", k)
				}
			}
			if _, ok := s2.Get(c2, 1000, buf); ok {
				t.Fatal("uncommitted SET visible after crash")
			}
		})
	}
}

func TestValueTooLargePanics(t *testing.T) {
	m := newMachine(ssp.SSP)
	c := m.Core(0)
	c.Begin()
	s := Create(c, m.Heap(), Config{Buckets: 8, ValueBytes: 8})
	c.Commit()
	defer func() {
		if recover() == nil {
			t.Error("oversized value should panic")
		}
		c.Abort()
	}()
	c.Begin()
	s.Set(c, 1, val('x', 64))
}
