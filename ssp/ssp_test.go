package ssp

import (
	"testing"
)

func TestConfigDefaultsApply(t *testing.T) {
	m := MustNew(Config{})
	if m.Cores() != 1 {
		t.Errorf("default cores = %d", m.Cores())
	}
	if m.FreqGHz() != 3.7 {
		t.Errorf("default frequency = %v", m.FreqGHz())
	}
	if m.Seconds(3_700_000_000) != 1.0 {
		t.Errorf("Seconds conversion wrong: %v", m.Seconds(3_700_000_000))
	}
}

func TestConfigOverridesApply(t *testing.T) {
	cfg := Config{
		Backend:         SSP,
		Cores:           2,
		NVRAMReadNS:     150,
		NVRAMWriteNS:    600,
		SSPCacheLatency: 90,
		SubPageLines:    4,
		WSBEntries:      8,
		NVRAMMB:         64,
		MaxHeapPages:    512,
	}
	m := MustNew(cfg)
	if m.Cores() != 2 {
		t.Errorf("cores = %d", m.Cores())
	}
	if got := m.ConfigUsed(); got.SSPCacheLatency != 90 || got.SubPageLines != 4 {
		t.Errorf("ConfigUsed lost overrides: %+v", got)
	}
	// Higher NVRAM latency must slow down commits.
	slow := txnCycles(m)
	fast := txnCycles(MustNew(Config{Backend: SSP, Cores: 2, NVRAMMB: 64, MaxHeapPages: 512, SubPageLines: 4}))
	if slow <= fast {
		t.Errorf("150/600ns machine (%d cycles) not slower than 50/200ns (%d)", slow, fast)
	}
}

func txnCycles(m *Machine) Cycles {
	c := m.Core(0)
	m.Heap().EnsureMapped(nil, 1, 1)
	start := c.Now()
	for i := 0; i < 20; i++ {
		c.Begin()
		c.Store64(HeapBase+PageBytes+uint64(i%8)*256, uint64(i))
		c.Commit()
	}
	return c.Now() - start
}

func TestRootsRoundTrip(t *testing.T) {
	m := MustNew(Config{Backend: UndoLog})
	c := m.Core(0)
	c.Begin()
	p := m.Heap().Alloc(c, 64)
	m.SetRoot(c, 5, p)
	c.Commit()
	if m.Root(c, 5) != p {
		t.Error("root lost")
	}
	if RootVA(0) == RootVA(1) {
		t.Error("root slots alias")
	}
}

func TestBackendsList(t *testing.T) {
	bs := Backends()
	if len(bs) != 3 {
		t.Fatalf("backends = %v", bs)
	}
	names := map[string]bool{}
	for _, b := range bs {
		names[b.String()] = true
	}
	for _, want := range []string{"SSP", "UNDO-LOG", "REDO-LOG"} {
		if !names[want] {
			t.Errorf("missing backend %s", want)
		}
	}
}

func TestRestoreRejectsUnformattedImage(t *testing.T) {
	cfg := Config{Backend: SSP, NVRAMMB: 32, MaxHeapPages: 128}
	blank := make([]byte, 32<<20)
	if _, err := Restore(cfg, blank); err == nil {
		t.Error("Restore accepted a blank image")
	}
}
