package ssp

import (
	"strings"
	"testing"
)

// TestConfigValidation drives New through every rejected configuration
// class and asserts the error names the offending field (so a misconfigured
// experiment fails loudly and legibly instead of indexing out of range or
// silently mis-simulating).
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string // must appear in the error text
	}{
		{"negative cores", Config{Cores: -1}, "Cores"},
		{"negative channels", Config{Channels: -2}, "Channels"},
		{"channels over max", Config{Channels: MaxChannels + 1}, "Channels"},
		{"negative shards", Config{JournalShards: -1}, "JournalShards"},
		{"shards over max", Config{JournalShards: MaxJournalShards + 1}, "JournalShards"},
		{"negative nvram read", Config{NVRAMReadNS: -50}, "NVRAMReadNS"},
		{"negative nvram write", Config{NVRAMWriteNS: -0.5}, "NVRAMWriteNS"},
		{"negative dram", Config{DRAMNS: -15}, "DRAMNS"},
		{"subpage lines 2", Config{SubPageLines: 2}, "SubPageLines"},
		{"subpage lines 3", Config{SubPageLines: 3}, "SubPageLines"},
		{"subpage lines 8", Config{SubPageLines: 8}, "SubPageLines"},
		{"negative subpage lines", Config{SubPageLines: -4}, "SubPageLines"},
		{"negative group window", Config{GroupCommitWindow: -1}, "GroupCommitWindow"},
		{"negative epoch", Config{DurabilityEpoch: -100}, "DurabilityEpoch"},
		{"negative time window", Config{TimeWindow: -4096}, "TimeWindow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", tc.cfg)
			} else if !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("error %q does not name field %s", err, tc.field)
			}
			if m, err := New(tc.cfg); err == nil {
				t.Fatalf("New accepted %+v", tc.cfg)
			} else if m != nil {
				t.Fatal("New returned a machine alongside the error")
			}
			if _, err := Restore(tc.cfg, make([]byte, 1<<20)); err == nil {
				t.Fatalf("Restore accepted %+v", tc.cfg)
			}
		})
	}
}

// TestConfigValidationAccepts pins the legal boundary values: zero selects
// every default, and the maxima themselves are in range.
func TestConfigValidationAccepts(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Channels: MaxChannels, JournalShards: MaxJournalShards},
		{SubPageLines: 1},
		{SubPageLines: 4},
		{DurabilityEpoch: 1 << 20, GroupCommitWindow: 4096},
		{TimeWindow: 4096},
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate rejected legal config %+v: %v", cfg, err)
		}
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on an invalid config")
		}
	}()
	MustNew(Config{SubPageLines: 3})
}
