package ssp

import (
	"testing"
)

// TestRelaxedCommitRoundTrip exercises the public relaxed-durability
// surface end to end: CommitRelaxed acknowledges, Sync upgrades to durable,
// and a crash after the Sync keeps every synced transaction while losing an
// acknowledged-but-unhardened one atomically.
func TestRelaxedCommitRoundTrip(t *testing.T) {
	cfg := Config{Backend: SSP, Cores: 1, DurabilityEpoch: 500_000}
	m := MustNew(cfg)
	c := m.Core(0)
	m.Heap().EnsureMapped(nil, 1, 2)
	page := uint64(HeapBase) + uint64(PageBytes)

	for i := 0; i < 8; i++ {
		c.Begin()
		c.Store64(page+uint64(i)*8, uint64(i+1))
		c.CommitRelaxed()
	}
	c.Sync()
	st := m.Stats()
	if st.RelaxedCommits != 8 {
		t.Fatalf("RelaxedCommits = %d, want 8", st.RelaxedCommits)
	}
	if st.HardenedEpochs == 0 || st.EpochSeals == 0 {
		t.Fatalf("Sync hardened no epoch (hardened %d, seals %d)", st.HardenedEpochs, st.EpochSeals)
	}

	// One more relaxed commit with no Sync behind it: the crash may lose it,
	// but only whole.
	c.Begin()
	c.Store64(page+512, 0xDEAD)
	c.CommitRelaxed()

	img := m.Crash()
	m2, err := Restore(cfg, img)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	c2 := m2.Core(0)
	m2.Heap().EnsureMapped(nil, 1, 2)
	for i := 0; i < 8; i++ {
		if got := c2.Load64(page + uint64(i)*8); got != uint64(i+1) {
			t.Fatalf("synced transaction %d lost or torn: read %#x", i, got)
		}
	}
	if got := c2.Load64(page + 512); got != 0 && got != 0xDEAD {
		t.Fatalf("unhardened transaction torn: read %#x", got)
	}
}

// TestRelaxedDisabledIsSynchronous pins the DurabilityEpoch = 0 contract:
// CommitRelaxed is bit-for-bit Commit (same clock, same traffic, same
// journal activity) and Sync is free.
func TestRelaxedDisabledIsSynchronous(t *testing.T) {
	run := func(relaxed bool) (Cycles, uint64, uint64, uint64) {
		m := MustNew(Config{Backend: SSP, Cores: 1})
		c := m.Core(0)
		m.Heap().EnsureMapped(nil, 1, 2)
		for i := 0; i < 32; i++ {
			c.Begin()
			c.Store64(HeapBase+PageBytes+uint64(i%16)*64, uint64(i))
			if relaxed {
				c.CommitRelaxed()
			} else {
				c.Commit()
			}
		}
		c.Sync()
		m.Drain()
		st := m.Stats()
		return c.Now(), st.NVRAMWriteLines, st.JournalRecords, st.RelaxedCommits
	}
	syncClock, syncWrites, syncRecs, _ := run(false)
	relClock, relWrites, relRecs, relaxedCommits := run(true)
	if syncClock != relClock || syncWrites != relWrites || syncRecs != relRecs {
		t.Fatalf("DurabilityEpoch=0 diverged: clock %d vs %d, writes %d vs %d, records %d vs %d",
			syncClock, relClock, syncWrites, relWrites, syncRecs, relRecs)
	}
	if relaxedCommits != 0 {
		t.Fatalf("RelaxedCommits = %d with the mode disabled", relaxedCommits)
	}
}
