package pds

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/ssp"
)

// Property (testing/quick): for any seed, a random op sequence applied to
// the B+-tree and the red-black tree leaves both structures agreeing with
// each other and with a reference map, with red-black invariants intact.
func TestQuickTreesAgreeWithReference(t *testing.T) {
	f := func(seed uint64) bool {
		m := newMachine(ssp.SSP)
		c := m.Core(0)
		c.Begin()
		bt := CreateBTree(c, m.Heap())
		rb := CreateRBTree(c, m.Heap())
		c.Commit()
		rng := engine.NewRNG(seed)
		ref := map[uint64]uint64{}
		for i := 0; i < 400; i++ {
			k := rng.Uint64n(64)
			if rng.Intn(3) == 0 {
				c.Begin()
				db := bt.Delete(c, k)
				dr := rb.Delete(c, k)
				c.Commit()
				_, existed := ref[k]
				if db != existed || dr != existed {
					return false
				}
				delete(ref, k)
			} else {
				v := rng.Uint64()
				c.Begin()
				ab := bt.Insert(c, k, v)
				ar := rb.Insert(c, k, v)
				c.Commit()
				_, existed := ref[k]
				if ab == existed || ar == existed {
					return false
				}
				ref[k] = v
			}
		}
		if rb.CheckInvariants(c) < 0 {
			return false
		}
		for k := uint64(0); k < 64; k++ {
			want, wok := ref[k]
			vb, okb := bt.Get(c, k)
			vr, okr := rb.Get(c, k)
			if okb != wok || okr != wok {
				return false
			}
			if wok && (vb != want || vr != want) {
				return false
			}
		}
		return bt.Len(c) == uint64(len(ref)) && rb.Len(c) == uint64(len(ref))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: hash-table contents survive a crash for any op sequence — the
// recovered table equals the reference at the last committed transaction.
func TestQuickHashCrashConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		m := newMachine(ssp.SSP)
		c := m.Core(0)
		c.Begin()
		h := CreateHash(c, m.Heap(), 32)
		m.SetRoot(c, 0, h.Head())
		c.Commit()
		rng := engine.NewRNG(seed)
		ref := map[uint64]uint64{}
		for i := 0; i < 150; i++ {
			k := rng.Uint64n(48)
			c.Begin()
			if rng.Intn(4) == 0 {
				h.Delete(c, k)
				c.Commit()
				delete(ref, k)
			} else {
				v := rng.Uint64()
				h.Insert(c, k, v)
				c.Commit()
				ref[k] = v
			}
		}
		// One uncommitted op, then power failure.
		c.Begin()
		h.Insert(c, 1000, 1)

		img := m.Crash()
		m2, err := ssp.Restore(m.ConfigUsed(), img)
		if err != nil {
			return false
		}
		c2 := m2.Core(0)
		h2 := OpenHash(m2.Heap(), m2.Root(c2, 0))
		if _, ok := h2.Get(c2, 1000); ok {
			return false
		}
		for k := uint64(0); k < 48; k++ {
			want, wok := ref[k]
			v, ok := h2.Get(c2, k)
			if ok != wok || (ok && v != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Property: array swaps are a permutation — for any swap sequence, the
// multiset of values is preserved and matches the reference permutation.
func TestQuickArrayPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		m := newMachine(ssp.UndoLog)
		c := m.Core(0)
		const n = 64
		c.Begin()
		a := CreateArray(c, m.Heap(), n)
		for i := 0; i < n; i++ {
			a.Set(c, i, uint64(i)+100)
		}
		c.Commit()
		rng := engine.NewRNG(seed)
		ref := make([]uint64, n)
		for i := range ref {
			ref[i] = uint64(i) + 100
		}
		for op := 0; op < 200; op++ {
			i, j := rng.Intn(n), rng.Intn(n)
			c.Begin()
			a.Swap(c, i, j)
			c.Commit()
			ref[i], ref[j] = ref[j], ref[i]
		}
		for i := 0; i < n; i++ {
			if a.Get(c, i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
