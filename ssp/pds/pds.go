// Package pds provides the persistent data structures the paper's
// microbenchmarks exercise (Table 3): a B+-tree, a red-black tree, a
// chained hash table and a fixed array (for the SPS swap benchmark), all
// built on the transactional API of package ssp.
//
// Every structure stores its state exclusively in the persistent heap and
// keeps no volatile mirrors, so a structure handle can be reattached to a
// recovered machine with the Open* constructors and a persistent root.
// Methods run inside the caller's open transaction: callers bracket each
// update with Core.Begin/Commit (one durable transaction per operation, as
// in §5.1) and are responsible for isolation (locks), as in the paper's
// programming model.
package pds

import (
	"repro/ssp"
)

// kv is the shared field-access helper: all structures store 8-byte words.
func load(tx *ssp.Core, va uint64) uint64     { return tx.Load64(va) }
func store(tx *ssp.Core, va uint64, v uint64) { tx.Store64(va, v) }
