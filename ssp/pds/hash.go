package pds

import (
	"repro/ssp"
)

// Chained hash table node: 32 bytes (key, value, next, padding).
const (
	hNodeBytes = 32
	hKeyOff    = 0
	hValOff    = 8
	hNextOff   = 16
)

// Hash is a persistent chained hash table with a fixed bucket array.
type Hash struct {
	h    ssp.Allocator
	head uint64 // +0 bucket array VA, +8 bucket count, +16 element count
}

// CreateHash allocates a table with nBuckets (rounded up to a power of
// two) inside tx's transaction.
func CreateHash(tx *ssp.Core, h ssp.Allocator, nBuckets int) *Hash {
	n := 1
	for n < nBuckets {
		n *= 2
	}
	head := h.Alloc(tx, 24)
	arr := h.Alloc(tx, n*8)
	// Bucket array starts zeroed (fresh frames are zero-filled), but the
	// words must be written transactionally to be recoverable after a
	// crash mid-create; a page-granular memset via the array's own pages
	// is unnecessary because Alloc hands out zeroed bump space.
	store(tx, head+0, arr)
	store(tx, head+8, uint64(n))
	store(tx, head+16, 0)
	return &Hash{h: h, head: head}
}

// OpenHash reattaches a table from its head address.
func OpenHash(h ssp.Allocator, head uint64) *Hash { return &Hash{h: h, head: head} }

// Head returns the persistent head address.
func (t *Hash) Head() uint64 { return t.head }

// Len returns the element count.
func (t *Hash) Len(tx *ssp.Core) uint64 { return load(tx, t.head+16) }

func (t *Hash) bucketVA(tx *ssp.Core, k uint64) uint64 {
	arr := load(tx, t.head)
	n := load(tx, t.head+8)
	idx := (k * 0x9e3779b97f4a7c15) & (n - 1)
	return arr + idx*8
}

// Get returns the value stored under k.
func (t *Hash) Get(tx *ssp.Core, k uint64) (uint64, bool) {
	n := load(tx, t.bucketVA(tx, k))
	for n != 0 {
		tx.Compute(2)
		if load(tx, n+hKeyOff) == k {
			return load(tx, n+hValOff), true
		}
		n = load(tx, n+hNextOff)
	}
	return 0, false
}

// Insert stores v under k, replacing any existing value; reports whether
// the key was new.
func (t *Hash) Insert(tx *ssp.Core, k, v uint64) bool {
	bucket := t.bucketVA(tx, k)
	n := load(tx, bucket)
	for n != 0 {
		tx.Compute(2)
		if load(tx, n+hKeyOff) == k {
			store(tx, n+hValOff, v)
			return false
		}
		n = load(tx, n+hNextOff)
	}
	node := t.h.Alloc(tx, hNodeBytes)
	store(tx, node+hKeyOff, k)
	store(tx, node+hValOff, v)
	store(tx, node+hNextOff, load(tx, bucket))
	store(tx, bucket, node)
	store(tx, t.head+16, load(tx, t.head+16)+1)
	return true
}

// Delete removes k, reporting whether it was present.
func (t *Hash) Delete(tx *ssp.Core, k uint64) bool {
	bucket := t.bucketVA(tx, k)
	prev := uint64(0)
	n := load(tx, bucket)
	for n != 0 {
		tx.Compute(2)
		if load(tx, n+hKeyOff) == k {
			next := load(tx, n+hNextOff)
			if prev == 0 {
				store(tx, bucket, next)
			} else {
				store(tx, prev+hNextOff, next)
			}
			t.h.Free(tx, n, hNodeBytes)
			store(tx, t.head+16, load(tx, t.head+16)-1)
			return true
		}
		prev = n
		n = load(tx, n+hNextOff)
	}
	return false
}
