package pds

import (
	"fmt"

	"repro/ssp"
)

// Array is a persistent fixed array of uint64, the substrate of the SPS
// microbenchmark ("swap elements in an array", Table 3: 2 lines / 2 pages
// per transaction).
type Array struct {
	h    ssp.Allocator
	head uint64 // +0 data VA, +8 length
}

// CreateArray allocates an array of n zeroed elements inside tx's
// transaction.
func CreateArray(tx *ssp.Core, h ssp.Allocator, n int) *Array {
	if n <= 0 {
		panic("pds: CreateArray with non-positive length")
	}
	head := h.Alloc(tx, 16)
	data := h.Alloc(tx, n*8)
	store(tx, head+0, data)
	store(tx, head+8, uint64(n))
	return &Array{h: h, head: head}
}

// OpenArray reattaches an array from its head address.
func OpenArray(h ssp.Allocator, head uint64) *Array { return &Array{h: h, head: head} }

// Head returns the persistent head address.
func (a *Array) Head() uint64 { return a.head }

// Len returns the array length.
func (a *Array) Len(tx *ssp.Core) int { return int(load(tx, a.head+8)) }

func (a *Array) elemVA(tx *ssp.Core, i int) uint64 {
	n := load(tx, a.head+8)
	if i < 0 || uint64(i) >= n {
		panic(fmt.Sprintf("pds: array index %d out of range %d", i, n))
	}
	return load(tx, a.head) + uint64(i)*8
}

// Get returns element i.
func (a *Array) Get(tx *ssp.Core, i int) uint64 { return load(tx, a.elemVA(tx, i)) }

// Set writes element i.
func (a *Array) Set(tx *ssp.Core, i int, v uint64) { store(tx, a.elemVA(tx, i), v) }

// Swap exchanges elements i and j — one SPS transaction body.
func (a *Array) Swap(tx *ssp.Core, i, j int) {
	vi := a.Get(tx, i)
	vj := a.Get(tx, j)
	a.Set(tx, i, vj)
	a.Set(tx, j, vi)
}
