package pds

import (
	"repro/ssp"
)

// Red-black tree node: one cache line (64 bytes).
//
//	+0  key
//	+8  value
//	+16 left
//	+24 right
//	+32 parent
//	+40 color (0 = black, 1 = red)
const (
	rbNodeBytes = 64
	rbKeyOff    = 0
	rbValOff    = 8
	rbLeftOff   = 16
	rbRightOff  = 24
	rbParentOff = 32
	rbColorOff  = 40

	rbBlack = 0
	rbRed   = 1
)

// RBTree is a persistent red-black tree (CLRS insert/delete with full
// rebalancing — the paper's RBTree workload touches ~12 lines per update
// precisely because of these fixups).
type RBTree struct {
	h    ssp.Allocator
	head uint64 // +0 root, +8 count
}

// CreateRBTree allocates an empty tree inside tx's transaction.
func CreateRBTree(tx *ssp.Core, h ssp.Allocator) *RBTree {
	head := h.Alloc(tx, 16)
	store(tx, head+0, 0)
	store(tx, head+8, 0)
	return &RBTree{h: h, head: head}
}

// OpenRBTree reattaches a tree from its head address.
func OpenRBTree(h ssp.Allocator, head uint64) *RBTree { return &RBTree{h: h, head: head} }

// Head returns the persistent head address.
func (t *RBTree) Head() uint64 { return t.head }

// Len returns the number of stored keys.
func (t *RBTree) Len(tx *ssp.Core) uint64 { return load(tx, t.head+8) }

func rbKey(tx *ssp.Core, n uint64) uint64    { return load(tx, n+rbKeyOff) }
func rbLeft(tx *ssp.Core, n uint64) uint64   { return load(tx, n+rbLeftOff) }
func rbRight(tx *ssp.Core, n uint64) uint64  { return load(tx, n+rbRightOff) }
func rbParent(tx *ssp.Core, n uint64) uint64 { return load(tx, n+rbParentOff) }

// rbColor treats the nil node (0) as black, as CLRS requires.
func rbColor(tx *ssp.Core, n uint64) uint64 {
	if n == 0 {
		return rbBlack
	}
	return load(tx, n+rbColorOff)
}

func rbSetColor(tx *ssp.Core, n uint64, c uint64) {
	if n != 0 {
		store(tx, n+rbColorOff, c)
	}
}

// Get returns the value stored under k.
func (t *RBTree) Get(tx *ssp.Core, k uint64) (uint64, bool) {
	n := load(tx, t.head)
	for n != 0 {
		tx.Compute(4)
		nk := rbKey(tx, n)
		switch {
		case k < nk:
			n = rbLeft(tx, n)
		case k > nk:
			n = rbRight(tx, n)
		default:
			return load(tx, n+rbValOff), true
		}
	}
	return 0, false
}

func (t *RBTree) rotateLeft(tx *ssp.Core, x uint64) {
	y := rbRight(tx, x)
	yl := rbLeft(tx, y)
	store(tx, x+rbRightOff, yl)
	if yl != 0 {
		store(tx, yl+rbParentOff, x)
	}
	xp := rbParent(tx, x)
	store(tx, y+rbParentOff, xp)
	if xp == 0 {
		store(tx, t.head, y)
	} else if rbLeft(tx, xp) == x {
		store(tx, xp+rbLeftOff, y)
	} else {
		store(tx, xp+rbRightOff, y)
	}
	store(tx, y+rbLeftOff, x)
	store(tx, x+rbParentOff, y)
}

func (t *RBTree) rotateRight(tx *ssp.Core, x uint64) {
	y := rbLeft(tx, x)
	yr := rbRight(tx, y)
	store(tx, x+rbLeftOff, yr)
	if yr != 0 {
		store(tx, yr+rbParentOff, x)
	}
	xp := rbParent(tx, x)
	store(tx, y+rbParentOff, xp)
	if xp == 0 {
		store(tx, t.head, y)
	} else if rbRight(tx, xp) == x {
		store(tx, xp+rbRightOff, y)
	} else {
		store(tx, xp+rbLeftOff, y)
	}
	store(tx, y+rbRightOff, x)
	store(tx, x+rbParentOff, y)
}

// Insert stores v under k, replacing any existing value; reports whether
// the key was new.
func (t *RBTree) Insert(tx *ssp.Core, k, v uint64) bool {
	var parent uint64
	n := load(tx, t.head)
	for n != 0 {
		tx.Compute(4)
		parent = n
		nk := rbKey(tx, n)
		switch {
		case k < nk:
			n = rbLeft(tx, n)
		case k > nk:
			n = rbRight(tx, n)
		default:
			store(tx, n+rbValOff, v)
			return false
		}
	}
	z := t.h.Alloc(tx, rbNodeBytes)
	store(tx, z+rbKeyOff, k)
	store(tx, z+rbValOff, v)
	store(tx, z+rbLeftOff, 0)
	store(tx, z+rbRightOff, 0)
	store(tx, z+rbParentOff, parent)
	store(tx, z+rbColorOff, rbRed)
	if parent == 0 {
		store(tx, t.head, z)
	} else if k < rbKey(tx, parent) {
		store(tx, parent+rbLeftOff, z)
	} else {
		store(tx, parent+rbRightOff, z)
	}
	t.insertFixup(tx, z)
	store(tx, t.head+8, load(tx, t.head+8)+1)
	return true
}

func (t *RBTree) insertFixup(tx *ssp.Core, z uint64) {
	for {
		p := rbParent(tx, z)
		if p == 0 || rbColor(tx, p) == rbBlack {
			break
		}
		g := rbParent(tx, p)
		if p == rbLeft(tx, g) {
			u := rbRight(tx, g)
			if rbColor(tx, u) == rbRed {
				rbSetColor(tx, p, rbBlack)
				rbSetColor(tx, u, rbBlack)
				rbSetColor(tx, g, rbRed)
				z = g
				continue
			}
			if z == rbRight(tx, p) {
				z = p
				t.rotateLeft(tx, z)
				p = rbParent(tx, z)
				g = rbParent(tx, p)
			}
			rbSetColor(tx, p, rbBlack)
			rbSetColor(tx, g, rbRed)
			t.rotateRight(tx, g)
		} else {
			u := rbLeft(tx, g)
			if rbColor(tx, u) == rbRed {
				rbSetColor(tx, p, rbBlack)
				rbSetColor(tx, u, rbBlack)
				rbSetColor(tx, g, rbRed)
				z = g
				continue
			}
			if z == rbLeft(tx, p) {
				z = p
				t.rotateRight(tx, z)
				p = rbParent(tx, z)
				g = rbParent(tx, p)
			}
			rbSetColor(tx, p, rbBlack)
			rbSetColor(tx, g, rbRed)
			t.rotateLeft(tx, g)
		}
	}
	root := load(tx, t.head)
	rbSetColor(tx, root, rbBlack)
}

// transplant replaces subtree u with subtree v.
func (t *RBTree) transplant(tx *ssp.Core, u, v uint64) {
	up := rbParent(tx, u)
	if up == 0 {
		store(tx, t.head, v)
	} else if u == rbLeft(tx, up) {
		store(tx, up+rbLeftOff, v)
	} else {
		store(tx, up+rbRightOff, v)
	}
	if v != 0 {
		store(tx, v+rbParentOff, up)
	}
}

func (t *RBTree) minimum(tx *ssp.Core, n uint64) uint64 {
	for {
		l := rbLeft(tx, n)
		if l == 0 {
			return n
		}
		n = l
	}
}

// Delete removes k, reporting whether it was present. The freed node
// returns to the heap's free list within the same transaction.
func (t *RBTree) Delete(tx *ssp.Core, k uint64) bool {
	z := load(tx, t.head)
	for z != 0 {
		tx.Compute(4)
		nk := rbKey(tx, z)
		if k < nk {
			z = rbLeft(tx, z)
		} else if k > nk {
			z = rbRight(tx, z)
		} else {
			break
		}
	}
	if z == 0 {
		return false
	}

	y := z
	yColor := rbColor(tx, y)
	var x, xParent uint64
	if rbLeft(tx, z) == 0 {
		x = rbRight(tx, z)
		xParent = rbParent(tx, z)
		t.transplant(tx, z, x)
	} else if rbRight(tx, z) == 0 {
		x = rbLeft(tx, z)
		xParent = rbParent(tx, z)
		t.transplant(tx, z, x)
	} else {
		y = t.minimum(tx, rbRight(tx, z))
		yColor = rbColor(tx, y)
		x = rbRight(tx, y)
		if rbParent(tx, y) == z {
			xParent = y
		} else {
			xParent = rbParent(tx, y)
			t.transplant(tx, y, x)
			yr := rbRight(tx, z)
			store(tx, y+rbRightOff, yr)
			store(tx, yr+rbParentOff, y)
		}
		t.transplant(tx, z, y)
		zl := rbLeft(tx, z)
		store(tx, y+rbLeftOff, zl)
		store(tx, zl+rbParentOff, y)
		rbSetColor(tx, y, rbColor(tx, z))
	}
	if yColor == rbBlack {
		t.deleteFixup(tx, x, xParent)
	}
	t.h.Free(tx, z, rbNodeBytes)
	store(tx, t.head+8, load(tx, t.head+8)-1)
	return true
}

// deleteFixup restores red-black properties after removing a black node;
// x may be nil (0), so its parent is threaded explicitly.
func (t *RBTree) deleteFixup(tx *ssp.Core, x, xParent uint64) {
	for x != load(tx, t.head) && rbColor(tx, x) == rbBlack {
		if xParent == 0 {
			break
		}
		if x == rbLeft(tx, xParent) {
			w := rbRight(tx, xParent)
			if rbColor(tx, w) == rbRed {
				rbSetColor(tx, w, rbBlack)
				rbSetColor(tx, xParent, rbRed)
				t.rotateLeft(tx, xParent)
				w = rbRight(tx, xParent)
			}
			if rbColor(tx, rbLeft(tx, w)) == rbBlack && rbColor(tx, rbRight(tx, w)) == rbBlack {
				rbSetColor(tx, w, rbRed)
				x = xParent
				xParent = rbParent(tx, x)
			} else {
				if rbColor(tx, rbRight(tx, w)) == rbBlack {
					rbSetColor(tx, rbLeft(tx, w), rbBlack)
					rbSetColor(tx, w, rbRed)
					t.rotateRight(tx, w)
					w = rbRight(tx, xParent)
				}
				rbSetColor(tx, w, rbColor(tx, xParent))
				rbSetColor(tx, xParent, rbBlack)
				rbSetColor(tx, rbRight(tx, w), rbBlack)
				t.rotateLeft(tx, xParent)
				x = load(tx, t.head)
				xParent = 0
			}
		} else {
			w := rbLeft(tx, xParent)
			if rbColor(tx, w) == rbRed {
				rbSetColor(tx, w, rbBlack)
				rbSetColor(tx, xParent, rbRed)
				t.rotateRight(tx, xParent)
				w = rbLeft(tx, xParent)
			}
			if rbColor(tx, rbRight(tx, w)) == rbBlack && rbColor(tx, rbLeft(tx, w)) == rbBlack {
				rbSetColor(tx, w, rbRed)
				x = xParent
				xParent = rbParent(tx, x)
			} else {
				if rbColor(tx, rbLeft(tx, w)) == rbBlack {
					rbSetColor(tx, rbRight(tx, w), rbBlack)
					rbSetColor(tx, w, rbRed)
					t.rotateLeft(tx, w)
					w = rbLeft(tx, xParent)
				}
				rbSetColor(tx, w, rbColor(tx, xParent))
				rbSetColor(tx, xParent, rbBlack)
				rbSetColor(tx, rbLeft(tx, w), rbBlack)
				t.rotateRight(tx, xParent)
				x = load(tx, t.head)
				xParent = 0
			}
		}
	}
	rbSetColor(tx, x, rbBlack)
}

// CheckInvariants verifies red-black properties (test helper): root black,
// no red-red edges, equal black height. It returns the black height or -1.
func (t *RBTree) CheckInvariants(tx *ssp.Core) int {
	root := load(tx, t.head)
	if root != 0 && rbColor(tx, root) != rbBlack {
		return -1
	}
	return t.checkRec(tx, root)
}

func (t *RBTree) checkRec(tx *ssp.Core, n uint64) int {
	if n == 0 {
		return 1
	}
	l, r := rbLeft(tx, n), rbRight(tx, n)
	if rbColor(tx, n) == rbRed && (rbColor(tx, l) == rbRed || rbColor(tx, r) == rbRed) {
		return -1
	}
	lh := t.checkRec(tx, l)
	rh := t.checkRec(tx, r)
	if lh < 0 || rh < 0 || lh != rh {
		return -1
	}
	if rbColor(tx, n) == rbBlack {
		return lh + 1
	}
	return lh
}
