package pds

import (
	"testing"

	"repro/internal/engine"
	"repro/ssp"
)

func newMachine(b ssp.Backend) *ssp.Machine {
	return ssp.MustNew(ssp.Config{
		Backend:      b,
		Cores:        1,
		NVRAMMB:      48,
		DRAMMB:       2,
		MaxHeapPages: 6144,
		JournalKB:    64,
		LogKB:        64,
	})
}

// opTest drives randomized insert/delete/get traffic against a reference
// map, committing each op as its own transaction.
type kvops interface {
	Insert(tx *ssp.Core, k, v uint64) bool
	Delete(tx *ssp.Core, k uint64) bool
	Get(tx *ssp.Core, k uint64) (uint64, bool)
	Len(tx *ssp.Core) uint64
}

func runKVPropertyTest(t *testing.T, m *ssp.Machine, s kvops, seed uint64, ops int, keySpace uint64) {
	t.Helper()
	c := m.Core(0)
	rng := engine.NewRNG(seed)
	ref := map[uint64]uint64{}
	for i := 0; i < ops; i++ {
		k := rng.Uint64n(keySpace)
		switch rng.Intn(3) {
		case 0: // insert/update
			v := rng.Uint64()
			c.Begin()
			added := s.Insert(c, k, v)
			c.Commit()
			_, existed := ref[k]
			if added == existed {
				t.Fatalf("op %d: Insert(%d) added=%v existed=%v", i, k, added, existed)
			}
			ref[k] = v
		case 1: // delete
			c.Begin()
			removed := s.Delete(c, k)
			c.Commit()
			if _, existed := ref[k]; removed != existed {
				t.Fatalf("op %d: Delete(%d) removed=%v existed=%v", i, k, removed, existed)
			}
			delete(ref, k)
		case 2: // get
			v, ok := s.Get(c, k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", i, k, v, ok, rv, rok)
			}
		}
	}
	if got := s.Len(c); got != uint64(len(ref)) {
		t.Fatalf("Len = %d, want %d", got, len(ref))
	}
	// Full sweep.
	for k, rv := range ref {
		if v, ok := s.Get(c, k); !ok || v != rv {
			t.Fatalf("final Get(%d) = (%d,%v), want %d", k, v, ok, rv)
		}
	}
}

func TestBTreeAgainstReference(t *testing.T) {
	for _, b := range ssp.Backends() {
		t.Run(b.String(), func(t *testing.T) {
			m := newMachine(b)
			c := m.Core(0)
			c.Begin()
			bt := CreateBTree(c, m.Heap())
			c.Commit()
			runKVPropertyTest(t, m, bt, 0xB7EE+uint64(b), 3000, 400)
		})
	}
}

func TestRBTreeAgainstReference(t *testing.T) {
	for _, b := range ssp.Backends() {
		t.Run(b.String(), func(t *testing.T) {
			m := newMachine(b)
			c := m.Core(0)
			c.Begin()
			rb := CreateRBTree(c, m.Heap())
			c.Commit()
			runKVPropertyTest(t, m, rb, 0x4B+uint64(b), 3000, 400)
		})
	}
}

func TestHashAgainstReference(t *testing.T) {
	for _, b := range ssp.Backends() {
		t.Run(b.String(), func(t *testing.T) {
			m := newMachine(b)
			c := m.Core(0)
			c.Begin()
			h := CreateHash(c, m.Heap(), 256)
			c.Commit()
			runKVPropertyTest(t, m, h, 0x6A54+uint64(b), 3000, 400)
		})
	}
}

func TestRBTreeInvariantsHold(t *testing.T) {
	m := newMachine(ssp.SSP)
	c := m.Core(0)
	c.Begin()
	rb := CreateRBTree(c, m.Heap())
	c.Commit()
	rng := engine.NewRNG(0xCC)
	live := map[uint64]bool{}
	for i := 0; i < 1200; i++ {
		k := rng.Uint64n(300)
		c.Begin()
		if live[k] {
			rb.Delete(c, k)
			delete(live, k)
		} else {
			rb.Insert(c, k, k*3)
			live[k] = true
		}
		c.Commit()
		if i%25 == 0 {
			if rb.CheckInvariants(c) < 0 {
				t.Fatalf("red-black invariants violated after op %d", i)
			}
		}
	}
	if rb.CheckInvariants(c) < 0 {
		t.Fatal("red-black invariants violated at end")
	}
}

func TestBTreeOrderedIteration(t *testing.T) {
	m := newMachine(ssp.SSP)
	c := m.Core(0)
	c.Begin()
	bt := CreateBTree(c, m.Heap())
	c.Commit()
	rng := engine.NewRNG(42)
	keys := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		k := rng.Uint64n(10000)
		c.Begin()
		bt.Insert(c, k, k+1)
		c.Commit()
		keys[k] = true
	}
	var prev uint64
	first := true
	n := bt.Range(c, 0, 1<<30, func(k, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("range out of order: %d after %d", k, prev)
		}
		if v != k+1 {
			t.Fatalf("range wrong value for %d: %d", k, v)
		}
		prev, first = k, false
		return true
	})
	if n != len(keys) {
		t.Fatalf("range visited %d, want %d", n, len(keys))
	}
}

func TestBTreeSplitsDeep(t *testing.T) {
	m := newMachine(ssp.SSP)
	c := m.Core(0)
	c.Begin()
	bt := CreateBTree(c, m.Heap())
	c.Commit()
	// Sequential inserts force rightmost splits through multiple levels.
	const n = 3000
	for i := uint64(0); i < n; i++ {
		c.Begin()
		bt.Insert(c, i, i)
		c.Commit()
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := bt.Get(c, i); !ok || v != i {
			t.Fatalf("lost key %d after deep splits", i)
		}
	}
	if bt.Len(c) != n {
		t.Fatalf("Len = %d", bt.Len(c))
	}
}

func TestStructuresSurviveCrash(t *testing.T) {
	for _, b := range ssp.Backends() {
		t.Run(b.String(), func(t *testing.T) {
			m := newMachine(b)
			c := m.Core(0)
			c.Begin()
			bt := CreateBTree(c, m.Heap())
			rb := CreateRBTree(c, m.Heap())
			hs := CreateHash(c, m.Heap(), 64)
			ar := CreateArray(c, m.Heap(), 128)
			m.SetRoot(c, 0, bt.Head())
			m.SetRoot(c, 1, rb.Head())
			m.SetRoot(c, 2, hs.Head())
			m.SetRoot(c, 3, ar.Head())
			c.Commit()

			rng := engine.NewRNG(7)
			ref := map[uint64]uint64{}
			for i := 0; i < 300; i++ {
				k := rng.Uint64n(100)
				v := rng.Uint64()
				c.Begin()
				bt.Insert(c, k, v)
				rb.Insert(c, k, v)
				hs.Insert(c, k, v)
				ar.Set(c, int(k%128), v)
				c.Commit()
				ref[k] = v
			}
			// An uncommitted mutation right before the crash.
			c.Begin()
			bt.Insert(c, 999, 0xDEAD)
			rb.Insert(c, 999, 0xDEAD)

			img := m.Crash()
			m2, err := ssp.Restore(m.ConfigUsed(), img)
			if err != nil {
				t.Fatal(err)
			}
			c2 := m2.Core(0)
			h2 := m2.Heap()
			bt2 := OpenBTree(h2, m2.Root(c2, 0))
			rb2 := OpenRBTree(h2, m2.Root(c2, 1))
			hs2 := OpenHash(h2, m2.Root(c2, 2))
			ar2 := OpenArray(h2, m2.Root(c2, 3))

			for k, v := range ref {
				if got, ok := bt2.Get(c2, k); !ok || got != v {
					t.Fatalf("btree lost %d after crash: (%d,%v)", k, got, ok)
				}
				if got, ok := rb2.Get(c2, k); !ok || got != v {
					t.Fatalf("rbtree lost %d after crash: (%d,%v)", k, got, ok)
				}
				if got, ok := hs2.Get(c2, k); !ok || got != v {
					t.Fatalf("hash lost %d after crash: (%d,%v)", k, got, ok)
				}
			}
			if _, ok := bt2.Get(c2, 999); ok {
				t.Fatal("uncommitted btree insert visible after crash")
			}
			if _, ok := rb2.Get(c2, 999); ok {
				t.Fatal("uncommitted rbtree insert visible after crash")
			}
			if rb2.CheckInvariants(c2) < 0 {
				t.Fatal("rbtree invariants broken after crash")
			}
			_ = ar2
		})
	}
}

func TestArraySwap(t *testing.T) {
	m := newMachine(ssp.SSP)
	c := m.Core(0)
	c.Begin()
	ar := CreateArray(c, m.Heap(), 1000)
	for i := 0; i < 1000; i++ {
		ar.Set(c, i, uint64(i))
	}
	c.Commit()
	rng := engine.NewRNG(3)
	ref := make([]uint64, 1000)
	for i := range ref {
		ref[i] = uint64(i)
	}
	for op := 0; op < 500; op++ {
		i, j := rng.Intn(1000), rng.Intn(1000)
		c.Begin()
		ar.Swap(c, i, j)
		c.Commit()
		ref[i], ref[j] = ref[j], ref[i]
	}
	for i := 0; i < 1000; i++ {
		if got := ar.Get(c, i); got != ref[i] {
			t.Fatalf("array[%d] = %d, want %d", i, got, ref[i])
		}
	}
	if ar.Len(c) != 1000 {
		t.Fatalf("Len = %d", ar.Len(c))
	}
}

func TestArrayBoundsPanics(t *testing.T) {
	m := newMachine(ssp.SSP)
	c := m.Core(0)
	c.Begin()
	ar := CreateArray(c, m.Heap(), 4)
	c.Commit()
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds access should panic")
		}
	}()
	ar.Get(c, 4)
}

func TestHashCollisionChains(t *testing.T) {
	m := newMachine(ssp.SSP)
	c := m.Core(0)
	c.Begin()
	h := CreateHash(c, m.Heap(), 2) // tiny table: everything collides
	c.Commit()
	for k := uint64(0); k < 50; k++ {
		c.Begin()
		h.Insert(c, k, k*7)
		c.Commit()
	}
	for k := uint64(0); k < 50; k++ {
		if v, ok := h.Get(c, k); !ok || v != k*7 {
			t.Fatalf("chained get %d failed", k)
		}
	}
	// Delete middle-of-chain entries.
	for k := uint64(10); k < 40; k += 3 {
		c.Begin()
		if !h.Delete(c, k) {
			t.Fatalf("delete %d failed", k)
		}
		c.Commit()
	}
	for k := uint64(0); k < 50; k++ {
		_, ok := h.Get(c, k)
		deleted := k >= 10 && k < 40 && (k-10)%3 == 0
		if ok == deleted {
			t.Fatalf("key %d: ok=%v deleted=%v", k, ok, deleted)
		}
	}
}
