package pds

import (
	"repro/ssp"
)

// B+-tree node geometry: 256-byte nodes (4 cache lines), 14 keys.
//
// Node layout (offsets in bytes):
//
//	+0   flags (1 = leaf)
//	+8   nkeys
//	+16  next leaf (leaves) / unused (internals)
//	+24  keys[14]
//	+136 values[14] (leaves) / children[15] (internals)
const (
	btNodeBytes = 256
	btMaxKeys   = 14

	btFlagsOff = 0
	btNKeysOff = 8
	btNextOff  = 16
	btKeysOff  = 24
	btValsOff  = 136
)

// BTree is a persistent B+-tree mapping uint64 keys to uint64 values.
// Deletions remove entries from leaves without rebalancing (the
// write-optimised persistent-memory tree style of NV-Tree/WORT: structural
// shrink is traded for fewer NVRAM writes).
type BTree struct {
	h    ssp.Allocator
	head uint64 // header block: +0 root, +8 count
}

// CreateBTree allocates an empty tree inside tx's open transaction.
func CreateBTree(tx *ssp.Core, h ssp.Allocator) *BTree {
	head := h.Alloc(tx, 16)
	root := btNewLeaf(tx, h)
	store(tx, head+0, root)
	store(tx, head+8, 0)
	return &BTree{h: h, head: head}
}

// OpenBTree reattaches a tree from its head address (e.g. a root slot).
func OpenBTree(h ssp.Allocator, head uint64) *BTree { return &BTree{h: h, head: head} }

// Head returns the tree's persistent head address for use as a root.
func (t *BTree) Head() uint64 { return t.head }

// Len returns the number of stored keys.
func (t *BTree) Len(tx *ssp.Core) uint64 { return load(tx, t.head+8) }

func btNewLeaf(tx *ssp.Core, h ssp.Allocator) uint64 {
	n := h.Alloc(tx, btNodeBytes)
	store(tx, n+btFlagsOff, 1)
	store(tx, n+btNKeysOff, 0)
	store(tx, n+btNextOff, 0)
	return n
}

func btNewInternal(tx *ssp.Core, h ssp.Allocator) uint64 {
	n := h.Alloc(tx, btNodeBytes)
	store(tx, n+btFlagsOff, 0)
	store(tx, n+btNKeysOff, 0)
	return n
}

func btIsLeaf(tx *ssp.Core, n uint64) bool { return load(tx, n+btFlagsOff) == 1 }
func btNKeys(tx *ssp.Core, n uint64) int   { return int(load(tx, n+btNKeysOff)) }
func btKey(tx *ssp.Core, n uint64, i int) uint64 {
	return load(tx, n+btKeysOff+uint64(i)*8)
}
func btVal(tx *ssp.Core, n uint64, i int) uint64 {
	return load(tx, n+btValsOff+uint64(i)*8)
}
func btChild(tx *ssp.Core, n uint64, i int) uint64 {
	return load(tx, n+btValsOff+uint64(i)*8)
}

// btSearch returns the index of the first key >= k.
func btSearch(tx *ssp.Core, n uint64, k uint64) int {
	nk := btNKeys(tx, n)
	lo, hi := 0, nk
	for lo < hi {
		mid := (lo + hi) / 2
		tx.Compute(4)
		if btKey(tx, n, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under k.
func (t *BTree) Get(tx *ssp.Core, k uint64) (uint64, bool) {
	n := load(tx, t.head)
	for !btIsLeaf(tx, n) {
		i := btSearch(tx, n, k)
		if i < btNKeys(tx, n) && btKey(tx, n, i) == k {
			i++ // keys equal to the separator live in the right subtree
		}
		n = btChild(tx, n, i)
	}
	i := btSearch(tx, n, k)
	if i < btNKeys(tx, n) && btKey(tx, n, i) == k {
		return btVal(tx, n, i), true
	}
	return 0, false
}

// Insert stores v under k, replacing any existing value. It reports
// whether the key was new.
func (t *BTree) Insert(tx *ssp.Core, k, v uint64) bool {
	root := load(tx, t.head)
	right, sep, split, added := t.insertRec(tx, root, k, v)
	if split {
		newRoot := btNewInternal(tx, t.h)
		store(tx, newRoot+btNKeysOff, 1)
		store(tx, newRoot+btKeysOff, sep)
		store(tx, newRoot+btValsOff, root)
		store(tx, newRoot+btValsOff+8, right)
		store(tx, t.head, newRoot)
	}
	if added {
		store(tx, t.head+8, load(tx, t.head+8)+1)
	}
	return added
}

// insertRec inserts below n, returning a new right sibling and separator
// if n split, plus whether a new key was added.
func (t *BTree) insertRec(tx *ssp.Core, n uint64, k, v uint64) (right uint64, sep uint64, split, added bool) {
	if btIsLeaf(tx, n) {
		return t.leafInsert(tx, n, k, v)
	}
	i := btSearch(tx, n, k)
	if i < btNKeys(tx, n) && btKey(tx, n, i) == k {
		i++
	}
	child := btChild(tx, n, i)
	cRight, cSep, cSplit, added := t.insertRec(tx, child, k, v)
	if !cSplit {
		return 0, 0, false, added
	}
	// Insert (cSep, cRight) into this internal node at position i.
	nk := btNKeys(tx, n)
	if nk < btMaxKeys {
		for j := nk; j > i; j-- {
			store(tx, n+btKeysOff+uint64(j)*8, btKey(tx, n, j-1))
			store(tx, n+btValsOff+uint64(j+1)*8, btChild(tx, n, j))
		}
		store(tx, n+btKeysOff+uint64(i)*8, cSep)
		store(tx, n+btValsOff+uint64(i+1)*8, cRight)
		store(tx, n+btNKeysOff, uint64(nk+1))
		return 0, 0, false, added
	}
	// Split this internal node: gather into a scratch slice, divide.
	keys := make([]uint64, 0, nk+1)
	kids := make([]uint64, 0, nk+2)
	kids = append(kids, btChild(tx, n, 0))
	for j := 0; j < nk; j++ {
		keys = append(keys, btKey(tx, n, j))
		kids = append(kids, btChild(tx, n, j+1))
	}
	keys = append(keys[:i], append([]uint64{cSep}, keys[i:]...)...)
	kids = append(kids[:i+1], append([]uint64{cRight}, kids[i+1:]...)...)
	mid := len(keys) / 2
	sep = keys[mid]
	rn := btNewInternal(tx, t.h)
	// Left keeps keys[:mid], right takes keys[mid+1:].
	store(tx, n+btNKeysOff, uint64(mid))
	for j := 0; j < mid; j++ {
		store(tx, n+btKeysOff+uint64(j)*8, keys[j])
		store(tx, n+btValsOff+uint64(j)*8, kids[j])
	}
	store(tx, n+btValsOff+uint64(mid)*8, kids[mid])
	rcount := len(keys) - mid - 1
	store(tx, rn+btNKeysOff, uint64(rcount))
	for j := 0; j < rcount; j++ {
		store(tx, rn+btKeysOff+uint64(j)*8, keys[mid+1+j])
		store(tx, rn+btValsOff+uint64(j)*8, kids[mid+1+j])
	}
	store(tx, rn+btValsOff+uint64(rcount)*8, kids[len(kids)-1])
	return rn, sep, true, added
}

func (t *BTree) leafInsert(tx *ssp.Core, n uint64, k, v uint64) (right uint64, sep uint64, split, added bool) {
	i := btSearch(tx, n, k)
	nk := btNKeys(tx, n)
	if i < nk && btKey(tx, n, i) == k {
		store(tx, n+btValsOff+uint64(i)*8, v)
		return 0, 0, false, false
	}
	if nk < btMaxKeys {
		for j := nk; j > i; j-- {
			store(tx, n+btKeysOff+uint64(j)*8, btKey(tx, n, j-1))
			store(tx, n+btValsOff+uint64(j)*8, btVal(tx, n, j-1))
		}
		store(tx, n+btKeysOff+uint64(i)*8, k)
		store(tx, n+btValsOff+uint64(i)*8, v)
		store(tx, n+btNKeysOff, uint64(nk+1))
		return 0, 0, false, true
	}
	// Split the leaf.
	keys := make([]uint64, 0, nk+1)
	vals := make([]uint64, 0, nk+1)
	for j := 0; j < nk; j++ {
		keys = append(keys, btKey(tx, n, j))
		vals = append(vals, btVal(tx, n, j))
	}
	keys = append(keys[:i], append([]uint64{k}, keys[i:]...)...)
	vals = append(vals[:i], append([]uint64{v}, vals[i:]...)...)
	mid := len(keys) / 2
	rn := btNewLeaf(tx, t.h)
	store(tx, rn+btNextOff, load(tx, n+btNextOff))
	store(tx, n+btNextOff, rn)
	store(tx, n+btNKeysOff, uint64(mid))
	for j := 0; j < mid; j++ {
		store(tx, n+btKeysOff+uint64(j)*8, keys[j])
		store(tx, n+btValsOff+uint64(j)*8, vals[j])
	}
	rcount := len(keys) - mid
	store(tx, rn+btNKeysOff, uint64(rcount))
	for j := 0; j < rcount; j++ {
		store(tx, rn+btKeysOff+uint64(j)*8, keys[mid+j])
		store(tx, rn+btValsOff+uint64(j)*8, vals[mid+j])
	}
	return rn, keys[mid], true, true
}

// Delete removes k, reporting whether it was present. Leaves shrink in
// place; empty leaves remain linked (no rebalancing).
func (t *BTree) Delete(tx *ssp.Core, k uint64) bool {
	n := load(tx, t.head)
	for !btIsLeaf(tx, n) {
		i := btSearch(tx, n, k)
		if i < btNKeys(tx, n) && btKey(tx, n, i) == k {
			i++
		}
		n = btChild(tx, n, i)
	}
	i := btSearch(tx, n, k)
	nk := btNKeys(tx, n)
	if i >= nk || btKey(tx, n, i) != k {
		return false
	}
	for j := i; j < nk-1; j++ {
		store(tx, n+btKeysOff+uint64(j)*8, btKey(tx, n, j+1))
		store(tx, n+btValsOff+uint64(j)*8, btVal(tx, n, j+1))
	}
	store(tx, n+btNKeysOff, uint64(nk-1))
	store(tx, t.head+8, load(tx, t.head+8)-1)
	return true
}

// Range calls fn for up to max entries with keys >= from, in key order,
// returning the number visited.
func (t *BTree) Range(tx *ssp.Core, from uint64, max int, fn func(k, v uint64) bool) int {
	n := load(tx, t.head)
	for !btIsLeaf(tx, n) {
		i := btSearch(tx, n, from)
		if i < btNKeys(tx, n) && btKey(tx, n, i) == from {
			i++
		}
		n = btChild(tx, n, i)
	}
	seen := 0
	i := btSearch(tx, n, from)
	for n != 0 && seen < max {
		nk := btNKeys(tx, n)
		for ; i < nk && seen < max; i++ {
			seen++
			if !fn(btKey(tx, n, i), btVal(tx, n, i)) {
				return seen
			}
		}
		n = load(tx, n+btNextOff)
		i = 0
	}
	return seen
}
