// Command sspsim runs one workload on one failure-atomicity design and
// dumps the full statistics — the single-run companion to sspbench's
// figure-level sweeps.
//
// Usage:
//
//	sspsim -workload BTree-Rand -backend SSP -ops 20000
//	sspsim -workload Memcached -backend REDO-LOG -clients 4
//	sspsim -dump-config        # print the Table 2 machine parameters
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
	"repro/ssp"
)

func main() {
	wl := flag.String("workload", "BTree-Rand", "workload name (Table 3 names)")
	backend := flag.String("backend", "SSP", "SSP | UNDO-LOG | REDO-LOG")
	clients := flag.Int("clients", 1, "simulated client cores")
	ops := flag.Int("ops", 8000, "measured transactions")
	keys := flag.Uint64("keys", 16384, "key space per client (trees/hash)")
	elems := flag.Int("elems", 1<<16, "SPS array elements")
	items := flag.Int("items", 8192, "memcached capacity")
	tuples := flag.Int("tuples", 16384, "vacation rows per table")
	seed := flag.Uint64("seed", 0x55AA1234, "RNG seed")
	nvRead := flag.Float64("nvread", 0, "NVRAM read latency ns (0 = Table 2)")
	nvWrite := flag.Float64("nvwrite", 0, "NVRAM write latency ns (0 = Table 2)")
	sspLat := flag.Int("ssplat", 0, "SSP cache latency cycles (0 = default 27)")
	subPage := flag.Int("subpage", 0, "SSP sub-page size in lines (1 or 4)")
	dump := flag.Bool("dump-config", false, "print the default machine parameters and exit")
	flag.Parse()

	if *dump {
		dumpConfig()
		return
	}

	var kind workload.Kind
	found := false
	for _, k := range workload.All() {
		if k.String() == *wl {
			kind, found = k, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown workload %q; options:", *wl)
		for _, k := range workload.All() {
			fmt.Fprintf(os.Stderr, " %s", k)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	var b ssp.Backend
	switch *backend {
	case "SSP":
		b = ssp.SSP
	case "UNDO-LOG":
		b = ssp.UndoLog
	case "REDO-LOG":
		b = ssp.RedoLog
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backend)
		os.Exit(2)
	}

	p := workload.Params{
		Kind:    kind,
		Backend: b,
		Clients: *clients,
		Ops:     *ops,
		Keys:    *keys,
		Elems:   *elems,
		Items:   *items,
		Tuples:  *tuples,
		Seed:    *seed,
	}
	p.Machine.NVRAMReadNS = *nvRead
	p.Machine.NVRAMWriteNS = *nvWrite
	p.Machine.SSPCacheLatency = ssp.Cycles(*sspLat)
	p.Machine.SubPageLines = *subPage

	res := workload.Run(p)
	fmt.Printf("workload: %s, backend: %s, clients: %d\n", kind, b, *clients)
	fmt.Printf("transactions: %d in %d cycles\n", res.Txns, res.Cycles)
	fmt.Printf("throughput: %.0f transactions/second (simulated)\n", res.TPS)
	fmt.Printf("write set: %.1f lines / %.1f pages avg, %d pages max\n\n",
		res.WriteSet.AvgLines(), res.WriteSet.AvgPages(), res.WriteSet.MaxPages)
	fmt.Print(res.Stats.Summary())
}

func dumpConfig() {
	fmt.Println("System parameters (paper Table 2):")
	fmt.Println("  Processor   4 cores (configurable), 3.7 GHz, 64-entry DTLB + 1024-entry STLB")
	fmt.Println("  L1D         32 KiB, 64-byte lines, 8-way, 4 cycles")
	fmt.Println("  L2          256 KiB, 64-byte lines, 8-way, 6 cycles")
	fmt.Println("  L3          12 MiB, 64-byte lines, 16-way, 27 cycles (shared)")
	fmt.Println("  DRAM        1 channel, 64 banks, 1 KiB rows, 50 ns read/write")
	fmt.Println("  NVRAM       1 channel, 32 banks, 2 KiB rows, 50/200 ns read/write")
	fmt.Println("SSP parameters (§4, §5.1):")
	fmt.Println("  SSP cache   N*T+O entries (§4.1.2), 27-cycle access (L3-resident slice)")
	fmt.Println("  WSB         64 entries per core (write-set buffer)")
	fmt.Println("  journal     64 KiB ring, checkpoint at 75%")
	fmt.Println("  sub-page    64 B (1 line); 256 B variant via -subpage 4")
}
