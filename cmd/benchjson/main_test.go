package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkParallelSmoke 	       1	 261932645 ns/op	   3064114 SSP_cTPS	   1241119 SSP_serial_cTPS	         2.469 SSP_speedup
BenchmarkTxnPath/SSP-8         	       1	      8854 ns/op	     11778 simcycles/txn
PASS
ok  	repro	28.101s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	smoke := rep.Benchmarks["BenchmarkParallelSmoke"]
	if smoke == nil {
		t.Fatal("BenchmarkParallelSmoke missing")
	}
	if smoke["SSP_cTPS"] != 3064114 {
		t.Errorf("SSP_cTPS = %v", smoke["SSP_cTPS"])
	}
	if smoke["SSP_speedup"] != 2.469 {
		t.Errorf("SSP_speedup = %v", smoke["SSP_speedup"])
	}
	// The -8 GOMAXPROCS suffix is stripped from sub-benchmarks too.
	if rep.Benchmarks["BenchmarkTxnPath/SSP"] == nil {
		t.Fatal("BenchmarkTxnPath/SSP missing (suffix not stripped?)")
	}
}

// TestParseBenchRejectsMalformed pins the strict half of the parser: a
// line that claims to be a benchmark result but cannot be parsed must fail
// the conversion (a silent skip would let a CI gate fail open by erasing
// the gated metric), while genuinely non-benchmark lines stay ignored.
func TestParseBenchRejectsMalformed(t *testing.T) {
	bad := []struct {
		name, input string
	}{
		{"odd fields", "BenchmarkFoo-8 \t 1 \t 123 ns/op \t 456\n"},
		{"too few fields", "BenchmarkFoo-8 \t 1 \t 123\n"},
		{"bad iteration count", "BenchmarkFoo-8 \t one \t 123 ns/op\n"},
		{"bad metric value", "BenchmarkFoo-8 \t 1 \t fast ns/op\n"},
		{"bad later metric", "BenchmarkFoo-8 \t 1 \t 123 ns/op \t oops SSP_cTPS\n"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseBench(strings.NewReader(sample + tc.input)); err == nil {
				t.Fatalf("parseBench accepted %q", tc.input)
			}
		})
	}

	// The bare announcement line (benchmark with interleaved output) and
	// ordinary non-benchmark noise must still be skipped, not errors.
	ok := sample + "BenchmarkNoisy\nsome log output\nBenchmarkNoisy-8 \t 1 \t 99 ns/op\n"
	rep, err := parseBench(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("parseBench rejected valid output: %v", err)
	}
	if rep.Benchmarks["BenchmarkNoisy"]["ns/op"] != 99 {
		t.Errorf("BenchmarkNoisy = %+v", rep.Benchmarks["BenchmarkNoisy"])
	}
}

// TestCheckGates pins direction-aware gating: ":max" (default) fails on
// drops, ":min" fails on rises, and missing baselines stay lenient.
func TestCheckGates(t *testing.T) {
	rep := Report{Benchmarks: map[string]map[string]float64{
		"BenchmarkServeSmoke": {"Serve_cTPS": 1000, "Serve_p99": 5000},
	}}
	base := Report{Benchmarks: map[string]map[string]float64{
		"BenchmarkServeSmoke": {"Serve_cTPS": 1000, "Serve_p99": 5000},
	}}
	cases := []struct {
		name       string
		cTPS, p99  float64
		gates      string
		wantFailed bool
	}{
		{"all at baseline", 1000, 5000, "BenchmarkServeSmoke/Serve_cTPS,BenchmarkServeSmoke/Serve_p99:min", false},
		{"throughput within threshold", 850, 5000, "BenchmarkServeSmoke/Serve_cTPS", false},
		{"throughput regressed", 700, 5000, "BenchmarkServeSmoke/Serve_cTPS", true},
		{"explicit max suffix", 700, 5000, "BenchmarkServeSmoke/Serve_cTPS:max", true},
		{"latency improved", 1000, 2000, "BenchmarkServeSmoke/Serve_p99:min", false},
		{"latency within threshold", 1000, 5800, "BenchmarkServeSmoke/Serve_p99:min", false},
		{"latency regressed", 1000, 6500, "BenchmarkServeSmoke/Serve_p99:min", true},
		// Without :min a latency rise would (wrongly) pass — the suffix is
		// what makes the metric gateable at all.
		{"latency rise without min passes", 1000, 6500, "BenchmarkServeSmoke/Serve_p99", false},
		{"missing metric fails", 1000, 5000, "BenchmarkServeSmoke/Nope:min", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := Report{Benchmarks: map[string]map[string]float64{
				"BenchmarkServeSmoke": {"Serve_cTPS": tc.cTPS, "Serve_p99": tc.p99},
			}}
			lines, failed := checkGates(cur, base, tc.gates, 0.20)
			if failed != tc.wantFailed {
				t.Fatalf("failed = %v, want %v; output:\n%s", failed, tc.wantFailed, strings.Join(lines, "\n"))
			}
		})
	}

	// A gated metric with no baseline entry reports but does not fail.
	empty := Report{Benchmarks: map[string]map[string]float64{}}
	lines, failed := checkGates(rep, empty, "BenchmarkServeSmoke/Serve_p99:min", 0.20)
	if failed {
		t.Fatalf("missing baseline should not fail:\n%s", strings.Join(lines, "\n"))
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "no baseline yet") {
		t.Fatalf("unexpected output: %v", lines)
	}
}

func TestLookup(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := lookup(rep, "BenchmarkParallelSmoke/SSP_cTPS"); !ok || v != 3064114 {
		t.Errorf("lookup SSP_cTPS = %v, %v", v, ok)
	}
	// Metric units containing slashes resolve via multi-split.
	if v, ok := lookup(rep, "BenchmarkTxnPath/SSP/simcycles/txn"); !ok || v != 11778 {
		t.Errorf("lookup simcycles/txn = %v, %v", v, ok)
	}
	if _, ok := lookup(rep, "BenchmarkMissing/metric"); ok {
		t.Error("missing benchmark resolved")
	}
}
