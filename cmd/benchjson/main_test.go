package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkParallelSmoke 	       1	 261932645 ns/op	   3064114 SSP_cTPS	   1241119 SSP_serial_cTPS	         2.469 SSP_speedup
BenchmarkTxnPath/SSP-8         	       1	      8854 ns/op	     11778 simcycles/txn
PASS
ok  	repro	28.101s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	smoke := rep.Benchmarks["BenchmarkParallelSmoke"]
	if smoke == nil {
		t.Fatal("BenchmarkParallelSmoke missing")
	}
	if smoke["SSP_cTPS"] != 3064114 {
		t.Errorf("SSP_cTPS = %v", smoke["SSP_cTPS"])
	}
	if smoke["SSP_speedup"] != 2.469 {
		t.Errorf("SSP_speedup = %v", smoke["SSP_speedup"])
	}
	// The -8 GOMAXPROCS suffix is stripped from sub-benchmarks too.
	if rep.Benchmarks["BenchmarkTxnPath/SSP"] == nil {
		t.Fatal("BenchmarkTxnPath/SSP missing (suffix not stripped?)")
	}
}

// TestParseBenchRejectsMalformed pins the strict half of the parser: a
// line that claims to be a benchmark result but cannot be parsed must fail
// the conversion (a silent skip would let a CI gate fail open by erasing
// the gated metric), while genuinely non-benchmark lines stay ignored.
func TestParseBenchRejectsMalformed(t *testing.T) {
	bad := []struct {
		name, input string
	}{
		{"odd fields", "BenchmarkFoo-8 \t 1 \t 123 ns/op \t 456\n"},
		{"too few fields", "BenchmarkFoo-8 \t 1 \t 123\n"},
		{"bad iteration count", "BenchmarkFoo-8 \t one \t 123 ns/op\n"},
		{"bad metric value", "BenchmarkFoo-8 \t 1 \t fast ns/op\n"},
		{"bad later metric", "BenchmarkFoo-8 \t 1 \t 123 ns/op \t oops SSP_cTPS\n"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseBench(strings.NewReader(sample + tc.input)); err == nil {
				t.Fatalf("parseBench accepted %q", tc.input)
			}
		})
	}

	// The bare announcement line (benchmark with interleaved output) and
	// ordinary non-benchmark noise must still be skipped, not errors.
	ok := sample + "BenchmarkNoisy\nsome log output\nBenchmarkNoisy-8 \t 1 \t 99 ns/op\n"
	rep, err := parseBench(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("parseBench rejected valid output: %v", err)
	}
	if rep.Benchmarks["BenchmarkNoisy"]["ns/op"] != 99 {
		t.Errorf("BenchmarkNoisy = %+v", rep.Benchmarks["BenchmarkNoisy"])
	}
}

func TestLookup(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := lookup(rep, "BenchmarkParallelSmoke/SSP_cTPS"); !ok || v != 3064114 {
		t.Errorf("lookup SSP_cTPS = %v, %v", v, ok)
	}
	// Metric units containing slashes resolve via multi-split.
	if v, ok := lookup(rep, "BenchmarkTxnPath/SSP/simcycles/txn"); !ok || v != 11778 {
		t.Errorf("lookup simcycles/txn = %v, %v", v, ok)
	}
	if _, ok := lookup(rep, "BenchmarkMissing/metric"); ok {
		t.Error("missing benchmark resolved")
	}
}
