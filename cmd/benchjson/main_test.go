package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkParallelSmoke 	       1	 261932645 ns/op	   3064114 SSP_cTPS	   1241119 SSP_serial_cTPS	         2.469 SSP_speedup
BenchmarkTxnPath/SSP-8         	       1	      8854 ns/op	     11778 simcycles/txn
PASS
ok  	repro	28.101s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	smoke := rep.Benchmarks["BenchmarkParallelSmoke"]
	if smoke == nil {
		t.Fatal("BenchmarkParallelSmoke missing")
	}
	if smoke["SSP_cTPS"] != 3064114 {
		t.Errorf("SSP_cTPS = %v", smoke["SSP_cTPS"])
	}
	if smoke["SSP_speedup"] != 2.469 {
		t.Errorf("SSP_speedup = %v", smoke["SSP_speedup"])
	}
	// The -8 GOMAXPROCS suffix is stripped from sub-benchmarks too.
	if rep.Benchmarks["BenchmarkTxnPath/SSP"] == nil {
		t.Fatal("BenchmarkTxnPath/SSP missing (suffix not stripped?)")
	}
}

func TestLookup(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := lookup(rep, "BenchmarkParallelSmoke/SSP_cTPS"); !ok || v != 3064114 {
		t.Errorf("lookup SSP_cTPS = %v, %v", v, ok)
	}
	// Metric units containing slashes resolve via multi-split.
	if v, ok := lookup(rep, "BenchmarkTxnPath/SSP/simcycles/txn"); !ok || v != 11778 {
		t.Errorf("lookup simcycles/txn = %v, %v", v, ok)
	}
	if _, ok := lookup(rep, "BenchmarkMissing/metric"); ok {
		t.Error("missing benchmark resolved")
	}
}
