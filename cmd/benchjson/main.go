// Command benchjson converts `go test -bench` output into a JSON report and
// gates CI on benchmark regressions.
//
// It parses the standard benchmark line format
//
//	BenchmarkName-8   1   123456 ns/op   2345678 SSP_cTPS   1.40 SSP_speedup
//
// into {benchmark: {metric: value}}, writes the report (BENCH_ci.json in
// CI, uploaded as an artifact), and compares selected metrics against a
// checked-in baseline:
//
//	go test -bench=. -benchtime=1x -run '^$' . | tee bench.txt
//	benchjson -in bench.txt -out BENCH_ci.json \
//	    -baseline ci/bench_baseline.json \
//	    -gate BenchmarkParallelSmoke/SSP_cTPS -threshold 0.20
//
// Each gate spec may carry a direction suffix: `spec:max` (the default)
// gates a higher-is-better metric and fails when
// current < baseline*(1-threshold); `spec:min` gates a lower-is-better
// metric (latency percentiles) and fails when
// current > baseline*(1+threshold):
//
//	-gate BenchmarkParallelSmoke/SSP_cTPS,BenchmarkServeSmoke/Serve_p99:min
//
// Gated metrics missing from the baseline are reported but do not fail (new
// benchmarks land before their baseline). Refresh the baseline with -update
// after an intentional change:
//
//	benchjson -in bench.txt -update -baseline ci/bench_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Report is the JSON document benchjson reads and writes.
type Report struct {
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// metrics: the standard ns/op plus every b.ReportMetric unit.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark metrics from `go test -bench` output.
//
// Non-benchmark lines (goos/goarch/pkg/cpu headers, PASS, ok, test logs)
// are skipped; a line that DOES start with "Benchmark" but does not parse
// as the name / iteration-count / (value, unit)-pairs format is an error —
// silently dropping it would erase the very metrics CI gates on, and the
// gate would then "fail open" as a missing-baseline leniency.
func parseBench(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: map[string]map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 1 {
			// The bare announcement line `BenchmarkName` go test prints when
			// a benchmark interleaves its own output; the metrics line with
			// the same name follows later.
			continue
		}
		// Name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			return rep, fmt.Errorf("line %d: malformed benchmark line (%d fields, want name + count + value/unit pairs): %q",
				ln, len(fields), line)
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			return rep, fmt.Errorf("line %d: iteration count %q is not an integer: %q", ln, fields[1], line)
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		metrics := rep.Benchmarks[name]
		if metrics == nil {
			metrics = map[string]float64{}
			rep.Benchmarks[name] = metrics
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return rep, fmt.Errorf("line %d: value %q for unit %q is not a number: %q",
					ln, fields[i], fields[i+1], line)
			}
			// Benchmarks that run multiple iterations report a metric once
			// per line; the last value wins, which matches -benchtime=1x.
			metrics[fields[i+1]] = v
		}
	}
	return rep, sc.Err()
}

func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	return rep, json.Unmarshal(data, &rep)
}

func writeReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// lookup resolves a "Benchmark/metric" gate spec against a report. Both
// benchmark names (sub-benchmarks) and metric units (ns/op, simcycles/txn)
// may contain slashes, so every split point is tried.
func lookup(rep Report, spec string) (float64, bool) {
	for i := len(spec) - 1; i > 0; i-- {
		if spec[i] != '/' {
			continue
		}
		if m, ok := rep.Benchmarks[spec[:i]]; ok {
			if v, ok := m[spec[i+1:]]; ok {
				return v, true
			}
		}
	}
	return 0, false
}

func main() {
	in := flag.String("in", "-", "benchmark output file (- for stdin)")
	out := flag.String("out", "BENCH_ci.json", "JSON report to write")
	baseline := flag.String("baseline", "", "baseline JSON to compare against")
	gates := flag.String("gate", "", "comma-separated Benchmark/metric[:min|:max] specs to gate (default :max, higher is better)")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional regression against baseline (drop for :max gates, rise for :min)")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	rep, err := parseBench(src)
	if err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in %s", *in))
	}
	if err := writeReport(*out, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)

	if *baseline == "" {
		return
	}
	if *update {
		if err := writeReport(*baseline, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("benchjson: baseline %s updated\n", *baseline)
		return
	}
	base, err := readReport(*baseline)
	if err != nil {
		fatal(fmt.Errorf("reading baseline: %w", err))
	}

	lines, failed := checkGates(rep, base, *gates, *threshold)
	for _, line := range lines {
		fmt.Println(line)
	}
	if failed {
		os.Exit(1)
	}
}

// checkGates evaluates every gate spec against the baseline and returns the
// report lines plus whether any gate failed. A spec's ":min"/":max" suffix
// selects the regression direction (":max", the default, fails on drops;
// ":min" fails on rises).
func checkGates(rep, base Report, gates string, threshold float64) ([]string, bool) {
	var lines []string
	failed := false
	specs := strings.Split(gates, ",")
	sort.Strings(specs)
	for _, spec := range specs {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		lowerIsBetter := false
		if s, ok := strings.CutSuffix(spec, ":min"); ok {
			spec, lowerIsBetter = s, true
		} else if s, ok := strings.CutSuffix(spec, ":max"); ok {
			spec = s
		}
		cur, ok := lookup(rep, spec)
		if !ok {
			lines = append(lines, fmt.Sprintf("benchjson: FAIL %s: metric missing from this run", spec))
			failed = true
			continue
		}
		want, ok := lookup(base, spec)
		if !ok {
			lines = append(lines, fmt.Sprintf("benchjson: %s = %.0f (no baseline yet; run -update to record)", spec, cur))
			continue
		}
		if lowerIsBetter {
			ceil := want * (1 + threshold)
			if cur > ceil {
				lines = append(lines, fmt.Sprintf("benchjson: FAIL %s = %.0f, above %.0f (baseline %.0f + %d%%)",
					spec, cur, ceil, want, int(threshold*100)))
				failed = true
			} else {
				lines = append(lines, fmt.Sprintf("benchjson: OK %s = %.0f (baseline %.0f, ceiling %.0f)", spec, cur, want, ceil))
			}
			continue
		}
		floor := want * (1 - threshold)
		if cur < floor {
			lines = append(lines, fmt.Sprintf("benchjson: FAIL %s = %.0f, below %.0f (baseline %.0f - %d%%)",
				spec, cur, floor, want, int(threshold*100)))
			failed = true
		} else {
			lines = append(lines, fmt.Sprintf("benchjson: OK %s = %.0f (baseline %.0f, floor %.0f)", spec, cur, want, floor))
		}
	}
	return lines, failed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
