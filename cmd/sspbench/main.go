// Command sspbench regenerates the paper's tables and figures on the
// simulated machine, plus the beyond-the-paper scaling experiments (the
// concurrent engine, multi-channel memory, journal sharding, cross-shard
// transactions and the commit-path batching knobs). Each experiment prints
// the same rows/series the paper reports (normalised throughput, write
// traffic, breakdowns, sweeps).
//
// Usage:
//
//	sspbench -exp all                 # everything, small scale
//	sspbench -exp fig5a -scale full   # one experiment at full scale
//	sspbench -list                    # experiment ids + one-line summaries
//
// The experiment ids, the usage text and the `all` ordering all come from
// one table below, so they cannot drift apart; run -list for the live
// index. See DESIGN.md §3 for details and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
	"repro/ssp"
)

// benchFlags carries the sweep-shaping flags into the experiment runners.
type benchFlags struct {
	cores    int
	channels int
	shards   int
	window   int
}

// experiment is one -exp entry: the id, the one-line summary printed by
// -list and the usage text, and the runner. The table is the single source
// of truth for the id list, so new experiments cannot drift out of the
// usage text or the `all` ordering.
type experiment struct {
	id      string
	summary string
	run     func(sc experiments.Scale, fl benchFlags)
}

var experimentTable = []experiment{
	{"table3", "workload write-set characterisation", func(sc experiments.Scale, fl benchFlags) {
		section("Table 3 — workload write-set characterisation")
		fmt.Println(experiments.RenderTable3(experiments.Table3(sc)))
	}},
	{"fig5a", "microbenchmark TPS, 1 thread (normalised to UNDO-LOG)", func(sc experiments.Scale, fl benchFlags) {
		section("Figure 5a — microbenchmark TPS, 1 thread (normalised to UNDO-LOG)")
		fmt.Println(experiments.RenderFig5(experiments.Fig5(sc, 1), 1))
	}},
	{"fig5b", "microbenchmark TPS, 4 threads (normalised to UNDO-LOG)", func(sc experiments.Scale, fl benchFlags) {
		section("Figure 5b — microbenchmark TPS, 4 threads (normalised to UNDO-LOG)")
		fmt.Println(experiments.RenderFig5(experiments.Fig5(sc, 4), 4))
	}},
	{"fig6", "logging writes (normalised to UNDO-LOG)", func(sc experiments.Scale, fl benchFlags) {
		section("Figure 6 — logging writes (normalised to UNDO-LOG, lower is better)")
		fmt.Println(experiments.RenderFig6(experiments.Fig6(sc, 1)))
	}},
	{"fig7a", "total NVRAM writes (normalised to UNDO-LOG)", func(sc experiments.Scale, fl benchFlags) {
		section("Figure 7a — NVRAM writes (normalised to UNDO-LOG, lower is better)")
		fmt.Println(experiments.RenderFig7a(experiments.Fig7(sc, 1)))
	}},
	{"fig7b", "breakdown of SSP's NVRAM writes", func(sc experiments.Scale, fl benchFlags) {
		section("Figure 7b — breakdown of NVRAM writes for SSP")
		fmt.Println(experiments.RenderFig7b(experiments.Fig7(sc, 1)))
	}},
	{"fig8", "sensitivity to NVRAM latency", func(sc experiments.Scale, fl benchFlags) {
		section("Figure 8 — sensitivity to NVRAM latency")
		fmt.Println(experiments.RenderFig8(experiments.Fig8(sc)))
	}},
	{"fig9", "sensitivity to SSP cache latency", func(sc experiments.Scale, fl benchFlags) {
		section("Figure 9 — sensitivity to SSP cache latency")
		fmt.Println(experiments.RenderFig9(experiments.Fig9(sc)))
	}},
	{"table4", "real-workload performance improvement", func(sc experiments.Scale, fl benchFlags) {
		section("Table 4 — real-workload performance improvement")
		fmt.Println(experiments.RenderTable4(experiments.Table45(sc)))
	}},
	{"table5", "real-workload write-traffic saving", func(sc experiments.Scale, fl benchFlags) {
		section("Table 5 — real-workload write-traffic saving")
		fmt.Println(experiments.RenderTable5(experiments.Table45(sc)))
	}},
	{"ablate", "design-choice knob ablations", func(sc experiments.Scale, fl benchFlags) {
		section("Ablations — design-choice knobs (beyond the paper)")
		fmt.Println(experiments.RenderAblations("sub-page granularity (§4.3)", experiments.AblateSubPage(sc)))
		fmt.Println(experiments.RenderAblations("write-set buffer capacity (§4.2)", experiments.AblateWSB(sc)))
		fmt.Println(experiments.RenderAblations("REDO write-back queue bound", experiments.AblateRedoQueue(sc)))
		fmt.Println(experiments.RenderAblations("SSP-cache L3 residency", experiments.AblateSSPCacheResidency(sc)))
		fmt.Println(experiments.RenderAblations("consolidation policy (§3.4 eager vs lazy)", experiments.AblateConsolidationPolicy(sc)))
		fmt.Println(experiments.RenderAblations("flip mechanism (§4.1.1 broadcast vs §4.3 shootdown)", experiments.AblateFlipMechanism(sc)))
		fmt.Println(experiments.RenderAblations("REDO write-back engines (DHTM single vs per-core, 4-core parallel)", experiments.AblateRedoEngines(sc)))
	}},
	{"recovery", "recovery effort vs journal capacity", func(sc experiments.Scale, fl benchFlags) {
		section("Recovery effort vs journal capacity (§4.1.2 checkpointing)")
		fmt.Println(experiments.RenderRecovery(experiments.RecoveryEffort(sc)))
	}},
	{"parallel", "concurrent engine vs 1-core serial", func(sc experiments.Scale, fl benchFlags) {
		section(fmt.Sprintf("Concurrent engine — %d goroutine-backed cores vs 1-core serial", fl.cores))
		fmt.Println(experiments.RenderParallel(experiments.ParallelScaling(sc, workload.Memcached, fl.cores)))
		fmt.Println(experiments.RenderParallel(experiments.ParallelScaling(sc, workload.Vacation, fl.cores)))
	}},
	{"channels", "multi-channel memory sweep (channels x cores)", func(sc experiments.Scale, fl benchFlags) {
		chList := experiments.SweepPowersOfTwo(fl.channels)
		coreList := experiments.SweepPowersOfTwo(fl.cores)
		for _, k := range []workload.Kind{workload.Memcached, workload.Vacation} {
			section(fmt.Sprintf("Multi-channel memory — SSP committed TPS on %s, %v channels x %v cores", k, chList, coreList))
			fmt.Println(experiments.RenderChannels(experiments.ChannelSweep(sc, k, ssp.SSP, chList, coreList)))
		}
	}},
	{"journal", "metadata-journal sharding sweep (shards x cores)", func(sc experiments.Scale, fl benchFlags) {
		shList := experiments.SweepPowersOfTwo(fl.shards)
		coreList := experiments.SweepPowersOfTwo(fl.cores)
		for _, k := range []workload.Kind{workload.Memcached, workload.Vacation} {
			section(fmt.Sprintf("Journal sharding — SSP committed TPS on %s, %v shards x %v cores (%d channels)", k, shList, coreList, fl.channels))
			fmt.Println(experiments.RenderJournal(experiments.JournalSweep(sc, k, fl.channels, shList, coreList)))
		}
	}},
	{"crossshard", "cross-shard transaction fraction sweep", func(sc experiments.Scale, fl benchFlags) {
		fracs := []int{0, 10, 25, 50}
		coreList := experiments.SweepPowersOfTwo(fl.cores)
		for _, k := range []workload.Kind{workload.MemcachedCross, workload.VacationCross} {
			section(fmt.Sprintf("Cross-shard transactions — SSP committed TPS on %s, %v%% global x %v cores (%d shards, %d channels)",
				k, fracs, coreList, fl.shards, fl.channels))
			fmt.Println(experiments.RenderCrossShard(experiments.CrossShardSweep(sc, k, fl.channels, fl.shards, fracs, coreList)))
		}
	}},
	{"commitpath", "eager-flush x group-commit knob sweep", func(sc experiments.Scale, fl benchFlags) {
		coreList := experiments.SweepPowersOfTwo(fl.cores)
		for _, mix := range experiments.CommitPathMixes() {
			section(fmt.Sprintf("Commit-path batching — SSP on %s (%d shards, %d channels, cross %d%%), window %d cycles x %v cores",
				mix.Kind, mix.Shards, mix.Channels, mix.CrossPct, fl.window, coreList))
			fmt.Println(experiments.RenderCommitPath(experiments.CommitPathSweep(sc, mix, fl.window, coreList)))
		}
	}},
	{"epoch", "relaxed-durability epoch sweep (epoch x cores)", func(sc experiments.Scale, fl benchFlags) {
		coreList := experiments.SweepPowersOfTwo(fl.cores)
		epochs := experiments.EpochLengths()
		for _, mix := range experiments.EpochMixes() {
			section(fmt.Sprintf("Relaxed durability — SSP on %s (%d shards, %d channels), epochs %v x %v cores",
				mix.Kind, mix.Shards, mix.Channels, epochs, coreList))
			fmt.Println(experiments.RenderEpoch(experiments.EpochSweep(sc, mix, epochs, coreList)))
		}
	}},
	{"cache", "DRAM buffer cache sweep (frames x cores x skew)", func(sc experiments.Scale, fl benchFlags) {
		coreList := experiments.SweepPowersOfTwo(fl.cores)
		skews := experiments.CacheSkews()
		frames := experiments.CacheFrames()
		section(fmt.Sprintf("DRAM buffer cache — SSP serve mix (4 channels), skews %v x %v cores x frames %v",
			skews, coreList, frames))
		fmt.Println(experiments.RenderCache(experiments.CacheSweep(sc, skews, coreList, frames)))
	}},
	{"wear", "software wear-leveling sweep (rotation threshold)", func(sc experiments.Scale, fl benchFlags) {
		thresholds := experiments.WearThresholds()
		section(fmt.Sprintf("Software wear-leveling — hot-key serve mix (skew 1.2, 10%% reads), %d cores, rotation thresholds %v",
			fl.cores, thresholds))
		fmt.Println(experiments.RenderWear(experiments.WearSweep(sc, fl.cores, thresholds)))
	}},
	{"scale", "deterministic window-scheduler scale-out (window x cores)", func(sc experiments.Scale, fl benchFlags) {
		coreList := experiments.SweepPowersOfTwo(fl.cores)
		windows := experiments.ScaleWindows()
		for _, k := range []workload.Kind{workload.Memcached, workload.Vacation} {
			section(fmt.Sprintf("Window-scheduler scale-out — SSP committed TPS on %s, windows %v cycles x %v cores (4 shards, 4 channels, group window 4096)",
				k, windows, coreList))
			fmt.Println(experiments.RenderScale(experiments.ScaleSweep(sc, k, windows, coreList)))
		}
	}},
	{"serve", "open-loop serve latency (skew x load x cores, sync vs relaxed)", func(sc experiments.Scale, fl benchFlags) {
		coreList := experiments.SweepPowersOfTwo(fl.cores)
		skews := experiments.ServeSkews()
		loads := experiments.ServeLoads()
		const epoch = 100000 // ~10 txns per epoch, the epoch sweep's mid point
		section(fmt.Sprintf("Open-loop serve — SSP kv shards (1 journal shard, 4 channels), skews %v x loads %v%% x %v cores, epoch %d",
			skews, loads, coreList, epoch))
		fmt.Println(experiments.RenderServe(experiments.ServeSweep(sc, skews, loads, coreList, epoch)))
	}},
}

func experimentIDs() []string {
	ids := make([]string, len(experimentTable))
	for i, e := range experimentTable {
		ids[i] = e.id
	}
	return ids
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sspbench [flags]\n\nexperiments (-exp):\n")
		for _, e := range experimentTable {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", e.id, e.summary)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "  %-11s every experiment above, in order\n\nflags:\n", "all")
		flag.PrintDefaults()
	}
	exp := flag.String("exp", "all", "experiment id (see -list)")
	scale := flag.String("scale", "small", "run scale: small | full")
	list := flag.Bool("list", false, "list experiment ids")
	ops := flag.Int("ops", 0, "override measured transactions per run")
	seed := flag.Uint64("seed", 0, "override RNG seed")
	cores := flag.Int("cores", 4, "max cores for the scaling sweeps (one goroutine each)")
	channels := flag.Int("channels", 8, "max memory channels for -exp channels; fixed channel count for -exp journal/crossshard")
	shards := flag.Int("shards", 4, "max SSP journal shards for -exp journal; fixed count for -exp crossshard")
	window := flag.Int("window", 4096, "group-commit window in cycles for -exp commitpath")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation (heap) profile to this file on exit")
	flag.Parse()

	if *list {
		for _, e := range experimentTable {
			fmt.Printf("%-11s %s\n", e.id, e.summary)
		}
		fmt.Printf("%-11s every experiment above, in order\n", "all")
		return
	}

	if *channels < 1 || *channels > ssp.MaxChannels {
		fmt.Fprintf(os.Stderr, "-channels %d out of range [1,%d]\n", *channels, ssp.MaxChannels)
		os.Exit(2)
	}
	if *shards < 1 || *shards > ssp.MaxJournalShards {
		fmt.Fprintf(os.Stderr, "-shards %d out of range [1,%d]\n", *shards, ssp.MaxJournalShards)
		os.Exit(2)
	}
	if *cores < 1 {
		fmt.Fprintf(os.Stderr, "-cores must be at least 1\n")
		os.Exit(2)
	}
	if *window < 0 {
		fmt.Fprintf(os.Stderr, "-window must be non-negative\n")
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.SmallScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *ops > 0 {
		sc.Ops = *ops
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	// Profiling hooks: -cpuprofile covers the experiment run (started here,
	// stopped before the memory profile is written); -memprofile snapshots
	// the heap after a final GC. Inspect with `go tool pprof`.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			if *cpuprofile != "" {
				pprof.StopCPUProfile() // idempotent; order the profiles
			}
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	fl := benchFlags{cores: *cores, channels: *channels, shards: *shards, window: *window}
	run := func(e experiment) {
		start := time.Now()
		e.run(sc, fl)
		fmt.Printf("[%s done in %.1fs]\n\n", e.id, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range experimentTable {
			run(e)
		}
		return
	}
	for _, e := range experimentTable {
		if e.id == *exp {
			run(e)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s, all; try -list)\n", *exp, strings.Join(experimentIDs(), " "))
	os.Exit(2)
}

func section(title string) {
	fmt.Println(title)
	for range title {
		fmt.Print("=")
	}
	fmt.Println()
}
