// Command sspbench regenerates the paper's tables and figures on the
// simulated machine. Each experiment prints the same rows/series the paper
// reports (normalised throughput, write traffic, breakdowns, sweeps).
//
// Usage:
//
//	sspbench -exp all                 # everything, small scale
//	sspbench -exp fig5a -scale full   # one experiment at full scale
//	sspbench -list
//
// Experiments: table3 fig5a fig5b fig6 fig7a fig7b fig8 fig9 table4 table5
// ablate recovery parallel channels all. See DESIGN.md §3 for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// results.
//
// The parallel experiment exercises the concurrent execution engine: each
// simulated core runs on its own host goroutine (ssp.Machine.Run) over
// per-core-sharded workload state, and the report compares aggregate
// committed transactions per simulated second against the 1-core serial
// run (plus per-core throughput and host wall-clock):
//
//	sspbench -exp parallel -cores 4
//
// The channels experiment sweeps the multi-channel interleaved memory model
// (memory channels × cores) on the SSP backend, reporting committed TPS,
// speedup over the 1-core serial run at the same channel count, and
// per-channel bus utilization — the point where parallel scaling stops
// being bandwidth-bound:
//
//	sspbench -exp channels -cores 4 -channels 8
//
// The journal experiment sweeps the SSP metadata journal's shard count
// (ssp.Config.JournalShards) against the core count, reporting committed
// TPS, speedup over the same-shard serial run, per-shard journal pressure
// (records, ring fill, checkpoints) and the fraction of the window the
// NVRAM banks spent absorbing journal records:
//
//	sspbench -exp journal -cores 4 -shards 4
//
// The crossshard experiment sweeps the cross-shard (global) transaction
// fraction of the sharded memcached and partitioned vacation mixes against
// the core count, on a multi-shard SSP machine: each global transaction
// writes 2-4 cores' arenas under one BeginGlobal section and commits via
// the two-phase prepare/end protocol over the participant journal shards.
// The report shows committed TPS, speedup over the 1-core run, global
// commit and prepare-record counts, commit-barrier wait and journal
// pressure:
//
//	sspbench -exp crossshard -cores 4 -shards 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
	"repro/ssp"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	scale := flag.String("scale", "small", "run scale: small | full")
	list := flag.Bool("list", false, "list experiment ids")
	ops := flag.Int("ops", 0, "override measured transactions per run")
	seed := flag.Uint64("seed", 0, "override RNG seed")
	cores := flag.Int("cores", 4, "max cores for -exp parallel/channels/journal (one goroutine each)")
	channels := flag.Int("channels", 8, "max memory channels for -exp channels; fixed channel count for -exp journal")
	shards := flag.Int("shards", 4, "max SSP journal shards for -exp journal")
	flag.Parse()

	if *list {
		fmt.Println("table3 fig5a fig5b fig6 fig7a fig7b fig8 fig9 table4 table5 ablate recovery parallel channels journal crossshard all")
		return
	}

	if *channels < 1 || *channels > ssp.MaxChannels {
		fmt.Fprintf(os.Stderr, "-channels %d out of range [1,%d]\n", *channels, ssp.MaxChannels)
		os.Exit(2)
	}
	if *shards < 1 || *shards > ssp.MaxJournalShards {
		fmt.Fprintf(os.Stderr, "-shards %d out of range [1,%d]\n", *shards, ssp.MaxJournalShards)
		os.Exit(2)
	}
	if *cores < 1 {
		fmt.Fprintf(os.Stderr, "-cores must be at least 1\n")
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.SmallScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *ops > 0 {
		sc.Ops = *ops
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	run := func(id string) {
		start := time.Now()
		switch id {
		case "table3":
			section("Table 3 — workload write-set characterisation")
			fmt.Println(experiments.RenderTable3(experiments.Table3(sc)))
		case "fig5a":
			section("Figure 5a — microbenchmark TPS, 1 thread (normalised to UNDO-LOG)")
			fmt.Println(experiments.RenderFig5(experiments.Fig5(sc, 1), 1))
		case "fig5b":
			section("Figure 5b — microbenchmark TPS, 4 threads (normalised to UNDO-LOG)")
			fmt.Println(experiments.RenderFig5(experiments.Fig5(sc, 4), 4))
		case "fig6":
			section("Figure 6 — logging writes (normalised to UNDO-LOG, lower is better)")
			fmt.Println(experiments.RenderFig6(experiments.Fig6(sc, 1)))
		case "fig7a":
			section("Figure 7a — NVRAM writes (normalised to UNDO-LOG, lower is better)")
			fmt.Println(experiments.RenderFig7a(experiments.Fig7(sc, 1)))
		case "fig7b":
			section("Figure 7b — breakdown of NVRAM writes for SSP")
			fmt.Println(experiments.RenderFig7b(experiments.Fig7(sc, 1)))
		case "fig8":
			section("Figure 8 — sensitivity to NVRAM latency")
			fmt.Println(experiments.RenderFig8(experiments.Fig8(sc)))
		case "fig9":
			section("Figure 9 — sensitivity to SSP cache latency")
			fmt.Println(experiments.RenderFig9(experiments.Fig9(sc)))
		case "table4":
			section("Table 4 — real-workload performance improvement")
			fmt.Println(experiments.RenderTable4(experiments.Table45(sc)))
		case "table5":
			section("Table 5 — real-workload write-traffic saving")
			fmt.Println(experiments.RenderTable5(experiments.Table45(sc)))
		case "ablate":
			section("Ablations — design-choice knobs (beyond the paper)")
			fmt.Println(experiments.RenderAblations("sub-page granularity (§4.3)", experiments.AblateSubPage(sc)))
			fmt.Println(experiments.RenderAblations("write-set buffer capacity (§4.2)", experiments.AblateWSB(sc)))
			fmt.Println(experiments.RenderAblations("REDO write-back queue bound", experiments.AblateRedoQueue(sc)))
			fmt.Println(experiments.RenderAblations("SSP-cache L3 residency", experiments.AblateSSPCacheResidency(sc)))
			fmt.Println(experiments.RenderAblations("consolidation policy (§3.4 eager vs lazy)", experiments.AblateConsolidationPolicy(sc)))
			fmt.Println(experiments.RenderAblations("flip mechanism (§4.1.1 broadcast vs §4.3 shootdown)", experiments.AblateFlipMechanism(sc)))
			fmt.Println(experiments.RenderAblations("REDO write-back engines (DHTM single vs per-core, 4-core parallel)", experiments.AblateRedoEngines(sc)))
		case "parallel":
			section(fmt.Sprintf("Concurrent engine — %d goroutine-backed cores vs 1-core serial", *cores))
			fmt.Println(experiments.RenderParallel(experiments.ParallelScaling(sc, workload.Memcached, *cores)))
			fmt.Println(experiments.RenderParallel(experiments.ParallelScaling(sc, workload.Vacation, *cores)))
		case "channels":
			chList := experiments.SweepPowersOfTwo(*channels)
			coreList := experiments.SweepPowersOfTwo(*cores)
			for _, k := range []workload.Kind{workload.Memcached, workload.Vacation} {
				section(fmt.Sprintf("Multi-channel memory — SSP committed TPS on %s, %v channels x %v cores", k, chList, coreList))
				fmt.Println(experiments.RenderChannels(experiments.ChannelSweep(sc, k, ssp.SSP, chList, coreList)))
			}
		case "journal":
			shList := experiments.SweepPowersOfTwo(*shards)
			coreList := experiments.SweepPowersOfTwo(*cores)
			for _, k := range []workload.Kind{workload.Memcached, workload.Vacation} {
				section(fmt.Sprintf("Journal sharding — SSP committed TPS on %s, %v shards x %v cores (%d channels)", k, shList, coreList, *channels))
				fmt.Println(experiments.RenderJournal(experiments.JournalSweep(sc, k, *channels, shList, coreList)))
			}
		case "crossshard":
			fracs := []int{0, 10, 25, 50}
			coreList := experiments.SweepPowersOfTwo(*cores)
			for _, k := range []workload.Kind{workload.MemcachedCross, workload.VacationCross} {
				section(fmt.Sprintf("Cross-shard transactions — SSP committed TPS on %s, %v%% global x %v cores (%d shards, %d channels)",
					k, fracs, coreList, *shards, *channels))
				fmt.Println(experiments.RenderCrossShard(experiments.CrossShardSweep(sc, k, *channels, *shards, fracs, coreList)))
			}
		case "recovery":
			section("Recovery effort vs journal capacity (§4.1.2 checkpointing)")
			fmt.Println(experiments.RenderRecovery(experiments.RecoveryEffort(sc)))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("[%s done in %.1fs]\n\n", id, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, id := range []string{"table3", "fig5a", "fig5b", "fig6", "fig7a", "fig7b", "fig8", "fig9", "table4", "table5", "ablate", "recovery", "parallel", "channels", "journal", "crossshard"} {
			run(id)
		}
		return
	}
	run(*exp)
}

func section(title string) {
	fmt.Println(title)
	for range title {
		fmt.Print("=")
	}
	fmt.Println()
}
