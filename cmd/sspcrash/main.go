// Command sspcrash is the crash-recovery fuzzer: it runs randomized
// transaction scripts against every failure-atomicity design, injects a
// power failure after every possible NVRAM write, recovers, and verifies
// the all-or-nothing contract. The machinery lives in internal/crashsweep,
// where a short-mode trap sweep also runs under `go test` in CI; this tool
// runs it at fuzzing scale.
//
// Usage:
//
//	sspcrash -scripts 20 -txns 15
//	sspcrash -backend SSP -seed 7 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/crashsweep"
	"repro/ssp"
)

func main() {
	scripts := flag.Int("scripts", 10, "random scripts per backend")
	txns := flag.Int("txns", 12, "transactions per script")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	backendFlag := flag.String("backend", "", "restrict to one backend (SSP | UNDO-LOG | REDO-LOG)")
	verbose := flag.Bool("v", false, "log every trap point")
	flag.Parse()

	backends := ssp.Backends()
	if *backendFlag != "" {
		backends = nil
		for _, b := range ssp.Backends() {
			if b.String() == *backendFlag {
				backends = append(backends, b)
			}
		}
		if len(backends) == 0 {
			fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backendFlag)
			os.Exit(2)
		}
	}

	total, failures := 0, 0
	for _, b := range backends {
		for s := 0; s < *scripts; s++ {
			scriptSeed := *seed + uint64(s)*1000003
			n, bad := crashsweep.SweepScript(b, scriptSeed, *txns, *verbose, os.Stdout)
			total += n
			failures += bad
			fmt.Printf("%-9s script %2d (seed %#x): %4d trap points, %d violations\n",
				b, s, scriptSeed, n, bad)
		}
	}
	fmt.Printf("\n%d trap points checked, %d violations\n", total, failures)
	if failures > 0 {
		os.Exit(1)
	}
}
