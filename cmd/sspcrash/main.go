// Command sspcrash is the crash-recovery fuzzer: it runs randomized
// transaction scripts against every failure-atomicity design, injects a
// power failure after every possible NVRAM write, recovers, and verifies
// the all-or-nothing contract. The same machinery backs the
// internal/machine trap-sweep tests; this tool runs it at fuzzing scale.
//
// Usage:
//
//	sspcrash -scripts 20 -txns 15
//	sspcrash -backend SSP -seed 7 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/ssp"
)

func main() {
	scripts := flag.Int("scripts", 10, "random scripts per backend")
	txns := flag.Int("txns", 12, "transactions per script")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	backendFlag := flag.String("backend", "", "restrict to one backend (SSP | UNDO-LOG | REDO-LOG)")
	verbose := flag.Bool("v", false, "log every trap point")
	flag.Parse()

	backends := ssp.Backends()
	if *backendFlag != "" {
		backends = nil
		for _, b := range ssp.Backends() {
			if b.String() == *backendFlag {
				backends = append(backends, b)
			}
		}
		if len(backends) == 0 {
			fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backendFlag)
			os.Exit(2)
		}
	}

	total, failures := 0, 0
	for _, b := range backends {
		for s := 0; s < *scripts; s++ {
			scriptSeed := *seed + uint64(s)*1000003
			n, bad := sweepScript(b, scriptSeed, *txns, *verbose)
			total += n
			failures += bad
			fmt.Printf("%-9s script %2d (seed %#x): %4d trap points, %d violations\n",
				b, s, scriptSeed, n, bad)
		}
	}
	fmt.Printf("\n%d trap points checked, %d violations\n", total, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

type script struct {
	txns [][]uint64
}

func makeScript(seed uint64, n int) script {
	rng := engine.NewRNG(seed)
	var sc script
	for i := 0; i < n; i++ {
		var addrs []uint64
		for j := 0; j <= rng.Intn(6); j++ {
			page := 1 + rng.Intn(5)
			line := rng.Intn(64)
			addrs = append(addrs, ssp.HeapBase+uint64(page)*ssp.PageBytes+uint64(line)*ssp.LineBytes)
		}
		sc.txns = append(sc.txns, addrs)
	}
	return sc
}

func config(b ssp.Backend) ssp.Config {
	return ssp.Config{Backend: b, Cores: 1, NVRAMMB: 32, DRAMMB: 2, MaxHeapPages: 512}
}

// runScript executes sc until done or power-off, returning the guaranteed
// committed state, the boundary transaction's writes (nil if between
// transactions), and whether the run finished.
func runScript(m *ssp.Machine, sc script) (map[uint64]uint64, map[uint64]uint64) {
	committed := map[uint64]uint64{}
	c := m.Core(0)
	m.Heap().EnsureMapped(1, 5)
	for i, addrs := range sc.txns {
		if m.Mem().PoweredOff() {
			break
		}
		val := uint64(i + 1)
		pending := map[uint64]uint64{}
		c.Begin()
		for _, va := range addrs {
			c.Store64(va, val)
			pending[va] = val
		}
		c.Commit()
		if m.Mem().PoweredOff() {
			return committed, pending
		}
		for va, v := range pending {
			committed[va] = v
		}
	}
	return committed, nil
}

func sweepScript(b ssp.Backend, seed uint64, txns int, verbose bool) (points, failures int) {
	sc := makeScript(seed, txns)

	ref := ssp.New(config(b))
	setup := ref.Stats().NVRAMWriteLines
	runScript(ref, sc)
	ref.Drain()
	writes := int64(ref.Stats().NVRAMWriteLines - setup)

	for k := int64(0); k <= writes; k++ {
		points++
		m := ssp.New(config(b))
		m.Mem().SetWriteTrap(k)
		committed, boundary := runScript(m, sc)
		m.Mem().SetWriteTrap(-1)
		if err := m.Recover(); err != nil {
			fmt.Printf("  trap %d: recovery error: %v\n", k, err)
			failures++
			continue
		}
		m.Heap().EnsureMapped(1, 5)
		if err := verify(m, committed, boundary); err != nil {
			fmt.Printf("  trap %d: %v\n", k, err)
			failures++
		} else if verbose {
			fmt.Printf("  trap %d ok\n", k)
		}
	}
	return points, failures
}

func verify(m *ssp.Machine, committed, boundary map[uint64]uint64) error {
	c := m.Core(0)
	if boundary != nil {
		applied := false
		for va, v := range boundary {
			applied = c.Load64(va) == v
			break
		}
		expect := map[uint64]uint64{}
		for va, v := range committed {
			expect[va] = v
		}
		if applied {
			for va, v := range boundary {
				expect[va] = v
			}
		}
		for va, want := range expect {
			if got := c.Load64(va); got != want {
				return fmt.Errorf("boundary txn torn (applied=%v): %#x got %d want %d", applied, va, got, want)
			}
		}
		return nil
	}
	for va, want := range committed {
		if got := c.Load64(va); got != want {
			return fmt.Errorf("addr %#x: got %d want %d", va, got, want)
		}
	}
	return nil
}
