// Command sspserver exposes the simulated SSP machine as a network KV
// service: a line-oriented TCP front end (GET/SET/DEL/SYNC/STATS/QUIT) over
// per-core ssp/kv shards, with synchronous or relaxed-durability
// acknowledgment — the deployment shape for driving the machine with real
// concurrent traffic instead of an in-process driver.
//
// Usage:
//
//	sspserver -addr 127.0.0.1:7070 -cores 4
//	sspserver -addr 127.0.0.1:7070 -cores 4 -relaxed -epoch 100000
//	sspserver -smoke   # self-test: boot on a loopback port, drive it, exit
//
// The -smoke mode is the CI entry point: it boots the server on an
// ephemeral loopback port, runs the open-loop load generator against it
// over real sockets, verifies clean shutdown and that every driven write
// was committed, prints the counters, and exits non-zero on any failure.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/ssp"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	cores := flag.Int("cores", 4, "simulated cores = server workers")
	channels := flag.Int("channels", 4, "memory channels")
	shards := flag.Int("shards", 1, "SSP metadata-journal shards")
	items := flag.Int("items", 4096, "per-core cache capacity")
	valueBytes := flag.Int("value", 64, "max value bytes")
	relaxed := flag.Bool("relaxed", false, "ack writes after CommitRelaxed (requires -epoch)")
	epoch := flag.Int("epoch", 0, "durability epoch in cycles (0 = synchronous model)")
	smoke := flag.Bool("smoke", false, "boot on a loopback port, drive with the load generator, verify, exit")
	smokeOps := flag.Int("smoke-ops", 4000, "operations for -smoke")
	smokeConns := flag.Int("smoke-conns", 8, "connections for -smoke")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// The default mux carries the pprof handlers via the blank import.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof listener: %v\n", err)
			}
		}()
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	cfg := server.Config{
		Addr: *addr,
		Machine: ssp.Config{
			Backend:         ssp.SSP,
			Cores:           *cores,
			Channels:        *channels,
			JournalShards:   *shards,
			DurabilityEpoch: *epoch,
		},
		Items:      *items,
		ValueBytes: *valueBytes,
		Relaxed:    *relaxed,
	}

	if *smoke {
		os.Exit(runSmoke(cfg, *smokeOps, *smokeConns))
	}

	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mode := "sync"
	if *relaxed {
		mode = fmt.Sprintf("relaxed (epoch %d cycles)", *epoch)
	}
	fmt.Printf("sspserver listening on %s — %d cores, %d channels, %d journal shards, %s acks\n",
		s.Addr(), *cores, *channels, *shards, mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down...")
	s.Close()
	printCounters(s)
}

// runSmoke is the CI self-test; both ack modes are exercised.
func runSmoke(cfg server.Config, ops, conns int) int {
	for _, relaxed := range []bool{false, true} {
		cfg := cfg
		cfg.Addr = "127.0.0.1:0"
		cfg.Relaxed = relaxed
		if relaxed && cfg.Machine.DurabilityEpoch == 0 {
			cfg.Machine.DurabilityEpoch = 100000
		}
		mode := "sync"
		if relaxed {
			mode = "relaxed"
		}

		s, err := server.New(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smoke %s: %v\n", mode, err)
			return 1
		}
		res, err := loadgen.RunTCP(loadgen.TCPConfig{
			Addr:      s.Addr().String(),
			Conns:     conns,
			Ops:       ops,
			Stream:    loadgen.Config{Keys: 2048, Skew: 0.99, ReadPct: 40, DelPct: 10, Seed: 0xC1},
			SyncEvery: 200,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "smoke %s: loadgen: %v\n", mode, err)
			s.Close()
			return 1
		}
		snap := s.Snapshot()
		if err := s.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "smoke %s: close: %v\n", mode, err)
			return 1
		}

		fail := func(format string, args ...any) int {
			fmt.Fprintf(os.Stderr, "smoke %s: "+format+"\n", append([]any{mode}, args...)...)
			return 1
		}
		if res.Errors != 0 || snap.Errors != 0 {
			return fail("errors: client %d server %d", res.Errors, snap.Errors)
		}
		if res.Ops != uint64(ops) {
			return fail("completed %d/%d ops", res.Ops, ops)
		}
		if snap.Committed == 0 || snap.Committed != res.Writes {
			return fail("committed %d, client wrote %d", snap.Committed, res.Writes)
		}
		mst := s.MachineStats()
		if mst.Commits < snap.Committed {
			return fail("machine commits %d < acked writes %d", mst.Commits, snap.Committed)
		}
		if relaxed && mst.RelaxedCommits == 0 {
			return fail("relaxed mode made no relaxed commits")
		}

		fmt.Printf("smoke %s: ok — %d ops (%d writes) over %d conns in %v, client p50/p99 %d/%d ns, machine commits %d relaxed %d\n",
			mode, res.Ops, res.Writes, conns, res.Elapsed.Round(1000),
			res.Hist.Percentile(50), res.Hist.Percentile(99), mst.Commits, mst.RelaxedCommits)
	}
	return 0
}

func printCounters(s *server.Server) {
	snap := s.Snapshot()
	fmt.Printf("served: conns=%d gets=%d sets=%d dels=%d syncs=%d misses=%d committed=%d errors=%d\n",
		snap.Conns, snap.Gets, snap.Sets, snap.Dels, snap.Syncs, snap.Misses, snap.Committed, snap.Errors)
	fmt.Printf("ack latency (host ns): %s\n", snap.Hist.String())
	mst := s.MachineStats()
	fmt.Printf("machine: commits=%d relaxed=%d epochs hardened=%d\n",
		mst.Commits, mst.RelaxedCommits, mst.HardenedEpochs)
}
