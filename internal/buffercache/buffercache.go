// Package buffercache is a pager-style DRAM buffer tier between the CPU
// cache hierarchy and the NVRAM of memsim — the front-end every real NVRAM
// deployment runs that the paper's bare model omits. It implements
// cachesim.Mem, so internal/cachesim routes all sub-L3 traffic through it.
//
// Shape (the classic pager): a pool of 4 KiB DRAM frames, a frame table
// mapping NVRAM data pages to frames, pin counts, per-shard LRU eviction
// and a free list, with dirty lines written back to NVRAM before a frame is
// reused. The pool is sharded by page address — one shard per core by
// default — so the serve path takes no lock of its own (all calls already
// arrive under cachesim's interconnect lock; sharding bounds eviction scan
// cost and keeps hot sets of different cores from thrashing one LRU list).
//
// Only the data frame pool ([vm.Layout.FramePoolBase, FramePoolEnd)) is
// cached. Journal, log, slot-array and page-table traffic passes straight
// through to memsim: those regions are the durability mechanism itself and
// must never be absorbed.
//
// Timing: frames live at real DRAM addresses of the simulated memory
// (frame i occupies DRAM page i, a range nothing else uses), so hits,
// fills and absorbs charge genuine DRAM bank/bus occupancy in memsim while
// NVRAM banks stay idle — the modelled win.
//
// Crash correctness contract (trap-swept by internal/crashsweep):
//
//   - A clean buffered line always equals the durable NVRAM bytes, so
//     serving it from DRAM is value-transparent.
//   - A dirty buffered line exists only for legally-volatile data: a
//     victim write-back absorbed from the CPU caches (EvictLine), whose
//     bytes nothing above required to be durable. DropAll (power loss)
//     discards it — exactly what a volatile DRAM tier does.
//   - Data that must be durable arrives via PersistLine (commit clwb),
//     which always writes NVRAM through, or is hardened by HardenLine when
//     a commit fence covers a line whose only dirty copy was absorbed
//     here. Committed data is therefore never only-in-DRAM past its fence.
package buffercache

import (
	"fmt"
	"math/bits"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
)

// Config sizes the buffer tier.
type Config struct {
	// Frames is the total DRAM frame count (4 KiB each). The frames' DRAM
	// image occupies [0, Frames*PageBytes), which must fit the simulated
	// DRAM capacity.
	Frames int
	// Shards is the number of independent frame partitions (default: one
	// per core, capped so every shard keeps at least one frame).
	Shards int
	// Lo, Hi bound the cached NVRAM range: [Lo, Hi) — the data frame pool.
	// Addresses outside pass through uncached.
	Lo, Hi memsim.PAddr
}

// frame is one DRAM page frame.
type frame struct {
	page  memsim.PAddr // NVRAM page base currently cached; valid when inUse
	buf   memsim.PAddr // DRAM base address of this frame (immutable)
	valid uint64       // per-line valid mask
	dirty uint64       // per-line dirty mask (absorbed write-backs)
	pins  int
	lru   uint64
	inUse bool
}

// shard is one independent frame partition with its own table, free list
// and LRU clock.
type shard struct {
	frames []frame
	table  map[memsim.PAddr]int // NVRAM page base -> index into frames
	free   []int
	tick   uint64
}

// Cache is the buffer tier. It has no locks of its own: every method is
// invoked under cachesim's interconnect mutex, on the invoking core's
// goroutine (see the stats.Sharded ownership note on New).
type Cache struct {
	mem    *memsim.Memory
	st     *stats.Sharded
	lo, hi memsim.PAddr
	shards []*shard
}

// New builds a buffer tier of cfg.Frames frames over mem, restricted to
// [cfg.Lo, cfg.Hi). Per-core counters (hits, misses, absorbs, ...) are
// written to sh's shard of the invoking core; since every call site holds
// cachesim's interconnect lock, these writes are serialised even when the
// invoking core differs from the shard owner's goroutine — the fields are
// touched nowhere else.
func New(cfg Config, mem *memsim.Memory, sh *stats.Sharded) *Cache {
	if cfg.Frames <= 0 {
		panic(fmt.Sprintf("buffercache: Frames is %d, want > 0", cfg.Frames))
	}
	if uint64(cfg.Frames)*memsim.PageBytes > mem.Config().DRAMBytes {
		panic(fmt.Sprintf("buffercache: %d frames need %d bytes but DRAM has %d",
			cfg.Frames, cfg.Frames*memsim.PageBytes, mem.Config().DRAMBytes))
	}
	ns := cfg.Shards
	if ns <= 0 {
		ns = sh.Cores()
	}
	if ns > cfg.Frames {
		ns = cfg.Frames
	}
	c := &Cache{mem: mem, st: sh, lo: cfg.Lo, hi: cfg.Hi, shards: make([]*shard, ns)}
	for i := range c.shards {
		c.shards[i] = &shard{table: make(map[memsim.PAddr]int)}
	}
	// Deal the frames round-robin so shard sizes differ by at most one.
	for f := 0; f < cfg.Frames; f++ {
		s := c.shards[f%ns]
		s.frames = append(s.frames, frame{buf: memsim.PAddr(f) * memsim.PageBytes})
		s.free = append(s.free, len(s.frames)-1)
	}
	return c
}

// Frames returns the configured frame count (test helper).
func (c *Cache) Frames() int {
	n := 0
	for _, s := range c.shards {
		n += len(s.frames)
	}
	return n
}

// cached reports whether pa falls in the buffered range.
func (c *Cache) cached(pa memsim.PAddr) bool { return pa >= c.lo && pa < c.hi }

// shardOf returns the shard owning pa's page. Pages hash across shards by
// page number so one core's sequential working set still spreads.
func (c *Cache) shardOf(page memsim.PAddr) *shard {
	return c.shards[uint64(page>>memsim.PageShift)%uint64(len(c.shards))]
}

// lookup returns pa's frame, or nil.
func (c *Cache) lookup(page memsim.PAddr) (*shard, *frame) {
	s := c.shardOf(page)
	if i, ok := s.table[page]; ok {
		return s, &s.frames[i]
	}
	return s, nil
}

// touch refreshes f's LRU position in s.
func (s *shard) touch(f *frame) {
	s.tick++
	f.lru = s.tick
}

// ensureFrame returns a frame holding pa's page, allocating (and evicting,
// writing dirty victim lines back to NVRAM at `at`) as needed. Returns nil
// when the shard has no evictable frame (all pinned).
func (c *Cache) ensureFrame(core int, page memsim.PAddr, at engine.Cycles) *frame {
	s, f := c.lookup(page)
	if f != nil {
		s.touch(f)
		return f
	}
	var idx int
	switch {
	case len(s.free) > 0:
		idx = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
	default:
		idx = -1
		for i := range s.frames {
			v := &s.frames[i]
			if v.pins > 0 {
				continue
			}
			if idx < 0 || v.lru < s.frames[idx].lru {
				idx = i
			}
		}
		if idx < 0 {
			return nil // every frame pinned
		}
		c.evictFrame(core, s, idx, at)
	}
	f = &s.frames[idx]
	f.page, f.valid, f.dirty, f.inUse = page, 0, 0, true
	s.table[page] = idx
	s.touch(f)
	return f
}

// evictFrame writes frame idx's dirty lines back to NVRAM (CatData;
// completion not waited on — a background write-back, like an L3 victim)
// and unmaps it.
func (c *Cache) evictFrame(core int, s *shard, idx int, at engine.Cycles) {
	f := &s.frames[idx]
	st := c.st.Shard(core)
	st.DRAMCacheEvictions++
	var buf [memsim.LineBytes]byte
	for d := f.dirty; d != 0; {
		li := bits.TrailingZeros64(d)
		d &^= 1 << uint(li)
		off := memsim.PAddr(li * memsim.LineBytes)
		c.mem.Peek(f.buf+off, buf[:])
		c.mem.WriteLine(f.page+off, buf[:], at, stats.CatData)
		st.DRAMCacheWriteBacks++
	}
	delete(s.table, f.page)
	f.inUse, f.valid, f.dirty = false, 0, 0
}

// ---------------------------------------------------------------------------
// cachesim.Mem implementation.

// ReadLine serves a data-range line from its DRAM frame when buffered
// (DRAM timing) or fills it from NVRAM (NVRAM timing, then cached clean).
func (c *Cache) ReadLine(core int, pa memsim.PAddr, buf []byte, at engine.Cycles) engine.Cycles {
	if !c.cached(pa) {
		return c.mem.ReadLine(pa, buf, at)
	}
	page := memsim.PageAddr(pa)
	off := pa - page
	li := memsim.LineIndex(pa)
	st := c.st.Shard(core)
	st.DRAMCacheReads++
	s, f := c.lookup(page)
	if f != nil && f.valid&(1<<uint(li)) != 0 {
		st.DRAMCacheHits++
		s.touch(f)
		return c.mem.ReadLine(f.buf+off, buf, at)
	}
	st.DRAMCacheMisses++
	done := c.mem.ReadLine(pa, buf, at)
	// Fill the frame clean; the DRAM write's completion is not waited on
	// (fill engines run behind the demand read).
	if f = c.ensureFrame(core, page, at); f != nil {
		c.mem.WriteLine(f.buf+off, buf, at, stats.CatData)
		f.valid |= 1 << uint(li)
		f.dirty &^= 1 << uint(li)
	}
	return done
}

// EvictLine absorbs a CPU-cache victim write-back in DRAM: the line lands
// dirty in its frame and no NVRAM write happens. Nothing above waits on or
// requires durability of a victim write-back, so the bytes are legally
// volatile until a fence hardens them (HardenLine) or the frame is evicted.
func (c *Cache) EvictLine(core int, pa memsim.PAddr, data []byte, at engine.Cycles, cat stats.WriteCat) {
	if !c.cached(pa) {
		c.mem.WriteLine(pa, data, at, cat)
		return
	}
	page := memsim.PageAddr(pa)
	f := c.ensureFrame(core, page, at)
	if f == nil {
		// Every frame pinned: fall through to NVRAM like the bare model.
		c.mem.WriteLine(pa, data, at, cat)
		return
	}
	li := memsim.LineIndex(pa)
	off := pa - page
	c.mem.WriteLine(f.buf+off, data, at, cat)
	f.valid |= 1 << uint(li)
	f.dirty |= 1 << uint(li)
	c.st.Shard(core).DRAMCacheAbsorbed++
}

// PersistLine writes the line through to NVRAM (it must become durable; the
// returned completion is what the commit fence waits on) and refreshes any
// buffered copy clean, write-allocating so the hot committed working set
// serves later reads from DRAM.
func (c *Cache) PersistLine(core int, pa memsim.PAddr, data []byte, at engine.Cycles, cat stats.WriteCat) engine.Cycles {
	done := c.mem.WriteLine(pa, data, at, cat)
	if !c.cached(pa) {
		return done
	}
	page := memsim.PageAddr(pa)
	if f := c.ensureFrame(core, page, at); f != nil {
		li := memsim.LineIndex(pa)
		c.mem.WriteLine(f.buf+(pa-page), data, at, cat)
		f.valid |= 1 << uint(li)
		f.dirty &^= 1 << uint(li)
	}
	return done
}

// HardenLine writes a dirty buffered copy of pa's line through to NVRAM —
// the commit-fence backstop closing the absorb-then-commit window (a line
// spilled from L3 before its transaction committed lives dirty only here;
// the commit's fence must not complete with the committed bytes
// DRAM-only).
func (c *Cache) HardenLine(core int, pa memsim.PAddr, at engine.Cycles, cat stats.WriteCat) (engine.Cycles, bool) {
	if !c.cached(pa) {
		return at, false
	}
	page := memsim.PageAddr(pa)
	_, f := c.lookup(page)
	li := memsim.LineIndex(pa)
	if f == nil || f.dirty&(1<<uint(li)) == 0 {
		return at, false
	}
	off := pa - page
	var buf [memsim.LineBytes]byte
	c.mem.Peek(f.buf+off, buf[:])
	done := c.mem.WriteLine(page+off, buf[:], at, cat)
	f.dirty &^= 1 << uint(li)
	c.st.Shard(core).DRAMCacheHardens++
	return done, true
}

// DirtyLine reports whether pa's line is buffered dirty (not yet durable).
func (c *Cache) DirtyLine(pa memsim.PAddr) bool {
	if !c.cached(pa) {
		return false
	}
	_, f := c.lookup(memsim.PageAddr(pa))
	return f != nil && f.dirty&(1<<uint(memsim.LineIndex(pa))) != 0
}

// InjectLine refreshes a buffered copy with bytes just written durably to
// NVRAM (consolidation's copy engine). Untimed, clean, no allocation.
func (c *Cache) InjectLine(pa memsim.PAddr, data []byte) {
	if !c.cached(pa) {
		return
	}
	page := memsim.PageAddr(pa)
	_, f := c.lookup(page)
	if f == nil {
		return
	}
	li := memsim.LineIndex(pa)
	c.mem.Poke(f.buf+(pa-page), data[:memsim.LineBytes])
	f.valid |= 1 << uint(li)
	f.dirty &^= 1 << uint(li)
}

// Peek resolves the freshest bytes at pa without timing: the buffered copy
// when the line is valid (a dirty line is fresher than NVRAM; a clean one
// equals it), else the durable image. Must stay within one line.
func (c *Cache) Peek(pa memsim.PAddr, buf []byte) {
	if !c.cached(pa) {
		c.mem.Peek(pa, buf)
		return
	}
	page := memsim.PageAddr(pa)
	_, f := c.lookup(page)
	if f == nil || f.valid&(1<<uint(memsim.LineIndex(pa))) == 0 {
		c.mem.Peek(pa, buf)
		return
	}
	c.mem.Peek(f.buf+(pa-page), buf)
}

// ---------------------------------------------------------------------------
// Pager API beyond cachesim.Mem.

// Pin prevents the frame holding pa's page (if any) from being evicted
// until a matching Unpin. Reports whether a frame was pinned.
func (c *Cache) Pin(pa memsim.PAddr) bool {
	if !c.cached(pa) {
		return false
	}
	_, f := c.lookup(memsim.PageAddr(pa))
	if f == nil {
		return false
	}
	f.pins++
	return true
}

// Unpin releases one pin on pa's frame.
func (c *Cache) Unpin(pa memsim.PAddr) {
	_, f := c.lookup(memsim.PageAddr(pa))
	if f == nil || f.pins == 0 {
		panic(fmt.Sprintf("buffercache: Unpin of unpinned page %#x", pa))
	}
	f.pins--
}

// DropAll discards every frame without write-back: the moment of power
// loss. Dirty absorbed lines vanish, exactly as volatile DRAM contents do.
func (c *Cache) DropAll() {
	for _, s := range c.shards {
		s.table = make(map[memsim.PAddr]int)
		s.free = s.free[:0]
		for i := range s.frames {
			f := &s.frames[i]
			f.inUse, f.valid, f.dirty, f.pins = false, 0, 0, 0
			s.free = append(s.free, i)
		}
		s.tick = 0
	}
}
