package buffercache

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/stats"
)

// newTestCache builds a small buffer tier over a private memory system,
// caching the whole NVRAM range.
func newTestCache(t *testing.T, frames, shards int) (*Cache, *memsim.Memory, *stats.Sharded) {
	t.Helper()
	cfg := memsim.DefaultConfig()
	cfg.DRAMBytes = 1 << 20
	cfg.NVRAMBytes = 1 << 20
	sh := stats.NewSharded(1)
	mem := memsim.New(cfg, sh.Shared())
	c := New(Config{
		Frames: frames,
		Shards: shards,
		Lo:     cfg.NVRAMBase,
		Hi:     cfg.NVRAMBase + memsim.PAddr(cfg.NVRAMBytes),
	}, mem, sh)
	return c, mem, sh
}

func line(b byte) []byte {
	data := make([]byte, memsim.LineBytes)
	data[0] = b
	return data
}

func TestPinPreventsEviction(t *testing.T) {
	c, mem, sh := newTestCache(t, 1, 1)
	pageA := c.lo
	pageB := c.lo + memsim.PageBytes
	buf := make([]byte, memsim.LineBytes)

	c.ReadLine(0, pageA, buf, 0) // fills the only frame
	if !c.Pin(pageA) {
		t.Fatal("Pin found no frame for a just-filled page")
	}
	// A demand read of another page cannot claim the pinned frame: it is
	// served from NVRAM and left uncached.
	c.ReadLine(0, pageB, buf, 0)
	if _, f := c.lookup(pageB); f != nil {
		t.Error("page B got a frame while the whole pool was pinned")
	}
	if _, f := c.lookup(pageA); f == nil || !f.inUse {
		t.Error("pinned page A was evicted")
	}
	// A victim write-back cannot be absorbed either — it falls through to
	// NVRAM like the bare model, keeping the bytes safe.
	c.EvictLine(0, pageB, line(7), 0, stats.CatData)
	if got := sh.Shard(0).DRAMCacheAbsorbed; got != 0 {
		t.Errorf("absorbed %d write-backs with every frame pinned", got)
	}
	mem.Peek(pageB, buf)
	if buf[0] != 7 {
		t.Error("fall-through write-back did not reach NVRAM")
	}
	// Unpinning re-enables eviction.
	c.Unpin(pageA)
	c.EvictLine(0, pageB, line(8), 0, stats.CatData)
	if _, f := c.lookup(pageB); f == nil {
		t.Error("page B not absorbed after Unpin")
	}
	if _, f := c.lookup(pageA); f != nil {
		t.Error("page A still resident after losing the pool's only frame")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c, _, _ := newTestCache(t, 2, 1)
	pageA := c.lo
	pageB := c.lo + memsim.PageBytes
	pageC := c.lo + 2*memsim.PageBytes
	buf := make([]byte, memsim.LineBytes)

	c.ReadLine(0, pageA, buf, 0)
	c.ReadLine(0, pageB, buf, 0)
	c.ReadLine(0, pageA, buf, 0) // hit: A is now the most recently used
	c.ReadLine(0, pageC, buf, 0) // must evict B, the LRU frame
	if _, f := c.lookup(pageB); f != nil {
		t.Error("LRU page B survived the eviction")
	}
	if _, f := c.lookup(pageA); f == nil {
		t.Error("recently-used page A was evicted instead of B")
	}
	if _, f := c.lookup(pageC); f == nil {
		t.Error("page C not resident after its fill")
	}
}

func TestDirtyWriteBackExactlyOnce(t *testing.T) {
	c, mem, sh := newTestCache(t, 1, 1)
	pageA := c.lo
	pageB := c.lo + memsim.PageBytes
	pageC := c.lo + 2*memsim.PageBytes
	buf := make([]byte, memsim.LineBytes)

	c.EvictLine(0, pageA, line(0x5A), 0, stats.CatData)
	st := sh.Shard(0)
	if st.DRAMCacheAbsorbed != 1 {
		t.Fatalf("absorbed = %d, want 1", st.DRAMCacheAbsorbed)
	}
	mem.Peek(pageA, buf)
	if buf[0] != 0 {
		t.Fatal("absorbed write-back reached NVRAM before eviction")
	}

	c.ReadLine(0, pageB, buf, 0) // evicts A's dirty frame
	if st.DRAMCacheWriteBacks != 1 {
		t.Errorf("write-backs = %d after dirty eviction, want 1", st.DRAMCacheWriteBacks)
	}
	mem.Peek(pageA, buf)
	if buf[0] != 0x5A {
		t.Error("dirty eviction did not write the absorbed bytes back")
	}

	c.ReadLine(0, pageC, buf, 0) // evicts B's clean frame
	if st.DRAMCacheWriteBacks != 1 {
		t.Errorf("write-backs = %d after clean eviction, want still 1", st.DRAMCacheWriteBacks)
	}
	if st.DRAMCacheEvictions != 2 {
		t.Errorf("evictions = %d, want 2", st.DRAMCacheEvictions)
	}
}

func TestHardenClearsDirtyBeforeEviction(t *testing.T) {
	c, mem, sh := newTestCache(t, 1, 1)
	pageA := c.lo
	pageB := c.lo + memsim.PageBytes
	buf := make([]byte, memsim.LineBytes)

	c.EvictLine(0, pageA, line(0x77), 0, stats.CatData)
	if _, ok := c.HardenLine(0, pageA, 0, stats.CatData); !ok {
		t.Fatal("HardenLine found no dirty copy")
	}
	mem.Peek(pageA, buf)
	if buf[0] != 0x77 {
		t.Error("HardenLine did not write the dirty bytes through")
	}
	if _, ok := c.HardenLine(0, pageA, 0, stats.CatData); ok {
		t.Error("second HardenLine of a now-clean line reported work")
	}
	st := sh.Shard(0)
	if st.DRAMCacheHardens != 1 {
		t.Errorf("hardens = %d, want 1", st.DRAMCacheHardens)
	}
	c.ReadLine(0, pageB, buf, 0) // evicts A, now clean
	if st.DRAMCacheWriteBacks != 0 {
		t.Errorf("write-backs = %d after hardened eviction, want 0", st.DRAMCacheWriteBacks)
	}
}

func TestDropAllDiscardsDirtyData(t *testing.T) {
	c, mem, _ := newTestCache(t, 4, 1)
	pageA := c.lo
	buf := make([]byte, memsim.LineBytes)

	c.EvictLine(0, pageA, line(0x33), 0, stats.CatData)
	c.DropAll()
	mem.Peek(pageA, buf)
	if buf[0] != 0 {
		t.Error("DropAll leaked a dirty absorbed line into NVRAM")
	}
	if _, f := c.lookup(pageA); f != nil {
		t.Error("frame still mapped after DropAll")
	}
	// The pool is whole again: a fresh fill must find a free frame.
	c.ReadLine(0, pageA, buf, 0)
	if _, f := c.lookup(pageA); f == nil {
		t.Error("no free frame after DropAll")
	}
}

func TestOutOfRangePassesThrough(t *testing.T) {
	c, mem, sh := newTestCache(t, 2, 1)
	dram := memsim.PAddr(512 << 10) // below lo: plain DRAM, not buffered
	buf := make([]byte, memsim.LineBytes)

	c.ReadLine(0, dram, buf, 0)
	c.EvictLine(0, dram, line(9), 0, stats.CatData)
	st := sh.Shard(0)
	if st.DRAMCacheReads != 0 || st.DRAMCacheAbsorbed != 0 {
		t.Error("out-of-range traffic touched the buffer counters")
	}
	mem.Peek(dram, buf)
	if buf[0] != 9 {
		t.Error("out-of-range write did not pass through")
	}
}

func TestAccountingIdentity(t *testing.T) {
	c, _, sh := newTestCache(t, 8, 2)
	buf := make([]byte, memsim.LineBytes)
	// A mixed stream over more pages than frames: every read is a hit or a
	// miss, nothing else.
	for i := 0; i < 400; i++ {
		page := c.lo + memsim.PAddr((i*7)%24)*memsim.PageBytes
		off := memsim.PAddr((i % 4) * memsim.LineBytes)
		c.ReadLine(0, page+off, buf, 0)
	}
	st := sh.Shard(0)
	if st.DRAMCacheReads == 0 {
		t.Fatal("no buffered reads recorded")
	}
	if st.DRAMCacheHits+st.DRAMCacheMisses != st.DRAMCacheReads {
		t.Errorf("hits %d + misses %d != reads %d",
			st.DRAMCacheHits, st.DRAMCacheMisses, st.DRAMCacheReads)
	}
}
