// Package wal implements the durable record streams every atomicity
// mechanism in this repository builds on: the per-core undo/redo logs, the
// SSP metadata journal (§3.3), and the software fall-back log.
//
// A stream is a fixed NVRAM region written sequentially at cache-line
// granularity through a small controller-side buffer (the paper's "log
// buffer": records are "written back to NVRAM, at cache level granularity,
// only when the log buffer is full or an explicit request is made to flush
// the buffer"). Records carry a checksum and a non-decreasing transaction
// ID, which makes truncation free: a reader scans from the region start and
// stops at the first record that fails its checksum or regresses in TID —
// everything beyond is a stale previous generation. Writers "truncate" by
// resetting their volatile append offset to zero.
package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
)

// HeaderBytes is the fixed record header size: checksum(4), tid(4),
// kind(1), payload length(1), padding(2), reserved(4).
const HeaderBytes = 16

// MaxPayload is the largest record payload a stream accepts.
const MaxPayload = 200

const checksumSeed = 0x53535031 // "SSP1"

// Record is one framed entry in a stream.
type Record struct {
	TID     uint32
	Kind    uint8
	Payload []byte
}

func checksum(tid uint32, kind uint8, payload []byte) uint32 {
	h := uint32(2166136261) ^ checksumSeed
	mix := func(b byte) {
		h ^= uint32(b)
		h *= 16777619
	}
	for _, b := range payload {
		mix(b)
	}
	mix(kind)
	for i := 0; i < 4; i++ {
		mix(byte(tid >> (8 * i)))
	}
	mix(byte(len(payload)))
	if h == 0 {
		h = 1
	}
	return h
}

func encodedLen(payload int) int {
	n := HeaderBytes + payload
	return (n + 7) &^ 7 // 8-byte alignment keeps records atomically framed
}

// Stream is a sequential, checksummed record log over one NVRAM region.
type Stream struct {
	mem  *memsim.Memory
	base memsim.PAddr
	cap  int
	cat  stats.WriteCat

	off     int // next append offset within the region
	lastTID uint32

	// Controller-side line buffer: bytes staged for the line currently
	// being filled. flushedThrough marks how much of the region has been
	// made durable; generation counts Resets (for Durable marks).
	pending        []byte // staged-but-unflushed bytes (suffix of stream)
	pendingStart   int    // offset of pending[0] within the region
	flushedThrough int
	generation     uint64
	flushWrites    uint64 // tail-line NVRAM writes performed by Flush
}

// NewStream returns an empty stream over [base, base+capacity).
func NewStream(mem *memsim.Memory, base memsim.PAddr, capacity int, cat stats.WriteCat) *Stream {
	if capacity < memsim.LineBytes {
		panic("wal: capacity below one line")
	}
	return &Stream{mem: mem, base: base, cap: capacity, cat: cat}
}

// Capacity returns the region size in bytes.
func (s *Stream) Capacity() int { return s.cap }

// Used returns the bytes appended since the last Reset (flushed or not).
func (s *Stream) Used() int { return s.off }

// Append frames and stages one record. Full lines are written to NVRAM as
// they fill; the partial tail line stays buffered until Flush. It returns
// the completion time of any line writes it performed.
func (s *Stream) Append(rec Record, at engine.Cycles) engine.Cycles {
	if len(rec.Payload) > MaxPayload {
		panic(fmt.Sprintf("wal: payload %d exceeds max", len(rec.Payload)))
	}
	if rec.TID < s.lastTID {
		panic(fmt.Sprintf("wal: TID regression %d < %d", rec.TID, s.lastTID))
	}
	n := encodedLen(len(rec.Payload))
	if s.off+n > s.cap {
		panic(fmt.Sprintf("wal: region overflow (%d used of %d); transaction too large for log", s.off, s.cap))
	}
	s.lastTID = rec.TID

	buf := make([]byte, n)
	binary.LittleEndian.PutUint32(buf[0:], checksum(rec.TID, rec.Kind, rec.Payload))
	binary.LittleEndian.PutUint32(buf[4:], rec.TID)
	buf[8] = rec.Kind
	buf[9] = byte(len(rec.Payload))
	copy(buf[HeaderBytes:], rec.Payload)

	if len(s.pending) == 0 {
		s.pendingStart = s.off
	}
	s.pending = append(s.pending, buf...)
	s.off += n
	return s.drainFullLines(at)
}

// drainFullLines writes every complete line in the pending buffer.
func (s *Stream) drainFullLines(at engine.Cycles) engine.Cycles {
	t := at
	for {
		lineStart := s.pendingStart &^ (memsim.LineBytes - 1)
		lineEnd := lineStart + memsim.LineBytes
		if s.pendingStart+len(s.pending) < lineEnd {
			return t
		}
		// The pending buffer covers this line through its end; write the
		// covered portion of the line.
		span := lineEnd - s.pendingStart
		t = s.mem.WriteBytes(s.base+memsim.PAddr(s.pendingStart), s.pending[:span], t, s.cat)
		s.pending = s.pending[span:]
		s.pendingStart = lineEnd
		if s.pendingStart > s.flushedThrough {
			s.flushedThrough = s.pendingStart
		}
	}
}

// Flush forces the partial tail line to NVRAM (the "explicit request" of
// §4.1.2); the tail line will be rewritten when later records extend it.
func (s *Stream) Flush(at engine.Cycles) engine.Cycles {
	t := s.drainFullLines(at)
	if len(s.pending) == 0 || s.flushedThrough >= s.pendingStart+len(s.pending) {
		return t
	}
	t = s.mem.WriteBytes(s.base+memsim.PAddr(s.pendingStart), s.pending, t, s.cat)
	s.flushedThrough = s.pendingStart + len(s.pending)
	s.flushWrites++
	// Keep the bytes staged: the line is partially filled and will be
	// rewritten in full when more records arrive.
	return t
}

// FlushWrites returns the number of partial-tail-line NVRAM writes Flush has
// performed over the stream's lifetime (full lines drain during Append and
// are not counted). Group commit coalesces several batches into one flush,
// so this counter growing slower than the commit count is the saving made
// visible.
func (s *Stream) FlushWrites() uint64 { return s.flushWrites }

// Reset logically truncates the stream: appends restart at offset zero,
// overwriting the previous generation. Durable truncation is unnecessary —
// scans stop at the TID regression (see the package comment).
func (s *Stream) Reset() {
	s.off = 0
	s.pending = s.pending[:0]
	s.pendingStart = 0
	s.flushedThrough = 0
	s.generation++
}

// Durable reports whether everything appended before the mark was taken
// has reached NVRAM (or was retired by a Reset/checkpoint).
func (s *Stream) Durable(m Mark) bool {
	return m.generation < s.generation || m.off <= s.flushedThrough
}

// Mark names a position in the stream for later Durable queries.
type Mark struct {
	generation uint64
	off        int
}

// LastTID returns the TID of the most recently appended record, or the TID
// floor if nothing was appended since the last Reset. Marker records that
// must never regress the stream (epoch seals) reuse it.
func (s *Stream) LastTID() uint32 { return s.lastTID }

// MarkHere returns a Mark for the stream's current end: Durable(mark)
// becomes true once everything appended so far has drained to NVRAM.
func (s *Stream) MarkHere() Mark {
	return Mark{generation: s.generation, off: s.off}
}

// SetTIDFloor raises the stream's TID monotonicity floor (used after
// recovery so new records sort after every durable one).
func (s *Stream) SetTIDFloor(tid uint32) {
	if tid > s.lastTID {
		s.lastTID = tid
	}
}

// Scan reads the durable region from offset zero, returning every valid
// record up to the first checksum failure or TID regression. It reflects
// only bytes that reached NVRAM — staged bytes lost in a crash are invisible,
// exactly as they would be.
func Scan(mem *memsim.Memory, base memsim.PAddr, capacity int) []Record {
	raw := make([]byte, capacity)
	mem.Peek(base, raw)
	var out []Record
	off := 0
	var last uint32
	for off+HeaderBytes <= capacity {
		sum := binary.LittleEndian.Uint32(raw[off:])
		tid := binary.LittleEndian.Uint32(raw[off+4:])
		kind := raw[off+8]
		plen := int(raw[off+9])
		if plen > MaxPayload || off+encodedLen(plen) > capacity {
			break
		}
		payload := raw[off+HeaderBytes : off+HeaderBytes+plen]
		if checksum(tid, kind, payload) != sum {
			break
		}
		if tid < last {
			break
		}
		last = tid
		cp := make([]byte, plen)
		copy(cp, payload)
		out = append(out, Record{TID: tid, Kind: kind, Payload: cp})
		off += encodedLen(plen)
	}
	return out
}

// MaxTID returns the highest TID among records (0 when empty).
func MaxTID(recs []Record) uint32 {
	var m uint32
	for _, r := range recs {
		if r.TID > m {
			m = r.TID
		}
	}
	return m
}

// ScanShards scans one region per base address (all of the given capacity)
// and returns the per-shard record slices, in shard order. Each shard's
// slice obeys the single-stream Scan contract: durable bytes only, stopped
// at the first checksum failure or TID regression (the shard's torn tail).
func ScanShards(mem *memsim.Memory, bases []memsim.PAddr, capacity int) [][]Record {
	out := make([][]Record, len(bases))
	for i, base := range bases {
		out[i] = Scan(mem, base, capacity)
	}
	return out
}

// Merge interleaves the records of several TID-monotonic streams into one
// globally TID-ordered replay sequence. Runs of equal TID within one shard
// (a transaction's update batch) are consumed as a unit, so a batch is
// never split by another shard's records; across shards TIDs are unique by
// construction (one global allocator), and any tie is broken by shard index
// so the merge is deterministic. The inputs are not modified.
func Merge(shards [][]Record) []Record {
	heads := make([]int, len(shards))
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	out := make([]Record, 0, total)
	for {
		best := -1
		for i, s := range shards {
			if heads[i] >= len(s) {
				continue
			}
			if best < 0 || s[heads[i]].TID < shards[best][heads[best]].TID {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		s := shards[best]
		tid := s[heads[best]].TID
		for heads[best] < len(s) && s[heads[best]].TID == tid {
			out = append(out, s[heads[best]])
			heads[best]++
		}
	}
}
