package wal

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
)

func newStream(t *testing.T) (*Stream, *memsim.Memory, *stats.Stats) {
	t.Helper()
	st := &stats.Stats{}
	cfg := memsim.DefaultConfig()
	cfg.DRAMBytes = 1 << 20
	cfg.NVRAMBytes = 1 << 20
	mem := memsim.New(cfg, st)
	base := cfg.NVRAMBase
	return NewStream(mem, base, 8<<10, stats.CatUndoLog), mem, st
}

func TestAppendScanRoundTrip(t *testing.T) {
	s, mem, _ := newStream(t)
	recs := []Record{
		{TID: 1, Kind: 2, Payload: []byte("hello")},
		{TID: 1, Kind: 3, Payload: nil},
		{TID: 2, Kind: 2, Payload: bytes.Repeat([]byte{0xAB}, 100)},
	}
	for _, r := range recs {
		s.Append(r, 0)
	}
	s.Flush(0)
	got := Scan(mem, mem.Config().NVRAMBase, 8<<10)
	if len(got) != len(recs) {
		t.Fatalf("scan returned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].TID != recs[i].TID || got[i].Kind != recs[i].Kind || !bytes.Equal(got[i].Payload, recs[i].Payload) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
	if MaxTID(got) != 2 {
		t.Errorf("MaxTID = %d", MaxTID(got))
	}
}

func TestUnflushedTailInvisible(t *testing.T) {
	s, mem, _ := newStream(t)
	s.Append(Record{TID: 1, Kind: 1, Payload: []byte("durable")}, 0)
	s.Flush(0)
	s.Append(Record{TID: 2, Kind: 1, Payload: []byte("staged")}, 0)
	// No flush: the second record must not be visible (power failure would
	// lose the controller buffer).
	got := Scan(mem, mem.Config().NVRAMBase, 8<<10)
	if len(got) != 1 || got[0].TID != 1 {
		t.Fatalf("staged record leaked: %d records", len(got))
	}
}

func TestResetGenerationTIDRegression(t *testing.T) {
	s, mem, _ := newStream(t)
	// Generation 1: three records.
	for tid := uint32(1); tid <= 3; tid++ {
		s.Append(Record{TID: tid, Kind: 1, Payload: bytes.Repeat([]byte{byte(tid)}, 40)}, 0)
	}
	s.Flush(0)
	// Truncate, then write one newer record over the old bytes.
	s.Reset()
	s.SetTIDFloor(3)
	s.Append(Record{TID: 4, Kind: 1, Payload: []byte("new")}, 0)
	s.Flush(0)
	got := Scan(mem, mem.Config().NVRAMBase, 8<<10)
	if len(got) != 1 || got[0].TID != 4 {
		t.Fatalf("scan after truncation: got %d records, first TID %d", len(got), got[0].TID)
	}
}

func TestScanStopsAtGarbage(t *testing.T) {
	s, mem, _ := newStream(t)
	s.Append(Record{TID: 5, Kind: 1, Payload: []byte("ok")}, 0)
	s.Flush(0)
	// Corrupt bytes after the record.
	mem.Poke(mem.Config().NVRAMBase+64, bytes.Repeat([]byte{0xFF}, 64))
	got := Scan(mem, mem.Config().NVRAMBase, 8<<10)
	if len(got) != 1 {
		t.Fatalf("scan did not stop at garbage: %d records", len(got))
	}
}

func TestEmptyRegionScansEmpty(t *testing.T) {
	_, mem, _ := newStream(t)
	if got := Scan(mem, mem.Config().NVRAMBase, 8<<10); len(got) != 0 {
		t.Fatalf("zeroed region produced %d records", len(got))
	}
}

func TestTIDMonotonicityEnforced(t *testing.T) {
	s, _, _ := newStream(t)
	s.Append(Record{TID: 10, Kind: 1}, 0)
	defer func() {
		if recover() == nil {
			t.Error("TID regression should panic")
		}
	}()
	s.Append(Record{TID: 9, Kind: 1}, 0)
}

func TestOverflowPanics(t *testing.T) {
	s, _, _ := newStream(t)
	defer func() {
		if recover() == nil {
			t.Error("region overflow should panic")
		}
	}()
	for i := 0; i < 10000; i++ {
		s.Append(Record{TID: uint32(i + 1), Kind: 1, Payload: bytes.Repeat([]byte{1}, 64)}, 0)
	}
}

func TestDurableMarks(t *testing.T) {
	s, _, _ := newStream(t)
	if !s.Durable(s.MarkHere()) {
		t.Error("mark over an empty stream should be durable")
	}
	s.Append(Record{TID: 1, Kind: 1, Payload: []byte("x")}, 0)
	m1 := s.MarkHere()
	if s.Durable(m1) {
		t.Error("mark past staged bytes reported durable")
	}
	s.Flush(0)
	if !s.Durable(m1) {
		t.Error("mark not durable after flush")
	}
	// Reset (checkpoint) satisfies all previous marks.
	s.Append(Record{TID: 2, Kind: 1, Payload: []byte("y")}, 0)
	m2 := s.MarkHere()
	s.Reset()
	if !s.Durable(m2) {
		t.Error("mark from previous generation not satisfied by Reset")
	}
}

func TestByteAccountingMatchesWrites(t *testing.T) {
	s, _, st := newStream(t)
	for tid := uint32(1); tid <= 20; tid++ {
		s.Append(Record{TID: tid, Kind: 1, Payload: bytes.Repeat([]byte{1}, 24)}, 0)
		s.Flush(0)
	}
	if st.NVRAMWriteBytes[stats.CatUndoLog] == 0 {
		t.Fatal("no bytes accounted")
	}
	if st.NVRAMWriteLines == 0 {
		t.Fatal("no line writes accounted")
	}
}

// Property: any flushed prefix of appends scans back exactly.
func TestScanPrefixProperty(t *testing.T) {
	f := func(seed uint64) bool {
		st := &stats.Stats{}
		cfg := memsim.DefaultConfig()
		cfg.DRAMBytes = 1 << 20
		cfg.NVRAMBytes = 1 << 20
		mem := memsim.New(cfg, st)
		s := NewStream(mem, cfg.NVRAMBase, 16<<10, stats.CatRedoLog)
		rng := engine.NewRNG(seed)
		var appended []Record
		flushedCount := 0
		for i := 0; i < 60; i++ {
			p := make([]byte, rng.Intn(60))
			for j := range p {
				p[j] = byte(rng.Intn(256))
			}
			r := Record{TID: uint32(i + 1), Kind: uint8(1 + rng.Intn(5)), Payload: p}
			s.Append(r, 0)
			appended = append(appended, r)
			if rng.Intn(3) == 0 {
				s.Flush(0)
				flushedCount = len(appended)
			}
		}
		got := Scan(mem, cfg.NVRAMBase, 16<<10)
		if len(got) < flushedCount {
			return false
		}
		for i := 0; i < flushedCount; i++ {
			if got[i].TID != appended[i].TID || !bytes.Equal(got[i].Payload, appended[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
