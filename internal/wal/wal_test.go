package wal

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
)

func newStream(t *testing.T) (*Stream, *memsim.Memory, *stats.Stats) {
	t.Helper()
	st := &stats.Stats{}
	cfg := memsim.DefaultConfig()
	cfg.DRAMBytes = 1 << 20
	cfg.NVRAMBytes = 1 << 20
	mem := memsim.New(cfg, st)
	base := cfg.NVRAMBase
	return NewStream(mem, base, 8<<10, stats.CatUndoLog), mem, st
}

func TestAppendScanRoundTrip(t *testing.T) {
	s, mem, _ := newStream(t)
	recs := []Record{
		{TID: 1, Kind: 2, Payload: []byte("hello")},
		{TID: 1, Kind: 3, Payload: nil},
		{TID: 2, Kind: 2, Payload: bytes.Repeat([]byte{0xAB}, 100)},
	}
	for _, r := range recs {
		s.Append(r, 0)
	}
	s.Flush(0)
	got := Scan(mem, mem.Config().NVRAMBase, 8<<10)
	if len(got) != len(recs) {
		t.Fatalf("scan returned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].TID != recs[i].TID || got[i].Kind != recs[i].Kind || !bytes.Equal(got[i].Payload, recs[i].Payload) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
	if MaxTID(got) != 2 {
		t.Errorf("MaxTID = %d", MaxTID(got))
	}
}

func TestUnflushedTailInvisible(t *testing.T) {
	s, mem, _ := newStream(t)
	s.Append(Record{TID: 1, Kind: 1, Payload: []byte("durable")}, 0)
	s.Flush(0)
	s.Append(Record{TID: 2, Kind: 1, Payload: []byte("staged")}, 0)
	// No flush: the second record must not be visible (power failure would
	// lose the controller buffer).
	got := Scan(mem, mem.Config().NVRAMBase, 8<<10)
	if len(got) != 1 || got[0].TID != 1 {
		t.Fatalf("staged record leaked: %d records", len(got))
	}
}

func TestResetGenerationTIDRegression(t *testing.T) {
	s, mem, _ := newStream(t)
	// Generation 1: three records.
	for tid := uint32(1); tid <= 3; tid++ {
		s.Append(Record{TID: tid, Kind: 1, Payload: bytes.Repeat([]byte{byte(tid)}, 40)}, 0)
	}
	s.Flush(0)
	// Truncate, then write one newer record over the old bytes.
	s.Reset()
	s.SetTIDFloor(3)
	s.Append(Record{TID: 4, Kind: 1, Payload: []byte("new")}, 0)
	s.Flush(0)
	got := Scan(mem, mem.Config().NVRAMBase, 8<<10)
	if len(got) != 1 || got[0].TID != 4 {
		t.Fatalf("scan after truncation: got %d records, first TID %d", len(got), got[0].TID)
	}
}

func TestScanStopsAtGarbage(t *testing.T) {
	s, mem, _ := newStream(t)
	s.Append(Record{TID: 5, Kind: 1, Payload: []byte("ok")}, 0)
	s.Flush(0)
	// Corrupt bytes after the record.
	mem.Poke(mem.Config().NVRAMBase+64, bytes.Repeat([]byte{0xFF}, 64))
	got := Scan(mem, mem.Config().NVRAMBase, 8<<10)
	if len(got) != 1 {
		t.Fatalf("scan did not stop at garbage: %d records", len(got))
	}
}

func TestEmptyRegionScansEmpty(t *testing.T) {
	_, mem, _ := newStream(t)
	if got := Scan(mem, mem.Config().NVRAMBase, 8<<10); len(got) != 0 {
		t.Fatalf("zeroed region produced %d records", len(got))
	}
}

func TestTIDMonotonicityEnforced(t *testing.T) {
	s, _, _ := newStream(t)
	s.Append(Record{TID: 10, Kind: 1}, 0)
	defer func() {
		if recover() == nil {
			t.Error("TID regression should panic")
		}
	}()
	s.Append(Record{TID: 9, Kind: 1}, 0)
}

func TestOverflowPanics(t *testing.T) {
	s, _, _ := newStream(t)
	defer func() {
		if recover() == nil {
			t.Error("region overflow should panic")
		}
	}()
	for i := 0; i < 10000; i++ {
		s.Append(Record{TID: uint32(i + 1), Kind: 1, Payload: bytes.Repeat([]byte{1}, 64)}, 0)
	}
}

func TestDurableMarks(t *testing.T) {
	s, _, _ := newStream(t)
	if !s.Durable(s.MarkHere()) {
		t.Error("mark over an empty stream should be durable")
	}
	s.Append(Record{TID: 1, Kind: 1, Payload: []byte("x")}, 0)
	m1 := s.MarkHere()
	if s.Durable(m1) {
		t.Error("mark past staged bytes reported durable")
	}
	s.Flush(0)
	if !s.Durable(m1) {
		t.Error("mark not durable after flush")
	}
	// Reset (checkpoint) satisfies all previous marks.
	s.Append(Record{TID: 2, Kind: 1, Payload: []byte("y")}, 0)
	m2 := s.MarkHere()
	s.Reset()
	if !s.Durable(m2) {
		t.Error("mark from previous generation not satisfied by Reset")
	}
}

func TestByteAccountingMatchesWrites(t *testing.T) {
	s, _, st := newStream(t)
	for tid := uint32(1); tid <= 20; tid++ {
		s.Append(Record{TID: tid, Kind: 1, Payload: bytes.Repeat([]byte{1}, 24)}, 0)
		s.Flush(0)
	}
	if st.NVRAMWriteBytes[stats.CatUndoLog] == 0 {
		t.Fatal("no bytes accounted")
	}
	if st.NVRAMWriteLines == 0 {
		t.Fatal("no line writes accounted")
	}
}

// multiStream builds n streams over disjoint regions of one memory, plus
// the base addresses for ScanShards.
func multiStream(t *testing.T, n int) ([]*Stream, []memsim.PAddr, *memsim.Memory) {
	t.Helper()
	st := &stats.Stats{}
	cfg := memsim.DefaultConfig()
	cfg.DRAMBytes = 1 << 20
	cfg.NVRAMBytes = 1 << 20
	mem := memsim.New(cfg, st)
	var streams []*Stream
	var bases []memsim.PAddr
	for i := 0; i < n; i++ {
		base := cfg.NVRAMBase + memsim.PAddr(i*(8<<10))
		bases = append(bases, base)
		streams = append(streams, NewStream(mem, base, 8<<10, stats.CatMetaJournal))
	}
	return streams, bases, mem
}

func TestMergeOrdersAcrossShards(t *testing.T) {
	streams, bases, mem := multiStream(t, 3)
	// Interleave TIDs across shards the way a global allocator would:
	// shard = tid % 3, with TID 5 a three-record batch on shard 2.
	for tid := uint32(1); tid <= 9; tid++ {
		s := streams[tid%3]
		s.Append(Record{TID: tid, Kind: 1, Payload: []byte{byte(tid)}}, 0)
		if tid == 5 {
			s.Append(Record{TID: tid, Kind: 1, Payload: []byte{0x50}}, 0)
			s.Append(Record{TID: tid, Kind: 2, Payload: []byte{0x51}}, 0)
		}
	}
	for _, s := range streams {
		s.Flush(0)
	}
	merged := Merge(ScanShards(mem, bases, 8<<10))
	if len(merged) != 11 {
		t.Fatalf("merged %d records, want 11", len(merged))
	}
	var last uint32
	for i, r := range merged {
		if r.TID < last {
			t.Fatalf("record %d: TID %d after %d", i, r.TID, last)
		}
		last = r.TID
	}
	// The TID-5 batch must come out contiguous and in shard order.
	var batch []Record
	for _, r := range merged {
		if r.TID == 5 {
			batch = append(batch, r)
		}
	}
	if len(batch) != 3 || batch[0].Payload[0] != 5 || batch[1].Payload[0] != 0x50 || batch[2].Payload[0] != 0x51 {
		t.Fatalf("TID-5 batch not contiguous/in order: %+v", batch)
	}
}

func TestMergeWithInterleavedTornTails(t *testing.T) {
	streams, bases, mem := multiStream(t, 2)
	// Shard 0: durable TIDs 1, 4; then a staged (never flushed) TID 6.
	streams[0].Append(Record{TID: 1, Kind: 1, Payload: []byte("a")}, 0)
	streams[0].Append(Record{TID: 4, Kind: 1, Payload: []byte("b")}, 0)
	streams[0].Flush(0)
	streams[0].Append(Record{TID: 6, Kind: 1, Payload: []byte("lost")}, 0)
	// Shard 1: durable TIDs 2, 3; then a torn TID 5 (corrupted in place).
	streams[1].Append(Record{TID: 2, Kind: 1, Payload: []byte("c")}, 0)
	streams[1].Append(Record{TID: 3, Kind: 1, Payload: []byte("d")}, 0)
	streams[1].Flush(0)
	mark := streams[1].Used()
	streams[1].Append(Record{TID: 5, Kind: 1, Payload: []byte("torn")}, 0)
	streams[1].Flush(0)
	mem.Poke(bases[1]+memsim.PAddr(mark)+4, []byte{0xFF, 0xFF}) // corrupt TID field

	merged := Merge(ScanShards(mem, bases, 8<<10))
	want := []uint32{1, 2, 3, 4}
	if len(merged) != len(want) {
		t.Fatalf("merged %d records, want %d (%+v)", len(merged), len(want), merged)
	}
	for i, r := range merged {
		if r.TID != want[i] {
			t.Errorf("merged[%d].TID = %d, want %d", i, r.TID, want[i])
		}
	}
}

// TestMergeTornPrepareKeepsOtherShards is the cross-shard recovery hazard
// of the distributed-commit protocol at the wal layer: shard 0 ends in a
// torn prepare batch of a global transaction (TID 5) while shard 1 holds a
// complete, unrelated single-shard batch with a HIGHER TID (6). Per-shard
// scans are independent — the tear truncates only shard 0's stream — so the
// merge must still deliver shard 1's batch intact, in TID order. (Whether
// the surviving prepare records of TID 5 apply is decided above wal, by the
// coordinator-end filter in internal/core.)
func TestMergeTornPrepareKeepsOtherShards(t *testing.T) {
	const kindPrepare, kindUpdateEnd = 6, 5
	streams, bases, mem := multiStream(t, 2)
	// Shard 0: a durable local batch (TID 2), then a global's prepare batch
	// (TID 5) whose second record tears.
	streams[0].Append(Record{TID: 2, Kind: kindUpdateEnd, Payload: []byte("local-a")}, 0)
	streams[0].Append(Record{TID: 5, Kind: kindPrepare, Payload: []byte("prep-0")}, 0)
	streams[0].Flush(0)
	mark := streams[0].Used()
	streams[0].Append(Record{TID: 5, Kind: kindPrepare, Payload: []byte("prep-1")}, 0)
	streams[0].Flush(0)
	mem.Poke(bases[0]+memsim.PAddr(mark)+4, []byte{0xFF, 0xFF}) // corrupt TID field

	// Shard 1: an unrelated complete single-shard batch with a higher TID.
	streams[1].Append(Record{TID: 6, Kind: kindUpdateEnd, Payload: []byte("local-b")}, 0)
	streams[1].Flush(0)

	shards := ScanShards(mem, bases, 8<<10)
	if n := len(shards[0]); n != 2 {
		t.Fatalf("shard 0 scanned %d records, want 2 (tear truncates only its own tail)", n)
	}
	if n := len(shards[1]); n != 1 {
		t.Fatalf("shard 1 scanned %d records, want 1", n)
	}
	merged := Merge(shards)
	want := []uint32{2, 5, 6}
	if len(merged) != len(want) {
		t.Fatalf("merged %d records, want %d", len(merged), len(want))
	}
	for i, r := range merged {
		if r.TID != want[i] {
			t.Errorf("merged[%d].TID = %d, want %d", i, r.TID, want[i])
		}
	}
	if got := merged[2]; got.Kind != kindUpdateEnd || string(got.Payload) != "local-b" {
		t.Errorf("higher-TID single-shard batch corrupted by the torn prepare: %+v", got)
	}
}

func TestSetTIDFloorAcrossShards(t *testing.T) {
	streams, bases, mem := multiStream(t, 2)
	// Generation 1: shard 0 carries TIDs 1..4, shard 1 carries 5..8.
	for tid := uint32(1); tid <= 4; tid++ {
		streams[0].Append(Record{TID: tid, Kind: 1, Payload: []byte{byte(tid)}}, 0)
	}
	for tid := uint32(5); tid <= 8; tid++ {
		streams[1].Append(Record{TID: tid, Kind: 1, Payload: []byte{byte(tid)}}, 0)
	}
	for _, s := range streams {
		s.Flush(0)
	}
	// Recovery: every shard resets and takes the global max TID as floor,
	// so post-recovery records sort after every durable one — on every
	// shard, not just the one that held the max.
	max := MaxTID(Merge(ScanShards(mem, bases, 8<<10)))
	if max != 8 {
		t.Fatalf("max TID = %d", max)
	}
	for _, s := range streams {
		s.Reset()
		s.SetTIDFloor(max)
	}
	defer func() {
		if recover() == nil {
			t.Error("append below the cross-shard floor should panic")
		}
	}()
	streams[0].Append(Record{TID: 3, Kind: 1}, 0) // stale TID on the other shard
}

func TestMergeEmptyAndSingleShard(t *testing.T) {
	if got := Merge(nil); len(got) != 0 {
		t.Fatalf("Merge(nil) returned %d records", len(got))
	}
	if got := Merge([][]Record{nil, nil}); len(got) != 0 {
		t.Fatalf("Merge of empty shards returned %d records", len(got))
	}
	one := [][]Record{{{TID: 1, Kind: 1}, {TID: 2, Kind: 1}}}
	got := Merge(one)
	if len(got) != 2 || got[0].TID != 1 || got[1].TID != 2 {
		t.Fatalf("single-shard merge mangled order: %+v", got)
	}
}

// Property: any flushed prefix of appends scans back exactly.
func TestScanPrefixProperty(t *testing.T) {
	f := func(seed uint64) bool {
		st := &stats.Stats{}
		cfg := memsim.DefaultConfig()
		cfg.DRAMBytes = 1 << 20
		cfg.NVRAMBytes = 1 << 20
		mem := memsim.New(cfg, st)
		s := NewStream(mem, cfg.NVRAMBase, 16<<10, stats.CatRedoLog)
		rng := engine.NewRNG(seed)
		var appended []Record
		flushedCount := 0
		for i := 0; i < 60; i++ {
			p := make([]byte, rng.Intn(60))
			for j := range p {
				p[j] = byte(rng.Intn(256))
			}
			r := Record{TID: uint32(i + 1), Kind: uint8(1 + rng.Intn(5)), Payload: p}
			s.Append(r, 0)
			appended = append(appended, r)
			if rng.Intn(3) == 0 {
				s.Flush(0)
				flushedCount = len(appended)
			}
		}
		got := Scan(mem, cfg.NVRAMBase, 16<<10)
		if len(got) < flushedCount {
			return false
		}
		for i := 0; i < flushedCount; i++ {
			if got[i].TID != appended[i].TID || !bytes.Equal(got[i].Payload, appended[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
