package pheap

import (
	"fmt"

	"repro/internal/memsim"
)

// Allocator is the slice of the heap API persistent data structures build
// on. It is implemented by *Heap (the machine-global allocator) and *Arena
// (a per-core shard of it). Structures written against Allocator work
// unchanged in both the serial single-heap world and the machine's
// concurrent goroutine-per-core mode.
type Allocator interface {
	Alloc(tx Tx, size int) uint64
	Free(tx Tx, va uint64, size int)
}

var (
	_ Allocator = (*Heap)(nil)
	_ Allocator = (*Arena)(nil)
)

// Arena metadata layout within the arena's own metadata page (virtual
// addresses relative to the page base). Bump pointer and limit share the
// first cache line; the free-list heads live in the second line. Keeping
// every arena's metadata in its own page means concurrent cores never issue
// transactional stores to a shared line — which matters under SSP, where
// two open transactions flipping the same sub-page unit would break the
// atomic-update protocol (isolation is the application's job, §3.1).
const (
	arenaBumpOff  = 0
	arenaLimitOff = 8
	arenaClassOff = 64
)

// Arena is a per-core allocation shard: a disjoint, pre-mapped slice of the
// persistent heap with its own bump pointer and free lists. Like the global
// heap, all metadata lives in NVRAM and is updated inside the enclosing
// transaction, so arenas recover for free. An arena must only be used by
// one core at a time (the machine's one-goroutine-per-Core contract).
type Arena struct {
	h    *Heap
	meta uint64 // VA of the arena's metadata page
}

// NewArena carves a new arena of the given data capacity (in pages) out of
// the global heap, inside tx's open transaction. The arena's pages are
// mapped up front, so arena allocations never touch the shared page-mapping
// path. Call during single-goroutine setup, before Machine.Run.
func (h *Heap) NewArena(tx Tx, pages int) *Arena {
	if pages <= 0 {
		panic("pheap: NewArena of non-positive page count")
	}
	meta := h.bumpPages(tx, 1)
	base := h.bumpPages(tx, pages)
	tx.Store64(meta+arenaBumpOff, base)
	tx.Store64(meta+arenaLimitOff, base+uint64(pages)*memsim.PageBytes)
	for i := range classes {
		tx.Store64(meta+arenaClassOff+uint64(i*8), 0)
	}
	return &Arena{h: h, meta: meta}
}

// OpenArena reattaches an arena from its metadata page address (after a
// Restore).
func OpenArena(h *Heap, meta uint64) *Arena { return &Arena{h: h, meta: meta} }

// Meta returns the arena's metadata page address; store it in a root slot
// to reopen the arena after a crash.
func (a *Arena) Meta() uint64 { return a.meta }

// Alloc returns the VA of a new block of at least size bytes from the
// arena, carving it from the arena's free lists or bump region. It must run
// inside a transaction on the owning core.
func (a *Arena) Alloc(tx Tx, size int) uint64 {
	if size <= 0 {
		panic("pheap: Alloc of non-positive size")
	}
	ci := classFor(size)
	if ci >= 0 {
		headVA := a.meta + arenaClassOff + uint64(ci*8)
		if head := tx.Load64(headVA); head != 0 {
			next := tx.Load64(head)
			tx.Store64(headVA, next)
			return head
		}
		return a.bump(tx, classes[ci])
	}
	pages := (size + memsim.PageBytes - 1) / memsim.PageBytes
	return a.bumpPages(tx, pages)
}

// bump carves size (a class size) from the arena's bump region, never
// straddling a page boundary.
func (a *Arena) bump(tx Tx, size int) uint64 {
	bumpVA := a.meta + arenaBumpOff
	b := tx.Load64(bumpVA)
	if rem := int(b % memsim.PageBytes); rem != 0 && rem+size > memsim.PageBytes {
		b += uint64(memsim.PageBytes - rem)
	}
	a.checkLimit(tx, b+uint64(size))
	tx.Store64(bumpVA, b+uint64(size))
	return b
}

func (a *Arena) bumpPages(tx Tx, pages int) uint64 {
	bumpVA := a.meta + arenaBumpOff
	b := tx.Load64(bumpVA)
	if rem := b % memsim.PageBytes; rem != 0 {
		b += memsim.PageBytes - rem
	}
	size := uint64(pages) * memsim.PageBytes
	a.checkLimit(tx, b+size)
	tx.Store64(bumpVA, b+size)
	return b
}

func (a *Arena) checkLimit(tx Tx, end uint64) {
	if end > tx.Load64(a.meta+arenaLimitOff) {
		panic(fmt.Sprintf("pheap: arena %#x exhausted; size arenas for the workload", a.meta))
	}
}

// Free returns a class-sized block to the arena's free list. The block must
// have been allocated from this arena (cross-arena frees would let two
// cores' transactions meet on one free-list line).
func (a *Arena) Free(tx Tx, va uint64, size int) {
	ci := classFor(size)
	if ci < 0 {
		panic("pheap: Free of a page-granular block")
	}
	headVA := a.meta + arenaClassOff + uint64(ci*8)
	head := tx.Load64(headVA)
	tx.Store64(va, head)
	tx.Store64(headVA, va)
}

// Remaining returns the unallocated bump-region bytes (sizing/debug aid).
func (a *Arena) Remaining(tx Tx) uint64 {
	return tx.Load64(a.meta+arenaLimitOff) - tx.Load64(a.meta+arenaBumpOff)
}
