// Package pheap is the persistent heap allocator used by every workload: a
// bump region plus per-size-class free lists whose metadata (bump pointer,
// list heads, roots) lives in the first page of the persistent heap and is
// updated *inside* the enclosing transaction. The allocator therefore
// recovers for free: whatever transaction created or freed an object also
// made the allocator state durable, atomically.
//
// Mnemosyne-style systems leave allocator persistence to the runtime; the
// paper inherits that model. Building it on the transactional API both
// exercises the mechanism under test and removes a class of recovery leaks
// (see DESIGN.md §5).
package pheap

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/vm"
)

// Tx is the slice of the transactional API the allocator needs; implemented
// by the machine's per-core transaction handle.
type Tx interface {
	Load64(va uint64) uint64
	Store64(va uint64, v uint64)
}

// Metadata layout within the heap's first page (all virtual addresses):
//
//	+0    bump pointer (next unallocated VA)
//	+8    heap limit (first VA past the heap)
//	+64   roots: RootSlots × 8 B, one per cache line group
//	+576  free-list heads: one per size class
const (
	bumpOff  = 0
	limitOff = 8
	rootsOff = 64
	// RootSlots is the number of named persistent roots.
	RootSlots = 64
	classOff  = rootsOff + RootSlots*8
)

// Size classes: 16..2048 bytes, powers of two; larger allocations take
// whole pages from the bump region.
var classes = []int{16, 32, 64, 128, 256, 512, 1024, 2048}

// Heap is a handle on the persistent heap; it holds no volatile allocator
// state of its own.
type Heap struct {
	// EnsureMapped maps heap pages [first,last] (inclusive VPNs) to frames
	// outside transactional semantics; mapping an untouched page is
	// crash-safe (a leaked frame at worst, reclaimed by recovery's sweep).
	// tx is the transaction handle the allocator was invoked with (nil from
	// quiescent setup paths); the machine uses it to route the mapping to
	// the calling core's canonical execution under WindowParallel, where
	// frame-allocation order must not depend on the host schedule.
	EnsureMapped func(tx Tx, firstVPN, lastVPN int)
}

// MetaVA returns the virtual address of metadata offset off.
func MetaVA(off int) uint64 { return vm.HeapBase + uint64(off) }

// RootVA returns the virtual address of root slot i.
func RootVA(i int) uint64 {
	if i < 0 || i >= RootSlots {
		panic(fmt.Sprintf("pheap: root slot %d out of range", i))
	}
	return MetaVA(rootsOff + i*8)
}

func classFor(size int) int {
	for i, c := range classes {
		if size <= c {
			return i
		}
	}
	return -1
}

// Format initialises allocator metadata inside tx (the machine's
// initialisation transaction). maxPages bounds the heap.
func (h *Heap) Format(tx Tx, maxPages int) {
	tx.Store64(MetaVA(bumpOff), vm.HeapBase+memsim.PageBytes)
	tx.Store64(MetaVA(limitOff), vm.HeapBase+uint64(maxPages)*memsim.PageBytes)
	for i := range classes {
		tx.Store64(MetaVA(classOff+i*8), 0)
	}
	for i := 0; i < RootSlots; i++ {
		tx.Store64(RootVA(i), 0)
	}
}

// Alloc returns the VA of a new block of at least size bytes, carving it
// from a free list or the bump region. It must run inside a transaction.
// Blocks are 16-byte aligned and never split or coalesced (fixed-class
// segregated storage).
func (h *Heap) Alloc(tx Tx, size int) uint64 {
	if size <= 0 {
		panic("pheap: Alloc of non-positive size")
	}
	ci := classFor(size)
	if ci >= 0 {
		headVA := MetaVA(classOff + ci*8)
		if head := tx.Load64(headVA); head != 0 {
			next := tx.Load64(head)
			tx.Store64(headVA, next)
			return head
		}
		return h.bump(tx, classes[ci])
	}
	// Page-granular allocation for big blocks.
	pages := (size + memsim.PageBytes - 1) / memsim.PageBytes
	return h.bumpPages(tx, pages)
}

// bump carves size (a class size, power of two ≤ 2048) from the bump
// region, never straddling a page boundary so objects stay within pages of
// their class run.
func (h *Heap) bump(tx Tx, size int) uint64 {
	bumpVA := MetaVA(bumpOff)
	b := tx.Load64(bumpVA)
	if rem := int(b % memsim.PageBytes); rem != 0 && rem+size > memsim.PageBytes {
		b += uint64(memsim.PageBytes - rem)
	}
	h.checkLimit(tx, b+uint64(size))
	h.EnsureMapped(tx, vm.VPNOf(b), vm.VPNOf(b+uint64(size)-1))
	tx.Store64(bumpVA, b+uint64(size))
	return b
}

func (h *Heap) bumpPages(tx Tx, pages int) uint64 {
	bumpVA := MetaVA(bumpOff)
	b := tx.Load64(bumpVA)
	if rem := b % memsim.PageBytes; rem != 0 {
		b += memsim.PageBytes - rem
	}
	size := uint64(pages) * memsim.PageBytes
	h.checkLimit(tx, b+size)
	h.EnsureMapped(tx, vm.VPNOf(b), vm.VPNOf(b+size-1))
	tx.Store64(bumpVA, b+size)
	return b
}

func (h *Heap) checkLimit(tx Tx, end uint64) {
	if end > tx.Load64(MetaVA(limitOff)) {
		panic("pheap: persistent heap exhausted; raise NVRAMBytes/MaxHeapPages")
	}
}

// Free returns a class-sized block to its free list. Page-granular blocks
// cannot be freed (arena semantics), matching the workloads' needs.
func (h *Heap) Free(tx Tx, va uint64, size int) {
	ci := classFor(size)
	if ci < 0 {
		panic("pheap: Free of a page-granular block")
	}
	headVA := MetaVA(classOff + ci*8)
	head := tx.Load64(headVA)
	tx.Store64(va, head)
	tx.Store64(headVA, va)
}

// ClassSizes exposes the size classes (tests, docs).
func ClassSizes() []int {
	out := make([]int, len(classes))
	copy(out, classes)
	return out
}
