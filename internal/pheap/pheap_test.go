package pheap

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/vm"
)

// fakeTx implements Tx over a plain map — the allocator's logic is
// independent of the simulator.
type fakeTx struct {
	mem map[uint64]uint64
}

func newFakeTx() *fakeTx { return &fakeTx{mem: map[uint64]uint64{}} }

func (f *fakeTx) Load64(va uint64) uint64     { return f.mem[va] }
func (f *fakeTx) Store64(va uint64, v uint64) { f.mem[va] = v }

func newHeap(t *testing.T) (*Heap, *fakeTx, *[]int) {
	t.Helper()
	var mapped []int
	h := &Heap{EnsureMapped: func(_ Tx, first, last int) {
		for v := first; v <= last; v++ {
			mapped = append(mapped, v)
		}
	}}
	tx := newFakeTx()
	h.Format(tx, 256)
	return h, tx, &mapped
}

func TestFormatInitialisesMetadata(t *testing.T) {
	_, tx, _ := newHeap(t)
	if tx.Load64(MetaVA(bumpOff)) != vm.HeapBase+memsim.PageBytes {
		t.Error("bump pointer wrong after format")
	}
	if tx.Load64(MetaVA(limitOff)) != vm.HeapBase+256*memsim.PageBytes {
		t.Error("limit wrong after format")
	}
	for i := 0; i < RootSlots; i++ {
		if tx.Load64(RootVA(i)) != 0 {
			t.Errorf("root %d not zeroed", i)
		}
	}
}

func TestAllocAlignmentAndDistinctness(t *testing.T) {
	h, tx, _ := newHeap(t)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		p := h.Alloc(tx, 48) // class 64
		if p%16 != 0 {
			t.Fatalf("allocation %#x not 16-aligned", p)
		}
		if seen[p] {
			t.Fatalf("duplicate allocation %#x", p)
		}
		seen[p] = true
	}
}

func TestFreeListReuse(t *testing.T) {
	h, tx, _ := newHeap(t)
	a := h.Alloc(tx, 64)
	b := h.Alloc(tx, 64)
	h.Free(tx, a, 64)
	h.Free(tx, b, 64)
	// LIFO reuse.
	if got := h.Alloc(tx, 64); got != b {
		t.Errorf("expected %#x, got %#x", b, got)
	}
	if got := h.Alloc(tx, 64); got != a {
		t.Errorf("expected %#x, got %#x", a, got)
	}
}

func TestClassesDoNotMix(t *testing.T) {
	h, tx, _ := newHeap(t)
	small := h.Alloc(tx, 16)
	h.Free(tx, small, 16)
	big := h.Alloc(tx, 1024)
	if big == small {
		t.Error("1024-byte allocation reused a 16-byte block")
	}
}

func TestNoPageStraddle(t *testing.T) {
	h, tx, _ := newHeap(t)
	for i := 0; i < 500; i++ {
		p := h.Alloc(tx, 2048)
		if vm.VPNOf(p) != vm.VPNOf(p+2047) {
			t.Fatalf("class block %#x straddles a page", p)
		}
	}
}

func TestPageGranularAlloc(t *testing.T) {
	h, tx, mapped := newHeap(t)
	p := h.Alloc(tx, 3*memsim.PageBytes)
	if p%memsim.PageBytes != 0 {
		t.Errorf("page allocation %#x not page-aligned", p)
	}
	// All three pages must be mapped.
	want := map[int]bool{vm.VPNOf(p): true, vm.VPNOf(p) + 1: true, vm.VPNOf(p) + 2: true}
	found := 0
	for _, vpn := range *mapped {
		if want[vpn] {
			found++
			delete(want, vpn)
		}
	}
	if found != 3 {
		t.Errorf("pages not mapped: %v missing", want)
	}
}

func TestFreePageGranularPanics(t *testing.T) {
	h, tx, _ := newHeap(t)
	p := h.Alloc(tx, 2*memsim.PageBytes)
	defer func() {
		if recover() == nil {
			t.Error("freeing a page-granular block should panic")
		}
	}()
	h.Free(tx, p, 2*memsim.PageBytes)
}

func TestExhaustionPanics(t *testing.T) {
	h, tx, _ := newHeap(t)
	defer func() {
		if recover() == nil {
			t.Error("heap exhaustion should panic")
		}
	}()
	for i := 0; i < 100000; i++ {
		h.Alloc(tx, 2048)
	}
}

func TestRootVABounds(t *testing.T) {
	if RootVA(0) != MetaVA(rootsOff) {
		t.Error("root 0 misplaced")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range root should panic")
		}
	}()
	RootVA(RootSlots)
}

func TestClassSizes(t *testing.T) {
	sizes := ClassSizes()
	if len(sizes) == 0 || sizes[0] != 16 || sizes[len(sizes)-1] != 2048 {
		t.Errorf("unexpected classes: %v", sizes)
	}
	// Mutating the copy must not affect the allocator.
	sizes[0] = 999
	if ClassSizes()[0] != 16 {
		t.Error("ClassSizes returned internal slice")
	}
}

func TestAllocZeroPanics(t *testing.T) {
	h, tx, _ := newHeap(t)
	defer func() {
		if recover() == nil {
			t.Error("Alloc(0) should panic")
		}
	}()
	h.Alloc(tx, 0)
}
