package workload

import (
	"repro/internal/engine"
	"repro/ssp"
	"repro/ssp/kv"
)

// buildMemcached sets up the memcached workload: one shared persistent
// cache, lock striping over buckets, and memslap-like clients issuing 90%
// SET / 10% GET (§5.1: "Memslap as workload generator; Four clients; 90%
// SET").
func buildMemcached(m *ssp.Machine, p Params) []*client {
	const stripes = 16
	locks := make([]*ssp.Lock, stripes)
	for i := range locks {
		locks[i] = m.NewLock()
	}

	boot := m.Core(0)
	boot.Begin()
	cache := kv.Create(boot, m.Heap(), kv.Config{
		Buckets:    p.Items / 4,
		Capacity:   p.Items,
		ValueBytes: p.ValueBytes,
	})
	boot.Commit()

	// Prefill to capacity so steady state includes evictions.
	rng := engine.NewRNG(p.Seed)
	fill := make([]byte, p.ValueBytes)
	for k := 0; k < p.Items; k++ {
		fill[0] = byte(k)
		boot.Begin()
		cache.Set(boot, uint64(k), fill)
		boot.Commit()
	}

	keySpace := uint64(p.Items) * 2 // half the keys miss / insert-evict
	var clients []*client
	for i := 0; i < p.Clients; i++ {
		c := m.Core(i)
		crng := rng.Fork()
		val := make([]byte, p.ValueBytes)
		buf := make([]byte, p.ValueBytes)
		cl := &client{core: c}
		cl.op = func() {
			k := crng.Uint64n(keySpace)
			lock := locks[(k*0x9e3779b97f4a7c15)%stripes]
			if crng.Intn(10) == 0 { // 10% GET
				c.Acquire(lock)
				cache.Get(c, k, buf)
				c.Release(lock)
				return
			}
			val[0] = byte(k)
			val[1] = byte(crng.Intn(256))
			c.Acquire(lock)
			c.Begin()
			cache.Set(c, k, val)
			p.commit(c)
			c.Release(lock)
		}
		clients = append(clients, cl)
	}
	return clients
}
