// Package workload implements the paper's evaluation workloads (§5.1,
// Table 3): seven microbenchmarks over persistent data structures (B+-tree,
// red-black tree, hash table under random and zipfian key distributions,
// plus SPS array swaps) and two real-application emulations (memcached
// driven by a memslap-like generator, and a STAMP-Vacation-style OLTP mix).
//
// Clients are simulated cores. The driver always steps the client with the
// lowest clock, so multi-client runs interleave deterministically while
// sharing memory-bank and lock timelines (DESIGN.md §5).
package workload

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/stats"
	"repro/ssp"
)

// Kind identifies one workload.
type Kind int

// The paper's workloads, plus the cross-shard transaction mixes (beyond the
// paper): MemcachedCross and VacationCross are the sharded memcached and
// partitioned vacation deployments in which CrossPct percent of the
// transactions are global — each touches 2-4 cores' shards/arenas under a
// single BeginGlobal section, exercising the distributed commit protocol.
// The cross kinds run on the parallel driver only.
const (
	BTreeRand Kind = iota
	RBTreeRand
	HashRand
	SPS
	BTreeZipf
	RBTreeZipf
	HashZipf
	Memcached
	Vacation
	MemcachedCross
	VacationCross
)

// String returns the paper's workload name.
func (k Kind) String() string {
	switch k {
	case BTreeRand:
		return "BTree-Rand"
	case RBTreeRand:
		return "RBTree-Rand"
	case HashRand:
		return "Hash-Rand"
	case SPS:
		return "SPS"
	case BTreeZipf:
		return "BTree-Zipf"
	case RBTreeZipf:
		return "RBTree-Zipf"
	case HashZipf:
		return "Hash-Zipf"
	case Memcached:
		return "Memcached"
	case Vacation:
		return "Vacation"
	case MemcachedCross:
		return "Memcached-Cross"
	case VacationCross:
		return "Vacation-Cross"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Micro lists the seven microbenchmarks in figure order.
func Micro() []Kind {
	return []Kind{BTreeRand, RBTreeRand, HashRand, SPS, BTreeZipf, RBTreeZipf, HashZipf}
}

// Real lists the two real workloads.
func Real() []Kind { return []Kind{Memcached, Vacation} }

// All lists every workload.
func All() []Kind { return append(Micro(), Real()...) }

// Params configures one run. Zero fields take defaults (see Defaults).
type Params struct {
	Kind    Kind
	Backend ssp.Backend
	Clients int // simulated cores (paper: 1 and 4)

	Ops  int    // measured transactions (total across clients)
	Keys uint64 // key space per client shard (trees/hash)
	Seed uint64

	Elems      int // SPS array elements per client
	Items      int // memcached capacity
	ValueBytes int // memcached value size
	Tuples     int // vacation rows per table

	// CrossPct is the percentage of transactions that are cross-shard
	// globals in the MemcachedCross/VacationCross mixes (0 = all-local;
	// ignored by the other kinds and with a single client).
	CrossPct int

	// Relaxed commits every MEASURED transaction with Core.CommitRelaxed
	// instead of Core.Commit: the epoch-batched relaxed-durability mode,
	// governed by Machine.DurabilityEpoch (with an epoch of 0 the run is
	// bit-for-bit the synchronous one). Setup and prefill stay synchronous.
	// The run's Result then separates CommittedTPS (acknowledgment-time
	// throughput) from TPS (durable, including the closing drain).
	Relaxed bool

	Machine ssp.Config // base machine config; Backend/Cores overridden
}

// commit closes one measured transaction in the run's durability mode.
func (p Params) commit(c *ssp.Core) {
	if p.Relaxed {
		c.CommitRelaxed()
	} else {
		c.Commit()
	}
}

// Defaults fills in simulation-friendly defaults.
func (p Params) Defaults() Params {
	if p.Clients <= 0 {
		p.Clients = 1
	}
	if p.Ops <= 0 {
		p.Ops = 4000
	}
	if p.Keys == 0 {
		p.Keys = 16384
	}
	if p.Elems <= 0 {
		p.Elems = 1 << 16
	}
	if p.Items <= 0 {
		p.Items = 8192
	}
	if p.ValueBytes <= 0 {
		p.ValueBytes = 64
	}
	if p.Tuples <= 0 {
		p.Tuples = 16384
	}
	if p.Seed == 0 {
		p.Seed = 0x55AA1234
	}
	p.Machine.Backend = p.Backend
	p.Machine.Cores = p.Clients
	if p.Machine.NVRAMMB == 0 {
		p.Machine.NVRAMMB = 192
	}
	if p.Machine.DRAMMB == 0 {
		p.Machine.DRAMMB = 4
	}
	if p.Machine.MaxHeapPages == 0 {
		p.Machine.MaxHeapPages = 36 << 10
	}
	return p
}

// Result is one run's measurements.
type Result struct {
	Kind    Kind
	Backend ssp.Backend
	Clients int

	Txns     uint64
	Cycles   ssp.Cycles // measured-window wall clock (through the drain)
	TPS      float64    // durable transactions per simulated second
	Stats    ssp.Stats  // measured-window counters
	WriteSet ssp.WriteSetStats

	// AckCycles is the window up to the last transaction's acknowledgment,
	// BEFORE the closing drain that hardens outstanding relaxed epochs, and
	// CommittedTPS the throughput over it. The committed-vs-durable spread
	// is the relaxed mode's gain; synchronous runs see the two match up to
	// the (cheap) drain.
	AckCycles    ssp.Cycles
	CommittedTPS float64

	// Journal is the SSP metadata journal's per-shard pressure at the end
	// of the measured window (nil for the logging backends).
	Journal []ssp.JournalShardPressure

	// AckHist is the per-operation acknowledgment-latency histogram in
	// simulated cycles, recorded only by drivers that schedule arrivals
	// (RunServe); nil elsewhere. Latency is measured from each operation's
	// scheduled open-loop arrival to its acknowledgment, so queueing delay
	// under overload is included. LatencyP50/P99/P999 are its percentiles
	// and OfferedTPS the offered load (0 = closed loop).
	AckHist                             *stats.Histogram
	LatencyP50, LatencyP99, LatencyP999 ssp.Cycles
	OfferedTPS                          float64
}

// client is one simulated client: a core plus its per-transaction op.
type client struct {
	core *ssp.Core
	op   func()
}

// Run executes the workload and returns measurements for the steady-state
// window (setup and prefill excluded).
func Run(p Params) Result {
	p = p.Defaults()
	m := ssp.MustNew(p.Machine)
	clients := buildClients(m, p)

	// Measurement window: reset counters after setup, align clocks.
	m.Drain()
	start := m.MaxClock()
	for i := 0; i < p.Clients; i++ {
		m.Core(i).SetNow(start)
	}
	m.ResetStats()

	// Deterministic min-clock scheduling.
	remaining := make([]int, p.Clients)
	for i := range remaining {
		remaining[i] = p.Ops / p.Clients
	}
	for i := 0; i < p.Ops%p.Clients; i++ {
		remaining[i]++
	}
	for {
		best := -1
		for i, c := range clients {
			if remaining[i] == 0 {
				continue
			}
			if best < 0 || c.core.Now() < clients[best].core.Now() {
				best = i
			}
		}
		if best < 0 {
			break
		}
		clients[best].op()
		remaining[best]--
	}
	acked := m.MaxClock() - start
	m.Drain()

	elapsed := m.MaxClock() - start
	res := Result{
		Kind:      p.Kind,
		Backend:   p.Backend,
		Clients:   p.Clients,
		Txns:      uint64(p.Ops),
		Cycles:    elapsed,
		AckCycles: acked,
		Stats:     *m.Stats(),
		WriteSet:  *m.WriteSet(),
		Journal:   m.JournalPressure(),
	}
	if elapsed > 0 {
		res.TPS = float64(p.Ops) / m.Seconds(elapsed)
	}
	if acked > 0 {
		res.CommittedTPS = float64(p.Ops) / m.Seconds(acked)
	}
	return res
}

// buildClients constructs the workload state and per-client ops.
func buildClients(m *ssp.Machine, p Params) []*client {
	switch p.Kind {
	case BTreeRand, BTreeZipf, RBTreeRand, RBTreeZipf, HashRand, HashZipf:
		return buildMicroKV(m, p)
	case SPS:
		return buildSPS(m, p)
	case Memcached:
		return buildMemcached(m, p)
	case Vacation:
		return buildVacation(m, p)
	case MemcachedCross, VacationCross:
		panic("workload: cross-shard mixes require the parallel driver (RunParallel)")
	default:
		panic("workload: unknown kind")
	}
}

// dist builds the workload's key distribution over n keys.
func dist(k Kind, n uint64, rng *engine.RNG) engine.Dist {
	switch k {
	case BTreeZipf, RBTreeZipf, HashZipf:
		return engine.NewPaperZipf(n, rng)
	default:
		return engine.NewUniform(n, rng)
	}
}
