package workload

import (
	"testing"

	"repro/ssp"
)

func backendsUnderTest() []ssp.Backend { return ssp.Backends() }

// TestParallelSmoke drives the concurrent engine across every backend and
// both sharded real workloads; under -race this is the first line of
// defence for the goroutine-per-core execution model.
func TestParallelSmoke(t *testing.T) {
	ops := 600
	if testing.Short() {
		ops = 200
	}
	for _, kind := range []Kind{Memcached, Vacation} {
		for _, b := range backendsUnderTest() {
			res := RunParallel(Params{Kind: kind, Backend: b, Clients: 4, Ops: ops,
				Items: 2048, Tuples: 2048, Keys: 2048})
			if res.Stats.Commits == 0 {
				t.Fatalf("%v/%v: no commits", kind, b)
			}
			if len(res.PerCore) != 4 {
				t.Fatalf("%v/%v: per-core results missing", kind, b)
			}
			var commits uint64
			for _, cr := range res.PerCore {
				if cr.Txns == 0 {
					t.Errorf("%v/%v core %d ran no transactions", kind, b, cr.Core)
				}
				commits += cr.Commits
			}
			if commits != res.Stats.Commits {
				t.Errorf("%v/%v: per-core commits %d != aggregate %d", kind, b, commits, res.Stats.Commits)
			}
			if res.TPS <= 0 {
				t.Errorf("%v/%v: non-positive TPS", kind, b)
			}
		}
	}
}
