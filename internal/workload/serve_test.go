package workload

import (
	"testing"

	"repro/ssp"
)

// TestRunServeClosedLoop checks the capacity probe: every op recorded, sane
// percentile ordering, committed throughput positive.
func TestRunServeClosedLoop(t *testing.T) {
	res := RunServe(ServeParams{
		Backend: ssp.SSP,
		Clients: 2,
		Ops:     2000,
		Items:   512,
		Skew:    0.99,
		Machine: ssp.Config{Channels: 2, JournalShards: 2},
	})
	if res.AckHist == nil || res.AckHist.Count != 2000 {
		t.Fatalf("AckHist count = %v, want 2000", res.AckHist)
	}
	if res.LatencyP50 > res.LatencyP99 || res.LatencyP99 > res.LatencyP999 {
		t.Fatalf("percentiles out of order: p50=%d p99=%d p999=%d",
			res.LatencyP50, res.LatencyP99, res.LatencyP999)
	}
	if res.LatencyP50 == 0 {
		t.Fatalf("p50 = 0; every op should cost cycles")
	}
	if res.CommittedTPS <= 0 || res.TPS <= 0 {
		t.Fatalf("throughput not positive: cTPS=%v TPS=%v", res.CommittedTPS, res.TPS)
	}
	if res.Stats.Commits == 0 {
		t.Fatalf("no transactions committed")
	}
}

// TestRunServeOpenLoop checks pacing: at an offered load well below
// capacity, ack latency is far below the inter-arrival gap (no queueing) and
// the measured window spans roughly ops/rate simulated seconds.
func TestRunServeOpenLoop(t *testing.T) {
	probe := RunServe(ServeParams{
		Backend: ssp.SSP,
		Clients: 2,
		Ops:     1000,
		Items:   512,
		Machine: ssp.Config{Channels: 2, JournalShards: 2},
	})
	rate := probe.CommittedTPS * 0.4
	res := RunServe(ServeParams{
		Backend:    ssp.SSP,
		Clients:    2,
		Ops:        1000,
		Items:      512,
		OfferedTPS: rate,
		Machine:    ssp.Config{Channels: 2, JournalShards: 2},
	})
	if res.AckHist.Count != 1000 {
		t.Fatalf("AckHist count = %d, want 1000", res.AckHist.Count)
	}
	// At 40% load the paced run must ack close to the offered rate, not at
	// the closed-loop rate.
	if res.CommittedTPS > rate*1.2 || res.CommittedTPS < rate*0.5 {
		t.Fatalf("paced cTPS %.0f, offered %.0f — pacing not effective", res.CommittedTPS, rate)
	}
	// And p50 should be far below the inter-arrival gap (no queue build-up).
	gapCycles := float64(res.Cycles) / 500 // per-core gap: 500 ops each
	if float64(res.LatencyP50) > gapCycles {
		t.Fatalf("p50 %d exceeds inter-arrival gap %.0f at 40%% load", res.LatencyP50, gapCycles)
	}
}

// TestRunServeRelaxedTail is the PR's qualitative acceptance check at test
// scale: at equal offered load, relaxed acknowledgment must beat synchronous
// acknowledgment at the tail, because the journal-flush fence leaves the ack
// path entirely.
func TestRunServeRelaxedTail(t *testing.T) {
	base := ServeParams{
		Backend: ssp.SSP,
		Clients: 2,
		Ops:     2000,
		Items:   512,
		Skew:    0.99,
		Machine: ssp.Config{Channels: 4, JournalShards: 1},
	}
	probe := RunServe(base)
	rate := probe.CommittedTPS * 0.7

	syncP := base
	syncP.OfferedTPS = rate
	syncRes := RunServe(syncP)

	relP := base
	relP.OfferedTPS = rate
	relP.Relaxed = true
	relP.Machine.DurabilityEpoch = 100000
	relRes := RunServe(relP)

	if relRes.LatencyP99 >= syncRes.LatencyP99 {
		t.Fatalf("relaxed p99 %d >= sync p99 %d at offered %.0f ops/s",
			relRes.LatencyP99, syncRes.LatencyP99, rate)
	}
	if relRes.Stats.RelaxedCommits == 0 {
		t.Fatalf("relaxed run recorded no relaxed commits")
	}
	if relRes.Stats.HardenedEpochs == 0 || relRes.Stats.EpochHardenLag == 0 {
		t.Fatalf("relaxed run hardened no epochs (lag unobservable)")
	}
}
