package workload

import (
	"sort"

	"repro/internal/engine"
	"repro/ssp"
	"repro/ssp/kv"
	"repro/ssp/pds"
)

// Cross-shard transaction mixes (beyond the paper): the sharded memcached
// and partitioned vacation deployments of parallel.go, with CrossPct
// percent of each core's transactions made *global* — a single BeginGlobal
// section writing 2-4 cores' shards/arenas at once. These are the
// distributed commits over multiple arenas the ROADMAP called unexplored:
// under SSP with sharded journals they drive the two-phase cross-shard
// commit protocol (prepare records in every participant journal shard, one
// coordinator end record); under the logging baselines, or with one journal
// shard, they are ordinary transactions with a wider footprint, which makes
// the mixes a fair cross-backend comparison.
//
// Isolation follows the repo's locking discipline: every shard keeps its
// per-shard lock, and a global transaction acquires the locks of all its
// participants in ascending core order before Begin — the same total order
// on every core, so global and local ops can never deadlock.

// pickShards selects n distinct shard indices including own, returned in
// ascending order (the lock-acquisition order).
func pickShards(rng *engine.RNG, clients, own, n int) []int {
	chosen := map[int]bool{own: true}
	out := []int{own}
	for len(out) < n {
		s := rng.Intn(clients)
		if chosen[s] {
			continue
		}
		chosen[s] = true
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// crossFanout draws the number of shards a global transaction touches:
// 2-4, capped at the client count.
func crossFanout(rng *engine.RNG, clients int) int {
	n := 2 + rng.Intn(3)
	if n > clients {
		n = clients
	}
	return n
}

// buildMemcachedCross is buildMemcachedParallel plus global multi-shard
// writes: a cross transaction SETs one key in each of 2-4 shards — the
// multi-key distributed write of a sharded cache — inside one BeginGlobal
// section, holding every touched shard's lock.
func buildMemcachedCross(m *ssp.Machine, p Params) []*client {
	perItems := p.Items / p.Clients
	if perItems < 16 {
		perItems = 16
	}
	entry := 40 + p.ValueBytes
	arenaPages := pagesFor(perItems*entry + (perItems/4)*8)

	rng := engine.NewRNG(p.Seed)
	shards := make([]*kv.Cache, p.Clients)
	locks := make([]*ssp.Lock, p.Clients)
	rngs := make([]*engine.RNG, p.Clients)
	keySpace := uint64(perItems) * 2 // half the keys miss / insert-evict
	for i := 0; i < p.Clients; i++ {
		c := m.Core(i)
		rngs[i] = rng.Fork()

		c.Begin()
		arena := m.NewArena(c, arenaPages)
		shards[i] = kv.Create(c, arena, kv.Config{
			Buckets:    perItems / 4,
			Capacity:   perItems,
			ValueBytes: p.ValueBytes,
		})
		c.Commit()

		// Prefill this shard to capacity so steady state includes
		// evictions, as in the all-local build.
		fill := make([]byte, p.ValueBytes)
		for k := 0; k < perItems; k++ {
			fill[0] = byte(k)
			c.Begin()
			shards[i].Set(c, uint64(k), fill)
			c.Commit()
		}
		locks[i] = m.NewLock()
	}

	var clients []*client
	for i := 0; i < p.Clients; i++ {
		i := i
		c := m.Core(i)
		crng := rngs[i]
		val := make([]byte, p.ValueBytes)
		buf := make([]byte, p.ValueBytes)
		cl := &client{core: c}
		cl.op = func() {
			k := crng.Uint64n(keySpace)
			if p.Clients > 1 && crng.Intn(100) < p.CrossPct {
				// Global multi-shard SET: one key written in every chosen
				// shard, all-or-nothing across their arenas.
				val[0] = byte(k)
				val[1] = byte(crng.Intn(256))
				targets := pickShards(crng, p.Clients, i, crossFanout(crng, p.Clients))
				for _, s := range targets {
					c.Acquire(locks[s])
				}
				c.BeginGlobal()
				for _, s := range targets {
					shards[s].Set(c, k, val)
				}
				p.commit(c)
				for j := len(targets) - 1; j >= 0; j-- {
					c.Release(locks[targets[j]])
				}
				return
			}
			if crng.Intn(10) == 0 { // 10% GET
				c.Acquire(locks[i])
				shards[i].Get(c, k, buf)
				c.Release(locks[i])
				return
			}
			val[0] = byte(k)
			val[1] = byte(crng.Intn(256))
			c.Acquire(locks[i])
			c.Begin()
			shards[i].Set(c, k, val)
			p.commit(c)
			c.Release(locks[i])
		}
		clients = append(clients, cl)
	}
	return clients
}

// buildVacationCross is buildVacationParallel plus global multi-partition
// administrative transactions: a cross transaction runs the update-tables
// body against 2-4 partitions — a fleet-wide price/capacity change — inside
// one BeginGlobal section.
func buildVacationCross(m *ssp.Machine, p Params) []*client {
	perTuples := p.Tuples / p.Clients
	if perTuples < 64 {
		perTuples = 64
	}
	arenaPages := pagesFor(perTuples*(vacResourceTables+1)*64 + perTuples*vacReserveEntry)

	seedRng := engine.NewRNG(p.Seed + 7)
	states := make([]*vacationState, p.Clients)
	locks := make([]*ssp.Lock, p.Clients)
	for i := 0; i < p.Clients; i++ {
		c := m.Core(i)

		c.Begin()
		arena := m.NewArena(c, arenaPages)
		st := &vacationState{tuples: perTuples, alloc: arena, commit: p.commit}
		for t := 0; t < vacResourceTables; t++ {
			st.resources[t] = pds.CreateRBTree(c, arena)
		}
		st.customers = pds.CreateRBTree(c, arena)
		c.Commit()

		for id := 0; id < perTuples; id++ {
			c.Begin()
			for tbl := 0; tbl < vacResourceTables; tbl++ {
				price := uint32(50 + seedRng.Intn(450))
				st.resources[tbl].Insert(c, uint64(id), packResource(100, price))
			}
			c.Commit()
		}
		states[i] = st
		locks[i] = m.NewLock()
	}

	var clients []*client
	for i := 0; i < p.Clients; i++ {
		i := i
		c := m.Core(i)
		crng := seedRng.Fork()
		cl := &client{core: c}
		cl.op = func() {
			if p.Clients > 1 && crng.Intn(100) < p.CrossPct {
				// Global multi-partition update: the administrative body of
				// vacUpdateTables applied to every chosen partition under
				// one atomic section.
				targets := pickShards(crng, p.Clients, i, crossFanout(crng, p.Clients))
				for _, s := range targets {
					c.Acquire(locks[s])
				}
				c.BeginGlobal()
				for _, s := range targets {
					vacUpdateTablesBody(c, states[s], crng)
				}
				p.commit(c)
				for j := len(targets) - 1; j >= 0; j-- {
					c.Release(locks[targets[j]])
				}
				return
			}
			r := crng.Intn(10)
			c.Acquire(locks[i])
			switch {
			case r < 8:
				vacMakeReservation(c, states[i], crng)
			case r < 9:
				vacDeleteCustomer(c, states[i], crng)
			default:
				vacUpdateTables(c, states[i], crng)
			}
			c.Release(locks[i])
		}
		clients = append(clients, cl)
	}
	return clients
}
