package workload

import (
	"testing"

	"repro/ssp"
)

// TestLargeFootprintRegression replays the configuration that exposed the
// cache install-aliasing bug: a single-client red-black tree whose node
// footprint exceeds the TLB and stresses same-set tx-pinned lines.
func TestLargeFootprintRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, clients := range []int{1, 4} {
		p := Params{Kind: RBTreeRand, Backend: ssp.SSP, Clients: clients, Ops: 400, Keys: 65536, Seed: 0xE0}
		res := Run(p)
		if res.Stats.Commits == 0 {
			t.Fatalf("clients=%d: no commits", clients)
		}
	}
}
