package workload

import (
	"reflect"
	"testing"

	"repro/ssp"
)

// This file is the determinism regression for the bounded-lag window
// scheduler (Machine.TimeWindow > 0): same seed, same core count — the
// whole simulated Result, Stats and histograms included, must be
// byte-identical across runs. It also bounds the free-running vs windowed
// throughput divergence, so a conservatism bug (windows throttling
// simulated progress) cannot hide behind "it's deterministic".

// windowedMixes returns the 8-core mixes the ISSUE's contract names:
// sharded memcached with group commit, the cross-shard global mix, and
// the epoch-batched relaxed-durability mix.
func windowedMixes() []Params {
	base := ssp.Config{JournalShards: 4, Channels: 4, TimeWindow: 4096}
	mcd := Params{Kind: Memcached, Backend: ssp.SSP, Clients: 8, Ops: 1600,
		Items: 4096, Keys: 4096, Seed: 0xD17, Machine: base}
	mcd.Machine.GroupCommitWindow = 4096

	cross := Params{Kind: MemcachedCross, Backend: ssp.SSP, Clients: 8, Ops: 1600,
		Items: 4096, Keys: 4096, CrossPct: 25, Seed: 0xD18, Machine: base}

	relaxed := Params{Kind: Memcached, Backend: ssp.SSP, Clients: 8, Ops: 1600,
		Items: 4096, Keys: 4096, Relaxed: true, Seed: 0xD19, Machine: base}
	relaxed.Machine.DurabilityEpoch = 100000
	return []Params{mcd, cross, relaxed}
}

// TestWindowedRunsByteIdentical runs each 8-core mix twice with the same
// seed under TimeWindow > 0 and requires the entire simulated Result —
// aggregate Stats, write-set profile, journal pressure, per-core rows —
// to be identical. Only host-side measurements (Wall, the scheduler's
// HostWait) may differ between the runs.
func TestWindowedRunsByteIdentical(t *testing.T) {
	for _, p := range windowedMixes() {
		p := p
		t.Run(p.Kind.String(), func(t *testing.T) {
			r1 := RunParallel(p)
			r2 := RunParallel(p)
			if !reflect.DeepEqual(r1.Result, r2.Result) {
				t.Fatalf("same-seed windowed runs diverged:\nrun1: %+v\nrun2: %+v", r1.Result, r2.Result)
			}
			if !reflect.DeepEqual(r1.PerCore, r2.PerCore) {
				t.Fatalf("per-core rows diverged:\n%+v\nvs\n%+v", r1.PerCore, r2.PerCore)
			}
			w1, w2 := r1.WindowSched, r2.WindowSched
			w1.HostWait, w2.HostWait = 0, 0
			if w1 != w2 {
				t.Fatalf("scheduler counters diverged: %+v vs %+v", w1, w2)
			}
			if r1.Stats.Commits == 0 {
				t.Fatal("no commits — determinism check ran nothing")
			}
		})
	}
}

// TestWindowParallelMatchesSerialGrant is the speculate-and-replay
// equivalence regression: each 8-core mix run under the serial-grant
// scheduler (WindowParallel=false) and under host-parallel speculation
// (WindowParallel=true) with the same seed must produce the identical
// simulated Result — aggregate Stats, histograms, write-set profile,
// journal pressure, per-core rows, and the scheduler's deterministic
// counters. Only host-side measurements (Wall, HostWait) and the
// speculation counters themselves (zero under serial-grant by definition)
// may differ.
func TestWindowParallelMatchesSerialGrant(t *testing.T) {
	for _, p := range windowedMixes() {
		p := p
		t.Run(p.Kind.String(), func(t *testing.T) {
			serial := RunParallel(p)

			wp := p
			wp.Machine.WindowParallel = true
			spec := RunParallel(wp)

			if !reflect.DeepEqual(serial.Result, spec.Result) {
				t.Fatalf("WindowParallel diverged from serial-grant:\nserial: %+v\nspec:   %+v", serial.Result, spec.Result)
			}
			if !reflect.DeepEqual(serial.PerCore, spec.PerCore) {
				t.Fatalf("per-core rows diverged:\n%+v\nvs\n%+v", serial.PerCore, spec.PerCore)
			}
			w1, w2 := serial.WindowSched, spec.WindowSched
			w1.HostWait, w2.HostWait = 0, 0
			w1.SpecOps, w2.SpecOps = 0, 0
			w1.SpecParks, w2.SpecParks = 0, 0
			if w1 != w2 {
				t.Fatalf("scheduler counters diverged: %+v vs %+v", w1, w2)
			}
			if spec.WindowSched.SpecOps == 0 || spec.WindowSched.SpecParks == 0 {
				t.Fatal("WindowParallel run recorded no speculation — the mode did not engage")
			}
			if serial.Stats.Commits == 0 {
				t.Fatal("no commits — equivalence check ran nothing")
			}
		})
	}
}

// TestWindowParallelRunsByteIdentical: two same-seed WindowParallel runs
// must also be byte-identical to EACH OTHER, speculation counters
// included (they are a pure function of the program).
func TestWindowParallelRunsByteIdentical(t *testing.T) {
	p := windowedMixes()[1] // the cross-shard mix: global txns + arenas
	p.Machine.WindowParallel = true
	r1 := RunParallel(p)
	r2 := RunParallel(p)
	if !reflect.DeepEqual(r1.Result, r2.Result) {
		t.Fatalf("same-seed WindowParallel runs diverged:\nrun1: %+v\nrun2: %+v", r1.Result, r2.Result)
	}
	w1, w2 := r1.WindowSched, r2.WindowSched
	w1.HostWait, w2.HostWait = 0, 0
	if w1 != w2 {
		t.Fatalf("scheduler counters diverged: %+v vs %+v", w1, w2)
	}
}

// TestWindowedServeByteIdentical covers the histogram path: the open-loop
// serve mix (relaxed acks, durability epoch) run twice on a windowed
// 8-core machine must produce identical latency histograms and
// percentiles, not just identical counters.
func TestWindowedServeByteIdentical(t *testing.T) {
	p := ServeParams{Backend: ssp.SSP, Clients: 8, Ops: 1600, Relaxed: true,
		OfferedTPS: 4e6, Skew: 1.1, Seed: 0xD20}
	p.Machine.JournalShards = 4
	p.Machine.Channels = 4
	p.Machine.TimeWindow = 4096
	p.Machine.DurabilityEpoch = 100000
	r1 := RunServe(p)
	r2 := RunServe(p)
	if !reflect.DeepEqual(r1.AckHist, r2.AckHist) {
		t.Fatal("same-seed windowed serve runs produced different latency histograms")
	}
	if r1.LatencyP50 != r2.LatencyP50 || r1.LatencyP99 != r2.LatencyP99 || r1.LatencyP999 != r2.LatencyP999 {
		t.Fatalf("percentiles diverged: %d/%d/%d vs %d/%d/%d",
			r1.LatencyP50, r1.LatencyP99, r1.LatencyP999, r2.LatencyP50, r2.LatencyP99, r2.LatencyP999)
	}
	if r1.Stats != r2.Stats {
		t.Fatalf("serve stats diverged:\n%+v\nvs\n%+v", r1.Stats, r2.Stats)
	}
}

// TestWindowedGroupCommitIdentity asserts the batches + followers identity
// EXACTLY under TimeWindow > 0: every measured commit on the group path is
// either a flush it led (or paid solo) or a ticket it rode, so batches +
// followers must equal the commit count — not approximately (the
// free-running caveat `-exp parallel` prints) but as an invariant.
func TestWindowedGroupCommitIdentity(t *testing.T) {
	p := windowedMixes()[0] // sharded memcached with the group window on
	res := RunParallel(p)
	st := res.Stats
	if st.GroupCommitBatches == 0 {
		t.Fatal("group-commit window configured but no batches recorded")
	}
	if got := st.GroupCommitBatches + st.GroupCommitFollowers; got != st.Commits {
		t.Fatalf("windowed group-commit identity broken: %d batches + %d followers = %d, want exactly %d commits",
			st.GroupCommitBatches, st.GroupCommitFollowers, got, st.Commits)
	}
	var perBatches, perFollowers uint64
	for _, cr := range res.PerCore {
		perBatches += cr.GroupBatches
		perFollowers += cr.GroupFollowers
	}
	if perBatches != st.GroupCommitBatches || perFollowers != st.GroupCommitFollowers {
		t.Fatalf("per-core group split (%d/%d) disagrees with aggregate (%d/%d)",
			perBatches, perFollowers, st.GroupCommitBatches, st.GroupCommitFollowers)
	}
}

// TestWindowedVsFreeRunningThroughput bounds the divergence between the
// free-running and windowed schedules on a 2-core run: the window barrier
// must not throttle simulated progress (a conservatism bug would tank
// committed TPS), nor inflate it past what contention allows.
func TestWindowedVsFreeRunningThroughput(t *testing.T) {
	base := Params{Kind: Memcached, Backend: ssp.SSP, Clients: 2, Ops: 1200,
		Items: 4096, Keys: 4096, Seed: 0xD21}
	base.Machine.JournalShards = 2
	free := RunParallel(base)

	win := base
	win.Machine.TimeWindow = 4096
	windowed := RunParallel(win)

	if free.Cycles == 0 || windowed.Cycles == 0 {
		t.Fatal("a run finished with zero elapsed cycles")
	}
	freeTPS := float64(free.Stats.Commits) / float64(free.Cycles)
	winTPS := float64(windowed.Stats.Commits) / float64(windowed.Cycles)
	ratio := winTPS / freeTPS
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("windowed/free-running committed-throughput ratio %.3f outside [0.5, 2.0] — conservatism bug?", ratio)
	}
}
