package workload

import (
	"time"

	"repro/internal/engine"
	"repro/internal/loadgen"
	"repro/internal/stats"
	"repro/ssp"
	"repro/ssp/kv"
)

// This file is the in-process complement of the TCP front end
// (internal/server + loadgen.RunTCP): the same sharded-kv service and the
// same open-loop arrival schedule, but with arrivals and latencies in
// simulated cycles — deterministic, and measuring the modeled hardware
// (commit path, journal, epochs) rather than host scheduling noise. Each
// core plays both its connection handlers and its worker: operation k is
// scheduled at start + k*interval on the core's own clock; if the core is
// still busy when the arrival comes due, the operation queues and its
// latency includes the wait, exactly like a backed-up worker queue.

// ServeParams configures an open-loop serve run.
type ServeParams struct {
	Backend ssp.Backend
	Clients int // cores = server workers (default 1)

	Ops        int     // total operations across clients (default 4000)
	Keys       uint64  // key space per core shard (default = Items)
	Items      int     // per-core cache capacity (default 4096)
	ValueBytes int     // value size (default 64)
	ReadPct    int     // percent GETs (default 50)
	DelPct     int     // percent DELs (default 5)
	Skew       float64 // Zipf exponent of the key distribution (0 = uniform)

	// OfferedTPS is the total offered load in operations per simulated
	// second across all clients; 0 runs closed loop (each op arrives when
	// the previous completes — a capacity probe).
	OfferedTPS float64

	// TouchOnGet stamps each GET's key into a per-core recency table — one
	// line per key, written with a plain non-transactional store, the way
	// memcached bumps an item's LRU metadata on every hit. The stamps are
	// legally volatile (a crash may lose them), so in the bare-NVRAM model
	// they surface as dirty cache victims written back to NVRAM, and a DRAM
	// buffer tier (Machine.DRAMCacheFrames) can absorb them entirely.
	// Default off: the historical serve mix, bit-for-bit.
	TouchOnGet bool

	Relaxed bool // ack writes with CommitRelaxed (needs Machine.DurabilityEpoch)
	Seed    uint64

	Machine ssp.Config // base machine config; Backend/Cores overridden
}

// Defaults fills zero fields like Params.Defaults.
func (p ServeParams) Defaults() ServeParams {
	if p.Clients <= 0 {
		p.Clients = 1
	}
	if p.Ops <= 0 {
		p.Ops = 4000
	}
	if p.Items <= 0 {
		p.Items = 4096
	}
	if p.Keys == 0 {
		p.Keys = uint64(p.Items)
	}
	if p.ValueBytes <= 0 {
		p.ValueBytes = 64
	}
	if p.ReadPct == 0 {
		p.ReadPct = 50
	}
	if p.DelPct == 0 {
		p.DelPct = 5
	}
	if p.Seed == 0 {
		p.Seed = 0x55AA1234
	}
	p.Machine.Backend = p.Backend
	p.Machine.Cores = p.Clients
	if p.Machine.NVRAMMB == 0 {
		p.Machine.NVRAMMB = 192
	}
	if p.Machine.DRAMMB == 0 {
		p.Machine.DRAMMB = 4
	}
	if p.Machine.MaxHeapPages == 0 {
		p.Machine.MaxHeapPages = 36 << 10
	}
	return p
}

// RunServe executes the serve workload concurrently (one goroutine per
// core via Machine.Run) and returns aggregate plus per-core measurements,
// with Result.AckHist and the latency percentiles populated.
func RunServe(p ServeParams) ParallelResult {
	p = p.Defaults()
	m := ssp.MustNew(p.Machine)

	// Serial setup: one kv shard per core, prefilled to capacity so GETs
	// hit and steady-state SETs of fresh keys evict.
	entry := 40 + p.ValueBytes
	shardBytes := p.Items*entry + (p.Items/4)*8
	recencyBytes := 0
	if p.TouchOnGet {
		// One full line per key: memcached keeps an item's LRU metadata in
		// its header line, so each hot key dirties its own line.
		recencyBytes = int(p.Keys) * 64
	}
	arenaPages := pagesFor(shardBytes + recencyBytes)
	shards := make([]*kv.Cache, p.Clients)
	recency := make([]uint64, p.Clients)
	for i := 0; i < p.Clients; i++ {
		c := m.Core(i)
		c.Begin()
		arena := m.NewArena(c, arenaPages)
		shards[i] = kv.Create(c, arena, kv.Config{
			Buckets:    p.Items / 4,
			Capacity:   p.Items,
			ValueBytes: p.ValueBytes,
		})
		if p.TouchOnGet {
			recency[i] = arena.Alloc(c, recencyBytes)
		}
		c.Commit()
		fill := make([]byte, p.ValueBytes)
		for k := uint64(0); k < p.Keys && k < uint64(p.Items); k++ {
			fill[0] = byte(k)
			c.Begin()
			shards[i].Set(c, k, fill)
			c.Commit()
		}
	}

	// Measurement window: aligned clocks, clean counters.
	m.Drain()
	start := m.MaxClock()
	for i := 0; i < p.Clients; i++ {
		m.Core(i).SetNow(start)
	}
	m.ResetStats()

	share := make([]int, p.Clients)
	for i := range share {
		share[i] = p.Ops / p.Clients
	}
	for i := 0; i < p.Ops%p.Clients; i++ {
		share[i]++
	}

	parent := loadgen.New(loadgen.Config{
		Keys:    p.Keys,
		Skew:    p.Skew,
		ReadPct: p.ReadPct,
		DelPct:  p.DelPct,
		Seed:    p.Seed,
	})
	hists := make([]stats.Histogram, p.Clients)
	perRate := p.OfferedTPS / float64(p.Clients)
	freq := m.FreqGHz()

	wallStart := time.Now()
	m.Run(func(c *ssp.Core) {
		id := c.ID()
		shard := shards[id]
		stream := parent.Fork(id)
		pacer := loadgen.CyclePacer(start, freq, perRate)
		hist := &hists[id]
		val := make([]byte, p.ValueBytes)
		buf := make([]byte, p.ValueBytes)
		for k := 0; k < share[id]; k++ {
			arrival := engine.Cycles(pacer.Arrival(k))
			if pacer.Interval() == 0 {
				arrival = c.Now() // closed loop: latency is pure service time
			} else if c.Now() < arrival {
				c.SetNow(arrival) // idle until the scheduled arrival
			}
			op := stream.Next()
			switch op.Kind {
			case loadgen.OpGet:
				shard.Get(c, op.Key, buf)
				if p.TouchOnGet {
					// Plain store outside any transaction: an LRU-style
					// recency stamp with no durability requirement.
					c.Store64(recency[id]+(op.Key%p.Keys)*64, uint64(k))
				}
			case loadgen.OpSet:
				val[0] = byte(op.Key)
				c.Begin()
				shard.Set(c, op.Key, val)
				if p.Relaxed {
					c.CommitRelaxed()
				} else {
					c.Commit()
				}
			case loadgen.OpDel:
				c.Begin()
				shard.Delete(c, op.Key)
				if p.Relaxed {
					c.CommitRelaxed()
				} else {
					c.Commit()
				}
			}
			hist.Record(uint64(c.Now() - arrival))
		}
	})
	wall := time.Since(wallStart)
	acked := m.MaxClock() - start
	m.Drain()

	merged := &stats.Histogram{}
	for i := range hists {
		merged.Merge(&hists[i])
	}

	elapsed := m.MaxClock() - start
	res := ParallelResult{
		Result: Result{
			Kind:        Memcached,
			Backend:     p.Backend,
			Clients:     p.Clients,
			Txns:        uint64(p.Ops),
			Cycles:      elapsed,
			AckCycles:   acked,
			Stats:       *m.Stats(),
			WriteSet:    *m.WriteSet(),
			Journal:     m.JournalPressure(),
			AckHist:     merged,
			LatencyP50:  ssp.Cycles(merged.Percentile(50)),
			LatencyP99:  ssp.Cycles(merged.Percentile(99)),
			LatencyP999: ssp.Cycles(merged.Percentile(99.9)),
			OfferedTPS:  p.OfferedTPS,
		},
		Wall:        wall,
		TimeWindow:  ssp.Cycles(p.Machine.TimeWindow),
		WindowSched: m.WindowStats(),
	}
	if elapsed > 0 {
		res.TPS = float64(p.Ops) / m.Seconds(elapsed)
	}
	if acked > 0 {
		res.CommittedTPS = float64(p.Ops) / m.Seconds(acked)
	}
	for i := 0; i < p.Clients; i++ {
		coreElapsed := m.Core(i).Now() - start
		cst := m.CoreStats(i)
		cr := CoreResult{
			Core:        i,
			Txns:        uint64(share[i]),
			Commits:     cst.Commits,
			Cycles:      coreElapsed,
			BarrierWait: cst.CommitBarrierWait,
		}
		if coreElapsed > 0 {
			cr.TPS = float64(cr.Commits) / m.Seconds(coreElapsed)
		}
		res.PerCore = append(res.PerCore, cr)
	}
	return res
}
