package workload

import (
	"time"

	"repro/internal/engine"
	"repro/ssp"
	"repro/ssp/kv"
	"repro/ssp/pds"
)

// This file is the concurrent driver: instead of the serial min-clock
// interleaver in Run, RunParallel executes each client on its own goroutine
// via ssp.Machine.Run, with all shared state sharded per core — each client
// owns its data structures, its key space, its lock and its allocation
// arena, so cores couple only through the machine's shared hardware
// (memory banks, the shared L3, the backend's metadata journal), which is
// exactly the coupling the paper's multi-core runs model.

// CoreResult is one core's slice of a parallel run.
type CoreResult struct {
	Core    int
	Txns    uint64     // transactions this core issued
	Commits uint64     // committed durable transactions (from its stats shard)
	Cycles  ssp.Cycles // the core's own simulated elapsed time
	TPS     float64    // this core's committed transactions per simulated second

	// BarrierWait is the core's commit-barrier wait: cycles its commits
	// spent blocked on their data-flush fences (Stats.CommitBarrierWait).
	BarrierWait uint64

	// Group-commit participation (Stats.GroupCommitBatches/Followers):
	// journal-leg flushes this core led (or paid solo) and commits where it
	// rode another core's flush ticket instead. Zero when the group-commit
	// window is off.
	GroupBatches   uint64
	GroupFollowers uint64
}

// ParallelResult is a parallel run's measurements: the aggregate in Result
// (order-independent sums; Cycles is the slowest core's elapsed time) plus
// the per-core breakdown and the host wall-clock of the measured window.
type ParallelResult struct {
	Result
	PerCore []CoreResult
	Wall    time.Duration

	// TimeWindow is the machine's deterministic-scheduler window size and
	// WindowSched the scheduler's activity during the measured Run — both
	// zero in free-running mode (Machine.TimeWindow == 0). When TimeWindow
	// > 0 the whole Result, Stats and histograms included, is byte-identical
	// across same-seed runs; at 0, cross-core timing, occupancy lines and
	// the group-commit batch/follower split are host-schedule dependent.
	TimeWindow  ssp.Cycles
	WindowSched ssp.WindowStats
}

// RunParallel executes the workload with one goroutine per client and
// returns aggregate plus per-core measurements. Setup and prefill run
// serially (deterministically); only the measured window is concurrent.
func RunParallel(p Params) ParallelResult {
	p = p.Defaults()
	m := ssp.MustNew(p.Machine)
	clients := buildParallelClients(m, p)

	// Measurement window: reset counters after setup, align clocks.
	m.Drain()
	start := m.MaxClock()
	for i := 0; i < p.Clients; i++ {
		m.Core(i).SetNow(start)
	}
	m.ResetStats()

	// Static op split: core i runs its share back to back on its goroutine.
	share := make([]int, p.Clients)
	for i := range share {
		share[i] = p.Ops / p.Clients
	}
	for i := 0; i < p.Ops%p.Clients; i++ {
		share[i]++
	}

	wallStart := time.Now()
	m.Run(func(c *ssp.Core) {
		cl := clients[c.ID()]
		for n := share[c.ID()]; n > 0; n-- {
			cl.op()
		}
	})
	wall := time.Since(wallStart)
	acked := m.MaxClock() - start
	m.Drain()

	elapsed := m.MaxClock() - start
	res := ParallelResult{
		Result: Result{
			Kind:      p.Kind,
			Backend:   p.Backend,
			Clients:   p.Clients,
			Txns:      uint64(p.Ops),
			Cycles:    elapsed,
			AckCycles: acked,
			Stats:     *m.Stats(),
			WriteSet:  *m.WriteSet(),
			Journal:   m.JournalPressure(),
		},
		Wall:        wall,
		TimeWindow:  ssp.Cycles(p.Machine.TimeWindow),
		WindowSched: m.WindowStats(),
	}
	if elapsed > 0 {
		res.TPS = float64(p.Ops) / m.Seconds(elapsed)
	}
	if acked > 0 {
		res.CommittedTPS = float64(p.Ops) / m.Seconds(acked)
	}
	for i := 0; i < p.Clients; i++ {
		coreElapsed := m.Core(i).Now() - start
		cst := m.CoreStats(i)
		cr := CoreResult{
			Core:           i,
			Txns:           uint64(share[i]),
			Commits:        cst.Commits,
			Cycles:         coreElapsed,
			BarrierWait:    cst.CommitBarrierWait,
			GroupBatches:   cst.GroupCommitBatches,
			GroupFollowers: cst.GroupCommitFollowers,
		}
		if coreElapsed > 0 {
			cr.TPS = float64(cr.Commits) / m.Seconds(coreElapsed)
		}
		res.PerCore = append(res.PerCore, cr)
	}
	return res
}

// buildParallelClients constructs per-core-sharded workload state. Every
// client's persistent structures are allocated from that client's own
// arena, so the concurrent phase never has two cores transacting on shared
// allocator or container metadata.
func buildParallelClients(m *ssp.Machine, p Params) []*client {
	switch p.Kind {
	case BTreeRand, BTreeZipf, RBTreeRand, RBTreeZipf, HashRand, HashZipf:
		return buildMicroKVParallel(m, p)
	case SPS:
		// SPS clients are already fully sharded (one array per client) and
		// allocate nothing in steady state.
		return buildSPS(m, p)
	case Memcached:
		return buildMemcachedParallel(m, p)
	case Vacation:
		return buildVacationParallel(m, p)
	case MemcachedCross:
		return buildMemcachedCross(m, p)
	case VacationCross:
		return buildVacationCross(m, p)
	default:
		panic("workload: kind not supported by the parallel driver")
	}
}

// pagesFor converts a byte estimate into whole pages with headroom.
func pagesFor(bytes int) int {
	pages := (bytes + ssp.PageBytes - 1) / ssp.PageBytes
	return pages + pages/2 + 4 // 1.5x + slack for class rounding
}

// buildMicroKVParallel is buildMicroKV with per-client arenas backing the
// tree/hash nodes.
func buildMicroKVParallel(m *ssp.Machine, p Params) []*client {
	rng := engine.NewRNG(p.Seed)
	nodeBytes := 64
	switch p.Kind {
	case BTreeRand, BTreeZipf:
		nodeBytes = 256
	case HashRand, HashZipf:
		nodeBytes = 32
	}
	arenaPages := pagesFor(int(p.Keys)*nodeBytes + int(p.Keys/4)*8)
	var clients []*client
	for i := 0; i < p.Clients; i++ {
		c := m.Core(i)
		crng := rng.Fork()

		c.Begin()
		arena := m.NewArena(c, arenaPages)
		var s microStore
		switch p.Kind {
		case BTreeRand, BTreeZipf:
			s = pds.CreateBTree(c, arena)
		case RBTreeRand, RBTreeZipf:
			s = pds.CreateRBTree(c, arena)
		case HashRand, HashZipf:
			s = pds.CreateHash(c, arena, int(p.Keys/4))
		}
		c.Commit()

		prng := crng.Fork()
		for k := uint64(0); k < p.Keys; k++ {
			if prng.Uint64()&1 == 0 {
				continue
			}
			c.Begin()
			s.Insert(c, k, prng.Uint64())
			c.Commit()
		}

		d := dist(p.Kind, p.Keys, crng)
		lock := m.NewLock()
		vrng := crng.Fork()
		cl := &client{core: c}
		cl.op = func() {
			k := d.Next()
			c.Acquire(lock)
			c.Begin()
			if _, found := s.Get(c, k); found {
				s.Delete(c, k)
			} else {
				s.Insert(c, k, vrng.Uint64())
			}
			p.commit(c)
			c.Release(lock)
		}
		clients = append(clients, cl)
	}
	return clients
}

// buildMemcachedParallel shards the cache: each core owns one kv.Cache
// (its own buckets, eviction list and arena) and a slice of the key space —
// a sharded memcached, with one lock per shard standing in for the
// per-instance lock.
func buildMemcachedParallel(m *ssp.Machine, p Params) []*client {
	perItems := p.Items / p.Clients
	if perItems < 16 {
		perItems = 16
	}
	entry := 40 + p.ValueBytes
	arenaPages := pagesFor(perItems*entry + (perItems/4)*8)

	rng := engine.NewRNG(p.Seed)
	var clients []*client
	for i := 0; i < p.Clients; i++ {
		c := m.Core(i)
		crng := rng.Fork()

		c.Begin()
		arena := m.NewArena(c, arenaPages)
		shard := kv.Create(c, arena, kv.Config{
			Buckets:    perItems / 4,
			Capacity:   perItems,
			ValueBytes: p.ValueBytes,
		})
		c.Commit()

		// Prefill this shard to capacity so steady state includes
		// evictions, as in the serial build.
		fill := make([]byte, p.ValueBytes)
		for k := 0; k < perItems; k++ {
			fill[0] = byte(k)
			c.Begin()
			shard.Set(c, uint64(k), fill)
			c.Commit()
		}

		keySpace := uint64(perItems) * 2 // half the keys miss / insert-evict
		lock := m.NewLock()
		val := make([]byte, p.ValueBytes)
		buf := make([]byte, p.ValueBytes)
		cl := &client{core: c}
		cl.op = func() {
			k := crng.Uint64n(keySpace)
			if crng.Intn(10) == 0 { // 10% GET
				c.Acquire(lock)
				shard.Get(c, k, buf)
				c.Release(lock)
				return
			}
			val[0] = byte(k)
			val[1] = byte(crng.Intn(256))
			c.Acquire(lock)
			c.Begin()
			shard.Set(c, k, val)
			p.commit(c)
			c.Release(lock)
		}
		clients = append(clients, cl)
	}
	return clients
}

// buildVacationParallel shards the OLTP state: each core owns a full table
// set (cars/flights/rooms/customers) over its own tuple range and arena —
// the database-partitioned deployment of the same transaction mix.
func buildVacationParallel(m *ssp.Machine, p Params) []*client {
	perTuples := p.Tuples / p.Clients
	if perTuples < 64 {
		perTuples = 64
	}
	arenaPages := pagesFor(perTuples*(vacResourceTables+1)*64 + perTuples*vacReserveEntry)

	seedRng := engine.NewRNG(p.Seed + 7)
	var clients []*client
	for i := 0; i < p.Clients; i++ {
		c := m.Core(i)

		c.Begin()
		arena := m.NewArena(c, arenaPages)
		st := &vacationState{tuples: perTuples, alloc: arena, commit: p.commit}
		for t := 0; t < vacResourceTables; t++ {
			st.resources[t] = pds.CreateRBTree(c, arena)
		}
		st.customers = pds.CreateRBTree(c, arena)
		c.Commit()

		for id := 0; id < perTuples; id++ {
			c.Begin()
			for tbl := 0; tbl < vacResourceTables; tbl++ {
				price := uint32(50 + seedRng.Intn(450))
				st.resources[tbl].Insert(c, uint64(id), packResource(100, price))
			}
			c.Commit()
		}

		lock := m.NewLock()
		crng := seedRng.Fork()
		cl := &client{core: c}
		cl.op = func() {
			r := crng.Intn(10)
			c.Acquire(lock)
			switch {
			case r < 8:
				vacMakeReservation(c, st, crng)
			case r < 9:
				vacDeleteCustomer(c, st, crng)
			default:
				vacUpdateTables(c, st, crng)
			}
			c.Release(lock)
		}
		clients = append(clients, cl)
	}
	return clients
}
