package workload

import (
	"repro/internal/engine"
	"repro/ssp"
	"repro/ssp/pds"
)

// microStore is the common interface of the keyed microbenchmark
// structures.
type microStore interface {
	Insert(tx *ssp.Core, k, v uint64) bool
	Delete(tx *ssp.Core, k uint64) bool
	Get(tx *ssp.Core, k uint64) (uint64, bool)
}

// buildMicroKV sets up the tree/hash microbenchmarks: each client owns a
// shard (its own structure, key space and lock), sharing the machine's
// memory system — the multi-client coupling is bandwidth and bank
// contention, as in the paper's scaling runs.
func buildMicroKV(m *ssp.Machine, p Params) []*client {
	rng := engine.NewRNG(p.Seed)
	var clients []*client
	for i := 0; i < p.Clients; i++ {
		c := m.Core(i)
		crng := rng.Fork()

		c.Begin()
		var s microStore
		switch p.Kind {
		case BTreeRand, BTreeZipf:
			s = pds.CreateBTree(c, m.Heap())
		case RBTreeRand, RBTreeZipf:
			s = pds.CreateRBTree(c, m.Heap())
		case HashRand, HashZipf:
			s = pds.CreateHash(c, m.Heap(), int(p.Keys/4))
		}
		c.Commit()

		// Prefill: "the key/value pairs are generated prior to each run" —
		// each key present with probability 1/2 so the steady-state
		// search-then-insert-or-delete mix is balanced.
		prng := crng.Fork()
		for k := uint64(0); k < p.Keys; k++ {
			if prng.Uint64()&1 == 0 {
				continue
			}
			c.Begin()
			s.Insert(c, k, prng.Uint64())
			c.Commit()
		}

		d := dist(p.Kind, p.Keys, crng)
		lock := m.NewLock()
		vrng := crng.Fork()
		cl := &client{core: c}
		cl.op = func() {
			k := d.Next()
			c.Acquire(lock)
			c.Begin()
			if _, found := s.Get(c, k); found {
				s.Delete(c, k)
			} else {
				s.Insert(c, k, vrng.Uint64())
			}
			p.commit(c)
			c.Release(lock)
		}
		clients = append(clients, cl)
	}
	return clients
}

// buildSPS sets up the SPS microbenchmark: swap two random elements of a
// large persistent array per transaction (Table 3: 2 lines / 2 pages).
func buildSPS(m *ssp.Machine, p Params) []*client {
	rng := engine.NewRNG(p.Seed)
	var clients []*client
	for i := 0; i < p.Clients; i++ {
		c := m.Core(i)
		crng := rng.Fork()

		c.Begin()
		arr := pds.CreateArray(c, m.Heap(), p.Elems)
		c.Commit()
		// Initialise in page-sized transactional chunks.
		for base := 0; base < p.Elems; base += 512 {
			c.Begin()
			for j := base; j < base+512 && j < p.Elems; j++ {
				arr.Set(c, j, uint64(j))
			}
			c.Commit()
		}

		lock := m.NewLock()
		cl := &client{core: c}
		cl.op = func() {
			i := crng.Intn(p.Elems)
			j := crng.Intn(p.Elems)
			c.Acquire(lock)
			c.Begin()
			arr.Swap(c, i, j)
			p.commit(c)
			c.Release(lock)
		}
		clients = append(clients, cl)
	}
	return clients
}
