package workload

import (
	"testing"

	"repro/ssp"
)

func smallParams(k Kind, b ssp.Backend, clients int) Params {
	return Params{
		Kind:    k,
		Backend: b,
		Clients: clients,
		Ops:     300,
		Keys:    2048,
		Elems:   1 << 14,
		Items:   1024,
		Tuples:  1024,
		Seed:    42,
	}
}

func TestAllWorkloadsRunAllBackends(t *testing.T) {
	for _, k := range All() {
		for _, b := range ssp.Backends() {
			t.Run(k.String()+"/"+b.String(), func(t *testing.T) {
				res := Run(smallParams(k, b, 1))
				if res.TPS <= 0 {
					t.Fatalf("TPS = %v", res.TPS)
				}
				if res.Stats.Commits == 0 {
					t.Fatal("no transactions committed")
				}
				if res.Stats.TotalWriteBytes() == 0 {
					t.Fatal("no NVRAM writes recorded")
				}
			})
		}
	}
}

func TestFourClientRuns(t *testing.T) {
	for _, k := range []Kind{BTreeRand, Memcached, Vacation} {
		t.Run(k.String(), func(t *testing.T) {
			res := Run(smallParams(k, ssp.SSP, 4))
			if res.TPS <= 0 || res.Stats.Commits == 0 {
				t.Fatalf("bad result: %+v", res.TPS)
			}
		})
	}
}

func TestDeterministicResults(t *testing.T) {
	a := Run(smallParams(RBTreeRand, ssp.SSP, 2))
	b := Run(smallParams(RBTreeRand, ssp.SSP, 2))
	if a.Cycles != b.Cycles || a.Stats.NVRAMWriteLines != b.Stats.NVRAMWriteLines {
		t.Fatalf("nondeterministic workload: %d/%d vs %d/%d",
			a.Cycles, a.Stats.NVRAMWriteLines, b.Cycles, b.Stats.NVRAMWriteLines)
	}
}

func TestWriteSetCharacterisationSane(t *testing.T) {
	// Table 3 sanity: SPS touches ~2 lines / ~2 pages; trees touch more
	// lines than hash; every workload touches at least one page.
	sps := Run(smallParams(SPS, ssp.SSP, 1))
	if avg := sps.WriteSet.AvgLines(); avg < 1.5 || avg > 3.5 {
		t.Errorf("SPS avg lines = %.2f, expected ~2", avg)
	}
	if avg := sps.WriteSet.AvgPages(); avg < 1.5 || avg > 3.2 {
		t.Errorf("SPS avg pages = %.2f, expected ~2", avg)
	}
	tree := Run(smallParams(RBTreeRand, ssp.SSP, 1))
	hash := Run(smallParams(HashRand, ssp.SSP, 1))
	if tree.WriteSet.AvgLines() <= hash.WriteSet.AvgLines() {
		t.Errorf("RBTree lines (%.2f) should exceed Hash lines (%.2f)",
			tree.WriteSet.AvgLines(), hash.WriteSet.AvgLines())
	}
}

// TestPaperShapeMicro checks the headline ordering at miniature scale:
// SSP throughput >= REDO >= UNDO, and NVRAM writes SSP < REDO <= UNDO-ish.
func TestPaperShapeMicro(t *testing.T) {
	for _, k := range []Kind{BTreeRand, RBTreeRand, HashRand} {
		t.Run(k.String(), func(t *testing.T) {
			byB := map[ssp.Backend]Result{}
			for _, b := range ssp.Backends() {
				byB[b] = Run(smallParams(k, b, 1))
			}
			if byB[ssp.SSP].TPS < byB[ssp.UndoLog].TPS {
				t.Errorf("SSP TPS (%.0f) below UNDO (%.0f)", byB[ssp.SSP].TPS, byB[ssp.UndoLog].TPS)
			}
			sspStats := byB[ssp.SSP].Stats
			undoStats := byB[ssp.UndoLog].Stats
			if sspStats.TotalWriteBytes() >= undoStats.TotalWriteBytes() {
				t.Errorf("SSP writes (%d) not below UNDO (%d)",
					sspStats.TotalWriteBytes(), undoStats.TotalWriteBytes())
			}
			if sspStats.CriticalPathLoggingBytes()*2 >= undoStats.CriticalPathLoggingBytes() {
				t.Errorf("SSP critical-path logging (%d) not well below UNDO (%d)",
					sspStats.CriticalPathLoggingBytes(), undoStats.CriticalPathLoggingBytes())
			}
		})
	}
}
