package workload

import (
	"repro/internal/engine"
	"repro/ssp"
	"repro/ssp/pds"
)

// Vacation-lite: an OLTP emulation in the shape of STAMP's vacation
// benchmark (§5.1: "Four clients; 16 million tuples" — tuple count is the
// Tuples parameter here). Three resource tables (cars, flights, rooms) and
// a customer table are persistent red-black trees; reservations are
// persistent list nodes hanging off customers.
//
// Transaction mix (documented in DESIGN.md; STAMP's user-query dominated
// default): 80% make-reservation, 10% delete-customer, 10% update-tables.
const (
	vacResourceTables = 3
	vacReserveEntry   = 32 // type, id, price, next
)

type vacationState struct {
	resources [vacResourceTables]*pds.RBTree
	customers *pds.RBTree
	tuples    int
	alloc     ssp.Allocator // reservation-entry allocator (heap or per-core arena)

	// commit closes a measured transaction (Params.commit: synchronous or
	// relaxed). The helpers below commit internally, so the mode rides here.
	commit func(*ssp.Core)
}

// packResource packs (free count, price) into a tree value.
func packResource(free, price uint32) uint64 { return uint64(free)<<32 | uint64(price) }

func unpackResource(v uint64) (free, price uint32) {
	return uint32(v >> 32), uint32(v)
}

func buildVacation(m *ssp.Machine, p Params) []*client {
	boot := m.Core(0)
	st := &vacationState{tuples: p.Tuples, alloc: m.Heap(), commit: p.commit}

	boot.Begin()
	for i := 0; i < vacResourceTables; i++ {
		st.resources[i] = pds.CreateRBTree(boot, m.Heap())
	}
	st.customers = pds.CreateRBTree(boot, m.Heap())
	boot.Commit()

	// Populate tables: every resource starts with capacity and a price;
	// customers start without reservations.
	seedRng := engine.NewRNG(p.Seed + 7)
	for id := 0; id < p.Tuples; id++ {
		boot.Begin()
		for tbl := 0; tbl < vacResourceTables; tbl++ {
			price := uint32(50 + seedRng.Intn(450))
			st.resources[tbl].Insert(boot, uint64(id), packResource(100, price))
		}
		boot.Commit()
	}

	lock := m.NewLock() // coarse-grained, as with lock-based STAMP ports
	var clients []*client
	for i := 0; i < p.Clients; i++ {
		c := m.Core(i)
		crng := seedRng.Fork()
		cl := &client{core: c}
		cl.op = func() {
			r := crng.Intn(10)
			c.Acquire(lock)
			switch {
			case r < 8:
				vacMakeReservation(c, st, crng)
			case r < 9:
				vacDeleteCustomer(c, st, crng)
			default:
				vacUpdateTables(c, st, crng)
			}
			c.Release(lock)
		}
		clients = append(clients, cl)
	}
	return clients
}

// vacMakeReservation queries a handful of resources per table (the read
// phase), then books the cheapest available one of each chosen type for a
// customer: decrement its free count and append a reservation entry.
func vacMakeReservation(c *ssp.Core, st *vacationState, rng *engine.RNG) {
	custID := rng.Uint64n(uint64(st.tuples))
	nQueries := 1 + rng.Intn(4)

	c.Begin()
	// Ensure the customer exists (insert on first reservation).
	listHead, ok := st.customers.Get(c, custID)
	if !ok {
		st.customers.Insert(c, custID, 0)
		listHead = 0
	}
	for q := 0; q < nQueries; q++ {
		tbl := rng.Intn(vacResourceTables)
		// Read phase: scan a few candidate resources for the cheapest
		// available.
		bestID := uint64(0)
		bestVal := uint64(0)
		found := false
		for probe := 0; probe < 4; probe++ {
			id := rng.Uint64n(uint64(st.tuples))
			v, ok := st.resources[tbl].Get(c, id)
			if !ok {
				continue
			}
			free, price := unpackResource(v)
			if free == 0 {
				continue
			}
			if !found || price < uint32(bestVal) {
				bestID, bestVal, found = id, v, true
			}
		}
		if !found {
			continue
		}
		// Write phase: book it.
		free, price := unpackResource(bestVal)
		st.resources[tbl].Insert(c, bestID, packResource(free-1, price))
		entry := st.alloc.Alloc(c, vacReserveEntry)
		c.Store64(entry+0, uint64(tbl))
		c.Store64(entry+8, bestID)
		c.Store64(entry+16, uint64(price))
		c.Store64(entry+24, listHead)
		listHead = entry
	}
	st.customers.Insert(c, custID, listHead)
	st.commit(c)
}

// vacDeleteCustomer releases all of a customer's reservations and removes
// the customer.
func vacDeleteCustomer(c *ssp.Core, st *vacationState, rng *engine.RNG) {
	custID := rng.Uint64n(uint64(st.tuples))
	c.Begin()
	listHead, ok := st.customers.Get(c, custID)
	if !ok {
		st.commit(c)
		return
	}
	for e := listHead; e != 0; {
		tbl := int(c.Load64(e + 0))
		id := c.Load64(e + 8)
		if v, ok := st.resources[tbl].Get(c, id); ok {
			free, price := unpackResource(v)
			st.resources[tbl].Insert(c, id, packResource(free+1, price))
		}
		next := c.Load64(e + 24)
		st.alloc.Free(c, e, vacReserveEntry)
		e = next
	}
	st.customers.Delete(c, custID)
	st.commit(c)
}

// vacUpdateTables changes prices or adds capacity for a few resources (the
// administrative mix component).
func vacUpdateTables(c *ssp.Core, st *vacationState, rng *engine.RNG) {
	c.Begin()
	vacUpdateTablesBody(c, st, rng)
	st.commit(c)
}

// vacUpdateTablesBody is the update-tables write set without the section
// brackets, so the cross-shard mix can apply it to several partitions
// inside one global transaction (see crossmix.go).
func vacUpdateTablesBody(c *ssp.Core, st *vacationState, rng *engine.RNG) {
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		tbl := rng.Intn(vacResourceTables)
		id := rng.Uint64n(uint64(st.tuples))
		v, ok := st.resources[tbl].Get(c, id)
		if !ok {
			continue
		}
		free, price := unpackResource(v)
		if rng.Intn(2) == 0 {
			price = uint32(50 + rng.Intn(450))
		} else {
			free += 10
		}
		st.resources[tbl].Insert(c, id, packResource(free, price))
	}
}
