package cachesim

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
)

func testSetup(cores int) (*Hierarchy, *memsim.Memory, *stats.Stats) {
	st := &stats.Stats{}
	mcfg := memsim.DefaultConfig()
	mcfg.DRAMBytes = 1 << 20
	mcfg.NVRAMBytes = 4 << 20
	mem := memsim.New(mcfg, st)
	ccfg := Config{
		Cores:   cores,
		L1Bytes: 1 << 10, L1Ways: 2, L1Lat: 4,
		L2Bytes: 4 << 10, L2Ways: 4, L2Lat: 6,
		L3Bytes: 16 << 10, L3Ways: 4, L3Lat: 27,
		CohLat: 20,
	}
	return New(ccfg, mem, st), mem, st
}

func nv(mem *memsim.Memory, off uint64) memsim.PAddr {
	return mem.Config().NVRAMBase + memsim.PAddr(off)
}

func TestLoadMissThenHit(t *testing.T) {
	h, mem, st := testSetup(1)
	pa := nv(mem, 0)
	mem.Poke(pa, []byte{0xAA})
	buf := make([]byte, 1)
	d1 := h.Load(0, pa, buf, 0)
	if buf[0] != 0xAA {
		t.Fatal("load returned wrong data")
	}
	if st.CacheMisses[0] != 1 || st.NVRAMReadLines != 1 {
		t.Errorf("expected one L1 miss and one memory read: %+v", st)
	}
	d2 := h.Load(0, pa, buf, d1)
	if st.CacheHits[0] != 1 {
		t.Error("second load should hit L1")
	}
	if d2 != d1+4 {
		t.Errorf("L1 hit latency: %d", d2-d1)
	}
}

func TestStoreIsVolatileUntilFlush(t *testing.T) {
	h, mem, _ := testSetup(1)
	pa := nv(mem, 64)
	h.Store(0, pa, []byte{0x42}, 0)
	durable := make([]byte, 1)
	mem.Peek(pa, durable)
	if durable[0] != 0 {
		t.Fatal("store leaked to durable memory before flush")
	}
	_, wrote := h.Flush(0, pa, 0, stats.CatData)
	if !wrote {
		t.Fatal("flush reported no write")
	}
	mem.Peek(pa, durable)
	if durable[0] != 0x42 {
		t.Fatal("flush did not persist data")
	}
	// Flushing again: line is clean, no write.
	_, wrote = h.Flush(0, pa, 0, stats.CatData)
	if wrote {
		t.Error("second flush wrote a clean line")
	}
	// Cached copy retained and readable.
	buf := make([]byte, 1)
	h.Load(0, pa, buf, 0)
	if buf[0] != 0x42 {
		t.Error("flush dropped the cached copy")
	}
}

func TestSubLineStorePreservesRest(t *testing.T) {
	h, mem, _ := testSetup(1)
	pa := nv(mem, 128)
	full := make([]byte, 64)
	for i := range full {
		full[i] = byte(i)
	}
	mem.Poke(pa, full)
	h.Store(0, pa+8, []byte{0xFF}, 0)
	buf := make([]byte, 64)
	h.Load(0, pa, buf[:1], 0)
	h.Load(0, pa+8, buf[8:9], 0)
	h.Load(0, pa+9, buf[9:10], 0)
	if buf[0] != 0 || buf[8] != 0xFF || buf[9] != 9 {
		t.Errorf("write-allocate merged wrong: %v", buf[:10])
	}
}

func TestCrossCoreCoherence(t *testing.T) {
	h, mem, st := testSetup(2)
	pa := nv(mem, 256)
	h.Store(0, pa, []byte{0x01}, 0)
	buf := make([]byte, 1)
	h.Load(1, pa, buf, 0)
	if buf[0] != 0x01 {
		t.Fatal("core 1 did not observe core 0's write")
	}
	// Core 1 writes: core 0's copy must be invalidated.
	h.Store(1, pa, []byte{0x02}, 0)
	if st.Invalidations == 0 {
		t.Error("no invalidation counted")
	}
	h.Load(0, pa, buf, 0)
	if buf[0] != 0x02 {
		t.Fatal("core 0 read stale data after remote write")
	}
}

func TestDropAllLosesDirtyData(t *testing.T) {
	h, mem, _ := testSetup(1)
	pa := nv(mem, 512)
	mem.Poke(pa, []byte{0x10})
	h.Store(0, pa, []byte{0x99}, 0)
	h.DropAll()
	buf := make([]byte, 1)
	h.Load(0, pa, buf, 0)
	if buf[0] != 0x10 {
		t.Errorf("after crash, expected committed 0x10, got %#x", buf[0])
	}
}

func TestRetagMovesDataWithoutWriteback(t *testing.T) {
	h, mem, st := testSetup(1)
	p0 := nv(mem, 0x10000)
	p1 := nv(mem, 0x20000)
	mem.Poke(p0, []byte{0x33}) // committed data on P0

	// Load committed data, then retag to the shadow address.
	buf := make([]byte, 1)
	h.Load(0, p0, buf, 0)
	before := st.NVRAMWriteLines
	h.Retag(0, p0, p1, 0)
	if st.NVRAMWriteLines != before {
		t.Fatal("retag of a clean line wrote to NVRAM")
	}

	// The data now lives under the P1 tag.
	h.Load(0, p1, buf, 0)
	if buf[0] != 0x33 {
		t.Fatalf("retagged line lost data: %#x", buf[0])
	}
	// Overwrite via P1, flush: P0's durable bytes stay committed.
	h.Store(0, p1, []byte{0x44}, 0)
	h.Flush(0, p1, 0, stats.CatData)
	d := make([]byte, 1)
	mem.Peek(p0, d)
	if d[0] != 0x33 {
		t.Error("retag+flush overwrote committed data in place")
	}
	mem.Peek(p1, d)
	if d[0] != 0x44 {
		t.Error("speculative data not persisted at shadow address")
	}
}

func TestRetagFlushesDirtyNonTxLineFirst(t *testing.T) {
	h, mem, _ := testSetup(1)
	p0 := nv(mem, 0x11000)
	p1 := nv(mem, 0x21000)
	// A non-transactional store dirties P0's line.
	h.Store(0, p0, []byte{0x77}, 0)
	h.Retag(0, p0, p1, 0)
	d := make([]byte, 1)
	mem.Peek(p0, d)
	if d[0] != 0x77 {
		t.Error("dirty pre-transaction data lost by retag")
	}
	buf := make([]byte, 1)
	h.Load(0, p1, buf, 0)
	if buf[0] != 0x77 {
		t.Error("retagged line lost the flushed value")
	}
}

func TestRetagDiscardsStaleTargetCopies(t *testing.T) {
	h, mem, _ := testSetup(2)
	p0 := nv(mem, 0x12000)
	p1 := nv(mem, 0x22000)
	mem.Poke(p0, []byte{0x01})
	mem.Poke(p1, []byte{0x0F}) // stale dead version at shadow address
	buf := make([]byte, 1)
	h.Load(1, p1, buf, 0) // core 1 caches the stale shadow line
	h.Load(0, p0, buf, 0)
	h.Retag(0, p0, p1, 0)
	h.Load(1, p1, buf, 0) // must see the retagged data, not its stale copy
	if buf[0] != 0x01 {
		t.Errorf("stale shadow copy survived retag: %#x", buf[0])
	}
}

func TestInvalidateLineDropsSpeculativeData(t *testing.T) {
	h, mem, _ := testSetup(1)
	p0 := nv(mem, 0x13000)
	p1 := nv(mem, 0x23000)
	mem.Poke(p0, []byte{0x55})
	buf := make([]byte, 1)
	h.Load(0, p0, buf, 0)
	h.Retag(0, p0, p1, 0)
	h.Store(0, p1, []byte{0x66}, 0)
	h.InvalidateLine(p1) // abort path
	d := make([]byte, 1)
	mem.Peek(p1, d)
	if d[0] != 0 {
		t.Error("aborted speculative data reached NVRAM")
	}
	h.Load(0, p0, buf, 0)
	if buf[0] != 0x55 {
		t.Error("committed data lost after abort")
	}
}

func TestWritebackInvalidate(t *testing.T) {
	h, mem, _ := testSetup(1)
	pa := nv(mem, 0x14000)
	h.Store(0, pa, []byte{0x88}, 0)
	_, wrote := h.WritebackInvalidate(pa, 0, stats.CatConsolidation)
	if !wrote {
		t.Fatal("dirty line not written back")
	}
	d := make([]byte, 1)
	mem.Peek(pa, d)
	if d[0] != 0x88 {
		t.Fatal("writeback lost data")
	}
	if h.Present(0, pa) {
		t.Error("line still cached after invalidate")
	}
}

func TestEvictionWritesBack(t *testing.T) {
	h, mem, _ := testSetup(1)
	// Dirty many distinct lines mapping to the same sets until the
	// hierarchy must spill to memory, then verify data integrity via loads.
	const n = 2048 // lines; well beyond L1+L2+L3 capacity (21.5KiB total)
	for i := 0; i < n; i++ {
		pa := nv(mem, uint64(i)*64)
		h.Store(0, pa, []byte{byte(i), byte(i >> 8)}, 0)
	}
	for i := 0; i < n; i++ {
		pa := nv(mem, uint64(i)*64)
		buf := make([]byte, 2)
		h.Load(0, pa, buf, 0)
		if buf[0] != byte(i) || buf[1] != byte(i>>8) {
			t.Fatalf("line %d corrupted through evictions: %v", i, buf)
		}
	}
}

func TestFlushAll(t *testing.T) {
	h, mem, _ := testSetup(2)
	for i := 0; i < 100; i++ {
		pa := nv(mem, uint64(i)*64)
		h.Store(i%2, pa, []byte{byte(i + 1)}, 0)
	}
	h.FlushAll(0, stats.CatData)
	for i := 0; i < 100; i++ {
		d := make([]byte, 1)
		mem.Peek(nv(mem, uint64(i)*64), d)
		if d[0] != byte(i+1) {
			t.Fatalf("line %d not flushed", i)
		}
	}
}

func TestLatencyOrdering(t *testing.T) {
	h, mem, _ := testSetup(1)
	pa := nv(mem, 0x15000)
	buf := make([]byte, 1)
	tMiss := h.Load(0, pa, buf, 0)
	tHit := h.Load(0, pa, buf, 0) // from 0 again
	if tHit >= tMiss {
		t.Errorf("hit (%d) should be cheaper than miss (%d)", tHit, tMiss)
	}
}

// Property test: under random loads/stores/flushes/retags across cores, a
// load always returns the value of the most recent store to that address
// (single-writer interleaving, which is how the simulator drives it).
func TestHierarchyMatchesReferenceModel(t *testing.T) {
	f := func(seed uint64) bool {
		h, mem, _ := testSetup(3)
		rng := engine.NewRNG(seed)
		const lines = 96
		ref := make([]byte, lines)
		base := mem.Config().NVRAMBase
		for op := 0; op < 2000; op++ {
			li := rng.Intn(lines)
			pa := base + memsim.PAddr(li*64)
			core := rng.Intn(3)
			switch rng.Intn(4) {
			case 0: // store
				v := byte(rng.Intn(255) + 1)
				h.Store(core, pa, []byte{v}, 0)
				ref[li] = v
			case 1, 2: // load
				buf := make([]byte, 1)
				h.Load(core, pa, buf, 0)
				if buf[0] != ref[li] {
					t.Logf("line %d: got %#x want %#x (op %d)", li, buf[0], ref[li], op)
					return false
				}
			case 3: // flush
				h.Flush(core, pa, 0, stats.CatData)
			}
		}
		// Flush everything; durable image must equal the reference.
		h.FlushAll(0, stats.CatData)
		for li := 0; li < lines; li++ {
			d := make([]byte, 1)
			mem.Peek(base+memsim.PAddr(li*64), d)
			if d[0] != ref[li] {
				t.Logf("durable line %d: got %#x want %#x", li, d[0], ref[li])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
