package cachesim

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
)

// TestCoherenceInvariantFuzz drives random load/store/flush/retag traffic
// across three cores and checks after every operation that (a) loads return
// the reference value, (b) DebugValidate's coherence invariants hold, and
// (c) the final durable image matches the reference after FlushAll.
func TestCoherenceInvariantFuzz(t *testing.T) {
	seeds := []uint64{1, 42, 0x6f821774a8747c9, 0xc30ef0094690e869, 0xdeadbeef}
	for _, seed := range seeds {
		h, mem, _ := testSetup(3)
		rng := engine.NewRNG(seed)
		const lines = 96
		ref := make([]byte, lines)
		base := mem.Config().NVRAMBase
		for op := 0; op < 1500; op++ {
			li := rng.Intn(lines)
			pa := base + memsim.PAddr(li*64)
			core := rng.Intn(3)
			switch rng.Intn(4) {
			case 0:
				v := byte(rng.Intn(255) + 1)
				h.Store(core, pa, []byte{v}, 0)
				ref[li] = v
			case 1, 2:
				buf := make([]byte, 1)
				h.Load(core, pa, buf, 0)
				if buf[0] != ref[li] {
					t.Fatalf("seed %#x op %d: load core=%d line=%d got %#x want %#x",
						seed, op, core, li, buf[0], ref[li])
				}
			case 3:
				h.Flush(core, pa, 0, stats.CatData)
			}
			if msg := h.DebugValidate(); msg != "" {
				t.Fatalf("seed %#x op %d: coherence violation: %s", seed, op, msg)
			}
		}
		h.FlushAll(0, stats.CatData)
		for li := 0; li < lines; li++ {
			b := make([]byte, 1)
			mem.Peek(base+memsim.PAddr(li*64), b)
			if b[0] != ref[li] {
				t.Fatalf("seed %#x: durable line %d got %#x want %#x", seed, li, b[0], ref[li])
			}
		}
	}
}

// TestRetagInvariantFuzz mixes SSP-style retag/flush/invalidate cycles with
// plain traffic on a disjoint address range and validates coherence
// invariants throughout. It emulates the atomic-update protocol: a line is
// alternately remapped between a P0 and P1 address, written, and either
// flushed (commit) or invalidated (abort).
func TestRetagInvariantFuzz(t *testing.T) {
	for _, seed := range []uint64{7, 99, 12345} {
		h, mem, _ := testSetup(2)
		rng := engine.NewRNG(seed)
		base := mem.Config().NVRAMBase
		const pairs = 16
		// cur[i] tracks which side (0/1) holds the committed value of pair i.
		cur := make([]int, pairs)
		ref := make([]byte, pairs)
		addr := func(i, side int) memsim.PAddr {
			return base + memsim.PAddr(i*2+side)*64
		}
		for op := 0; op < 600; op++ {
			i := rng.Intn(pairs)
			core := rng.Intn(2)
			from := addr(i, cur[i])
			to := addr(i, 1-cur[i])
			switch rng.Intn(3) {
			case 0: // committed update: retag, store, flush
				buf := make([]byte, 1)
				h.Load(core, from, buf, 0)
				if buf[0] != ref[i] {
					t.Fatalf("seed %d op %d: pre-retag load got %#x want %#x", seed, op, buf[0], ref[i])
				}
				h.Retag(core, from, to, 0)
				v := byte(rng.Intn(255) + 1)
				h.Store(core, to, []byte{v}, 0)
				h.Flush(core, to, 0, stats.CatData)
				ref[i] = v
				cur[i] = 1 - cur[i]
			case 1: // aborted update: retag, store, invalidate
				h.Load(core, from, make([]byte, 1), 0)
				h.Retag(core, from, to, 0)
				h.Store(core, to, []byte{0xEE}, 0)
				h.InvalidateLine(to)
			case 2: // read committed
				buf := make([]byte, 1)
				h.Load(core, from, buf, 0)
				if buf[0] != ref[i] {
					t.Fatalf("seed %d op %d: committed read got %#x want %#x", seed, op, buf[0], ref[i])
				}
			}
			if msg := h.DebugValidate(); msg != "" {
				t.Fatalf("seed %d op %d: coherence violation: %s", seed, op, msg)
			}
		}
		// Durable check: committed side of every pair holds ref.
		for i := 0; i < pairs; i++ {
			b := make([]byte, 1)
			mem.Peek(addr(i, cur[i]), b)
			if b[0] != ref[i] {
				t.Fatalf("seed %d: durable pair %d got %#x want %#x", seed, i, b[0], ref[i])
			}
		}
	}
}
