// Package cachesim models the processor cache hierarchy of Table 2: private
// L1D and L2 per core, a shared L3, write-back write-allocate with LRU
// replacement, and directory-based single-writer coherence.
//
// The hierarchy holds the only copy of dirty data: a line's bytes reach the
// durable memsim image only on write-back or explicit Flush (clwb). Dropping
// the hierarchy (DropAll) therefore loses exactly the non-persisted bytes —
// the behaviour a power failure has on a real machine with volatile caches.
//
// Two operations exist for SSP (§3.2, Figure 4):
//
//   - Retag atomically renames a line from one physical address to another
//     within a core's private cache, implementing the line-level
//     copy-on-write remap ("we directly apply the write to the cache line,
//     however, we atomically change the tag so that the line now maps to the
//     'other' page").
//   - Flush (clwb) writes a line back to memory while keeping a clean copy
//     cached, as used by transaction commit.
//
// Determinism contract: coherence arbitration — ownership transfers,
// invalidation order, shared-L3 replacement — resolves in the order
// requests arrive under the interconnect lock. Free-running concurrent
// cores (machine.Config.TimeWindow == 0) arrive in host order, so
// cross-core transfer timing is host-schedule dependent; under the
// bounded-lag window scheduler cores execute serially in simulated-time
// order and every transfer here becomes deterministic, with no changes to
// this package. Code here must not let host time or host scheduling
// influence simulated timing or line contents.
package cachesim

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
)

// Config sizes the hierarchy. Latencies are in core cycles (Table 2).
type Config struct {
	Cores int

	L1Bytes int
	L1Ways  int
	L1Lat   engine.Cycles

	L2Bytes int
	L2Ways  int
	L2Lat   engine.Cycles

	L3Bytes int
	L3Ways  int
	L3Lat   engine.Cycles

	// CohLat is the extra latency of a coherence action that has to touch
	// another core's cache (invalidation, dirty-copy fetch).
	CohLat engine.Cycles
}

// DefaultConfig returns the paper's Table 2 cache parameters.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:   cores,
		L1Bytes: 32 << 10, L1Ways: 8, L1Lat: 4,
		L2Bytes: 256 << 10, L2Ways: 8, L2Lat: 6,
		L3Bytes: 12 << 20, L3Ways: 16, L3Lat: 27,
		CohLat: 20,
	}
}

type line struct {
	tag   uint64 // line address (pa >> LineShift); meaningful when valid
	valid bool
	dirty bool
	tx    bool // speculative SSP line (set by Retag, cleared by Flush)
	lru   uint64
	data  [memsim.LineBytes]byte
}

type level struct {
	sets  int
	ways  int
	lat   engine.Cycles
	lines []line
	tick  uint64
}

func newLevel(bytes, ways int, lat engine.Cycles) *level {
	nLines := bytes / memsim.LineBytes
	sets := nLines / ways
	if sets == 0 {
		sets = 1
		ways = nLines
	}
	return &level{sets: sets, ways: ways, lat: lat, lines: make([]line, sets*ways)}
}

func (l *level) set(lineAddr uint64) []line {
	s := int(lineAddr % uint64(l.sets))
	return l.lines[s*l.ways : (s+1)*l.ways]
}

// lookup returns the line holding lineAddr, or nil.
func (l *level) lookup(lineAddr uint64) *line {
	set := l.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			l.tick++
			set[i].lru = l.tick
			return &set[i]
		}
	}
	return nil
}

// peek is lookup without touching LRU state.
func (l *level) peek(lineAddr uint64) *line {
	set := l.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// victim returns the entry to fill for lineAddr: an invalid way if one
// exists, otherwise the LRU way among non-speculative lines, otherwise the
// LRU way outright. Speculative (tx) lines are kept cached when possible —
// redo-style designs must not write uncommitted data back in place (DHTM
// keeps transactional lines pinned in the volatile hierarchy).
func (l *level) victim(lineAddr uint64) *line {
	set := l.set(lineAddr)
	var oldest, oldestNonTx *line
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if oldest == nil || set[i].lru < oldest.lru {
			oldest = &set[i]
		}
		if !set[i].tx && (oldestNonTx == nil || set[i].lru < oldestNonTx.lru) {
			oldestNonTx = &set[i]
		}
	}
	if oldestNonTx != nil {
		return oldestNonTx
	}
	return oldest
}

func (l *level) reset() {
	for i := range l.lines {
		l.lines[i] = line{}
	}
	l.tick = 0
}

type dirEntry struct {
	sharers uint64 // bitmask of cores with a private copy
	owner   int8   // core with a dirty private copy, or -1
}

// Mem is the memory tier below the cache hierarchy. The hierarchy issues
// all sub-L3 traffic through this interface, so a buffer tier (a DRAM page
// cache, internal/buffercache) can interpose between the caches and the
// durable memsim image without the hierarchy knowing. Wrap skips the
// indirection: a bare memsim.Memory behaves bit-for-bit like the historical
// direct coupling.
//
// The distinction between the three write entry points is durability:
//
//   - EvictLine is a capacity write-back of a victim line. The hierarchy
//     never waits on it and nothing above relies on it reaching NVRAM — a
//     buffer tier may absorb it in DRAM.
//   - PersistLine is an explicit persistence request (clwb with a fence
//     behind it): the line MUST reach the durable image, and the returned
//     completion time is what the fence waits on.
//   - HardenLine is the fence backstop for lines with no dirty CPU-cache
//     copy: if the tier below holds a dirty (absorbed) copy of the line, it
//     must write it through to NVRAM now and report (done, true); if it
//     holds nothing dirty the line is already durable and it reports
//     (at, false).
//
// All methods are called under the hierarchy's interconnect lock, on the
// invoking core's goroutine.
type Mem interface {
	// ReadLine fills buf with the line at pa and returns the completion
	// time, charged to the fastest tier holding a valid copy.
	ReadLine(core int, pa memsim.PAddr, buf []byte, at engine.Cycles) engine.Cycles
	// EvictLine accepts a dirty victim line written back for capacity.
	EvictLine(core int, pa memsim.PAddr, data []byte, at engine.Cycles, cat stats.WriteCat)
	// PersistLine writes the line through to the durable image and returns
	// the completion time of the durable write.
	PersistLine(core int, pa memsim.PAddr, data []byte, at engine.Cycles, cat stats.WriteCat) engine.Cycles
	// HardenLine persists a dirty buffered copy of pa's line, if one exists
	// below the CPU caches; reports whether a write happened.
	HardenLine(core int, pa memsim.PAddr, at engine.Cycles, cat stats.WriteCat) (engine.Cycles, bool)
	// DirtyLine reports whether the tier holds a dirty (not yet durable)
	// copy of pa's line.
	DirtyLine(pa memsim.PAddr) bool
	// InjectLine updates any buffered copy of pa's line in place with data
	// just written durably (cache injection; untimed).
	InjectLine(pa memsim.PAddr, data []byte)
	// Peek resolves the freshest value of the bytes at pa without timing:
	// a buffered copy if present, else the durable image.
	Peek(pa memsim.PAddr, buf []byte)
}

// directMem couples the hierarchy straight to memsim with no buffer tier —
// the paper's bare-NVRAM model. Every method is a transparent forward;
// HardenLine reports no buffered state so flushLocked's no-dirty-copy path
// is byte-identical to the historical one.
type directMem struct {
	mem *memsim.Memory
}

// Wrap adapts a bare memsim.Memory to the Mem interface.
func Wrap(mem *memsim.Memory) Mem { return directMem{mem} }

func (d directMem) ReadLine(core int, pa memsim.PAddr, buf []byte, at engine.Cycles) engine.Cycles {
	return d.mem.ReadLine(pa, buf, at)
}

func (d directMem) EvictLine(core int, pa memsim.PAddr, data []byte, at engine.Cycles, cat stats.WriteCat) {
	d.mem.WriteLine(pa, data, at, cat)
}

func (d directMem) PersistLine(core int, pa memsim.PAddr, data []byte, at engine.Cycles, cat stats.WriteCat) engine.Cycles {
	return d.mem.WriteLine(pa, data, at, cat)
}

func (d directMem) HardenLine(core int, pa memsim.PAddr, at engine.Cycles, cat stats.WriteCat) (engine.Cycles, bool) {
	return at, false
}

func (d directMem) DirtyLine(pa memsim.PAddr) bool { return false }

func (d directMem) InjectLine(pa memsim.PAddr, data []byte) {}

func (d directMem) Peek(pa memsim.PAddr, buf []byte) { d.mem.Peek(pa, buf) }

// Hierarchy is the full multi-core cache system in front of one Memory.
//
// Concurrency: one mutex serialises every operation — the software analogue
// of the coherence interconnect, where invalidations, ownership transfers
// and L3 fills are globally ordered anyway. The mutex is above the memory
// system's locks in the lock order (the hierarchy calls into memsim while
// holding it, never the reverse).
//
// Memory traffic below L3 is issued per address to the memory system, which
// routes each transfer to its interleaved channel — misses and write-backs
// occupy only that channel's bus timeline, so simulated transfers to
// different channels overlap even though the interconnect lock orders their
// issue. With one channel this degenerates to the historical single-bus
// model.
type Hierarchy struct {
	cfg Config
	mem Mem
	st  *stats.Stats

	mu     sync.Mutex
	l1, l2 []*level
	l3     *level
	dir    map[uint64]dirEntry
}

// New builds the hierarchy described by cfg directly on top of mem (no
// buffer tier); see NewWithMem for interposing one.
func New(cfg Config, mem *memsim.Memory, st *stats.Stats) *Hierarchy {
	return NewWithMem(cfg, Wrap(mem), st)
}

// NewWithMem builds the hierarchy on top of an arbitrary memory tier.
func NewWithMem(cfg Config, mem Mem, st *stats.Stats) *Hierarchy {
	if cfg.Cores <= 0 || cfg.Cores > 64 {
		panic(fmt.Sprintf("cachesim: unsupported core count %d", cfg.Cores))
	}
	h := &Hierarchy{
		cfg: cfg,
		mem: mem,
		st:  st,
		l1:  make([]*level, cfg.Cores),
		l2:  make([]*level, cfg.Cores),
		l3:  newLevel(cfg.L3Bytes, cfg.L3Ways, cfg.L3Lat),
		dir: make(map[uint64]dirEntry),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1[i] = newLevel(cfg.L1Bytes, cfg.L1Ways, cfg.L1Lat)
		h.l2[i] = newLevel(cfg.L2Bytes, cfg.L2Ways, cfg.L2Lat)
	}
	return h
}

// Cores returns the number of cores the hierarchy serves.
func (h *Hierarchy) Cores() int { return h.cfg.Cores }

// ---------------------------------------------------------------------------
// Directory helpers.

func (h *Hierarchy) dirGet(la uint64) dirEntry {
	if e, ok := h.dir[la]; ok {
		return e
	}
	return dirEntry{owner: -1}
}

func (h *Hierarchy) dirPut(la uint64, e dirEntry) {
	if e.sharers == 0 && e.owner < 0 {
		delete(h.dir, la)
		return
	}
	h.dir[la] = e
}

// privatePresent reports whether core still holds la in L1 or L2.
func (h *Hierarchy) privatePresent(core int, la uint64) bool {
	return h.l1[core].peek(la) != nil || h.l2[core].peek(la) != nil
}

// dropSharerIfGone removes core from la's sharer set when the line has left
// both private levels.
func (h *Hierarchy) dropSharerIfGone(core int, la uint64) {
	if h.privatePresent(core, la) {
		return
	}
	e := h.dirGet(la)
	e.sharers &^= 1 << uint(core)
	if e.owner == int8(core) {
		e.owner = -1
	}
	h.dirPut(la, e)
}

// ---------------------------------------------------------------------------
// Fill/evict plumbing.

// installL3 places data into L3 on behalf of core, evicting as needed.
func (h *Hierarchy) installL3(core int, la uint64, data *[memsim.LineBytes]byte, dirty, tx bool, at engine.Cycles) {
	if cur := h.l3.lookup(la); cur != nil {
		cur.data = *data
		cur.dirty = cur.dirty || dirty
		cur.tx = cur.tx || tx
		return
	}
	v := h.l3.victim(la)
	if v.valid && v.dirty {
		if v.tx {
			h.st.TxLineSpills++
		}
		h.mem.EvictLine(core, memsim.PAddr(v.tag)<<memsim.LineShift, v.data[:], at, stats.CatData)
	}
	h.l3.tick++
	*v = line{tag: la, valid: true, dirty: dirty, tx: tx, lru: h.l3.tick, data: *data}
}

// installL2 places data into core's L2, spilling the victim to L3.
func (h *Hierarchy) installL2(core int, la uint64, data *[memsim.LineBytes]byte, dirty, tx bool, at engine.Cycles) {
	l2 := h.l2[core]
	if cur := l2.lookup(la); cur != nil {
		cur.data = *data
		cur.dirty = cur.dirty || dirty
		cur.tx = cur.tx || tx
		return
	}
	v := l2.victim(la)
	if v.valid {
		h.evictPrivateVictim(core, v, at)
	}
	l2.tick++
	*v = line{tag: la, valid: true, dirty: dirty, tx: tx, lru: l2.tick, data: *data}
}

// evictPrivateVictim handles an L2 victim: to keep L2 inclusive of L1 the
// L1 copy is merged and invalidated, then the line spills to L3 (dirty
// victims carry their data down; clean victims are demoted victim-cache
// style so recently-used lines stay in the hierarchy).
func (h *Hierarchy) evictPrivateVictim(core int, v *line, at engine.Cycles) {
	la := v.tag
	dirty, tx := v.dirty, v.tx
	data := v.data
	if l1c := h.l1[core].peek(la); l1c != nil {
		if l1c.dirty {
			data = l1c.data
			dirty = true
			tx = tx || l1c.tx
		}
		l1c.valid = false
	}
	v.valid = false
	h.installL3(core, la, &data, dirty, tx, at)
	h.dropSharerIfGone(core, la)
}

// installL1 places data into core's L1, spilling the victim to L2.
func (h *Hierarchy) installL1(core int, la uint64, data *[memsim.LineBytes]byte, dirty, tx bool, at engine.Cycles) *line {
	l1 := h.l1[core]
	if cur := l1.lookup(la); cur != nil {
		cur.data = *data
		cur.dirty = cur.dirty || dirty
		cur.tx = cur.tx || tx
		return cur
	}
	v := l1.victim(la)
	if v.valid {
		// Spill to L2: dirty victims carry data down; clean victims not
		// already in L2 are demoted too (victim caching), so lines
		// installed directly into L1 (retags, stores) survive eviction.
		if v.dirty || h.l2[core].peek(v.tag) == nil {
			h.installL2(core, v.tag, &v.data, v.dirty, v.tx, at)
		}
		v.valid = false
	}
	l1.tick++
	*v = line{tag: la, valid: true, dirty: dirty, tx: tx, lru: l1.tick, data: *data}
	return v
}

// ---------------------------------------------------------------------------
// The value authority chain: owner's private copy > dirty L3 copy > memory.

// fetchAuthority obtains the current data for la on behalf of core,
// downgrading a remote owner if necessary. It returns the data and the
// completion time. The requesting core is not yet registered as a sharer.
func (h *Hierarchy) fetchAuthority(core int, la uint64, at engine.Cycles) ([memsim.LineBytes]byte, engine.Cycles) {
	e := h.dirGet(la)
	t := at
	if e.owner >= 0 && int(e.owner) != core {
		// Remote dirty copy: write it back to L3 and downgrade the owner
		// to a clean sharer (cache-to-cache transfer).
		o := int(e.owner)
		var data [memsim.LineBytes]byte
		var tx bool
		found := false
		if c := h.l1[o].peek(la); c != nil && c.dirty {
			data, tx, found = c.data, c.tx, true
			c.dirty = false
		}
		if c := h.l2[o].peek(la); c != nil {
			if found {
				c.data = data // propagate the fresher L1 value
			} else if c.dirty {
				data, tx, found = c.data, c.tx, true
			}
			c.dirty = false
		}
		if !found {
			panic(fmt.Sprintf("cachesim: directory owner %d has no dirty copy of %#x", o, la))
		}
		h.installL3(core, la, &data, true, tx, t)
		e.owner = -1
		e.sharers |= 1 << uint(o)
		h.dirPut(la, e)
		t += h.cfg.CohLat
	}
	if c := h.l3.lookup(la); c != nil {
		h.st.CacheHits[2]++
		return c.data, t + h.cfg.L3Lat
	}
	h.st.CacheMisses[2]++
	var buf [memsim.LineBytes]byte
	done := h.mem.ReadLine(core, memsim.PAddr(la)<<memsim.LineShift, buf[:], t+h.cfg.L3Lat)
	h.installL3(core, la, &buf, false, false, done)
	return buf, done
}

// ---------------------------------------------------------------------------
// Public operations.

// Load reads len(buf) bytes at pa into buf and returns the completion time.
// The span must stay within one cache line.
func (h *Hierarchy) loadLocked(core int, pa memsim.PAddr, buf []byte, at engine.Cycles) engine.Cycles {
	la, off := uint64(pa>>memsim.LineShift), int(pa&(memsim.LineBytes-1))
	if off+len(buf) > memsim.LineBytes {
		panic(fmt.Sprintf("cachesim: Load of %d bytes crosses line at %#x", len(buf), pa))
	}
	if c := h.l1[core].lookup(la); c != nil {
		h.st.CacheHits[0]++
		copy(buf, c.data[off:])
		return at + h.cfg.L1Lat
	}
	h.st.CacheMisses[0]++
	if c := h.l2[core].lookup(la); c != nil {
		h.st.CacheHits[1]++
		// Copy the data out before installing: installL1's spill may need
		// an L2 slot in this very set and pick c as the victim (every
		// other way can be tx-pinned), which would clobber c in place.
		data := c.data
		installed := h.installL1(core, la, &data, false, false, at)
		copy(buf, installed.data[off:])
		return at + h.cfg.L2Lat
	}
	h.st.CacheMisses[1]++
	data, done := h.fetchAuthority(core, la, at)
	h.installL2(core, la, &data, false, false, done)
	h.installL1(core, la, &data, false, false, done)
	e := h.dirGet(la)
	e.sharers |= 1 << uint(core)
	h.dirPut(la, e)
	copy(buf, data[off:])
	return done
}

// Store writes data at pa (within one line) into core's L1 with exclusive
// ownership (write-allocate) and returns the completion time. The data
// becomes durable only on write-back or Flush.
func (h *Hierarchy) storeLocked(core int, pa memsim.PAddr, data []byte, at engine.Cycles) engine.Cycles {
	la, off := uint64(pa>>memsim.LineShift), int(pa&(memsim.LineBytes-1))
	if off+len(data) > memsim.LineBytes {
		panic(fmt.Sprintf("cachesim: Store of %d bytes crosses line at %#x", len(data), pa))
	}
	c, done := h.exclusiveLine(core, la, at)
	copy(c.data[off:], data)
	c.dirty = true
	// Keep the same core's L2 copy value-coherent so a later clean L1
	// eviction can never expose stale data.
	if c2 := h.l2[core].peek(la); c2 != nil {
		c2.data = c.data
	}
	e := h.dirGet(la)
	e.owner = int8(core)
	e.sharers |= 1 << uint(core)
	h.dirPut(la, e)
	return done
}

// exclusiveLine brings la into core's L1 with all other copies invalidated,
// returning the L1 entry.
func (h *Hierarchy) exclusiveLine(core int, la uint64, at engine.Cycles) (*line, engine.Cycles) {
	t := at
	e := h.dirGet(la)
	others := e.sharers &^ (1 << uint(core))
	if others != 0 || (e.owner >= 0 && int(e.owner) != core) {
		var data [memsim.LineBytes]byte
		var tx bool
		haveRemote := false
		for o := 0; o < h.cfg.Cores; o++ {
			if o == core {
				continue
			}
			dirtyHere := false
			if c := h.l1[o].peek(la); c != nil {
				if c.dirty {
					data, tx, dirtyHere = c.data, c.tx, true
				}
				c.valid = false
			}
			if c := h.l2[o].peek(la); c != nil {
				if c.dirty && !dirtyHere {
					data, tx, dirtyHere = c.data, c.tx, true
				}
				c.valid = false
			}
			if others&(1<<uint(o)) != 0 {
				h.st.Invalidations++
			}
			if dirtyHere {
				haveRemote = true
			}
		}
		if haveRemote {
			// The remote dirty value moves into L3 so the fill below sees it.
			h.installL3(core, la, &data, true, tx, t)
		}
		e.sharers &= 1 << uint(core)
		if e.owner >= 0 && int(e.owner) != core {
			e.owner = -1
		}
		h.dirPut(la, e)
		t += h.cfg.CohLat
	}

	if c := h.l1[core].lookup(la); c != nil {
		h.st.CacheHits[0]++
		return c, t + h.cfg.L1Lat
	}
	h.st.CacheMisses[0]++
	if c := h.l2[core].lookup(la); c != nil {
		h.st.CacheHits[1]++
		// Copy out before installing — installL1's spill may clobber c
		// (see Load). Re-peek afterwards to clean the surviving L2 copy.
		data, wasDirty, wasTx := c.data, c.dirty, c.tx
		installed := h.installL1(core, la, &data, wasDirty, wasTx, t)
		if c2 := h.l2[core].peek(la); c2 != nil {
			c2.dirty = false // the L1 copy is now the freshest
		}
		return installed, t + h.cfg.L2Lat
	}
	h.st.CacheMisses[1]++
	data, done := h.fetchAuthority(core, la, t)
	h.installL2(core, la, &data, false, false, done)
	installed := h.installL1(core, la, &data, false, false, done)
	return installed, done
}

// Flush implements clwb: the most recent copy of pa's line (wherever it is)
// is written back to memory and all cached copies become clean; cached
// copies are retained. It reports whether a write actually happened and the
// completion time.
func (h *Hierarchy) flushLocked(core int, pa memsim.PAddr, at engine.Cycles, cat stats.WriteCat) (engine.Cycles, bool) {
	la := uint64(pa >> memsim.LineShift)
	var data *[memsim.LineBytes]byte
	e := h.dirGet(la)
	if e.owner >= 0 {
		o := int(e.owner)
		// Clean both private levels; L1 data wins over a stale dirty L2
		// copy (the L1 copy is always at least as fresh), and the fresh
		// value is propagated downward.
		if c := h.l1[o].peek(la); c != nil && c.dirty {
			data = &c.data
			c.dirty, c.tx = false, false
		}
		if c := h.l2[o].peek(la); c != nil {
			if data != nil {
				c.data = *data
			} else if c.dirty {
				data = &c.data
			}
			c.dirty, c.tx = false, false
		}
		e.owner = -1
		h.dirPut(la, e)
	}
	if c := h.l3.peek(la); c != nil {
		if data != nil {
			// Private copy is fresher; update L3's stale copy in place.
			c.data = *data
			c.dirty, c.tx = false, false
		} else if c.dirty {
			data = &c.data
			c.dirty, c.tx = false, false
		}
	}
	if data == nil {
		// No dirty CPU copy. A buffer tier below may still hold a dirty
		// absorbed copy; harden it so the caller's fence covers it.
		if done, wrote := h.mem.HardenLine(core, memsim.PAddr(la)<<memsim.LineShift, at, cat); wrote {
			return done, true
		}
		return at + h.cfg.L1Lat, false
	}
	done := h.mem.PersistLine(core, memsim.PAddr(la)<<memsim.LineShift, data[:], at, cat)
	return done, true
}

// MarkTx flags core's private copy of pa's line as speculative, keeping it
// pinned against eviction where possible (see victim). The line must be
// present (it was just stored to).
func (h *Hierarchy) markTxLocked(core int, pa memsim.PAddr) {
	la := uint64(pa >> memsim.LineShift)
	if c := h.l1[core].peek(la); c != nil {
		c.tx = true
	}
	if c := h.l2[core].peek(la); c != nil {
		c.tx = true
	}
}

// Retag implements SSP's line-level remap (Figure 4, steps 3-5): core's
// private copy of `from` is renamed to `to` without any write-back — the
// committed bytes of `from` stay untouched in NVRAM. Any stale cached
// copies of `to` are discarded. The caller must have loaded `from` (the
// committed copy) beforehand; Retag fetches it if needed. The renamed line
// is dirty and marked speculative.
func (h *Hierarchy) retagLocked(core int, from, to memsim.PAddr, at engine.Cycles) engine.Cycles {
	fla, tla := uint64(from>>memsim.LineShift), uint64(to>>memsim.LineShift)
	if fla == tla {
		panic("cachesim: Retag to the same line")
	}

	// A dirty non-speculative `from` copy holds data newer than NVRAM's
	// committed bytes (a non-transactional store); persist it first so the
	// rename cannot lose it (§3.2's "already been flushed" precondition).
	t := at
	if h.dirtyAnywhere(fla) {
		t, _ = h.flushLocked(core, from, t, stats.CatData)
	}

	// Fetch the committed line (shared) into this core's L1; only the L1
	// copy is renamed — clean copies of the committed data in L2/L3 and in
	// other cores remain valid for the `from` address (an abort flips the
	// current bit back and reads them again).
	var data [memsim.LineBytes]byte
	t = h.loadLocked(core, memsim.PAddr(fla)<<memsim.LineShift, data[:], t)
	if c := h.l1[core].peek(fla); c != nil {
		c.valid = false
	}
	h.dropSharerIfGone(core, fla)

	// Discard stale copies of `to` everywhere (they hold a dead speculative
	// or pre-previous-commit version; never dirty by protocol).
	h.discardLine(tla)

	h.l1[core].tick++
	v := h.l1[core].victim(tla)
	if v.valid {
		if v.dirty || h.l2[core].peek(v.tag) == nil {
			h.installL2(core, v.tag, &v.data, v.dirty, v.tx, t)
		}
		v.valid = false
	}
	*v = line{tag: tla, valid: true, dirty: true, tx: true, lru: h.l1[core].tick, data: data}
	h.dirPut(tla, dirEntry{sharers: 1 << uint(core), owner: int8(core)})
	return t
}

// discardLine invalidates every cached copy of la without write-back.
func (h *Hierarchy) discardLine(la uint64) {
	for o := 0; o < h.cfg.Cores; o++ {
		if c := h.l1[o].peek(la); c != nil {
			c.valid = false
		}
		if c := h.l2[o].peek(la); c != nil {
			c.valid = false
		}
	}
	if c := h.l3.peek(la); c != nil {
		c.valid = false
	}
	delete(h.dir, la)
}

// InjectLine updates every cached copy of pa's line in place with data the
// memory controller just wrote to NVRAM (cache injection, as DMA/DDIO
// engines do), leaving copies clean. Copies must not be dirty — the caller
// owns the line's coherence at this point. Absent lines are not installed.
func (h *Hierarchy) injectLineLocked(pa memsim.PAddr, data []byte) {
	la := uint64(pa >> memsim.LineShift)
	apply := func(c *line) {
		if c == nil {
			return
		}
		if c.dirty {
			panic(fmt.Sprintf("cachesim: InjectLine over a dirty copy of %#x", la))
		}
		copy(c.data[:], data[:memsim.LineBytes])
	}
	for o := 0; o < h.cfg.Cores; o++ {
		apply(h.l1[o].peek(la))
		apply(h.l2[o].peek(la))
	}
	apply(h.l3.peek(la))
	h.mem.InjectLine(memsim.PAddr(la)<<memsim.LineShift, data)
}

// InvalidateLine drops all cached copies of pa's line without writing back;
// used to squash speculative lines on abort.
func (h *Hierarchy) InvalidateLine(pa memsim.PAddr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.discardLine(uint64(pa >> memsim.LineShift))
}

// WritebackInvalidate persists the freshest copy of pa's line (if dirty) and
// drops all cached copies; used before page consolidation copies frames.
func (h *Hierarchy) WritebackInvalidate(pa memsim.PAddr, at engine.Cycles, cat stats.WriteCat) (engine.Cycles, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	done, wrote := h.flushLocked(0, pa, at, cat)
	h.discardLine(uint64(pa >> memsim.LineShift))
	return done, wrote
}

// dirtyAnywhere reports whether any cached copy of la is dirty, in the CPU
// hierarchy or absorbed in the buffer tier below it.
func (h *Hierarchy) dirtyAnywhere(la uint64) bool {
	e := h.dirGet(la)
	if e.owner >= 0 {
		return true
	}
	if c := h.l3.peek(la); c != nil && c.dirty {
		return true
	}
	return h.mem.DirtyLine(memsim.PAddr(la) << memsim.LineShift)
}

// DirtyAnywhere reports whether any cached copy of pa's line is dirty
// (test/assertion helper).
func (h *Hierarchy) DirtyAnywhere(pa memsim.PAddr) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dirtyAnywhere(uint64(pa >> memsim.LineShift))
}

// Present reports whether core holds pa's line privately (test helper).
func (h *Hierarchy) Present(core int, pa memsim.PAddr) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.privatePresent(core, uint64(pa>>memsim.LineShift))
}

// DebugPeek resolves the current value of pa's line without charging timing
// or mutating cache state: owner's private copy, else a dirty L3 copy, else
// durable memory. Test and assertion helper.
func (h *Hierarchy) debugPeekLocked(pa memsim.PAddr, buf []byte) {
	la := uint64(pa >> memsim.LineShift)
	off := int(pa & (memsim.LineBytes - 1))
	e := h.dirGet(la)
	if e.owner >= 0 {
		o := int(e.owner)
		if c := h.l1[o].peek(la); c != nil && c.dirty {
			copy(buf, c.data[off:])
			return
		}
		if c := h.l2[o].peek(la); c != nil && c.dirty {
			copy(buf, c.data[off:])
			return
		}
	}
	if c := h.l3.peek(la); c != nil && c.dirty {
		copy(buf, c.data[off:])
		return
	}
	h.mem.Peek(pa, buf)
}

// DebugValidate checks the coherence invariant: every valid cached copy of
// a line carries the authority value resolved by DebugPeek, and at most one
// core holds a dirty private copy. It returns a description of the first
// violation, or "". Test helper; O(total cache lines).
func (h *Hierarchy) DebugValidate() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var auth [memsim.LineBytes]byte
	check := func(where string, c *line) string {
		h.debugPeekLocked(memsim.PAddr(c.tag)<<memsim.LineShift, auth[:])
		if c.data != auth {
			return fmt.Sprintf("%s line %#x: copy %v != authority %v (dirty=%v)", where, c.tag, c.data[0], auth[0], c.dirty)
		}
		return ""
	}
	for core := range h.l1 {
		for _, lv := range []*level{h.l1[core], h.l2[core]} {
			for i := range lv.lines {
				c := &lv.lines[i]
				if !c.valid {
					continue
				}
				if c.dirty {
					e := h.dirGet(c.tag)
					if int(e.owner) != core {
						return fmt.Sprintf("core %d holds dirty %#x but dir owner is %d", core, c.tag, e.owner)
					}
				}
				if msg := check(fmt.Sprintf("core%d", core), c); msg != "" {
					return msg
				}
			}
		}
	}
	for i := range h.l3.lines {
		c := &h.l3.lines[i]
		if !c.valid {
			continue
		}
		// A stale L3 copy is legal while a dirty private owner shadows it;
		// every read path consults the owner first.
		if e := h.dirGet(c.tag); e.owner >= 0 {
			continue
		}
		if msg := check("L3", c); msg != "" {
			return msg
		}
	}
	return ""
}

// DropAll discards the entire volatile hierarchy: the moment of power loss.
func (h *Hierarchy) DropAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.l1 {
		h.l1[i].reset()
		h.l2[i].reset()
	}
	h.l3.reset()
	h.dir = make(map[uint64]dirEntry)
}

// FlushAll writes back every dirty line (orderly shutdown; test helper).
// The write-backs are independent, so each is issued from `at` and the
// fence waits for the slowest — the drain overlaps across memory banks and
// channels instead of serialising line by line.
func (h *Hierarchy) FlushAll(at engine.Cycles, cat stats.WriteCat) engine.Cycles {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := at
	flushLevel := func(l *level) {
		for i := range l.lines {
			c := &l.lines[i]
			if c.valid && c.dirty {
				d, _ := h.flushLocked(0, memsim.PAddr(c.tag)<<memsim.LineShift, at, cat)
				if d > t {
					t = d
				}
			}
		}
	}
	for i := range h.l1 {
		flushLevel(h.l1[i])
		flushLevel(h.l2[i])
	}
	flushLevel(h.l3)
	return t
}

// ---------------------------------------------------------------------------
// Public entry points: each takes the interconnect lock and delegates to the
// locked implementation above.

// Load reads len(buf) bytes at pa into buf and returns the completion time.
// The span must stay within one cache line.
func (h *Hierarchy) Load(core int, pa memsim.PAddr, buf []byte, at engine.Cycles) engine.Cycles {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.loadLocked(core, pa, buf, at)
}

// PeekLine copies the hierarchy's current value of the full line containing
// pa into buf (LineBytes) without advancing time or touching LRU, directory,
// or counter state, following the value-authority chain: a dirty private
// copy in the owning core's L1/L2, then a (possibly dirty) L3 copy. Returns
// false when no cached copy exists — the tier below is then authoritative.
// Quiescent-only (the machine's speculative-image seeding).
func (h *Hierarchy) PeekLine(pa memsim.PAddr, buf []byte) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	la := uint64(pa >> memsim.LineShift)
	e := h.dirGet(la)
	if e.owner >= 0 {
		o := int(e.owner)
		if c := h.l1[o].peek(la); c != nil && c.dirty {
			copy(buf, c.data[:])
			return true
		}
		if c := h.l2[o].peek(la); c != nil && c.dirty {
			copy(buf, c.data[:])
			return true
		}
	}
	if c := h.l3.peek(la); c != nil {
		copy(buf, c.data[:])
		return true
	}
	return false
}

// Store writes data at pa (within one line) into core's L1 with exclusive
// ownership (write-allocate) and returns the completion time. The data
// becomes durable only on write-back or Flush.
func (h *Hierarchy) Store(core int, pa memsim.PAddr, data []byte, at engine.Cycles) engine.Cycles {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.storeLocked(core, pa, data, at)
}

// Flush implements clwb: the most recent copy of pa's line (wherever it is)
// is written back to memory and all cached copies become clean; cached
// copies are retained. It reports whether a write actually happened and the
// completion time.
func (h *Hierarchy) Flush(core int, pa memsim.PAddr, at engine.Cycles, cat stats.WriteCat) (engine.Cycles, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.flushLocked(core, pa, at, cat)
}

// MarkTx flags core's private copy of pa's line as speculative, keeping it
// pinned against eviction where possible (see victim). The line must be
// present (it was just stored to).
func (h *Hierarchy) MarkTx(core int, pa memsim.PAddr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.markTxLocked(core, pa)
}

// Retag implements SSP's line-level remap (Figure 4, steps 3-5); see
// retagLocked for the protocol.
func (h *Hierarchy) Retag(core int, from, to memsim.PAddr, at engine.Cycles) engine.Cycles {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.retagLocked(core, from, to, at)
}

// InjectLine updates every cached copy of pa's line in place with data the
// memory controller just wrote to NVRAM (cache injection), leaving copies
// clean.
func (h *Hierarchy) InjectLine(pa memsim.PAddr, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.injectLineLocked(pa, data)
}

// DebugPeek resolves the current value of pa's line without charging timing
// or mutating cache state: owner's private copy, else a dirty L3 copy, else
// durable memory. Test and assertion helper.
func (h *Hierarchy) DebugPeek(pa memsim.PAddr, buf []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.debugPeekLocked(pa, buf)
}
