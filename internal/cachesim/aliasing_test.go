package cachesim

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
)

// Regression test for the install-aliasing bug: Load's L2-hit path passed a
// pointer into the L2 entry to installL1; installL1's spill could then pick
// that very entry as its L2 victim when every other way in the set was
// tx-pinned (the victim policy skips speculative lines), clobbering the
// source before the copy. With page-frame-aligned SSP traffic, every page's
// line-0 maps to the same few sets, so red-black-tree workloads hit this
// reliably at scale (found via the Figure 5b reproduction run).
func TestLoadL2HitSpillAliasingRegression(t *testing.T) {
	st := &stats.Stats{}
	mcfg := memsim.DefaultConfig()
	mcfg.DRAMBytes = 1 << 20
	mcfg.NVRAMBytes = 8 << 20
	mem := memsim.New(mcfg, st)
	// Tiny single-set caches so the scenario is forced: L1 = 2 ways,
	// L2 = 4 ways, all lines in one set.
	h := New(Config{
		Cores:   1,
		L1Bytes: 128, L1Ways: 2, L1Lat: 4,
		L2Bytes: 256, L2Ways: 4, L2Lat: 6,
		L3Bytes: 1 << 10, L3Ways: 4, L3Lat: 27,
		CohLat: 20,
	}, mem, st)

	base := mcfg.NVRAMBase
	la := func(i int) memsim.PAddr { return base + memsim.PAddr(i)*memsim.LineBytes }
	val := func(i int) byte { return byte(0x10 + i) }
	for i := 0; i < 12; i++ {
		mem.Poke(la(i), []byte{val(i)})
	}

	// Target line T: load it so it sits in L1+L2, then push it out of L1
	// (but not L2) with other loads.
	buf := make([]byte, 1)
	h.Load(0, la(0), buf, 0)

	// Create tx-pinned dirty lines via Retag (committed pairs 8..11 remap
	// to 4..7): they fill L1 and spill into L2, pinning its ways.
	for i := 0; i < 3; i++ {
		h.Retag(0, la(8+i), la(4+i), 0)
		h.Store(0, la(4+i), []byte{0xAA}, 0)
	}

	// Now T is (at most) in L2 with the other ways tx-pinned. The L2-hit
	// load must still return T's value, and keep returning it.
	h.Load(0, la(0), buf, 0)
	if buf[0] != val(0) {
		t.Fatalf("L2-hit load returned %#x, want %#x (source clobbered by spill)", buf[0], val(0))
	}
	h.Load(0, la(0), buf, 0)
	if buf[0] != val(0) {
		t.Fatalf("reload returned %#x, want %#x", buf[0], val(0))
	}
	// The tx lines must still carry their speculative data.
	for i := 0; i < 3; i++ {
		h.Load(0, la(4+i), buf, 0)
		if buf[0] != 0xAA {
			t.Fatalf("speculative line %d lost: %#x", i, buf[0])
		}
	}
	if msg := h.DebugValidate(); msg != "" {
		t.Fatalf("coherence violation: %s", msg)
	}
}

// TestRetagChurnTinyCaches hammers the exact traffic shape that exposed the
// bug: many pages' line-0 addresses (which share cache sets) alternately
// retagged, stored, flushed and re-read, with a reference model.
func TestRetagChurnTinyCaches(t *testing.T) {
	for _, seed := range []uint64{1, 7, 0xE0} {
		st := &stats.Stats{}
		mcfg := memsim.DefaultConfig()
		mcfg.DRAMBytes = 1 << 20
		mcfg.NVRAMBytes = 8 << 20
		mem := memsim.New(mcfg, st)
		h := New(Config{
			Cores:   1,
			L1Bytes: 512, L1Ways: 2, L1Lat: 4,
			L2Bytes: 1 << 10, L2Ways: 4, L2Lat: 6,
			L3Bytes: 4 << 10, L3Ways: 4, L3Lat: 27,
			CohLat: 20,
		}, mem, st)
		rng := engine.NewRNG(seed)
		base := mcfg.NVRAMBase

		// 24 "pages": page i has side-0 frame at i*2, side-1 at i*2+1;
		// only line 0 of each page is used, as the hot-header pattern does.
		const pages = 24
		side := make([]int, pages)
		ref := make([]byte, pages)
		frame := func(p, s int) memsim.PAddr {
			return base + memsim.PAddr(p*2+s)*memsim.PageBytes
		}
		buf := make([]byte, 1)
		for op := 0; op < 4000; op++ {
			p := rng.Intn(pages)
			switch rng.Intn(3) {
			case 0: // committed update: read, retag, store, flush
				h.Load(0, frame(p, side[p]), buf, 0)
				if buf[0] != ref[p] {
					t.Fatalf("seed %d op %d: page %d read %#x want %#x", seed, op, p, buf[0], ref[p])
				}
				from, to := frame(p, side[p]), frame(p, 1-side[p])
				h.Retag(0, from, to, 0)
				v := byte(rng.Intn(255) + 1)
				h.Store(0, to, []byte{v}, 0)
				h.Flush(0, to, 0, stats.CatData)
				ref[p] = v
				side[p] = 1 - side[p]
			case 1: // plain read
				h.Load(0, frame(p, side[p]), buf, 0)
				if buf[0] != ref[p] {
					t.Fatalf("seed %d op %d: page %d read %#x want %#x", seed, op, p, buf[0], ref[p])
				}
			case 2: // aborted update
				h.Load(0, frame(p, side[p]), buf, 0)
				h.Retag(0, frame(p, side[p]), frame(p, 1-side[p]), 0)
				h.Store(0, frame(p, 1-side[p]), []byte{0xEE}, 0)
				h.InvalidateLine(frame(p, 1-side[p]))
			}
		}
		for p := 0; p < pages; p++ {
			h.Load(0, frame(p, side[p]), buf, 0)
			if buf[0] != ref[p] {
				t.Fatalf("seed %d final: page %d read %#x want %#x", seed, p, buf[0], ref[p])
			}
		}
	}
}
