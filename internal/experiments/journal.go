package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/workload"
	"repro/ssp"
)

// This file is the journal-sharding experiment (beyond the paper): it
// sweeps the SSP metadata journal's shard count against the core count to
// show where the shared journal stops being the Amdahl term. With one shard
// every commit's record batch and tail-line flush serialises on a single
// journal bank; with per-core shards the appends spread over independent
// rings (and banks) and the remaining coupling is genuine data sharing.

// JournalPoint is one (shards, cores) cell of the sweep.
type JournalPoint struct {
	Shards   int
	Cores    int
	Serial   workload.Result         // 1-core serial baseline, same shard count
	Parallel workload.ParallelResult // cores-goroutine concurrent run
	Speedup  float64                 // parallel committed TPS / serial committed TPS
}

// JournalSweep runs kind under SSP for every shards × cores combination.
// Each shard count gets its own 1-core serial baseline so the speedup
// isolates concurrency, not the shard count itself (at one core the shard
// count is nearly irrelevant: a single core only ever appends to one
// shard).
func JournalSweep(sc Scale, kind workload.Kind, channels int, shardsList, coresList []int) []JournalPoint {
	var points []JournalPoint
	for _, shards := range shardsList {
		p := sc.params(kind, ssp.SSP, 1)
		p.Machine.Channels = channels
		p.Machine.JournalShards = shards
		serial := workload.Run(p)
		sTPS := CommittedTPS(serial.Cycles, serial)
		for _, cores := range coresList {
			pp := sc.params(kind, ssp.SSP, cores)
			pp.Machine.Channels = channels
			pp.Machine.JournalShards = shards
			par := workload.RunParallel(pp)
			pt := JournalPoint{
				Shards:   shards,
				Cores:    cores,
				Serial:   serial,
				Parallel: par,
			}
			if sTPS > 0 {
				pt.Speedup = CommittedTPS(par.Cycles, par.Result) / sTPS
			}
			points = append(points, pt)
		}
	}
	return points
}

// RenderJournal formats the sweep: one row per shard count with committed
// TPS and speedup at every core count, then each parallel cell's journal
// pressure — per-shard record counts, ring fill, checkpoints — and the
// fraction of the window the NVRAM banks spent absorbing journal records.
func RenderJournal(points []JournalPoint) string {
	if len(points) == 0 {
		return ""
	}
	rowKeys, coresList, cellOf := gridAxes(points, func(pt JournalPoint) (int, int) { return pt.Shards, pt.Cores })
	var b strings.Builder
	b.WriteString(renderSweepGrid("shards", rowKeys, coresList, func(row, cores int) (sweepCell, bool) {
		pt, ok := cellOf(row, cores)
		if !ok {
			return sweepCell{}, false
		}
		return sweepCell{
			Serial:  CommittedTPS(pt.Serial.Cycles, pt.Serial),
			TPS:     CommittedTPS(pt.Parallel.Cycles, pt.Parallel.Result),
			Speedup: pt.Speedup,
		}, true
	}))
	b.WriteString("\njournal pressure (parallel windows):\n")
	for _, sh := range rowKeys {
		for _, c := range coresList {
			pt, ok := cellOf(sh, c)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "  %dsh x %dcore: %s\n", sh, c, JournalPressureLine(pt.Parallel.Result))
		}
	}
	return b.String()
}

// JournalPressureLine summarises a run's SSP journal pressure in one line:
// per-shard records / ring fill / checkpoints, and the share of the
// measured window the NVRAM banks spent on metadata-journal writes (the
// serial-append bottleneck made visible).
func JournalPressureLine(res workload.Result) string {
	if len(res.Journal) == 0 {
		return "no journal (non-SSP backend)"
	}
	var b strings.Builder
	for _, p := range res.Journal {
		fmt.Fprintf(&b, "s%d %drec %4.1f%%fill %dckpt  ", p.Shard, p.Records, 100*p.FillFrac(), p.Checkpoints)
	}
	busy := res.Stats.NVRAMBankBusy[stats.CatMetaJournal]
	if res.Cycles > 0 {
		fmt.Fprintf(&b, "| journal bank busy %d cycles (%.1f%% of window)",
			busy, 100*float64(busy)/float64(res.Cycles))
	} else {
		fmt.Fprintf(&b, "| journal bank busy %d cycles", busy)
	}
	return b.String()
}
