package experiments

import (
	"fmt"
	"math"

	"repro/internal/workload"
	"repro/ssp"
)

func mathPow(x, e float64) float64 { return math.Pow(x, e) }

// ---------------------------------------------------------------------------
// Figure 8 — sensitivity to NVRAM latency (×1..×9 of DRAM latency).

// Fig8Point is one (workload, latency multiple) sample of absolute TPS.
type Fig8Point struct {
	Kind     workload.Kind
	Multiple int
	TPS      map[ssp.Backend]float64 // absolute transactions/second
}

// Fig8 sweeps NVRAM latency for RBTree-Rand and BTree-Rand (the paper's two
// representative workloads). NVRAM read and write are both set to
// multiple×50 ns (see DESIGN.md §5 for the x-axis interpretation).
func Fig8(sc Scale) []Fig8Point {
	var out []Fig8Point
	for _, k := range []workload.Kind{workload.RBTreeRand, workload.BTreeRand} {
		for _, mult := range []int{1, 3, 5, 7, 9} {
			pt := Fig8Point{Kind: k, Multiple: mult, TPS: map[ssp.Backend]float64{}}
			for _, b := range ssp.Backends() {
				p := sc.params(k, b, 1)
				p.Machine.NVRAMReadNS = float64(mult) * 50
				p.Machine.NVRAMWriteNS = float64(mult) * 50
				pt.TPS[b] = workload.Run(p).TPS
			}
			out = append(out, pt)
		}
	}
	return out
}

// RenderFig8 formats the latency sweep as TPS(K), one block per workload.
func RenderFig8(points []Fig8Point) string {
	out := ""
	var last workload.Kind = -1
	for _, pt := range points {
		if pt.Kind != last {
			if last >= 0 {
				out += "\n"
			}
			out += fmt.Sprintf("%s: TPS(K) vs NVRAM latency (multiple of DRAM)\n", pt.Kind)
			out += fmt.Sprintf("%-6s %10s %10s %10s\n", "x", "UNDO-LOG", "REDO-LOG", "SSP")
			last = pt.Kind
		}
		out += fmt.Sprintf("x%-5d %10.1f %10.1f %10.1f\n",
			pt.Multiple,
			pt.TPS[ssp.UndoLog]/1e3, pt.TPS[ssp.RedoLog]/1e3, pt.TPS[ssp.SSP]/1e3)
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 9 — sensitivity to the SSP cache latency.

// Fig9Point is one (workload, latency) sample of SSP's speedup over
// REDO-LOG.
type Fig9Point struct {
	Kind    workload.Kind
	Latency int // cycles
	Speedup float64
}

// Fig9 sweeps the SSP cache access latency from 20 to 180 cycles across all
// seven microbenchmarks, reporting speedup over REDO-LOG (the paper's
// y-axis).
func Fig9(sc Scale) []Fig9Point {
	// REDO-LOG baseline is latency-independent; run it once per workload.
	redo := map[workload.Kind]float64{}
	for _, k := range workload.Micro() {
		redo[k] = workload.Run(sc.params(k, ssp.RedoLog, 1)).TPS
	}
	var out []Fig9Point
	for _, k := range workload.Micro() {
		for lat := 20; lat <= 180; lat += 40 {
			p := sc.params(k, ssp.SSP, 1)
			p.Machine.SSPCacheLatency = ssp.Cycles(lat)
			tps := workload.Run(p).TPS
			out = append(out, Fig9Point{Kind: k, Latency: lat, Speedup: tps / redo[k]})
		}
	}
	return out
}

// RenderFig9 formats the SSP-cache latency sweep.
func RenderFig9(points []Fig9Point) string {
	// Collect latencies in order.
	var lats []int
	seen := map[int]bool{}
	for _, pt := range points {
		if !seen[pt.Latency] {
			seen[pt.Latency] = true
			lats = append(lats, pt.Latency)
		}
	}
	out := "speedup over REDO-LOG vs SSP-cache latency (cycles)\n"
	out += fmt.Sprintf("%-12s", "Workload")
	for _, l := range lats {
		out += fmt.Sprintf(" %7d", l)
	}
	out += "\n"
	for _, k := range workload.Micro() {
		out += fmt.Sprintf("%-12s", k)
		for _, l := range lats {
			for _, pt := range points {
				if pt.Kind == k && pt.Latency == l {
					out += fmt.Sprintf(" %7.2f", pt.Speedup)
				}
			}
		}
		out += "\n"
	}
	return out
}

// ---------------------------------------------------------------------------
// Tables 4 and 5 — real workloads.

// Table45Row carries one real workload's speedups and write savings.
type Table45Row struct {
	Kind workload.Kind
	// SpeedupOver[b] = TPS(SSP)/TPS(b) - 1, in percent (Table 4).
	SpeedupOver map[ssp.Backend]float64
	// SavingOver[b] = 1 - writes(SSP)/writes(b), in percent (Table 5).
	SavingOver map[ssp.Backend]float64
}

// Table45 runs Memcached and Vacation with four clients.
func Table45(sc Scale) []Table45Row {
	var rows []Table45Row
	for _, k := range workload.Real() {
		row := runAll(sc, k, 4, nil)
		r := Table45Row{Kind: k, SpeedupOver: map[ssp.Backend]float64{}, SavingOver: map[ssp.Backend]float64{}}
		sspRes := row.Results[ssp.SSP]
		sspW := func() float64 { st := sspRes.Stats; return float64(st.TotalWriteBytes()) }()
		for _, b := range []ssp.Backend{ssp.UndoLog, ssp.RedoLog} {
			base := row.Results[b]
			r.SpeedupOver[b] = 100 * (sspRes.TPS/base.TPS - 1)
			baseW := func() float64 { st := base.Stats; return float64(st.TotalWriteBytes()) }()
			r.SavingOver[b] = 100 * (1 - sspW/baseW)
		}
		rows = append(rows, r)
	}
	return rows
}

// RenderTable4 formats the performance-improvement table.
func RenderTable4(rows []Table45Row) string {
	out := "SSP performance improvement over (Table 4)\n"
	out += fmt.Sprintf("%-12s %10s %10s\n", "", "UNDO-LOG", "REDO-LOG")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %9.0f%% %9.0f%%\n", r.Kind, r.SpeedupOver[ssp.UndoLog], r.SpeedupOver[ssp.RedoLog])
	}
	return out
}

// RenderTable5 formats the write-saving table.
func RenderTable5(rows []Table45Row) string {
	out := "SSP write-traffic saving over (Table 5)\n"
	out += fmt.Sprintf("%-12s %10s %10s\n", "", "UNDO-LOG", "REDO-LOG")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %9.0f%% %9.0f%%\n", r.Kind, r.SavingOver[ssp.UndoLog], r.SavingOver[ssp.RedoLog])
	}
	return out
}
