package experiments

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/workload"
	"repro/ssp"
)

// This file is the software wear-leveling experiment (beyond the paper,
// SoftWear-style): a skewed write-heavy serve mix concentrates NVRAM writes
// on the hot keys' frames, and the per-frame write counters (memsim) expose
// the imbalance as max/mean skew. With ssp.Config.WearRotateWrites set, page
// consolidation retires frames whose cumulative write count crossed the
// threshold, so the same mix spreads its writes across the pool and the
// skew drops.

// WearPoint is one rotation-threshold cell of the sweep; Threshold 0 is the
// unrotated baseline.
type WearPoint struct {
	Threshold int
	Res       workload.ParallelResult

	Max       uint64  // hottest frame's write count
	Mean      float64 // mean writes over frames written at least once
	Skew      float64 // max / mean
	Rotations uint64
}

// wearServeParams is the wear mix: hot-key-dominated and write-heavy, so a
// few frames soak up most data writes.
func (sc Scale) wearServeParams(cores int, threshold int) workload.ServeParams {
	return workload.ServeParams{
		Backend: ssp.SSP,
		Clients: cores,
		Ops:     sc.Ops,
		Items:   sc.Items,
		Skew:    1.2,
		ReadPct: 10,
		Seed:    sc.Seed,
		// Rotation piggybacks on consolidation, and a page only consolidates
		// once it has left the TLB hierarchy. A tiny TLB (16 entries, no
		// STLB) cycles even the hot pages through consolidation, so the
		// policy gets to see every frame's wear.
		Machine: ssp.Config{Channels: 4, TLBEntries: 16, STLBEntries: -1, WearRotateWrites: threshold},
	}
}

// WearThresholds returns the default rotation-threshold sweep in per-frame
// write counts.
func WearThresholds() []int { return []int{256, 64} }

// WearSweep runs the wear mix unrotated, then once per threshold.
func WearSweep(sc Scale, cores int, thresholds []int) []WearPoint {
	points := []WearPoint{makeWearPoint(0, workload.RunServe(sc.wearServeParams(cores, 0)))}
	for _, thr := range thresholds {
		points = append(points, makeWearPoint(thr, workload.RunServe(sc.wearServeParams(cores, thr))))
	}
	return points
}

func makeWearPoint(threshold int, res workload.ParallelResult) WearPoint {
	pt := WearPoint{Threshold: threshold, Res: res, Max: res.Stats.FrameWriteMax, Rotations: res.Stats.WearRotations}
	if res.Stats.FramesWritten > 0 {
		pt.Mean = float64(res.Stats.FrameWriteTotal) / float64(res.Stats.FramesWritten)
	}
	if pt.Mean > 0 {
		pt.Skew = float64(pt.Max) / pt.Mean
	}
	return pt
}

// RenderWear formats the sweep: per threshold, the frames touched, the
// write-count max/mean/skew, and the rotations paid for the leveling.
func RenderWear(points []WearPoint) string {
	if len(points) == 0 {
		return ""
	}
	header := []string{"threshold", "frames written", "max writes", "mean writes", "skew(max/mean)", "rotations", "cTPS"}
	var body [][]string
	for _, pt := range points {
		thr := "off"
		if pt.Threshold > 0 {
			thr = fmt.Sprintf("%d", pt.Threshold)
		}
		body = append(body, []string{
			thr,
			fmt.Sprintf("%d", pt.Res.Stats.FramesWritten),
			fmt.Sprintf("%d", pt.Max),
			fmt.Sprintf("%.1f", pt.Mean),
			fmt.Sprintf("%.2f", pt.Skew),
			fmt.Sprintf("%d", pt.Rotations),
			fmt.Sprintf("%.0f", pt.Res.CommittedTPS),
		})
	}
	return stats.Table(header, body)
}
