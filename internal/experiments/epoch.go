package experiments

import (
	"fmt"
	"strings"

	"repro/internal/workload"
	"repro/ssp"
)

// This file is the relaxed-durability epoch experiment (beyond the paper):
// it sweeps the epoch length (ssp.Config.DurabilityEpoch) against the core
// count on the single-journal-shard real-workload mixes — the same machine
// shapes as the commit-path sweep's shared-journal rows, so the epoch rows
// compose directly with that experiment's baseline. Epoch 0 is the paper's
// synchronous model (every commit waits for its journal flush); each longer
// epoch amortises more commits per seal-and-flush, shrinking the
// commit-barrier share of machine time and opening a committed-vs-durable
// throughput spread (acknowledged TPS over the ack window vs durable TPS
// through the closing drain). The price is bounded staleness, measured here
// as the mean harden lag (cycles from an epoch's first relaxed commit to
// its seal's durability, Stats.EpochHardenLag / Stats.HardenedEpochs).

// EpochPoint is one (epoch, cores) cell of a mix's sweep.
type EpochPoint struct {
	Kind     workload.Kind
	Epoch    int // DurabilityEpoch in cycles; 0 = synchronous
	Cores    int
	Parallel workload.ParallelResult
	BaseTPS  float64 // committed TPS of the same-core epoch-0 run
}

// EpochMix names one workload mix of the sweep with its machine shape. The
// defaults mirror the commit-path sweep's shared-journal mixes: one journal
// shard, so every core contends on the ring the epoch engine batches.
type EpochMix struct {
	Kind     workload.Kind
	Shards   int
	Channels int
}

// EpochMixes returns the default mixes (see the file comment).
func EpochMixes() []EpochMix {
	return []EpochMix{
		{Kind: workload.Memcached, Shards: 1, Channels: 4},
		{Kind: workload.Vacation, Shards: 1, Channels: 4},
	}
}

// EpochLengths returns the default epoch sweep: synchronous, then roughly
// 2, 10 and 50 transactions per epoch at the simulator's ~10k cycles per
// real-workload transaction.
func EpochLengths() []int { return []int{0, 20000, 100000, 500000} }

// EpochSweep runs one mix under SSP for every epoch length × core count.
// Epoch 0 runs synchronously (Params.Relaxed off) and anchors BaseTPS.
func EpochSweep(sc Scale, mix EpochMix, epochs, coresList []int) []EpochPoint {
	base := map[int]float64{} // cores -> epoch-0 committed TPS
	var points []EpochPoint
	for _, ep := range epochs {
		for _, cores := range coresList {
			p := sc.params(mix.Kind, ssp.SSP, cores)
			p.Machine.Channels = mix.Channels
			p.Machine.JournalShards = mix.Shards
			p.Machine.DurabilityEpoch = ep
			p.Relaxed = ep > 0
			par := workload.RunParallel(p)
			if ep == 0 {
				base[cores] = par.CommittedTPS
			}
			points = append(points, EpochPoint{
				Kind:     mix.Kind,
				Epoch:    ep,
				Cores:    cores,
				Parallel: par,
				BaseTPS:  base[cores],
			})
		}
	}
	return points
}

// MeanHardenLag returns the mean cycles from an epoch's first relaxed
// commit to its seal's durability (0 when the run hardened no open epoch).
func MeanHardenLag(st ssp.Stats) float64 {
	if st.HardenedEpochs == 0 {
		return 0
	}
	return float64(st.EpochHardenLag) / float64(st.HardenedEpochs)
}

// RenderEpoch formats one mix's sweep: a row per epoch length and core
// count with acknowledged (committed) and durable TPS, the change against
// the synchronous run at the same core count, the commit-barrier share of
// machine time, and the epoch engine's own accounting (seals, hardened
// epochs, mean harden lag).
func RenderEpoch(points []EpochPoint) string {
	if len(points) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %12s %12s %8s %9s %8s %10s %10s\n",
		"epoch", "cores", "ackTPS", "durTPS", "vs sync", "barrier", "seals", "hardened", "lag(cyc)")
	for _, pt := range points {
		st := pt.Parallel.Stats
		delta := "-"
		if pt.Epoch > 0 && pt.BaseTPS > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(pt.Parallel.CommittedTPS/pt.BaseTPS-1))
		}
		epoch := "sync"
		if pt.Epoch > 0 {
			epoch = fmt.Sprintf("%d", pt.Epoch)
		}
		fmt.Fprintf(&b, "%-10s %-6d %12.0f %12.0f %8s %8.1f%% %8d %10d %10.0f\n",
			epoch, pt.Cores, pt.Parallel.CommittedTPS, pt.Parallel.TPS, delta,
			100*BarrierWaitShare(pt.Parallel, pt.Cores),
			st.EpochSeals, st.HardenedEpochs, MeanHardenLag(st))
	}
	return b.String()
}
