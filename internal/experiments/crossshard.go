package experiments

import (
	"fmt"
	"strings"

	"repro/internal/workload"
	"repro/ssp"
)

// This file is the cross-shard transaction experiment (beyond the paper):
// it sweeps the global-transaction fraction of the MemcachedCross and
// VacationCross mixes against the core count on a multi-shard SSP machine,
// showing what distributed commits over multiple arenas cost the sharded
// metadata journal. Every global commit pays prepare records in 2-4
// participant shards plus one coordinator end record, so the per-commit
// journal traffic — and the shard-lock coupling — grows with the cross
// fraction; at fraction 0 the mix degenerates to the all-local PR 3
// behaviour.

// CrossPoint is one (cross-fraction, cores) cell of the sweep.
type CrossPoint struct {
	CrossPct int
	Cores    int
	Base     workload.ParallelResult // 1-core run, same fraction (all-local: one client has no peers)
	Parallel workload.ParallelResult // cores-goroutine concurrent run
	Speedup  float64                 // parallel committed TPS / 1-core committed TPS
}

// CrossShardSweep runs kind (MemcachedCross or VacationCross) under SSP for
// every crossPct × cores combination, on `shards` journal shards and
// `channels` memory channels. The 1-core baseline uses the parallel driver
// too (the cross kinds shard state per client), so the speedup isolates
// concurrency.
func CrossShardSweep(sc Scale, kind workload.Kind, channels, shards int, fracs, coresList []int) []CrossPoint {
	var points []CrossPoint
	// One shared 1-core baseline: with a single client the mixes have no
	// peers to span, so the cross fraction cannot change the run.
	p := sc.params(kind, ssp.SSP, 1)
	p.Machine.Channels = channels
	p.Machine.JournalShards = shards
	base := workload.RunParallel(p)
	bTPS := CommittedTPS(base.Cycles, base.Result)
	for _, frac := range fracs {
		for _, cores := range coresList {
			pp := sc.params(kind, ssp.SSP, cores)
			pp.CrossPct = frac
			pp.Machine.Channels = channels
			pp.Machine.JournalShards = shards
			par := workload.RunParallel(pp)
			pt := CrossPoint{
				CrossPct: frac,
				Cores:    cores,
				Base:     base,
				Parallel: par,
			}
			if bTPS > 0 {
				pt.Speedup = CommittedTPS(par.Cycles, par.Result) / bTPS
			}
			points = append(points, pt)
		}
	}
	return points
}

// RenderCrossShard formats the sweep: one row per cross fraction with
// committed TPS and speedup at every core count, then each parallel cell's
// distributed-commit traffic (global commits, prepare records, rolled-up
// commit-barrier wait) and journal pressure.
func RenderCrossShard(points []CrossPoint) string {
	if len(points) == 0 {
		return ""
	}
	rowKeys, coresList, cellOf := gridAxes(points, func(pt CrossPoint) (int, int) { return pt.CrossPct, pt.Cores })
	var b strings.Builder
	b.WriteString(renderSweepGrid("cross%", rowKeys, coresList, func(row, cores int) (sweepCell, bool) {
		pt, ok := cellOf(row, cores)
		if !ok {
			return sweepCell{}, false
		}
		return sweepCell{
			Serial:  CommittedTPS(pt.Base.Cycles, pt.Base.Result),
			TPS:     CommittedTPS(pt.Parallel.Cycles, pt.Parallel.Result),
			Speedup: pt.Speedup,
		}, true
	}))
	b.WriteString("\ndistributed-commit traffic (parallel windows):\n")
	for _, frac := range rowKeys {
		for _, c := range coresList {
			pt, ok := cellOf(frac, c)
			if !ok {
				continue
			}
			st := pt.Parallel.Stats
			globalShare := 0.0
			if st.Commits > 0 {
				globalShare = 100 * float64(st.GlobalCommits) / float64(st.Commits)
			}
			barrierPct := 0.0
			if pt.Parallel.Cycles > 0 {
				barrierPct = 100 * float64(st.CommitBarrierWait) / float64(uint64(pt.Parallel.Cycles)*uint64(c))
			}
			fmt.Fprintf(&b, "  %d%% x %dcore: %d global commits (%.1f%% of commits), %d prepare records, barrier wait %.1f%% of core-cycles\n",
				frac, c, st.GlobalCommits, globalShare, st.PrepareRecords, barrierPct)
			fmt.Fprintf(&b, "    journal: %s\n", JournalPressureLine(pt.Parallel.Result))
		}
	}
	return b.String()
}
