package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/workload"
	"repro/ssp"
)

// This file is the multi-channel scaling experiment (beyond the paper): it
// sweeps the memory-channel count against the core count to show where the
// concurrent engine stops being bandwidth-bound. On one channel every
// 64-byte transfer serialises on a single bus and 4-core speedup saturates
// around 1.4×; with the interleaved multi-channel model the same SSP write
// savings translate into near-linear multi-core scaling.

// ChannelPoint is one (channels, cores) cell of the sweep.
type ChannelPoint struct {
	Channels int
	Cores    int
	Serial   workload.Result         // 1-core serial baseline, same channel count
	Parallel workload.ParallelResult // cores-goroutine concurrent run
	Speedup  float64                 // parallel committed TPS / serial committed TPS
	Util     []float64               // per-channel bus utilization of the parallel window
}

// ChannelSweep runs kind under backend b for every channels × cores
// combination. Each channel count gets its own 1-core serial baseline so the
// speedup isolates concurrency, not the channel count itself.
func ChannelSweep(sc Scale, kind workload.Kind, b ssp.Backend, channelsList, coresList []int) []ChannelPoint {
	var points []ChannelPoint
	for _, ch := range channelsList {
		p := sc.params(kind, b, 1)
		p.Machine.Channels = ch
		serial := workload.Run(p)
		sTPS := CommittedTPS(serial.Cycles, serial)
		for _, cores := range coresList {
			pp := sc.params(kind, b, cores)
			pp.Machine.Channels = ch
			par := workload.RunParallel(pp)
			pt := ChannelPoint{
				Channels: ch,
				Cores:    cores,
				Serial:   serial,
				Parallel: par,
				Util:     channelUtil(par, ch),
			}
			if sTPS > 0 {
				pt.Speedup = CommittedTPS(par.Cycles, par.Result) / sTPS
			}
			points = append(points, pt)
		}
	}
	return points
}

// channelUtil derives per-channel bus utilization from the run's aggregated
// occupancy counters and the measured window's elapsed cycles, clamped to
// [0,1] (the counters charge every transfer, including any a straggler core
// got past the occupancy wheel's horizon).
func channelUtil(par workload.ParallelResult, channels int) []float64 {
	out := make([]float64, channels)
	if par.Cycles <= 0 {
		return out
	}
	for i := 0; i < channels && i < stats.MaxChannels; i++ {
		out[i] = float64(par.Stats.ChannelBusyCycles[i]) / float64(par.Cycles)
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out
}

// RenderChannels formats the sweep: one row per channel count with the
// committed TPS and speedup at every core count, then the per-channel bus
// utilization of each cell's parallel window.
func RenderChannels(points []ChannelPoint) string {
	if len(points) == 0 {
		return ""
	}
	rowKeys, coresList, cellOf := gridAxes(points, func(pt ChannelPoint) (int, int) { return pt.Channels, pt.Cores })
	var b strings.Builder
	b.WriteString(renderSweepGrid("channels", rowKeys, coresList, func(row, cores int) (sweepCell, bool) {
		pt, ok := cellOf(row, cores)
		if !ok {
			return sweepCell{}, false
		}
		return sweepCell{
			Serial:  CommittedTPS(pt.Serial.Cycles, pt.Serial),
			TPS:     CommittedTPS(pt.Parallel.Cycles, pt.Parallel.Result),
			Speedup: pt.Speedup,
		}, true
	}))
	b.WriteString("\nper-channel bus utilization (parallel windows):\n")
	for _, ch := range rowKeys {
		for _, c := range coresList {
			pt, ok := cellOf(ch, c)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "  %dch x %dcore:", ch, c)
			for _, u := range pt.Util {
				fmt.Fprintf(&b, " %4.1f%%", 100*u)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// sweepCell is one (row, cores) measurement of a scaling sweep grid.
type sweepCell struct {
	Serial  float64 // 1-core serial committed TPS for the row's config
	TPS     float64 // parallel committed TPS
	Speedup float64
}

// gridAxes collects a sweep's distinct row keys and core counts in
// first-appearance order, plus a cell lookup by (rowKey, cores).
func gridAxes[P any](points []P, axes func(P) (rowKey, cores int)) (rowKeys, coresList []int, cellOf func(row, cores int) (P, bool)) {
	seenRow, seenCore := map[int]bool{}, map[int]bool{}
	cells := map[[2]int]P{}
	for _, pt := range points {
		r, c := axes(pt)
		if !seenRow[r] {
			seenRow[r] = true
			rowKeys = append(rowKeys, r)
		}
		if !seenCore[c] {
			seenCore[c] = true
			coresList = append(coresList, c)
		}
		if _, ok := cells[[2]int{r, c}]; !ok {
			cells[[2]int{r, c}] = pt
		}
	}
	return rowKeys, coresList, func(row, cores int) (P, bool) {
		pt, ok := cells[[2]int{row, cores}]
		return pt, ok
	}
}

// renderSweepGrid formats the channels×cores / shards×cores committed-TPS
// tables: one row per key, a serial-baseline column, then per-core
// "cTPS (speedup)" columns; missing cells print "-".
func renderSweepGrid(rowHeader string, rowKeys, coresList []int, cell func(row, cores int) (sweepCell, bool)) string {
	header := []string{rowHeader, "serial-1 cTPS"}
	for _, c := range coresList {
		header = append(header, fmt.Sprintf("%d-core cTPS (speedup)", c))
	}
	var body [][]string
	for _, rk := range rowKeys {
		serial := "-"
		if c0, ok := cell(rk, coresList[0]); ok {
			serial = fmt.Sprintf("%.0f", c0.Serial)
		}
		row := []string{fmt.Sprintf("%d", rk), serial}
		for _, c := range coresList {
			sc, ok := cell(rk, c)
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.0f (%.2fx)", sc.TPS, sc.Speedup))
		}
		body = append(body, row)
	}
	return stats.Table(header, body)
}

// SweepPowersOfTwo returns 1, 2, 4, ... up to and including max (plus max
// itself when it is not a power of two).
func SweepPowersOfTwo(max int) []int {
	if max < 1 {
		return []int{1}
	}
	var out []int
	for v := 1; v <= max; v *= 2 {
		out = append(out, v)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
