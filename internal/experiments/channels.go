package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/workload"
	"repro/ssp"
)

// This file is the multi-channel scaling experiment (beyond the paper): it
// sweeps the memory-channel count against the core count to show where the
// concurrent engine stops being bandwidth-bound. On one channel every
// 64-byte transfer serialises on a single bus and 4-core speedup saturates
// around 1.4×; with the interleaved multi-channel model the same SSP write
// savings translate into near-linear multi-core scaling.

// ChannelPoint is one (channels, cores) cell of the sweep.
type ChannelPoint struct {
	Channels int
	Cores    int
	Serial   workload.Result         // 1-core serial baseline, same channel count
	Parallel workload.ParallelResult // cores-goroutine concurrent run
	Speedup  float64                 // parallel committed TPS / serial committed TPS
	Util     []float64               // per-channel bus utilization of the parallel window
}

// ChannelSweep runs kind under backend b for every channels × cores
// combination. Each channel count gets its own 1-core serial baseline so the
// speedup isolates concurrency, not the channel count itself.
func ChannelSweep(sc Scale, kind workload.Kind, b ssp.Backend, channelsList, coresList []int) []ChannelPoint {
	var points []ChannelPoint
	for _, ch := range channelsList {
		p := sc.params(kind, b, 1)
		p.Machine.Channels = ch
		serial := workload.Run(p)
		sTPS := CommittedTPS(serial.Cycles, serial)
		for _, cores := range coresList {
			pp := sc.params(kind, b, cores)
			pp.Machine.Channels = ch
			par := workload.RunParallel(pp)
			pt := ChannelPoint{
				Channels: ch,
				Cores:    cores,
				Serial:   serial,
				Parallel: par,
				Util:     channelUtil(par, ch),
			}
			if sTPS > 0 {
				pt.Speedup = CommittedTPS(par.Cycles, par.Result) / sTPS
			}
			points = append(points, pt)
		}
	}
	return points
}

// channelUtil derives per-channel bus utilization from the run's aggregated
// occupancy counters and the measured window's elapsed cycles, clamped to
// [0,1] (the counters charge every transfer, including any a straggler core
// got past the occupancy wheel's horizon).
func channelUtil(par workload.ParallelResult, channels int) []float64 {
	out := make([]float64, channels)
	if par.Cycles <= 0 {
		return out
	}
	for i := 0; i < channels && i < stats.MaxChannels; i++ {
		out[i] = float64(par.Stats.ChannelBusyCycles[i]) / float64(par.Cycles)
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out
}

// RenderChannels formats the sweep: one row per channel count with the
// committed TPS and speedup at every core count, then the per-channel bus
// utilization of each cell's parallel window.
func RenderChannels(points []ChannelPoint) string {
	if len(points) == 0 {
		return ""
	}
	var coresList []int
	seen := map[int]bool{}
	for _, pt := range points {
		if !seen[pt.Cores] {
			seen[pt.Cores] = true
			coresList = append(coresList, pt.Cores)
		}
	}
	cell := map[[2]int]ChannelPoint{}
	var channelsList []int
	for _, pt := range points {
		key := [2]int{pt.Channels, pt.Cores}
		if _, ok := cell[key]; !ok {
			cell[key] = pt
		}
		if len(channelsList) == 0 || channelsList[len(channelsList)-1] != pt.Channels {
			channelsList = append(channelsList, pt.Channels)
		}
	}

	header := []string{"channels", "serial-1 cTPS"}
	for _, c := range coresList {
		header = append(header, fmt.Sprintf("%d-core cTPS (speedup)", c))
	}
	var body [][]string
	for _, ch := range channelsList {
		first := cell[[2]int{ch, coresList[0]}]
		row := []string{
			fmt.Sprintf("%d", ch),
			fmt.Sprintf("%.0f", CommittedTPS(first.Serial.Cycles, first.Serial)),
		}
		for _, c := range coresList {
			pt, ok := cell[[2]int{ch, c}]
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.0f (%.2fx)", CommittedTPS(pt.Parallel.Cycles, pt.Parallel.Result), pt.Speedup))
		}
		body = append(body, row)
	}

	var b strings.Builder
	b.WriteString(stats.Table(header, body))
	b.WriteString("\nper-channel bus utilization (parallel windows):\n")
	for _, ch := range channelsList {
		for _, c := range coresList {
			pt, ok := cell[[2]int{ch, c}]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "  %dch x %dcore:", ch, c)
			for _, u := range pt.Util {
				fmt.Fprintf(&b, " %4.1f%%", 100*u)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// SweepPowersOfTwo returns 1, 2, 4, ... up to and including max (plus max
// itself when it is not a power of two).
func SweepPowersOfTwo(max int) []int {
	if max < 1 {
		return []int{1}
	}
	var out []int
	for v := 1; v <= max; v *= 2 {
		out = append(out, v)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
