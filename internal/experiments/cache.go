package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/workload"
	"repro/ssp"
)

// This file is the DRAM buffer cache experiment (beyond the paper): the
// open-loop serve mix run bare and with a pager-style DRAM buffer tier
// (ssp.Config.DRAMCacheFrames) in front of the NVRAM frame pool, swept over
// frame count, core count, and key skew. The mix models the regime a buffer
// tier exists for — a working set well past the LLC (L3KB shrinks the L3 so
// the small scale reaches it) with memcached-style GET-path recency stamps
// (ServeParams.TouchOnGet), non-transactional writes with no durability
// requirement. Bare, every LLC miss queues on the NVRAM banks behind 200 ns
// writes and every dirty stamp victim is written back to NVRAM; with the
// buffer, refills hit DRAM banks and the stamps are absorbed, so NVRAM
// data-write lines drop and committed throughput rises — most at high skew,
// where the hot keys' frames stay resident.

// CachePoint is one (skew, cores, frames) cell: the same serve mix bare and
// cached.
type CachePoint struct {
	Skew   float64
	Cores  int
	Frames int
	Base   workload.ParallelResult // DRAMCacheFrames = 0, same seed and mix
	Cached workload.ParallelResult

	HitRate float64 // buffer hits / buffer reads of the cached run
	Speedup float64 // cached committed TPS / base committed TPS
	DataCut float64 // fraction of the bare run's NVRAM data-write lines removed
}

// cacheServeParams maps a Scale onto the cache sweep's serve mix: the
// multi-channel machine of the serve experiment with the buffer tier dialed
// by frames.
func (sc Scale) cacheServeParams(cores int, skew float64, frames int) workload.ServeParams {
	return workload.ServeParams{
		Backend:    ssp.SSP,
		Clients:    cores,
		Ops:        sc.Ops,
		Items:      sc.Items,
		Skew:       skew,
		ReadPct:    70,
		TouchOnGet: true,
		Seed:       sc.Seed,
		Machine:    ssp.Config{L3KB: 256, DRAMCacheFrames: frames},
	}
}

// CacheFrames returns the default frame-count sweep (the serve machine's
// 4 MiB DRAM fits 1024).
func CacheFrames() []int { return []int{128, 512, 1024} }

// CacheSkews returns the default key-skew sweep: uniform and Zipfian.
func CacheSkews() []float64 { return []float64{0, 0.99} }

// CacheSweep runs skew × cores × frames. Each (skew, cores) cell is anchored
// by one bare run (Frames = 0 in its CachePoint is implied by Base); every
// frames value then replays the identical mix through the buffer tier.
func CacheSweep(sc Scale, skews []float64, coresList, framesList []int) []CachePoint {
	var points []CachePoint
	for _, skew := range skews {
		for _, cores := range coresList {
			base := workload.RunServe(sc.cacheServeParams(cores, skew, 0))
			for _, frames := range framesList {
				cached := workload.RunServe(sc.cacheServeParams(cores, skew, frames))
				points = append(points, makeCachePoint(skew, cores, frames, base, cached))
			}
		}
	}
	return points
}

func makeCachePoint(skew float64, cores, frames int, base, cached workload.ParallelResult) CachePoint {
	pt := CachePoint{Skew: skew, Cores: cores, Frames: frames, Base: base, Cached: cached}
	if r := cached.Stats.DRAMCacheReads; r > 0 {
		pt.HitRate = float64(cached.Stats.DRAMCacheHits) / float64(r)
	}
	if base.CommittedTPS > 0 {
		pt.Speedup = cached.CommittedTPS / base.CommittedTPS
	}
	if b := DataWriteLines(base.Stats); b > 0 {
		pt.DataCut = 1 - float64(DataWriteLines(cached.Stats))/float64(b)
	}
	return pt
}

// DataWriteLines is the bare metric the buffer attacks: NVRAM data-category
// write lines.
func DataWriteLines(st stats.Stats) uint64 {
	return st.WriteBytes(stats.CatData) / 64
}

// RenderCache formats the sweep: one row per (skew, cores, frames) with the
// cached run's hit rate, both committed TPS figures, and the data-write cut.
func RenderCache(points []CachePoint) string {
	if len(points) == 0 {
		return ""
	}
	header := []string{"skew", "cores", "frames", "hit%", "bare cTPS", "cached cTPS", "speedup", "bare dataWr", "cached dataWr", "cut%"}
	var body [][]string
	for _, pt := range points {
		body = append(body, []string{
			fmt.Sprintf("%.2f", pt.Skew),
			fmt.Sprintf("%d", pt.Cores),
			fmt.Sprintf("%d", pt.Frames),
			fmt.Sprintf("%.1f", 100*pt.HitRate),
			fmt.Sprintf("%.0f", pt.Base.CommittedTPS),
			fmt.Sprintf("%.0f", pt.Cached.CommittedTPS),
			fmt.Sprintf("%.2fx", pt.Speedup),
			fmt.Sprintf("%d", DataWriteLines(pt.Base.Stats)),
			fmt.Sprintf("%d", DataWriteLines(pt.Cached.Stats)),
			fmt.Sprintf("%.1f", 100*pt.DataCut),
		})
	}
	var b strings.Builder
	b.WriteString(stats.Table(header, body))
	b.WriteString("\ncached-run buffer traffic (largest sweep point):\n")
	last := points[len(points)-1].Cached.Stats
	fmt.Fprintf(&b, "  reads %d (hits %d, misses %d), absorbed %d, hardened %d, writebacks %d, evictions %d\n",
		last.DRAMCacheReads, last.DRAMCacheHits, last.DRAMCacheMisses,
		last.DRAMCacheAbsorbed, last.DRAMCacheHardens, last.DRAMCacheWriteBacks, last.DRAMCacheEvictions)
	return b.String()
}
