// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): Table 3 (workload characterisation), Figures 5a/5b
// (microbenchmark throughput, 1 and 4 threads), Figure 6 (logging writes),
// Figures 7a/7b (NVRAM writes and SSP write breakdown), Figure 8 (NVRAM
// latency sensitivity), Figure 9 (SSP cache latency sensitivity), and
// Tables 4/5 (real-workload speedup and write savings). See DESIGN.md §3
// for the experiment index.
//
// Each runner returns structured rows and renders the same series the
// paper reports; absolute numbers come from the simulator, shapes are what
// is compared (EXPERIMENTS.md records paper-vs-measured).
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/workload"
	"repro/ssp"
)

// Scale selects run sizes. Small keeps every experiment under seconds
// (tests, `go test -bench`); Full is the documented reproduction scale.
type Scale struct {
	Ops    int
	Keys   uint64
	Elems  int
	Items  int
	Tuples int
	Seed   uint64
	// STLB overrides the per-core L2 STLB entries (0 = the default 1024).
	// Small scales shrink it so TLB-pressure effects (consolidation) stay
	// observable with fast prefills.
	STLB int
}

// SmallScale returns the CI-friendly sizes. The SPS array exceeds the TLB
// hierarchy's reach so consolidation is exercised, as in the paper.
func SmallScale() Scale {
	return Scale{Ops: 1500, Keys: 8192, Elems: 1 << 19, Items: 4096, Tuples: 4096, Seed: 0xE0}
}

// FullScale returns the reproduction sizes used for EXPERIMENTS.md. The
// tree/hash working sets sit within the TLB hierarchy's reach (the regime
// the paper's batching argument assumes); the SPS array exceeds it, making
// SPS the consolidation-heavy outlier. EXPERIMENTS.md separately records
// the working-set cliff just past TLB reach (Keys=131072), where eager
// consolidation bandwidth erodes the four-thread advantage.
func FullScale() Scale {
	return Scale{Ops: 20000, Keys: 65536, Elems: 1 << 20, Items: 16384, Tuples: 16384, Seed: 0xE0}
}

func (sc Scale) params(k workload.Kind, b ssp.Backend, clients int) workload.Params {
	p := workload.Params{
		Kind:    k,
		Backend: b,
		Clients: clients,
		Ops:     sc.Ops,
		Keys:    sc.Keys,
		Elems:   sc.Elems,
		Items:   sc.Items,
		Tuples:  sc.Tuples,
		Seed:    sc.Seed,
	}
	p.Machine.STLBEntries = sc.STLB
	return p
}

// Row is one workload's measurements across the three designs.
type Row struct {
	Kind    workload.Kind
	Results map[ssp.Backend]workload.Result
}

// runAll runs every backend for one workload.
func runAll(sc Scale, k workload.Kind, clients int, tune func(*workload.Params)) Row {
	row := Row{Kind: k, Results: map[ssp.Backend]workload.Result{}}
	for _, b := range ssp.Backends() {
		p := sc.params(k, b, clients)
		if tune != nil {
			tune(&p)
		}
		row.Results[b] = workload.Run(p)
	}
	return row
}

// ---------------------------------------------------------------------------
// Table 3 — workload write-set characterisation.

// Table3Row mirrors a row of the paper's Table 3.
type Table3Row struct {
	Kind     workload.Kind
	AvgLines float64
	AvgPages float64
	MaxPages int
}

// Table3 measures the write-set size of every workload under SSP.
func Table3(sc Scale) []Table3Row {
	var rows []Table3Row
	for _, k := range workload.All() {
		clients := 1
		if k == workload.Memcached || k == workload.Vacation {
			clients = 4
		}
		res := workload.Run(sc.params(k, ssp.SSP, clients))
		rows = append(rows, Table3Row{
			Kind:     k,
			AvgLines: res.WriteSet.AvgLines(),
			AvgPages: res.WriteSet.AvgPages(),
			MaxPages: res.WriteSet.MaxPages,
		})
	}
	return rows
}

// RenderTable3 formats Table 3 like the paper (avg lines / avg pages / max
// pages).
func RenderTable3(rows []Table3Row) string {
	header := []string{"Name", "WriteSet (lines/pages/max)"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Kind.String(),
			fmt.Sprintf("%.0f/%.0f/%d", r.AvgLines, r.AvgPages, r.MaxPages),
		})
	}
	return stats.Table(header, body)
}

// ---------------------------------------------------------------------------
// Figure 5 — microbenchmark throughput (normalised to UNDO-LOG).

// Fig5Row is one workload's normalised TPS.
type Fig5Row struct {
	Kind workload.Kind
	TPS  map[ssp.Backend]float64 // normalised to UNDO-LOG
	Raw  map[ssp.Backend]float64 // absolute TPS
}

// Fig5 runs the seven microbenchmarks with the given client count
// (Figure 5a: 1 thread, Figure 5b: 4 threads).
func Fig5(sc Scale, clients int) []Fig5Row {
	var rows []Fig5Row
	for _, k := range workload.Micro() {
		row := runAll(sc, k, clients, nil)
		base := row.Results[ssp.UndoLog].TPS
		r := Fig5Row{Kind: k, TPS: map[ssp.Backend]float64{}, Raw: map[ssp.Backend]float64{}}
		for _, b := range ssp.Backends() {
			r.Raw[b] = row.Results[b].TPS
			r.TPS[b] = row.Results[b].TPS / base
		}
		rows = append(rows, r)
	}
	return rows
}

// RenderFig5 formats the normalised-TPS series.
func RenderFig5(rows []Fig5Row, clients int) string {
	header := []string{fmt.Sprintf("Workload (%d thread)", clients), "UNDO-LOG", "REDO-LOG", "SSP"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Kind.String(),
			fmt.Sprintf("%.2f", r.TPS[ssp.UndoLog]),
			fmt.Sprintf("%.2f", r.TPS[ssp.RedoLog]),
			fmt.Sprintf("%.2f", r.TPS[ssp.SSP]),
		})
	}
	body = append(body, geomeanRow("geomean", rows, func(r Fig5Row, b ssp.Backend) float64 { return r.TPS[b] }))
	return stats.Table(header, body)
}

func geomeanRow[T any](label string, rows []T, get func(T, ssp.Backend) float64) []string {
	out := []string{label}
	for _, b := range ssp.Backends() {
		prod := 1.0
		for _, r := range rows {
			prod *= get(r, b)
		}
		out = append(out, fmt.Sprintf("%.2f", pow(prod, 1.0/float64(len(rows)))))
	}
	return out
}

func pow(x, e float64) float64 {
	// Tiny stdlib-free helper via math? math is stdlib; keep it simple.
	return mathPow(x, e)
}

// ---------------------------------------------------------------------------
// Figure 6 — logging writes (normalised to UNDO-LOG, lower is better).

// Fig6Row is one workload's normalised non-data ("logging") write bytes.
type Fig6Row struct {
	Kind  workload.Kind
	Bytes map[ssp.Backend]uint64
	Norm  map[ssp.Backend]float64
}

// Fig6 measures logging writes for the seven microbenchmarks.
func Fig6(sc Scale, clients int) []Fig6Row {
	var rows []Fig6Row
	for _, k := range workload.Micro() {
		row := runAll(sc, k, clients, nil)
		r := Fig6Row{Kind: k, Bytes: map[ssp.Backend]uint64{}, Norm: map[ssp.Backend]float64{}}
		for _, b := range ssp.Backends() {
			st := row.Results[b].Stats
			r.Bytes[b] = st.LoggingBytes()
		}
		base := float64(r.Bytes[ssp.UndoLog])
		for _, b := range ssp.Backends() {
			r.Norm[b] = float64(r.Bytes[b]) / base
		}
		rows = append(rows, r)
	}
	return rows
}

// RenderFig6 formats the logging-writes series.
func RenderFig6(rows []Fig6Row) string {
	header := []string{"Workload", "UNDO-LOG", "REDO-LOG", "SSP"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Kind.String(),
			fmt.Sprintf("%.2f", r.Norm[ssp.UndoLog]),
			fmt.Sprintf("%.2f", r.Norm[ssp.RedoLog]),
			fmt.Sprintf("%.2f", r.Norm[ssp.SSP]),
		})
	}
	body = append(body, geomeanRow("geomean", rows, func(r Fig6Row, b ssp.Backend) float64 { return r.Norm[b] }))
	return stats.Table(header, body)
}

// ---------------------------------------------------------------------------
// Figure 7 — NVRAM writes and SSP breakdown.

// Fig7Row carries total normalised NVRAM write bytes plus SSP's breakdown.
type Fig7Row struct {
	Kind workload.Kind
	Norm map[ssp.Backend]float64 // total write bytes normalised to UNDO

	// SSP write breakdown in percent (Figure 7b).
	DataPct, JournalPct, ConsolidationPct, CheckpointPct float64
}

// Fig7 measures total NVRAM writes (7a) and SSP's breakdown (7b).
func Fig7(sc Scale, clients int) []Fig7Row {
	var rows []Fig7Row
	for _, k := range workload.Micro() {
		row := runAll(sc, k, clients, nil)
		r := Fig7Row{Kind: k, Norm: map[ssp.Backend]float64{}}
		base := func() float64 {
			st := row.Results[ssp.UndoLog].Stats
			return float64(st.TotalWriteBytes())
		}()
		for _, b := range ssp.Backends() {
			st := row.Results[b].Stats
			r.Norm[b] = float64(st.TotalWriteBytes()) / base
		}
		st := row.Results[ssp.SSP].Stats
		total := float64(st.TotalWriteBytes())
		data := float64(st.WriteBytes(stats.CatData))
		journal := float64(st.WriteBytes(stats.CatMetaJournal) + st.WriteBytes(stats.CatControl) + st.WriteBytes(stats.CatUndoLog) + st.WriteBytes(stats.CatCommitRecord))
		consol := float64(st.WriteBytes(stats.CatConsolidation))
		ckpt := float64(st.WriteBytes(stats.CatCheckpoint))
		r.DataPct = 100 * data / total
		r.JournalPct = 100 * journal / total
		r.ConsolidationPct = 100 * consol / total
		r.CheckpointPct = 100 * ckpt / total
		rows = append(rows, r)
	}
	return rows
}

// RenderFig7a formats the total-writes series.
func RenderFig7a(rows []Fig7Row) string {
	header := []string{"Workload", "UNDO-LOG", "REDO-LOG", "SSP"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Kind.String(),
			fmt.Sprintf("%.2f", r.Norm[ssp.UndoLog]),
			fmt.Sprintf("%.2f", r.Norm[ssp.RedoLog]),
			fmt.Sprintf("%.2f", r.Norm[ssp.SSP]),
		})
	}
	body = append(body, geomeanRow("geomean", rows, func(r Fig7Row, b ssp.Backend) float64 { return r.Norm[b] }))
	return stats.Table(header, body)
}

// RenderFig7b formats SSP's write breakdown.
func RenderFig7b(rows []Fig7Row) string {
	header := []string{"Workload", "Data%", "Journaling%", "Consolidation%", "Checkpointing%"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Kind.String(),
			fmt.Sprintf("%.1f", r.DataPct),
			fmt.Sprintf("%.1f", r.JournalPct),
			fmt.Sprintf("%.1f", r.ConsolidationPct),
			fmt.Sprintf("%.1f", r.CheckpointPct),
		})
	}
	return stats.Table(header, body)
}

// ---------------------------------------------------------------------------

// Render joins rendered sections.
func Render(sections ...string) string {
	return strings.Join(sections, "\n")
}
