package experiments

import (
	"fmt"
	"strings"

	"repro/internal/workload"
	"repro/ssp"
)

// This file is the commit-path batching experiment (beyond the paper): it
// sweeps the two persistence knobs that take durability work off the commit
// critical path — eager async data flush (ssp.Config.EagerFlush) and
// per-shard group commit (ssp.Config.GroupCommitWindow) — against the core
// count, on the workload mixes where each mechanism has something to
// amortise. Both knobs off is the paper model, so the first grid row of
// every mix is the PR 4 behaviour and everything below it is the measured
// effect of moving persistence off the critical path.
//
// Mix selection: memcached and vacation run on a SINGLE journal shard
// (cores share the ring, so group commit has followers to coalesce and the
// shared-journal Amdahl term is live); the memcached cross-shard mix runs
// at 50% global fraction on per-core shards, where the batched prepare
// fan-out and eager flushing attack the distributed-commit cost.

// CommitPathKnobs is one configuration of the two batching knobs.
type CommitPathKnobs struct {
	Eager  bool
	Window int // group-commit window in cycles; 0 = flush per commit
}

func (k CommitPathKnobs) String() string {
	eager, group := "deferred", "per-commit"
	if k.Eager {
		eager = "eager"
	}
	if k.Window > 0 {
		group = fmt.Sprintf("group(%d)", k.Window)
	}
	return eager + "+" + group
}

// CommitPathPoint is one (knobs, cores) cell of a mix's sweep.
type CommitPathPoint struct {
	Kind     workload.Kind
	Knobs    CommitPathKnobs
	Cores    int
	Parallel workload.ParallelResult
	BaseTPS  float64 // committed TPS of the same-core both-knobs-off run
}

// CommitPathMix names one workload mix of the sweep with its machine shape.
type CommitPathMix struct {
	Kind     workload.Kind
	Shards   int
	Channels int
	CrossPct int
}

// CommitPathMixes returns the default mixes (see the file comment).
func CommitPathMixes() []CommitPathMix {
	return []CommitPathMix{
		{Kind: workload.Memcached, Shards: 1, Channels: 4},
		{Kind: workload.Vacation, Shards: 1, Channels: 4},
		{Kind: workload.MemcachedCross, Shards: 4, Channels: 4, CrossPct: 50},
	}
}

// CommitPathSweep runs one mix under SSP for every knob combination × core
// count. The knob grid is fixed: both off (the paper model), eager only,
// group only, both on.
func CommitPathSweep(sc Scale, mix CommitPathMix, window int, coresList []int) []CommitPathPoint {
	knobGrid := []CommitPathKnobs{
		{false, 0},
		{true, 0},
		{false, window},
		{true, window},
	}
	base := map[int]float64{} // cores -> both-knobs-off committed TPS
	var points []CommitPathPoint
	for _, k := range knobGrid {
		for _, cores := range coresList {
			p := sc.params(mix.Kind, ssp.SSP, cores)
			p.Machine.Channels = mix.Channels
			p.Machine.JournalShards = mix.Shards
			p.Machine.EagerFlush = k.Eager
			p.Machine.GroupCommitWindow = k.Window
			p.CrossPct = mix.CrossPct
			par := workload.RunParallel(p)
			tps := CommittedTPS(par.Cycles, par.Result)
			if !k.Eager && k.Window == 0 {
				base[cores] = tps
			}
			points = append(points, CommitPathPoint{
				Kind:     mix.Kind,
				Knobs:    k,
				Cores:    cores,
				Parallel: par,
				BaseTPS:  base[cores],
			})
		}
	}
	return points
}

// BarrierWaitShare returns CommitBarrierWait as a fraction of the run's
// total core-cycles (window × cores) — the share of the machine's time
// spent blocked on commit-critical persistence fences.
func BarrierWaitShare(res workload.ParallelResult, cores int) float64 {
	if res.Cycles <= 0 || cores <= 0 {
		return 0
	}
	return float64(res.Stats.CommitBarrierWait) / (float64(res.Cycles) * float64(cores))
}

// RenderCommitPath formats one mix's sweep: a row per knob combination and
// core count with committed TPS, the change against the paper model at the
// same core count, the barrier-wait share, and the group-commit batch
// occupancy (members per coalesced flush) where grouping was active.
func RenderCommitPath(points []CommitPathPoint) string {
	if len(points) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-6s %12s %8s %12s %10s %10s\n",
		"knobs", "cores", "cTPS", "vs base", "barrier", "batches", "occupancy")
	for _, pt := range points {
		st := pt.Parallel.Stats
		tps := CommittedTPS(pt.Parallel.Cycles, pt.Parallel.Result)
		delta := "-"
		if pt.BaseTPS > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(tps/pt.BaseTPS-1))
		}
		occupancy := "-"
		batches := "-"
		if st.GroupCommitBatches > 0 {
			batches = fmt.Sprintf("%d", st.GroupCommitBatches)
			occupancy = fmt.Sprintf("%.2f", float64(st.GroupCommitBatches+st.GroupCommitFollowers)/float64(st.GroupCommitBatches))
		}
		fmt.Fprintf(&b, "%-22s %-6d %12.0f %8s %11.1f%% %10s %10s\n",
			pt.Knobs.String(), pt.Cores, tps, delta,
			100*BarrierWaitShare(pt.Parallel, pt.Cores), batches, occupancy)
	}
	// The interesting per-cell traffic: eager-flush amplification and
	// cross-shard fan-out, where present.
	for _, pt := range points {
		st := pt.Parallel.Stats
		if st.EagerFlushLines == 0 && st.GlobalCommits == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %s x %dcore:", pt.Knobs.String(), pt.Cores)
		if st.EagerFlushLines > 0 {
			perCommit := float64(st.EagerFlushLines)
			if st.Commits > 0 {
				perCommit /= float64(st.Commits)
			}
			fmt.Fprintf(&b, " %d eager flushes (%.2f per commit)", st.EagerFlushLines, perCommit)
		}
		if st.GlobalCommits > 0 {
			fmt.Fprintf(&b, " %d global commits, %d prepares", st.GlobalCommits, st.PrepareRecords)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
