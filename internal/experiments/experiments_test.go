package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
	"repro/ssp"
)

// tinyScale keeps the full experiment suite fast in tests.
func tinyScale() Scale {
	// The SPS array must exceed the TLB hierarchy's reach so SPS exercises
	// consolidation (the paper's Figure 7b breakdown depends on it); a
	// shrunken STLB keeps prefill fast.
	return Scale{Ops: 600, Keys: 4096, Elems: 1 << 17, Items: 2048, Tuples: 2048, Seed: 0xE0, STLB: 128}
}

func TestTable3ShapesMatchPaper(t *testing.T) {
	rows := Table3(tinyScale())
	if len(rows) != 9 {
		t.Fatalf("expected 9 workloads, got %d", len(rows))
	}
	byKind := map[workload.Kind]Table3Row{}
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	// Paper Table 3 shapes: SPS = 2/2/2; trees touch more lines than hash;
	// RBTree writes more lines than Hash; max pages ≥ avg pages.
	sps := byKind[workload.SPS]
	if sps.AvgLines < 1.5 || sps.AvgLines > 3.5 {
		t.Errorf("SPS avg lines %.2f, want ~2", sps.AvgLines)
	}
	if byKind[workload.RBTreeRand].AvgLines <= byKind[workload.HashRand].AvgLines {
		t.Errorf("RBTree lines (%.1f) should exceed Hash (%.1f)",
			byKind[workload.RBTreeRand].AvgLines, byKind[workload.HashRand].AvgLines)
	}
	for _, r := range rows {
		if float64(r.MaxPages) < r.AvgPages {
			t.Errorf("%s: max pages %d below avg %.1f", r.Kind, r.MaxPages, r.AvgPages)
		}
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "SPS") || !strings.Contains(out, "Memcached") {
		t.Error("render missing workloads")
	}
}

func TestFig5ShapeOneThread(t *testing.T) {
	rows := Fig5(tinyScale(), 1)
	if len(rows) != 7 {
		t.Fatalf("expected 7 microbenchmarks")
	}
	wins := 0
	for _, r := range rows {
		if r.TPS[ssp.UndoLog] != 1.0 {
			t.Errorf("%s: UNDO not normalised to 1.0", r.Kind)
		}
		if r.TPS[ssp.SSP] > r.TPS[ssp.UndoLog] {
			wins++
		}
	}
	// The paper: SSP outperforms UNDO on the microbenchmarks (SPS is our
	// adversarial exception; see EXPERIMENTS.md).
	if wins < 6 {
		t.Errorf("SSP beat UNDO on only %d/7 microbenchmarks", wins)
	}
	_ = RenderFig5(rows, 1)
}

func TestFig6SSPNearlyEliminatesLoggingWrites(t *testing.T) {
	rows := Fig6(tinyScale(), 1)
	for _, r := range rows {
		if r.Kind == workload.SPS {
			continue // consolidation-dominated, discussed in Fig 7b
		}
		if r.Norm[ssp.SSP] >= r.Norm[ssp.RedoLog] {
			t.Errorf("%s: SSP logging (%.2f) not below REDO (%.2f)",
				r.Kind, r.Norm[ssp.SSP], r.Norm[ssp.RedoLog])
		}
		if r.Norm[ssp.SSP] > 0.6 {
			t.Errorf("%s: SSP logging %.2f of UNDO, want well below", r.Kind, r.Norm[ssp.SSP])
		}
	}
	_ = RenderFig6(rows)
}

func TestFig7ShapesMatchPaper(t *testing.T) {
	rows := Fig7(tinyScale(), 1)
	var sspSum, redoSum float64
	for _, r := range rows {
		sspSum += r.Norm[ssp.SSP]
		redoSum += r.Norm[ssp.RedoLog]
		// Breakdown sums to ~100%.
		total := r.DataPct + r.JournalPct + r.ConsolidationPct + r.CheckpointPct
		if total < 99 || total > 101 {
			t.Errorf("%s: breakdown sums to %.1f%%", r.Kind, total)
		}
		// Paper: "writes caused by page consolidation are less than the
		// data writes under most of the workloads except for SPS" — SPS is
		// the consolidation-heavy outlier (its array exceeds the TLB
		// hierarchy's reach, so every transaction's pages cycle out); the
		// others stay clearly below data. Checked after the loop.
		if r.ConsolidationPct > r.DataPct {
			t.Errorf("%s: consolidation %.1f%% exceeds data %.1f%%",
				r.Kind, r.ConsolidationPct, r.DataPct)
		}
	}
	// SPS must carry the largest consolidation share of all workloads and
	// a substantial one in absolute terms.
	var spsConsol, maxOther float64
	for _, r := range rows {
		if r.Kind == workload.SPS {
			spsConsol = r.ConsolidationPct
		} else if r.ConsolidationPct > maxOther {
			maxOther = r.ConsolidationPct
		}
	}
	if spsConsol < maxOther || spsConsol < 10 {
		t.Errorf("SPS consolidation share %.1f%% should dominate (max other %.1f%%)", spsConsol, maxOther)
	}
	// Average write savings: SSP well below UNDO (paper: 45%) and below
	// REDO (paper: 28%).
	if sspSum/7 > 0.8 {
		t.Errorf("SSP average normalised writes %.2f, want clearly below 1", sspSum/7)
	}
	if sspSum >= redoSum {
		t.Errorf("SSP writes (%.2f avg) not below REDO (%.2f avg)", sspSum/7, redoSum/7)
	}
	_ = RenderFig7a(rows)
	_ = RenderFig7b(rows)
}

func TestFig8GapGrowsWithLatency(t *testing.T) {
	sc := tinyScale()
	sc.Ops = 400
	points := Fig8(sc)
	if len(points) != 10 {
		t.Fatalf("expected 10 points, got %d", len(points))
	}
	// The paper: all designs degrade with latency, and SSP's advantage over
	// REDO grows (1.1x at x1 to 1.8x at x9 for BTree).
	for _, k := range []workload.Kind{workload.RBTreeRand, workload.BTreeRand} {
		var first, last *Fig8Point
		for i := range points {
			if points[i].Kind != k {
				continue
			}
			if first == nil {
				first = &points[i]
			}
			last = &points[i]
		}
		if last.TPS[ssp.SSP] >= first.TPS[ssp.SSP] {
			t.Errorf("%s: SSP TPS did not degrade with latency", k)
		}
		gapFirst := first.TPS[ssp.SSP] / first.TPS[ssp.RedoLog]
		gapLast := last.TPS[ssp.SSP] / last.TPS[ssp.RedoLog]
		if gapLast <= gapFirst {
			t.Errorf("%s: SSP/REDO gap shrank with latency: %.2f -> %.2f", k, gapFirst, gapLast)
		}
	}
	_ = RenderFig8(points)
}

func TestFig9SpeedupFallsWithSSPCacheLatency(t *testing.T) {
	sc := tinyScale()
	sc.Ops = 400
	points := Fig9(sc)
	// For each workload, the speedup at 180 cycles must not exceed the
	// speedup at 20 cycles; SPS (poor locality) must be among the most
	// sensitive, as §5.3 observes.
	drop := map[workload.Kind]float64{}
	for _, k := range workload.Micro() {
		var at20, at180 float64
		for _, pt := range points {
			if pt.Kind != k {
				continue
			}
			if pt.Latency == 20 {
				at20 = pt.Speedup
			}
			if pt.Latency == 180 {
				at180 = pt.Speedup
			}
		}
		if at180 > at20 {
			t.Errorf("%s: speedup rose with SSP-cache latency (%.2f -> %.2f)", k, at20, at180)
		}
		if at20 > 0 {
			drop[k] = (at20 - at180) / at20
		}
	}
	if drop[workload.SPS] < drop[workload.BTreeZipf] {
		t.Errorf("SPS relative drop (%.2f) should exceed a zipf workload's (%.2f)",
			drop[workload.SPS], drop[workload.BTreeZipf])
	}
	_ = RenderFig9(points)
}

func TestTable45RealWorkloads(t *testing.T) {
	rows := Table45(tinyScale())
	if len(rows) != 2 {
		t.Fatalf("expected 2 real workloads")
	}
	for _, r := range rows {
		// The paper: SSP improves on both designs (Memcached 75%/35%,
		// Vacation 27%/13%) and saves write traffic on both.
		if r.SpeedupOver[ssp.UndoLog] <= 0 {
			t.Errorf("%s: no speedup over UNDO (%.0f%%)", r.Kind, r.SpeedupOver[ssp.UndoLog])
		}
		if r.SavingOver[ssp.UndoLog] <= 0 || r.SavingOver[ssp.RedoLog] <= 0 {
			t.Errorf("%s: no write saving (%.0f%% / %.0f%%)",
				r.Kind, r.SavingOver[ssp.UndoLog], r.SavingOver[ssp.RedoLog])
		}
		if r.SpeedupOver[ssp.UndoLog] < r.SpeedupOver[ssp.RedoLog] {
			t.Errorf("%s: speedup over UNDO below speedup over REDO", r.Kind)
		}
	}
	_ = RenderTable4(rows)
	_ = RenderTable5(rows)
}

func TestAblations(t *testing.T) {
	sc := tinyScale()
	sc.Ops = 300

	sub := AblateSubPage(sc)
	if len(sub) != 8 {
		t.Fatalf("subpage rows: %d", len(sub))
	}

	wsb := AblateWSB(sc)
	if wsb[0].Fallback != 0 {
		t.Errorf("wsb=64 should not fall back (got %d)", wsb[0].Fallback)
	}
	if wsb[2].Fallback == 0 {
		t.Errorf("wsb=2 should force fall-back transactions")
	}

	rq := AblateRedoQueue(sc)
	if len(rq) != 3 {
		t.Fatalf("redo queue rows: %d", len(rq))
	}

	res := AblateSSPCacheResidency(sc)
	if res[0].TPS < res[2].TPS {
		t.Errorf("shrinking SSP-cache residency should not speed SPS up (%.0f -> %.0f)",
			res[0].TPS, res[2].TPS)
	}

	// Shootdown-based flips must be slower than the coherence broadcast.
	flip := AblateFlipMechanism(sc)
	for i := 0; i < len(flip); i += 2 {
		if flip[i+1].TPS >= flip[i].TPS {
			t.Errorf("%s: shootdown flips (%.0f TPS) not slower than broadcast (%.0f)",
				flip[i].Kind, flip[i+1].TPS, flip[i].TPS)
		}
	}

	// Lazy consolidation defers copies: SPS total writes must not rise.
	pol := AblateConsolidationPolicy(sc)
	if pol[1].Writes > pol[0].Writes {
		t.Errorf("lazy consolidation wrote more than eager: %d > %d", pol[1].Writes, pol[0].Writes)
	}
	_ = RenderAblations("subpage", sub)
}

func TestRecoveryEffort(t *testing.T) {
	sc := tinyScale()
	sc.Ops = 400
	rows := RecoveryEffort(sc)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Recovered {
			t.Errorf("journal %dKiB: recovery verification failed", r.JournalKB)
		}
	}
	// A larger journal checkpoints less often.
	if rows[0].Checkpoints <= rows[2].Checkpoints {
		t.Errorf("16KiB journal should checkpoint more than 256KiB (%d vs %d)",
			rows[0].Checkpoints, rows[2].Checkpoints)
	}
	_ = RenderRecovery(rows)
}

func TestChannelSweep(t *testing.T) {
	sc := tinyScale()
	points := ChannelSweep(sc, workload.Memcached, ssp.SSP, []int{1, 4}, []int{1, 2})
	if len(points) != 4 {
		t.Fatalf("expected 4 sweep points, got %d", len(points))
	}
	for _, pt := range points {
		if pt.Speedup <= 0 {
			t.Errorf("%dch x %dcore: speedup %.2f not positive", pt.Channels, pt.Cores, pt.Speedup)
		}
		if len(pt.Util) != pt.Channels {
			t.Fatalf("%dch x %dcore: %d utilization entries", pt.Channels, pt.Cores, len(pt.Util))
		}
		for c, u := range pt.Util {
			if u < 0 || u > 1 {
				t.Errorf("%dch x %dcore: channel %d utilization %.3f out of [0,1]", pt.Channels, pt.Cores, c, u)
			}
			if u == 0 {
				t.Errorf("%dch x %dcore: channel %d saw no bus occupancy", pt.Channels, pt.Cores, c)
			}
		}
	}
	// Multi-core runs must beat the 1-core run at the same channel count.
	byKey := map[[2]int]ChannelPoint{}
	for _, pt := range points {
		byKey[[2]int{pt.Channels, pt.Cores}] = pt
	}
	for _, ch := range []int{1, 4} {
		if s1, s2 := byKey[[2]int{ch, 1}].Speedup, byKey[[2]int{ch, 2}].Speedup; s2 <= s1 {
			t.Errorf("%dch: 2-core speedup %.2f not above 1-core %.2f", ch, s2, s1)
		}
	}
	if out := RenderChannels(points); !strings.Contains(out, "channels") || !strings.Contains(out, "utilization") {
		t.Errorf("render missing sections:\n%s", out)
	}
}

func TestJournalSweep(t *testing.T) {
	sc := tinyScale()
	points := JournalSweep(sc, workload.Memcached, 2, []int{1, 2}, []int{1, 2})
	if len(points) != 4 {
		t.Fatalf("expected 4 sweep points, got %d", len(points))
	}
	byKey := map[[2]int]JournalPoint{}
	for _, pt := range points {
		if pt.Speedup <= 0 {
			t.Errorf("%dsh x %dcore: speedup %.2f not positive", pt.Shards, pt.Cores, pt.Speedup)
		}
		if got := len(pt.Parallel.Journal); got != pt.Shards {
			t.Fatalf("%dsh x %dcore: %d pressure entries, want %d", pt.Shards, pt.Cores, got, pt.Shards)
		}
		byKey[[2]int{pt.Shards, pt.Cores}] = pt
	}
	// With two cores on two shards, both shards must carry records and the
	// per-shard sums must equal the run's journal record total.
	pt := byKey[[2]int{2, 2}]
	var sum uint64
	for _, p := range pt.Parallel.Journal {
		if p.Records == 0 {
			t.Errorf("2sh x 2core: shard %d appended no records", p.Shard)
		}
		if f := p.FillFrac(); f < 0 || f > 1 {
			t.Errorf("2sh x 2core: shard %d fill %.3f out of [0,1]", p.Shard, f)
		}
		sum += p.Records
	}
	if sum != pt.Parallel.Stats.JournalRecords {
		t.Errorf("2sh x 2core: per-shard records sum %d != total %d", sum, pt.Parallel.Stats.JournalRecords)
	}
	// Journal bank occupancy must be visible in the counters and the render.
	if pt.Parallel.Stats.NVRAMBankBusy[stats.CatMetaJournal] == 0 {
		t.Error("2sh x 2core: no CatMetaJournal bank busy cycles recorded")
	}
	out := RenderJournal(points)
	if !strings.Contains(out, "shards") || !strings.Contains(out, "journal bank busy") {
		t.Errorf("render missing sections:\n%s", out)
	}
}

// TestCrossShardSweep runs the cross-shard experiment at tiny scale on both
// mixes: global commits must appear exactly when the cross fraction is
// non-zero and the machine has peers, each global commit must have spread
// prepare records over at least two shards, and the cross fraction of
// committed transactions must track the requested percentage.
func TestCrossShardSweep(t *testing.T) {
	sc := tinyScale()
	for _, kind := range []workload.Kind{workload.MemcachedCross, workload.VacationCross} {
		points := CrossShardSweep(sc, kind, 2, 4, []int{0, 25}, []int{1, 2})
		if len(points) != 4 {
			t.Fatalf("%s: expected 4 sweep points, got %d", kind, len(points))
		}
		for _, pt := range points {
			st := pt.Parallel.Stats
			if pt.CrossPct == 0 || pt.Cores == 1 {
				if st.GlobalCommits != 0 {
					t.Errorf("%s %d%% x %dcore: %d global commits, want 0",
						kind, pt.CrossPct, pt.Cores, st.GlobalCommits)
				}
				continue
			}
			if st.GlobalCommits == 0 {
				t.Errorf("%s %d%% x %dcore: no global commits", kind, pt.CrossPct, pt.Cores)
				continue
			}
			if st.PrepareRecords < 2*st.GlobalCommits {
				t.Errorf("%s %d%% x %dcore: %d prepare records for %d global commits (< 2 shards each)",
					kind, pt.CrossPct, pt.Cores, st.PrepareRecords, st.GlobalCommits)
			}
			frac := float64(st.GlobalCommits) / float64(st.Commits)
			if frac < 0.10 || frac > 0.45 {
				t.Errorf("%s %d%% x %dcore: global fraction %.2f far from requested 0.25",
					kind, pt.CrossPct, pt.Cores, frac)
			}
		}
	}
	if out := RenderCrossShard(CrossShardSweep(sc, workload.MemcachedCross, 2, 4, []int{25}, []int{2})); out == "" {
		t.Error("RenderCrossShard returned empty output")
	}
}

// TestAblateRedoEngines: per-core write-back engines must not slow the
// 4-core parallel REDO run down, and the rows must carry speedups for the
// render's delta column.
func TestAblateRedoEngines(t *testing.T) {
	rows := AblateRedoEngines(tinyScale())
	if len(rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Errorf("%s: speedup %.2f not positive", r.Name, r.Speedup)
		}
	}
	// The single-engine run is the modelled DHTM floor; per-core engines
	// must be at least as fast (cross-core timing is host-schedule
	// dependent, so allow equality within noise).
	if rows[len(rows)-1].TPS < 0.8*rows[0].TPS {
		t.Errorf("per-core engines (%.0f TPS) much slower than single engine (%.0f TPS)",
			rows[len(rows)-1].TPS, rows[0].TPS)
	}
	if out := RenderAblations("redo engines", rows); out == "" {
		t.Error("RenderAblations returned empty output")
	}
}

func TestSweepPowersOfTwo(t *testing.T) {
	for _, tc := range []struct {
		max  int
		want []int
	}{
		{0, []int{1}}, {1, []int{1}}, {4, []int{1, 2, 4}}, {6, []int{1, 2, 4, 6}}, {8, []int{1, 2, 4, 8}},
	} {
		got := SweepPowersOfTwo(tc.max)
		if len(got) != len(tc.want) {
			t.Errorf("SweepPowersOfTwo(%d) = %v, want %v", tc.max, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("SweepPowersOfTwo(%d) = %v, want %v", tc.max, got, tc.want)
				break
			}
		}
	}
}

// TestCommitPathSweep: the knob grid must carry its four combinations per
// core count, the paper-model row must record zero eager flushes and no
// group batches, and the knobs-on rows must actually exercise their
// mechanisms (eager flush lines; group batches covering every group-path
// commit).
func TestCommitPathSweep(t *testing.T) {
	sc := tinyScale()
	mix := CommitPathMix{Kind: workload.Memcached, Shards: 1, Channels: 2}
	points := CommitPathSweep(sc, mix, 2048, []int{1, 2})
	if len(points) != 8 {
		t.Fatalf("expected 8 sweep points, got %d", len(points))
	}
	for _, pt := range points {
		st := pt.Parallel.Stats
		if !pt.Knobs.Eager && st.EagerFlushLines != 0 {
			t.Errorf("%s x %dcore: %d eager flushes with the knob off", pt.Knobs, pt.Cores, st.EagerFlushLines)
		}
		if pt.Knobs.Eager && st.EagerFlushLines == 0 {
			t.Errorf("%s x %dcore: no eager flushes with the knob on", pt.Knobs, pt.Cores)
		}
		if pt.Knobs.Window == 0 && st.GroupCommitBatches != 0 {
			t.Errorf("%s x %dcore: %d group batches with no window", pt.Knobs, pt.Cores, st.GroupCommitBatches)
		}
		if pt.Knobs.Window > 0 {
			if st.GroupCommitBatches == 0 {
				t.Errorf("%s x %dcore: no group batches with a window", pt.Knobs, pt.Cores)
			}
			if got, want := st.GroupCommitBatches+st.GroupCommitFollowers, st.Commits-st.GlobalCommits; got != want {
				t.Errorf("%s x %dcore: batches+followers %d != group-path commits %d", pt.Knobs, pt.Cores, got, want)
			}
		}
		if pt.BaseTPS <= 0 {
			t.Errorf("%s x %dcore: missing paper-model baseline TPS", pt.Knobs, pt.Cores)
		}
	}
	if out := RenderCommitPath(points); out == "" {
		t.Error("RenderCommitPath returned empty output")
	}
}
