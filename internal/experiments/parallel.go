package experiments

import (
	"fmt"
	"strings"

	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/ssp"
)

// ParallelRow compares one backend's serial single-core run against the
// concurrent goroutine-per-core run on the same workload: the scaling the
// sharded multi-core engine delivers, in committed transactions per
// simulated second, plus the host wall-clock of the measured window.
type ParallelRow struct {
	Backend  ssp.Backend
	Kind     workload.Kind
	Serial1  workload.Result         // 1 client, serial driver
	Parallel workload.ParallelResult // N clients, one goroutine per core
}

// CommittedTPS converts a result into committed durable transactions per
// simulated second (GETs and other read-only operations excluded). The
// runs use the default core frequency.
func CommittedTPS(cycles ssp.Cycles, res workload.Result) float64 {
	if cycles <= 0 {
		return 0
	}
	secs := float64(cycles) / (memsim.DefaultConfig().FreqGHz * 1e9)
	return float64(res.Stats.Commits) / secs
}

// ParallelScaling runs the workload on every backend: once serially on one
// core (the baseline the acceptance bar is measured against) and once
// concurrently on `cores` goroutine-backed cores.
func ParallelScaling(sc Scale, kind workload.Kind, cores int) []ParallelRow {
	var rows []ParallelRow
	for _, b := range ssp.Backends() {
		serial := workload.Run(sc.params(kind, b, 1))
		par := workload.RunParallel(sc.params(kind, b, cores))
		rows = append(rows, ParallelRow{Backend: b, Kind: kind, Serial1: serial, Parallel: par})
	}
	return rows
}

// RenderParallel renders the scaling comparison plus the per-core
// breakdown of each parallel run.
func RenderParallel(rows []ParallelRow) string {
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	cores := rows[0].Parallel.Clients
	header := []string{"workload", "design", "serial-1 cTPS", fmt.Sprintf("parallel-%d cTPS", cores), "speedup", "wall"}
	var tab [][]string
	for _, r := range rows {
		s1 := CommittedTPS(r.Serial1.Cycles, r.Serial1)
		pn := CommittedTPS(r.Parallel.Cycles, r.Parallel.Result)
		speed := 0.0
		if s1 > 0 {
			speed = pn / s1
		}
		tab = append(tab, []string{
			r.Kind.String(), r.Backend.String(),
			fmt.Sprintf("%.0f", s1), fmt.Sprintf("%.0f", pn),
			fmt.Sprintf("%.2fx", speed),
			fmt.Sprintf("%.1fms", float64(r.Parallel.Wall.Microseconds())/1000),
		})
	}
	b.WriteString(stats.Table(header, tab))
	b.WriteString("\nper-core committed throughput (parallel runs):\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-9s", r.Backend.String())
		for _, cr := range r.Parallel.PerCore {
			fmt.Fprintf(&b, "  core%d %6.0f", cr.Core, cr.TPS)
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nper-core commit-barrier wait (share of the core's window spent on data-flush fences):\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-9s", r.Backend.String())
		for _, cr := range r.Parallel.PerCore {
			pct := 0.0
			if cr.Cycles > 0 {
				pct = 100 * float64(cr.BarrierWait) / float64(cr.Cycles)
			}
			fmt.Fprintf(&b, "  core%d %5.1f%%", cr.Core, pct)
		}
		b.WriteByte('\n')
	}
	for _, r := range rows {
		if len(r.Parallel.Journal) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s metadata-journal pressure (parallel window):\n  %s\n",
			r.Backend.String(), JournalPressureLine(r.Parallel.Result))
	}
	for _, r := range rows {
		st := r.Parallel.Stats
		if st.GroupCommitBatches == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s group commit: %d batches, %d followers (%.2f members/flush)\n",
			r.Backend.String(), st.GroupCommitBatches, st.GroupCommitFollowers,
			float64(st.GroupCommitBatches+st.GroupCommitFollowers)/float64(st.GroupCommitBatches))
	}
	if rows[0].Parallel.TimeWindow == 0 {
		b.WriteString("\nnote: per-core timing, occupancy and the group-commit batch/follower split above\n" +
			"are host-schedule dependent in free-running mode; set Config.TimeWindow > 0 (e.g. 4096)\n" +
			"for byte-identical repeats (batches + followers = group-path commits holds either way).\n")
	} else {
		ws := rows[0].Parallel.WindowSched
		fmt.Fprintf(&b, "\ndeterministic window scheduler: W=%d cycles, %d windows, %d grants, %d barrier stalls\n",
			ws.Window, ws.Windows, ws.Grants, ws.BarrierStalls)
	}
	return b.String()
}
