package experiments

import (
	"fmt"

	"repro/internal/workload"
	"repro/ssp"
)

// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out (§3.4 eager consolidation, §4.2 write-set buffer, §4.3 sub-page
// granularity and hardware-cost reduction).

// AblationRow is one configuration's outcome on one workload.
type AblationRow struct {
	Name     string
	Kind     workload.Kind
	TPS      float64
	Writes   uint64 // total NVRAM write bytes
	Fallback uint64 // transactions diverted to the software path
	// Speedup is the parallel speedup over a serial 1-core baseline; only
	// the concurrency ablations (write-back engines) fill it.
	Speedup float64
}

// AblateSubPage compares 64 B sub-pages (the default) against 256 B
// sub-pages (the Optane-granularity variant of §4.3, which shrinks the TLB
// bitmaps 4×) on the microbenchmarks.
func AblateSubPage(sc Scale) []AblationRow {
	var rows []AblationRow
	for _, k := range []workload.Kind{workload.BTreeRand, workload.RBTreeRand, workload.HashRand, workload.SPS} {
		for _, lines := range []int{1, 4} {
			p := sc.params(k, ssp.SSP, 1)
			p.Machine.SubPageLines = lines
			res := workload.Run(p)
			st := res.Stats
			rows = append(rows, AblationRow{
				Name:   fmt.Sprintf("subpage=%dB", lines*64),
				Kind:   k,
				TPS:    res.TPS,
				Writes: st.TotalWriteBytes(),
			})
		}
	}
	return rows
}

// AblateWSB shrinks the write-set buffer until transactions overflow into
// the software fall-back path (§3.5), showing its cost.
func AblateWSB(sc Scale) []AblationRow {
	var rows []AblationRow
	for _, entries := range []int{64, 4, 2} {
		p := sc.params(workload.RBTreeRand, ssp.SSP, 1)
		p.Machine.WSBEntries = entries
		res := workload.Run(p)
		st := res.Stats
		rows = append(rows, AblationRow{
			Name:     fmt.Sprintf("wsb=%d", entries),
			Kind:     workload.RBTreeRand,
			TPS:      res.TPS,
			Writes:   st.TotalWriteBytes(),
			Fallback: st.FallbackTxns,
		})
	}
	return rows
}

// AblateRedoQueue varies REDO-LOG's post-commit write-back queue bound,
// exposing DHTM's residual critical-path cost.
func AblateRedoQueue(sc Scale) []AblationRow {
	var rows []AblationRow
	for _, q := range []int{8, 64, 512} {
		p := sc.params(workload.BTreeRand, ssp.RedoLog, 1)
		p.Machine.RedoQueueLines = q
		res := workload.Run(p)
		st := res.Stats
		rows = append(rows, AblationRow{
			Name:   fmt.Sprintf("redoq=%d", q),
			Kind:   workload.BTreeRand,
			TPS:    res.TPS,
			Writes: st.TotalWriteBytes(),
		})
	}
	return rows
}

// AblateSSPCacheResidency shrinks the L3-resident share of the SSP cache,
// forcing DRAM-latency metadata fetches (the effect Figure 9 sweeps via
// latency).
func AblateSSPCacheResidency(sc Scale) []AblationRow {
	var rows []AblationRow
	for _, resident := range []int{1024, 128, 16} {
		p := sc.params(workload.SPS, ssp.SSP, 1)
		p.Machine.SSPResident = resident
		res := workload.Run(p)
		st := res.Stats
		rows = append(rows, AblationRow{
			Name:   fmt.Sprintf("resident=%d", resident),
			Kind:   workload.SPS,
			TPS:    res.TPS,
			Writes: st.TotalWriteBytes(),
		})
	}
	return rows
}

// AblateRedoEngines compares REDO-LOG's single background write-back engine
// (the modelled DHTM behaviour, which pins its parallel speedup near 1x)
// against per-core engines on the 4-core concurrent memcached run — the
// ROADMAP's write-back ablation. TPS is committed TPS of the parallel run;
// Speedup is against the same serial 1-core baseline, so the engine count's
// parallel-speedup delta reads directly off the column.
func AblateRedoEngines(sc Scale) []AblationRow {
	const cores = 4
	serial := workload.Run(sc.params(workload.Memcached, ssp.RedoLog, 1))
	sTPS := CommittedTPS(serial.Cycles, serial)
	var rows []AblationRow
	for _, engines := range []int{1, 2, cores} {
		p := sc.params(workload.Memcached, ssp.RedoLog, cores)
		p.Machine.RedoWriteBackEngines = engines
		res := workload.RunParallel(p)
		row := AblationRow{
			Name:   fmt.Sprintf("wbengines=%d", engines),
			Kind:   workload.Memcached,
			TPS:    CommittedTPS(res.Cycles, res.Result),
			Writes: res.Stats.TotalWriteBytes(),
		}
		if sTPS > 0 {
			row.Speedup = row.TPS / sTPS
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderAblations formats ablation rows; the speedup column appears only
// when a row carries one (the concurrency ablations).
func RenderAblations(title string, rows []AblationRow) string {
	withSpeedup := false
	for _, r := range rows {
		if r.Speedup > 0 {
			withSpeedup = true
		}
	}
	out := title + "\n"
	out += fmt.Sprintf("%-14s %-12s %12s %14s %10s", "Config", "Workload", "TPS", "NVRAM bytes", "Fallbacks")
	if withSpeedup {
		out += fmt.Sprintf(" %10s", "Speedup")
	}
	out += "\n"
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %-12s %12.0f %14d %10d", r.Name, r.Kind, r.TPS, r.Writes, r.Fallback)
		if withSpeedup {
			out += fmt.Sprintf(" %9.2fx", r.Speedup)
		}
		out += "\n"
	}
	return out
}
