package experiments

import (
	"fmt"
	"strings"

	"repro/internal/workload"
	"repro/ssp"
)

// This file is the serve experiment (beyond the paper): the open-loop
// latency view of the relaxed-durability trade Vilamb argues for. For each
// (skew, cores) cell it first probes closed-loop synchronous capacity, then
// offers fixed fractions of that capacity — the same offered load — to a
// synchronous and a relaxed server, and reports acknowledgment-latency
// percentiles (p50/p99/p999, simulated cycles) beside throughput and the
// relaxed mode's staleness price (mean harden lag). The machine shape is
// the epoch experiment's fence-floor mix — one journal shard, four channels
// — where the journal flush dominates the sync ack path, so the sweep
// answers the question cTPS alone cannot: what tail latency does each
// durability mode deliver at the load the deployment actually runs?

// ServePoint is one (skew, cores, load, mode) cell.
type ServePoint struct {
	Skew       float64
	Cores      int
	LoadPct    int     // percent of this cell's probed sync capacity (0 = the probe itself)
	OfferedTPS float64 // offered ops per simulated second (0 = closed loop)
	Relaxed    bool
	Res        workload.ParallelResult
}

// ServeSkews returns the default key-skew sweep: uniform, YCSB-style, and
// hot-key-dominated.
func ServeSkews() []float64 { return []float64{0, 0.99, 1.2} }

// ServeLoads returns the default offered-load points as percent of probed
// synchronous capacity.
func ServeLoads() []int { return []int{50, 80, 95} }

// serveParams maps a Scale onto ServeParams.
func (sc Scale) serveParams(cores int, skew float64) workload.ServeParams {
	return workload.ServeParams{
		Backend: ssp.SSP,
		Clients: cores,
		Ops:     sc.Ops,
		Items:   sc.Items,
		Skew:    skew,
		Seed:    sc.Seed,
		Machine: ssp.Config{Channels: 4, JournalShards: 1},
	}
}

// ServeSweep runs skew × load × {sync, relaxed} for every core count. Each
// (skew, cores) cell is anchored by a closed-loop synchronous probe (its
// LoadPct-0 point); sync and relaxed then run at identical offered loads so
// their percentiles compare directly. epoch is the relaxed runs'
// DurabilityEpoch in cycles.
func ServeSweep(sc Scale, skews []float64, loads []int, coresList []int, epoch int) []ServePoint {
	var points []ServePoint
	for _, skew := range skews {
		for _, cores := range coresList {
			probe := workload.RunServe(sc.serveParams(cores, skew))
			points = append(points, ServePoint{
				Skew: skew, Cores: cores, Res: probe,
			})
			capacity := probe.CommittedTPS
			for _, pct := range loads {
				rate := capacity * float64(pct) / 100
				for _, relaxed := range []bool{false, true} {
					p := sc.serveParams(cores, skew)
					p.OfferedTPS = rate
					p.Relaxed = relaxed
					if relaxed {
						p.Machine.DurabilityEpoch = epoch
					}
					points = append(points, ServePoint{
						Skew: skew, Cores: cores, LoadPct: pct,
						OfferedTPS: rate, Relaxed: relaxed,
						Res: workload.RunServe(p),
					})
				}
			}
		}
	}
	return points
}

// RenderServe formats the sweep: one row per point with acknowledgment
// percentiles in cycles, acknowledged throughput, and the relaxed rows'
// mean harden lag (the staleness bound actually paid).
func RenderServe(points []ServePoint) string {
	if len(points) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-6s %-6s %-8s %12s %12s %9s %9s %9s %10s\n",
		"skew", "cores", "load", "mode", "offered", "ackTPS", "p50", "p99", "p999", "lag(cyc)")
	for _, pt := range points {
		mode, load := "sync", "probe"
		if pt.Relaxed {
			mode = "relaxed"
		}
		if pt.LoadPct > 0 {
			load = fmt.Sprintf("%d%%", pt.LoadPct)
		}
		lag := "-"
		if pt.Relaxed {
			lag = fmt.Sprintf("%.0f", MeanHardenLag(pt.Res.Stats))
		}
		fmt.Fprintf(&b, "%-6.2f %-6d %-6s %-8s %12.0f %12.0f %9d %9d %9d %10s\n",
			pt.Skew, pt.Cores, load, mode, pt.OfferedTPS, pt.Res.CommittedTPS,
			pt.Res.LatencyP50, pt.Res.LatencyP99, pt.Res.LatencyP999, lag)
	}
	return b.String()
}
