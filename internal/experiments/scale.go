package experiments

import (
	"fmt"
	"strings"

	"repro/internal/workload"
	"repro/ssp"
)

// This file is the scale-out experiment (beyond the paper): committed
// throughput from 1 to 16 cores under the deterministic bounded-lag window
// scheduler, swept against the window size W. Window 0 is the free-running
// concurrent engine (fast on the host, host-schedule dependent timing);
// W > 0 serialises cores onto one execution slot in simulated-time order,
// making every repeat byte-identical. The sweep reports the simulated
// speedup curve (which W does not change — conservative windows only order
// the interleaving), the scheduler's host-side barrier-wait share (which
// picks the default W), and the per-shard journal pressure that explains
// where the speedup curve flattens.

// ScaleWindows returns the swept window sizes in cycles; 0 is the
// free-running baseline.
func ScaleWindows() []int { return []int{0, 1024, 4096, 16384} }

// ScalePoint is one (window, cores) cell of the sweep for one workload.
type ScalePoint struct {
	Kind     workload.Kind
	Window   int // scheduler window in cycles; 0 = free-running
	Cores    int
	Serial   workload.Result         // 1-core serial baseline (shared by all cells)
	Parallel workload.ParallelResult // cores-goroutine run at this window
	Speedup  float64                 // parallel committed TPS / serial committed TPS

	// WinPar is the same cell re-run with Config.WindowParallel — the
	// speculate-and-replay mode — and HostSpeedup the serial-grant wall
	// over the WindowParallel wall: the host-time recovered by taking the
	// program off the scheduler's slot. Simulated metrics are byte-identical
	// between the two runs by construction (the determinism regression
	// enforces it); nil / 0 for free-running cells (Window == 0), where
	// WindowParallel is undefined.
	WinPar      *workload.ParallelResult
	HostSpeedup float64
}

// ScaleSweep runs kind under SSP for every window × cores combination on a
// sharded machine (4 channels, per-core-capped journal shards, the
// commit-path group window on) so the shared-hardware arbitration the
// scheduler makes deterministic is actually exercised.
func ScaleSweep(sc Scale, kind workload.Kind, windows, coresList []int) []ScalePoint {
	tune := func(p *workload.Params, window int) {
		p.Machine.Channels = 4
		p.Machine.JournalShards = 4
		p.Machine.GroupCommitWindow = 4096
		p.Machine.TimeWindow = window
	}
	sp := sc.params(kind, ssp.SSP, 1)
	tune(&sp, 0)
	serial := workload.Run(sp)
	sTPS := CommittedTPS(serial.Cycles, serial)

	var points []ScalePoint
	for _, w := range windows {
		for _, cores := range coresList {
			pp := sc.params(kind, ssp.SSP, cores)
			tune(&pp, w)
			par := workload.RunParallel(pp)
			pt := ScalePoint{
				Kind:     kind,
				Window:   w,
				Cores:    cores,
				Serial:   serial,
				Parallel: par,
			}
			if sTPS > 0 {
				pt.Speedup = CommittedTPS(par.Cycles, par.Result) / sTPS
			}
			if w > 0 {
				wp := pp
				wp.Machine.WindowParallel = true
				wpar := workload.RunParallel(wp)
				pt.WinPar = &wpar
				if wpar.Wall > 0 {
					pt.HostSpeedup = float64(par.Wall) / float64(wpar.Wall)
				}
			}
			points = append(points, pt)
		}
	}
	return points
}

// RenderScale formats the sweep: the committed-TPS/speedup grid (window
// rows × core columns), the scheduler's barrier-wait share per cell (the
// host price of determinism, used to pick the default W), and each
// windowed cell's journal pressure.
func RenderScale(points []ScalePoint) string {
	if len(points) == 0 {
		return ""
	}
	rowKeys, coresList, cellOf := gridAxes(points, func(pt ScalePoint) (int, int) { return pt.Window, pt.Cores })
	var b strings.Builder
	b.WriteString(renderSweepGrid("window", rowKeys, coresList, func(row, cores int) (sweepCell, bool) {
		pt, ok := cellOf(row, cores)
		if !ok {
			return sweepCell{}, false
		}
		return sweepCell{
			Serial:  CommittedTPS(pt.Serial.Cycles, pt.Serial),
			TPS:     CommittedTPS(pt.Parallel.Cycles, pt.Parallel.Result),
			Speedup: pt.Speedup,
		}, true
	}))
	b.WriteString("\nscheduler cost (host side; simulated timing is window-invariant;\n" +
		"winpar = WindowParallel re-run of the cell, simulated metrics byte-identical —\n" +
		"its host speedup is Amdahl-bounded by the program-logic share of host time,\n" +
		"since replayers still serialise all simulated-hardware work on one slot):\n")
	for _, w := range rowKeys {
		for _, c := range coresList {
			pt, ok := cellOf(w, c)
			if !ok {
				continue
			}
			if w == 0 {
				fmt.Fprintf(&b, "  W=free  x %2dcore: wall %6.1fms (free-running; repeats not byte-identical)\n",
					c, float64(pt.Parallel.Wall.Microseconds())/1000)
				continue
			}
			ws := pt.Parallel.WindowSched
			fmt.Fprintf(&b, "  W=%-5d x %2dcore: wall %6.1fms, barrier-wait %5.1f%% of host core-time, %d windows, %d grants, %d stalls",
				w, c, float64(pt.Parallel.Wall.Microseconds())/1000,
				100*ws.BarrierShare(c, pt.Parallel.Wall), ws.Windows, ws.Grants, ws.BarrierStalls)
			if pt.WinPar != nil {
				fmt.Fprintf(&b, "; winpar wall %6.1fms (host speedup %.2fx, %d spec parks)",
					float64(pt.WinPar.Wall.Microseconds())/1000, pt.HostSpeedup, pt.WinPar.WindowSched.SpecParks)
			}
			b.WriteByte('\n')
		}
	}
	b.WriteString("\njournal pressure (windowed cells, largest core count):\n")
	maxCores := coresList[len(coresList)-1]
	for _, w := range rowKeys {
		if w == 0 {
			continue
		}
		pt, ok := cellOf(w, maxCores)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  W=%-5d x %2dcore: %s\n", w, maxCores, JournalPressureLine(pt.Parallel.Result))
	}
	return b.String()
}
