package experiments

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/workload"
	"repro/ssp"
	"repro/ssp/pds"
)

// Recovery-effort experiment (beyond the paper's figures, motivated by
// §4.1.2: checkpointing exists "to limit the growth of the journaling space
// and also to bound the recovery time"): crash an SSP machine mid-workload
// under different journal capacities and measure how much recovery work the
// surviving journal implies.

// RecoveryRow is one journal-capacity configuration's outcome.
type RecoveryRow struct {
	JournalKB       int
	Checkpoints     uint64 // checkpoints during the run
	ReplayedRecords uint64 // journal records applied at recovery
	RecoveryWrites  uint64 // NVRAM writes performed by recovery
	Recovered       bool   // post-recovery integrity verified
}

// RecoveryEffort runs a red-black-tree workload on SSP, crashes it, and
// recovers, for several journal sizes. Larger journals checkpoint less
// often but leave more records to replay after a crash.
func RecoveryEffort(sc Scale) []RecoveryRow {
	var rows []RecoveryRow
	for _, kb := range []int{16, 64, 256} {
		cfg := ssp.Config{
			Backend:   ssp.SSP,
			Cores:     1,
			NVRAMMB:   192,
			DRAMMB:    4,
			JournalKB: kb,
		}
		if sc.STLB != 0 {
			cfg.STLBEntries = sc.STLB
		}
		m := ssp.MustNew(cfg)
		c := m.Core(0)
		c.Begin()
		rb := pds.CreateRBTree(c, m.Heap())
		m.SetRoot(c, 0, rb.Head())
		c.Commit()

		rng := engine.NewRNG(sc.Seed)
		ref := map[uint64]uint64{}
		for i := 0; i < sc.Ops; i++ {
			k := rng.Uint64n(sc.Keys)
			v := rng.Uint64()
			c.Begin()
			rb.Insert(c, k, v)
			c.Commit()
			ref[k] = v
		}
		ckpts := m.Stats().Checkpoints

		img := m.Crash()
		m2, err := ssp.Restore(cfg, img)
		row := RecoveryRow{JournalKB: kb, Checkpoints: ckpts}
		if err == nil {
			st := m2.Stats()
			row.ReplayedRecords = st.ReplayedRecords
			row.RecoveryWrites = st.RecoveryNVWrites
			// Verify a sample of committed state.
			c2 := m2.Core(0)
			rb2 := pds.OpenRBTree(m2.Heap(), m2.Root(c2, 0))
			row.Recovered = true
			n := 0
			for k, v := range ref {
				if got, ok := rb2.Get(c2, k); !ok || got != v {
					row.Recovered = false
					break
				}
				if n++; n >= 256 {
					break
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderRecovery formats the recovery-effort rows.
func RenderRecovery(rows []RecoveryRow) string {
	out := "recovery effort vs journal capacity (SSP, RBTree workload)\n"
	out += fmt.Sprintf("%-10s %12s %16s %15s %10s\n", "journal", "checkpoints", "replayed records", "recovery writes", "verified")
	for _, r := range rows {
		out += fmt.Sprintf("%7dKiB %12d %16d %15d %10v\n",
			r.JournalKB, r.Checkpoints, r.ReplayedRecords, r.RecoveryWrites, r.Recovered)
	}
	return out
}

// AblateConsolidationPolicy compares eager (the paper's implementation)
// against lazy consolidation (its flagged future work, §3.4) on the
// consolidation-heavy workloads.
func AblateConsolidationPolicy(sc Scale) []AblationRow {
	var rows []AblationRow
	for _, k := range []workload.Kind{workload.SPS, workload.RBTreeRand} {
		for _, lazy := range []bool{false, true} {
			p := sc.params(k, ssp.SSP, 1)
			p.Machine.LazyConsolidation = lazy
			res := workload.Run(p)
			st := res.Stats
			name := "eager"
			if lazy {
				name = "lazy"
			}
			rows = append(rows, AblationRow{
				Name:   "consol=" + name,
				Kind:   k,
				TPS:    res.TPS,
				Writes: st.TotalWriteBytes(),
			})
		}
	}
	return rows
}

// AblateFlipMechanism compares the flip-current-bit coherence broadcast
// (§4.1.1) against TLB shootdowns (§4.3's simpler-hardware alternative).
func AblateFlipMechanism(sc Scale) []AblationRow {
	var rows []AblationRow
	for _, k := range []workload.Kind{workload.RBTreeRand, workload.HashRand} {
		for _, shoot := range []bool{false, true} {
			p := sc.params(k, ssp.SSP, 1)
			p.Machine.FlipViaShootdown = shoot
			res := workload.Run(p)
			st := res.Stats
			name := "broadcast"
			if shoot {
				name = "shootdown"
			}
			rows = append(rows, AblationRow{
				Name:   "flip=" + name,
				Kind:   k,
				TPS:    res.TPS,
				Writes: st.TotalWriteBytes(),
			})
		}
	}
	return rows
}
