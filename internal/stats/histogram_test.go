package stats

import (
	"sort"
	"testing"

	"repro/internal/engine"
)

// TestHistogramBucketLayout checks the bucket map is monotone, total, and
// consistent with the reported bucket bounds.
func TestHistogramBucketLayout(t *testing.T) {
	if got := histBucket(0); got != 0 {
		t.Fatalf("histBucket(0) = %d, want 0", got)
	}
	// Every bucket's inclusive max must map back to that bucket, and the
	// next value must map to the next bucket.
	for idx := 0; idx < HistBuckets; idx++ {
		mx := histBucketMax(idx)
		if got := histBucket(mx); got != idx {
			t.Fatalf("histBucket(histBucketMax(%d)=%d) = %d", idx, mx, got)
		}
		if mx < ^uint64(0) {
			if got := histBucket(mx + 1); got != idx+1 && idx+1 < HistBuckets {
				t.Fatalf("histBucket(%d) = %d, want %d", mx+1, got, idx+1)
			}
		}
	}
	if got := histBucket(^uint64(0)); got != HistBuckets-1 {
		t.Fatalf("histBucket(max uint64) = %d, want %d", got, HistBuckets-1)
	}
}

// TestHistogramPercentileOracle validates percentiles against a sorted-sample
// oracle: the reported value must cover the oracle sample (>=) while
// overshooting by at most one sub-bucket width.
func TestHistogramPercentileOracle(t *testing.T) {
	cases := []struct {
		name string
		gen  func(rng *engine.RNG, i int) uint64
		n    int
	}{
		{"uniform", func(rng *engine.RNG, i int) uint64 { return rng.Uint64n(1 << 20) }, 20000},
		{"heavytail", func(rng *engine.RNG, i int) uint64 {
			v := rng.Uint64n(1000) + 1
			if rng.Intn(100) == 0 {
				v *= 10000 // 1% tail three orders of magnitude out
			}
			return v
		}, 20000},
		{"constant", func(rng *engine.RNG, i int) uint64 { return 4242 }, 5000},
		{"small", func(rng *engine.RNG, i int) uint64 { return uint64(i % 7) }, 700},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := engine.NewRNG(0xFEED)
			var h Histogram
			samples := make([]uint64, tc.n)
			for i := range samples {
				v := tc.gen(rng, i)
				samples[i] = v
				h.Record(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			if h.Count != uint64(tc.n) {
				t.Fatalf("Count = %d, want %d", h.Count, tc.n)
			}
			var sum uint64
			for _, v := range samples {
				sum += v
			}
			if h.Sum != sum {
				t.Fatalf("Sum = %d, want %d", h.Sum, sum)
			}
			if h.MinSeen != samples[0] || h.MaxSeen != samples[tc.n-1] {
				t.Fatalf("Min/Max = %d/%d, want %d/%d", h.MinSeen, h.MaxSeen, samples[0], samples[tc.n-1])
			}
			for _, p := range []float64{1, 25, 50, 90, 99, 99.9, 100} {
				rank := int(p / 100 * float64(tc.n))
				if float64(rank)*100 < p*float64(tc.n) {
					rank++
				}
				if rank < 1 {
					rank = 1
				}
				oracle := samples[rank-1]
				got := h.Percentile(p)
				if got < oracle {
					t.Errorf("p%v = %d undershoots oracle %d", p, got, oracle)
				}
				// Upper bound: the oracle's bucket max (one sub-bucket of
				// slack), clamped like Percentile clamps.
				bound := histBucketMax(histBucket(oracle))
				if bound > h.MaxSeen {
					bound = h.MaxSeen
				}
				if got > bound {
					t.Errorf("p%v = %d overshoots bucket bound %d (oracle %d)", p, got, bound, oracle)
				}
			}
		})
	}
}

// TestHistogramMerge checks Merge equals recording the union.
func TestHistogramMerge(t *testing.T) {
	rng := engine.NewRNG(7)
	var a, b, both Histogram
	for i := 0; i < 5000; i++ {
		v := rng.Uint64n(1 << uint(4+i%40))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	a.Merge(&b)
	if a != both {
		t.Fatalf("merged histogram differs from union")
	}
	var empty Histogram
	empty.Merge(&a)
	if empty != both {
		t.Fatalf("merge into empty differs from source")
	}
	a.Merge(&Histogram{})
	if a != both {
		t.Fatalf("merging an empty histogram changed the receiver")
	}
}

// TestHistogramEmpty checks the zero value is usable.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(99) != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram reports non-zero summary")
	}
}
