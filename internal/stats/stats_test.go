package stats

import (
	"strings"
	"testing"
)

func TestCategoryNames(t *testing.T) {
	want := map[WriteCat]string{
		CatData:          "Data",
		CatUndoLog:       "UndoLog",
		CatRedoLog:       "RedoLog",
		CatMetaJournal:   "MetaJournal",
		CatCommitRecord:  "CommitRecord",
		CatConsolidation: "Consolidation",
		CatCheckpoint:    "Checkpoint",
		CatControl:       "Control",
		CatRecovery:      "Recovery",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if len(Categories()) != len(want) {
		t.Errorf("Categories() has %d entries, want %d", len(Categories()), len(want))
	}
}

func TestAddWriteAndTotals(t *testing.T) {
	var s Stats
	s.AddWrite(CatData, 64)
	s.AddWrite(CatUndoLog, 64)
	s.AddWrite(CatMetaJournal, 40)
	s.AddWrite(CatConsolidation, 64)
	if s.NVRAMWriteLines != 4 {
		t.Errorf("lines = %d", s.NVRAMWriteLines)
	}
	if s.TotalWriteBytes() != 64+64+40+64 {
		t.Errorf("total = %d", s.TotalWriteBytes())
	}
	if s.WriteBytes(CatData) != 64 {
		t.Errorf("data bytes = %d", s.WriteBytes(CatData))
	}
	// Logging = everything except Data and Recovery.
	if s.LoggingBytes() != 64+40+64 {
		t.Errorf("logging = %d", s.LoggingBytes())
	}
	// Critical-path logging excludes consolidation/checkpoint/control.
	if s.CriticalPathLoggingBytes() != 64+40 {
		t.Errorf("critical-path logging = %d", s.CriticalPathLoggingBytes())
	}
}

func TestAddAccumulates(t *testing.T) {
	var a, b Stats
	a.AddWrite(CatData, 64)
	a.Commits = 3
	a.TLBMisses = 7
	a.CacheHits[1] = 11
	b.AddWrite(CatData, 64)
	b.Commits = 2
	b.FlipBroadcasts = 5
	a.Add(&b)
	if a.Commits != 5 || a.TLBMisses != 7 || a.FlipBroadcasts != 5 {
		t.Errorf("Add wrong: %+v", a)
	}
	if a.WriteBytes(CatData) != 128 || a.NVRAMWriteLines != 2 {
		t.Errorf("write accumulation wrong")
	}
	if a.CacheHits[1] != 11 {
		t.Errorf("cache hits lost")
	}
}

func TestSummaryMentionsKeyCounters(t *testing.T) {
	var s Stats
	s.AddWrite(CatMetaJournal, 40)
	s.Commits = 9
	s.Consolidations = 2
	out := s.Summary()
	for _, want := range []string{"MetaJournal", "commits: 9", "consolidations: 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"Name", "Value"}, [][]string{{"a", "1"}, {"longer", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator misaligned with header")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
