package stats

// Sharded splits one logical counter set across per-core shards plus one
// shared shard, so concurrently executing cores never write the same
// counters. Every field of Stats is a sum (or a max that commutes), so the
// aggregate is order-independent: it does not matter which core performed
// an increment or in which interleaving — the aggregated totals are the
// same as a serial run performing the same work.
//
// Shard ownership contract:
//
//   - Shard(i) is written only by the goroutine driving core i (TLB
//     lookups, per-core backend counters). No lock is needed.
//   - Shared() is written only while holding the lock of the structure
//     doing the writing (the cache hierarchy's interconnect lock, the SSP
//     backend's structural lock).
//   - ChannelShards(n) shards are written only while holding the owning
//     memory channel's timing lock (one shard per channel, so channels
//     never write a counter concurrently).
//
// Aggregate and Reset are not safe to call concurrently with simulated
// execution; callers quiesce the machine first (join the core goroutines).
type Sharded struct {
	perCore  []Stats
	channels []Stats
	shared   Stats
}

// NewSharded returns a shard set for the given core count.
func NewSharded(cores int) *Sharded {
	return &Sharded{perCore: make([]Stats, cores)}
}

// Shard returns core i's private shard.
func (s *Sharded) Shard(i int) *Stats { return &s.perCore[i] }

// Shared returns the shard for counters updated under shared-structure
// locks (memory system, cache hierarchy, journal).
func (s *Sharded) Shared() *Stats { return &s.shared }

// Cores returns the number of per-core shards.
func (s *Sharded) Cores() int { return len(s.perCore) }

// ChannelShards allocates (or reallocates) n shards dedicated to the memory
// channels and returns pointers to them, in channel order. Each shard is
// written only under its channel's timing lock, so concurrently executing
// cores that hit different channels never write the same counters. The
// shards participate in Aggregate and Reset like every other shard.
func (s *Sharded) ChannelShards(n int) []*Stats {
	s.channels = make([]Stats, n)
	out := make([]*Stats, n)
	for i := range s.channels {
		out[i] = &s.channels[i]
	}
	return out
}

// Aggregate sums every shard into one Stats value.
func (s *Sharded) Aggregate() Stats {
	var out Stats
	out.Add(&s.shared)
	for i := range s.perCore {
		out.Add(&s.perCore[i])
	}
	for i := range s.channels {
		out.Add(&s.channels[i])
	}
	return out
}

// PerCore returns a copy of core i's shard (per-core reporting).
func (s *Sharded) PerCore(i int) Stats { return s.perCore[i] }

// Reset zeroes every shard.
func (s *Sharded) Reset() {
	s.shared = Stats{}
	for i := range s.perCore {
		s.perCore[i] = Stats{}
	}
	for i := range s.channels {
		s.channels[i] = Stats{}
	}
}
