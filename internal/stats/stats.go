// Package stats collects the counters the paper's evaluation reports:
// NVRAM/DRAM traffic split by purpose, cache and TLB behaviour, coherence
// messages, and transaction throughput. All figures and tables in the
// reproduction are derived exclusively from these counters.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// WriteCat classifies every NVRAM write by purpose. The paper's Figure 6
// counts the "logging" categories, Figure 7a counts everything, and
// Figure 7b breaks SSP's writes into Data / Journaling / Consolidation /
// Checkpointing.
type WriteCat int

// Write categories.
const (
	// CatData is application data reaching NVRAM: transactional write-set
	// flushes, cache write-backs of persistent lines, and redo-log style
	// post-commit write-backs.
	CatData WriteCat = iota
	// CatUndoLog is undo-log records (old values) written by UNDO-LOG and by
	// the software fall-back path.
	CatUndoLog
	// CatRedoLog is redo-log records (new values) written by REDO-LOG.
	CatRedoLog
	// CatMetaJournal is SSP metadata-journal records (§3.3).
	CatMetaJournal
	// CatCommitRecord is per-transaction commit/end markers for the logging
	// designs.
	CatCommitRecord
	// CatConsolidation is line copies performed by SSP page consolidation
	// (§3.4).
	CatConsolidation
	// CatCheckpoint is persistent-SSP-cache updates performed by
	// checkpointing (§4.1.2).
	CatCheckpoint
	// CatControl is small control-plane writes: log head/tail pointers, page
	// table entries, superblock fields.
	CatControl
	// CatRecovery is writes performed during crash recovery (rollback or
	// replay); excluded from steady-state figures.
	CatRecovery

	numCats
)

// String returns the category name used in reports.
func (c WriteCat) String() string {
	switch c {
	case CatData:
		return "Data"
	case CatUndoLog:
		return "UndoLog"
	case CatRedoLog:
		return "RedoLog"
	case CatMetaJournal:
		return "MetaJournal"
	case CatCommitRecord:
		return "CommitRecord"
	case CatConsolidation:
		return "Consolidation"
	case CatCheckpoint:
		return "Checkpoint"
	case CatControl:
		return "Control"
	case CatRecovery:
		return "Recovery"
	default:
		return fmt.Sprintf("WriteCat(%d)", int(c))
	}
}

// Categories lists all write categories in report order.
func Categories() []WriteCat {
	cats := make([]WriteCat, numCats)
	for i := range cats {
		cats[i] = WriteCat(i)
	}
	return cats
}

// MaxChannels bounds the per-channel counter arrays. The memory model
// supports at most this many independent channels (memsim.Config.Channels).
const MaxChannels = 16

// MaxJournalShards bounds the per-shard SSP metadata-journal counter arrays
// (vm.LayoutConfig.JournalShards; keep the two limits in sync).
const MaxJournalShards = 16

// FrameWriteBuckets sizes the log2 histogram of per-frame NVRAM write
// counts (Stats.FrameWrites): bucket i counts frames whose write count has
// bit length i+1, i.e. lies in [2^i, 2^(i+1)).
const FrameWriteBuckets = 24

// Stats is the full counter set for one simulation run. It is plain data;
// the zero value is ready to use.
type Stats struct {
	// NVRAM traffic.
	NVRAMReadLines  uint64
	NVRAMWriteLines uint64
	NVRAMWriteBytes [numCats]uint64

	// DRAM traffic.
	DRAMReadLines  uint64
	DRAMWriteLines uint64

	// Per-channel memory traffic (multi-channel interleaved model). Indexed
	// by channel; channels beyond Config.Channels stay zero.
	ChannelLines      [MaxChannels]uint64 // 64-byte transfers served per channel
	ChannelBusyCycles [MaxChannels]uint64 // data-bus occupancy charged per channel

	// NVRAMBankBusy is the NVRAM bank occupancy charged to writes, split by
	// write category — how long the banks spent absorbing journal records,
	// data flushes, checkpoints and so on. NVRAMBankBusy[CatMetaJournal] is
	// the metadata journal's serial-append Amdahl term made visible.
	NVRAMBankBusy [numCats]uint64

	// Row-buffer behaviour.
	RowHits   uint64
	RowMisses uint64

	// Cache behaviour, indexed by level (0=L1, 1=L2, 2=L3).
	CacheHits   [3]uint64
	CacheMisses [3]uint64

	// TLB behaviour (persistent-heap accesses only, as in §5.1).
	TLBHits      uint64 // L1 DTLB hits
	TLB2Hits     uint64 // L2 STLB hits
	TLBMisses    uint64
	TLBEvictions uint64 // departures from the whole hierarchy

	// Coherence traffic.
	FlipBroadcasts uint64 // SSP flip-current-bit messages (§4.1.1)
	Invalidations  uint64
	TxLineSpills   uint64 // speculative lines forced out of L3 to memory

	// SSP mechanism counters.
	SSPCacheHits      uint64
	SSPCacheMisses    uint64
	Consolidations    uint64
	ConsolidatedLines uint64
	Checkpoints       uint64
	JournalRecords    uint64
	FallbackTxns      uint64 // transactions diverted to the software path

	// CommitBarrierWait is the cycles commits spent blocked on their
	// data-flush fence (stage 2 of the SSP commit pipeline): the wait
	// between issuing the write-set clwbs and the slowest one landing.
	// Charged to the committing core's shard, so per-core reporting shows
	// which cores lose their window to flush overlap — the residual
	// multi-core gap the ROADMAP attributes to "data-flush overlap and
	// commit barriers". The logging baselines charge their equivalent
	// commit-critical persistence waits here too: UNDO-LOG's write-set
	// flush fence and REDO-LOG's write-back queue-admission stall.
	CommitBarrierWait uint64

	// EagerFlushLines counts cache-line write-backs issued by the eager
	// async data-flush path (Config.EagerFlush): clwbs launched at store
	// time instead of at the commit fence. Repeated stores to a line
	// re-flush it, so EagerFlushLines exceeding the deferred model's data
	// flushes is the write amplification eager flushing trades for commit
	// latency.
	EagerFlushLines uint64

	// Group-commit counters (Config.GroupCommitWindow > 0).
	// GroupCommitBatches counts journal-leg flushes on the group-commit
	// path — a leader's coalesced flush or a latecomer's solo flush — and
	// GroupCommitFollowers counts commits that rode another core's flush
	// ticket instead of paying their own. Batches + Followers equals the
	// commits routed through the group protocol — the journaling commits,
	// i.e. Commits minus multi-shard globals, empty-write-set commits and
	// fall-back commits — so followers/batches is the mean extra occupancy
	// per coalesced flush.
	GroupCommitBatches   uint64
	GroupCommitFollowers uint64

	// Relaxed-durability counters (Config.DurabilityEpoch > 0).
	// RelaxedCommits counts transactions acknowledged by CommitRelaxed with
	// their durability deferred into a shard epoch. EpochSeals counts
	// recEpochSeal records appended (one per explicit ring flush);
	// HardenedEpochs counts the subset that closed an OPEN epoch — one with
	// at least one relaxed commit buffered — and EpochHardenLag accumulates,
	// for those, the cycles from the epoch's first relaxed commit to its
	// seal's durability (mean ack-to-durable lag = EpochHardenLag /
	// HardenedEpochs). After a crash, every relaxed commit either survives
	// recovery or is lost whole: LostEpochTxns counts the lost End records
	// the epoch cut discarded from NVRAM and DroppedEpochRecords every
	// record past a cut, so survivors + LostEpochTxns <= RelaxedCommits —
	// the gap is End records that never left the ring's volatile tail line
	// (lost the same way, just with no durable trace to count).
	RelaxedCommits      uint64
	EpochSeals          uint64
	HardenedEpochs      uint64
	EpochHardenLag      uint64
	DroppedEpochRecords uint64
	LostEpochTxns       uint64

	// DRAM buffer-cache counters (ssp.Config.DRAMCacheFrames > 0; all zero
	// in the paper's bare-NVRAM model). The buffer tier routes data-range
	// traffic between the CPU caches and NVRAM: reads that hit a DRAM frame
	// pay DRAM timing (DRAMCacheHits), misses fill from NVRAM
	// (DRAMCacheMisses; hits + misses == DRAMCacheReads), capacity
	// write-backs of victim lines are absorbed in DRAM instead of reaching
	// NVRAM (DRAMCacheAbsorbed — the tier's NVRAM write saving), commit
	// fences write dirty buffered lines through (DRAMCacheHardens — the
	// durability backstop), and evicting a dirty frame writes its dirty
	// lines back to NVRAM (DRAMCacheWriteBacks, over DRAMCacheEvictions
	// frame evictions).
	DRAMCacheReads      uint64
	DRAMCacheHits       uint64
	DRAMCacheMisses     uint64
	DRAMCacheAbsorbed   uint64
	DRAMCacheHardens    uint64
	DRAMCacheWriteBacks uint64
	DRAMCacheEvictions  uint64

	// Software wear-leveling counters. WearRotations counts hot frames
	// retired by the rotation policy (core.Config.WearRotateWrites). The
	// remaining fields are a snapshot of memsim's per-frame NVRAM write
	// counters over the data frame pool, filled when the machine aggregates
	// its statistics: FrameWrites is a log2 histogram of per-frame write
	// counts (bucket i = frames with writes in [2^i, 2^(i+1))),
	// FrameWriteMax the hottest frame, FrameWriteTotal the sum and
	// FramesWritten the number of frames written at all — so max/mean =
	// FrameWriteMax / (FrameWriteTotal/FramesWritten) is the wear skew the
	// -exp wear sweep reports.
	WearRotations   uint64
	FrameWrites     [FrameWriteBuckets]uint64
	FrameWriteMax   uint64
	FrameWriteTotal uint64
	FramesWritten   uint64

	// Per-shard SSP metadata-journal counters (journal sharding). Indexed by
	// shard; shards beyond LayoutConfig.JournalShards stay zero.
	JournalShardRecords     [MaxJournalShards]uint64 // records appended per shard
	JournalShardCheckpoints [MaxJournalShards]uint64 // checkpoints drained per shard

	// Cross-shard (global) transaction counters: two-phase commits executed
	// and prepare records appended to participant shards. A global
	// transaction that resolves to a single shard commits on the fast path
	// and counts in neither.
	GlobalCommits  uint64
	PrepareRecords uint64

	// Logging mechanism counters.
	UndoRecords     uint64
	RedoRecords     uint64
	WritebackStalls uint64 // commits delayed by a full redo write-back queue

	// Transactions.
	Commits uint64
	Aborts  uint64

	// Recovery.
	Recoveries       uint64
	RecoveredTxns    uint64
	RolledBackTxns   uint64
	ReplayedRecords  uint64
	RecoveryNVWrites uint64
}

// AddWrite records one NVRAM line write of n bytes in category c.
func (s *Stats) AddWrite(c WriteCat, n int) {
	s.NVRAMWriteLines++
	s.NVRAMWriteBytes[c] += uint64(n)
}

// WriteBytes returns the bytes written in category c.
func (s *Stats) WriteBytes(c WriteCat) uint64 { return s.NVRAMWriteBytes[c] }

// TotalWriteBytes returns NVRAM write bytes summed over all categories.
func (s *Stats) TotalWriteBytes() uint64 {
	var t uint64
	for _, b := range s.NVRAMWriteBytes {
		t += b
	}
	return t
}

// LoggingBytes returns the "extra" (non-data) write bytes the paper's
// Figure 6 compares: log records, commit records, SSP journaling,
// consolidation and checkpointing.
func (s *Stats) LoggingBytes() uint64 {
	return s.NVRAMWriteBytes[CatUndoLog] +
		s.NVRAMWriteBytes[CatRedoLog] +
		s.NVRAMWriteBytes[CatMetaJournal] +
		s.NVRAMWriteBytes[CatCommitRecord] +
		s.NVRAMWriteBytes[CatConsolidation] +
		s.NVRAMWriteBytes[CatCheckpoint] +
		s.NVRAMWriteBytes[CatControl]
}

// CriticalPathLoggingBytes returns the extra bytes written on the commit
// critical path (excludes SSP's background consolidation/checkpointing).
func (s *Stats) CriticalPathLoggingBytes() uint64 {
	return s.NVRAMWriteBytes[CatUndoLog] +
		s.NVRAMWriteBytes[CatRedoLog] +
		s.NVRAMWriteBytes[CatMetaJournal] +
		s.NVRAMWriteBytes[CatCommitRecord]
}

// ActiveChannels returns the number of leading channel slots that saw any
// traffic (the effective channel count of the run; 0 when no memory traffic
// was recorded).
func (s *Stats) ActiveChannels() int {
	n := 0
	for i := range s.ChannelLines {
		if s.ChannelLines[i] > 0 {
			n = i + 1
		}
	}
	return n
}

// ActiveJournalShards returns the number of leading journal-shard slots
// that appended any records (the effective shard count of the run).
func (s *Stats) ActiveJournalShards() int {
	n := 0
	for i := range s.JournalShardRecords {
		if s.JournalShardRecords[i] > 0 {
			n = i + 1
		}
	}
	return n
}

// Add accumulates o into s field by field.
func (s *Stats) Add(o *Stats) {
	s.NVRAMReadLines += o.NVRAMReadLines
	s.NVRAMWriteLines += o.NVRAMWriteLines
	for i := range s.NVRAMWriteBytes {
		s.NVRAMWriteBytes[i] += o.NVRAMWriteBytes[i]
	}
	s.DRAMReadLines += o.DRAMReadLines
	s.DRAMWriteLines += o.DRAMWriteLines
	for i := range s.ChannelLines {
		s.ChannelLines[i] += o.ChannelLines[i]
		s.ChannelBusyCycles[i] += o.ChannelBusyCycles[i]
	}
	for i := range s.NVRAMBankBusy {
		s.NVRAMBankBusy[i] += o.NVRAMBankBusy[i]
	}
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	for i := range s.CacheHits {
		s.CacheHits[i] += o.CacheHits[i]
		s.CacheMisses[i] += o.CacheMisses[i]
	}
	s.TLBHits += o.TLBHits
	s.TLB2Hits += o.TLB2Hits
	s.TLBMisses += o.TLBMisses
	s.TLBEvictions += o.TLBEvictions
	s.FlipBroadcasts += o.FlipBroadcasts
	s.Invalidations += o.Invalidations
	s.TxLineSpills += o.TxLineSpills
	s.SSPCacheHits += o.SSPCacheHits
	s.SSPCacheMisses += o.SSPCacheMisses
	s.Consolidations += o.Consolidations
	s.ConsolidatedLines += o.ConsolidatedLines
	s.Checkpoints += o.Checkpoints
	s.JournalRecords += o.JournalRecords
	s.FallbackTxns += o.FallbackTxns
	s.CommitBarrierWait += o.CommitBarrierWait
	s.EagerFlushLines += o.EagerFlushLines
	s.GroupCommitBatches += o.GroupCommitBatches
	s.GroupCommitFollowers += o.GroupCommitFollowers
	s.RelaxedCommits += o.RelaxedCommits
	s.EpochSeals += o.EpochSeals
	s.HardenedEpochs += o.HardenedEpochs
	s.EpochHardenLag += o.EpochHardenLag
	s.DroppedEpochRecords += o.DroppedEpochRecords
	s.LostEpochTxns += o.LostEpochTxns
	s.DRAMCacheReads += o.DRAMCacheReads
	s.DRAMCacheHits += o.DRAMCacheHits
	s.DRAMCacheMisses += o.DRAMCacheMisses
	s.DRAMCacheAbsorbed += o.DRAMCacheAbsorbed
	s.DRAMCacheHardens += o.DRAMCacheHardens
	s.DRAMCacheWriteBacks += o.DRAMCacheWriteBacks
	s.DRAMCacheEvictions += o.DRAMCacheEvictions
	s.WearRotations += o.WearRotations
	for i := range s.FrameWrites {
		s.FrameWrites[i] += o.FrameWrites[i]
	}
	if o.FrameWriteMax > s.FrameWriteMax {
		s.FrameWriteMax = o.FrameWriteMax
	}
	s.FrameWriteTotal += o.FrameWriteTotal
	s.FramesWritten += o.FramesWritten
	for i := range s.JournalShardRecords {
		s.JournalShardRecords[i] += o.JournalShardRecords[i]
		s.JournalShardCheckpoints[i] += o.JournalShardCheckpoints[i]
	}
	s.GlobalCommits += o.GlobalCommits
	s.PrepareRecords += o.PrepareRecords
	s.UndoRecords += o.UndoRecords
	s.RedoRecords += o.RedoRecords
	s.WritebackStalls += o.WritebackStalls
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Recoveries += o.Recoveries
	s.RecoveredTxns += o.RecoveredTxns
	s.RolledBackTxns += o.RolledBackTxns
	s.ReplayedRecords += o.ReplayedRecords
	s.RecoveryNVWrites += o.RecoveryNVWrites
}

// Summary renders the counters as a human-readable block, used by cmd/sspsim.
func (s *Stats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NVRAM reads (lines):  %d\n", s.NVRAMReadLines)
	fmt.Fprintf(&b, "NVRAM writes (lines): %d\n", s.NVRAMWriteLines)
	fmt.Fprintf(&b, "NVRAM write bytes by category:\n")
	for _, c := range Categories() {
		if s.NVRAMWriteBytes[c] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-14s %d\n", c.String(), s.NVRAMWriteBytes[c])
	}
	fmt.Fprintf(&b, "DRAM reads/writes (lines): %d/%d\n", s.DRAMReadLines, s.DRAMWriteLines)
	if chans := s.ActiveChannels(); chans > 1 {
		fmt.Fprintf(&b, "per-channel lines:")
		for i := 0; i < chans; i++ {
			fmt.Fprintf(&b, " ch%d=%d", i, s.ChannelLines[i])
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "row-buffer hits/misses: %d/%d\n", s.RowHits, s.RowMisses)
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "L%d hits/misses: %d/%d\n", i+1, s.CacheHits[i], s.CacheMisses[i])
	}
	fmt.Fprintf(&b, "TLB l1-hits/l2-hits/misses/evictions: %d/%d/%d/%d\n", s.TLBHits, s.TLB2Hits, s.TLBMisses, s.TLBEvictions)
	fmt.Fprintf(&b, "flip broadcasts: %d, invalidations: %d\n", s.FlipBroadcasts, s.Invalidations)
	fmt.Fprintf(&b, "SSP cache hits/misses: %d/%d\n", s.SSPCacheHits, s.SSPCacheMisses)
	fmt.Fprintf(&b, "consolidations: %d (%d lines), checkpoints: %d, journal records: %d\n",
		s.Consolidations, s.ConsolidatedLines, s.Checkpoints, s.JournalRecords)
	if shards := s.ActiveJournalShards(); shards > 1 {
		fmt.Fprintf(&b, "journal shards (records/checkpoints):")
		for i := 0; i < shards; i++ {
			fmt.Fprintf(&b, " s%d=%d/%d", i, s.JournalShardRecords[i], s.JournalShardCheckpoints[i])
		}
		fmt.Fprintf(&b, "\n")
	}
	if s.NVRAMBankBusy[CatMetaJournal] > 0 {
		fmt.Fprintf(&b, "journal bank busy cycles: %d\n", s.NVRAMBankBusy[CatMetaJournal])
	}
	if s.GlobalCommits > 0 {
		fmt.Fprintf(&b, "cross-shard commits: %d (%d prepare records)\n", s.GlobalCommits, s.PrepareRecords)
	}
	if s.CommitBarrierWait > 0 {
		fmt.Fprintf(&b, "commit-barrier wait cycles: %d\n", s.CommitBarrierWait)
	}
	if s.EagerFlushLines > 0 {
		fmt.Fprintf(&b, "eager data flushes (lines): %d\n", s.EagerFlushLines)
	}
	if s.GroupCommitBatches > 0 {
		fmt.Fprintf(&b, "group-commit batches: %d (%d followers)\n", s.GroupCommitBatches, s.GroupCommitFollowers)
	}
	if s.RelaxedCommits > 0 {
		fmt.Fprintf(&b, "relaxed commits: %d, epochs hardened: %d (seals: %d)\n", s.RelaxedCommits, s.HardenedEpochs, s.EpochSeals)
		if s.HardenedEpochs > 0 {
			fmt.Fprintf(&b, "mean epoch harden lag (cycles): %d\n", s.EpochHardenLag/s.HardenedEpochs)
		}
	}
	if s.DroppedEpochRecords > 0 {
		fmt.Fprintf(&b, "epoch-cut records dropped: %d (%d acknowledged txns lost)\n", s.DroppedEpochRecords, s.LostEpochTxns)
	}
	if s.DRAMCacheReads > 0 {
		fmt.Fprintf(&b, "DRAM cache reads: %d (hits %d, misses %d)\n", s.DRAMCacheReads, s.DRAMCacheHits, s.DRAMCacheMisses)
		fmt.Fprintf(&b, "DRAM cache absorbed/hardened/writeback lines: %d/%d/%d (%d frame evictions)\n",
			s.DRAMCacheAbsorbed, s.DRAMCacheHardens, s.DRAMCacheWriteBacks, s.DRAMCacheEvictions)
	}
	if s.FramesWritten > 0 {
		mean := float64(s.FrameWriteTotal) / float64(s.FramesWritten)
		fmt.Fprintf(&b, "frame wear: %d frames written, max %d, mean %.1f (skew %.2f), rotations %d\n",
			s.FramesWritten, s.FrameWriteMax, mean, float64(s.FrameWriteMax)/mean, s.WearRotations)
	}
	fmt.Fprintf(&b, "undo/redo records: %d/%d, writeback stalls: %d\n", s.UndoRecords, s.RedoRecords, s.WritebackStalls)
	fmt.Fprintf(&b, "commits: %d, aborts: %d, fallback txns: %d\n", s.Commits, s.Aborts, s.FallbackTxns)
	return b.String()
}

// Table renders rows of (label, columns...) with aligned columns; helper for
// experiment output.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// SortedKeys returns the keys of m in sorted order; helper for deterministic
// report iteration.
func SortedKeys[K ~string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
