package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Histogram is a fixed-bucket latency histogram with logarithmic bucket
// spacing: values below 16 land in exact unit buckets, and every power-of-two
// octave above that splits into histSubBuckets geometric sub-buckets, so a
// recorded value's bucket bound is within 1/histSubBuckets (12.5%) of the
// value across the whole uint64 range. The layout is fixed — no allocation on
// the record path, Merge is a plain element-wise sum — so per-worker shards
// can record concurrently under their own locks and be merged for reporting
// (exactly the stats.Sharded idiom).
//
// The unit is the caller's: the in-process serve driver records simulated
// cycles, the TCP load generator records host nanoseconds.
type Histogram struct {
	Count   uint64
	Sum     uint64
	MinSeen uint64 // smallest recorded value; meaningless when Count == 0
	MaxSeen uint64 // largest recorded value
	Buckets [HistBuckets]uint64
}

// histSubBuckets is the number of geometric sub-buckets per octave; the
// worst-case relative quantile error is 1/histSubBuckets.
const histSubBuckets = 8

// HistBuckets is the fixed bucket count: 16 exact unit buckets, then 8
// sub-buckets for each of the 60 remaining octaves of the uint64 range.
const HistBuckets = 16 + histSubBuckets*60

// histBucket maps a value to its bucket index. Values 0..15 map to
// themselves; a value in [2^e, 2^(e+1)) for e >= 4 maps into octave e's
// sub-bucket selected by the three bits below the leading bit, keeping the
// index monotone in the value.
func histBucket(v uint64) int {
	if v < 16 {
		return int(v)
	}
	e := bits.Len64(v) - 1 // 4..63
	sub := int((v >> (uint(e) - 3)) & (histSubBuckets - 1))
	return 16 + (e-4)*histSubBuckets + sub
}

// histBucketMax returns the largest value bucket idx can hold (the inclusive
// upper bound Percentile reports).
func histBucketMax(idx int) uint64 {
	if idx < 16 {
		return uint64(idx)
	}
	e := (idx-16)/histSubBuckets + 4
	sub := uint64((idx - 16) % histSubBuckets)
	lo := (8 + sub) << (uint(e) - 3)
	width := uint64(1) << (uint(e) - 3)
	return lo + width - 1
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	if h.Count == 0 || v < h.MinSeen {
		h.MinSeen = v
	}
	if v > h.MaxSeen {
		h.MaxSeen = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[histBucket(v)]++
}

// Merge accumulates o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.MinSeen < h.MinSeen {
		h.MinSeen = o.MinSeen
	}
	if o.MaxSeen > h.MaxSeen {
		h.MaxSeen = o.MaxSeen
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the arithmetic mean of the recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile returns an upper bound for the p-th percentile (p in (0,100]):
// the inclusive upper bound of the bucket holding the ceil(p/100*Count)-th
// smallest observation, clamped to the largest value actually recorded. At
// least p percent of the recorded values are <= the returned value, and the
// bound overshoots the true sample quantile by at most one sub-bucket width
// (12.5%). Returns 0 when the histogram is empty.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(h.Count))
	if float64(rank)*100 < p*float64(h.Count) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var seen uint64
	for i := range h.Buckets {
		seen += h.Buckets[i]
		if seen >= rank {
			v := histBucketMax(i)
			if v > h.MaxSeen {
				v = h.MaxSeen
			}
			return v
		}
	}
	return h.MaxSeen
}

// String summarises the distribution (count, mean, p50/p99/p999, max).
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "histogram: empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d mean=%.0f p50=%d p99=%d p999=%d max=%d",
		h.Count, h.Mean(), h.Percentile(50), h.Percentile(99), h.Percentile(99.9), h.MaxSeen)
	return b.String()
}
