package loadgen

import "testing"

// TestStreamDeterminism: the same config yields the same op stream; a
// different seed yields a different one.
func TestStreamDeterminism(t *testing.T) {
	cfg := Config{Keys: 1024, Skew: 0.99, ReadPct: 60, DelPct: 10, Seed: 42}
	a, b := New(cfg), New(cfg)
	const n = 10000
	for i := 0; i < n; i++ {
		oa, ob := a.Next(), b.Next()
		if oa != ob {
			t.Fatalf("op %d diverged: %+v vs %+v", i, oa, ob)
		}
	}

	cfg.Seed = 43
	c := New(cfg)
	d := New(Config{Keys: 1024, Skew: 0.99, ReadPct: 60, DelPct: 10, Seed: 42})
	same := 0
	for i := 0; i < n; i++ {
		if c.Next() == d.Next() {
			same++
		}
	}
	if same == n {
		t.Fatalf("distinct seeds produced identical streams")
	}
}

// TestStreamMix checks the op mix tracks ReadPct/DelPct and keys stay in
// range, for both uniform and skewed key distributions.
func TestStreamMix(t *testing.T) {
	for _, skew := range []float64{0, 0.99} {
		s := New(Config{Keys: 512, Skew: skew, ReadPct: 70, DelPct: 10, Seed: 7})
		const n = 50000
		counts := map[OpKind]int{}
		for i := 0; i < n; i++ {
			op := s.Next()
			counts[op.Kind]++
			if op.Key >= 512 {
				t.Fatalf("key %d out of range", op.Key)
			}
		}
		if g := float64(counts[OpGet]) / n; g < 0.67 || g > 0.73 {
			t.Errorf("skew %v: GET share %.3f, want ~0.70", skew, g)
		}
		if d := float64(counts[OpDel]) / n; d < 0.07 || d > 0.13 {
			t.Errorf("skew %v: DEL share %.3f, want ~0.10", skew, d)
		}
	}
}

// TestStreamSkew checks that a high Zipf exponent actually concentrates
// traffic: the hottest key must see far more than the uniform share.
func TestStreamSkew(t *testing.T) {
	const keys, n = 1024, 50000
	hot := func(skew float64) int {
		s := New(Config{Keys: keys, Skew: skew, Seed: 9})
		freq := make(map[uint64]int)
		for i := 0; i < n; i++ {
			freq[s.Next().Key]++
		}
		max := 0
		for _, c := range freq {
			if c > max {
				max = c
			}
		}
		return max
	}
	uniform, skewed := hot(0), hot(1.2)
	if skewed < 10*uniform {
		t.Fatalf("skew 1.2 hottest key %d ops vs uniform %d — not skewed enough", skewed, uniform)
	}
}

// TestFork checks forked streams are deterministic and mutually distinct.
func TestFork(t *testing.T) {
	parent := New(Config{Keys: 256, Skew: 0.99, Seed: 5})
	f1, f2 := parent.Fork(1), parent.Fork(2)
	f1b := New(Config{Keys: 256, Skew: 0.99, Seed: 5}).Fork(1)
	same12, same11 := 0, 0
	for i := 0; i < 5000; i++ {
		o1, o2, o1b := f1.Next(), f2.Next(), f1b.Next()
		if o1 == o2 {
			same12++
		}
		if o1 == o1b {
			same11++
		}
	}
	if same11 != 5000 {
		t.Fatalf("Fork(1) not deterministic: %d/5000 ops matched", same11)
	}
	if same12 == 5000 {
		t.Fatalf("Fork(1) and Fork(2) produced identical streams")
	}
}

// TestPacer checks open-loop arrival arithmetic.
func TestPacer(t *testing.T) {
	// 2 GHz machine, 1e6 ops/s → 2000 cycles between arrivals.
	p := CyclePacer(100, 2.0, 1e6)
	if got := p.Arrival(0); got != 100 {
		t.Fatalf("Arrival(0) = %d, want 100", got)
	}
	if got := p.Arrival(10); got != 100+20000 {
		t.Fatalf("Arrival(10) = %d, want %d", got, 100+20000)
	}
	// Arrivals are computed from the index, so they never drift: arrival(2i)
	// is exactly twice as far out as arrival(i).
	if a, b := p.Arrival(500)-100, p.Arrival(1000)-100; 2*a != b {
		t.Fatalf("pacer drift: 2*%d != %d", a, b)
	}
	if got := NanoPacer(1e9).Interval(); got != 1 {
		t.Fatalf("NanoPacer(1e9).Interval() = %v, want 1", got)
	}
	// rate <= 0 → closed loop: arrivals pinned at start.
	cl := CyclePacer(7, 2.0, 0)
	if cl.Arrival(12345) != 7 || cl.Interval() != 0 {
		t.Fatalf("closed-loop pacer should pin arrivals at start")
	}
}
