// Package loadgen is the open-loop traffic generator behind the network KV
// front end: a deterministic per-seed stream of GET/SET/DEL operations with
// Zipfian key skew and a configurable read/write mix, plus fixed-rate
// open-loop pacing. The same Stream drives both consumers — the in-process
// serve driver (workload.RunServe, arrivals in simulated cycles) and the TCP
// client (RunTCP, arrivals in host nanoseconds) — so a TCP run and an
// in-process run at the same seed issue the same operation sequence.
//
// Open loop means arrivals are scheduled by the clock, not by completions:
// operation i arrives at start + i/rate whether or not earlier operations
// have finished, so a server that cannot keep up accumulates queueing delay
// instead of silently throttling the offered load — the behaviour closed-loop
// drivers hide, and the reason latency percentiles (not just throughput) are
// the metric here.
package loadgen

import (
	"repro/internal/engine"
)

// OpKind classifies one generated operation.
type OpKind uint8

// The operation mix.
const (
	OpGet OpKind = iota
	OpSet
	OpDel
)

// String returns the protocol verb.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpDel:
		return "DEL"
	default:
		return "OP?"
	}
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
}

// Config shapes a Stream. The zero value of each field selects the default.
type Config struct {
	Keys uint64 // key space size (default 16384)
	// Skew is the Zipf exponent of the key distribution: 0 selects uniform,
	// anything above 0 a true Zipf(s) over the key space (0.99 is the
	// YCSB-style default skew; >1 concentrates most traffic on a handful of
	// hot keys).
	Skew    float64
	ReadPct int // percent of operations that are GETs (default 50)
	DelPct  int // percent of operations that are DELs (default 5); the rest are SETs
	Seed    uint64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Keys == 0 {
		c.Keys = 16384
	}
	if c.ReadPct == 0 {
		c.ReadPct = 50
	}
	if c.DelPct == 0 {
		c.DelPct = 5
	}
	if c.ReadPct+c.DelPct > 100 {
		panic("loadgen: ReadPct + DelPct exceeds 100")
	}
	return c
}

// Stream generates a deterministic operation sequence: the same Config
// (including Seed) always yields the same keys and kinds, independent of the
// consumer's pacing. Not safe for concurrent use; fork one per worker with
// distinct seeds (Fork).
type Stream struct {
	cfg  Config
	dist engine.Dist
	rng  *engine.RNG // op-mix draws, independent of the key draws
}

// New builds a stream.
func New(cfg Config) *Stream {
	cfg = cfg.withDefaults()
	keyRNG := engine.NewRNG(cfg.Seed)
	var d engine.Dist
	if cfg.Skew > 0 {
		d = engine.NewZipf(cfg.Keys, cfg.Skew, keyRNG)
	} else {
		d = engine.NewUniform(cfg.Keys, keyRNG)
	}
	return &Stream{cfg: cfg, dist: d, rng: engine.NewRNG(cfg.Seed ^ 0xC0FFEE)}
}

// Fork returns a stream with the same shape but an independent seed — one
// per connection or per core, deterministically derived from the parent's
// seed and the worker index.
func (s *Stream) Fork(worker int) *Stream {
	cfg := s.cfg
	cfg.Seed = s.cfg.Seed + 0x9E3779B97F4A7C15*uint64(worker+1)
	return New(cfg)
}

// Next returns the next operation.
func (s *Stream) Next() Op {
	op := Op{Key: s.dist.Next()}
	r := s.rng.Intn(100)
	switch {
	case r < s.cfg.ReadPct:
		op.Kind = OpGet
	case r < s.cfg.ReadPct+s.cfg.DelPct:
		op.Kind = OpDel
	default:
		op.Kind = OpSet
	}
	return op
}

// Config returns the stream's effective (default-filled) configuration.
func (s *Stream) Config() Config { return s.cfg }

// Pacer schedules open-loop arrivals at a fixed rate in an arbitrary time
// unit: Arrival(i) = start + i*interval, computed from the index so rounding
// never drifts. A zero interval (rate 0 or infinite) degrades to closed-loop
// arrivals at the consumer's own pace (Arrival returns start; the consumer
// clamps to "now").
type Pacer struct {
	start    uint64
	interval float64 // time units per operation
}

// NewPacer builds a pacer issuing opsPerUnit operations per 1e9 time units
// (i.e. ops/second when the unit is nanoseconds or rate*freq when it is
// cycles — see CyclePacer). rate <= 0 disables pacing.
func NewPacer(start uint64, interval float64) *Pacer {
	if interval < 0 {
		interval = 0
	}
	return &Pacer{start: start, interval: interval}
}

// CyclePacer builds a pacer in simulated cycles for a machine running at
// freqGHz issuing opsPerSec operations per simulated second. opsPerSec <= 0
// disables pacing (closed loop).
func CyclePacer(start engine.Cycles, freqGHz, opsPerSec float64) *Pacer {
	if opsPerSec <= 0 {
		return NewPacer(uint64(start), 0)
	}
	return NewPacer(uint64(start), freqGHz*1e9/opsPerSec)
}

// NanoPacer builds a pacer in host nanoseconds issuing opsPerSec operations
// per wall-clock second. opsPerSec <= 0 disables pacing.
func NanoPacer(opsPerSec float64) *Pacer {
	if opsPerSec <= 0 {
		return NewPacer(0, 0)
	}
	return NewPacer(0, 1e9/opsPerSec)
}

// Arrival returns operation i's scheduled arrival time.
func (p *Pacer) Arrival(i int) uint64 {
	if p.interval == 0 {
		return p.start
	}
	return p.start + uint64(float64(i)*p.interval)
}

// Interval returns the mean inter-arrival gap in the pacer's unit (0 when
// pacing is off).
func (p *Pacer) Interval() float64 { return p.interval }
