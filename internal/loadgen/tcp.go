package loadgen

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// TCPConfig shapes an open-loop run against a live sspserver.
type TCPConfig struct {
	Addr      string  // server address
	Conns     int     // concurrent connections (default 4)
	Ops       int     // total operations across all connections (default 4000)
	Rate      float64 // offered ops/sec across all connections; 0 = closed loop
	Stream    Config  // op stream shape; each connection forks its own seed
	SyncEvery int     // per-conn: issue SYNC after every n ops (0 = never)
}

// TCPResult is the client-side view of a run.
type TCPResult struct {
	Ops     uint64          // responses received
	Gets    uint64          // GETs issued
	Writes  uint64          // SETs + DELs issued
	Hits    uint64          // GET responses carrying a value
	Deleted uint64          // DELs that found their key (non-empty write set)
	Errors  uint64          // ERR responses and transport errors
	Hist    stats.Histogram // latency in host ns, scheduled-arrival → response
	Elapsed time.Duration
}

// RunTCP drives the server open loop: each connection schedules operation k
// at start + k*interval and measures latency from that scheduled arrival,
// not from the actual send — when the server (or the pipe) falls behind,
// queueing delay lands in the histogram instead of silently shrinking the
// offered load.
func RunTCP(cfg TCPConfig) (TCPResult, error) {
	if cfg.Conns == 0 {
		cfg.Conns = 4
	}
	if cfg.Ops == 0 {
		cfg.Ops = 4000
	}
	parent := New(cfg.Stream)

	type connResult struct {
		TCPResult
		err error
	}
	results := make([]connResult, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Conns; i++ {
		share := cfg.Ops / cfg.Conns
		if i < cfg.Ops%cfg.Conns {
			share++
		}
		wg.Add(1)
		go func(i, share int) {
			defer wg.Done()
			results[i].TCPResult, results[i].err = runConn(cfg, parent.Fork(i), i, share, start)
		}(i, share)
	}
	wg.Wait()

	var res TCPResult
	res.Elapsed = time.Since(start)
	var firstErr error
	for _, r := range results {
		res.Ops += r.Ops
		res.Gets += r.Gets
		res.Writes += r.Writes
		res.Hits += r.Hits
		res.Deleted += r.Deleted
		res.Errors += r.Errors
		res.Hist.Merge(&r.Hist)
		if firstErr == nil {
			firstErr = r.err
		}
	}
	return res, firstErr
}

func runConn(cfg TCPConfig, s *Stream, id, share int, start time.Time) (TCPResult, error) {
	var res TCPResult
	conn, err := net.DialTimeout("tcp", cfg.Addr, 5*time.Second)
	if err != nil {
		res.Errors++
		return res, fmt.Errorf("loadgen: conn %d: %w", id, err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	wr := bufio.NewWriter(conn)

	pacer := NanoPacer(cfg.Rate / float64(cfg.Conns))
	for k := 0; k < share; k++ {
		arrival := start.Add(time.Duration(pacer.Arrival(k)))
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		} else if pacer.Interval() == 0 {
			arrival = time.Now() // closed loop: latency is pure service time
		}

		op := s.Next()
		switch op.Kind {
		case OpGet:
			fmt.Fprintf(wr, "GET %d\n", op.Key)
			res.Gets++
		case OpSet:
			fmt.Fprintf(wr, "SET %d v%d\n", op.Key, op.Key)
			res.Writes++
		case OpDel:
			fmt.Fprintf(wr, "DEL %d\n", op.Key)
			res.Writes++
		}
		if err := wr.Flush(); err != nil {
			res.Errors++
			return res, fmt.Errorf("loadgen: conn %d write: %w", id, err)
		}
		line, err := rd.ReadString('\n')
		if err != nil {
			res.Errors++
			return res, fmt.Errorf("loadgen: conn %d read: %w", id, err)
		}
		res.Ops++
		lat := time.Since(arrival)
		if lat < 0 {
			lat = 0
		}
		res.Hist.Record(uint64(lat))
		switch {
		case strings.HasPrefix(line, "VALUE"):
			res.Hits++
		case strings.HasPrefix(line, "DELETED"):
			res.Deleted++
		case strings.HasPrefix(line, "ERR"):
			res.Errors++
		}

		if cfg.SyncEvery > 0 && (k+1)%cfg.SyncEvery == 0 {
			fmt.Fprintf(wr, "SYNC\n")
			if err := wr.Flush(); err != nil {
				res.Errors++
				return res, fmt.Errorf("loadgen: conn %d sync write: %w", id, err)
			}
			if _, err := rd.ReadString('\n'); err != nil {
				res.Errors++
				return res, fmt.Errorf("loadgen: conn %d sync read: %w", id, err)
			}
		}
	}
	return res, nil
}
