// Package server is the network front end of the simulated SSP machine: a
// line-oriented, RESP-style TCP server exposing a sharded ssp/kv cache over
// GET/SET/DEL/SYNC/STATS, the "millions of users" deployment shape the
// closed-loop drivers cannot model.
//
// Threading model. The machine's one-goroutine-per-Core contract does not
// allow a goroutine per connection to touch cores directly, so the server
// splits the two populations: N connection handlers (one goroutine per
// accepted conn) parse requests and enqueue them, and exactly Cores worker
// goroutines — running inside Machine.Run, one per ssp.Core — drain
// per-core queues and execute operations. Keys are routed to core
// key mod Cores; each worker owns one kv.Cache shard allocated from its own
// arena, so no ssp.Lock is needed: a shard is only ever touched by its
// worker's goroutine, and cores couple only through the simulated shared
// hardware (channels, journal shards), exactly like workload.RunParallel.
//
// Acknowledgment semantics. A sync server acks SET/DEL after Commit — the
// journal leg is durable when the client sees the reply. A relaxed server
// (Config.Relaxed, requires Machine.DurabilityEpoch > 0) acks after
// CommitRelaxed: the reply races the epoch seal, and a crash can lose the
// acked write until a SYNC (routed to core 0, whose Sync hardens every
// shard) or the epoch age bound hardens it. Per-op acknowledgment latency is
// recorded in host nanoseconds from enqueue to ack into per-worker
// histograms (merged on STATS) — host time measures real queueing and
// scheduling, while the simulated commit cost is visible in the machine
// stats; the in-process serve driver (workload.RunServe) is the
// simulated-cycles complement.
package server

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/ssp"
	"repro/ssp/kv"
)

// Config shapes a Server.
type Config struct {
	Addr       string     // listen address (e.g. "127.0.0.1:0")
	Machine    ssp.Config // simulated machine; Cores is the worker count
	Items      int        // per-core cache capacity (default 4096)
	ValueBytes int        // max value size in bytes (default 64)
	Relaxed    bool       // ack writes after CommitRelaxed instead of Commit
	QueueDepth int        // per-worker queue depth (default 128)
}

// request is one parsed operation in flight from a connection handler to a
// worker. The handler blocks on reply before reusing any buffer it passed,
// so val needs no copy: for SET it aliases the scanner's line buffer, for
// GET it is the handler's scratch buffer the worker fills.
type request struct {
	kind  byte // 'G', 'S', 'D', 'Y'
	key   uint64
	val   []byte
	enq   int64 // host nanos at enqueue
	reply chan reply
}

type reply struct {
	found bool
	n     int // GET: value bytes written into val
}

// worker is one core's execution context: its queue, its kv shard, and its
// latency histogram (mutex-guarded so STATS can read it mid-run).
type worker struct {
	queue chan request
	shard *kv.Cache

	mu   sync.Mutex
	hist stats.Histogram
}

// Server is a running KV front end. Close shuts it down; it is not
// restartable.
type Server struct {
	cfg Config
	m   *ssp.Machine
	ln  net.Listener

	workers []*worker

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	connWG     sync.WaitGroup
	acceptDone chan struct{}
	runDone    chan struct{}

	closeOnce sync.Once

	// Server-level op counters (machine stats are quiescent-only, so the
	// live STATS command reports these).
	conns64, gets, sets, dels, syncs, misses, committed, errs atomic.Uint64
	idleHardens                                               atomic.Uint64
}

// idleHardenAfter is how long a relaxed worker's queue must stay empty in
// host time before it hardens its shard's open epoch. Host time because an
// idle core's simulated clock is frozen — there is no simulated moment at
// which the epoch "ages out" without traffic.
const idleHardenAfter = 2 * time.Millisecond

// New builds the machine, shards the cache one kv.Cache per core, starts
// the worker goroutines inside Machine.Run, and begins accepting on
// cfg.Addr.
func New(cfg Config) (*Server, error) {
	if cfg.Machine.Cores == 0 {
		cfg.Machine.Cores = 1
	}
	if cfg.Items == 0 {
		cfg.Items = 4096
	}
	if cfg.ValueBytes == 0 {
		cfg.ValueBytes = 64
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 128
	}
	if cfg.Relaxed && cfg.Machine.DurabilityEpoch == 0 {
		return nil, fmt.Errorf("server: Relaxed requires Machine.DurabilityEpoch > 0")
	}
	m, err := ssp.New(cfg.Machine)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}

	s := &Server{
		cfg:        cfg,
		m:          m,
		conns:      map[net.Conn]struct{}{},
		acceptDone: make(chan struct{}),
		runDone:    make(chan struct{}),
	}

	// Serial setup: one shard + arena per core, owned by that core's worker.
	entry := 40 + cfg.ValueBytes
	pages := (cfg.Items*entry + (cfg.Items/4)*8) / ssp.PageBytes
	pages += pages/2 + 4
	for i := 0; i < cfg.Machine.Cores; i++ {
		c := m.Core(i)
		c.Begin()
		arena := m.NewArena(c, pages)
		shard := kv.Create(c, arena, kv.Config{
			Buckets:    cfg.Items / 4,
			Capacity:   cfg.Items,
			ValueBytes: cfg.ValueBytes,
		})
		c.Commit()
		s.workers = append(s.workers, &worker{
			queue: make(chan request, cfg.QueueDepth),
			shard: shard,
		})
	}

	// Measurement hygiene: serving starts from aligned clocks and clean
	// counters, like the parallel driver's measured window.
	m.Drain()
	start := m.MaxClock()
	for i := 0; i < cfg.Machine.Cores; i++ {
		m.Core(i).SetNow(start)
	}
	m.ResetStats()

	go func() {
		m.Run(func(c *ssp.Core) {
			// Queue receives wrap in Core.BlockExternal: under a windowed
			// machine (Machine.TimeWindow > 0) a worker blocked on its host
			// channel must not hold the lockstep window open for the other
			// cores. Request ARRIVAL stays host-ordered either way — a
			// network server cannot be deterministic — but the windowed
			// scheduler still bounds cross-core clock lag while requests
			// execute. With TimeWindow == 0, BlockExternal is a plain call.
			w := s.workers[c.ID()]
			if !cfg.Relaxed {
				for {
					var req request
					var ok bool
					c.BlockExternal(func() { req, ok = <-w.queue })
					if !ok {
						return
					}
					s.execute(c, w, req)
				}
			}
			// Relaxed mode: the epoch age bound is billed to the next
			// committer, so a worker whose queue suddenly empties would
			// leave its shard's last acknowledged epoch volatile until the
			// next SYNC or Close. After idleHardenAfter of host-time quiet,
			// harden the core's own shard (Core.HardenIdle); the timer only
			// rearms while there is something left to harden.
			idle := time.NewTimer(idleHardenAfter)
			defer idle.Stop()
			for {
				var req request
				var ok, timedOut bool
				c.BlockExternal(func() {
					select {
					case req, ok = <-w.queue:
					case <-idle.C:
						timedOut = true
					}
				})
				if timedOut {
					if c.HardenIdle() {
						s.idleHardens.Add(1)
						idle.Reset(idleHardenAfter)
					}
					continue
				}
				if !ok {
					return
				}
				s.execute(c, w, req)
				if !idle.Stop() {
					select {
					case <-idle.C:
					default:
					}
				}
				idle.Reset(idleHardenAfter)
			}
		})
		close(s.runDone)
	}()

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.stopWorkers()
		return nil, fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Relaxed reports the acknowledgment mode.
func (s *Server) Relaxed() bool { return s.cfg.Relaxed }

func (s *Server) acceptLoop() {
	defer close(s.acceptDone)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.conns64.Add(1)
		s.connWG.Add(1)
		go s.serveConn(conn)
	}
}

// execute runs one request on its owning core. Runs on the worker's
// goroutine inside Machine.Run — the only goroutine that touches this core
// and this shard.
func (s *Server) execute(c *ssp.Core, w *worker, req request) {
	var rep reply
	switch req.kind {
	case 'G':
		// GETs read committed state outside any transaction, as in the
		// memcached workloads.
		n, ok := w.shard.Get(c, req.key, req.val)
		rep = reply{found: ok, n: n}
		s.gets.Add(1)
		if !ok {
			s.misses.Add(1)
		}
	case 'S':
		c.Begin()
		w.shard.Set(c, req.key, req.val)
		s.commit(c)
		rep = reply{found: true}
		s.sets.Add(1)
		s.committed.Add(1)
	case 'D':
		c.Begin()
		found := w.shard.Delete(c, req.key)
		s.commit(c)
		rep = reply{found: found}
		s.dels.Add(1)
		s.committed.Add(1)
		if !found {
			s.misses.Add(1)
		}
	case 'Y':
		// Routed to core 0: one core's Sync hardens every journal shard.
		c.Sync()
		rep = reply{found: true}
		s.syncs.Add(1)
	}
	lat := time.Now().UnixNano() - req.enq
	if lat < 0 {
		lat = 0
	}
	w.mu.Lock()
	w.hist.Record(uint64(lat))
	w.mu.Unlock()
	req.reply <- rep
}

func (s *Server) commit(c *ssp.Core) {
	if s.cfg.Relaxed {
		c.CommitRelaxed()
	} else {
		c.Commit()
	}
}

// parseKey accepts a decimal uint64 or hashes any other token (FNV-1a), so
// human-typed string keys work over the wire while the load generator's
// numeric keys route stably.
func parseKey(tok string) uint64 {
	if k, err := strconv.ParseUint(tok, 10, 64); err == nil {
		return k
	}
	h := fnv.New64a()
	h.Write([]byte(tok))
	return h.Sum64()
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.connWG.Done()
	}()

	sc := bufio.NewScanner(conn)
	out := bufio.NewWriter(conn)
	replyCh := make(chan reply, 1)
	getBuf := make([]byte, s.cfg.ValueBytes)
	nWorkers := uint64(len(s.workers))

	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		var req request
		switch {
		case cmd == "GET" && len(fields) == 2:
			req = request{kind: 'G', key: parseKey(fields[1]), val: getBuf}
		case cmd == "SET" && len(fields) == 3:
			val := fields[2]
			if len(val) > s.cfg.ValueBytes {
				val = val[:s.cfg.ValueBytes]
			}
			req = request{kind: 'S', key: parseKey(fields[1]), val: []byte(val)}
		case cmd == "DEL" && len(fields) == 2:
			req = request{kind: 'D', key: parseKey(fields[1])}
		case cmd == "SYNC" && len(fields) == 1:
			req = request{kind: 'Y'}
		case cmd == "STATS" && len(fields) == 1:
			s.writeStats(out)
			out.Flush()
			continue
		case cmd == "QUIT" && len(fields) == 1:
			fmt.Fprintf(out, "BYE\n")
			out.Flush()
			return
		default:
			s.errs.Add(1)
			fmt.Fprintf(out, "ERR bad command\n")
			out.Flush()
			continue
		}

		req.enq = time.Now().UnixNano()
		req.reply = replyCh
		w := s.workers[req.key%nWorkers]
		if req.kind == 'Y' {
			w = s.workers[0]
		}
		w.queue <- req
		rep := <-replyCh

		switch req.kind {
		case 'G':
			if rep.found {
				fmt.Fprintf(out, "VALUE %s\n", trimZero(getBuf[:rep.n]))
			} else {
				fmt.Fprintf(out, "MISS\n")
			}
		case 'S':
			fmt.Fprintf(out, "STORED\n")
		case 'D':
			if rep.found {
				fmt.Fprintf(out, "DELETED\n")
			} else {
				fmt.Fprintf(out, "MISS\n")
			}
		case 'Y':
			fmt.Fprintf(out, "SYNCED\n")
		}
		out.Flush()
	}
}

// trimZero strips the zero padding a short value picks up from the
// fixed-size GET buffer.
func trimZero(b []byte) []byte {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return b
}

// Snapshot is the server-level counter set, readable while serving.
type Snapshot struct {
	Conns, Gets, Sets, Dels, Syncs, Misses, Committed, Errors uint64
	IdleHardens                                               uint64          // epochs hardened from workers' idle paths
	Hist                                                      stats.Histogram // ack latency, host ns, all workers merged
}

// Snapshot reads the live counters and merges the per-worker histograms.
func (s *Server) Snapshot() Snapshot {
	snap := Snapshot{
		Conns:       s.conns64.Load(),
		Gets:        s.gets.Load(),
		Sets:        s.sets.Load(),
		Dels:        s.dels.Load(),
		Syncs:       s.syncs.Load(),
		Misses:      s.misses.Load(),
		Committed:   s.committed.Load(),
		Errors:      s.errs.Load(),
		IdleHardens: s.idleHardens.Load(),
	}
	for _, w := range s.workers {
		w.mu.Lock()
		snap.Hist.Merge(&w.hist)
		w.mu.Unlock()
	}
	return snap
}

func (s *Server) writeStats(out *bufio.Writer) {
	snap := s.Snapshot()
	fmt.Fprintf(out, "STAT cores=%d relaxed=%v conns=%d gets=%d sets=%d dels=%d syncs=%d misses=%d committed=%d errors=%d idle_hardens=%d\n",
		len(s.workers), s.cfg.Relaxed, snap.Conns, snap.Gets, snap.Sets, snap.Dels, snap.Syncs, snap.Misses, snap.Committed, snap.Errors, snap.IdleHardens)
	fmt.Fprintf(out, "STAT lat_ns %s\n", snap.Hist.String())
	fmt.Fprintf(out, "END\n")
}

// stopWorkers closes the worker queues and waits for Machine.Run to return.
// Callers must guarantee no enqueuer is left (all connections drained).
func (s *Server) stopWorkers() {
	for _, w := range s.workers {
		close(w.queue)
	}
	<-s.runDone
}

// Close shuts down: stop accepting, force-close connections, wait for
// handlers, stop workers, then drain the machine so every relaxed epoch
// hardens. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.ln.Close()
		<-s.acceptDone
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		s.connWG.Wait()
		s.stopWorkers()
		s.m.Drain()
	})
	return nil
}

// MachineStats returns the simulated machine's aggregated counters. Only
// valid after Close (machine stats are quiescent-only).
func (s *Server) MachineStats() stats.Stats { return *s.m.Stats() }

// Machine exposes the underlying machine for post-Close inspection.
func (s *Server) Machine() *ssp.Machine { return s.m }
