package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/ssp"
)

// dial connects a raw test client to a server.
func dial(t *testing.T, s *Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewReader(conn)
}

func roundTrip(t *testing.T, conn net.Conn, rd *bufio.Reader, req string) string {
	t.Helper()
	if _, err := fmt.Fprintf(conn, "%s\n", req); err != nil {
		t.Fatalf("write %q: %v", req, err)
	}
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("read after %q: %v", req, err)
	}
	return strings.TrimSpace(line)
}

// TestServerProtocol exercises every verb through a real socket.
func TestServerProtocol(t *testing.T) {
	s, err := New(Config{
		Addr:    "127.0.0.1:0",
		Machine: ssp.Config{Cores: 2},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	conn, rd := dial(t, s)

	if got := roundTrip(t, conn, rd, "GET 7"); got != "MISS" {
		t.Fatalf("GET empty = %q, want MISS", got)
	}
	if got := roundTrip(t, conn, rd, "SET 7 hello"); got != "STORED" {
		t.Fatalf("SET = %q, want STORED", got)
	}
	if got := roundTrip(t, conn, rd, "GET 7"); got != "VALUE hello" {
		t.Fatalf("GET = %q, want VALUE hello", got)
	}
	// String keys hash; a set must read back under the same token.
	if got := roundTrip(t, conn, rd, "SET user:42 v"); got != "STORED" {
		t.Fatalf("SET string key = %q", got)
	}
	if got := roundTrip(t, conn, rd, "GET user:42"); got != "VALUE v" {
		t.Fatalf("GET string key = %q", got)
	}
	if got := roundTrip(t, conn, rd, "SYNC"); got != "SYNCED" {
		t.Fatalf("SYNC = %q", got)
	}
	if got := roundTrip(t, conn, rd, "DEL 7"); got != "DELETED" {
		t.Fatalf("DEL = %q", got)
	}
	if got := roundTrip(t, conn, rd, "DEL 7"); got != "MISS" {
		t.Fatalf("DEL absent = %q, want MISS", got)
	}
	if got := roundTrip(t, conn, rd, "NOPE"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad command = %q, want ERR", got)
	}
	if got := roundTrip(t, conn, rd, "STATS"); !strings.HasPrefix(got, "STAT ") {
		t.Fatalf("STATS = %q", got)
	}
	// Drain the remaining STATS lines up to END.
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			t.Fatalf("read stats: %v", err)
		}
		if strings.TrimSpace(line) == "END" {
			break
		}
	}
	if got := roundTrip(t, conn, rd, "QUIT"); got != "BYE" {
		t.Fatalf("QUIT = %q", got)
	}
}

// TestServerRelaxedRequiresEpoch checks the config guard.
func TestServerRelaxedRequiresEpoch(t *testing.T) {
	if _, err := New(Config{Addr: "127.0.0.1:0", Relaxed: true}); err == nil {
		t.Fatalf("Relaxed without DurabilityEpoch should fail")
	}
}

// TestServerStress is the -race stress test: concurrent connections at high
// key skew (hot-key contention on a few shards), sync and relaxed servers,
// interleaved SYNCs, then stats-identity checks on both the server counters
// and the machine counters after shutdown.
func TestServerStress(t *testing.T) {
	for _, tc := range []struct {
		name    string
		relaxed bool
		machine ssp.Config
	}{
		{"sync", false, ssp.Config{Cores: 4, Channels: 2, JournalShards: 2}},
		{"relaxed", true, ssp.Config{Cores: 4, Channels: 2, JournalShards: 2, DurabilityEpoch: 200000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(Config{
				Addr:    "127.0.0.1:0",
				Machine: tc.machine,
				Items:   512,
				Relaxed: tc.relaxed,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}

			const conns, ops = 8, 4000
			res, err := loadgen.RunTCP(loadgen.TCPConfig{
				Addr:  s.Addr().String(),
				Conns: conns,
				Ops:   ops,
				Stream: loadgen.Config{
					Keys:    256, // small key space + skew → hot shards
					Skew:    1.2,
					ReadPct: 40,
					DelPct:  10,
					Seed:    0xBEEF,
				},
				SyncEvery: 100, // interleave durability barriers with relaxed acks
			})
			if err != nil {
				t.Fatalf("RunTCP: %v", err)
			}
			if res.Errors != 0 {
				t.Fatalf("client saw %d errors", res.Errors)
			}
			if res.Ops != ops {
				t.Fatalf("client completed %d ops, want %d", res.Ops, ops)
			}

			snap := s.Snapshot()
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			// Server-side identities: every client op was counted exactly
			// once, every counted op recorded exactly one latency sample.
			if snap.Gets != res.Gets {
				t.Errorf("server gets %d != client gets %d", snap.Gets, res.Gets)
			}
			if snap.Sets+snap.Dels != res.Writes {
				t.Errorf("server writes %d != client writes %d", snap.Sets+snap.Dels, res.Writes)
			}
			if snap.Committed != snap.Sets+snap.Dels {
				t.Errorf("committed %d != sets+dels %d", snap.Committed, snap.Sets+snap.Dels)
			}
			wantSyncs := uint64(conns) * (ops / conns / 100)
			if snap.Syncs != wantSyncs {
				t.Errorf("syncs %d, want %d", snap.Syncs, wantSyncs)
			}
			if snap.Errors != 0 {
				t.Errorf("server counted %d protocol errors", snap.Errors)
			}
			if want := snap.Gets + snap.Sets + snap.Dels + snap.Syncs; snap.Hist.Count != want {
				t.Errorf("latency samples %d != ops %d", snap.Hist.Count, want)
			}

			// Machine-side identities after Drain: the machine committed at
			// least one transaction per acked write (setup commits add more),
			// and in relaxed mode every write was a relaxed commit and none
			// were lost (no crash happened).
			mst := s.MachineStats()
			if mst.Commits < snap.Committed {
				t.Errorf("machine commits %d < acked writes %d", mst.Commits, snap.Committed)
			}
			if tc.relaxed {
				// Empty-write-set commits (DEL of an absent key) count as
				// Commits but not RelaxedCommits, so the exact identity is
				// against writes that touched pages: SETs + successful DELs.
				if want := snap.Sets + res.Deleted; mst.RelaxedCommits != want {
					t.Errorf("relaxed commits %d != sets+deleted %d", mst.RelaxedCommits, want)
				}
				if mst.LostEpochTxns != 0 {
					t.Errorf("lost %d epoch txns without a crash", mst.LostEpochTxns)
				}
				if mst.HardenedEpochs == 0 {
					t.Errorf("no epochs hardened despite relaxed traffic")
				}
			} else if mst.RelaxedCommits != 0 {
				t.Errorf("sync server made %d relaxed commits", mst.RelaxedCommits)
			}
		})
	}
}

// TestServerIdleHardener: a relaxed worker that goes idle right after an
// acked write must not hold its epoch open indefinitely — the idle path
// hardens it within idleHardenAfter, without any SYNC from the client. The
// huge DurabilityEpoch rules the commit-path age bound out, so a hardened
// epoch can only have come from the idle hardener.
func TestServerIdleHardener(t *testing.T) {
	s, err := New(Config{
		Addr:    "127.0.0.1:0",
		Machine: ssp.Config{Cores: 2, DurabilityEpoch: 1 << 30},
		Relaxed: true,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	conn, rd := dial(t, s)
	if got := roundTrip(t, conn, rd, "SET 3 v"); got != "STORED" {
		t.Fatalf("SET = %q, want STORED", got)
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().IdleHardens == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle worker never hardened its open epoch")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if mst := s.MachineStats(); mst.HardenedEpochs == 0 {
		t.Error("IdleHardens counted but no epoch hardened in the machine stats")
	}
}

// TestServerCloseIdempotent checks double Close and post-close dial failure.
func TestServerCloseIdempotent(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr := s.Addr().String()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.Close()
		t.Fatalf("dial succeeded after Close")
	}
}
