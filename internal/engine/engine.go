// Package engine provides the deterministic building blocks shared by the
// simulator: simulated time in core cycles, a seedable PRNG, and the key
// distributions used by the paper's workloads.
//
// Everything in this package is deterministic: the same seed always produces
// the same sequence, which in turn makes entire simulation runs reproducible
// bit-for-bit.
package engine

// Cycles is a point in (or span of) simulated time, measured in core clock
// cycles. The simulated machine runs at Config.FreqGHz (3.7 GHz in the
// paper's Table 2), so 1 ns is about 3.7 cycles.
type Cycles int64

// NSToCycles converts a latency in nanoseconds to core cycles at the given
// core frequency, rounding to the nearest cycle.
func NSToCycles(ns float64, ghz float64) Cycles {
	c := ns*ghz + 0.5
	if c < 0 {
		return 0
	}
	return Cycles(c)
}

// CyclesToNS converts a span of cycles back to nanoseconds at the given
// frequency.
func CyclesToNS(c Cycles, ghz float64) float64 {
	if ghz == 0 {
		return 0
	}
	return float64(c) / ghz
}

// MaxCycles returns the later of two points in time.
func MaxCycles(a, b Cycles) Cycles {
	if a > b {
		return a
	}
	return b
}

// MinCycles returns the earlier of two points in time.
func MinCycles(a, b Cycles) Cycles {
	if a < b {
		return a
	}
	return b
}
