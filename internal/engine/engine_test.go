package engine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNSToCycles(t *testing.T) {
	cases := []struct {
		ns, ghz float64
		want    Cycles
	}{
		{50, 3.7, 185},
		{200, 3.7, 740},
		{0, 3.7, 0},
		{1, 1.0, 1},
		{50, 1.0, 50},
		{-5, 3.7, 0},
	}
	for _, c := range cases {
		if got := NSToCycles(c.ns, c.ghz); got != c.want {
			t.Errorf("NSToCycles(%v, %v) = %d, want %d", c.ns, c.ghz, got, c.want)
		}
	}
}

func TestCyclesToNSRoundTrip(t *testing.T) {
	for _, ns := range []float64{1, 50, 200, 1000} {
		c := NSToCycles(ns, 3.7)
		back := CyclesToNS(c, 3.7)
		if math.Abs(back-ns) > 0.5 {
			t.Errorf("round trip %vns -> %d cycles -> %vns", ns, c, back)
		}
	}
	if CyclesToNS(100, 0) != 0 {
		t.Error("CyclesToNS with zero frequency should be 0")
	}
}

func TestMaxMinCycles(t *testing.T) {
	if MaxCycles(3, 5) != 5 || MaxCycles(5, 3) != 5 {
		t.Error("MaxCycles wrong")
	}
	if MinCycles(3, 5) != 3 || MinCycles(5, 3) != 3 {
		t.Error("MinCycles wrong")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide too often: %d/1000", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) out of range: %d", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(5)
	child := r.Fork()
	// Parent and child streams should differ.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("forked stream tracks parent: %d matches", same)
	}
}

func TestUniformCoversSpace(t *testing.T) {
	r := NewRNG(11)
	u := NewUniform(8, r)
	seen := make(map[uint64]int)
	for i := 0; i < 8000; i++ {
		k := u.Next()
		if k >= 8 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k]++
	}
	for k := uint64(0); k < 8; k++ {
		if seen[k] < 500 {
			t.Errorf("key %d drawn only %d times", k, seen[k])
		}
	}
	if u.N() != 8 {
		t.Errorf("N() = %d", u.N())
	}
}

func TestTwoClassSkew(t *testing.T) {
	r := NewRNG(13)
	const n = 10000
	d := NewPaperZipf(n, r)
	if d.N() != n {
		t.Fatalf("N() = %d", d.N())
	}
	// Count how many draws land in the hot 15%.
	hotSet := make(map[uint64]bool)
	for k := uint64(0); k < d.HotCount(); k++ {
		hotSet[d.HotKey(k)] = true
	}
	if len(hotSet) != int(d.HotCount()) {
		t.Fatalf("hot permutation is not injective: %d distinct of %d", len(hotSet), d.HotCount())
	}
	hot := 0
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := d.Next()
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		if hotSet[k] {
			hot++
		}
	}
	frac := float64(hot) / draws
	// 80% of draws target the hot set, plus ~15% of the cold 20% land.. no:
	// cold draws target only cold keys. Expect ~0.80.
	if math.Abs(frac-0.80) > 0.02 {
		t.Errorf("hot fraction %v, want ~0.80", frac)
	}
}

func TestTwoClassClamps(t *testing.T) {
	r := NewRNG(1)
	d := NewTwoClass(10, 0.001, 0.5, r) // hotFrac rounds to at least one key
	for i := 0; i < 100; i++ {
		if d.Next() >= 10 {
			t.Fatal("out of range")
		}
	}
}

func TestZipfRange(t *testing.T) {
	r := NewRNG(21)
	z := NewZipf(1000, 0.99, r)
	if z.N() != 1000 {
		t.Fatalf("N() = %d", z.N())
	}
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		k := z.Next()
		if k >= 1000 {
			t.Fatalf("Zipf key %d out of range", k)
		}
		counts[k]++
	}
	// Key 0 must dominate key 999 heavily under s~1.
	if counts[0] < counts[999]*10 {
		t.Errorf("Zipf not skewed: head=%d tail=%d", counts[0], counts[999])
	}
}

func TestZipfQuickProperty(t *testing.T) {
	f := func(seed uint64) bool {
		z := NewZipf(64, 1.2, NewRNG(seed))
		for i := 0; i < 200; i++ {
			if z.Next() >= 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
