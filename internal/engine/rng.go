package engine

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). It is not safe for concurrent use; the simulator is
// single-goroutine by design, and each client owns its own RNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; the zero seed is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("engine: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("engine: Uint64n called with n == 0")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Fork derives an independent child generator. The child's stream does not
// overlap the parent's for any practical sequence length.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}
