package engine

import "math"

// Dist generates keys in [0, N) under some distribution. The paper's
// microbenchmarks use a uniform random distribution ("-Rand") and a skewed
// one ("-Zipf") in which 80% of the updates are applied to 15% of the keys.
type Dist interface {
	// Next returns the next key in [0, N).
	Next() uint64
	// N returns the size of the key space.
	N() uint64
}

// Uniform draws keys uniformly at random from [0, N).
type Uniform struct {
	n   uint64
	rng *RNG
}

// NewUniform returns a uniform distribution over [0, n).
func NewUniform(n uint64, rng *RNG) *Uniform {
	if n == 0 {
		panic("engine: NewUniform with n == 0")
	}
	return &Uniform{n: n, rng: rng}
}

// Next implements Dist.
func (u *Uniform) Next() uint64 { return u.rng.Uint64n(u.n) }

// N implements Dist.
func (u *Uniform) N() uint64 { return u.n }

// TwoClass is the paper's "zipfian" workload distribution (§5.1): a HotProb
// fraction of accesses go to the first HotFrac fraction of the key space,
// the rest go to the remaining keys. The paper uses HotProb=0.80,
// HotFrac=0.15. Hot keys are spread over the key space by a fixed
// multiplicative hash so that hotness is not correlated with data-structure
// locality.
type TwoClass struct {
	n       uint64
	hot     uint64 // number of hot keys
	hotProb float64
	mult    uint64 // odd multiplier coprime with n, so permute is a bijection
	rng     *RNG
}

// NewTwoClass returns a two-class skewed distribution over [0, n).
func NewTwoClass(n uint64, hotFrac, hotProb float64, rng *RNG) *TwoClass {
	if n == 0 {
		panic("engine: NewTwoClass with n == 0")
	}
	if n >= 1<<32 {
		panic("engine: NewTwoClass key spaces above 2^32 are unsupported")
	}
	hot := uint64(float64(n) * hotFrac)
	if hot == 0 {
		hot = 1
	}
	if hot > n {
		hot = n
	}
	mult := uint64(0x9e3779b97f4a7c15)
	for gcd(mult%n, n) != 1 {
		mult += 2
	}
	return &TwoClass{n: n, hot: hot, hotProb: hotProb, mult: mult, rng: rng}
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// NewPaperZipf returns the distribution used by the paper's "-Zipf"
// microbenchmarks: 80% of updates to 15% of the keys.
func NewPaperZipf(n uint64, rng *RNG) *TwoClass {
	return NewTwoClass(n, 0.15, 0.80, rng)
}

// permute spreads key k over [0, n) with a fixed odd-multiplier hash, so the
// "hot" class is not a contiguous key range.
func (t *TwoClass) permute(k uint64) uint64 {
	return (k % t.n) * (t.mult % t.n) % t.n
}

// Next implements Dist.
func (t *TwoClass) Next() uint64 {
	if t.rng.Float64() < t.hotProb {
		return t.permute(t.rng.Uint64n(t.hot))
	}
	// Cold keys: the rest of the (permuted) key space.
	return t.permute(t.hot + t.rng.Uint64n(t.n-t.hot))
}

// N implements Dist.
func (t *TwoClass) N() uint64 { return t.n }

// HotCount returns the number of hot keys.
func (t *TwoClass) HotCount() uint64 { return t.hot }

// HotKey returns the i-th hot key (i < HotCount); test/analysis helper.
func (t *TwoClass) HotKey(i uint64) uint64 {
	if i >= t.hot {
		panic("engine: HotKey index out of range")
	}
	return t.permute(i)
}

// Zipf draws keys under a true Zipf(s) distribution over [0, N) using
// rejection-inversion (Hörmann & Derflinger). Provided as an extension
// beyond the paper's two-class skew for sensitivity studies.
type Zipf struct {
	n               uint64
	s               float64
	rng             *RNG
	hIntegralX1     float64
	hIntegralNumber float64
	sDiv            float64
}

// NewZipf returns a Zipf distribution with exponent s > 0, s != 1 handled
// too, over [1, n] mapped to [0, n).
func NewZipf(n uint64, s float64, rng *RNG) *Zipf {
	if n == 0 {
		panic("engine: NewZipf with n == 0")
	}
	z := &Zipf{n: n, s: s, rng: rng}
	z.hIntegralX1 = z.hIntegral(1.5) - 1.0
	z.hIntegralNumber = z.hIntegral(float64(n) + 0.5)
	z.sDiv = 2.0 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2.0))
	return z
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1.0-z.s)*logX) * logX
}

func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * (1.0 - z.s)
	if t < -1.0 {
		t = -1.0
	}
	return math.Exp(helper1(t) * x)
}

func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1.0 - x*(0.5-x*(1.0/3.0-0.25*x))
}

func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1.0 + x*0.5*(1.0+x*(1.0/3.0)*(1.0+0.25*x))
}

// Next implements Dist.
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegralNumber + z.rng.Float64()*(z.hIntegralX1-z.hIntegralNumber)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.sDiv || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k) - 1
		}
	}
}

// N implements Dist.
func (z *Zipf) N() uint64 { return z.n }
