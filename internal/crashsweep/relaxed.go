package crashsweep

import (
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/ssp"
)

// Relaxed-durability (CommitRelaxed) trap sweeps. The synchronous sweep's
// contract — everything committed survives — does not hold here by design:
// an acknowledged transaction may be lost to a crash until its epoch
// hardens. What MUST hold instead, and what VerifyRelaxed checks at every
// trap point:
//
//  1. atomicity: every transaction is wholly present or wholly absent;
//  2. epoch cut: on each journal shard, the lost transactions are a suffix
//     of that shard's acknowledgment order (a crash loses at most the open
//     epoch and never tears one — a survivor after a loss on the same
//     shard would mean recovery replayed past the cut);
//  3. Sync honored: every transaction acknowledged before a COMPLETED
//     Core.Sync survives;
//  4. no inventions: a transaction the trap run never acknowledged is
//     present only if it is the boundary transaction (the trap fired
//     inside its commit, which may land after an inline epoch harden).
//
// The relaxed scripts give every transaction a private write set (no
// address is ever written twice), so presence, absence and tearing are
// probeable per transaction even after an arbitrary subset is lost.

// syncAt reports whether the committing core issues a Sync after txn i.
func (sc Script) syncAt(i int) bool { return i < len(sc.Sync) && sc.Sync[i] }

// MakeRelaxedScript builds a relaxed-mode script: n transactions with
// disjoint write sets (txn i writes value i+1 to 1-3 private lines), a Sync
// roughly every sixth transaction, and — when cross is set — roughly half
// the transactions global, each writing one line on 2-4 private pages so
// its slots span journal shards and the commit runs the two-phase protocol
// with its End record deferred into the coordinator's open epoch.
func MakeRelaxedScript(seed uint64, n int, cross bool) Script {
	rng := engine.NewRNG(seed)
	var sc Script
	line := 0   // next private line in the packed local region (pages 1+)
	page := 100 // next private page for global write sets
	addr := func(p, l int) uint64 {
		return ssp.HeapBase + uint64(p)*ssp.PageBytes + uint64(l)*ssp.LineBytes
	}
	for i := 0; i < n; i++ {
		global := cross && rng.Intn(2) == 0
		var addrs []uint64
		if global {
			for j := 0; j < 2+rng.Intn(3); j++ {
				addrs = append(addrs, addr(page, rng.Intn(64)))
				page++
			}
		} else {
			for j := 0; j <= rng.Intn(3); j++ {
				addrs = append(addrs, addr(1+line/64, line%64))
				line++
			}
		}
		sc.Txns = append(sc.Txns, addrs)
		sc.Global = append(sc.Global, global)
		sc.Sync = append(sc.Sync, rng.Intn(6) == 0)
	}
	return sc
}

// RelaxedOutcome is what one (possibly trapped) relaxed script run
// guarantees: which transactions were acknowledged before power failed, and
// the highest index behind a Sync that completed on live power (-1: none).
type RelaxedOutcome struct {
	Acked     []bool
	SyncFloor int
}

// RunScriptRelaxed executes sc with CommitRelaxed (round-robin across
// cores, like RunScript) and the script's Sync points.
func RunScriptRelaxed(m *ssp.Machine, sc Script) RelaxedOutcome {
	out := RelaxedOutcome{Acked: make([]bool, len(sc.Txns)), SyncFloor: -1}
	m.Heap().EnsureMapped(nil, 1, sc.maxPage())
	for i, addrs := range sc.Txns {
		if m.Mem().PoweredOff() {
			break
		}
		c := m.Core(i % m.Cores())
		if sc.global(i) {
			c.BeginGlobal()
		} else {
			c.Begin()
		}
		for _, va := range addrs {
			c.Store64(va, uint64(i+1))
		}
		c.CommitRelaxed()
		if m.Mem().PoweredOff() {
			break
		}
		out.Acked[i] = true
		if sc.syncAt(i) {
			c.Sync()
			if !m.Mem().PoweredOff() {
				out.SyncFloor = i
			}
		}
	}
	return out
}

// VerifyRelaxed checks a recovered machine against the relaxed contract
// (see the package comment above) for one trap run's outcome. cfg must be
// the machine's configuration — the per-shard suffix rule needs the
// core-to-coordinator-shard mapping.
func VerifyRelaxed(m *ssp.Machine, cfg ssp.Config, sc Script, out RelaxedOutcome) error {
	cores, shards := cfg.Cores, cfg.JournalShards
	if cores == 0 {
		cores = 1
	}
	if shards == 0 {
		shards = 1
	}
	c := m.Core(0)

	// 1. Atomicity, and which transactions survived.
	present := make([]bool, len(sc.Txns))
	for i, addrs := range sc.Txns {
		hits := 0
		for _, va := range addrs {
			if c.Load64(va) == uint64(i+1) {
				hits++
			}
		}
		switch hits {
		case 0:
		case len(addrs):
			present[i] = true
		default:
			return fmt.Errorf("txn %d torn: %d of %d private lines survived", i, hits, len(addrs))
		}
	}

	// 4. Nothing the run never acknowledged may appear, except the boundary
	// transaction (first unacknowledged index).
	boundary := len(sc.Txns)
	for i, acked := range out.Acked {
		if !acked {
			boundary = i
			break
		}
	}
	for i := boundary + 1; i < len(sc.Txns); i++ {
		if present[i] {
			return fmt.Errorf("txn %d survived but was never acknowledged (boundary is %d)", i, boundary)
		}
	}

	// 3. Sync floor.
	for i := 0; i <= out.SyncFloor; i++ {
		if !present[i] {
			return fmt.Errorf("txn %d lost behind the Sync completed after txn %d", i, out.SyncFloor)
		}
	}

	// 2. Per-coordinator-shard suffix rule: on each shard's stream, a loss
	// is final — the epoch cut can never resurrect a later transaction.
	lastLost := make([]int, shards)
	for si := range lastLost {
		lastLost[si] = -1
	}
	for i := 0; i < boundary; i++ {
		si := (i % cores) % shards
		if !present[i] {
			lastLost[si] = i
		} else if lastLost[si] >= 0 {
			return fmt.Errorf("txn %d survived on shard %d after txn %d was lost: epoch cut not a suffix",
				i, si, lastLost[si])
		}
	}
	return nil
}

// SweepRelaxedScript runs one relaxed script's full trap sweep over cfg:
// the reference run counts durable NVRAM writes, then the script re-runs
// once per trap point with recovery and relaxed-contract verification.
func SweepRelaxedScript(cfg ssp.Config, sc Script, verbose bool, log io.Writer) (points, failures int) {
	ref := ssp.MustNew(cfg)
	setup := ref.Stats().NVRAMWriteLines
	RunScriptRelaxed(ref, sc)
	ref.Drain()
	writes := int64(ref.Stats().NVRAMWriteLines - setup)

	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	for k := int64(0); k <= writes; k++ {
		points++
		m := ssp.MustNew(cfg)
		m.Mem().SetWriteTrap(k)
		out := RunScriptRelaxed(m, sc)
		m.Mem().SetWriteTrap(-1)
		if err := m.Recover(); err != nil {
			logf("  trap %d: recovery error: %v\n", k, err)
			failures++
			continue
		}
		m.Heap().EnsureMapped(nil, 1, sc.maxPage())
		if err := VerifyRelaxed(m, cfg, sc, out); err != nil {
			logf("  trap %d: %v\n", k, err)
			failures++
		} else if verbose {
			logf("  trap %d ok\n", k)
		}
	}
	return points, failures
}
