package crashsweep

import (
	"os"
	"testing"

	"repro/ssp"
)

// TestTrapSweepAllBackends runs the cmd/sspcrash trap-sweep machinery at CI
// scale: for every backend, a few random scripts, a power failure injected
// after every durable NVRAM write, recovery, and all-or-nothing
// verification. The full-scale fuzzing run stays in the binary
// (`sspcrash -scripts 20`); this keeps the crash-recovery contract under
// `go test`.
func TestTrapSweepAllBackends(t *testing.T) {
	scripts, txns := 3, 10
	if testing.Short() {
		scripts, txns = 1, 6
	}
	for _, b := range ssp.Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			total := 0
			for s := 0; s < scripts; s++ {
				seed := 0xC4A5 + uint64(s)*1000003
				points, bad := SweepScript(b, seed, txns, false, os.Stderr)
				if bad != 0 {
					t.Fatalf("script %d (seed %#x): %d of %d trap points violated the all-or-nothing contract", s, seed, bad, points)
				}
				total += points
			}
			if total == 0 {
				t.Fatal("sweep checked no trap points")
			}
			t.Logf("%d trap points checked", total)
		})
	}
}

// TestTrapSweepJournalShards runs the trap sweep on a multi-core machine
// with per-core SSP journal shards: transactions round-robin across three
// cores, so consecutive commit batches land in three different journal
// rings and the sweep injects power failures at every point between one
// shard's UpdateEnd and another shard's — recovery must TID-merge the
// shards back into a consistent slot array with the all-or-nothing
// contract intact.
func TestTrapSweepJournalShards(t *testing.T) {
	scripts, txns := 2, 10
	if testing.Short() {
		scripts, txns = 1, 6
	}
	for _, shards := range []int{2, 3} {
		cores := shards
		total := 0
		for s := 0; s < scripts; s++ {
			seed := 0x5A4D + uint64(shards)*31 + uint64(s)*1000003
			cfg := ShardedConfig(ssp.SSP, cores, shards)
			points, bad := SweepConfig(cfg, seed, txns, false, os.Stderr)
			if bad != 0 {
				t.Fatalf("%d shards, script %d (seed %#x): %d of %d trap points violated the all-or-nothing contract",
					shards, s, seed, bad, points)
			}
			total += points
		}
		if total == 0 {
			t.Fatalf("%d-shard sweep checked no trap points", shards)
		}
		t.Logf("%d shards: %d trap points checked", shards, total)
	}
}

// TestTrapSweepCrossShard runs the trap sweep on a 4-core, 4-shard machine
// with cross-shard (global) transactions: roughly half of each script's
// transactions open with BeginGlobal and span 2-4 pages whose slots belong
// to different journal shards, so their commits run the two-phase protocol
// — prepare records flushed into every participant shard, then the
// coordinator end record. The sweep cuts the durable write stream at every
// point: between one participant's prepare flush and the next, immediately
// before and after the coordinator end, and between the publication-time
// writes that follow. Recovery must make every global transaction
// all-or-nothing across all of its shards: rolled back everywhere when the
// end record is missing, redone everywhere when it is durable — without
// disturbing interleaved single-shard commits.
func TestTrapSweepCrossShard(t *testing.T) {
	scripts, txns := 2, 10
	if testing.Short() {
		scripts, txns = 1, 6
	}
	const cores, shards = 4, 4
	total := 0
	for s := 0; s < scripts; s++ {
		seed := 0x6C0B + uint64(s)*1000003
		cfg := ShardedConfig(ssp.SSP, cores, shards)
		sc := MakeCrossScript(seed, txns)
		globals := 0
		for i := range sc.Txns {
			if sc.global(i) {
				globals++
			}
		}
		if globals == 0 {
			t.Fatalf("script %d has no global transactions", s)
		}
		// The sweep is only meaningful if the script genuinely drives the
		// two-phase path on this machine (global write sets spanning shards).
		ref := ssp.MustNew(cfg)
		RunScript(ref, sc)
		ref.Drain()
		if ref.Stats().GlobalCommits == 0 {
			t.Fatalf("script %d (seed %#x) committed no cross-shard transactions", s, seed)
		}
		points, bad := SweepScriptConfig(cfg, sc, false, os.Stderr)
		if bad != 0 {
			t.Fatalf("script %d (seed %#x): %d of %d trap points violated the all-or-nothing contract",
				s, seed, bad, points)
		}
		total += points
	}
	if total == 0 {
		t.Fatal("cross-shard sweep checked no trap points")
	}
	t.Logf("%d trap points checked", total)
}

// TestTrapSweepCrossShardCheckpoints is the checkpoint-interleaved class of
// cross-shard crash points: with tiny 1 KiB journal rings the script's
// commits push shards past their high-water mark mid-run, so trap points
// fall between a coordinator shard's checkpoint (which truncates global end
// records) and the participant shards that still hold the matching prepare
// records. A committed global transaction must survive — the coordinator
// checkpoint persists its participant slots before the end record goes
// away. (This sweep class is what catches end-record truncation bugs the
// plain sweep above cannot: there the rings never fill.)
func TestTrapSweepCrossShardCheckpoints(t *testing.T) {
	scripts, txns := 2, 30
	if testing.Short() {
		scripts, txns = 1, 30
	}
	const cores, shards = 4, 4
	total := 0
	for s := 0; s < scripts; s++ {
		seed := 0xCC99 + uint64(s)*1000003
		cfg := ShardedConfig(ssp.SSP, cores, shards)
		cfg.JournalKB = 1 // high-water after ~16 records: checkpoints mid-script
		sc := MakeCrossScript(seed, txns)
		ref := ssp.MustNew(cfg)
		RunScript(ref, sc)
		ref.Drain()
		if st := ref.Stats(); st.Checkpoints == 0 || st.GlobalCommits == 0 {
			t.Fatalf("script %d (seed %#x) drove %d checkpoints / %d global commits; the sweep needs both",
				s, seed, st.Checkpoints, st.GlobalCommits)
		}
		points, bad := SweepScriptConfig(cfg, sc, false, os.Stderr)
		if bad != 0 {
			t.Fatalf("script %d (seed %#x): %d of %d trap points violated the all-or-nothing contract",
				s, seed, bad, points)
		}
		total += points
	}
	t.Logf("%d checkpoint-interleaved trap points checked", total)
}

// TestCrossScriptExercisesTwoPhase asserts the cross script actually drives
// the two-phase protocol on the sharded machine (otherwise the sweep above
// would vacuously pass sweeping only fast-path commits).
func TestCrossScriptExercisesTwoPhase(t *testing.T) {
	cfg := ShardedConfig(ssp.SSP, 4, 4)
	m := ssp.MustNew(cfg)
	RunScript(m, MakeCrossScript(0xBEE5, 12))
	m.Drain()
	st := m.Stats()
	if st.GlobalCommits == 0 {
		t.Fatal("cross script committed no global transactions via the two-phase protocol")
	}
	if st.PrepareRecords < 2*st.GlobalCommits {
		t.Fatalf("prepare records %d < 2x global commits %d: global write sets did not span shards",
			st.PrepareRecords, st.GlobalCommits)
	}
}

// TestTrapSweepBuffered is the DRAM-buffer-tier crash class: the script
// runs with 16 buffer frames in front of a 64 KiB L3 while a
// non-transactional spray keeps the tier churning, so trap points fall
// inside every buffer window — after a dirty absorb (the absorbed line is
// DRAM-only and legally lost), between a frame eviction's write-backs, and
// around the commit fence's write-throughs. Committed transactions must
// survive every cut with the tier in the path; classes stack the
// commit-path knobs (eager flush + group commit) and a DurabilityEpoch on
// top.
func TestTrapSweepBuffered(t *testing.T) {
	scripts, txns := 1, 10 // the spray makes each sweep ~8x a plain script's
	if testing.Short() {
		scripts, txns = 1, 6
	}
	epoch := WithCommitKnobs(BufferedConfig(ssp.SSP))
	epoch.DurabilityEpoch = 30000
	classes := []struct {
		name string
		cfg  ssp.Config
		seed uint64
	}{
		{"plain", BufferedConfig(ssp.SSP), 0xB0F1},
		{"knobs", WithCommitKnobs(BufferedConfig(ssp.SSP)), 0xB0F2},
		{"epoch", epoch, 0xB0F3},
	}
	for _, cl := range classes {
		cl := cl
		t.Run(cl.name, func(t *testing.T) {
			total := 0
			for s := 0; s < scripts; s++ {
				seed := cl.seed + uint64(s)*1000003
				sc := MakeScript(seed, txns)
				// The sweep is only meaningful if the run genuinely drives
				// the buffer windows: dirty absorbs and frame-eviction
				// write-backs must both occur.
				ref := ssp.MustNew(cl.cfg)
				RunScriptBuffered(ref, sc)
				ref.Drain()
				st := ref.Stats()
				if st.DRAMCacheAbsorbed == 0 || st.DRAMCacheWriteBacks == 0 {
					t.Fatalf("script %d (seed %#x) drove %d absorbs / %d write-backs; the sweep needs both",
						s, seed, st.DRAMCacheAbsorbed, st.DRAMCacheWriteBacks)
				}
				points, bad := SweepBufferedScript(cl.cfg, sc, false, os.Stderr)
				if bad != 0 {
					t.Fatalf("script %d (seed %#x): %d of %d trap points violated the all-or-nothing contract",
						s, seed, bad, points)
				}
				total += points
			}
			if total == 0 {
				t.Fatal("buffered sweep checked no trap points")
			}
			t.Logf("%s: %d trap points checked", cl.name, total)
		})
	}
}

// TestVerifyCatchesCorruption guards the verifier itself: a machine whose
// durable state was tampered with must fail verification.
func TestVerifyCatchesCorruption(t *testing.T) {
	sc := MakeScript(7, 5)
	m := ssp.MustNew(Config(ssp.SSP))
	committed, _ := RunScript(m, sc)
	m.Drain()
	if len(committed) == 0 {
		t.Skip("script committed nothing")
	}
	if err := Verify(m, committed, nil); err != nil {
		t.Fatalf("clean run failed verification: %v", err)
	}
	var va uint64
	for a := range committed {
		va = a
		break
	}
	c := m.Core(0)
	c.Begin()
	c.Store64(va, 0xDEAD)
	c.Commit()
	if err := Verify(m, committed, nil); err == nil {
		t.Fatal("verifier accepted corrupted state")
	}
}

// TestTrapSweepRelaxed trap-sweeps the relaxed-durability commit mode
// (CommitRelaxed + epoch hardening): power failure after every durable
// NVRAM write, recovery with the epoch cut, and the relaxed contract
// verified — every transaction atomic, losses a per-shard suffix of the
// acknowledgment order (at most the open epoch, never torn), everything
// behind a completed Sync durable, and nothing invented. Classes cover the
// single-core machine, a short epoch (inline age-bound hardens dominate),
// journal shards, and both commit-path knobs stacked on top.
func TestTrapSweepRelaxed(t *testing.T) {
	txns := 12
	if testing.Short() {
		txns = 8
	}
	classes := []struct {
		name  string
		cfg   ssp.Config
		epoch int
		seed  uint64
	}{
		{"local", Config(ssp.SSP), 30000, 0x3E1A},
		{"short-epoch", Config(ssp.SSP), 4000, 0x3E1B},
		{"shards", ShardedConfig(ssp.SSP, 3, 3), 30000, 0x3E1C},
		{"knobs", WithCommitKnobs(Config(ssp.SSP)), 30000, 0x3E1D},
	}
	for _, cl := range classes {
		cl := cl
		t.Run(cl.name, func(t *testing.T) {
			cfg := cl.cfg
			cfg.DurabilityEpoch = cl.epoch
			sc := MakeRelaxedScript(cl.seed, txns, false)

			// The sweep is only meaningful if the script drives the relaxed
			// machinery, and an uncrashed run must lose nothing: after Drain
			// every acknowledged transaction is durable.
			ref := ssp.MustNew(cfg)
			out := RunScriptRelaxed(ref, sc)
			ref.Drain()
			if st := ref.Stats(); st.RelaxedCommits == 0 || st.HardenedEpochs == 0 {
				t.Fatalf("reference run drove %d relaxed commits / %d hardened epochs; the sweep needs both",
					st.RelaxedCommits, st.HardenedEpochs)
			}
			out.SyncFloor = len(sc.Txns) - 1 // Drain = Sync over everything
			if err := VerifyRelaxed(ref, cfg, sc, out); err != nil {
				t.Fatalf("uncrashed reference run: %v", err)
			}

			points, bad := SweepRelaxedScript(cfg, sc, false, os.Stderr)
			if bad != 0 {
				t.Fatalf("%s (seed %#x): %d of %d trap points violated the relaxed contract",
					cl.name, cl.seed, bad, points)
			}
			if points == 0 {
				t.Fatalf("%s sweep checked no trap points", cl.name)
			}
			t.Logf("%s: %d trap points checked", cl.name, points)
		})
	}
}

// TestTrapSweepCrossRelaxed is the cross-shard relaxed class: global
// transactions committed with CommitRelaxed leave their participant
// prepares eagerly sealed but defer the coordinator End record into the
// coordinator shard's OPEN epoch. The sweep therefore cuts the write
// stream between a participant's durable prepare seal and the coordinator
// epoch's harden — recovery must treat the durably-prepared transaction as
// absent on EVERY shard (the end TIDs are collected from the cut record
// lists), and a later Sync or age-bound harden must flip it to durable on
// every shard at once.
func TestTrapSweepCrossRelaxed(t *testing.T) {
	txns := 12
	if testing.Short() {
		txns = 8
	}
	const cores, shards = 4, 4
	cfg := ShardedConfig(ssp.SSP, cores, shards)
	cfg.DurabilityEpoch = 30000
	total := 0
	for s := 0; s < 2; s++ {
		seed := 0x3E2A + uint64(s)*1000003
		sc := MakeRelaxedScript(seed, txns, true)
		ref := ssp.MustNew(cfg)
		RunScriptRelaxed(ref, sc)
		ref.Drain()
		st := ref.Stats()
		if st.GlobalCommits == 0 || st.HardenedEpochs == 0 {
			t.Fatalf("script %d (seed %#x) drove %d global commits / %d hardened epochs; the sweep needs both",
				s, seed, st.GlobalCommits, st.HardenedEpochs)
		}
		if st.PrepareRecords < 2*st.GlobalCommits {
			t.Fatalf("prepare records %d < 2x global commits %d: global write sets did not span shards",
				st.PrepareRecords, st.GlobalCommits)
		}
		points, bad := SweepRelaxedScript(cfg, sc, false, os.Stderr)
		if bad != 0 {
			t.Fatalf("script %d (seed %#x): %d of %d trap points violated the relaxed contract",
				s, seed, bad, points)
		}
		total += points
	}
	if total == 0 {
		t.Fatal("cross-relaxed sweep checked no trap points")
	}
	t.Logf("%d trap points checked", total)
}

// TestTrapSweepEagerFlush runs the single-core trap sweep with the eager
// (write-behind) data-flush knob on: every store's unit is written back to
// the shadow frame ahead of commit, so the sweep's pre-End trap points now
// find durable-but-uncommitted data in NVRAM — recovery must roll every
// one of them back via the shadow slots, and the extra data writes add
// trap points of their own.
func TestTrapSweepEagerFlush(t *testing.T) {
	scripts, txns := 2, 10
	if testing.Short() {
		scripts, txns = 1, 6
	}
	total := 0
	for s := 0; s < scripts; s++ {
		seed := 0xEA6E + uint64(s)*1000003
		cfg := Config(ssp.SSP)
		cfg.EagerFlush = true
		points, bad := SweepConfig(cfg, seed, txns, false, os.Stderr)
		if bad != 0 {
			t.Fatalf("script %d (seed %#x): %d of %d trap points violated the all-or-nothing contract", s, seed, bad, points)
		}
		total += points
	}
	if total == 0 {
		t.Fatal("eager-flush sweep checked no trap points")
	}
	t.Logf("%d trap points checked", total)
}

// TestTrapSweepCommitKnobs re-runs every sweep class — local, journal
// shards, cross-shard, and the checkpoint-interleaved tiny-ring class —
// with BOTH commit-path knobs on (eager flush + a group-commit window).
// The acceptance bar for the knobs is exactly this: all trap classes keep
// the all-or-nothing contract with the batching enabled.
func TestTrapSweepCommitKnobs(t *testing.T) {
	txns := 10
	if testing.Short() {
		txns = 6
	}
	classes := []struct {
		name  string
		cfg   ssp.Config
		cross bool
		seed  uint64
	}{
		{"local", WithCommitKnobs(Config(ssp.SSP)), false, 0xEA60},
		{"shards", WithCommitKnobs(ShardedConfig(ssp.SSP, 3, 3)), false, 0xEA61},
		{"cross", WithCommitKnobs(ShardedConfig(ssp.SSP, 4, 4)), true, 0xEA62},
	}
	for _, cl := range classes {
		cl := cl
		t.Run(cl.name, func(t *testing.T) {
			var points, bad int
			if cl.cross {
				points, bad = SweepCrossConfig(cl.cfg, cl.seed, txns, false, os.Stderr)
			} else {
				points, bad = SweepConfig(cl.cfg, cl.seed, txns, false, os.Stderr)
			}
			if bad != 0 {
				t.Fatalf("%s (seed %#x): %d of %d trap points violated the all-or-nothing contract", cl.name, cl.seed, bad, points)
			}
			if points == 0 {
				t.Fatalf("%s sweep checked no trap points", cl.name)
			}
			t.Logf("%s: %d trap points checked", cl.name, points)
		})
	}
	t.Run("epoch", func(t *testing.T) {
		// DurabilityEpoch on with SYNCHRONOUS commits: Commit stays
		// synchronous regardless, but every explicit flush now appends an
		// epoch-seal record first, adding trap points inside each commit's
		// journal leg. The strict contract still applies: everything
		// committed survives every cut.
		cfg := WithCommitKnobs(ShardedConfig(ssp.SSP, 3, 3))
		cfg.DurabilityEpoch = 30000
		points, bad := SweepConfig(cfg, 0xEA63, txns, false, os.Stderr)
		if bad != 0 {
			t.Fatalf("epoch (seed 0xEA63): %d of %d trap points violated the all-or-nothing contract", bad, points)
		}
		if points == 0 {
			t.Fatal("epoch sweep checked no trap points")
		}
		t.Logf("epoch: %d trap points checked", points)
	})
	t.Run("checkpoints", func(t *testing.T) {
		cfg := WithCommitKnobs(ShardedConfig(ssp.SSP, 4, 4))
		cfg.JournalKB = 1 // high-water after ~16 records: checkpoints mid-script
		seed := uint64(0xCCEA)
		sc := MakeCrossScript(seed, 30)
		ref := ssp.MustNew(cfg)
		RunScript(ref, sc)
		ref.Drain()
		if st := ref.Stats(); st.Checkpoints == 0 || st.GlobalCommits == 0 {
			t.Fatalf("script drove %d checkpoints / %d global commits; the sweep needs both", st.Checkpoints, st.GlobalCommits)
		}
		points, bad := SweepScriptConfig(cfg, sc, false, os.Stderr)
		if bad != 0 {
			t.Fatalf("(seed %#x): %d of %d trap points violated the all-or-nothing contract", seed, bad, points)
		}
		t.Logf("checkpoints: %d trap points checked", points)
	})
}
