package crashsweep

import (
	"os"
	"testing"

	"repro/ssp"
)

// TestTrapSweepAllBackends runs the cmd/sspcrash trap-sweep machinery at CI
// scale: for every backend, a few random scripts, a power failure injected
// after every durable NVRAM write, recovery, and all-or-nothing
// verification. The full-scale fuzzing run stays in the binary
// (`sspcrash -scripts 20`); this keeps the crash-recovery contract under
// `go test`.
func TestTrapSweepAllBackends(t *testing.T) {
	scripts, txns := 3, 10
	if testing.Short() {
		scripts, txns = 1, 6
	}
	for _, b := range ssp.Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			total := 0
			for s := 0; s < scripts; s++ {
				seed := 0xC4A5 + uint64(s)*1000003
				points, bad := SweepScript(b, seed, txns, false, os.Stderr)
				if bad != 0 {
					t.Fatalf("script %d (seed %#x): %d of %d trap points violated the all-or-nothing contract", s, seed, bad, points)
				}
				total += points
			}
			if total == 0 {
				t.Fatal("sweep checked no trap points")
			}
			t.Logf("%d trap points checked", total)
		})
	}
}

// TestTrapSweepJournalShards runs the trap sweep on a multi-core machine
// with per-core SSP journal shards: transactions round-robin across three
// cores, so consecutive commit batches land in three different journal
// rings and the sweep injects power failures at every point between one
// shard's UpdateEnd and another shard's — recovery must TID-merge the
// shards back into a consistent slot array with the all-or-nothing
// contract intact.
func TestTrapSweepJournalShards(t *testing.T) {
	scripts, txns := 2, 10
	if testing.Short() {
		scripts, txns = 1, 6
	}
	for _, shards := range []int{2, 3} {
		cores := shards
		total := 0
		for s := 0; s < scripts; s++ {
			seed := 0x5A4D + uint64(shards)*31 + uint64(s)*1000003
			cfg := ShardedConfig(ssp.SSP, cores, shards)
			points, bad := SweepConfig(cfg, seed, txns, false, os.Stderr)
			if bad != 0 {
				t.Fatalf("%d shards, script %d (seed %#x): %d of %d trap points violated the all-or-nothing contract",
					shards, s, seed, bad, points)
			}
			total += points
		}
		if total == 0 {
			t.Fatalf("%d-shard sweep checked no trap points", shards)
		}
		t.Logf("%d shards: %d trap points checked", shards, total)
	}
}

// TestVerifyCatchesCorruption guards the verifier itself: a machine whose
// durable state was tampered with must fail verification.
func TestVerifyCatchesCorruption(t *testing.T) {
	sc := MakeScript(7, 5)
	m := ssp.New(Config(ssp.SSP))
	committed, _ := RunScript(m, sc)
	m.Drain()
	if len(committed) == 0 {
		t.Skip("script committed nothing")
	}
	if err := Verify(m, committed, nil); err != nil {
		t.Fatalf("clean run failed verification: %v", err)
	}
	var va uint64
	for a := range committed {
		va = a
		break
	}
	c := m.Core(0)
	c.Begin()
	c.Store64(va, 0xDEAD)
	c.Commit()
	if err := Verify(m, committed, nil); err == nil {
		t.Fatal("verifier accepted corrupted state")
	}
}
