// Package crashsweep is the crash-recovery fuzzing machinery shared by the
// cmd/sspcrash binary and the in-tree CI tests: it generates randomized
// transaction scripts, injects a power failure after every possible NVRAM
// write (a "trap sweep"), recovers, and verifies the all-or-nothing
// contract — committed transactions survive intact, the boundary
// transaction applies completely or not at all, and nothing else changes.
package crashsweep

import (
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/ssp"
)

// Script is a deterministic transaction sequence: txn i writes value i+1 to
// every address in its write set. Global marks transactions opened with
// BeginGlobal (cross-shard two-phase commit on a multi-shard SSP machine);
// a nil/short Global slice means all-local. Sync marks transactions whose
// committing core issues a durability-upgrade Sync right after the commit —
// only meaningful to the relaxed runner (RunScriptRelaxed).
type Script struct {
	Txns   [][]uint64
	Global []bool
	Sync   []bool
}

// global reports whether txn i runs under BeginGlobal.
func (sc Script) global(i int) bool { return i < len(sc.Global) && sc.Global[i] }

// maxPage returns the highest heap page any transaction touches.
func (sc Script) maxPage() int {
	max := 1
	for _, addrs := range sc.Txns {
		for _, va := range addrs {
			if p := int((va - ssp.HeapBase) / ssp.PageBytes); p > max {
				max = p
			}
		}
	}
	return max
}

// MakeScript builds a random script of n transactions over a small page
// range, deliberately mixing repeated lines, multiple pages and ping-ponged
// lines across transactions.
func MakeScript(seed uint64, n int) Script {
	rng := engine.NewRNG(seed)
	var sc Script
	for i := 0; i < n; i++ {
		var addrs []uint64
		for j := 0; j <= rng.Intn(6); j++ {
			page := 1 + rng.Intn(5)
			line := rng.Intn(64)
			addrs = append(addrs, ssp.HeapBase+uint64(page)*ssp.PageBytes+uint64(line)*ssp.LineBytes)
		}
		sc.Txns = append(sc.Txns, addrs)
	}
	return sc
}

// MakeCrossScript builds a script in which roughly half the transactions
// are global: each global transaction writes lines of 2-4 distinct pages
// spread over a wider page range, so on a multi-shard machine its write
// set's slots belong to several journal shards and the commit runs the
// two-phase protocol. The trap sweep then injects a power failure between
// every pair of durable writes — i.e. between each participant shard's
// prepare flush, before and after the coordinator end record, and around
// the data flushes — and recovery must keep each global transaction
// all-or-nothing across every shard.
func MakeCrossScript(seed uint64, n int) Script {
	rng := engine.NewRNG(seed)
	const pages = 8
	var sc Script
	for i := 0; i < n; i++ {
		global := rng.Intn(2) == 0
		var addrs []uint64
		if global {
			nPages := 2 + rng.Intn(3)
			if nPages > pages {
				nPages = pages
			}
			seen := map[int]bool{}
			for len(seen) < nPages {
				page := 1 + rng.Intn(pages)
				if seen[page] {
					continue
				}
				seen[page] = true
				for j := 0; j <= rng.Intn(2); j++ {
					line := rng.Intn(64)
					addrs = append(addrs, ssp.HeapBase+uint64(page)*ssp.PageBytes+uint64(line)*ssp.LineBytes)
				}
			}
		} else {
			for j := 0; j <= rng.Intn(4); j++ {
				page := 1 + rng.Intn(pages)
				line := rng.Intn(64)
				addrs = append(addrs, ssp.HeapBase+uint64(page)*ssp.PageBytes+uint64(line)*ssp.LineBytes)
			}
		}
		sc.Txns = append(sc.Txns, addrs)
		sc.Global = append(sc.Global, global)
	}
	return sc
}

// Config returns the small machine the sweep runs on.
func Config(b ssp.Backend) ssp.Config {
	return ssp.Config{Backend: b, Cores: 1, NVRAMMB: 32, DRAMMB: 2, MaxHeapPages: 512}
}

// ShardedConfig is Config with multiple cores and SSP journal shards: the
// serial round-robin driver then interleaves commit batches across the
// journal shards (core i appends to shard i mod shards), so a trap sweep
// cuts the write stream between one shard's UpdateEnd and another's.
func ShardedConfig(b ssp.Backend, cores, journalShards int) ssp.Config {
	cfg := Config(b)
	cfg.Cores = cores
	cfg.JournalShards = journalShards
	return cfg
}

// WithCommitKnobs turns on both commit-path batching knobs: eager
// (write-behind) data flushing, which makes speculative data durable in
// the shadow frames BEFORE the journal End record — every pre-End trap
// point must roll it back via the shadow slots — and a group-commit
// window, which on the sweep's serial machines degenerates to batches of
// one but still routes every commit through the group protocol's code
// path.
func WithCommitKnobs(cfg ssp.Config) ssp.Config {
	cfg.EagerFlush = true
	cfg.GroupCommitWindow = 4096
	return cfg
}

// BufferedConfig is Config with the DRAM buffer tier interposed and a
// shrunken cache hierarchy: 16 buffer frames in front of a 32 KiB L2 and a
// 64 KiB L3, so the buffered sweep's non-transactional spray
// (RunScriptBuffered) overflows every SRAM tier — dirty victim write-backs
// are absorbed in DRAM, buffer frames are evicted with NVRAM write-backs
// mid-script, and commit fences run with the tier in the path. Every one of
// those NVRAM writes is a trap point.
func BufferedConfig(b ssp.Backend) ssp.Config {
	cfg := Config(b)
	cfg.DRAMCacheFrames = 16
	cfg.L2KB = 32
	cfg.L3KB = 64
	return cfg
}

// The buffered runner's non-transactional spray range: disjoint from the
// script generators' transaction pages (1..8), so volatile spray data never
// shares a page with verified committed data.
const ntFirstPage, ntPages = 16, 32

// RunScriptBuffered is RunScript with a non-transactional store spray woven
// between the transactions: before each transaction, plain stores fill
// three whole pages of a 32-page window — enough cumulative footprint to
// overflow BufferedConfig's 64 KiB LLC and its 16-frame buffer both. The
// sprayed values are legally volatile (never verified); their role is to
// keep the buffer tier churning — absorbs, frame evictions, write-backs —
// so the trap sweep cuts the write stream inside every buffer window while
// the commit path's own durability contract is checked as usual.
func RunScriptBuffered(m *ssp.Machine, sc Script) (committed, boundary map[uint64]uint64) {
	committed = map[uint64]uint64{}
	last := sc.maxPage()
	if last < ntFirstPage+ntPages-1 {
		last = ntFirstPage + ntPages - 1
	}
	m.Heap().EnsureMapped(nil, 1, last)
	for i, addrs := range sc.Txns {
		if m.Mem().PoweredOff() {
			break
		}
		c := m.Core(i % m.Cores())
		for j := 0; j < 3*64; j++ {
			page := ntFirstPage + (i*3+j/64)%ntPages
			line := j % 64
			c.Store64(ssp.HeapBase+uint64(page)*ssp.PageBytes+uint64(line)*ssp.LineBytes, uint64(i*192+j+1))
		}
		val := uint64(i + 1)
		pending := map[uint64]uint64{}
		if sc.global(i) {
			c.BeginGlobal()
		} else {
			c.Begin()
		}
		for _, va := range addrs {
			c.Store64(va, val)
			pending[va] = val
		}
		c.Commit()
		if m.Mem().PoweredOff() {
			return committed, pending
		}
		for va, v := range pending {
			committed[va] = v
		}
	}
	return committed, nil
}

// RunScript executes sc until done or power-off, returning the guaranteed
// committed state and the boundary transaction's writes (nil if power held
// or failed between transactions). Transactions round-robin across the
// machine's cores — deterministically, one at a time — so on a multi-core
// multi-shard machine consecutive commits land in different journal shards.
// Script transactions marked Global open with BeginGlobal and commit via
// the cross-shard two-phase protocol where the backend supports it.
func RunScript(m *ssp.Machine, sc Script) (committed, boundary map[uint64]uint64) {
	committed = map[uint64]uint64{}
	m.Heap().EnsureMapped(nil, 1, sc.maxPage())
	for i, addrs := range sc.Txns {
		if m.Mem().PoweredOff() {
			break
		}
		c := m.Core(i % m.Cores())
		val := uint64(i + 1)
		pending := map[uint64]uint64{}
		if sc.global(i) {
			c.BeginGlobal()
		} else {
			c.Begin()
		}
		for _, va := range addrs {
			c.Store64(va, val)
			pending[va] = val
		}
		c.Commit()
		if m.Mem().PoweredOff() {
			return committed, pending
		}
		for va, v := range pending {
			committed[va] = v
		}
	}
	return committed, nil
}

// SweepScript runs sc once to count its durable NVRAM writes, then re-runs
// it once per possible trap point, recovering and verifying after each.
// Progress lines go to log (nil silences them); the returned counts are
// trap points checked and contract violations found.
func SweepScript(b ssp.Backend, seed uint64, txns int, verbose bool, log io.Writer) (points, failures int) {
	return SweepConfig(Config(b), seed, txns, verbose, log)
}

// SweepConfig is SweepScript over an arbitrary machine configuration
// (multi-core, multi-shard, custom capacities).
func SweepConfig(cfg ssp.Config, seed uint64, txns int, verbose bool, log io.Writer) (points, failures int) {
	return SweepScriptConfig(cfg, MakeScript(seed, txns), verbose, log)
}

// SweepCrossConfig is the cross-shard sweep: a MakeCrossScript script —
// roughly half the transactions global, spanning 2-4 pages whose slots
// belong to different journal shards — trap-swept over cfg. It covers
// every cross-shard commit trap point: between each participant shard's
// prepare flush, before/after the coordinator end record, and around the
// per-shard data flushes.
func SweepCrossConfig(cfg ssp.Config, seed uint64, txns int, verbose bool, log io.Writer) (points, failures int) {
	return SweepScriptConfig(cfg, MakeCrossScript(seed, txns), verbose, log)
}

// SweepScriptConfig runs one script's full trap sweep over cfg: a reference
// run counts the durable NVRAM writes, then the script re-runs once per
// possible trap point with recovery and all-or-nothing verification.
func SweepScriptConfig(cfg ssp.Config, sc Script, verbose bool, log io.Writer) (points, failures int) {
	return sweepScript(cfg, sc, RunScript, verbose, log)
}

// SweepBufferedScript is the buffered sweep class: the script runs through
// RunScriptBuffered on a machine with the DRAM buffer tier in the path
// (BufferedConfig, optionally with more knobs stacked), and the trap sweep
// cuts the durable write stream inside the tier's windows — between a dirty
// frame eviction's write-backs, around commit-fence hardens, between a
// fence's write-through and the journal record. Committed transactions must
// survive every cut; the sprayed volatile lines are allowed to vanish.
func SweepBufferedScript(cfg ssp.Config, sc Script, verbose bool, log io.Writer) (points, failures int) {
	return sweepScript(cfg, sc, RunScriptBuffered, verbose, log)
}

// sweepScript is the sweep engine shared by the runner variants.
func sweepScript(cfg ssp.Config, sc Script, run func(*ssp.Machine, Script) (map[uint64]uint64, map[uint64]uint64), verbose bool, log io.Writer) (points, failures int) {
	ref := ssp.MustNew(cfg)
	setup := ref.Stats().NVRAMWriteLines
	run(ref, sc)
	ref.Drain()
	writes := int64(ref.Stats().NVRAMWriteLines - setup)

	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	for k := int64(0); k <= writes; k++ {
		points++
		m := ssp.MustNew(cfg)
		m.Mem().SetWriteTrap(k)
		committed, boundary := run(m, sc)
		m.Mem().SetWriteTrap(-1)
		if err := m.Recover(); err != nil {
			logf("  trap %d: recovery error: %v\n", k, err)
			failures++
			continue
		}
		m.Heap().EnsureMapped(nil, 1, sc.maxPage())
		if err := Verify(m, committed, boundary); err != nil {
			logf("  trap %d: %v\n", k, err)
			failures++
		} else if verbose {
			logf("  trap %d ok\n", k)
		}
	}
	return points, failures
}

// Verify checks the recovered machine against the expectation state: every
// committed value present, and the boundary transaction (if any) applied
// all-or-nothing.
func Verify(m *ssp.Machine, committed, boundary map[uint64]uint64) error {
	c := m.Core(0)
	if boundary != nil {
		applied := false
		for va, v := range boundary {
			applied = c.Load64(va) == v
			break
		}
		expect := map[uint64]uint64{}
		for va, v := range committed {
			expect[va] = v
		}
		if applied {
			for va, v := range boundary {
				expect[va] = v
			}
		}
		for va, want := range expect {
			if got := c.Load64(va); got != want {
				return fmt.Errorf("boundary txn torn (applied=%v): %#x got %d want %d", applied, va, got, want)
			}
		}
		return nil
	}
	for va, want := range committed {
		if got := c.Load64(va); got != want {
			return fmt.Errorf("addr %#x: got %d want %d", va, got, want)
		}
	}
	return nil
}
