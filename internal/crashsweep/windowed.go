// The windowed sweep class: the same trap-sweep contract, but with the
// script running concurrently on a multi-core machine under the
// deterministic bounded-lag window scheduler (Config.TimeWindow > 0).
// Determinism is what makes a concurrent trap sweep well-defined at all:
// every re-run of the script produces the same durable NVRAM write stream
// in the same order, so "power failure after write k" names the same cut
// point in every run — and the sweep then proves that window barriers,
// group-commit tickets and epoch hardening cannot reorder a durability
// point across a commit's acknowledgement.

package crashsweep

import (
	"fmt"
	"io"

	"repro/ssp"
)

// windowedPageStride separates the cores' page ranges: core c writes the
// script's pages shifted up by c*stride, so cores share journal shards,
// group-commit windows and epochs but never a data page — verification
// stays per-core all-or-nothing.
const windowedPageStride = 16

// WindowedConfig is the machine the windowed sweep class runs on: a
// multi-core machine with the deterministic window scheduler, per-core
// journal shards, a group-commit window and a durability epoch all
// composed — every batching knob the scheduler must not be allowed to
// reorder durability points across.
func WindowedConfig(cores int) ssp.Config {
	cfg := Config(ssp.SSP)
	cfg.Cores = cores
	cfg.JournalShards = 2
	cfg.GroupCommitWindow = 4096
	cfg.DurabilityEpoch = 50000
	cfg.TimeWindow = 4096
	return cfg
}

// runWindowed executes sc with one goroutine per core via Machine.Run:
// core c runs transactions i with i % cores == c against its own shifted
// page range. It returns the merged guaranteed-committed state plus each
// core's boundary transaction (nil entry if that core finished cleanly or
// failed between transactions). Commits are synchronous, so even with
// DurabilityEpoch > 0 every acknowledged transaction must survive.
func runWindowed(m *ssp.Machine, sc Script) (committed map[uint64]uint64, boundaries []map[uint64]uint64) {
	cores := m.Cores()
	m.Heap().EnsureMapped(nil, 1, sc.maxPage()+(cores-1)*windowedPageStride)
	perCommitted := make([]map[uint64]uint64, cores)
	boundaries = make([]map[uint64]uint64, cores)
	m.Run(func(c *ssp.Core) {
		id := c.ID()
		mine := map[uint64]uint64{}
		perCommitted[id] = mine
		shift := uint64(id*windowedPageStride) * ssp.PageBytes
		for i := id; i < len(sc.Txns); i += cores {
			if m.Mem().PoweredOff() {
				return
			}
			val := uint64(i + 1)
			pending := map[uint64]uint64{}
			c.Begin()
			for _, va := range sc.Txns[i] {
				c.Store64(va+shift, val)
				pending[va+shift] = val
			}
			c.Commit()
			if m.Mem().PoweredOff() {
				// The commit raced the power failure: its durability is
				// legitimately unknown, so it is this core's boundary.
				boundaries[id] = pending
				return
			}
			for va, v := range pending {
				mine[va] = v
			}
		}
	})
	committed = map[uint64]uint64{}
	for _, per := range perCommitted {
		for va, v := range per {
			committed[va] = v // page ranges are disjoint; no overwrites
		}
	}
	return committed, boundaries
}

// VerifyWindowed checks the recovered machine against a windowed run's
// expectation state: every committed value present, and every core's
// boundary transaction applied all-or-nothing, each judged independently
// (the cores' page ranges are disjoint, so one core's outcome cannot mask
// another's).
func VerifyWindowed(m *ssp.Machine, committed map[uint64]uint64, boundaries []map[uint64]uint64) error {
	c := m.Core(0)
	expect := map[uint64]uint64{}
	for va, v := range committed {
		expect[va] = v
	}
	for id, b := range boundaries {
		if b == nil {
			continue
		}
		applied := false
		for va, v := range b {
			applied = c.Load64(va) == v
			break
		}
		for va, v := range b {
			if applied {
				expect[va] = v
			} else if want, wasCommitted := expect[va]; wasCommitted && c.Load64(va) != want {
				return fmt.Errorf("core %d boundary txn torn (applied=false): %#x got %d want committed %d", id, va, c.Load64(va), want)
			}
		}
	}
	for va, want := range expect {
		if got := c.Load64(va); got != want {
			return fmt.Errorf("addr %#x: got %d want %d", va, got, want)
		}
	}
	return nil
}

// SweepWindowedScript runs one script's full trap sweep over a windowed
// multi-core machine (cfg.TimeWindow must be > 0 — the sweep relies on the
// deterministic write stream): a reference run counts the durable NVRAM
// writes, then the script re-runs concurrently once per trap point with
// recovery and per-core all-or-nothing verification.
func SweepWindowedScript(cfg ssp.Config, sc Script, verbose bool, log io.Writer) (points, failures int) {
	if cfg.TimeWindow <= 0 {
		panic("crashsweep: windowed sweep needs Config.TimeWindow > 0 (free-running trap points are not reproducible)")
	}
	ref := ssp.MustNew(cfg)
	setup := ref.Stats().NVRAMWriteLines
	runWindowed(ref, sc)
	ref.Drain()
	writes := int64(ref.Stats().NVRAMWriteLines - setup)

	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	for k := int64(0); k <= writes; k++ {
		points++
		m := ssp.MustNew(cfg)
		m.Mem().SetWriteTrap(k)
		committed, boundaries := runWindowed(m, sc)
		m.Mem().SetWriteTrap(-1)
		if err := m.Recover(); err != nil {
			logf("  trap %d: recovery error: %v\n", k, err)
			failures++
			continue
		}
		m.Heap().EnsureMapped(nil, 1, sc.maxPage()+(m.Cores()-1)*windowedPageStride)
		if err := VerifyWindowed(m, committed, boundaries); err != nil {
			logf("  trap %d: %v\n", k, err)
			failures++
		} else if verbose {
			logf("  trap %d ok\n", k)
		}
	}
	return points, failures
}
