package crashsweep

import (
	"os"
	"testing"

	"repro/ssp"
)

// TestTrapSweepWindowed is the windowed concurrent crash class: the script
// runs with one goroutine per core on a 4-core machine under the
// deterministic window scheduler, with journal sharding, a group-commit
// window and a durability epoch all composed (WindowedConfig), and the
// trap sweep injects a power failure after every durable NVRAM write.
// Because TimeWindow > 0 makes the write stream reproducible, each trap
// point names the same cut in every run — the sweep proves window
// barriers, group-commit tickets and epoch hardening cannot move a
// durability point past a synchronous commit's acknowledgement.
func TestTrapSweepWindowed(t *testing.T) {
	scripts, txns := 2, 10
	if testing.Short() {
		scripts, txns = 1, 6
	}
	total := 0
	for s := 0; s < scripts; s++ {
		seed := 0x3D0A + uint64(s)*1000003
		cfg := WindowedConfig(4)
		points, bad := SweepWindowedScript(cfg, MakeScript(seed, txns), false, os.Stderr)
		if bad != 0 {
			t.Fatalf("script %d (seed %#x): %d of %d trap points violated the all-or-nothing contract", s, seed, bad, points)
		}
		total += points
	}
	if total == 0 {
		t.Fatal("windowed sweep checked no trap points")
	}
	t.Logf("%d trap points checked", total)
}

// TestTrapSweepWindowedEagerFlush stacks the eager write-behind data flush
// on top of the windowed class: speculative data becomes durable in the
// shadow frames before the journal End record, so every pre-End trap point
// must roll the early flushes back via the shadow slots — now with four
// cores' commits interleaved by the window scheduler.
func TestTrapSweepWindowedEagerFlush(t *testing.T) {
	txns := 10
	if testing.Short() {
		txns = 6
	}
	cfg := WindowedConfig(4)
	cfg.EagerFlush = true
	points, bad := SweepWindowedScript(cfg, MakeScript(0xEF1A, txns), false, os.Stderr)
	if bad != 0 {
		t.Fatalf("%d of %d trap points violated the all-or-nothing contract", bad, points)
	}
	if points == 0 {
		t.Fatal("windowed eager-flush sweep checked no trap points")
	}
	t.Logf("%d trap points checked", points)
}

// TestWindowedRunDeterministic double-checks the windowed sweep's
// foundation directly: two reference runs of the same script on the same
// config produce the same durable NVRAM write count (the trap-point space)
// and the same final stats.
func TestWindowedRunDeterministic(t *testing.T) {
	cfg := WindowedConfig(4)
	sc := MakeScript(0xD37, 12)
	run := func() (uint64, ssp.Stats) {
		m := ssp.MustNew(cfg)
		runWindowed(m, sc)
		m.Drain()
		return m.Stats().NVRAMWriteLines, *m.Stats()
	}
	w1, st1 := run()
	w2, st2 := run()
	if w1 != w2 {
		t.Fatalf("durable write streams diverged: %d vs %d lines", w1, w2)
	}
	if st1 != st2 {
		t.Fatalf("stats diverged between same-seed windowed runs:\n%+v\nvs\n%+v", st1, st2)
	}
}
