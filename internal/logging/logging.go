// Package logging implements the paper's two baseline failure-atomicity
// designs (§5.1 "Evaluated Designs"):
//
//   - UNDO-LOG: a naive hardware undo logging mechanism. The first atomic
//     store to each cache line writes the line's old value to the per-core
//     log and blocks until the record is persistent; commit flushes the
//     write set, persists a commit record and truncates the log.
//
//   - REDO-LOG: DHTM-style hardware redo logging. Stores run unblocked into
//     the (volatile) cache hierarchy; a log buffer coalesces one record per
//     modified line ("predicts the final state"). Commit persists the log
//     and a commit record — that much stays on the critical path — while
//     the in-place data write-back is pushed to a bounded background queue
//     that overlaps the code after the transaction. A full queue delays the
//     next commit, DHTM's residual critical-path cost.
//
// Both designs share the per-core NVRAM log regions of vm.Layout and the
// checksummed record streams of internal/wal.
package logging

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/txn"
	"repro/internal/vm"
)

// Log record kinds.
const (
	kindData   = 1 // payload: line address (8B) + 64B line image
	kindCommit = 2 // empty payload
)

const dataPayloadBytes = 8 + memsim.LineBytes

func encodeDataPayload(pa memsim.PAddr, line []byte) []byte {
	p := make([]byte, dataPayloadBytes)
	binary.LittleEndian.PutUint64(p, uint64(pa))
	copy(p[8:], line)
	return p
}

func decodeDataPayload(p []byte) (memsim.PAddr, []byte) {
	if len(p) != dataPayloadBytes {
		panic(fmt.Sprintf("logging: bad data payload length %d", len(p)))
	}
	return memsim.PAddr(binary.LittleEndian.Uint64(p)), p[8:]
}

// sortedLines returns the keys of a line-address set in address order, for
// deterministic commit processing.
func sortedLines(m map[memsim.PAddr][memsim.LineBytes]byte) []memsim.PAddr {
	out := make([]memsim.PAddr, 0, len(m))
	for la := range m {
		out = append(out, la)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedSet(m map[memsim.PAddr]struct{}) []memsim.PAddr {
	out := make([]memsim.PAddr, 0, len(m))
	for la := range m {
		out = append(out, la)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// lineOf returns the line base address for va translated through env.
func lineOf(env *txn.Env, core int, va uint64, at engine.Cycles) (memsim.PAddr, memsim.PAddr, engine.Cycles) {
	ppn, t := env.Translate(core, va, at)
	pa := ppn + memsim.PAddr(va&(memsim.PageBytes-1))
	return pa, memsim.LineAddr(pa), t
}

// peekLineAddr implements txn.Peeker for the write-in-place logging
// designs: the visible value always lives in the page table's home frame
// (redo's uncommitted lines are pinned in the volatile hierarchy, which the
// machine's value-authority chain consults before memory). Untimed.
func peekLineAddr(env *txn.Env, va uint64) (memsim.PAddr, bool) {
	ppn, ok := env.PT.Lookup(vm.VPNOf(va))
	if !ok {
		return 0, false
	}
	off := memsim.PAddr(va&(memsim.PageBytes-1)) &^ (memsim.LineBytes - 1)
	return ppn + off, true
}
