package logging

import (
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Undo is the UNDO-LOG baseline: hardware undo logging with in-place data
// updates. Each first store to a line persists the old value before the
// store may proceed (the store "will be blocked until the log entry reaches
// persistent memory"); repeated updates to a logged line are free.
// Undo supports the machine's parallel mode with no extra locking: all log
// state is per-core, the TID counter is atomic, and the hardware structures
// it drives (caches, memory, TLBs per core) synchronise themselves.
type Undo struct {
	env  *txn.Env
	logs []*wal.Stream
	next atomic.Uint32

	inTxn []bool
	tid   []uint32
	// old holds the pre-transaction image of every logged line, both the
	// volatile dedup set and the data needed by Abort.
	old []map[memsim.PAddr][memsim.LineBytes]byte
}

// NewUndo builds the baseline over env.
func NewUndo(env *txn.Env) *Undo {
	u := &Undo{env: env}
	u.next.Store(1)
	for c := 0; c < env.Cores(); c++ {
		u.logs = append(u.logs, wal.NewStream(env.Mem, env.Layout.LogBase[c], env.Layout.Cfg.LogBytes, stats.CatUndoLog))
		u.old = append(u.old, make(map[memsim.PAddr][memsim.LineBytes]byte))
	}
	u.inTxn = make([]bool, env.Cores())
	u.tid = make([]uint32, env.Cores())
	return u
}

// Name implements txn.Backend.
func (u *Undo) Name() string { return "UNDO-LOG" }

// PeekLineAddr implements txn.Peeker (write-in-place: the home frame).
func (u *Undo) PeekLineAddr(va uint64) (memsim.PAddr, bool) {
	return peekLineAddr(u.env, va)
}

// Begin implements txn.Backend.
func (u *Undo) Begin(core int, at engine.Cycles) engine.Cycles {
	if u.inTxn[core] {
		panic("undo: nested transaction")
	}
	u.inTxn[core] = true
	u.tid[core] = u.next.Add(1) - 1
	return at + u.env.BarrierCycles
}

// Store implements txn.Backend: log-then-update, blocking on the log write.
func (u *Undo) Store(core int, va uint64, data []byte, at engine.Cycles) engine.Cycles {
	if !u.inTxn[core] {
		panic("undo: Store outside transaction")
	}
	pa, la, t := lineOf(u.env, core, va, at)
	if _, logged := u.old[core][la]; !logged {
		// First store to this line: read the old image and persist an undo
		// record before the store proceeds.
		var img [memsim.LineBytes]byte
		t = u.env.Caches.Load(core, la, img[:], t)
		u.old[core][la] = img
		log := u.logs[core]
		t = log.Append(wal.Record{TID: u.tid[core], Kind: kindData, Payload: encodeDataPayload(la, img[:])}, t)
		t = log.Flush(t) // the blocking persist
		u.env.StatsFor(core).UndoRecords++
	}
	return u.env.Caches.Store(core, pa, data, t)
}

// Load implements txn.Backend.
func (u *Undo) Load(core int, va uint64, buf []byte, at engine.Cycles) engine.Cycles {
	pa, _, t := lineOf(u.env, core, va, at)
	return u.env.Caches.Load(core, pa, buf, t)
}

// Commit implements txn.Backend: flush the write set, persist the commit
// record, truncate.
func (u *Undo) Commit(core int, at engine.Cycles) engine.Cycles {
	if !u.inTxn[core] {
		panic("undo: Commit outside transaction")
	}
	t := at
	fence := t
	for _, la := range sortedLines(u.old[core]) {
		done, _ := u.env.Caches.Flush(core, la, t, stats.CatData)
		fence = engine.MaxCycles(fence, done)
	}
	// The write-set flush fence is UNDO-LOG's commit-critical persistence
	// wait — the same quantity SSP surfaces, so the commit-path experiment
	// compares designs on one counter.
	u.env.StatsFor(core).CommitBarrierWait += uint64(fence - t)
	t = fence
	log := u.logs[core]
	t = log.Append(wal.Record{TID: u.tid[core], Kind: kindCommit}, t)
	t = log.Flush(t)
	u.env.StatsFor(core).NVRAMWriteBytes[stats.CatCommitRecord] += wal.HeaderBytes
	u.env.StatsFor(core).NVRAMWriteBytes[stats.CatUndoLog] -= wal.HeaderBytes
	log.Reset()
	clear(u.old[core])
	u.inTxn[core] = false
	u.env.StatsFor(core).Commits++
	return t + u.env.BarrierCycles
}

// Abort implements txn.Backend: restore logged old images in cache.
func (u *Undo) Abort(core int, at engine.Cycles) engine.Cycles {
	if !u.inTxn[core] {
		panic("undo: Abort outside transaction")
	}
	t := at
	for _, la := range sortedLines(u.old[core]) {
		img := u.old[core][la]
		t = u.env.Caches.Store(core, la, img[:], t)
	}
	u.logs[core].Reset()
	clear(u.old[core])
	u.inTxn[core] = false
	u.env.StatsFor(core).Aborts++
	return t + u.env.BarrierCycles
}

// StoreNT implements txn.Backend.
func (u *Undo) StoreNT(core int, va uint64, data []byte, at engine.Cycles) engine.Cycles {
	pa, _, t := lineOf(u.env, core, va, at)
	return u.env.Caches.Store(core, pa, data, t)
}

// Crash implements txn.Backend.
func (u *Undo) Crash() {
	for c := range u.old {
		u.old[c] = make(map[memsim.PAddr][memsim.LineBytes]byte)
		u.inTxn[c] = false
		u.logs[c].Reset()
	}
}

// Recover implements txn.Backend: roll back every transaction without a
// durable commit record by applying its undo records in reverse.
func (u *Undo) Recover() error {
	u.env.Stats.Recoveries++
	var maxTID uint32
	for c := range u.logs {
		recs := wal.Scan(u.env.Mem, u.env.Layout.LogBase[c], u.env.Layout.Cfg.LogBytes)
		if m := wal.MaxTID(recs); m > maxTID {
			maxTID = m
		}
		committed := len(recs) > 0 && recs[len(recs)-1].Kind == kindCommit
		if committed {
			// In-place updates were flushed before the commit record; the
			// durable state is already the transaction's outcome.
			u.env.Stats.RecoveredTxns++
			continue
		}
		if len(recs) == 0 {
			continue
		}
		for i := len(recs) - 1; i >= 0; i-- {
			if recs[i].Kind != kindData {
				continue
			}
			pa, img := decodeDataPayload(recs[i].Payload)
			u.env.Mem.WriteLine(pa, img, 0, stats.CatRecovery)
			u.env.Stats.RecoveryNVWrites++
		}
		u.env.Stats.RolledBackTxns++
	}
	if maxTID >= u.next.Load() {
		u.next.Store(maxTID + 1)
	}
	for c := range u.logs {
		u.logs[c].SetTIDFloor(maxTID)
	}
	return nil
}

// Drain implements txn.Backend; UNDO has no background work.
func (u *Undo) Drain(at engine.Cycles) engine.Cycles { return at }
