package logging

import (
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/txn"
	"repro/internal/wal"
)

// RedoConfig tunes the REDO-LOG baseline.
type RedoConfig struct {
	// QueueLines bounds each post-commit write-back queue; a commit that
	// finds its queue full stalls until there is room (DHTM's residual
	// critical-path cost).
	QueueLines int
	// WriteBackEngines is the number of independent background write-back
	// engines. The default 1 models DHTM's single engine per memory
	// controller — every core's post-commit write-backs drain through one
	// queue and one clock, which pins REDO's parallel speedup near 1x. With
	// N engines core c drains through engine c mod N, so per-core engines
	// remove the serialisation (the ROADMAP's ablation knob); the NVRAM
	// banks underneath are still shared, so genuine bandwidth contention
	// remains modelled.
	WriteBackEngines int
}

// DefaultRedoConfig matches the tuned baseline of §5.1.
func DefaultRedoConfig() RedoConfig { return RedoConfig{QueueLines: 64, WriteBackEngines: 1} }

// redoEngine is one background write-back engine: a bounded queue of
// in-flight line write-backs and the engine's own simulated clock.
//
// pending holds completion times of in-flight background write-backs,
// oldest first; mu serialises the engine. reserved counts lines that passed
// queue admission but are not yet enqueued; a commit that would overrun
// QueueLines counting reservations waits on cond until the reserving
// commits enqueue, so concurrent commits cannot jointly overrun the queue
// between admission and enqueue.
type redoEngine struct {
	mu       sync.Mutex
	cond     *sync.Cond
	pending  []engine.Cycles
	clock    engine.Cycles
	reserved int
}

// reap removes completed write-backs from the queue head. Caller holds mu.
func (e *redoEngine) reap(now engine.Cycles) {
	i := 0
	for i < len(e.pending) && e.pending[i] <= now {
		i++
	}
	e.pending = e.pending[i:]
}

// Redo is the REDO-LOG baseline (DHTM-style hardware redo logging).
//
// Parallel mode: logs and write sets are per-core, the TID counter is
// atomic, and each background write-back engine (pending queue and clock)
// is serialised by its own mutex. The default single engine is the DHTM
// design — one engine at the memory controller — so commits contending on
// it is the modelled behaviour, not an artefact; RedoConfig.WriteBackEngines
// ablates that choice.
type Redo struct {
	env *txn.Env
	cfg RedoConfig

	logs []*wal.Stream
	next atomic.Uint32

	inTxn []bool
	tid   []uint32
	wset  []map[memsim.PAddr]struct{} // speculative lines of the open txn

	engines []*redoEngine
}

// NewRedo builds the baseline over env.
func NewRedo(env *txn.Env, cfg RedoConfig) *Redo {
	if cfg.QueueLines <= 0 {
		cfg = DefaultRedoConfig()
	}
	if cfg.WriteBackEngines <= 0 {
		cfg.WriteBackEngines = 1
	}
	r := &Redo{env: env, cfg: cfg}
	for i := 0; i < cfg.WriteBackEngines; i++ {
		e := &redoEngine{}
		e.cond = sync.NewCond(&e.mu)
		r.engines = append(r.engines, e)
	}
	r.next.Store(1)
	for c := 0; c < env.Cores(); c++ {
		r.logs = append(r.logs, wal.NewStream(env.Mem, env.Layout.LogBase[c], env.Layout.Cfg.LogBytes, stats.CatRedoLog))
		r.wset = append(r.wset, make(map[memsim.PAddr]struct{}))
	}
	r.inTxn = make([]bool, env.Cores())
	r.tid = make([]uint32, env.Cores())
	return r
}

// engineFor maps a committing core to its write-back engine.
func (r *Redo) engineFor(core int) *redoEngine {
	return r.engines[core%len(r.engines)]
}

// Name implements txn.Backend.
func (r *Redo) Name() string { return "REDO-LOG" }

// PeekLineAddr implements txn.Peeker (write-in-place home frame; committed
// values still in the write-back queue are also pinned in the volatile
// hierarchy, which ranks above memory in the value-authority chain).
func (r *Redo) PeekLineAddr(va uint64) (memsim.PAddr, bool) {
	return peekLineAddr(r.env, va)
}

// Begin implements txn.Backend.
func (r *Redo) Begin(core int, at engine.Cycles) engine.Cycles {
	if r.inTxn[core] {
		panic("redo: nested transaction")
	}
	r.inTxn[core] = true
	r.tid[core] = r.next.Add(1) - 1
	return at + r.env.BarrierCycles
}

// Store implements txn.Backend: unblocked store into the cache; the line is
// pinned as speculative so it cannot reach NVRAM in place before commit.
func (r *Redo) Store(core int, va uint64, data []byte, at engine.Cycles) engine.Cycles {
	if !r.inTxn[core] {
		panic("redo: Store outside transaction")
	}
	pa, la, t := lineOf(r.env, core, va, at)
	t = r.env.Caches.Store(core, pa, data, t)
	r.env.Caches.MarkTx(core, pa)
	if _, ok := r.wset[core][la]; !ok {
		r.wset[core][la] = struct{}{}
		r.env.StatsFor(core).RedoRecords++
	}
	return t
}

// Load implements txn.Backend.
func (r *Redo) Load(core int, va uint64, buf []byte, at engine.Cycles) engine.Cycles {
	pa, _, t := lineOf(r.env, core, va, at)
	return r.env.Caches.Load(core, pa, buf, t)
}

// Commit implements txn.Backend. Critical path: log persistence (one
// final-state record per modified line) and the commit record, after
// waiting for write-back queue space. The data write-back itself runs in
// the background.
func (r *Redo) Commit(core int, at engine.Cycles) engine.Cycles {
	if !r.inTxn[core] {
		panic("redo: Commit outside transaction")
	}
	t := at
	lines := sortedSet(r.wset[core])
	eng := r.engineFor(core)

	// Queue admission: wait until this core's engine has room for the
	// write set. If space reserved by concurrent commits would overrun the
	// queue, wait (host-side) for those commits to enqueue first — their
	// completion times then appear in pending, and the simulated-time stall
	// below sees them, exactly as in the serial model.
	eng.mu.Lock()
	eng.reap(t)
	for len(eng.pending)+eng.reserved+len(lines) > r.cfg.QueueLines && eng.reserved > 0 {
		eng.cond.Wait()
		eng.reap(t)
	}
	if len(eng.pending)+len(lines) > r.cfg.QueueLines && len(eng.pending) > 0 {
		need := len(eng.pending) + len(lines) - r.cfg.QueueLines
		if need > len(eng.pending) {
			need = len(eng.pending)
		}
		stallFrom := t
		t = engine.MaxCycles(t, eng.pending[need-1])
		eng.reap(t)
		r.env.StatsFor(core).WritebackStalls++
		// The queue-admission stall is REDO-LOG's commit-critical
		// persistence wait, charged to the shared barrier-wait counter.
		r.env.StatsFor(core).CommitBarrierWait += uint64(t - stallFrom)
	}
	eng.reserved += len(lines)
	eng.mu.Unlock()

	// Persist the redo log: predicted final state of each modified line.
	log := r.logs[core]
	for _, la := range lines {
		var img [memsim.LineBytes]byte
		r.env.Caches.DebugPeek(la, img[:]) // controller sees the final value
		t = log.Append(wal.Record{TID: r.tid[core], Kind: kindData, Payload: encodeDataPayload(la, img[:])}, t)
	}
	t = log.Append(wal.Record{TID: r.tid[core], Kind: kindCommit}, t)
	t = log.Flush(t)
	r.env.StatsFor(core).NVRAMWriteBytes[stats.CatCommitRecord] += wal.HeaderBytes
	r.env.StatsFor(core).NVRAMWriteBytes[stats.CatRedoLog] -= wal.HeaderBytes

	// Background: write the data back in place, overlapping subsequent
	// execution. Functionally the lines become durable now (write order is
	// preserved); only the core's clock ignores the latency.
	eng.mu.Lock()
	eng.reserved -= len(lines)
	bg := engine.MaxCycles(t, eng.clock)
	for _, la := range lines {
		done, _ := r.env.Caches.Flush(core, la, bg, stats.CatData)
		bg = done
		eng.pending = append(eng.pending, done)
	}
	eng.clock = bg
	eng.cond.Broadcast()
	eng.mu.Unlock()

	// The log can be reused: write-backs are durably ordered after the log
	// records, so any crash either replays this transaction from the log
	// or already sees its data in place.
	log.Reset()
	clear(r.wset[core])
	r.inTxn[core] = false
	r.env.StatsFor(core).Commits++
	return t + r.env.BarrierCycles
}

// Abort implements txn.Backend: speculative lines exist only in the cache,
// so dropping them restores the committed state.
func (r *Redo) Abort(core int, at engine.Cycles) engine.Cycles {
	if !r.inTxn[core] {
		panic("redo: Abort outside transaction")
	}
	for _, la := range sortedSet(r.wset[core]) {
		r.env.Caches.InvalidateLine(la)
	}
	r.logs[core].Reset()
	clear(r.wset[core])
	r.inTxn[core] = false
	r.env.StatsFor(core).Aborts++
	return at + r.env.BarrierCycles
}

// StoreNT implements txn.Backend.
func (r *Redo) StoreNT(core int, va uint64, data []byte, at engine.Cycles) engine.Cycles {
	pa, _, t := lineOf(r.env, core, va, at)
	return r.env.Caches.Store(core, pa, data, t)
}

// Crash implements txn.Backend.
func (r *Redo) Crash() {
	for c := range r.wset {
		r.wset[c] = make(map[memsim.PAddr]struct{})
		r.inTxn[c] = false
		r.logs[c].Reset()
	}
	for _, e := range r.engines {
		e.pending = nil
		e.clock = 0
		e.reserved = 0
	}
}

// Recover implements txn.Backend: replay the log of every transaction whose
// commit record is durable; discard the rest (their in-place data never
// left the volatile caches).
func (r *Redo) Recover() error {
	r.env.Stats.Recoveries++
	var maxTID uint32
	for c := range r.logs {
		recs := wal.Scan(r.env.Mem, r.env.Layout.LogBase[c], r.env.Layout.Cfg.LogBytes)
		if m := wal.MaxTID(recs); m > maxTID {
			maxTID = m
		}
		if len(recs) == 0 {
			continue
		}
		if recs[len(recs)-1].Kind != kindCommit {
			r.env.Stats.RolledBackTxns++
			continue
		}
		for _, rec := range recs {
			if rec.Kind != kindData {
				continue
			}
			pa, img := decodeDataPayload(rec.Payload)
			r.env.Mem.WriteLine(pa, img, 0, stats.CatRecovery)
			r.env.Stats.RecoveryNVWrites++
			r.env.Stats.ReplayedRecords++
		}
		r.env.Stats.RecoveredTxns++
	}
	if maxTID >= r.next.Load() {
		r.next.Store(maxTID + 1)
	}
	for c := range r.logs {
		r.logs[c].SetTIDFloor(maxTID)
	}
	return nil
}

// Drain implements txn.Backend: wait for every write-back queue to empty.
func (r *Redo) Drain(at engine.Cycles) engine.Cycles {
	t := at
	for _, e := range r.engines {
		e.mu.Lock()
		t = engine.MaxCycles(t, e.clock)
		e.pending = nil
		e.mu.Unlock()
	}
	return t
}
