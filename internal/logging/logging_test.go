package logging

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/tlbsim"
	"repro/internal/txn"
	"repro/internal/vm"
)

func testEnv(t *testing.T, cores int) *txn.Env {
	t.Helper()
	st := &stats.Stats{}
	mcfg := memsim.DefaultConfig()
	mcfg.DRAMBytes = 1 << 20
	mcfg.NVRAMBytes = 16 << 20
	mem := memsim.New(mcfg, st)
	lcfg := vm.DefaultLayoutConfig(cores)
	lcfg.MaxHeapPages = 256
	lcfg.SSPSlots = 16
	lcfg.JournalBytes = 8 << 10
	lcfg.LogBytes = 32 << 10
	layout := vm.NewLayout(mcfg, lcfg)
	env := &txn.Env{
		Mem:           mem,
		Caches:        cachesim.New(cachesim.DefaultConfig(cores), mem, st),
		PT:            vm.NewPageTable(mem, layout),
		Frames:        vm.NewFrameAlloc(layout),
		Layout:        layout,
		Stats:         st,
		BarrierCycles: 30,
	}
	for c := 0; c < cores; c++ {
		env.TLBs = append(env.TLBs, tlbsim.New(64, st))
	}
	vm.Format(mem, layout)
	return env
}

func mapPage(env *txn.Env, vpn int) {
	env.PT.Set(vpn, env.Frames.Alloc(), 0)
}

func va(vpn, off int) uint64 { return vm.VAOf(vpn) + uint64(off) }

func TestUndoBlocksOnFirstStoreOnly(t *testing.T) {
	env := testEnv(t, 1)
	u := NewUndo(env)
	mapPage(env, 0)
	u.Begin(0, 0)
	t1 := u.Store(0, va(0, 0), []byte{1}, 0)
	before := env.Stats.UndoRecords
	t2 := u.Store(0, va(0, 8), []byte{2}, t1) // same line: no new record
	if env.Stats.UndoRecords != before {
		t.Error("second store to the same line logged again")
	}
	if env.Stats.UndoRecords != 1 {
		t.Errorf("undo records = %d", env.Stats.UndoRecords)
	}
	// The first store's blocking persist makes it far more expensive than
	// the second (cache-hit) store.
	if t1 < 500 {
		t.Errorf("first store did not block on the log persist: %d cycles", t1)
	}
	if t2-t1 > t1 {
		t.Errorf("second store (%d) should be much cheaper than first (%d)", t2-t1, t1)
	}
	u.Commit(0, t2)
}

func TestUndoAbortRestores(t *testing.T) {
	env := testEnv(t, 1)
	u := NewUndo(env)
	mapPage(env, 0)
	u.Begin(0, 0)
	u.Store(0, va(0, 0), []byte{0xAA}, 0)
	u.Commit(0, 0)

	u.Begin(0, 0)
	u.Store(0, va(0, 0), []byte{0xBB}, 0)
	u.Abort(0, 0)
	var buf [1]byte
	u.Load(0, va(0, 0), buf[:], 0)
	if buf[0] != 0xAA {
		t.Errorf("abort did not restore: %#x", buf[0])
	}
}

func TestUndoRecoveryRollsBackInPlaceWrites(t *testing.T) {
	env := testEnv(t, 1)
	u := NewUndo(env)
	mapPage(env, 0)
	u.Begin(0, 0)
	u.Store(0, va(0, 0), []byte{0x11}, 0)
	u.Commit(0, 0)

	// Uncommitted transaction whose in-place write reaches NVRAM.
	u.Begin(0, 0)
	u.Store(0, va(0, 0), []byte{0x22}, 0)
	env.Caches.FlushAll(0, stats.CatData) // evictions push it in place

	// Power failure.
	env.Caches.DropAll()
	u.Crash()
	if err := u.Recover(); err != nil {
		t.Fatal(err)
	}
	var buf [1]byte
	env.Mem.Peek(mustFrame(env, 0), buf[:])
	if buf[0] != 0x11 {
		t.Errorf("recovery did not roll back in-place write: %#x", buf[0])
	}
	if env.Stats.RolledBackTxns != 1 {
		t.Errorf("rolled back = %d", env.Stats.RolledBackTxns)
	}
}

func mustFrame(env *txn.Env, vpn int) memsim.PAddr {
	pa, ok := env.PT.Lookup(vpn)
	if !ok {
		panic("unmapped")
	}
	return pa
}

func TestRedoCommitPersistsLogNotData(t *testing.T) {
	env := testEnv(t, 1)
	r := NewRedo(env, DefaultRedoConfig())
	mapPage(env, 0)
	r.Begin(0, 0)
	r.Store(0, va(0, 0), []byte{0x77}, 0)
	r.Commit(0, 0)
	if env.Stats.RedoRecords != 1 {
		t.Errorf("redo records = %d", env.Stats.RedoRecords)
	}
	if env.Stats.WriteBytes(stats.CatRedoLog) == 0 {
		t.Error("no redo log bytes written")
	}
	// Data write-back happened in the background (CatData written).
	if env.Stats.WriteBytes(stats.CatData) == 0 {
		t.Error("background write-back did not run")
	}
}

func TestRedoUncommittedInvisibleAfterCrash(t *testing.T) {
	env := testEnv(t, 1)
	r := NewRedo(env, DefaultRedoConfig())
	mapPage(env, 0)
	r.Begin(0, 0)
	r.Store(0, va(0, 0), []byte{0x55}, 0)
	// Crash before commit: the speculative line was pinned in caches.
	env.Caches.DropAll()
	r.Crash()
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	var buf [1]byte
	env.Mem.Peek(mustFrame(env, 0), buf[:])
	if buf[0] != 0 {
		t.Errorf("uncommitted redo data in place: %#x", buf[0])
	}
}

func TestRedoRecoveryReplaysCommitted(t *testing.T) {
	env := testEnv(t, 1)
	r := NewRedo(env, DefaultRedoConfig())
	mapPage(env, 0)
	r.Begin(0, 0)
	r.Store(0, va(0, 0), []byte{0x99}, 0)
	r.Commit(0, 0)
	// Simulate the crash losing the background write-back: clobber the
	// in-place line, then replay from the log.
	env.Mem.Poke(mustFrame(env, 0), []byte{0x00})
	env.Caches.DropAll()
	r.Crash()
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	var buf [1]byte
	env.Mem.Peek(mustFrame(env, 0), buf[:])
	if buf[0] != 0x99 {
		t.Errorf("replay did not restore committed data: %#x", buf[0])
	}
	if env.Stats.ReplayedRecords == 0 {
		t.Error("no replayed records counted")
	}
}

func TestRedoQueueStalls(t *testing.T) {
	env := testEnv(t, 1)
	r := NewRedo(env, RedoConfig{QueueLines: 2})
	for vpn := 0; vpn < 4; vpn++ {
		mapPage(env, vpn)
	}
	// Issue commits back-to-back at a pinned core time, so the background
	// write-back queue cannot drain between them.
	var last engine.Cycles
	for i := 0; i < 20; i++ {
		r.Begin(0, 0)
		for vpn := 0; vpn < 4; vpn++ {
			r.Store(0, va(vpn, (i%64)*64), []byte{byte(i)}, 0)
		}
		last = r.Commit(0, 0)
	}
	if env.Stats.WritebackStalls == 0 {
		t.Error("tiny queue never stalled a commit")
	}
	if d := r.Drain(last); d < last {
		t.Error("drain returned before the last commit")
	}
}

// TestRedoWriteBackEngines: with one engine (the modelled DHTM behaviour)
// two cores' post-commit write-backs funnel through one queue and one
// clock, so a commit's queue-full stall waits behind the OTHER core's
// write-backs too; with per-core engines each core only ever waits on its
// own. Identical alternating command streams must therefore finish no later
// — and, with a tiny queue, strictly earlier — on per-core engines, with
// identical durable state.
func TestRedoWriteBackEngines(t *testing.T) {
	run := func(engines int) (last engine.Cycles, r *Redo) {
		env := testEnv(t, 2)
		r = NewRedo(env, RedoConfig{QueueLines: 2, WriteBackEngines: engines})
		for vpn := 0; vpn < 4; vpn++ {
			mapPage(env, vpn)
		}
		for i := 0; i < 20; i++ {
			core := i % 2
			r.Begin(core, 0)
			for vpn := 0; vpn < 4; vpn++ {
				r.Store(core, va(vpn, (i%64)*64), []byte{byte(i)}, 0)
			}
			if done := r.Commit(core, 0); done > last {
				last = done
			}
		}
		r.Drain(last)
		return last, r
	}
	sharedLast, _ := run(1)
	perCoreLast, r := run(2)
	if perCoreLast >= sharedLast {
		t.Errorf("per-core engines finished at %d, shared engine at %d; independent queues should stall less",
			perCoreLast, sharedLast)
	}
	// Durable state is engine-count independent: txn i wrote byte(i) to
	// line i of every page.
	var buf [1]byte
	for _, i := range []int{0, 7, 19} {
		r.Load(0, va(0, i*64), buf[:], 0)
		if buf[0] != byte(i) {
			t.Errorf("page 0 line %d = %d, want %d", i, buf[0], i)
		}
	}
}

func TestRedoAbortDropsSpeculation(t *testing.T) {
	env := testEnv(t, 1)
	r := NewRedo(env, DefaultRedoConfig())
	mapPage(env, 0)
	r.Begin(0, 0)
	r.Store(0, va(0, 0), []byte{0x42}, 0)
	r.Abort(0, 0)
	var buf [1]byte
	r.Load(0, va(0, 0), buf[:], 0)
	if buf[0] != 0 {
		t.Errorf("aborted redo data visible: %#x", buf[0])
	}
}

func TestEnvTranslateChargesWalkOnMiss(t *testing.T) {
	env := testEnv(t, 1)
	mapPage(env, 3)
	_, t1 := env.Translate(0, va(3, 0), 0)
	if t1 == 0 {
		t.Error("TLB miss did not charge a page walk")
	}
	_, t2 := env.Translate(0, va(3, 64), t1)
	if t2 != t1 {
		t.Errorf("TLB hit charged time: %d -> %d", t1, t2)
	}
	if env.Stats.TLBMisses != 1 || env.Stats.TLBHits != 1 {
		t.Errorf("tlb counters: %d misses %d hits", env.Stats.TLBMisses, env.Stats.TLBHits)
	}
}
