// Package vm defines the persistent physical layout of the simulated NVRAM,
// the durable flat page table mapping the persistent heap's virtual pages to
// frames, and the physical frame allocator.
//
// NVRAM layout (all regions page-aligned):
//
//	+0                superblock (magic, root table)
//	+4 KiB            page table: MaxHeapPages PTEs of 8 bytes
//	...               persistent SSP slot array (SSPSlots × 64 B)
//	...               SSP metadata journal rings (JournalShards × JournalBytes)
//	...               per-core log regions (Cores × LogBytes), undo/redo
//	...               frame pool: data pages and SSP shadow pages
//
// The superblock, slot array, journal and log regions are parsed back out
// of the durable image during recovery.
package vm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/memsim"
	"repro/internal/stats"
)

// HeapBase is the virtual address where the persistent heap begins. Virtual
// page numbers index the page table as (va-HeapBase)>>12.
const HeapBase = 0x10_0000_0000

// Superblock field offsets (bytes from SuperblockBase).
const (
	SBMagicOff    = 0
	SBRootsOff    = 256 // RootSlots × 8 bytes
	RootSlots     = 64
	SBMagic       = 0x5353505f4d333231 // "SSP_M321"
	SuperblockLen = memsim.PageBytes
)

// MaxJournalShards bounds LayoutConfig.JournalShards (the same limit sizes
// the per-shard counter arrays in stats.Stats).
const MaxJournalShards = stats.MaxJournalShards

// LayoutConfig sizes the persistent regions.
type LayoutConfig struct {
	MaxHeapPages int // page table capacity
	SSPSlots     int // persistent SSP cache slots
	JournalBytes int // metadata journal ring capacity, per shard
	// JournalShards is the number of independent metadata journal regions
	// (default 1 = the paper's single shared journal). Each shard is an
	// independent JournalBytes ring with its own tail line, so commits on
	// different shards never serialise on one journal bank.
	JournalShards int
	LogBytes      int // per-core log region capacity (undo/redo)
	Cores         int
}

// DefaultLayoutConfig returns simulation-friendly defaults: a 1 K-entry SSP
// cache (§5.1 reserves ~1K entries), 64 KiB journal, 256 KiB per-core logs.
func DefaultLayoutConfig(cores int) LayoutConfig {
	return LayoutConfig{
		MaxHeapPages: 24 << 10, // 96 MiB of heap virtual space
		SSPSlots:     1024,
		JournalBytes: 64 << 10,
		LogBytes:     256 << 10,
		Cores:        cores,
	}
}

// Layout holds the resolved base addresses of every persistent region.
type Layout struct {
	Cfg LayoutConfig

	SuperblockBase memsim.PAddr
	PageTableBase  memsim.PAddr
	SSPSlotsBase   memsim.PAddr
	JournalBase    []memsim.PAddr // one per journal shard
	LogBase        []memsim.PAddr // one per core
	FramePoolBase  memsim.PAddr
	FramePoolEnd   memsim.PAddr
	Frames         int
}

func pageAlign(pa memsim.PAddr) memsim.PAddr {
	return (pa + memsim.PageBytes - 1) &^ (memsim.PageBytes - 1)
}

// NewLayout computes the region map for the given memory and layout
// configuration. It panics if NVRAM is too small to hold the metadata plus
// at least one frame.
func NewLayout(mcfg memsim.Config, cfg LayoutConfig) Layout {
	if cfg.JournalShards <= 0 {
		cfg.JournalShards = 1
	}
	if cfg.JournalShards > MaxJournalShards {
		panic(fmt.Sprintf("vm: JournalShards %d exceeds MaxJournalShards %d", cfg.JournalShards, MaxJournalShards))
	}
	l := Layout{Cfg: cfg}
	p := mcfg.NVRAMBase
	l.SuperblockBase = p
	p += SuperblockLen
	l.PageTableBase = p
	p = pageAlign(p + memsim.PAddr(cfg.MaxHeapPages*8))
	l.SSPSlotsBase = p
	p = pageAlign(p + memsim.PAddr(cfg.SSPSlots*memsim.LineBytes))
	l.JournalBase = make([]memsim.PAddr, cfg.JournalShards)
	for i := range l.JournalBase {
		l.JournalBase[i] = p
		p = pageAlign(p + memsim.PAddr(cfg.JournalBytes))
	}
	l.LogBase = make([]memsim.PAddr, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		l.LogBase[i] = p
		p = pageAlign(p + memsim.PAddr(cfg.LogBytes))
	}
	l.FramePoolBase = pageAlign(p)
	end := mcfg.NVRAMBase + memsim.PAddr(mcfg.NVRAMBytes)
	if l.FramePoolBase >= end {
		panic("vm: NVRAM too small for metadata regions")
	}
	l.Frames = int((end - l.FramePoolBase) / memsim.PageBytes)
	l.FramePoolEnd = l.FramePoolBase + memsim.PAddr(l.Frames)*memsim.PageBytes
	return l
}

// FrameIndex converts a frame base address into its pool index.
func (l *Layout) FrameIndex(pa memsim.PAddr) int {
	if pa < l.FramePoolBase || pa >= l.FramePoolEnd || pa%memsim.PageBytes != 0 {
		panic(fmt.Sprintf("vm: %#x is not a frame base", pa))
	}
	return int((pa - l.FramePoolBase) / memsim.PageBytes)
}

// FrameAddr converts a pool index into the frame's base address.
func (l *Layout) FrameAddr(idx int) memsim.PAddr {
	if idx < 0 || idx >= l.Frames {
		panic(fmt.Sprintf("vm: frame index %d out of range", idx))
	}
	return l.FramePoolBase + memsim.PAddr(idx)*memsim.PageBytes
}

// RootAddr returns the durable address of root slot i.
func (l *Layout) RootAddr(i int) memsim.PAddr {
	if i < 0 || i >= RootSlots {
		panic(fmt.Sprintf("vm: root slot %d out of range", i))
	}
	return l.SuperblockBase + SBRootsOff + memsim.PAddr(i*8)
}

// PTEAddr returns the durable address of the page-table entry for vpn.
func (l *Layout) PTEAddr(vpn int) memsim.PAddr {
	if vpn < 0 || vpn >= l.Cfg.MaxHeapPages {
		panic(fmt.Sprintf("vm: vpn %d out of page-table range", vpn))
	}
	return l.PageTableBase + memsim.PAddr(vpn*8)
}

// VPNOf converts a heap virtual address to its virtual page number.
func VPNOf(va uint64) int {
	if va < HeapBase {
		panic(fmt.Sprintf("vm: address %#x below heap base", va))
	}
	return int((va - HeapBase) >> memsim.PageShift)
}

// VAOf converts a virtual page number back to the page's base address.
func VAOf(vpn int) uint64 { return HeapBase + uint64(vpn)<<memsim.PageShift }

// Format initialises a fresh superblock (magic + zero roots) in mem.
func Format(mem *memsim.Memory, l Layout) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], SBMagic)
	mem.Poke(l.SuperblockBase+SBMagicOff, buf[:])
}

// IsFormatted reports whether mem carries a formatted superblock.
func IsFormatted(mem *memsim.Memory, l Layout) bool {
	var buf [8]byte
	mem.Peek(l.SuperblockBase+SBMagicOff, buf[:])
	return binary.LittleEndian.Uint64(buf[:]) == SBMagic
}
