package vm

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
)

// PageTable is the durable flat table mapping heap VPNs to frame base
// addresses. Updates are 8-byte atomic NVRAM writes (the hardware primitive
// BPFS-style designs rely on); a volatile mirror makes lookups cheap, and
// Rebuild reconstructs the mirror from the durable bytes after a crash.
type PageTable struct {
	mem    *memsim.Memory
	layout Layout

	mu     sync.RWMutex
	mirror []memsim.PAddr // 0 = unmapped
}

// NewPageTable returns a page table over mem; the mirror starts empty
// (matching a freshly formatted image). Call Rebuild when booting from an
// existing image.
func NewPageTable(mem *memsim.Memory, l Layout) *PageTable {
	return &PageTable{mem: mem, layout: l, mirror: make([]memsim.PAddr, l.Cfg.MaxHeapPages)}
}

// Lookup returns the frame mapped at vpn, if any. No timing is charged;
// Walk is the timed variant used on TLB misses.
func (pt *PageTable) Lookup(vpn int) (memsim.PAddr, bool) {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	if vpn < 0 || vpn >= len(pt.mirror) {
		return 0, false
	}
	pa := pt.mirror[vpn]
	return pa, pa != 0
}

// Walk performs a timed page-table walk for vpn: the PTE's line is read
// from memory (page walks miss the cache hierarchy in our model, a
// conservative simplification) and the translation returned.
func (pt *PageTable) Walk(vpn int, at engine.Cycles) (memsim.PAddr, engine.Cycles, bool) {
	pa, ok := pt.Lookup(vpn)
	if !ok {
		return 0, at, false
	}
	var buf [memsim.LineBytes]byte
	done := pt.mem.ReadLine(pt.layout.PTEAddr(vpn), buf[:], at)
	return pa, done, true
}

// Set durably maps vpn to frame pa (0 unmaps) with an 8-byte atomic write
// and returns its completion time.
func (pt *PageTable) Set(vpn int, pa memsim.PAddr, at engine.Cycles) engine.Cycles {
	pt.mu.Lock()
	if vpn < 0 || vpn >= len(pt.mirror) {
		pt.mu.Unlock()
		panic(fmt.Sprintf("vm: Set of out-of-range vpn %d", vpn))
	}
	pt.mirror[vpn] = pa
	pt.mu.Unlock()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(pa))
	return pt.mem.WriteBytes(pt.layout.PTEAddr(vpn), buf[:], at, stats.CatControl)
}

// SetMirror updates only the volatile mirror; recovery uses it when the
// durable repair is journaled separately.
func (pt *PageTable) SetMirror(vpn int, pa memsim.PAddr) {
	pt.mu.Lock()
	pt.mirror[vpn] = pa
	pt.mu.Unlock()
}

// Rebuild reloads the mirror from the durable PTE array.
func (pt *PageTable) Rebuild() {
	buf := make([]byte, len(pt.mirror)*8)
	pt.mem.Peek(pt.layout.PageTableBase, buf)
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for i := range pt.mirror {
		pt.mirror[i] = memsim.PAddr(binary.LittleEndian.Uint64(buf[i*8:]))
	}
}

// Mapped returns every mapped (vpn, frame) pair in vpn order.
func (pt *PageTable) Mapped() [](struct {
	VPN   int
	Frame memsim.PAddr
}) {
	var out [](struct {
		VPN   int
		Frame memsim.PAddr
	})
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	for vpn, pa := range pt.mirror {
		if pa != 0 {
			out = append(out, struct {
				VPN   int
				Frame memsim.PAddr
			}{vpn, pa})
		}
	}
	return out
}

// FrameAlloc hands out physical frames from the pool. Allocation state is
// volatile: recovery rebuilds it by scanning the page table and SSP slots
// (frames lost between mapping and commit leak until then — see DESIGN.md
// §5).
type FrameAlloc struct {
	layout Layout

	mu   sync.Mutex
	free []int // stack of free frame indices
	used []bool
}

// NewFrameAlloc returns an allocator with every frame free.
func NewFrameAlloc(l Layout) *FrameAlloc {
	fa := &FrameAlloc{layout: l, used: make([]bool, l.Frames)}
	for i := l.Frames - 1; i >= 0; i-- {
		fa.free = append(fa.free, i)
	}
	return fa
}

// Alloc returns a free frame's base address. It panics when the pool is
// exhausted (simulated machines are sized for their workloads).
func (fa *FrameAlloc) Alloc() memsim.PAddr {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	for len(fa.free) > 0 {
		idx := fa.free[len(fa.free)-1]
		fa.free = fa.free[:len(fa.free)-1]
		if !fa.used[idx] {
			fa.used[idx] = true
			return fa.layout.FrameAddr(idx)
		}
	}
	panic("vm: NVRAM frame pool exhausted; raise Config.NVRAMBytes")
}

// Free returns a frame to the pool.
func (fa *FrameAlloc) Free(pa memsim.PAddr) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	idx := fa.layout.FrameIndex(pa)
	if !fa.used[idx] {
		panic(fmt.Sprintf("vm: double free of frame %#x", pa))
	}
	fa.used[idx] = false
	fa.free = append(fa.free, idx)
}

// FreeCold returns a frame to the cold end of the pool, so it is reused
// only after every other free frame. Wear rotation retires hot frames this
// way: with the plain LIFO Free, a retired frame would be the very next
// Alloc's pick and the same physical frame would keep soaking up the hot
// page's writes.
func (fa *FrameAlloc) FreeCold(pa memsim.PAddr) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	idx := fa.layout.FrameIndex(pa)
	if !fa.used[idx] {
		panic(fmt.Sprintf("vm: double free of frame %#x", pa))
	}
	fa.used[idx] = false
	fa.free = append([]int{idx}, fa.free...)
}

// Reserve marks a frame used during recovery rebuilds; reserving an
// already-used frame is an error.
func (fa *FrameAlloc) Reserve(pa memsim.PAddr) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	idx := fa.layout.FrameIndex(pa)
	if fa.used[idx] {
		panic(fmt.Sprintf("vm: frame %#x reserved twice", pa))
	}
	fa.used[idx] = true
}

// Reset returns the allocator to the all-free state, then the caller
// re-reserves live frames (recovery).
func (fa *FrameAlloc) Reset() {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	fa.free = fa.free[:0]
	for i := fa.layout.Frames - 1; i >= 0; i-- {
		fa.used[i] = false
		fa.free = append(fa.free, i)
	}
}

// InUse returns the number of allocated frames.
func (fa *FrameAlloc) InUse() int {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	n := 0
	for _, u := range fa.used {
		if u {
			n++
		}
	}
	return n
}

// FreeCount returns the number of available frames.
func (fa *FrameAlloc) FreeCount() int { return fa.layout.Frames - fa.InUse() }
