package vm

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/stats"
)

func testEnv(t *testing.T) (*memsim.Memory, Layout, *stats.Stats) {
	t.Helper()
	st := &stats.Stats{}
	mcfg := memsim.DefaultConfig()
	mcfg.DRAMBytes = 1 << 20
	mcfg.NVRAMBytes = 16 << 20
	lcfg := DefaultLayoutConfig(2)
	lcfg.MaxHeapPages = 512
	lcfg.SSPSlots = 64
	lcfg.JournalBytes = 8 << 10
	lcfg.LogBytes = 16 << 10
	mem := memsim.New(mcfg, st)
	l := NewLayout(mcfg, lcfg)
	return mem, l, st
}

func TestLayoutRegionsDisjointAndOrdered(t *testing.T) {
	_, l, _ := testEnv(t)
	if l.PageTableBase <= l.SuperblockBase {
		t.Error("page table overlaps superblock")
	}
	if l.SSPSlotsBase < l.PageTableBase+memsim.PAddr(l.Cfg.MaxHeapPages*8) {
		t.Error("SSP slots overlap page table")
	}
	if l.JournalBase[0] < l.SSPSlotsBase+memsim.PAddr(l.Cfg.SSPSlots*64) {
		t.Error("journal overlaps SSP slots")
	}
	if l.LogBase[0] < l.JournalBase[len(l.JournalBase)-1]+memsim.PAddr(l.Cfg.JournalBytes) {
		t.Error("log overlaps journal")
	}
	if l.LogBase[1] < l.LogBase[0]+memsim.PAddr(l.Cfg.LogBytes) {
		t.Error("core logs overlap")
	}
	if l.FramePoolBase < l.LogBase[1]+memsim.PAddr(l.Cfg.LogBytes) {
		t.Error("frame pool overlaps logs")
	}
	if l.FramePoolBase%memsim.PageBytes != 0 {
		t.Error("frame pool not page aligned")
	}
	if l.Frames <= 0 {
		t.Error("no frames")
	}
}

func TestFrameIndexRoundTrip(t *testing.T) {
	_, l, _ := testEnv(t)
	for _, idx := range []int{0, 1, l.Frames - 1} {
		pa := l.FrameAddr(idx)
		if l.FrameIndex(pa) != idx {
			t.Errorf("frame %d round trip failed", idx)
		}
	}
}

func TestVPNHelpers(t *testing.T) {
	va := uint64(HeapBase + 5*memsim.PageBytes + 123)
	if VPNOf(va) != 5 {
		t.Errorf("VPNOf = %d", VPNOf(va))
	}
	if VAOf(5) != HeapBase+5*memsim.PageBytes {
		t.Errorf("VAOf = %#x", VAOf(5))
	}
}

func TestFormatAndDetect(t *testing.T) {
	mem, l, _ := testEnv(t)
	if IsFormatted(mem, l) {
		t.Fatal("fresh memory reported formatted")
	}
	Format(mem, l)
	if !IsFormatted(mem, l) {
		t.Fatal("formatted memory not detected")
	}
}

func TestPageTableSetLookupWalk(t *testing.T) {
	mem, l, _ := testEnv(t)
	pt := NewPageTable(mem, l)
	frame := l.FrameAddr(3)
	pt.Set(7, frame, 0)
	pa, ok := pt.Lookup(7)
	if !ok || pa != frame {
		t.Fatalf("lookup: %#x %v", pa, ok)
	}
	pa, done, ok := pt.Walk(7, 100)
	if !ok || pa != frame || done <= 100 {
		t.Fatalf("walk: %#x %d %v", pa, done, ok)
	}
	if _, ok := pt.Lookup(8); ok {
		t.Error("unmapped vpn resolved")
	}
	if _, ok := pt.Lookup(-1); ok {
		t.Error("negative vpn resolved")
	}
}

func TestPageTableRebuildFromDurable(t *testing.T) {
	mem, l, _ := testEnv(t)
	pt := NewPageTable(mem, l)
	f1, f2 := l.FrameAddr(1), l.FrameAddr(2)
	pt.Set(0, f1, 0)
	pt.Set(100, f2, 0)

	// Fresh mirror from the same durable memory.
	pt2 := NewPageTable(mem, l)
	if _, ok := pt2.Lookup(0); ok {
		t.Fatal("fresh mirror should be empty before Rebuild")
	}
	pt2.Rebuild()
	if pa, ok := pt2.Lookup(0); !ok || pa != f1 {
		t.Error("rebuild lost vpn 0")
	}
	if pa, ok := pt2.Lookup(100); !ok || pa != f2 {
		t.Error("rebuild lost vpn 100")
	}
	mapped := pt2.Mapped()
	if len(mapped) != 2 {
		t.Errorf("mapped count = %d", len(mapped))
	}
}

func TestPageTableSetMirrorIsVolatile(t *testing.T) {
	mem, l, _ := testEnv(t)
	pt := NewPageTable(mem, l)
	pt.SetMirror(4, l.FrameAddr(4))
	pt2 := NewPageTable(mem, l)
	pt2.Rebuild()
	if _, ok := pt2.Lookup(4); ok {
		t.Error("SetMirror leaked to durable state")
	}
}

func TestFrameAllocLifecycle(t *testing.T) {
	_, l, _ := testEnv(t)
	fa := NewFrameAlloc(l)
	total := l.Frames
	if fa.FreeCount() != total {
		t.Fatalf("free = %d, want %d", fa.FreeCount(), total)
	}
	a := fa.Alloc()
	b := fa.Alloc()
	if a == b {
		t.Fatal("duplicate frame allocation")
	}
	if fa.InUse() != 2 {
		t.Errorf("in use = %d", fa.InUse())
	}
	fa.Free(a)
	if fa.InUse() != 1 {
		t.Errorf("in use after free = %d", fa.InUse())
	}
	c := fa.Alloc()
	_ = c
	if fa.InUse() != 2 {
		t.Errorf("in use after realloc = %d", fa.InUse())
	}
}

func TestFrameAllocDoubleFreePanics(t *testing.T) {
	_, l, _ := testEnv(t)
	fa := NewFrameAlloc(l)
	a := fa.Alloc()
	fa.Free(a)
	defer func() {
		if recover() == nil {
			t.Error("double free should panic")
		}
	}()
	fa.Free(a)
}

func TestFrameAllocReserveAndReset(t *testing.T) {
	_, l, _ := testEnv(t)
	fa := NewFrameAlloc(l)
	pa := l.FrameAddr(5)
	fa.Reserve(pa)
	// Alloc must never hand out the reserved frame.
	seen := map[memsim.PAddr]bool{}
	for i := 0; i < l.Frames-1; i++ {
		f := fa.Alloc()
		if f == pa {
			t.Fatal("reserved frame allocated")
		}
		if seen[f] {
			t.Fatal("duplicate allocation")
		}
		seen[f] = true
	}
	fa.Reset()
	if fa.InUse() != 0 || fa.FreeCount() != l.Frames {
		t.Error("reset did not clear state")
	}
}

func TestRootAddrBounds(t *testing.T) {
	_, l, _ := testEnv(t)
	a0 := l.RootAddr(0)
	if a0 != l.SuperblockBase+SBRootsOff {
		t.Errorf("root 0 at %#x", a0)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range root should panic")
		}
	}()
	l.RootAddr(RootSlots)
}
