package memsim

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/stats"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.DRAMBytes = 1 << 20
	cfg.NVRAMBytes = 1 << 20
	return cfg
}

func newMem(t *testing.T) (*Memory, *stats.Stats) {
	t.Helper()
	st := &stats.Stats{}
	return New(testConfig(), st), st
}

func line(b byte) []byte {
	d := make([]byte, LineBytes)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestAddressHelpers(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Errorf("LineAddr wrong: %#x", LineAddr(0x1234))
	}
	if PageAddr(0x12345) != 0x12000 {
		t.Errorf("PageAddr wrong: %#x", PageAddr(0x12345))
	}
	if LineIndex(0x12345) != (0x345 >> 6) {
		t.Errorf("LineIndex wrong: %d", LineIndex(0x12345))
	}
	if LinesPerPage != 64 {
		t.Errorf("LinesPerPage = %d", LinesPerPage)
	}
}

func TestIsNVRAM(t *testing.T) {
	m, _ := newMem(t)
	if m.IsNVRAM(0) {
		t.Error("DRAM address classified as NVRAM")
	}
	base := m.Config().NVRAMBase
	if !m.IsNVRAM(base) || !m.IsNVRAM(base+1000) {
		t.Error("NVRAM address not classified")
	}
	if m.IsNVRAM(base + PAddr(m.Config().NVRAMBytes)) {
		t.Error("address past NVRAM classified as NVRAM")
	}
	if !m.Contains(0) || !m.Contains(base) {
		t.Error("Contains wrong")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m, _ := newMem(t)
	base := m.Config().NVRAMBase
	data := line(0xAB)
	m.WriteLine(base+128, data, 0, stats.CatData)
	buf := make([]byte, LineBytes)
	m.ReadLine(base+128, buf, 0)
	if !bytes.Equal(buf, data) {
		t.Error("read did not return written data")
	}
	// DRAM too.
	m.WriteLine(256, line(0x5A), 0, stats.CatData)
	m.ReadLine(256, buf, 0)
	if buf[0] != 0x5A {
		t.Error("DRAM round trip failed")
	}
}

func TestWriteBytesSubLine(t *testing.T) {
	m, st := newMem(t)
	base := m.Config().NVRAMBase
	m.WriteBytes(base+8, []byte{1, 2, 3, 4, 5, 6, 7, 8}, 0, stats.CatControl)
	buf := make([]byte, 8)
	m.Peek(base+8, buf)
	if buf[0] != 1 || buf[7] != 8 {
		t.Error("sub-line write lost")
	}
	if st.NVRAMWriteBytes[stats.CatControl] != 8 {
		t.Errorf("control bytes = %d, want 8", st.NVRAMWriteBytes[stats.CatControl])
	}
	if st.NVRAMWriteLines != 1 {
		t.Errorf("write lines = %d, want 1", st.NVRAMWriteLines)
	}
}

func TestWriteBytesCrossLinePanics(t *testing.T) {
	m, _ := newMem(t)
	defer func() {
		if recover() == nil {
			t.Error("cross-line WriteBytes should panic")
		}
	}()
	m.WriteBytes(m.Config().NVRAMBase+60, make([]byte, 16), 0, stats.CatData)
}

func TestLatencies(t *testing.T) {
	m, _ := newMem(t)
	cfg := m.Config()
	base := cfg.NVRAMBase
	buf := make([]byte, LineBytes)

	// First access: row miss, full latency.
	done := m.ReadLine(base, buf, 0)
	wantRead := engine.NSToCycles(cfg.NVRAMRead, cfg.FreqGHz)
	if done != wantRead {
		t.Errorf("NVRAM read latency %d, want %d", done, wantRead)
	}

	m2, _ := newMem(t)
	done = m2.WriteLine(base, line(1), 0, stats.CatData)
	wantWrite := engine.NSToCycles(cfg.NVRAMWrite, cfg.FreqGHz)
	if done != wantWrite {
		t.Errorf("NVRAM write latency %d, want %d", done, wantWrite)
	}

	m3, _ := newMem(t)
	done = m3.ReadLine(64, buf, 0) // DRAM
	wantDRAM := engine.NSToCycles(cfg.DRAMRead, cfg.FreqGHz)
	if done != wantDRAM {
		t.Errorf("DRAM read latency %d, want %d", done, wantDRAM)
	}
}

func TestRowBufferHitDiscount(t *testing.T) {
	m, st := newMem(t)
	cfg := m.Config()
	base := cfg.NVRAMBase
	buf := make([]byte, LineBytes)
	m.ReadLine(base, buf, 0) // opens the row
	if st.RowMisses != 1 {
		t.Fatalf("row misses = %d", st.RowMisses)
	}
	// Same row, next line: should be a hit with discounted latency.
	start := engine.Cycles(100000)
	done := m.ReadLine(base+64, buf, start)
	if st.RowHits != 1 {
		t.Fatalf("row hits = %d", st.RowHits)
	}
	full := engine.NSToCycles(cfg.NVRAMRead, cfg.FreqGHz)
	want := start + engine.Cycles(float64(full)*cfg.RowHitFrac)
	if done != want {
		t.Errorf("row hit latency: done=%d want=%d", done, want)
	}
}

func TestBankContention(t *testing.T) {
	m, _ := newMem(t)
	cfg := m.Config()
	base := cfg.NVRAMBase
	buf := make([]byte, LineBytes)
	// Two back-to-back accesses to the same bank+row: second queues behind
	// the first.
	d1 := m.ReadLine(base, buf, 0)
	d2 := m.ReadLine(base, buf, 0)
	if d2 <= d1 {
		t.Errorf("second access (%d) should finish after first (%d)", d2, d1)
	}
	// Accesses to different banks at the same time overlap (both start at
	// 0, finishing much earlier than serialised).
	m2, _ := newMem(t)
	rowBytes := PAddr(cfg.NVRAMRow)
	a := m2.ReadLine(base, buf, 0)
	b := m2.ReadLine(base+rowBytes, buf, 0) // next bank
	if b >= a+a {
		t.Errorf("different banks did not overlap: a=%d b=%d", a, b)
	}
}

func TestPowerOffDropsWrites(t *testing.T) {
	m, _ := newMem(t)
	base := m.Config().NVRAMBase
	m.WriteLine(base, line(0x11), 0, stats.CatData)
	m.PowerOff()
	if !m.PoweredOff() {
		t.Fatal("not powered off")
	}
	m.WriteLine(base, line(0x22), 0, stats.CatData)
	buf := make([]byte, LineBytes)
	m.Peek(base, buf)
	if buf[0] != 0x11 {
		t.Errorf("write after power-off landed: %#x", buf[0])
	}
	// DRAM writes are volatile anyway; they still land (nothing depends on
	// them post-crash).
	m.PowerOn()
	if m.PoweredOff() {
		t.Error("PowerOn did not clear state")
	}
}

func TestWriteTrap(t *testing.T) {
	m, _ := newMem(t)
	base := m.Config().NVRAMBase
	fired := false
	m.OnPowerOff(func() { fired = true })
	m.SetWriteTrap(2) // two writes land, the third is lost
	m.WriteLine(base, line(1), 0, stats.CatData)
	m.WriteLine(base+64, line(2), 0, stats.CatData)
	if m.PoweredOff() {
		t.Fatal("trap fired early")
	}
	m.WriteLine(base+128, line(3), 0, stats.CatData)
	if !m.PoweredOff() || !fired {
		t.Fatal("trap did not fire")
	}
	buf := make([]byte, LineBytes)
	m.Peek(base, buf)
	if buf[0] != 1 {
		t.Error("first write lost")
	}
	m.Peek(base+128, buf)
	if buf[0] != 0 {
		t.Error("trapped write landed")
	}
}

func TestWriteTrapZeroLosesNextWrite(t *testing.T) {
	m, _ := newMem(t)
	base := m.Config().NVRAMBase
	m.SetWriteTrap(0)
	m.WriteLine(base, line(9), 0, stats.CatData)
	buf := make([]byte, LineBytes)
	m.Peek(base, buf)
	if buf[0] != 0 {
		t.Error("write with trap 0 landed")
	}
}

func TestTrapDisarm(t *testing.T) {
	m, _ := newMem(t)
	base := m.Config().NVRAMBase
	m.SetWriteTrap(5)
	m.SetWriteTrap(-1)
	for i := 0; i < 10; i++ {
		m.WriteLine(base+PAddr(i*64), line(byte(i)), 0, stats.CatData)
	}
	if m.PoweredOff() {
		t.Error("disarmed trap fired")
	}
}

func TestDRAMWritesIgnoreTrap(t *testing.T) {
	m, _ := newMem(t)
	m.SetWriteTrap(0)
	m.WriteLine(128, line(7), 0, stats.CatData) // DRAM
	if m.PoweredOff() {
		t.Error("DRAM write consumed the NVRAM trap")
	}
}

func TestNVRAMImageAndRestore(t *testing.T) {
	m, _ := newMem(t)
	base := m.Config().NVRAMBase
	m.WriteLine(base+64, line(0x77), 0, stats.CatData)
	img := m.NVRAMImage()

	st2 := &stats.Stats{}
	m2, err := NewFromImage(testConfig(), st2, img)
	if err != nil {
		t.Fatalf("NewFromImage: %v", err)
	}
	buf := make([]byte, LineBytes)
	m2.Peek(base+64, buf)
	if buf[0] != 0x77 {
		t.Error("image did not carry durable data")
	}
}

func TestNewFromImageLengthMismatch(t *testing.T) {
	cfg := testConfig()
	st := &stats.Stats{}
	for _, n := range []int{0, int(cfg.NVRAMBytes) - 1, int(cfg.NVRAMBytes) + PageBytes} {
		if _, err := NewFromImage(cfg, st, make([]byte, n)); err == nil {
			t.Errorf("image of %d bytes accepted for NVRAMBytes=%d", n, cfg.NVRAMBytes)
		}
	}
	if _, err := NewFromImage(cfg, st, make([]byte, cfg.NVRAMBytes)); err != nil {
		t.Errorf("exact-size image rejected: %v", err)
	}
}

func TestCategoryAccounting(t *testing.T) {
	m, st := newMem(t)
	base := m.Config().NVRAMBase
	m.WriteLine(base, line(1), 0, stats.CatData)
	m.WriteLine(base+64, line(1), 0, stats.CatUndoLog)
	m.WriteLine(base+128, line(1), 0, stats.CatMetaJournal)
	m.WriteBytes(base+192, []byte{1, 2, 3, 4, 5, 6, 7, 8}, 0, stats.CatControl)
	if st.WriteBytes(stats.CatData) != 64 ||
		st.WriteBytes(stats.CatUndoLog) != 64 ||
		st.WriteBytes(stats.CatMetaJournal) != 64 ||
		st.WriteBytes(stats.CatControl) != 8 {
		t.Errorf("category accounting wrong: %+v", st.NVRAMWriteBytes)
	}
	if st.TotalWriteBytes() != 64*3+8 {
		t.Errorf("total = %d", st.TotalWriteBytes())
	}
	if st.NVRAMWriteLines != 4 {
		t.Errorf("write lines = %d", st.NVRAMWriteLines)
	}
}

func TestResetTiming(t *testing.T) {
	m, _ := newMem(t)
	base := m.Config().NVRAMBase
	buf := make([]byte, LineBytes)
	m.ReadLine(base, buf, 0)
	m.ResetTiming()
	// After a reset, time can restart at 0 without queueing behind the old
	// timeline.
	done := m.ReadLine(base+PAddr(m.Config().NVRAMRow), buf, 0)
	want := engine.NSToCycles(m.Config().NVRAMRead, m.Config().FreqGHz)
	if done != want {
		t.Errorf("post-reset access queued: %d want %d", done, want)
	}
}

// Property: durable contents always reflect the last non-dropped write.
func TestWriteReadProperty(t *testing.T) {
	f := func(seed uint64) bool {
		st := &stats.Stats{}
		m := New(testConfig(), st)
		base := m.Config().NVRAMBase
		ref := make(map[PAddr]byte)
		rng := engine.NewRNG(seed)
		for i := 0; i < 300; i++ {
			la := base + PAddr(rng.Intn(64))*LineBytes
			b := byte(rng.Intn(256))
			m.WriteLine(la, line(b), 0, stats.CatData)
			ref[la] = b
		}
		buf := make([]byte, LineBytes)
		for la, b := range ref {
			m.Peek(la, buf)
			if buf[0] != b || buf[63] != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
