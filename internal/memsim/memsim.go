// Package memsim models the hybrid DRAM + NVRAM main memory of the paper's
// simulated machine (Table 2): one channel of DRAM and one channel of NVRAM
// on the same memory bus, with per-bank busy timelines, row-buffer locality
// and per-line bus occupancy. It stands in for the DRAMSim2 model the paper
// integrated into MarssX86 (see DESIGN.md §1).
//
// Besides timing, the package owns the *durable* byte image of NVRAM: a
// write becomes durable only when it reaches this package. The cache
// hierarchy above holds dirty data in volatile arrays, so simulating a power
// failure is exact — drop the caches, and only what was written back
// survives. PowerOff and SetWriteTrap make the durable image stop accepting
// writes, which is how the crash-consistency tests cut the write stream at
// arbitrary points.
package memsim

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/stats"
)

// PAddr is a physical byte address in the simulated machine.
type PAddr uint64

// Geometry constants shared by the whole simulator.
const (
	LineBytes    = 64
	LineShift    = 6
	PageBytes    = 4096
	PageShift    = 12
	LinesPerPage = PageBytes / LineBytes
)

// LineAddr returns the line-aligned base of pa.
func LineAddr(pa PAddr) PAddr { return pa &^ (LineBytes - 1) }

// PageAddr returns the page-aligned base of pa.
func PageAddr(pa PAddr) PAddr { return pa &^ (PageBytes - 1) }

// LineIndex returns the index of pa's cache line within its page (0..63).
func LineIndex(pa PAddr) int { return int(pa>>LineShift) & (LinesPerPage - 1) }

// Config describes the memory system. The zero value is not usable; use
// DefaultConfig.
type Config struct {
	FreqGHz float64 // core frequency used to convert ns to cycles

	DRAMBytes uint64
	DRAMBanks int
	DRAMRow   int // row-buffer bytes per bank
	DRAMRead  float64
	DRAMWrite float64 // ns

	NVRAMBase  PAddr // start of the NVRAM physical range
	NVRAMBytes uint64
	NVRAMBanks int
	NVRAMRow   int
	NVRAMRead  float64 // ns
	NVRAMWrite float64 // ns

	RowHitFrac float64 // latency multiplier applied on a row-buffer hit
	BusNS      float64 // bus occupancy per 64-byte transfer
}

// DefaultConfig returns the paper's Table 2 memory parameters, with
// capacities scaled to simulation-friendly sizes (the paper's 8 GiB DIMMs
// are configurable but unnecessary for the workloads).
func DefaultConfig() Config {
	return Config{
		FreqGHz:    3.7,
		DRAMBytes:  32 << 20,
		DRAMBanks:  64,
		DRAMRow:    1024,
		DRAMRead:   50,
		DRAMWrite:  50,
		NVRAMBase:  1 << 32,
		NVRAMBytes: 128 << 20,
		NVRAMBanks: 32,
		NVRAMRow:   2048,
		NVRAMRead:  50,
		NVRAMWrite: 200,
		RowHitFrac: 0.6,
		BusNS:      4,
	}
}

type bank struct {
	busyUntil engine.Cycles
	openRow   uint64
	hasOpen   bool
}

// dataStripes is the number of address-striped locks protecting the byte
// images. Striping is page-granular: concurrent cores touching different
// pages never contend on a data lock.
const dataStripes = 64

// Memory is the simulated hybrid memory system.
//
// Concurrency: the byte images are protected by address-striped locks
// (dataMu); the bank/bus timelines, traffic counters and power state are
// protected by timingMu. Both are leaf locks — Memory never calls out to
// another simulator structure while holding them (the power-off callback
// fires after the locks are released).
type Memory struct {
	cfg Config
	st  *stats.Stats

	dram  []byte
	nvram []byte

	dataMu [dataStripes]sync.Mutex

	timingMu  sync.Mutex
	dramBanks []bank
	nvBanks   []bank
	busBusy   engine.Cycles

	busCycles engine.Cycles

	powerOff   bool
	trapAfter  int64 // remaining NVRAM writes before power-off; <0 disabled
	onPowerOff func()
}

// New allocates a memory system per cfg, with zeroed contents.
func New(cfg Config, st *stats.Stats) *Memory {
	if cfg.FreqGHz <= 0 {
		panic("memsim: FreqGHz must be positive")
	}
	m := &Memory{
		cfg:       cfg,
		st:        st,
		dram:      make([]byte, cfg.DRAMBytes),
		nvram:     make([]byte, cfg.NVRAMBytes),
		dramBanks: make([]bank, cfg.DRAMBanks),
		nvBanks:   make([]bank, cfg.NVRAMBanks),
		busCycles: engine.NSToCycles(cfg.BusNS, cfg.FreqGHz),
		trapAfter: -1,
	}
	return m
}

// NewFromImage is like New but installs img as the initial NVRAM contents —
// this is how a post-crash machine boots from a previous machine's durable
// state. The image is copied.
func NewFromImage(cfg Config, st *stats.Stats, img []byte) *Memory {
	m := New(cfg, st)
	if uint64(len(img)) != cfg.NVRAMBytes {
		panic(fmt.Sprintf("memsim: image size %d != NVRAMBytes %d", len(img), cfg.NVRAMBytes))
	}
	copy(m.nvram, img)
	return m
}

// Config returns the configuration the memory was built with.
func (m *Memory) Config() Config { return m.cfg }

// IsNVRAM reports whether pa falls in the NVRAM physical range.
func (m *Memory) IsNVRAM(pa PAddr) bool {
	return pa >= m.cfg.NVRAMBase && pa < m.cfg.NVRAMBase+PAddr(m.cfg.NVRAMBytes)
}

// Contains reports whether pa is backed by this memory at all.
func (m *Memory) Contains(pa PAddr) bool {
	return pa < PAddr(m.cfg.DRAMBytes) || m.IsNVRAM(pa)
}

func (m *Memory) backing(pa PAddr, n int) []byte {
	if m.IsNVRAM(pa) {
		off := pa - m.cfg.NVRAMBase
		return m.nvram[off : off+PAddr(n)]
	}
	if pa+PAddr(n) > PAddr(m.cfg.DRAMBytes) {
		panic(fmt.Sprintf("memsim: address %#x+%d outside DRAM and NVRAM", pa, n))
	}
	return m.dram[pa : pa+PAddr(n)]
}

func (m *Memory) stripe(pa PAddr) *sync.Mutex {
	return &m.dataMu[(uint64(pa)>>PageShift)%dataStripes]
}

// copyIn copies data into the byte image under the address-striped locks,
// chunking at page boundaries so every chunk is covered by one stripe.
func (m *Memory) copyIn(pa PAddr, data []byte) {
	for len(data) > 0 {
		n := PageBytes - int(pa&(PageBytes-1))
		if n > len(data) {
			n = len(data)
		}
		mu := m.stripe(pa)
		mu.Lock()
		copy(m.backing(pa, n), data[:n])
		mu.Unlock()
		pa += PAddr(n)
		data = data[n:]
	}
}

// copyOut copies bytes out of the image under the striped locks.
func (m *Memory) copyOut(pa PAddr, buf []byte) {
	for len(buf) > 0 {
		n := PageBytes - int(pa&(PageBytes-1))
		if n > len(buf) {
			n = len(buf)
		}
		mu := m.stripe(pa)
		mu.Lock()
		copy(buf[:n], m.backing(pa, n))
		mu.Unlock()
		pa += PAddr(n)
		buf = buf[n:]
	}
}

// access charges timing for one memory transaction at address pa and
// returns its completion time. Called with timingMu held.
func (m *Memory) access(pa PAddr, write bool, at engine.Cycles) engine.Cycles {
	var banks []bank
	var rowBytes int
	var lat float64
	if m.IsNVRAM(pa) {
		banks = m.nvBanks
		rowBytes = m.cfg.NVRAMRow
		if write {
			lat = m.cfg.NVRAMWrite
		} else {
			lat = m.cfg.NVRAMRead
		}
		if write {
			m.st.NVRAMWriteLines++ // line count maintained here; bytes by caller category
		} else {
			m.st.NVRAMReadLines++
		}
	} else {
		banks = m.dramBanks
		rowBytes = m.cfg.DRAMRow
		if write {
			lat = m.cfg.DRAMWrite
		} else {
			lat = m.cfg.DRAMRead
		}
		if write {
			m.st.DRAMWriteLines++
		} else {
			m.st.DRAMReadLines++
		}
	}

	// Address mapping: columns within a row stay in one bank, rows
	// interleave across banks — sequential streams (logs, consolidation
	// copies) enjoy row-buffer hits, like DRAMSim2's default mapping.
	rowGlobal := uint64(pa) / uint64(rowBytes)
	b := &banks[rowGlobal%uint64(len(banks))]
	row := rowGlobal / uint64(len(banks))

	latency := engine.NSToCycles(lat, m.cfg.FreqGHz)
	if b.hasOpen && b.openRow == row {
		m.st.RowHits++
		latency = engine.Cycles(float64(latency) * m.cfg.RowHitFrac)
	} else {
		m.st.RowMisses++
		b.openRow = row
		b.hasOpen = true
	}

	start := engine.MaxCycles(at, engine.MaxCycles(b.busyUntil, m.busBusy))
	done := start + latency
	b.busyUntil = done
	m.busBusy = start + m.busCycles
	return done
}

// ReadLine copies the durable 64-byte line at pa into buf and returns the
// completion time of the read.
func (m *Memory) ReadLine(pa PAddr, buf []byte, at engine.Cycles) engine.Cycles {
	pa = LineAddr(pa)
	m.copyOut(pa, buf[:LineBytes])
	m.timingMu.Lock()
	done := m.access(pa, false, at)
	m.timingMu.Unlock()
	return done
}

// WriteLine makes the 64-byte line at pa durable with the given contents
// (unless power is off) and returns the completion time. cat classifies the
// write for the Figure 6/7 accounting; classification only applies to NVRAM.
func (m *Memory) WriteLine(pa PAddr, data []byte, at engine.Cycles, cat stats.WriteCat) engine.Cycles {
	return m.WriteBytes(LineAddr(pa), data[:LineBytes], at, cat)
}

// WriteBytes is WriteLine for arbitrary small spans (used for 8-byte atomic
// pointer updates, partial log records, and page-table entries). The span
// must not cross a line boundary. A sub-line write still occupies the bank
// like a full write; only the byte accounting differs.
func (m *Memory) WriteBytes(pa PAddr, data []byte, at engine.Cycles, cat stats.WriteCat) engine.Cycles {
	if len(data) == 0 || len(data) > LineBytes {
		panic(fmt.Sprintf("memsim: WriteBytes of %d bytes", len(data)))
	}
	if LineAddr(pa) != LineAddr(pa+PAddr(len(data))-1) {
		panic(fmt.Sprintf("memsim: WriteBytes spans a line boundary at %#x+%d", pa, len(data)))
	}
	nv := m.IsNVRAM(pa)
	m.timingMu.Lock()
	fired := false
	if nv && m.trapAfter >= 0 {
		if m.trapAfter == 0 {
			fired = m.setPowerOffLocked()
		} else {
			m.trapAfter--
		}
	}
	lost := m.powerOff && nv
	done := m.access(pa, true, at)
	if nv {
		m.st.NVRAMWriteBytes[cat] += uint64(len(data))
	}
	cb := m.onPowerOff
	m.timingMu.Unlock()
	if fired && cb != nil {
		cb()
	}
	if !lost {
		m.copyIn(pa, data)
	}
	return done
}

// Peek copies durable bytes without timing or power-failure effects. Used
// for recovery-time parsing and test verification.
func (m *Memory) Peek(pa PAddr, buf []byte) {
	m.copyOut(pa, buf)
}

// Poke sets durable bytes without timing; used only for initialisation
// (formatting persistent regions) and tests. It ignores PowerOff.
func (m *Memory) Poke(pa PAddr, data []byte) {
	m.copyIn(pa, data)
}

// PowerOff makes all subsequent NVRAM writes vanish, simulating the instant
// of power failure. Timing continues to be charged (the machine does not
// know power failed); the caller is expected to stop the run and recover.
func (m *Memory) PowerOff() {
	m.timingMu.Lock()
	fired := m.setPowerOffLocked()
	cb := m.onPowerOff
	m.timingMu.Unlock()
	if fired && cb != nil {
		cb()
	}
}

// setPowerOffLocked flips the power state; it reports whether this call was
// the one that cut power (the callback fires once, outside the lock).
func (m *Memory) setPowerOffLocked() bool {
	if m.powerOff {
		return false
	}
	m.powerOff = true
	m.trapAfter = -1
	return true
}

// PoweredOff reports whether a power failure has been injected.
func (m *Memory) PoweredOff() bool {
	m.timingMu.Lock()
	defer m.timingMu.Unlock()
	return m.powerOff
}

// SetWriteTrap arms a power failure after n more durable NVRAM writes: the
// next n writes land, everything after is lost. n=0 loses the very next
// write. Pass a negative n to disarm.
func (m *Memory) SetWriteTrap(n int64) {
	m.timingMu.Lock()
	defer m.timingMu.Unlock()
	if n < 0 {
		m.trapAfter = -1
		return
	}
	m.trapAfter = n
}

// OnPowerOff registers a callback invoked once when power fails (armed trap
// or explicit PowerOff). Tests use it to stop workload loops. The callback
// runs outside the memory's locks and may inspect the memory freely.
func (m *Memory) OnPowerOff(fn func()) {
	m.timingMu.Lock()
	m.onPowerOff = fn
	m.timingMu.Unlock()
}

// PowerOn clears the power-off state after recovery has rebuilt volatile
// structures; durable contents are preserved.
func (m *Memory) PowerOn() {
	m.timingMu.Lock()
	m.powerOff = false
	m.timingMu.Unlock()
}

// NVRAMImage returns a copy of the durable NVRAM contents.
func (m *Memory) NVRAMImage() []byte {
	img := make([]byte, len(m.nvram))
	m.copyOut(m.cfg.NVRAMBase, img)
	return img
}

// ResetTiming clears bank/bus timelines and open-row state (a reboot);
// durable contents and statistics are untouched.
func (m *Memory) ResetTiming() {
	m.timingMu.Lock()
	defer m.timingMu.Unlock()
	for i := range m.dramBanks {
		m.dramBanks[i] = bank{}
	}
	for i := range m.nvBanks {
		m.nvBanks[i] = bank{}
	}
	m.busBusy = 0
}
