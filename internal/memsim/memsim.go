// Package memsim models the hybrid DRAM + NVRAM main memory of the paper's
// simulated machine (Table 2): DRAM and NVRAM DIMMs spread over one or more
// independent memory channels, with per-bank busy timelines, row-buffer
// locality and per-line data-bus occupancy per channel. It stands in for the
// DRAMSim2 model the paper integrated into MarssX86 (see DESIGN.md §1).
//
// # Channels
//
// Config.Channels splits the memory system into independent channels, each
// with its own banks, its own data-bus occupancy timeline and its own timing
// lock. Addresses map to channels by the Config.Interleave policy —
// cacheline-granular (consecutive 64-byte lines rotate channels, spreading
// even single-page traffic) or page-granular (a 4 KiB page lives entirely on
// one channel, preserving page-level locality). The address→(channel,
// channel-local address) mapping is a bijection, and within a channel the
// local address stream preserves row-buffer locality: a sequential walk of
// physical memory is a sequential walk of every channel.
//
// Concurrent cores therefore only contend — in host locks and in simulated
// bus time — when they genuinely hit the same channel. Channel and bank
// selectors are swizzled with higher address bits (permutation-based
// interleaving) so power-of-2-strided regions such as the per-core logs do
// not alias onto a single bank and serialise every core. One channel keeps
// the single shared bus of the paper's model.
//
// Besides timing, the package owns the *durable* byte image of NVRAM: a
// write becomes durable only when it reaches this package. The cache
// hierarchy above holds dirty data in volatile arrays, so simulating a power
// failure is exact — drop the caches, and only what was written back
// survives. PowerOff and SetWriteTrap make the durable image stop accepting
// writes, which is how the crash-consistency tests cut the write stream at
// arbitrary points.
//
// # Determinism contract under the window scheduler
//
// The bank wheels, bus ledgers and row-buffer state in this package update
// in ARRIVAL order: with free-running concurrent cores
// (machine.Config.TimeWindow == 0) that order is the host schedule, so
// cross-core timing is approximate and run-to-run variable. The bounded-lag
// window scheduler (internal/machine/winsched.go) serialises core execution
// in simulated-time order, which makes every arbitration here — bank
// queueing, bus occupancy, row hits vs misses — a pure function of
// simulated state with no changes to this package's timing code. Nothing in
// this package may therefore consult host time or host identity (goroutine,
// map iteration order) in a way that feeds back into timing or the durable
// image; the per-channel locks exist for the free-running mode only.
package memsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/stats"
)

// PAddr is a physical byte address in the simulated machine.
type PAddr uint64

// Geometry constants shared by the whole simulator.
const (
	LineBytes    = 64
	LineShift    = 6
	PageBytes    = 4096
	PageShift    = 12
	LinesPerPage = PageBytes / LineBytes
)

// MaxChannels is the largest supported Config.Channels (bounded by the
// per-channel counter arrays in stats.Stats).
const MaxChannels = stats.MaxChannels

// LineAddr returns the line-aligned base of pa.
func LineAddr(pa PAddr) PAddr { return pa &^ (LineBytes - 1) }

// PageAddr returns the page-aligned base of pa.
func PageAddr(pa PAddr) PAddr { return pa &^ (PageBytes - 1) }

// LineIndex returns the index of pa's cache line within its page (0..63).
func LineIndex(pa PAddr) int { return int(pa>>LineShift) & (LinesPerPage - 1) }

// Interleave selects the address→channel mapping policy.
type Interleave int

// Interleaving policies.
const (
	// InterleaveLine rotates channels every cache line: line i goes to
	// channel i mod Channels. Maximum bandwidth spreading — even a single
	// hot page uses every channel.
	InterleaveLine Interleave = iota
	// InterleavePage rotates channels every 4 KiB page: a page's 64 lines
	// all live on one channel. Preserves page-granular locality (SSP's
	// consolidation copies stay on one channel) at the cost of per-page
	// bandwidth.
	InterleavePage
)

// String returns the policy name used in reports.
func (iv Interleave) String() string {
	switch iv {
	case InterleaveLine:
		return "line"
	case InterleavePage:
		return "page"
	default:
		return fmt.Sprintf("Interleave(%d)", int(iv))
	}
}

// Config describes the memory system. The zero value is not usable; use
// DefaultConfig.
type Config struct {
	FreqGHz float64 // core frequency used to convert ns to cycles

	DRAMBytes uint64
	DRAMBanks int
	DRAMRow   int // row-buffer bytes per bank
	DRAMRead  float64
	DRAMWrite float64 // ns

	NVRAMBase  PAddr // start of the NVRAM physical range
	NVRAMBytes uint64
	NVRAMBanks int
	NVRAMRow   int
	NVRAMRead  float64 // ns
	NVRAMWrite float64 // ns

	RowHitFrac float64 // latency multiplier applied on a row-buffer hit
	BusNS      float64 // per-channel bus occupancy per 64-byte transfer

	// Channels is the number of independent memory channels (default 1,
	// max MaxChannels). The configured bank counts are divided across the
	// channels.
	Channels int
	// Interleave is the address→channel mapping policy (default
	// InterleaveLine); ignored with one channel.
	Interleave Interleave
}

// DefaultConfig returns the paper's Table 2 memory parameters, with
// capacities scaled to simulation-friendly sizes (the paper's 8 GiB DIMMs
// are configurable but unnecessary for the workloads). The default is a
// single channel — the paper's single-bus model; multi-channel runs opt in
// via Channels.
func DefaultConfig() Config {
	return Config{
		FreqGHz:    3.7,
		DRAMBytes:  32 << 20,
		DRAMBanks:  64,
		DRAMRow:    1024,
		DRAMRead:   50,
		DRAMWrite:  50,
		NVRAMBase:  1 << 32,
		NVRAMBytes: 128 << 20,
		NVRAMBanks: 32,
		NVRAMRow:   2048,
		NVRAMRead:  50,
		NVRAMWrite: 200,
		RowHitFrac: 0.6,
		BusNS:      4,
		Channels:   1,
		Interleave: InterleaveLine,
	}
}

// Occupancy-wheel geometry: each shared resource (a bank, a channel's data
// bus) accounts its busy time in a ring of fixed-span simulated-time
// buckets. Within a bucket, bookings pack first-come-first-served — exactly
// the busy-until scalar — so serial execution, whose issue times are
// non-decreasing, sees precise FIFO queueing. Across buckets the wheel
// covers wheelBuckets*wheelSpan cycles of history; a booking for a bucket
// whose accounting has since been recycled (a core fallen further behind
// than the wheel covers) is admitted without queueing.
//
// That last property is the point. Concurrent cores issue accesses in host
// order, which need not be simulated-time order. A single busy-until scalar
// ratchets to the farthest-ahead core and retroactively drags every other
// core's clock to it — every shared resource becomes a lockstep
// synchroniser and the parallel machine serialises (the pre-channel model
// capped 4-core speedup near 1x regardless of bank count). The wheel books
// each access where the resource is genuinely free at that simulated time:
// cores only wait on real overlap, and stale history errs toward optimism
// instead of dragging clocks forward.
const (
	wheelSpan    = 4096 // cycles per bucket
	wheelBuckets = 512  // history span: ~2M cycles (~0.57 ms at 3.7 GHz)
)

// wbucket is one wheel bucket: the busy cycles booked in the simulated-time
// window [epoch*wheelSpan, (epoch+1)*wheelSpan), packed from the window
// start (bookings may overhang the end; the overhang carries into the next
// lookup).
type wbucket struct {
	epoch int64
	used  engine.Cycles
}

// wheel is the occupancy ledger of one shared resource.
type wheel struct {
	b [wheelBuckets]wbucket
}

// reserveFIFO books dur busy cycles at the earliest position at or after
// `at` where the resource is free, and returns the booked start time. Each
// bucket is a first-come-first-served frontier, so accesses racing for the
// same bank within a bucket's window queue exactly as on the busy-until
// scalar; the approximation is that a bucket's idle gaps behind its
// frontier are not reusable. Used for banks, whose traffic is chains of
// dependent accesses.
func (w *wheel) reserveFIFO(at, dur engine.Cycles) engine.Cycles {
	if at < 0 {
		at = 0
	}
	idx := int64(at) / wheelSpan
	start := at
	// A previous bucket's bookings may overhang into this one.
	if p := idx - 1; p >= 0 {
		if s := &w.b[p%wheelBuckets]; s.epoch == p {
			if e := engine.Cycles(p)*wheelSpan + s.used; e > start {
				start = e
			}
		}
	}
	for {
		s := &w.b[idx%wheelBuckets]
		if s.epoch < idx {
			s.epoch, s.used = idx, 0 // recycle a stale bucket
		}
		if s.epoch > idx {
			// The wheel has moved past this window: its accounting is gone.
			// Admit the straggler without queueing rather than dragging it
			// to the frontier (see the type comment).
			return start
		}
		base := engine.Cycles(idx) * wheelSpan
		if e := base + s.used; e > start {
			start = e
		}
		if start < base+wheelSpan {
			w.bookFrontier(start, dur)
			return start
		}
		idx++ // booked through this window's end; carry into the next
	}
}

// bookFrontier records [start, start+dur) as the new packed frontier of
// every bucket the window covers. Bookings longer than one span (very slow
// NVRAM configs, e.g. the Figure 8 latency sweep at high multiples) must
// stamp every covered bucket, or reserveFIFO's one-bucket lookback would
// admit overlapping accesses issued a few windows later.
func (w *wheel) bookFrontier(start, dur engine.Cycles) {
	end := start + dur
	for idx := int64(start) / wheelSpan; engine.Cycles(idx)*wheelSpan < end; idx++ {
		s := &w.b[idx%wheelBuckets]
		if s.epoch < idx {
			s.epoch, s.used = idx, 0
		}
		if s.epoch > idx {
			return // the wheel already moved past this window
		}
		if rel := end - engine.Cycles(idx)*wheelSpan; rel > s.used {
			s.used = rel
		}
	}
}

// reserveCapacity books dur busy cycles in the earliest bucket at or after
// `at` with spare capacity and returns the slot time. Unlike reserveFIFO,
// a bucket only delays transfers once its whole span is booked — position
// within the window is not modelled. Used for the channel data bus: every
// access crosses it, so frontier semantics would re-couple the cores the
// wheel exists to decouple; what matters is the bandwidth cap, reached at
// span/dur transfers per window.
func (w *wheel) reserveCapacity(at, dur engine.Cycles) engine.Cycles {
	if at < 0 {
		at = 0
	}
	idx := int64(at) / wheelSpan
	start := engine.Cycles(-1)
	for dur > 0 {
		s := &w.b[idx%wheelBuckets]
		if s.epoch < idx {
			s.epoch, s.used = idx, 0
		}
		if s.epoch > idx {
			// Recycled accounting: admit the straggler (see above).
			if start < 0 {
				return at
			}
			return start
		}
		if avail := wheelSpan - s.used; avail > 0 {
			// Bookings larger than one bucket's remaining capacity split
			// across consecutive buckets (a transfer slower than wheelSpan,
			// or a nearly-full window).
			if start < 0 {
				start = engine.Cycles(idx) * wheelSpan
				if at > start {
					start = at
				}
			}
			take := avail
			if dur < take {
				take = dur
			}
			s.used += take
			dur -= take
		}
		if dur > 0 {
			idx++
		}
	}
	return start
}

type bank struct {
	tl      wheel
	openRow uint64
	hasOpen bool
}

// channel is one independent memory channel: its own banks, its own bus
// occupancy ledger, its own lock and its own counter shard.
type channel struct {
	mu        sync.Mutex
	dramBanks []bank
	nvBanks   []bank
	bus       wheel
	st        *stats.Stats
}

// dataStripes is the number of address-striped locks protecting the byte
// images. Striping is page-granular: concurrent cores touching different
// pages never contend on a data lock.
const dataStripes = 64

// Memory is the simulated hybrid memory system.
//
// Concurrency: the byte images are protected by address-striped locks
// (dataMu); each channel's bank/bus timelines and traffic counters are
// protected by that channel's own lock; the power state and write trap are
// protected by powerMu. All of them are leaf locks — Memory never calls out
// to another simulator structure while holding one (the power-off callback
// fires after the locks are released).
//
// Counter routing: every timing counter is written to the owning channel's
// stats shard under that channel's lock. By default all channels share the
// Stats passed to New (fine for single-goroutine use); concurrent callers
// attach one shard per channel via AttachChannelStats so channels never
// write a counter concurrently.
type Memory struct {
	cfg       Config
	nChannels int

	dram  []byte
	nvram []byte

	dataMu [dataStripes]sync.Mutex

	chans     []channel
	busCycles engine.Cycles

	// wear counts durable line writes per NVRAM page — the media-endurance
	// profile software wear-leveling consumes. Updated atomically: with
	// line-granular interleaving one page's lines hit different channels, so
	// a page's counter can be bumped under different channel locks at once.
	wear []uint64

	powerMu    sync.Mutex
	powerOff   bool
	trapAfter  int64 // remaining NVRAM writes before power-off; <0 disabled
	onPowerOff func()
}

// New allocates a memory system per cfg, with zeroed contents. All channels
// initially write their counters to st; concurrent multi-channel use must
// AttachChannelStats first.
func New(cfg Config, st *stats.Stats) *Memory {
	if cfg.FreqGHz <= 0 {
		panic("memsim: FreqGHz must be positive")
	}
	nCh := cfg.Channels
	if nCh <= 0 {
		nCh = 1
	}
	if nCh > MaxChannels {
		panic(fmt.Sprintf("memsim: Channels %d exceeds MaxChannels %d", nCh, MaxChannels))
	}
	dramPer := cfg.DRAMBanks / nCh
	if dramPer < 1 {
		dramPer = 1
	}
	nvPer := cfg.NVRAMBanks / nCh
	if nvPer < 1 {
		nvPer = 1
	}
	m := &Memory{
		cfg:       cfg,
		nChannels: nCh,
		dram:      make([]byte, cfg.DRAMBytes),
		nvram:     make([]byte, cfg.NVRAMBytes),
		chans:     make([]channel, nCh),
		busCycles: engine.NSToCycles(cfg.BusNS, cfg.FreqGHz),
		wear:      make([]uint64, (cfg.NVRAMBytes+PageBytes-1)/PageBytes),
		trapAfter: -1,
	}
	for i := range m.chans {
		m.chans[i].dramBanks = make([]bank, dramPer)
		m.chans[i].nvBanks = make([]bank, nvPer)
		m.chans[i].st = st
	}
	return m
}

// NewFromImage is like New but installs img as the initial NVRAM contents —
// this is how a post-crash machine boots from a previous machine's durable
// state. The image is copied. The image length must match cfg.NVRAMBytes
// exactly; a mismatched image (from a machine with a different memory
// Config) is rejected with a descriptive error rather than corrupting the
// address space.
func NewFromImage(cfg Config, st *stats.Stats, img []byte) (*Memory, error) {
	if uint64(len(img)) != cfg.NVRAMBytes {
		return nil, fmt.Errorf("memsim: NVRAM image is %d bytes but Config.NVRAMBytes is %d; the image must come from a machine with the same memory capacities", len(img), cfg.NVRAMBytes)
	}
	m := New(cfg, st)
	copy(m.nvram, img)
	return m, nil
}

// AttachChannelStats routes each channel's counters to its own shard
// (sh[i] for channel i). Required before concurrent use with more than one
// channel; must be called while the memory is quiescent.
func (m *Memory) AttachChannelStats(sh []*stats.Stats) {
	if len(sh) != m.nChannels {
		panic(fmt.Sprintf("memsim: AttachChannelStats got %d shards for %d channels", len(sh), m.nChannels))
	}
	for i := range m.chans {
		m.chans[i].st = sh[i]
	}
}

// Config returns the configuration the memory was built with.
func (m *Memory) Config() Config { return m.cfg }

// Channels returns the effective channel count.
func (m *Memory) Channels() int { return m.nChannels }

// IsNVRAM reports whether pa falls in the NVRAM physical range.
func (m *Memory) IsNVRAM(pa PAddr) bool {
	return pa >= m.cfg.NVRAMBase && pa < m.cfg.NVRAMBase+PAddr(m.cfg.NVRAMBytes)
}

// Contains reports whether pa is backed by this memory at all.
func (m *Memory) Contains(pa PAddr) bool {
	return pa < PAddr(m.cfg.DRAMBytes) || m.IsNVRAM(pa)
}

// swizzle returns a deterministic permutation offset for interleave group q
// (a multiplicative hash). Real memory controllers permute the channel/bank
// selector with higher address bits so that fixed power-of-2 strides — per-
// core log regions, page-aligned arenas — do not alias onto one channel or
// bank (permutation-based interleaving, cf. Zhang et al., MICRO-33). Pure
// modulo selection would map every core's 64 KiB-strided log tail to the
// same bank and serialise all cores on its timeline.
func swizzle(q uint64) uint64 {
	return (q * 0x9E3779B97F4A7C15) >> 33
}

// route maps a physical address to (channel index, channel-local address)
// under the configured interleaving policy. The mapping is a bijection: the
// channel-local stream of each channel is dense, so row-buffer locality is
// preserved per channel, and within one interleave group the n units map to
// n distinct channels (the swizzle only rotates each group).
func (m *Memory) route(pa PAddr) (int, PAddr) {
	n := uint64(m.nChannels)
	if n == 1 {
		return 0, pa
	}
	switch m.cfg.Interleave {
	case InterleavePage:
		pfn := uint64(pa >> PageShift)
		ch := (pfn%n + swizzle(pfn/n)) % n
		return int(ch), PAddr(pfn/n)<<PageShift | (pa & (PageBytes - 1))
	default: // InterleaveLine
		la := uint64(pa >> LineShift)
		ch := (la%n + swizzle(la/n)) % n
		return int(ch), PAddr(la/n)<<LineShift | (pa & (LineBytes - 1))
	}
}

// ChannelOf returns the channel index serving pa.
func (m *Memory) ChannelOf(pa PAddr) int {
	ch, _ := m.route(pa)
	return ch
}

func (m *Memory) backing(pa PAddr, n int) []byte {
	if m.IsNVRAM(pa) {
		off := pa - m.cfg.NVRAMBase
		return m.nvram[off : off+PAddr(n)]
	}
	if pa+PAddr(n) > PAddr(m.cfg.DRAMBytes) {
		panic(fmt.Sprintf("memsim: address %#x+%d outside DRAM and NVRAM", pa, n))
	}
	return m.dram[pa : pa+PAddr(n)]
}

func (m *Memory) stripe(pa PAddr) *sync.Mutex {
	return &m.dataMu[(uint64(pa)>>PageShift)%dataStripes]
}

// copyIn copies data into the byte image under the address-striped locks,
// chunking at page boundaries so every chunk is covered by one stripe.
func (m *Memory) copyIn(pa PAddr, data []byte) {
	for len(data) > 0 {
		n := PageBytes - int(pa&(PageBytes-1))
		if n > len(data) {
			n = len(data)
		}
		mu := m.stripe(pa)
		mu.Lock()
		copy(m.backing(pa, n), data[:n])
		mu.Unlock()
		pa += PAddr(n)
		data = data[n:]
	}
}

// copyOut copies bytes out of the image under the striped locks.
func (m *Memory) copyOut(pa PAddr, buf []byte) {
	for len(buf) > 0 {
		n := PageBytes - int(pa&(PageBytes-1))
		if n > len(buf) {
			n = len(buf)
		}
		mu := m.stripe(pa)
		mu.Lock()
		copy(buf[:n], m.backing(pa, n))
		mu.Unlock()
		pa += PAddr(n)
		buf = buf[n:]
	}
}

// access charges timing for one memory transaction at address pa and
// returns its completion time. It routes the address to its channel, takes
// that channel's lock, and updates the channel's bank/bus timelines and
// counter shard. nbytes is the byte count recorded for write accounting.
func (m *Memory) access(pa PAddr, write bool, at engine.Cycles, cat stats.WriteCat, nbytes int) engine.Cycles {
	chIdx, ca := m.route(pa)
	c := &m.chans[chIdx]
	nv := m.IsNVRAM(pa)

	c.mu.Lock()
	defer c.mu.Unlock()

	var banks []bank
	var rowBytes int
	var lat float64
	if nv {
		banks = c.nvBanks
		rowBytes = m.cfg.NVRAMRow
		if write {
			lat = m.cfg.NVRAMWrite
			c.st.NVRAMWriteLines++ // line count maintained here; bytes by caller category
			c.st.NVRAMWriteBytes[cat] += uint64(nbytes)
			atomic.AddUint64(&m.wear[(pa-m.cfg.NVRAMBase)>>PageShift], 1)
		} else {
			lat = m.cfg.NVRAMRead
			c.st.NVRAMReadLines++
		}
	} else {
		banks = c.dramBanks
		rowBytes = m.cfg.DRAMRow
		if write {
			lat = m.cfg.DRAMWrite
			c.st.DRAMWriteLines++
		} else {
			lat = m.cfg.DRAMRead
			c.st.DRAMReadLines++
		}
	}

	// Address mapping (within the channel-local stream): columns within a
	// row stay in one bank, rows interleave across the channel's banks with
	// a swizzled (permutation-based) selector — sequential streams (logs,
	// consolidation copies) enjoy row-buffer hits like DRAMSim2's default
	// mapping, while power-of-2-strided regions (per-core logs) spread
	// across banks instead of aliasing onto one.
	rowGlobal := uint64(ca) / uint64(rowBytes)
	nb := uint64(len(banks))
	row := rowGlobal / nb
	b := &banks[(rowGlobal%nb+swizzle(row))%nb]

	latency := engine.NSToCycles(lat, m.cfg.FreqGHz)
	if b.hasOpen && b.openRow == row {
		c.st.RowHits++
		latency = engine.Cycles(float64(latency) * m.cfg.RowHitFrac)
	} else {
		c.st.RowMisses++
		b.openRow = row
		b.hasOpen = true
	}

	if nv && write {
		// Bank-occupancy accounting by purpose: how long the NVRAM banks
		// spent absorbing each write category (journal appends, data
		// flushes, checkpoints, ...). The serial-append cost of a shared
		// metadata journal shows up here as CatMetaJournal busy cycles.
		c.st.NVRAMBankBusy[cat] += uint64(latency)
	}

	// Reservation: the access occupies its bank for the full latency, and
	// the 64-byte transfer needs one bus slot on the channel. The transfer
	// pipelines with the array access (as on a real DDR channel), so a slot
	// anywhere from the access start suffices; only when the bus is
	// saturated does the slot land past the window and stretch the
	// completion — the channel's bandwidth limit.
	start := b.tl.reserveFIFO(at, latency)
	done := start + latency
	if m.busCycles > 0 {
		slot := c.bus.reserveCapacity(start, m.busCycles)
		if slot+m.busCycles > done {
			done = slot + m.busCycles
		}
	}
	c.st.ChannelLines[chIdx]++
	c.st.ChannelBusyCycles[chIdx] += uint64(m.busCycles)
	return done
}

// ReadLine copies the durable 64-byte line at pa into buf and returns the
// completion time of the read.
func (m *Memory) ReadLine(pa PAddr, buf []byte, at engine.Cycles) engine.Cycles {
	pa = LineAddr(pa)
	m.copyOut(pa, buf[:LineBytes])
	return m.access(pa, false, at, stats.CatData, 0)
}

// WriteLine makes the 64-byte line at pa durable with the given contents
// (unless power is off) and returns the completion time. cat classifies the
// write for the Figure 6/7 accounting; classification only applies to NVRAM.
func (m *Memory) WriteLine(pa PAddr, data []byte, at engine.Cycles, cat stats.WriteCat) engine.Cycles {
	return m.WriteBytes(LineAddr(pa), data[:LineBytes], at, cat)
}

// WriteBytes is WriteLine for arbitrary small spans (used for 8-byte atomic
// pointer updates, partial log records, and page-table entries). The span
// must not cross a line boundary. A sub-line write still occupies the bank
// like a full write; only the byte accounting differs.
func (m *Memory) WriteBytes(pa PAddr, data []byte, at engine.Cycles, cat stats.WriteCat) engine.Cycles {
	if len(data) == 0 || len(data) > LineBytes {
		panic(fmt.Sprintf("memsim: WriteBytes of %d bytes", len(data)))
	}
	if LineAddr(pa) != LineAddr(pa+PAddr(len(data))-1) {
		panic(fmt.Sprintf("memsim: WriteBytes spans a line boundary at %#x+%d", pa, len(data)))
	}
	nv := m.IsNVRAM(pa)
	var fired, lost bool
	var cb func()
	if nv {
		m.powerMu.Lock()
		if m.trapAfter >= 0 {
			if m.trapAfter == 0 {
				fired = m.setPowerOffLocked()
			} else {
				m.trapAfter--
			}
		}
		lost = m.powerOff
		cb = m.onPowerOff
		m.powerMu.Unlock()
	}
	done := m.access(pa, true, at, cat, len(data))
	if fired && cb != nil {
		cb()
	}
	if !lost {
		m.copyIn(pa, data)
	}
	return done
}

// Peek copies durable bytes without timing or power-failure effects. Used
// for recovery-time parsing and test verification.
func (m *Memory) Peek(pa PAddr, buf []byte) {
	m.copyOut(pa, buf)
}

// Poke sets durable bytes without timing; used only for initialisation
// (formatting persistent regions) and tests. It ignores PowerOff.
func (m *Memory) Poke(pa PAddr, data []byte) {
	m.copyIn(pa, data)
}

// PowerOff makes all subsequent NVRAM writes vanish, simulating the instant
// of power failure. Timing continues to be charged (the machine does not
// know power failed); the caller is expected to stop the run and recover.
func (m *Memory) PowerOff() {
	m.powerMu.Lock()
	fired := m.setPowerOffLocked()
	cb := m.onPowerOff
	m.powerMu.Unlock()
	if fired && cb != nil {
		cb()
	}
}

// setPowerOffLocked flips the power state; it reports whether this call was
// the one that cut power (the callback fires once, outside the lock).
func (m *Memory) setPowerOffLocked() bool {
	if m.powerOff {
		return false
	}
	m.powerOff = true
	m.trapAfter = -1
	return true
}

// PoweredOff reports whether a power failure has been injected.
func (m *Memory) PoweredOff() bool {
	m.powerMu.Lock()
	defer m.powerMu.Unlock()
	return m.powerOff
}

// SetWriteTrap arms a power failure after n more durable NVRAM writes: the
// next n writes land, everything after is lost. n=0 loses the very next
// write. Pass a negative n to disarm.
func (m *Memory) SetWriteTrap(n int64) {
	m.powerMu.Lock()
	defer m.powerMu.Unlock()
	if n < 0 {
		m.trapAfter = -1
		return
	}
	m.trapAfter = n
}

// OnPowerOff registers a callback invoked once when power fails (armed trap
// or explicit PowerOff). Tests use it to stop workload loops. The callback
// runs outside the memory's locks and may inspect the memory freely.
func (m *Memory) OnPowerOff(fn func()) {
	m.powerMu.Lock()
	m.onPowerOff = fn
	m.powerMu.Unlock()
}

// PowerOn clears the power-off state after recovery has rebuilt volatile
// structures; durable contents are preserved.
func (m *Memory) PowerOn() {
	m.powerMu.Lock()
	m.powerOff = false
	m.powerMu.Unlock()
}

// NVRAMImage returns a copy of the durable NVRAM contents.
func (m *Memory) NVRAMImage() []byte {
	img := make([]byte, len(m.nvram))
	m.copyOut(m.cfg.NVRAMBase, img)
	return img
}

// PageWrites returns how many durable line writes the NVRAM page containing
// pa has absorbed since construction (or the last ResetWear) — the page's
// media wear. Safe to call concurrently with simulated execution.
func (m *Memory) PageWrites(pa PAddr) uint64 {
	if !m.IsNVRAM(pa) {
		return 0
	}
	return atomic.LoadUint64(&m.wear[(pa-m.cfg.NVRAMBase)>>PageShift])
}

// WearProfile copies the per-page write counters for the `pages` NVRAM
// pages starting at base (base must be page-aligned NVRAM). Index i is the
// wear of the page at base + i*PageBytes.
func (m *Memory) WearProfile(base PAddr, pages int) []uint64 {
	if !m.IsNVRAM(base) || base%PageBytes != 0 {
		panic(fmt.Sprintf("memsim: WearProfile base %#x is not an NVRAM page", base))
	}
	first := (base - m.cfg.NVRAMBase) >> PageShift
	out := make([]uint64, pages)
	for i := range out {
		out[i] = atomic.LoadUint64(&m.wear[int(first)+i])
	}
	return out
}

// ResetWear zeroes the per-page write counters (after warm-up, with
// measurement-window statistics).
func (m *Memory) ResetWear() {
	for i := range m.wear {
		atomic.StoreUint64(&m.wear[i], 0)
	}
}

// ResetTiming clears bank/bus timelines and open-row state on every channel
// (a reboot); durable contents and statistics are untouched.
func (m *Memory) ResetTiming() {
	for i := range m.chans {
		c := &m.chans[i]
		c.mu.Lock()
		for j := range c.dramBanks {
			c.dramBanks[j] = bank{}
		}
		for j := range c.nvBanks {
			c.nvBanks[j] = bank{}
		}
		c.bus = wheel{}
		c.mu.Unlock()
	}
}
