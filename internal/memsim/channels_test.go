package memsim

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/stats"
)

func channelConfig(channels int, iv Interleave) Config {
	cfg := testConfig()
	cfg.Channels = channels
	cfg.Interleave = iv
	return cfg
}

// unroute inverts route() for the given policy — the test's independent
// model of the mapping (including the permutation swizzle).
func unroute(iv Interleave, channels int, ch int, ca PAddr) PAddr {
	n := uint64(channels)
	unrot := func(q uint64) uint64 {
		// Invert ch = (r + swizzle(q)) % n for the unit index r.
		return (uint64(ch) + n - swizzle(q)%n) % n
	}
	switch iv {
	case InterleavePage:
		q := uint64(ca >> PageShift)
		return PAddr(q*n+unrot(q))<<PageShift | (ca & (PageBytes - 1))
	default:
		q := uint64(ca >> LineShift)
		return PAddr(q*n+unrot(q))<<LineShift | (ca & (LineBytes - 1))
	}
}

// The address→(channel, channel-local address) mapping must be a bijection
// for every policy and channel count: invertible, and no two addresses
// collide on the same (channel, local) pair.
func TestChannelRouteBijection(t *testing.T) {
	for _, iv := range []Interleave{InterleaveLine, InterleavePage} {
		for _, channels := range []int{1, 2, 3, 4, 8, 16} {
			t.Run(fmt.Sprintf("%s/%d", iv, channels), func(t *testing.T) {
				m := New(channelConfig(channels, iv), &stats.Stats{})
				seen := make(map[[2]uint64]PAddr)
				base := m.Config().NVRAMBase
				rng := engine.NewRNG(uint64(channels)*31 + uint64(iv))
				for i := 0; i < 4096; i++ {
					var pa PAddr
					switch {
					case i < 2048: // dense sequential lines from NVRAM base
						pa = base + PAddr(i)*LineBytes
					case i < 3072: // dense DRAM lines
						pa = PAddr(i-2048) * LineBytes
					default: // random NVRAM bytes (not line-aligned)
						pa = base + PAddr(rng.Uint64n(m.Config().NVRAMBytes))
					}
					ch, ca := m.route(pa)
					if ch < 0 || ch >= channels {
						t.Fatalf("route(%#x) channel %d out of range", pa, ch)
					}
					if got := unroute(iv, channels, ch, ca); got != pa {
						t.Fatalf("route(%#x) = (%d, %#x) does not invert: got %#x", pa, ch, ca, got)
					}
					key := [2]uint64{uint64(ch), uint64(ca)}
					if prev, dup := seen[key]; dup && prev != pa {
						t.Fatalf("collision: %#x and %#x both map to (%d, %#x)", prev, pa, ch, ca)
					}
					seen[key] = pa
				}
			})
		}
	}
}

func TestChannelPolicies(t *testing.T) {
	mLine := New(channelConfig(4, InterleaveLine), &stats.Stats{})
	base := mLine.Config().NVRAMBase
	// Line policy: every group of 4 consecutive lines covers all 4 channels
	// (a per-group permutation); bytes within a line stay together.
	for g := 0; g < 8; g++ {
		seen := map[int]bool{}
		for i := 0; i < 4; i++ {
			pa := base + PAddr(4*g+i)*LineBytes
			ch := mLine.ChannelOf(pa)
			if seen[ch] {
				t.Errorf("line policy: group %d maps two lines to channel %d", g, ch)
			}
			seen[ch] = true
			if mLine.ChannelOf(pa+63) != ch {
				t.Errorf("line policy split a cache line at %#x", pa)
			}
		}
	}
	// Page policy: a page's 64 lines share one channel; every group of 4
	// consecutive pages covers all 4 channels.
	mPage := New(channelConfig(4, InterleavePage), &stats.Stats{})
	for g := 0; g < 4; g++ {
		seen := map[int]bool{}
		for p := 0; p < 4; p++ {
			page := base + PAddr(4*g+p)*PageBytes
			want := mPage.ChannelOf(page)
			if seen[want] {
				t.Errorf("page policy: group %d maps two pages to channel %d", g, want)
			}
			seen[want] = true
			for li := 0; li < LinesPerPage; li++ {
				if got := mPage.ChannelOf(page + PAddr(li)*LineBytes); got != want {
					t.Fatalf("page policy: page %d line %d strayed to channel %d (page on %d)", p, li, got, want)
				}
			}
		}
	}
}

// checkWheel verifies a wheel's structural invariants: every bucket's
// booked time is non-negative and its overhang past the bucket span never
// exceeds one access latency (the carry the reserve loop handles).
func checkWheel(w *wheel, maxLatency engine.Cycles) error {
	for i := range w.b {
		s := &w.b[i]
		if s.used < 0 {
			return fmt.Errorf("bucket %d booked negative time %d", i, s.used)
		}
		if s.used > wheelSpan+maxLatency {
			return fmt.Errorf("bucket %d overbooked: %d cycles in a %d-cycle span (max overhang %d)", i, s.used, wheelSpan, maxLatency)
		}
	}
	return nil
}

// wheelFrontier returns the latest booked completion across the wheel.
func wheelFrontier(w *wheel) engine.Cycles {
	var mx engine.Cycles
	for i := range w.b {
		if e := engine.Cycles(w.b[i].epoch)*wheelSpan + w.b[i].used; w.b[i].used > 0 && e > mx {
			mx = e
		}
	}
	return mx
}

// Per-channel bank and bus occupancy wheels must never move backwards (the
// booked frontier only advances) and must respect the per-bucket capacity
// invariant, even when accesses are issued with out-of-order start times —
// the concurrent-mode pattern the wheel exists for. Completion must never
// precede issue.
func TestChannelTimelinesMonotonic(t *testing.T) {
	m := New(channelConfig(4, InterleaveLine), &stats.Stats{})
	cfg := m.Config()
	maxLat := engine.NSToCycles(cfg.NVRAMWrite, cfg.FreqGHz)
	base := cfg.NVRAMBase
	rng := engine.NewRNG(0xC4A7)
	buf := make([]byte, LineBytes)

	prevBus := make([]engine.Cycles, 4)
	prevBank := make(map[[2]int]engine.Cycles)
	for i := 0; i < 2000; i++ {
		pa := base + PAddr(rng.Intn(512))*LineBytes
		at := engine.Cycles(rng.Intn(5000)) // deliberately non-monotonic issue times
		var done engine.Cycles
		if rng.Intn(2) == 0 {
			done = m.WriteLine(pa, buf, at, stats.CatData)
		} else {
			done = m.ReadLine(pa, buf, at)
		}
		if done < at {
			t.Fatalf("access at %d completed in the past at %d", at, done)
		}
		for c := range m.chans {
			ch := &m.chans[c]
			if err := checkWheel(&ch.bus, maxLat); err != nil {
				t.Fatalf("channel %d bus wheel: %v", c, err)
			}
			if f := wheelFrontier(&ch.bus); f < prevBus[c] {
				t.Fatalf("channel %d bus frontier went backwards: %d -> %d", c, prevBus[c], f)
			} else {
				prevBus[c] = f
			}
			for b := range ch.nvBanks {
				key := [2]int{c, b}
				if err := checkWheel(&ch.nvBanks[b].tl, maxLat); err != nil {
					t.Fatalf("channel %d bank %d wheel: %v", c, b, err)
				}
				if f := wheelFrontier(&ch.nvBanks[b].tl); f < prevBank[key] {
					t.Fatalf("channel %d bank %d frontier went backwards: %d -> %d", c, b, prevBank[key], f)
				} else {
					prevBank[key] = f
				}
			}
		}
	}
}

// A single channel serialises every transfer on one bus; four channels must
// drain the same independent write stream substantially faster in simulated
// time. This is the bandwidth unlock the parallel engine depends on. The
// stream strides one row per write over a raised bank count so it is
// genuinely bus-bound, not bank-bound (otherwise per-bank latency would
// dominate at any channel count).
func TestChannelBandwidthScaling(t *testing.T) {
	const writes = 1024
	makespan := func(channels int) engine.Cycles {
		cfg := channelConfig(channels, InterleaveLine)
		cfg.NVRAMBanks = 512
		cfg.NVRAMBytes = 4 << 20
		m := New(cfg, &stats.Stats{})
		base := m.Config().NVRAMBase
		stride := PAddr(cfg.NVRAMRow) // one row per write: banks never chain
		buf := make([]byte, LineBytes)
		var max engine.Cycles
		for i := 0; i < writes; i++ {
			// Independent writes all issued at t=0, like a commit fence over
			// a large write set.
			done := m.WriteLine(base+PAddr(i)*stride, buf, 0, stats.CatData)
			if done > max {
				max = done
			}
		}
		return max
	}
	one := makespan(1)
	four := makespan(4)
	if four*2 >= one {
		t.Errorf("4 channels did not unlock bandwidth: makespan 1ch=%d 4ch=%d (want >2x better)", one, four)
	}
}

// Aggregated per-channel counters must account for every transfer, and the
// traffic must actually spread across channels.
func TestChannelCounters(t *testing.T) {
	sh := stats.NewSharded(1)
	m := New(channelConfig(4, InterleaveLine), sh.Shared())
	m.AttachChannelStats(sh.ChannelShards(4))
	base := m.Config().NVRAMBase
	buf := make([]byte, LineBytes)
	for i := 0; i < 256; i++ {
		m.WriteLine(base+PAddr(i)*LineBytes, buf, 0, stats.CatData)
		m.ReadLine(PAddr(i)*LineBytes, buf, 0)
	}
	st := sh.Aggregate()
	var chanLines uint64
	for c := 0; c < 4; c++ {
		if st.ChannelLines[c] == 0 {
			t.Errorf("channel %d saw no traffic", c)
		}
		if st.ChannelBusyCycles[c] == 0 {
			t.Errorf("channel %d charged no bus occupancy", c)
		}
		chanLines += st.ChannelLines[c]
	}
	if total := st.NVRAMReadLines + st.NVRAMWriteLines + st.DRAMReadLines + st.DRAMWriteLines; chanLines != total {
		t.Errorf("per-channel lines %d != total transfers %d", chanLines, total)
	}
	if got := st.ActiveChannels(); got != 4 {
		t.Errorf("ActiveChannels = %d, want 4", got)
	}
}

// Accesses slower than one wheel bucket (Figure 8's high NVRAM-latency
// multiples) must stamp every bucket they cover: a same-bank access issued
// a few buckets into a long booking still queues behind it, and capacity
// bookings longer than a bucket split across buckets instead of looping.
func TestWheelLongDurations(t *testing.T) {
	cfg := testConfig()
	cfg.NVRAMWrite = 2000 // ns -> ~7400 cycles, spanning two+ buckets
	m := New(cfg, &stats.Stats{})
	base := m.Config().NVRAMBase
	buf := make([]byte, LineBytes)
	lat := engine.NSToCycles(cfg.NVRAMWrite, cfg.FreqGHz)

	d1 := m.WriteLine(base, buf, 0, stats.CatData)
	if d1 != lat {
		t.Fatalf("first long write done %d, want %d", d1, lat)
	}
	// Same bank, issued mid-way through the first booking's span (more than
	// one bucket after its start): must queue behind it, not overlap.
	at := engine.Cycles(wheelSpan + wheelSpan/2)
	if at >= d1 {
		t.Fatalf("test geometry broken: at %d not inside booking [0,%d)", at, d1)
	}
	hit := engine.Cycles(float64(lat) * cfg.RowHitFrac)
	d2 := m.WriteLine(base, buf, at, stats.CatData)
	if d2 != d1+hit {
		t.Errorf("second long write done %d, want %d (queued behind first)", d2, d1+hit)
	}

	// Capacity bookings longer than a bucket must terminate and slot at the
	// issue point when the bus is idle.
	var w wheel
	if slot := w.reserveCapacity(100, 3*wheelSpan); slot != 100 {
		t.Errorf("long capacity booking slot %d, want 100", slot)
	}
	// The spanned buckets are now full: the next slot lands past them.
	if slot := w.reserveCapacity(0, 1); slot < 3*wheelSpan {
		t.Errorf("slot %d landed inside a fully booked span", slot)
	}
}

// Race stress: concurrent writers over disjoint channels (never share a
// timing lock) and over all channels (contend on every lock). Run under
// -race; also verifies durable contents after the storm.
func TestChannelRaceStress(t *testing.T) {
	for _, mode := range []string{"disjoint", "shared"} {
		t.Run(mode, func(t *testing.T) {
			const goroutines = 4
			const opsPer = 400
			sh := stats.NewSharded(goroutines)
			m := New(channelConfig(goroutines, InterleaveLine), sh.Shared())
			m.AttachChannelStats(sh.ChannelShards(goroutines))
			base := m.Config().NVRAMBase

			// Each goroutine owns a distinct 64-page range for the data
			// bytes; in disjoint mode it additionally restricts itself to
			// the lines of that range served by "its" channel, so no two
			// goroutines ever touch the same channel's timing lock.
			lines := make([][]PAddr, goroutines)
			for g := 0; g < goroutines; g++ {
				region := base + PAddr(g)*PageBytes*64
				for li := 0; li < 1024; li++ {
					pa := region + PAddr(li)*LineBytes
					if mode != "disjoint" || m.ChannelOf(pa) == g {
						lines[g] = append(lines[g], pa)
					}
				}
				if len(lines[g]) == 0 {
					t.Fatalf("goroutine %d has no lines on channel %d", g, g)
				}
			}

			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := engine.NewRNG(uint64(g) + 1)
					buf := make([]byte, LineBytes)
					for i := range buf {
						buf[i] = byte(g + 1)
					}
					for i := 0; i < opsPer; i++ {
						pa := lines[g][rng.Intn(len(lines[g]))]
						if mode == "disjoint" {
							if got := m.ChannelOf(pa); got != g {
								t.Errorf("disjoint address %#x routed to channel %d, want %d", pa, got, g)
								return
							}
						}
						m.WriteLine(pa, buf, engine.Cycles(i), stats.CatData)
						out := make([]byte, LineBytes)
						m.ReadLine(pa, out, engine.Cycles(i))
						if out[0] != byte(g+1) {
							t.Errorf("goroutine %d read back %#x from %#x", g, out[0], pa)
							return
						}
					}
				}(g)
			}
			wg.Wait()

			st := sh.Aggregate()
			want := uint64(goroutines * opsPer * 2)
			if got := st.NVRAMReadLines + st.NVRAMWriteLines; got != want {
				t.Errorf("transfer count %d, want %d", got, want)
			}
		})
	}
}
