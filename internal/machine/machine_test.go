package machine

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/vm"
)

// testConfig returns a small, fast machine for the given backend.
func testConfig(b BackendKind, cores int) Config {
	cfg := DefaultConfig(b, cores)
	cfg.Mem.DRAMBytes = 1 << 20
	cfg.Mem.NVRAMBytes = 24 << 20
	cfg.Layout.MaxHeapPages = 1024
	cfg.Layout.SSPSlots = 128
	cfg.Layout.JournalBytes = 16 << 10
	cfg.Layout.LogBytes = 64 << 10
	cfg.SSP.Entries = 128
	cfg.SSP.ResidentEntries = 128
	return cfg
}

func allBackends() []BackendKind { return []BackendKind{SSP, UndoLog, RedoLog} }

func heapVA(page, off int) uint64 {
	return vm.HeapBase + uint64(page)*memsim.PageBytes + uint64(off)
}

func TestCommitIsDurableAcrossCrash(t *testing.T) {
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			m := New(testConfig(b, 1))
			c := m.Core(0)
			m.Heap().EnsureMapped(nil, 1, 2)

			c.Begin()
			c.Store64(heapVA(1, 0), 0xAAAA)
			c.Store64(heapVA(2, 64), 0xBBBB)
			c.Commit()

			if err := m.Recover(); err != nil { // crash immediately
				t.Fatal(err)
			}
			if v := c.Load64(heapVA(1, 0)); v != 0xAAAA {
				t.Errorf("lost committed value: %#x", v)
			}
			if v := c.Load64(heapVA(2, 64)); v != 0xBBBB {
				t.Errorf("lost committed value: %#x", v)
			}
		})
	}
}

func TestUncommittedIsInvisibleAfterCrash(t *testing.T) {
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			m := New(testConfig(b, 1))
			c := m.Core(0)
			m.Heap().EnsureMapped(nil, 1, 1)

			c.Begin()
			c.Store64(heapVA(1, 0), 0x1111)
			c.Commit()

			c.Begin()
			c.Store64(heapVA(1, 0), 0x2222)
			c.Store64(heapVA(1, 128), 0x3333)
			// Crash mid-transaction.
			if err := m.Recover(); err != nil {
				t.Fatal(err)
			}
			if v := c.Load64(heapVA(1, 0)); v != 0x1111 {
				t.Errorf("uncommitted data visible or committed lost: %#x", v)
			}
			if v := c.Load64(heapVA(1, 128)); v != 0 {
				t.Errorf("uncommitted data visible: %#x", v)
			}
		})
	}
}

func TestAbortRollsBack(t *testing.T) {
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			m := New(testConfig(b, 1))
			c := m.Core(0)
			m.Heap().EnsureMapped(nil, 1, 1)

			c.Begin()
			c.Store64(heapVA(1, 0), 0x7777)
			c.Commit()

			c.Begin()
			c.Store64(heapVA(1, 0), 0x8888)
			c.Store64(heapVA(1, 512), 0x9999)
			if v := c.Load64(heapVA(1, 0)); v != 0x8888 {
				t.Fatalf("read-own-write failed: %#x", v)
			}
			c.Abort()
			if v := c.Load64(heapVA(1, 0)); v != 0x7777 {
				t.Errorf("abort did not roll back: %#x", v)
			}
			if v := c.Load64(heapVA(1, 512)); v != 0 {
				t.Errorf("abort left new data: %#x", v)
			}
		})
	}
}

func TestRepeatedUpdatesSameLine(t *testing.T) {
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			m := New(testConfig(b, 1))
			c := m.Core(0)
			m.Heap().EnsureMapped(nil, 1, 1)
			for i := uint64(1); i <= 10; i++ {
				c.Begin()
				c.Store64(heapVA(1, 0), i)
				c.Store64(heapVA(1, 0), i*100)
				c.Commit()
				if v := c.Load64(heapVA(1, 0)); v != i*100 {
					t.Fatalf("iteration %d: %#x", i, v)
				}
			}
			if err := m.Recover(); err != nil {
				t.Fatal(err)
			}
			if v := c.Load64(heapVA(1, 0)); v != 1000 {
				t.Errorf("after recovery: %d", v)
			}
		})
	}
}

func TestRestoreFromImage(t *testing.T) {
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			cfg := testConfig(b, 1)
			m := New(cfg)
			c := m.Core(0)
			m.Heap().EnsureMapped(nil, 1, 1)
			c.Begin()
			c.Store64(heapVA(1, 8), 0xFEED)
			c.Commit()
			img := m.Crash()

			m2, err := Restore(cfg, img)
			if err != nil {
				t.Fatal(err)
			}
			if v := m2.Core(0).Load64(heapVA(1, 8)); v != 0xFEED {
				t.Errorf("restored image lost data: %#x", v)
			}
			// The restored machine must accept new transactions.
			c2 := m2.Core(0)
			c2.Begin()
			c2.Store64(heapVA(1, 16), 0xF00D)
			c2.Commit()
			if v := c2.Load64(heapVA(1, 16)); v != 0xF00D {
				t.Errorf("restored machine broken: %#x", v)
			}
		})
	}
}

func TestHeapAllocInsideTxn(t *testing.T) {
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			m := New(testConfig(b, 1))
			c := m.Core(0)
			h := m.Heap()
			c.Begin()
			p1 := h.Alloc(c, 64)
			p2 := h.Alloc(c, 64)
			c.Store64(p1, 1)
			c.Store64(p2, 2)
			c.Commit()
			if p1 == p2 {
				t.Fatal("duplicate allocation")
			}
			c.Begin()
			h.Free(c, p1, 64)
			c.Commit()
			c.Begin()
			p3 := h.Alloc(c, 64)
			c.Commit()
			if p3 != p1 {
				t.Errorf("free list not reused: %#x vs %#x", p3, p1)
			}
		})
	}
}

func TestHeapAllocCrashAtomicity(t *testing.T) {
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			m := New(testConfig(b, 1))
			c := m.Core(0)
			h := m.Heap()
			c.Begin()
			p := h.Alloc(c, 128)
			c.Store64(p, 42)
			c.Commit()

			// Crash mid-allocation: the bump pointer must roll back.
			c.Begin()
			_ = h.Alloc(c, 128)
			if err := m.Recover(); err != nil {
				t.Fatal(err)
			}
			c.Begin()
			q := h.Alloc(c, 128)
			c.Commit()
			if q == p {
				t.Errorf("post-recovery allocation overlaps live object")
			}
			// The aborted allocation's space is reusable (bump rolled back).
			if v := c.Load64(p); v != 42 {
				t.Errorf("live object damaged: %d", v)
			}
		})
	}
}

func TestMultiCoreSharing(t *testing.T) {
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			m := New(testConfig(b, 4))
			m.Heap().EnsureMapped(nil, 1, 1)
			lock := m.NewLock()
			// Four cores increment a shared counter under a lock,
			// transactionally.
			for round := 0; round < 5; round++ {
				for id := 0; id < 4; id++ {
					c := m.Core(id)
					c.Acquire(lock)
					c.Begin()
					v := c.Load64(heapVA(1, 0))
					c.Store64(heapVA(1, 0), v+1)
					c.Commit()
					c.Release(lock)
				}
			}
			if v := m.Core(0).Load64(heapVA(1, 0)); v != 20 {
				t.Errorf("counter = %d, want 20", v)
			}
			if err := m.Recover(); err != nil {
				t.Fatal(err)
			}
			if v := m.Core(0).Load64(heapVA(1, 0)); v != 20 {
				t.Errorf("counter after crash = %d, want 20", v)
			}
		})
	}
}

func TestConcurrentOpenTransactionsSamePage(t *testing.T) {
	// Two cores hold open transactions on different lines of the same page
	// at the same time (Figure 1: private updated bitmaps, shared current
	// bitmap), interleaved at operation granularity.
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			m := New(testConfig(b, 2))
			m.Heap().EnsureMapped(nil, 1, 1)
			c0, c1 := m.Core(0), m.Core(1)

			c0.Begin()
			c1.Begin()
			c0.Store64(heapVA(1, 0), 100)
			c1.Store64(heapVA(1, 64), 200)
			c0.Store64(heapVA(1, 128), 101)
			c1.Store64(heapVA(1, 192), 201)
			// Reads see own writes before either commits.
			if c0.Load64(heapVA(1, 0)) != 100 || c1.Load64(heapVA(1, 64)) != 200 {
				t.Fatal("read-own-write failed with concurrent transactions")
			}
			c0.Commit()
			// c1 still open; crash now must keep c0, drop c1.
			img := m.Crash()
			m2, err := Restore(testConfig(b, 2), img)
			if err != nil {
				t.Fatal(err)
			}
			r := m2.Core(0)
			if r.Load64(heapVA(1, 0)) != 100 || r.Load64(heapVA(1, 128)) != 101 {
				t.Error("committed transaction lost")
			}
			if r.Load64(heapVA(1, 64)) != 0 || r.Load64(heapVA(1, 192)) != 0 {
				t.Error("uncommitted transaction visible")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			run := func() (uint64, uint64, int64) {
				m := New(testConfig(b, 2))
				m.Heap().EnsureMapped(nil, 1, 8)
				for i := 0; i < 50; i++ {
					c := m.Core(i % 2)
					c.Begin()
					c.Store64(heapVA(1+(i%8), (i*8)%4096&^7), uint64(i))
					c.Commit()
				}
				m.Drain()
				return m.Stats().NVRAMWriteLines, m.Stats().TotalWriteBytes(), int64(m.MaxClock())
			}
			l1, b1, c1 := run()
			l2, b2, c2 := run()
			if l1 != l2 || b1 != b2 || c1 != c2 {
				t.Errorf("nondeterministic run: (%d,%d,%d) vs (%d,%d,%d)", l1, b1, c1, l2, b2, c2)
			}
		})
	}
}

func TestSSPWritesLessLoggingTraffic(t *testing.T) {
	// The headline claim at miniature scale: SSP's critical-path logging
	// bytes are far below UNDO/REDO for the same work.
	traffic := map[BackendKind]uint64{}
	for _, b := range allBackends() {
		m := New(testConfig(b, 1))
		c := m.Core(0)
		m.Heap().EnsureMapped(nil, 1, 4)
		// Table-3-shaped transactions: 8 distinct lines across 2 pages.
		for i := 0; i < 200; i++ {
			c.Begin()
			for j := 0; j < 8; j++ {
				page := 1 + (i+j/4)%4
				line := (i*4 + j%4) % 64
				c.Store64(heapVA(page, line*64), uint64(i))
			}
			c.Commit()
		}
		m.Drain()
		traffic[b] = m.Stats().CriticalPathLoggingBytes()
	}
	if traffic[SSP]*2 >= traffic[UndoLog] {
		t.Errorf("SSP logging bytes %d not well below UNDO %d", traffic[SSP], traffic[UndoLog])
	}
	if traffic[SSP]*2 >= traffic[RedoLog] {
		t.Errorf("SSP logging bytes %d not well below REDO %d", traffic[SSP], traffic[RedoLog])
	}
}

func TestStoreBytesCrossesLines(t *testing.T) {
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			m := New(testConfig(b, 1))
			c := m.Core(0)
			m.Heap().EnsureMapped(nil, 1, 2)
			// A 200-byte blob starting 8 bytes before a line boundary,
			// crossing a page boundary too.
			va := heapVA(1, 4096-72)
			blob := make([]byte, 200)
			for i := range blob {
				blob[i] = byte(i + 1)
			}
			c.Begin()
			c.StoreBytes(va, blob)
			c.Commit()
			got := make([]byte, 200)
			c.LoadBytes(va, got)
			for i := range blob {
				if got[i] != blob[i] {
					t.Fatalf("byte %d: got %d want %d", i, got[i], blob[i])
				}
			}
			// Survives a crash.
			if err := m.Recover(); err != nil {
				t.Fatal(err)
			}
			c.LoadBytes(va, got)
			for i := range blob {
				if got[i] != blob[i] {
					t.Fatalf("post-crash byte %d: got %d want %d", i, got[i], blob[i])
				}
			}
		})
	}
}

func TestUnalignedWordOpsPanic(t *testing.T) {
	m := New(testConfig(SSP, 1))
	c := m.Core(0)
	m.Heap().EnsureMapped(nil, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("unaligned Store64 should panic")
		}
	}()
	c.Begin()
	c.Store64(heapVA(1, 3), 1)
}

func TestBackendNames(t *testing.T) {
	if SSP.String() != "SSP" || UndoLog.String() != "UNDO-LOG" || RedoLog.String() != "REDO-LOG" {
		t.Error("backend names wrong")
	}
	if len(Backends()) != 3 {
		t.Error("Backends() wrong")
	}
}
