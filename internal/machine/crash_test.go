package machine

import (
	"fmt"
	"testing"

	"repro/internal/engine"
)

// crashScript is a deterministic transaction sequence used by the trap
// sweep: txn i writes value i+1 to every address in its write set. Write
// sets deliberately mix repeated lines, multiple pages, and ping-ponged
// lines across transactions.
type crashScript struct {
	txns [][]uint64 // addresses per transaction
}

func makeCrashScript(seed uint64) crashScript {
	rng := engine.NewRNG(seed)
	var sc crashScript
	for i := 0; i < 12; i++ {
		nAddrs := 1 + rng.Intn(6)
		var addrs []uint64
		for j := 0; j < nAddrs; j++ {
			page := 1 + rng.Intn(4)
			line := rng.Intn(64)
			addrs = append(addrs, heapVA(page, line*64))
		}
		sc.txns = append(sc.txns, addrs)
	}
	return sc
}

// runScript executes the script until done or until power fails, returning
// the durable expectation state: committed[va] is the value each address
// must have if the boundary transaction did not land, boundary holds the
// in-flight transaction's writes (empty when power failed between
// transactions), and done is the number of commits that returned with
// power still on.
func runScript(m *Machine, sc crashScript) (committed map[uint64]uint64, boundary map[uint64]uint64, done int) {
	committed = map[uint64]uint64{}
	c := m.Core(0)
	m.Heap().EnsureMapped(nil, 1, 4)
	for i, addrs := range sc.txns {
		if m.Mem().PoweredOff() {
			break
		}
		val := uint64(i + 1)
		pending := map[uint64]uint64{}
		c.Begin()
		for _, va := range addrs {
			c.Store64(va, val)
			pending[va] = val
		}
		c.Commit()
		if m.Mem().PoweredOff() {
			// Power failed inside this transaction (or during its commit):
			// it is the boundary — all or nothing.
			boundary = pending
			return committed, boundary, done
		}
		for va, v := range pending {
			committed[va] = v
		}
		done++
	}
	return committed, nil, done
}

// TestCrashTrapSweep is the central failure-atomicity test: for every
// possible power-failure point in the NVRAM write stream, recovery must
// yield exactly the committed prefix plus, atomically, the boundary
// transaction or nothing of it.
func TestCrashTrapSweep(t *testing.T) {
	for _, b := range allBackends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			sc := makeCrashScript(0x5eed + uint64(b))

			// Reference run: count total NVRAM writes after setup.
			ref := New(testConfig(b, 1))
			setupWrites := ref.Stats().NVRAMWriteLines
			_, _, total := runScript(ref, sc)
			if total != len(sc.txns) {
				t.Fatalf("reference run incomplete: %d/%d", total, len(sc.txns))
			}
			ref.Drain()
			scriptWrites := int64(ref.Stats().NVRAMWriteLines - setupWrites)
			if scriptWrites < 20 {
				t.Fatalf("suspiciously few NVRAM writes: %d", scriptWrites)
			}

			for k := int64(0); k <= scriptWrites; k++ {
				m := New(testConfig(b, 1))
				m.Mem().SetWriteTrap(k)
				committed, boundary, _ := runScript(m, sc)
				m.Mem().SetWriteTrap(-1)
				if err := m.Recover(); err != nil {
					t.Fatalf("trap %d: recovery failed: %v", k, err)
				}
				// A trap during the initial page mapping loses (leaks) the
				// unmapped pages; remapping them yields zeroed frames,
				// which is consistent with nothing having committed there.
				m.Heap().EnsureMapped(nil, 1, 4)
				if err := verifyState(m, committed, boundary); err != nil {
					t.Fatalf("trap %d: %v", k, err)
				}
				// The machine must still work after recovery.
				c := m.Core(0)
				c.Begin()
				c.Store64(heapVA(4, 4032), 0xC0FFEE)
				c.Commit()
				if v := c.Load64(heapVA(4, 4032)); v != 0xC0FFEE {
					t.Fatalf("trap %d: post-recovery transaction broken", k)
				}
			}
		})
	}
}

// verifyState checks the all-or-nothing contract against the recovered
// durable state.
func verifyState(m *Machine, committed, boundary map[uint64]uint64) error {
	c := m.Core(0)
	read := func(va uint64) uint64 { return c.Load64(va) }

	if boundary == nil {
		for va, want := range committed {
			if got := read(va); got != want {
				return fmt.Errorf("addr %#x: got %d want %d", va, got, want)
			}
		}
		return nil
	}
	// Decide whether the boundary transaction landed by its first address,
	// then require full consistency with that decision.
	applied := false
	for va, v := range boundary {
		if read(va) == v {
			applied = true
		}
		break
	}
	expect := map[uint64]uint64{}
	for va, v := range committed {
		expect[va] = v
	}
	if applied {
		for va, v := range boundary {
			expect[va] = v
		}
	}
	for va, want := range expect {
		if got := read(va); got != want {
			return fmt.Errorf("boundary txn torn (applied=%v): addr %#x got %d want %d", applied, va, got, want)
		}
	}
	return nil
}

// TestCrashTrapSweepMultiPage stresses transactions spanning many pages
// (multi-record journal batches / multi-entry logs).
func TestCrashTrapSweepMultiPage(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, b := range allBackends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			var sc crashScript
			for i := 0; i < 6; i++ {
				var addrs []uint64
				for p := 1; p <= 4; p++ {
					addrs = append(addrs, heapVA(p, ((i*7+p*3)%64)*64))
					addrs = append(addrs, heapVA(p, ((i*11+p*5)%64)*64))
				}
				sc.txns = append(sc.txns, addrs)
			}

			ref := New(testConfig(b, 1))
			setupWrites := ref.Stats().NVRAMWriteLines
			runScript(ref, sc)
			ref.Drain()
			scriptWrites := int64(ref.Stats().NVRAMWriteLines - setupWrites)

			for k := int64(0); k <= scriptWrites; k += 1 {
				m := New(testConfig(b, 1))
				m.Mem().SetWriteTrap(k)
				committed, boundary, _ := runScript(m, sc)
				m.Mem().SetWriteTrap(-1)
				if err := m.Recover(); err != nil {
					t.Fatalf("trap %d: recovery failed: %v", k, err)
				}
				m.Heap().EnsureMapped(nil, 1, 4)
				if err := verifyState(m, committed, boundary); err != nil {
					t.Fatalf("trap %d: %v", k, err)
				}
			}
		})
	}
}

// TestCrashDuringRecovery: a second power failure while recovery itself is
// writing must still recover to a consistent state (recovery idempotence).
func TestCrashDuringRecovery(t *testing.T) {
	for _, b := range allBackends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			sc := makeCrashScript(0xFACE + uint64(b))
			// Crash mid-script at an arbitrary point.
			m := New(testConfig(b, 1))
			m.Mem().SetWriteTrap(25)
			committed, boundary, _ := runScript(m, sc)
			m.Mem().SetWriteTrap(-1)

			// First recovery is interrupted after each possible write.
			for k := int64(0); k < 20; k++ {
				img := m.Mem().NVRAMImage()
				m2, err := Restore(testConfig(b, 1), img)
				_ = m2
				if err != nil {
					t.Fatalf("baseline restore failed: %v", err)
				}
				m3, err := build(testConfig(b, 1), img)
				if err != nil {
					t.Fatalf("build from image: %v", err)
				}
				m3.pt.Rebuild()
				m3.Mem().SetWriteTrap(k)
				_ = m3.Recover() // may be cut short; errors not expected
				m3.Mem().SetWriteTrap(-1)
				if err := m3.Recover(); err != nil {
					t.Fatalf("second recovery failed: %v", err)
				}
				m3.Heap().EnsureMapped(nil, 1, 4)
				if err := verifyState(m3, committed, boundary); err != nil {
					t.Fatalf("double-crash trap %d: %v", k, err)
				}
			}
		})
	}
}
