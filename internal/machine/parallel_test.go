package machine

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/pheap"
	"repro/internal/stats"
)

// The parallel stress test: N goroutine-backed cores × M transactions per
// backend, over disjoint per-core page ranges (the sharded contract), with
// occasional aborts. Each core's input stream is a fixed function of
// (seed, core), so per-core outcomes are deterministic regardless of
// host scheduling; the test then asserts that
//
//   - every durable value matches the serial reference run,
//   - order-independent aggregate statistics (commits, aborts, write-set
//     characterisation) match the serial run exactly,
//   - the cache-coherence and SSP frame-ownership invariants hold, and
//   - the machine still crash-recovers cleanly after the concurrent run.
//
// Run it under -race: it is the concurrency gate for the whole engine.

const (
	stressCores    = 4
	stressPagesPer = 12 // heap pages owned by each core
)

// stressScript executes core c's transaction stream and records the values
// the stream leaves behind. Writes stay within the core's own page range.
func stressScript(c *Core, txns int, seed uint64, final map[uint64]uint64) {
	rng := engine.NewRNG(seed + uint64(c.ID())*0x9E3779B97F4A7C15)
	base := 1 + c.ID()*stressPagesPer
	pending := map[uint64]uint64{}
	for i := 0; i < txns; i++ {
		c.Begin()
		n := 1 + rng.Intn(6)
		for j := 0; j < n; j++ {
			page := base + rng.Intn(stressPagesPer)
			line := rng.Intn(64)
			va := heapVA(page, line*64)
			val := uint64(c.ID()+1)<<32 | uint64(i+1)
			c.Store64(va, val)
			pending[va] = val
		}
		if rng.Intn(10) == 0 {
			c.Abort()
		} else {
			c.Commit()
			for va, v := range pending {
				final[va] = v
			}
		}
		clear(pending)
	}
}

func stressMachine(b BackendKind) *Machine {
	cfg := testConfig(b, stressCores)
	m := New(cfg)
	m.Heap().EnsureMapped(nil, 1, stressCores*stressPagesPer)
	return m
}

func TestParallelStressMatchesSerial(t *testing.T) {
	txns := 300
	if testing.Short() {
		txns = 80
	}
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			// Serial reference: same per-core streams, one goroutine.
			ref := stressMachine(b)
			refFinal := make([]map[uint64]uint64, stressCores)
			for i := 0; i < stressCores; i++ {
				refFinal[i] = map[uint64]uint64{}
				stressScript(ref.Core(i), txns, 0xC0FFEE, refFinal[i])
			}
			ref.Drain()
			refStats := *ref.Stats()
			refWS := *ref.WriteSet()

			// Concurrent run.
			m := stressMachine(b)
			final := make([]map[uint64]uint64, stressCores)
			for i := range final {
				final[i] = map[uint64]uint64{}
			}
			m.Run(func(c *Core) {
				stressScript(c, txns, 0xC0FFEE, final[c.ID()])
			})
			m.Drain()

			// Durable values match the serial reference per core.
			c0 := m.Core(0)
			for i := 0; i < stressCores; i++ {
				if len(final[i]) != len(refFinal[i]) {
					t.Fatalf("core %d wrote %d addresses, serial wrote %d", i, len(final[i]), len(refFinal[i]))
				}
				for va, want := range refFinal[i] {
					if got := final[i][va]; got != want {
						t.Fatalf("core %d: stream diverged at %#x: %#x vs serial %#x", i, va, got, want)
					}
					if got := c0.Load64(va); got != want {
						t.Errorf("durable %#x = %#x, want %#x", va, got, want)
					}
				}
			}

			// Order-independent aggregates match the serial run.
			st := *m.Stats()
			if st.Commits != refStats.Commits || st.Aborts != refStats.Aborts {
				t.Errorf("commits/aborts %d/%d, serial %d/%d", st.Commits, st.Aborts, refStats.Commits, refStats.Aborts)
			}
			ws := *m.WriteSet()
			if ws.Txns != refWS.Txns || ws.TotalLines != refWS.TotalLines || ws.TotalPages != refWS.TotalPages {
				t.Errorf("write-set stats (%d,%d,%d), serial (%d,%d,%d)",
					ws.Txns, ws.TotalLines, ws.TotalPages, refWS.Txns, refWS.TotalLines, refWS.TotalPages)
			}

			// Hardware invariants hold after the concurrent run.
			if msg := m.DebugValidateCaches(); msg != "" {
				t.Fatalf("cache invariant violated: %s", msg)
			}
			if s, ok := m.Backend().(*core.SSP); ok {
				if msg := s.DebugCheckFrames(); msg != "" {
					t.Fatalf("SSP frame invariant violated: %s", msg)
				}
			}

			// The image the concurrent run left behind still recovers.
			if err := recycle(m); err != nil {
				t.Fatalf("post-parallel recovery: %v", err)
			}
			for i := 0; i < stressCores; i++ {
				for va, want := range refFinal[i] {
					if got := m.Core(0).Load64(va); got != want {
						t.Errorf("post-recovery %#x = %#x, want %#x", va, got, want)
					}
				}
			}
		})
	}
}

// TestParallelMultiChannel runs the stress streams on a 4-channel machine:
// the channel counters must account for every memory transfer, every channel
// must carry traffic, and order-independent aggregates must still match a
// serial run on the same multi-channel machine. (The simulated-time speedup
// of multi-channel runs is asserted deterministically in memsim's
// TestChannelBandwidthScaling and demonstrated by `sspbench -exp channels`;
// cross-core timing here depends on the host schedule.)
func TestParallelMultiChannel(t *testing.T) {
	txns := 200
	if testing.Short() {
		txns = 60
	}
	channelCfg := func(b BackendKind, channels int) Config {
		cfg := testConfig(b, stressCores)
		cfg.Mem.Channels = channels
		cfg.Mem.Interleave = memsim.InterleaveLine
		return cfg
	}
	runParallel := func(cfg Config) *Machine {
		m := New(cfg)
		m.Heap().EnsureMapped(nil, 1, stressCores*stressPagesPer)
		m.Run(func(c *Core) {
			stressScript(c, txns, 0xBEEF, map[uint64]uint64{})
		})
		m.Drain()
		return m
	}
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			m := runParallel(channelCfg(b, 4))
			st := *m.Stats()

			var chanLines uint64
			for c := 0; c < 4; c++ {
				if st.ChannelLines[c] == 0 {
					t.Errorf("channel %d saw no traffic", c)
				}
				chanLines += st.ChannelLines[c]
			}
			total := st.NVRAMReadLines + st.NVRAMWriteLines + st.DRAMReadLines + st.DRAMWriteLines
			if chanLines != total {
				t.Errorf("per-channel lines %d != total transfers %d", chanLines, total)
			}

			// Serial reference on an identical 4-channel machine.
			ref := New(channelCfg(b, 4))
			ref.Heap().EnsureMapped(nil, 1, stressCores*stressPagesPer)
			for i := 0; i < stressCores; i++ {
				stressScript(ref.Core(i), txns, 0xBEEF, map[uint64]uint64{})
			}
			ref.Drain()
			refStats := *ref.Stats()
			if st.Commits != refStats.Commits || st.Aborts != refStats.Aborts {
				t.Errorf("commits/aborts %d/%d, serial %d/%d", st.Commits, st.Aborts, refStats.Commits, refStats.Aborts)
			}

			if msg := m.DebugValidateCaches(); msg != "" {
				t.Fatalf("cache invariant violated: %s", msg)
			}
		})
	}
}

// TestParallelJournalShards runs the SSP stress streams with a per-core
// sharded metadata journal: every shard must carry records, aggregates must
// match a serial run on the same configuration, durable values must match
// the serial reference, the frame invariant must hold, and the multi-shard
// image must crash-recover via the TID-merge path. Run under -race: the
// commit path takes only its shard's lock plus page locks here.
func TestParallelJournalShards(t *testing.T) {
	txns := 300
	if testing.Short() {
		txns = 80
	}
	shardCfg := func() Config {
		cfg := testConfig(SSP, stressCores)
		cfg.Layout.JournalShards = stressCores
		return cfg
	}

	// Serial reference.
	ref := New(shardCfg())
	ref.Heap().EnsureMapped(nil, 1, stressCores*stressPagesPer)
	refFinal := make([]map[uint64]uint64, stressCores)
	for i := 0; i < stressCores; i++ {
		refFinal[i] = map[uint64]uint64{}
		stressScript(ref.Core(i), txns, 0x5A4D, refFinal[i])
	}
	ref.Drain()
	refStats := *ref.Stats()

	m := New(shardCfg())
	m.Heap().EnsureMapped(nil, 1, stressCores*stressPagesPer)
	m.Run(func(c *Core) {
		stressScript(c, txns, 0x5A4D, map[uint64]uint64{})
	})
	m.Drain()

	st := *m.Stats()
	if st.Commits != refStats.Commits || st.Aborts != refStats.Aborts {
		t.Errorf("commits/aborts %d/%d, serial %d/%d", st.Commits, st.Aborts, refStats.Commits, refStats.Aborts)
	}
	if st.JournalRecords != refStats.JournalRecords {
		t.Errorf("journal records %d, serial %d", st.JournalRecords, refStats.JournalRecords)
	}
	pressure := m.JournalPressure()
	if len(pressure) != stressCores {
		t.Fatalf("journal pressure reports %d shards, want %d", len(pressure), stressCores)
	}
	var shardRecs uint64
	for _, p := range pressure {
		if p.Records == 0 {
			t.Errorf("shard %d appended no records", p.Shard)
		}
		shardRecs += p.Records
	}
	if shardRecs != st.JournalRecords {
		t.Errorf("per-shard records sum %d != total %d", shardRecs, st.JournalRecords)
	}
	if s, ok := m.Backend().(*core.SSP); ok {
		if msg := s.DebugCheckFrames(); msg != "" {
			t.Fatalf("SSP frame invariant violated: %s", msg)
		}
	}

	if err := recycle(m); err != nil {
		t.Fatalf("post-parallel multi-shard recovery: %v", err)
	}
	for i := 0; i < stressCores; i++ {
		for va, want := range refFinal[i] {
			if got := m.Core(0).Load64(va); got != want {
				t.Errorf("post-recovery %#x = %#x, want %#x", va, got, want)
			}
		}
	}
}

// recycle crashes and recovers the machine in place.
func recycle(m *Machine) error {
	m.Crash()
	m.Mem().PowerOn()
	m.Mem().ResetTiming()
	return m.Recover()
}

// TestParallelCrossShardCommits stresses concurrent global and local
// commits under -race: 4 goroutine-backed cores over 4 journal shards share
// a pool of pages, each guarded by a Lock. Roughly a quarter of every
// core's transactions are global — BeginGlobal sections writing 2-3 shared
// pages whose locks are acquired in ascending page order (the same total
// order everywhere, so no deadlock) — and the rest are single-page locals.
// Expected values are recorded in per-page maps mutated only while holding
// that page's lock, so the final durable state is well-defined despite the
// racy schedule. The test then checks the two-phase counters moved, the
// frame invariant holds, and the multi-shard image still crash-recovers to
// exactly the expected values.
func TestParallelCrossShardCommits(t *testing.T) {
	txns := 250
	if testing.Short() {
		txns = 60
	}
	const sharedPages = 8
	cfg := testConfig(SSP, stressCores)
	cfg.Layout.JournalShards = stressCores
	m := New(cfg)
	m.Heap().EnsureMapped(nil, 1, sharedPages)

	locks := make([]*Lock, sharedPages+1) // 1-indexed by page
	expect := make([]map[uint64]uint64, sharedPages+1)
	for p := 1; p <= sharedPages; p++ {
		locks[p] = m.NewLock()
		expect[p] = map[uint64]uint64{}
	}

	m.Run(func(c *Core) {
		rng := engine.NewRNG(0x6C0B + uint64(c.ID())*0x9E3779B97F4A7C15)
		for i := 0; i < txns; i++ {
			val := uint64(c.ID()+1)<<32 | uint64(i+1)
			if rng.Intn(4) == 0 {
				// Global: 2-3 distinct shared pages, ascending lock order.
				n := 2 + rng.Intn(2)
				seen := map[int]bool{}
				var pages []int
				for len(pages) < n {
					p := 1 + rng.Intn(sharedPages)
					if !seen[p] {
						seen[p] = true
						pages = append(pages, p)
					}
				}
				sort.Ints(pages)
				for _, p := range pages {
					c.Acquire(locks[p])
				}
				c.BeginGlobal()
				for _, p := range pages {
					line := rng.Intn(64)
					va := heapVA(p, line*64)
					c.Store64(va, val)
					expect[p][va] = val
				}
				c.Commit()
				for j := len(pages) - 1; j >= 0; j-- {
					c.Release(locks[pages[j]])
				}
				continue
			}
			// Local: one page under its lock.
			p := 1 + rng.Intn(sharedPages)
			c.Acquire(locks[p])
			c.Begin()
			line := rng.Intn(64)
			va := heapVA(p, line*64)
			c.Store64(va, val)
			expect[p][va] = val
			c.Commit()
			c.Release(locks[p])
		}
	})
	m.Drain()

	st := *m.Stats()
	if st.GlobalCommits == 0 {
		t.Fatal("no global commits took the two-phase path")
	}
	if st.PrepareRecords < 2*st.GlobalCommits {
		t.Errorf("prepare records %d < 2x global commits %d", st.PrepareRecords, st.GlobalCommits)
	}
	if s, ok := m.Backend().(*core.SSP); ok {
		if msg := s.DebugCheckFrames(); msg != "" {
			t.Fatalf("SSP frame invariant violated: %s", msg)
		}
	}
	verify := func(stage string) {
		c0 := m.Core(0)
		for p := 1; p <= sharedPages; p++ {
			for va, want := range expect[p] {
				if got := c0.Load64(va); got != want {
					t.Errorf("%s: %#x = %#x, want %#x", stage, va, got, want)
				}
			}
		}
	}
	verify("post-run")

	if err := recycle(m); err != nil {
		t.Fatalf("post-parallel cross-shard recovery: %v", err)
	}
	verify("post-recovery")
}

// TestParallelHeapArenas exercises concurrent allocation: each core
// allocates, links and frees from its own arena while the others do the
// same, then the heap is audited serially.
func TestParallelHeapArenas(t *testing.T) {
	rounds := 200
	if testing.Short() {
		rounds = 60
	}
	for _, b := range allBackends() {
		t.Run(b.String(), func(t *testing.T) {
			m := New(testConfig(b, stressCores))
			m.Heap().EnsureMapped(nil, 0, 0)
			arenas := make([]*heapArena, stressCores)
			for i := 0; i < stressCores; i++ {
				c := m.Core(i)
				c.Begin()
				arenas[i] = &heapArena{a: m.Heap().NewArena(c, 8)}
				c.Commit()
			}
			m.Run(func(c *Core) {
				ar := arenas[c.ID()]
				rng := engine.NewRNG(uint64(c.ID()) + 1)
				var live []uint64
				for r := 0; r < rounds; r++ {
					c.Begin()
					if len(live) > 0 && rng.Intn(3) == 0 {
						va := live[len(live)-1]
						live = live[:len(live)-1]
						ar.a.Free(c, va, 64)
					} else {
						va := ar.a.Alloc(c, 64)
						c.Store64(va, uint64(c.ID())<<48|uint64(r))
						live = append(live, va)
					}
					c.Commit()
				}
				ar.live = live
			})
			m.Drain()
			// Every live block still carries its owner's tag in the high bits.
			c0 := m.Core(0)
			for i, ar := range arenas {
				for _, va := range ar.live {
					if got := c0.Load64(va) >> 48; got != uint64(i) {
						t.Fatalf("arena %d block %#x tagged %d", i, va, got)
					}
				}
			}
			if msg := m.DebugValidateCaches(); msg != "" {
				t.Fatalf("cache invariant violated: %s", msg)
			}
		})
	}
}

type heapArena struct {
	a    *pheap.Arena
	live []uint64
}

// winParStress runs the local+global mixed commit script (the
// TestParallelGroupCommit shape: 4 cores × 2 journal shards, lock-guarded
// shared pages, 25% multi-shard globals) on a fresh machine and returns
// its aggregate stats plus the written values. windowParallel selects the
// speculate-and-replay mode; the window scheduler is on either way.
func winParStress(t *testing.T, txns int, windowParallel bool) (stats.Stats, []map[uint64]uint64) {
	t.Helper()
	const sharedPages = 8
	cfg := testConfig(SSP, stressCores)
	cfg.Layout.JournalShards = 2
	cfg.SSP.GroupCommitWindow = 4096
	cfg.TimeWindow = 4096
	cfg.WindowParallel = windowParallel
	m := New(cfg)
	m.Heap().EnsureMapped(nil, 1, sharedPages)

	locks := make([]*Lock, sharedPages+1)
	expect := make([]map[uint64]uint64, sharedPages+1)
	for p := 1; p <= sharedPages; p++ {
		locks[p] = m.NewLock()
		expect[p] = map[uint64]uint64{}
	}
	m.ResetStats()

	m.Run(func(c *Core) {
		rng := engine.NewRNG(0x10AD + uint64(c.ID())*0x9E3779B97F4A7C15)
		for i := 0; i < txns; i++ {
			val := uint64(c.ID()+1)<<32 | uint64(i+1)
			if rng.Intn(4) == 0 {
				n := 2 + rng.Intn(2)
				seen := map[int]bool{}
				var pages []int
				for len(pages) < n {
					p := 1 + rng.Intn(sharedPages)
					if !seen[p] {
						seen[p] = true
						pages = append(pages, p)
					}
				}
				sort.Ints(pages)
				for _, p := range pages {
					c.Acquire(locks[p])
				}
				c.BeginGlobal()
				for _, p := range pages {
					line := rng.Intn(64)
					va := heapVA(p, line*64)
					old := c.Load64(va) // exercise the speculative read path
					c.Store64(va, val^old>>48)
					expect[p][va] = val ^ old>>48
				}
				c.Commit()
				for j := len(pages) - 1; j >= 0; j-- {
					c.Release(locks[pages[j]])
				}
				continue
			}
			p := 1 + rng.Intn(sharedPages)
			c.Acquire(locks[p])
			c.Begin()
			line := rng.Intn(64)
			va := heapVA(p, line*64)
			c.Store64(va, val)
			expect[p][va] = val
			if rng.Intn(8) == 0 { // occasional rollback through the replayer
				c.Abort()
				delete(expect[p], va)
			} else {
				c.Commit()
			}
			c.Release(locks[p])
		}
	})
	m.Drain()

	st := *m.Stats()
	if s, ok := m.Backend().(*core.SSP); ok {
		if msg := s.DebugCheckFrames(); msg != "" {
			t.Fatalf("SSP frame invariant violated: %s", msg)
		}
	}
	c0 := m.Core(0)
	for p := 1; p <= sharedPages; p++ {
		for va, want := range expect[p] {
			if got := c0.Load64(va); got != want {
				t.Errorf("windowParallel=%v: %#x = %#x, want %#x", windowParallel, va, got, want)
			}
		}
	}
	if err := recycle(m); err != nil {
		t.Fatalf("post-run recovery: %v", err)
	}
	return st, expect
}

// TestWindowParallelStress is the -race gate for the speculate-and-replay
// path (Config.WindowParallel): the TestParallelGroupCommit mix — 4 cores
// over 2 journal shards, lock-guarded shared pages, global multi-shard
// commits, plus aborts driving the shadow-heap rollback — run under
// speculation, with data, frame invariants and crash recovery audited,
// and the aggregate Stats required byte-identical to the serial-grant
// scheduler on the same script.
func TestWindowParallelStress(t *testing.T) {
	txns := 250
	if testing.Short() {
		txns = 60
	}
	serial, _ := winParStress(t, txns, false)
	spec, _ := winParStress(t, txns, true)
	if serial.Commits == 0 || serial.Aborts == 0 || serial.GlobalCommits == 0 {
		t.Fatalf("stress mix degenerate: commits %d aborts %d globals %d",
			serial.Commits, serial.Aborts, serial.GlobalCommits)
	}
	if !reflect.DeepEqual(serial, spec) {
		t.Errorf("WindowParallel stats diverged from serial-grant:\nserial: %+v\nspec:   %+v", serial, spec)
	}
}

// TestParallelGroupCommit stresses the group-commit and eager-flush knobs
// under -race: 4 goroutine-backed cores over 2 journal shards (two cores
// share each ring, so group windows genuinely form) run concurrent local
// and global commits with EagerFlush on. Beyond data integrity and the
// frame invariant, it checks the group-commit accounting identity: every
// commit on the group path resolves as exactly one of leader/solo batch or
// follower, so batches + followers must equal the commits that took it
// (all commits except the multi-shard globals, which use the two-phase
// protocol).
func TestParallelGroupCommit(t *testing.T) {
	txns := 250
	if testing.Short() {
		txns = 60
	}
	const sharedPages = 8
	cfg := testConfig(SSP, stressCores)
	cfg.Layout.JournalShards = 2
	cfg.SSP.GroupCommitWindow = 4096
	cfg.SSP.EagerFlush = true
	m := New(cfg)
	m.Heap().EnsureMapped(nil, 1, sharedPages)

	locks := make([]*Lock, sharedPages+1)
	expect := make([]map[uint64]uint64, sharedPages+1)
	for p := 1; p <= sharedPages; p++ {
		locks[p] = m.NewLock()
		expect[p] = map[uint64]uint64{}
	}
	m.ResetStats()

	m.Run(func(c *Core) {
		rng := engine.NewRNG(0x6B0C + uint64(c.ID())*0x9E3779B97F4A7C15)
		for i := 0; i < txns; i++ {
			val := uint64(c.ID()+1)<<32 | uint64(i+1)
			if rng.Intn(4) == 0 {
				n := 2 + rng.Intn(2)
				seen := map[int]bool{}
				var pages []int
				for len(pages) < n {
					p := 1 + rng.Intn(sharedPages)
					if !seen[p] {
						seen[p] = true
						pages = append(pages, p)
					}
				}
				sort.Ints(pages)
				for _, p := range pages {
					c.Acquire(locks[p])
				}
				c.BeginGlobal()
				for _, p := range pages {
					line := rng.Intn(64)
					va := heapVA(p, line*64)
					c.Store64(va, val)
					expect[p][va] = val
				}
				c.Commit()
				for j := len(pages) - 1; j >= 0; j-- {
					c.Release(locks[pages[j]])
				}
				continue
			}
			p := 1 + rng.Intn(sharedPages)
			c.Acquire(locks[p])
			c.Begin()
			line := rng.Intn(64)
			va := heapVA(p, line*64)
			c.Store64(va, val)
			expect[p][va] = val
			c.Commit()
			c.Release(locks[p])
		}
	})
	m.Drain()

	st := *m.Stats()
	groupCommits := st.Commits - st.GlobalCommits
	if got := st.GroupCommitBatches + st.GroupCommitFollowers; got != groupCommits {
		t.Errorf("group accounting: batches %d + followers %d = %d, want %d group-path commits (commits %d - globals %d)",
			st.GroupCommitBatches, st.GroupCommitFollowers, got, groupCommits, st.Commits, st.GlobalCommits)
	}
	if st.GroupCommitBatches == 0 {
		t.Fatal("no group-commit batches recorded with GroupCommitWindow on")
	}
	if st.EagerFlushLines == 0 {
		t.Fatal("no eager flushes recorded with EagerFlush on")
	}
	if s, ok := m.Backend().(*core.SSP); ok {
		if msg := s.DebugCheckFrames(); msg != "" {
			t.Fatalf("SSP frame invariant violated: %s", msg)
		}
	}
	verify := func(stage string) {
		c0 := m.Core(0)
		for p := 1; p <= sharedPages; p++ {
			for va, want := range expect[p] {
				if got := c0.Load64(va); got != want {
					t.Errorf("%s: %#x = %#x, want %#x", stage, va, got, want)
				}
			}
		}
	}
	verify("post-run")

	if err := recycle(m); err != nil {
		t.Fatalf("post-parallel group-commit recovery: %v", err)
	}
	verify("post-recovery")
}
