package machine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
)

// This file is the deterministic bounded-lag window scheduler
// (Config.TimeWindow > 0): the machinery that makes a multi-core Run
// reproducible. Free-running mode (TimeWindow == 0) never constructs it and
// is bit-for-bit the historical behaviour.
//
// Model. Cores advance in lockstep windows of W simulated cycles. Within a
// window exactly ONE core executes at a time: the scheduler owns a single
// execution slot and grants it to the schedulable core with the lowest
// (clock, core-index) pair whose clock is still inside the current window.
// A core holds the slot across operations and yields at the next operation
// boundary once its clock reaches the window end; when no grantable core
// remains below the window end, the window advances to the earliest ready
// core's window and scheduling resumes. Every shared-hardware interaction —
// memory-bank and bus occupancy bookings, row-buffer transitions, cache
// ownership transfers, journal appends, group-commit admission, epoch age
// checks, TID/version allocation — therefore happens in one global order
// that is a pure function of the simulated state, never of the host
// schedule: two runs with the same seed and core count produce byte-
// identical Stats.
//
// The cost is host parallelism: a windowed Run uses one core's worth of
// host CPU regardless of the simulated core count. Simulated timing — the
// speedup curves, contention, barrier waits — is unaffected; W only bounds
// how far one core's bookings may run ahead of the laggard's clock
// (smaller W = finer-grained interleaving, more slot hand-offs).
//
// Blocking. A core that must wait on ANOTHER core's progress cannot simply
// block in host time — it holds the only execution slot. Instead it parks
// in one of four states and releases the slot:
//
//   - lock wait: Core.Acquire on a held Lock; the releaser hands the lock
//     to the waiting core with the lowest (clock, index) pair.
//   - ticket: a group-commit follower waiting on its leader's flush
//     (txn.WindowScheduler.TicketPark/TicketWake).
//   - rendezvous: a group-commit leader holding its window open for
//     followers (WaitCommitWindow); released once no schedulable core's
//     clock is at or below the deadline.
//   - external: a core blocked on a host-side event — a server worker's
//     request queue (Core.BlockExternal). The scheduler does not wait for
//     external cores; they re-enter as ready when the event arrives, so a
//     machine with external cores is live but NOT deterministic (the event
//     arrival order is the host's).

// schedState is one core's scheduler state.
type schedState uint8

const (
	schedReady      schedState = iota // wants the slot
	schedRunning                      // holds the slot (at most one core)
	schedLockWait                     // parked on a Lock's queue
	schedTicket                       // parked on a group-commit flush ticket
	schedRendezvous                   // group-commit leader holding its window open
	schedExternal                     // blocked on a host-side event
	schedDone                         // returned from Run's fn
)

// WindowStats describes one windowed Run's scheduling activity. Counters
// are deterministic (a pure function of the simulated execution); HostWait
// is host time and reported only — it never feeds back into scheduling or
// Stats.
type WindowStats struct {
	Window  engine.Cycles // configured W (0 = free-running, all else zero)
	Windows uint64        // lockstep window advances
	Grants  uint64        // execution-slot hand-offs
	// BarrierStalls counts op-boundary yields forced by the window barrier
	// (a core's clock reached the window end while others lagged).
	BarrierStalls uint64
	// HostWait is the total host time core goroutines spent blocked in the
	// scheduler — the window barrier's host-side cost. With N cores fully
	// serialised it approaches (N-1)/N of N*wall; its growth with W picks
	// the default window size (see `sspbench -exp scale`).
	HostWait time.Duration

	// SpecOps/SpecParks count, under Config.WindowParallel, the operations
	// the speculators recorded and the parks that re-synchronised them with
	// canonical replay (winpar.go). Both are deterministic — a pure
	// function of the program — and zero in serial-grant runs.
	SpecOps   uint64
	SpecParks uint64
}

// BarrierShare returns HostWait as a fraction of cores*wall — the share of
// aggregate host core-time spent waiting on the scheduler.
func (w WindowStats) BarrierShare(cores int, wall time.Duration) float64 {
	if wall <= 0 || cores <= 0 {
		return 0
	}
	return float64(w.HostWait) / (float64(cores) * float64(wall))
}

// winSched is the scheduler instance; one per Machine when TimeWindow > 0.
type winSched struct {
	m *Machine
	w engine.Cycles

	mu        sync.Mutex
	active    bool            // inside a windowed Run
	pending   int             // cores that have not reached enter() yet
	running   int             // core holding the slot, -1 when none
	windowEnd engine.Cycles   // exclusive upper bound of the current window
	state     []schedState
	rdvAt     []engine.Cycles // rendezvous deadline, valid while schedRendezvous
	grant     []chan struct{} // per-core slot token (cap 1)

	windows       uint64
	grants        uint64
	barrierStalls uint64
	hostWait      time.Duration

	// WindowParallel speculation counters, folded in from the per-core
	// specCores as the run's goroutines join (quiescent writes).
	specOps   uint64
	specParks uint64
}

func newWinSched(m *Machine, w engine.Cycles) *winSched {
	s := &winSched{
		m:       m,
		w:       w,
		running: -1,
		state:   make([]schedState, m.cfg.Cores),
		rdvAt:   make([]engine.Cycles, m.cfg.Cores),
		grant:   make([]chan struct{}, m.cfg.Cores),
	}
	for i := range s.grant {
		s.grant[i] = make(chan struct{}, 1)
	}
	return s
}

// start arms the scheduler for one Run. Called while the machine is
// quiescent, before the core goroutines exist; no grant happens until every
// core has entered (the start barrier), so the first grant — like all later
// ones — is a function of simulated state only.
func (s *winSched) start() {
	s.active = true
	s.pending = len(s.state)
	s.running = -1
	for i := range s.state {
		s.state[i] = schedReady
	}
	min := s.m.clocks[0]
	for _, c := range s.m.clocks[1:] {
		if c < min {
			min = c
		}
	}
	s.windowEnd = (min/s.w + 1) * s.w
	s.windows, s.grants, s.barrierStalls, s.hostWait = 0, 0, 0, 0
	s.specOps, s.specParks = 0, 0
}

// stop disarms the scheduler after the core goroutines join.
func (s *winSched) stop() {
	s.active = false
	for i, st := range s.state {
		if st != schedDone {
			panic(fmt.Sprintf("machine: windowed Run finished with core %d in scheduler state %d", i, st))
		}
	}
}

// enter is a core goroutine's first act inside Run: join the start barrier
// and wait for the first grant.
func (s *winSched) enter(id int) {
	s.mu.Lock()
	s.pending--
	s.parkLocked(id, schedReady)
	s.mu.Unlock()
}

// exit marks the core done and hands the slot on; the goroutine returns.
func (s *winSched) exit(id int) {
	s.mu.Lock()
	s.state[id] = schedDone
	if s.running == id {
		s.running = -1
	}
	s.scheduleLocked()
	s.mu.Unlock()
}

// yield is the window barrier: the running core's clock reached the window
// end, so it re-queues as ready and waits to be granted again (immediately,
// if it is still the earliest core once the window advances).
func (s *winSched) yield(id int) {
	s.mu.Lock()
	s.barrierStalls++
	s.parkLocked(id, schedReady)
	s.mu.Unlock()
}

// parkLocked records the core in state st, releases the slot, reschedules,
// and blocks until the scheduler grants the slot back. Caller holds mu on
// entry and regains it before return. Must run on core id's goroutine.
func (s *winSched) parkLocked(id int, st schedState) {
	s.state[id] = st
	if s.running == id {
		s.running = -1
	}
	s.scheduleLocked()
	s.mu.Unlock()
	t0 := time.Now()
	<-s.grant[id]
	s.mu.Lock()
	s.hostWait += time.Since(t0)
}

// scheduleLocked hands the free slot to the best grantable core, advancing
// the window when every ready core is past its end. It resolves rendezvous
// releases first: their conditions depend on the very states this call is
// reacting to. Caller holds mu. No-op while a core runs or before the
// start barrier completes.
func (s *winSched) scheduleLocked() {
	if !s.active || s.running != -1 || s.pending > 0 {
		return
	}
	s.releaseRendezvousLocked()
	for {
		best := -1
		anyReady := false
		var bestClock, minReady engine.Cycles
		for i, st := range s.state {
			if st != schedReady {
				continue
			}
			c := s.m.clocks[i]
			if !anyReady || c < minReady {
				anyReady, minReady = true, c
			}
			if c >= s.windowEnd {
				continue
			}
			// Ascending index scan: ties on clock keep the lower index.
			if best == -1 || c < bestClock {
				best, bestClock = i, c
			}
		}
		if best != -1 {
			s.grantLocked(best)
			return
		}
		if !anyReady {
			// Everyone is parked or done. Lock waiters resume via their
			// holder's Release, tickets via their leader (whose rendezvous
			// was just resolved above), externals via their host event.
			return
		}
		// Window barrier: advance to the window containing the earliest
		// ready clock (one advance even when idle gaps skip many windows).
		s.windowEnd = (minReady/s.w + 1) * s.w
		s.windows++
	}
}

// grantLocked hands the slot to core id. The token channel has capacity 1
// and at most one token is ever outstanding per core (a core parks only
// after consuming its previous grant).
func (s *winSched) grantLocked(id int) {
	s.state[id] = schedRunning
	s.running = id
	s.grants++
	s.grant[id] <- struct{}{}
}

// releaseRendezvousLocked readies every rendezvous core whose wait
// condition now holds. Ascending index order; releasing one core to ready
// can only extend (never break) another's wait, so a single pass is
// deterministic and complete.
func (s *winSched) releaseRendezvousLocked() {
	for i, st := range s.state {
		if st == schedRendezvous && !s.commitMayArriveLocked(i, s.rdvAt[i]) {
			s.state[i] = schedReady
		}
	}
}

// commitMayArriveLocked reports whether any core other than self could
// still commit at a simulated time <= deadline: it is schedulable (ready or
// running) with a clock at or below the deadline. Parked cores do not
// count — a lock waiter resumes at or after its holder's release time, and
// ticket/rendezvous/external cores are mid-commit or host-blocked — which
// is exactly what makes two concurrent leaders (or a leader holding a Lock
// a laggard wants) deadlock-free.
func (s *winSched) commitMayArriveLocked(self int, deadline engine.Cycles) bool {
	for j, st := range s.state {
		if j == self {
			continue
		}
		if (st == schedReady || st == schedRunning) && s.m.clocks[j] <= deadline {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Lock integration (Core.Acquire/Release in windowed mode). The lock's
// queue and holder are guarded by the scheduler's mutex; host-level mutual
// exclusion needs no separate mutex because only one core executes at a
// time.

// lockAcquire takes l for core id, parking until the current holder hands
// it over. On return the core holds both the lock and the slot.
func (s *winSched) lockAcquire(id int, l *Lock) {
	s.mu.Lock()
	if l.holder < 0 {
		l.holder = id
	} else {
		l.q = append(l.q, id)
		s.parkLocked(id, schedLockWait)
	}
	s.mu.Unlock()
}

// lockRelease frees l at core id's current clock and hands it to the
// waiting core with the lowest (clock, index) pair, advancing that core's
// clock to the hand-off point so later grants order it by its true resume
// time. The chosen waiter becomes ready; it runs when the scheduler next
// grants it the slot.
func (s *winSched) lockRelease(id int, l *Lock) {
	s.mu.Lock()
	l.freeAt = s.m.clocks[id]
	if len(l.q) == 0 {
		l.holder = -1
	} else {
		best := 0
		for i := 1; i < len(l.q); i++ {
			ci, cb := l.q[i], l.q[best]
			if s.m.clocks[ci] < s.m.clocks[cb] ||
				(s.m.clocks[ci] == s.m.clocks[cb] && ci < cb) {
				best = i
			}
		}
		w := l.q[best]
		l.q = append(l.q[:best], l.q[best+1:]...)
		l.holder = w
		if s.m.clocks[w] < l.freeAt {
			s.m.clocks[w] = l.freeAt
		}
		s.state[w] = schedReady
	}
	s.mu.Unlock()
}

// external runs wait() with the core parked as host-blocked, then re-enters
// the scheduler. The parked goroutine is the one executing wait() — unlike
// the other parks, which block on the grant token immediately.
func (s *winSched) external(id int, wait func()) {
	s.mu.Lock()
	s.state[id] = schedExternal
	if s.running == id {
		s.running = -1
	}
	s.scheduleLocked()
	s.mu.Unlock()
	wait()
	s.mu.Lock()
	s.state[id] = schedReady
	s.scheduleLocked()
	s.mu.Unlock()
	t0 := time.Now()
	<-s.grant[id]
	s.mu.Lock()
	s.hostWait += time.Since(t0)
	s.mu.Unlock()
}

// ---------------------------------------------------------------------------
// txn.WindowScheduler implementation (the backend-facing hooks).

// Windowed reports whether the scheduler currently governs execution.
// Called from core goroutines during Run; active flips only while the
// machine is quiescent, so the read is ordered by the goroutine start/join.
func (s *winSched) Windowed() bool { return s.active }

// WaitCommitWindow implements txn.WindowScheduler.
func (s *winSched) WaitCommitWindow(core int, deadline engine.Cycles) {
	if !s.active {
		return
	}
	s.mu.Lock()
	if s.commitMayArriveLocked(core, deadline) {
		s.rdvAt[core] = deadline
		s.parkLocked(core, schedRendezvous)
	}
	s.mu.Unlock()
}

// TicketPark implements txn.WindowScheduler.
func (s *winSched) TicketPark(core int) {
	s.mu.Lock()
	s.parkLocked(core, schedTicket)
	s.mu.Unlock()
}

// TicketWake implements txn.WindowScheduler. The caller keeps running; the
// woken cores are granted in (clock, index) order at its next yield.
func (s *winSched) TicketWake(cores []int) {
	s.mu.Lock()
	for _, c := range cores {
		if s.state[c] == schedTicket {
			s.state[c] = schedReady
		}
	}
	s.mu.Unlock()
}

// snapshot returns the last Run's stats. Quiescent-only.
func (s *winSched) snapshot() WindowStats {
	return WindowStats{
		Window:        s.w,
		Windows:       s.windows,
		Grants:        s.grants,
		BarrierStalls: s.barrierStalls,
		HostWait:      s.hostWait,
		SpecOps:       s.specOps,
		SpecParks:     s.specParks,
	}
}
