package machine

import (
	"encoding/binary"
	"fmt"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/txn"
)

// Core is a simulated core's programming interface: the ISA extension of
// §3.1 (ATOMIC_BEGIN / ATOMIC_STORE / ATOMIC_END) plus ordinary loads and
// non-transactional stores, all advancing the core's clock.
//
// Core implements pheap.Tx, so the allocator can be called mid-transaction.
//
// Execution routing: each public method either executes directly (the exec*
// methods below, the historical behaviour) or, inside a WindowParallel Run,
// records the operation into the core's speculative log for deterministic
// replay (winpar.go). spec is non-nil exactly while such a Run is active;
// the program's goroutine then speculates against a functional heap image
// while the core's replayer goroutine drives the exec* paths — the only
// code that ever touches clocks, stats, or simulated hardware.
type Core struct {
	m     *Machine
	id    int
	inTxn bool

	// Per-transaction write-set characterisation (virtual lines/pages),
	// feeding the Table 3 statistics.
	wsLines map[uint64]struct{}
	wsPages map[uint64]struct{}

	// spec is the core's speculative state during a WindowParallel Run
	// (nil otherwise). Written only while the machine is quiescent.
	spec *specCore
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Now returns the core's clock. Under WindowParallel the canonical clock is
// only known once replay catches up, so the call parks the speculator.
func (c *Core) Now() engine.Cycles {
	if c.spec != nil {
		return c.spec.park(specOp{kind: opNow}).t
	}
	return c.execNow()
}

func (c *Core) execNow() engine.Cycles { return c.m.clocks[c.id] }

// SetNow moves the core's clock forward (drivers use it to align clients);
// moving backwards panics.
func (c *Core) SetNow(t engine.Cycles) {
	if c.spec != nil {
		c.spec.push(specOp{kind: opSetNow, arg: uint64(t)})
		return
	}
	c.execSetNow(t)
}

func (c *Core) execSetNow(t engine.Cycles) {
	if t < c.m.clocks[c.id] {
		panic("machine: clock moved backwards")
	}
	c.m.clocks[c.id] = t
	c.tick()
}

// Compute charges n cycles of pure computation.
func (c *Core) Compute(n engine.Cycles) {
	if c.spec != nil {
		c.spec.push(specOp{kind: opCompute, arg: uint64(n)})
		return
	}
	c.execCompute(n)
}

func (c *Core) execCompute(n engine.Cycles) {
	c.m.clocks[c.id] += n
	c.tick()
}

func (c *Core) op() {
	c.m.clocks[c.id] += c.m.cfg.OpCycles
	c.tick()
}

// tick is the window scheduler's op-boundary hook: once the core's clock
// reaches the current window's end it yields the execution slot (see
// winsched.go). Free-running and serial execution pay one nil check. The
// unsynchronised windowEnd read is ordered by the grant that let this core
// run — windowEnd only changes while no core holds the slot.
func (c *Core) tick() {
	if s := c.m.sched; s != nil && s.active && c.m.clocks[c.id] >= s.windowEnd {
		s.yield(c.id)
	}
}

// BlockExternal runs wait() with the core marked as blocked on a host-side
// event — a channel receive, a timer — so a windowed Run's lockstep
// barrier does not hold every other core hostage to an event that may
// never come (the network server's worker queues). Simulated time does not
// advance while blocked. Outside windowed mode it just runs wait().
// Determinism is forfeited for the run: external wake-ups arrive in host
// order.
func (c *Core) BlockExternal(wait func()) {
	if c.spec != nil {
		c.spec.blockExternal(wait)
		return
	}
	c.execBlockExternal(wait)
}

func (c *Core) execBlockExternal(wait func()) {
	if s := c.m.sched; s != nil && s.active {
		s.external(c.id, wait)
		return
	}
	wait()
}

// begin is the shared section-opening bookkeeping; start is the backend's
// Begin or BeginGlobal.
func (c *Core) begin(start func(core int, at engine.Cycles) engine.Cycles) {
	if c.inTxn {
		panic("machine: nested Begin")
	}
	c.op()
	c.m.clocks[c.id] = start(c.id, c.m.clocks[c.id])
	c.inTxn = true
	c.wsLines = make(map[uint64]struct{})
	c.wsPages = make(map[uint64]struct{})
}

// Begin opens a failure-atomic section.
func (c *Core) Begin() {
	if c.spec != nil {
		c.spec.begin(specOp{kind: opBegin})
		return
	}
	c.execBegin()
}

func (c *Core) execBegin() { c.begin(c.m.backend.Begin) }

// BeginGlobal opens a failure-atomic section that may write pages owned by
// multiple arenas/journal shards — a cross-shard "global" transaction.
// Commit then guarantees all-or-nothing durability across every shard the
// section touched (SSP appends two-phase prepare/end records; see
// internal/core). On backends without a distributed-commit protocol, or
// when the machine runs a single metadata shard, it behaves exactly like
// Begin. Isolation remains the program's job: acquire every involved
// structure's Lock (in a consistent order) around the section.
func (c *Core) BeginGlobal() {
	if c.spec != nil {
		c.spec.begin(specOp{kind: opBeginGlobal})
		return
	}
	c.execBeginGlobal()
}

func (c *Core) execBeginGlobal() {
	if gb, ok := c.m.backend.(txn.GlobalBackend); ok {
		c.begin(gb.BeginGlobal)
		return
	}
	c.begin(c.m.backend.Begin)
}

// Commit closes the section; on return its writes are durable.
func (c *Core) Commit() {
	if c.spec != nil {
		c.spec.commit(specOp{kind: opCommit})
		return
	}
	c.execCommit()
}

func (c *Core) execCommit() {
	if !c.inTxn {
		panic("machine: Commit outside transaction")
	}
	c.op()
	c.m.clocks[c.id] = c.m.backend.Commit(c.id, c.m.clocks[c.id])
	c.inTxn = false
	c.m.ws[c.id].record(len(c.wsLines), len(c.wsPages))
}

// CommitRelaxed closes the section with relaxed durability: on return its
// writes are acknowledged and visible, and they become durable within the
// backend's epoch bound (ssp.Config.DurabilityEpoch) — or at the next
// Sync/Drain, whichever is first. A crash before then loses the section
// atomically, never partially. On backends without the relaxed mode — or
// with DurabilityEpoch = 0 — this is exactly Commit.
func (c *Core) CommitRelaxed() {
	if c.spec != nil {
		c.spec.commit(specOp{kind: opCommitRelaxed})
		return
	}
	c.execCommitRelaxed()
}

func (c *Core) execCommitRelaxed() {
	if !c.inTxn {
		panic("machine: Commit outside transaction")
	}
	rb, ok := c.m.backend.(txn.RelaxedBackend)
	if !ok {
		c.execCommit()
		return
	}
	c.op()
	c.m.clocks[c.id] = rb.CommitRelaxed(c.id, c.m.clocks[c.id])
	c.inTxn = false
	c.m.ws[c.id].record(len(c.wsLines), len(c.wsPages))
}

// Sync is the durability upgrade barrier for relaxed commits: on return,
// every section this machine acknowledged before the call — relaxed or not
// — is durable. A no-op on backends without the relaxed mode.
func (c *Core) Sync() {
	if c.spec != nil {
		c.spec.push(specOp{kind: opSync})
		return
	}
	c.execSync()
}

func (c *Core) execSync() {
	rb, ok := c.m.backend.(txn.RelaxedBackend)
	if !ok {
		return
	}
	c.op()
	c.m.clocks[c.id] = rb.Sync(c.id, c.m.clocks[c.id])
}

// HardenIdle hardens this core's own metadata shard's open
// relaxed-durability epoch, if any, and reports whether a harden ran. The
// epoch age bound is billed to the next committer, so a core that goes
// quiet can leave acknowledged-but-volatile sections pending until the
// next Sync or Drain; serving loops call HardenIdle from their idle path
// instead (judging "idle" in host time — an idle core's simulated clock
// is frozen). A no-op, returning false, on backends without the relaxed
// mode and when the shard has nothing unsealed.
func (c *Core) HardenIdle() bool {
	if c.spec != nil {
		return c.spec.park(specOp{kind: opHardenIdle}).b
	}
	return c.execHardenIdle()
}

func (c *Core) execHardenIdle() bool {
	ih, ok := c.m.backend.(txn.IdleHardener)
	if !ok {
		return false
	}
	done, hardened := ih.HardenIdle(c.id, c.m.clocks[c.id])
	if !hardened {
		return false // free: an idle poll that finds nothing charges nothing
	}
	c.m.clocks[c.id] = done
	return true
}

// Abort rolls the open section back. Under WindowParallel this parks: the
// speculative image re-converges with the canonical (rolled-back) state
// before the program continues.
func (c *Core) Abort() {
	if c.spec != nil {
		c.spec.abort()
		return
	}
	c.execAbort()
}

func (c *Core) execAbort() {
	if !c.inTxn {
		panic("machine: Abort outside transaction")
	}
	c.op()
	c.m.clocks[c.id] = c.m.backend.Abort(c.id, c.m.clocks[c.id])
	c.inTxn = false
}

// InTxn reports whether a section is open.
func (c *Core) InTxn() bool {
	if c.spec != nil {
		return c.spec.inTxn
	}
	return c.inTxn
}

// StoreBytes performs ATOMIC_STOREs of data at va inside a transaction, or
// plain persistent stores outside one, splitting at cache-line boundaries.
func (c *Core) StoreBytes(va uint64, data []byte) {
	if c.spec != nil {
		c.spec.store(va, data)
		return
	}
	c.execStoreBytes(va, data)
}

func (c *Core) execStoreBytes(va uint64, data []byte) {
	for len(data) > 0 {
		n := memsim.LineBytes - int(va&(memsim.LineBytes-1))
		if n > len(data) {
			n = len(data)
		}
		c.op()
		if c.inTxn {
			c.m.clocks[c.id] = c.m.backend.Store(c.id, va, data[:n], c.m.clocks[c.id])
			c.wsLines[va>>memsim.LineShift] = struct{}{}
			c.wsPages[va>>memsim.PageShift] = struct{}{}
		} else {
			c.m.clocks[c.id] = c.m.backend.StoreNT(c.id, va, data[:n], c.m.clocks[c.id])
		}
		va += uint64(n)
		data = data[n:]
	}
}

// LoadBytes reads len(buf) bytes at va, splitting at line boundaries.
func (c *Core) LoadBytes(va uint64, buf []byte) {
	if c.spec != nil {
		c.spec.load(va, buf)
		return
	}
	c.execLoadBytes(va, buf)
}

func (c *Core) execLoadBytes(va uint64, buf []byte) {
	for len(buf) > 0 {
		n := memsim.LineBytes - int(va&(memsim.LineBytes-1))
		if n > len(buf) {
			n = len(buf)
		}
		c.op()
		c.m.clocks[c.id] = c.m.backend.Load(c.id, va, buf[:n], c.m.clocks[c.id])
		va += uint64(n)
		buf = buf[n:]
	}
}

// Store64 writes an aligned 8-byte word.
func (c *Core) Store64(va uint64, v uint64) {
	if va%8 != 0 {
		panic(fmt.Sprintf("machine: unaligned Store64 at %#x", va))
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.StoreBytes(va, b[:])
}

// Load64 reads an aligned 8-byte word.
func (c *Core) Load64(va uint64) uint64 {
	if va%8 != 0 {
		panic(fmt.Sprintf("machine: unaligned Load64 at %#x", va))
	}
	var b [8]byte
	c.LoadBytes(va, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Acquire takes the lock, advancing the clock past the current holder and
// charging the hand-off cost. In free-running concurrent mode the
// acquisition also takes the lock's host mutex, so the critical section is
// exclusive in host time exactly as it is in simulated time; in windowed
// mode the scheduler queues the core and the releaser hands the lock over
// in deterministic (clock, core-index) order. Release must run on the same
// goroutine. Under WindowParallel the call parks: the canonical hand-off
// order — and, transitively, the visibility of the previous holder's
// writes in the speculative image — is established by replay before the
// speculator proceeds into the critical section.
func (c *Core) Acquire(l *Lock) {
	if c.spec != nil {
		c.spec.park(specOp{kind: opAcquire, lk: l})
		return
	}
	c.execAcquire(l)
}

func (c *Core) execAcquire(l *Lock) {
	if s := c.m.sched; s != nil && s.active {
		c.tick()
		s.lockAcquire(c.id, l)
	} else if c.m.parallel {
		l.mu.Lock()
	}
	t := engine.MaxCycles(c.m.clocks[c.id], l.freeAt) + c.m.cfg.LockCycles
	c.m.clocks[c.id] = t
}

// Release frees the lock at the core's current time.
func (c *Core) Release(l *Lock) {
	if c.spec != nil {
		c.spec.push(specOp{kind: opRelease, lk: l})
		return
	}
	c.execRelease(l)
}

func (c *Core) execRelease(l *Lock) {
	if s := c.m.sched; s != nil && s.active {
		s.lockRelease(c.id, l)
		return
	}
	l.freeAt = c.m.clocks[c.id]
	if c.m.parallel {
		l.mu.Unlock()
	}
}
