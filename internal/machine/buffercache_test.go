package machine

import (
	"testing"

	"repro/internal/core"
)

// Machine-level tests of the DRAM buffer tier (Config.DRAMCacheFrames) and
// the software wear-leveling rotation (core.Config.WearRotateWrites): the
// counter identities under real cache-hierarchy traffic, crash semantics,
// and data preservation across rotations. The per-frame mechanics are unit
// tested in internal/buffercache; the crash windows are swept by
// internal/crashsweep.

// cacheConfig shrinks the L3 so a ~1 MiB working set spills into the buffer
// tier.
func cacheConfig(frames int) Config {
	cfg := testConfig(SSP, 1)
	cfg.Cache.L3Bytes = 128 << 10
	cfg.DRAMCacheFrames = frames
	return cfg
}

func TestDRAMCacheAccountingIdentity(t *testing.T) {
	m := New(cacheConfig(64))
	c := m.Core(0)
	// 96 pages = 384 KiB, three times the shrunken L3 but within the test
	// config's SSP slot pool.
	const pages = 96
	m.Heap().EnsureMapped(nil, 0, pages-1)

	// Non-transactional stores dirty one line per page and strided loads
	// force refills; with the working set far past the LLC, victims and
	// misses both land in the buffer tier.
	for round := 0; round < 4; round++ {
		for p := 0; p < pages; p++ {
			c.Store64(heapVA(p, 0), uint64(round+1))
			_ = c.Load64(heapVA((p*67)%pages, 128))
		}
	}
	m.Drain()

	st := m.Stats()
	if st.DRAMCacheReads == 0 {
		t.Fatal("no buffered reads: the traffic never reached the buffer tier")
	}
	if st.DRAMCacheHits+st.DRAMCacheMisses != st.DRAMCacheReads {
		t.Errorf("hits %d + misses %d != reads %d",
			st.DRAMCacheHits, st.DRAMCacheMisses, st.DRAMCacheReads)
	}
	if st.DRAMCacheHits == 0 {
		t.Error("no buffer hits over a re-read working set")
	}
	if st.DRAMCacheAbsorbed == 0 {
		t.Error("no victim write-backs absorbed")
	}
	if msg := m.DebugValidateCaches(); msg != "" {
		t.Fatalf("cache invariant violated: %s", msg)
	}
}

func TestDRAMCacheCommittedSurvivesCrash(t *testing.T) {
	m := New(cacheConfig(64))
	c := m.Core(0)
	m.Heap().EnsureMapped(nil, 1, 2)

	c.Begin()
	c.Store64(heapVA(1, 0), 0xD00D)
	c.Commit()
	// A volatile store may sit absorbed (dirty, DRAM-only) when the power
	// fails; it is allowed to vanish — the committed value is not.
	c.Store64(heapVA(2, 0), 0xFEED)

	if err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	if v := c.Load64(heapVA(1, 0)); v != 0xD00D {
		t.Fatalf("committed value lost across crash with buffer tier on: %#x", v)
	}
}

func TestWearRotationLevelsAndPreservesData(t *testing.T) {
	cfg := testConfig(SSP, 1)
	// A tiny TLB cycles pages out of reach so they consolidate — the
	// rotation point — and a low threshold makes rotations frequent.
	cfg.TLBEntries = 4
	cfg.STLBEntries = 0
	cfg.SSP.WearRotateWrites = 16
	m := New(cfg)
	c := m.Core(0)
	const pages, lines = 16, 8
	m.Heap().EnsureMapped(nil, 0, pages-1)

	var want [pages][lines]uint64
	for i := 0; i < 400; i++ {
		p := i % pages
		li := (i / pages) % lines
		c.Begin()
		c.Store64(heapVA(p, li*64), uint64(i+1))
		c.Commit()
		want[p][li] = uint64(i + 1)
	}
	m.Drain()

	st := m.Stats()
	if st.WearRotations == 0 {
		t.Fatal("no rotations fired with a 16-write threshold")
	}
	if s, ok := m.Backend().(*core.SSP); ok {
		if msg := s.DebugCheckFrames(); msg != "" {
			t.Fatalf("frame invariant violated after rotation: %s", msg)
		}
	}
	check := func(when string) {
		for p := 0; p < pages; p++ {
			for li := 0; li < lines; li++ {
				if v := c.Load64(heapVA(p, li*64)); v != want[p][li] {
					t.Fatalf("%s: page %d line %d = %#x, want %#x", when, p, li, v, want[p][li])
				}
			}
		}
	}
	check("after rotations")
	if err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	check("after crash+recovery")
	t.Logf("rotations: %d, consolidations: %d", st.WearRotations, st.Consolidations)
}
