package machine

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/txn"
	"repro/internal/vm"
)

// This file is the host-parallel windowed execution mode
// (Config.WindowParallel, requires Config.TimeWindow > 0): a
// speculate-and-replay split that recovers host parallelism from the
// serial-grant window scheduler without giving up one bit of its
// determinism.
//
// The problem. The bounded-lag scheduler (winsched.go) owns a single
// execution slot, so a windowed Run uses one core's worth of host CPU no
// matter how many cores it simulates. But the slot only needs to serialise
// the SIMULATED side of each operation — the bank bookings, cache ownership
// transfers, journal appends — not the program logic deciding what to do
// next.
//
// The split. Each simulated core becomes two goroutines:
//
//   - The SPECULATOR runs the program (Run's fn). Core methods route here
//     via Core.spec: loads and stores execute against a functional heap
//     image (the run's shared shadow heap plus a per-core overlay) with no
//     clocks, no caches, no backend — and every operation is appended to
//     the core's ordered op log.
//   - The REPLAYER consumes the log and drives each operation through the
//     real exec* paths (coreapi.go) under the UNCHANGED serial-grant
//     scheduler: it enters the scheduler as the core, parks on lock queues,
//     tickets and window barriers exactly as the program goroutine did in
//     serial-grant mode. Every arbitration — grant order, lock hand-off,
//     group-commit admission — is therefore resolved by the same code in
//     the same (simulated clock, core index) order, and Stats, histograms
//     and per-core rows come out byte-identical to serial-grant for the
//     same seed.
//
// Speculators run concurrently on the host with no shared-hardware
// coupling; the op channel's bounded capacity keeps each one a bounded
// number of operations ahead of its replayer (the host-side analogue of
// the bounded-lag window).
//
// Synchronisation points. Operations whose RESULT the program needs —
// Acquire (cross-core visibility), Now (the canonical clock), Abort (the
// rollback image), HardenIdle, BlockExternal, heap page mapping — park the
// speculator until the replayer has executed them canonically. The park
// reply doubles as the memory fence: on wake the speculator discards its
// overlay (epoch bump) and reads through to the shadow heap, which at that
// moment reflects every canonically-ordered prior store. For
// lock-disciplined programs (the repo's contract: shared persistent data is
// accessed under a Lock) the Acquire park gives the speculator
// happens-before with every store the previous holder made, so speculation
// never observes a value the canonical execution would not have. The
// replayer cross-checks regardless: every speculated load is re-executed
// canonically and compared byte-for-byte, so an unsynchronised sharing bug
// panics with a divergence report instead of silently corrupting the run.
//
// What WindowParallel cannot speed up: the replayers still serialise all
// simulated-hardware work on the scheduler's single slot, so by Amdahl's
// law the host speedup is bounded by the share of host time the program
// logic (now off the critical path) used to occupy. In this simulator the
// exec paths dominate — see the measured bound in ROADMAP.md §PR 10 —
// making the win modest by construction; the mode's value is the
// architecture (program execution off the arbitration path) plus unchanged
// determinism, not a large wall-clock cut.

// Speculative operation kinds (specOp.kind). Parking ops (the speculator
// blocks for a reply) are marked P.
const (
	opStore         = uint8(iota) // one ≤line-sized store segment
	opLoad                        // one ≤line-sized load segment + observed bytes
	opCompute                     // Compute(arg cycles)
	opBegin                       // Begin
	opBeginGlobal                 // BeginGlobal
	opCommit                      // Commit
	opCommitRelaxed               // CommitRelaxed
	opSync                        // Sync
	opRelease                     // Release(lk)
	opSetNow                      // SetNow(arg)
	opAcquire                     // P: Acquire(lk); reply fences the overlay
	opNow                         // P: Now(); reply carries the clock
	opHardenIdle                  // P: HardenIdle(); reply carries the bool
	opAbort                       // P: Abort; shadow reverted before reply
	opEnsureMapped                // P: map heap VPNs [va, arg]
	opExternal                    // P: BlockExternal(specCore.wait)
	opDone                        // fn returned; replayer exits
)

// specOp is one logged operation. Store/load segments are split at cache
// line boundaries exactly as the exec paths split them, so the replayed
// instruction stream is identical to the serial-grant one.
type specOp struct {
	kind uint8
	n    uint8 // data length for opStore/opLoad
	va   uint64
	arg  uint64
	lk   *Lock
	data [memsim.LineBytes]byte
}

// specReply is a parking op's result.
type specReply struct {
	t engine.Cycles
	b bool
}

const (
	specBatchOps    = 16 // ops per channel send (amortises channel cost)
	specChanBatches = 64 // in-flight batches: the speculation lag bound
)

// ovPage is one page of a speculator's private overlay: bytes it stored
// since its last park, bit-masked per byte. epoch lazily invalidates the
// whole overlay at a park reply without touching memory.
type ovPage struct {
	epoch uint64
	mask  [memsim.PageBytes / 64]uint64
	data  [memsim.PageBytes]byte
}

// specCore is one core's speculative state during a WindowParallel Run.
// Only the speculator goroutine touches overlay/epoch/batch/inTxn; ops and
// reply connect it to the replayer.
type specCore struct {
	sh    *winShadow
	ops   chan []specOp
	reply chan specReply
	batch []specOp
	wait  func() // side slot for opExternal (set before the park)

	inTxn   bool // program-visible InTxn (the exec-side flag lags behind)
	epoch   uint64
	overlay []*ovPage

	specOps, specParks uint64
}

func (s *specCore) push(op specOp) {
	s.specOps++
	s.batch = append(s.batch, op)
	if len(s.batch) >= specBatchOps {
		s.flush()
	}
}

func (s *specCore) flush() {
	if len(s.batch) == 0 {
		return
	}
	s.ops <- s.batch
	s.batch = make([]specOp, 0, specBatchOps)
}

// park logs op, waits for the replayer to execute it canonically, and
// invalidates the overlay: the shadow heap is current as of the park, so
// reading through is both correct and what re-converges speculation with
// canonical state (after an Abort's rollback, for instance).
func (s *specCore) park(op specOp) specReply {
	s.specParks++
	s.push(op)
	s.flush()
	r := <-s.reply
	s.epoch++
	return r
}

func (s *specCore) begin(op specOp) {
	if s.inTxn {
		panic("machine: nested Begin")
	}
	s.push(op)
	s.inTxn = true
}

func (s *specCore) commit(op specOp) {
	if !s.inTxn {
		panic("machine: Commit outside transaction")
	}
	s.push(op)
	s.inTxn = false
}

func (s *specCore) abort() {
	if !s.inTxn {
		panic("machine: Abort outside transaction")
	}
	s.park(specOp{kind: opAbort})
	s.inTxn = false
}

func (s *specCore) ensureMapped(first, last int) {
	s.park(specOp{kind: opEnsureMapped, va: uint64(first), arg: uint64(last)})
}

func (s *specCore) blockExternal(wait func()) {
	s.wait = wait
	s.park(specOp{kind: opExternal})
	s.wait = nil
}

// store speculatively executes a StoreBytes: overlay write + log, split at
// line boundaries like execStoreBytes.
func (s *specCore) store(va uint64, data []byte) {
	for len(data) > 0 {
		n := memsim.LineBytes - int(va&(memsim.LineBytes-1))
		if n > len(data) {
			n = len(data)
		}
		s.write(va, data[:n])
		op := specOp{kind: opStore, n: uint8(n), va: va}
		copy(op.data[:], data[:n])
		s.push(op)
		va += uint64(n)
		data = data[n:]
	}
}

// load speculatively executes a LoadBytes: overlay∪shadow read + log with
// the observed bytes, which the replayer cross-checks against the
// canonical value.
func (s *specCore) load(va uint64, buf []byte) {
	for len(buf) > 0 {
		n := memsim.LineBytes - int(va&(memsim.LineBytes-1))
		if n > len(buf) {
			n = len(buf)
		}
		s.read(va, buf[:n])
		op := specOp{kind: opLoad, n: uint8(n), va: va}
		copy(op.data[:], buf[:n])
		s.push(op)
		va += uint64(n)
		buf = buf[n:]
	}
}

// read resolves dst from the overlay (bytes this core stored since its
// last park) over the shadow heap. The segment never crosses a page.
// Overlay-covered bytes must not touch the shadow page at all: this core's
// own replayer may be flushing exactly those logged stores concurrently,
// and while the overlay would mask the racy value anyway, the read itself
// would trip the race detector. Uncovered bytes are safe: this core has
// not stored them since its last park (its replayer will not write them
// past the park's reply edge), and another core's flush is ordered before
// our Acquire-park reply by the lock discipline.
func (s *specCore) read(va uint64, dst []byte) {
	vpn := vm.VPNOf(va)
	off := int(va & (memsim.PageBytes - 1))
	pg := s.sh.page(vpn)
	if pg == nil {
		panic(fmt.Sprintf("machine: speculative load from unmapped heap page (va %#x)", va))
	}
	ov := s.overlay[vpn]
	if ov == nil || ov.epoch != s.epoch {
		copy(dst, pg[off:off+len(dst)])
		return
	}
	for i := range dst {
		o := off + i
		if ov.mask[o>>6]&(1<<uint(o&63)) != 0 {
			dst[i] = ov.data[o]
		} else {
			dst[i] = pg[o]
		}
	}
}

// write records src in the overlay. The segment never crosses a page.
func (s *specCore) write(va uint64, src []byte) {
	vpn := vm.VPNOf(va)
	ov := s.overlay[vpn]
	if ov == nil {
		ov = &ovPage{epoch: s.epoch}
		s.overlay[vpn] = ov
	} else if ov.epoch != s.epoch {
		ov.mask = [memsim.PageBytes / 64]uint64{}
		ov.epoch = s.epoch
	}
	off := int(va & (memsim.PageBytes - 1))
	copy(ov.data[off:], src)
	for i := range src {
		o := off + i
		ov.mask[o>>6] |= 1 << uint(o&63)
	}
}

// ---------------------------------------------------------------------------
// Shadow heap: the run-level functional image of the persistent heap that
// speculators read and replayers keep current.

// shadowPage is one heap page's program-visible bytes.
type shadowPage [memsim.PageBytes]byte

// winShadow maps VPN -> shadow page. Page creation is CAS-published;
// page CONTENT is written only by replayers (each write canonically
// ordered by the scheduler slot) and read by speculators strictly after a
// park reply that happens-after the write — race-free for lock-disciplined
// programs, and -race-clean because the reply channel and scheduler mutex
// carry the happens-before edges.
type winShadow struct {
	pages []atomic.Pointer[shadowPage]
}

func newWinShadow(maxPages int) *winShadow {
	return &winShadow{pages: make([]atomic.Pointer[shadowPage], maxPages)}
}

func (sh *winShadow) page(vpn int) *shadowPage { return sh.pages[vpn].Load() }

func (sh *winShadow) ensure(vpn int) *shadowPage {
	if pg := sh.pages[vpn].Load(); pg != nil {
		return pg
	}
	pg := new(shadowPage)
	if sh.pages[vpn].CompareAndSwap(nil, pg) {
		return pg
	}
	return sh.pages[vpn].Load()
}

func (sh *winShadow) write(va uint64, src []byte) {
	pg := sh.ensure(vm.VPNOf(va))
	copy(pg[int(va&(memsim.PageBytes-1)):], src)
}

// shadowUndo is one transactional store's pre-image, for re-converging the
// shadow heap at a replayed Abort.
type shadowUndo struct {
	pg     *shadowPage
	off, n int
	prev   [memsim.LineBytes]byte
}

func (sh *winShadow) capture(undo []shadowUndo, va uint64, n int) []shadowUndo {
	pg := sh.ensure(vm.VPNOf(va))
	off := int(va & (memsim.PageBytes - 1))
	u := shadowUndo{pg: pg, off: off, n: n}
	copy(u.prev[:n], pg[off:off+n])
	return append(undo, u)
}

// seedShadow builds the run's starting image from the machine's current
// program-visible heap state. Quiescent-only (Run start, before the core
// goroutines exist). Value authority per line: the backend's redirect (an
// SSP page's current-bit copy, else the page-table home frame), then a
// dirty copy in the owning core's private caches or any L3 copy, then the
// DRAM buffer tier, then memory — resolved by untimed peeks that leave all
// simulated state untouched.
func (m *Machine) seedShadow(sh *winShadow) {
	pk := m.backend.(txn.Peeker)
	var line [memsim.LineBytes]byte
	for _, e := range m.pt.Mapped() {
		pg := sh.ensure(e.VPN)
		base := vm.VAOf(e.VPN)
		for li := 0; li < memsim.PageBytes/memsim.LineBytes; li++ {
			va := base + uint64(li*memsim.LineBytes)
			pa, ok := pk.PeekLineAddr(va)
			if !ok {
				continue
			}
			if !m.caches.PeekLine(pa, line[:]) {
				if m.bcache != nil {
					m.bcache.Peek(pa, line[:])
				} else {
					m.mem.Peek(pa, line[:])
				}
			}
			copy(pg[li*memsim.LineBytes:], line[:])
		}
	}
}

// ensureZeroed publishes zero shadow pages for VPNs mapped mid-run: a
// fresh frame's program-visible content is zero.
func (sh *winShadow) ensureZeroed(first, last int) {
	for vpn := first; vpn <= last; vpn++ {
		sh.ensure(vpn)
	}
}

// ---------------------------------------------------------------------------
// Replay: the canonical execution.

// replay consumes core c's op log and executes it through the exec* paths
// under the serial-grant scheduler. It runs on the goroutine that entered
// the scheduler as core c, so parks inside exec* (lock queues, tickets,
// window barriers) behave exactly as in serial-grant mode. Between ops it
// keeps the shadow heap current (stores flush immediately — speculators
// may read them only after a park ordered behind the owning Lock's
// release, by which point a conflicting Abort has already been reverted)
// and cross-checks every speculated load against the canonical value.
func (m *Machine) replay(c *Core, s *specCore) {
	var undo []shadowUndo
	var scratch [memsim.LineBytes]byte
	for {
		batch := <-s.ops
		for i := range batch {
			op := &batch[i]
			switch op.kind {
			case opStore:
				if c.inTxn {
					undo = s.sh.capture(undo, op.va, int(op.n))
				}
				c.execStoreBytes(op.va, op.data[:op.n])
				s.sh.write(op.va, op.data[:op.n])
			case opLoad:
				c.execLoadBytes(op.va, scratch[:op.n])
				if !bytes.Equal(scratch[:op.n], op.data[:op.n]) {
					panic(fmt.Sprintf(
						"machine: WindowParallel divergence on core %d at va %#x: canonical %x, speculated %x (unsynchronised cross-core sharing? guard shared persistent data with a Lock)",
						c.id, op.va, scratch[:op.n], op.data[:op.n]))
				}
			case opCompute:
				c.execCompute(engine.Cycles(op.arg))
			case opBegin:
				c.execBegin()
				undo = undo[:0]
			case opBeginGlobal:
				c.execBeginGlobal()
				undo = undo[:0]
			case opCommit:
				c.execCommit()
				undo = undo[:0]
			case opCommitRelaxed:
				c.execCommitRelaxed()
				undo = undo[:0]
			case opSync:
				c.execSync()
			case opRelease:
				c.execRelease(op.lk)
			case opSetNow:
				c.execSetNow(engine.Cycles(op.arg))
			case opAcquire:
				c.execAcquire(op.lk)
				s.reply <- specReply{}
			case opNow:
				s.reply <- specReply{t: c.execNow()}
			case opHardenIdle:
				s.reply <- specReply{b: c.execHardenIdle()}
			case opAbort:
				c.execAbort()
				for i := len(undo) - 1; i >= 0; i-- {
					u := &undo[i]
					copy(u.pg[u.off:u.off+u.n], u.prev[:u.n])
				}
				undo = undo[:0]
				s.reply <- specReply{}
			case opEnsureMapped:
				m.ensureMapped(int(op.va), int(op.arg))
				s.sh.ensureZeroed(int(op.va), int(op.arg))
				s.reply <- specReply{}
			case opExternal:
				c.execBlockExternal(s.wait)
				s.reply <- specReply{}
			case opDone:
				return
			default:
				panic("machine: unknown speculative op kind")
			}
		}
	}
}

// runWinPar is Run's WindowParallel body: 2N goroutines (N speculators, N
// replayers) against the serial-grant scheduler, which sees exactly N
// cores — the replayers.
func (m *Machine) runWinPar(fn func(c *Core)) {
	sh := newWinShadow(m.layout.Cfg.MaxHeapPages)
	m.seedShadow(sh)
	m.sched.start()
	m.setParallel(true)
	var wg sync.WaitGroup
	for _, c := range m.cores {
		c := c
		s := &specCore{
			sh:      sh,
			ops:     make(chan []specOp, specChanBatches),
			reply:   make(chan specReply, 1),
			batch:   make([]specOp, 0, specBatchOps),
			overlay: make([]*ovPage, m.layout.Cfg.MaxHeapPages),
		}
		c.spec = s
		wg.Add(2)
		go func() { // replayer: the scheduler-visible "core"
			defer wg.Done()
			m.sched.enter(c.id)
			defer m.sched.exit(c.id)
			m.replay(c, s)
		}()
		go func() { // speculator: the program
			defer wg.Done()
			fn(c)
			s.push(specOp{kind: opDone})
			s.flush()
		}()
	}
	wg.Wait()
	for _, c := range m.cores {
		m.sched.specOps += c.spec.specOps
		m.sched.specParks += c.spec.specParks
		c.spec = nil
	}
	m.setParallel(false)
	m.sched.stop()
}
