// Package machine assembles the full simulated system of Table 2 — cores,
// TLBs, cache hierarchy, hybrid memory, page table — around one
// failure-atomicity backend (SSP or a logging baseline), and exposes the
// transactional programming model to workloads.
//
// Execution model: outside Machine.Run the simulator is single-goroutine
// and deterministic. Each simulated core owns a clock; every operation
// advances it by the modelled latency. Serial multi-client workloads
// interleave transactions by always running the client whose clock is
// lowest (see internal/workload), while memory-bank and lock timelines are
// shared across cores so contention is modelled (DESIGN.md §5).
//
// Machine.Run adds a concurrent mode: one goroutine per core, with shared
// structures (memory, caches, page table, backend metadata) synchronising
// internally and per-core state (TLBs, clocks, stats shards, write-set
// characterisation) sharded so cores never contend on it. See Run for the
// contract.
package machine

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/buffercache"
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/logging"
	"repro/internal/memsim"
	"repro/internal/pheap"
	"repro/internal/stats"
	"repro/internal/tlbsim"
	"repro/internal/txn"
	"repro/internal/vm"
)

// BackendKind selects the failure-atomicity design.
type BackendKind int

// Backends under evaluation (§5.1).
const (
	SSP BackendKind = iota
	UndoLog
	RedoLog
)

// String returns the paper's name for the design.
func (b BackendKind) String() string {
	switch b {
	case SSP:
		return "SSP"
	case UndoLog:
		return "UNDO-LOG"
	case RedoLog:
		return "REDO-LOG"
	default:
		return fmt.Sprintf("BackendKind(%d)", int(b))
	}
}

// Backends lists all designs in report order.
func Backends() []BackendKind { return []BackendKind{UndoLog, RedoLog, SSP} }

// Config describes a whole machine. DefaultConfig returns Table 2.
type Config struct {
	Backend BackendKind
	Cores   int

	Mem         memsim.Config
	Cache       cachesim.Config
	TLBEntries  int           // L1 DTLB entries per core (Table 2: 64)
	STLBEntries int           // L2 STLB entries per core (§4.3: 1024; 0 disables)
	STLBLat     engine.Cycles // extra latency of an STLB hit
	Layout      vm.LayoutConfig
	SSP         core.Config
	Redo        logging.RedoConfig

	// DRAMCacheFrames interposes a DRAM buffer tier of this many 4 KiB
	// frames (internal/buffercache) between the cache hierarchy and the
	// NVRAM data frame pool. 0 (default) couples the caches directly to
	// memory — the paper's bare-NVRAM model, bit-for-bit.
	DRAMCacheFrames int

	// BarrierCycles is the cost of ATOMIC_BEGIN/ATOMIC_END full barriers.
	BarrierCycles engine.Cycles
	// OpCycles is the per-operation front-end cost charged by Compute and
	// each memory instruction.
	OpCycles engine.Cycles
	// LockCycles is the hand-off cost of the simulated lock.
	LockCycles engine.Cycles

	// TimeWindow, in cycles, enables the deterministic bounded-lag window
	// scheduler for Run: cores advance in lockstep windows of this many
	// simulated cycles, execution within a window is serialised in
	// min-(clock, core-index) order, and two runs with the same inputs
	// produce byte-identical Stats (see winsched.go). 0 (default) is the
	// free-running concurrent mode, bit-for-bit the historical behaviour.
	TimeWindow engine.Cycles

	// WindowParallel recovers host parallelism inside windowed Runs by
	// splitting each core into a concurrent speculator (the program,
	// executing against a functional heap image) and a replayer driving the
	// recorded operations through the unchanged window scheduler — see
	// winpar.go. Results, Stats and histograms included, stay byte-identical
	// to the serial-grant mode (WindowParallel=false) for the same seed.
	// Requires TimeWindow > 0 and a lock-disciplined program (shared
	// persistent data accessed under a Lock; divergence panics otherwise).
	// Default false: the serial-grant scheduler, bit-for-bit.
	WindowParallel bool
}

// DefaultConfig returns the paper's system parameters for the given design
// and core count.
func DefaultConfig(backend BackendKind, cores int) Config {
	if cores <= 0 {
		cores = 1
	}
	cfg := Config{
		Backend:       backend,
		Cores:         cores,
		Mem:           memsim.DefaultConfig(),
		Cache:         cachesim.DefaultConfig(cores),
		TLBEntries:    64,
		STLBEntries:   1024,
		STLBLat:       7,
		Layout:        vm.DefaultLayoutConfig(cores),
		SSP:           core.DefaultConfig(),
		Redo:          logging.DefaultRedoConfig(),
		BarrierCycles: 30,
		OpCycles:      2,
		LockCycles:    40,
	}
	// Size the SSP cache as N·T+O (§4.1.2): every TLB-resident page needs
	// an entry, plus overprovisioning for pages under consolidation.
	cfg.SSP.Entries = cores*(cfg.TLBEntries+cfg.STLBEntries) + 64
	cfg.Layout.SSPSlots = cfg.SSP.Entries
	return cfg
}

// Machine is one simulated system.
//
// Execution modes: by default every call runs on the caller's goroutine and
// the machine is fully deterministic (the historical single-goroutine
// model). Run switches to concurrent mode — one goroutine per Core — for
// its duration; see Run for the exact contract.
type Machine struct {
	cfg    Config
	shards *stats.Sharded
	mem    *memsim.Memory
	bcache *buffercache.Cache // nil unless Config.DRAMCacheFrames > 0
	caches *cachesim.Hierarchy
	tlbs   []*tlbsim.TLB
	pt     *vm.PageTable
	frames *vm.FrameAlloc
	layout vm.Layout
	env    *txn.Env

	backend txn.Backend
	heap    *pheap.Heap

	clocks []engine.Cycles
	cores  []*Core
	ws     []WriteSetStats // per-core shards; aggregated by WriteSet

	// parallel is true while Run's core goroutines execute. It is written
	// only while the machine is quiescent (before the goroutines start and
	// after they join), so reads from the core goroutines are race-free.
	parallel bool
	mapMu    sync.Mutex // serialises ensureMapped's check-then-map

	// sched is the deterministic window scheduler, non-nil exactly when
	// Config.TimeWindow > 0. It is armed for the duration of each Run.
	sched *winSched
}

// WriteSetStats accumulates the per-transaction write-set characterisation
// the paper's Table 3 reports: cache lines and pages modified per durable
// transaction.
type WriteSetStats struct {
	Txns       uint64
	TotalLines uint64
	TotalPages uint64
	MaxPages   int
	MaxLines   int
}

func (w *WriteSetStats) record(lines, pages int) {
	w.Txns++
	w.TotalLines += uint64(lines)
	w.TotalPages += uint64(pages)
	if pages > w.MaxPages {
		w.MaxPages = pages
	}
	if lines > w.MaxLines {
		w.MaxLines = lines
	}
}

// AvgLines returns the mean write-set size in cache lines.
func (w *WriteSetStats) AvgLines() float64 {
	if w.Txns == 0 {
		return 0
	}
	return float64(w.TotalLines) / float64(w.Txns)
}

// AvgPages returns the mean write-set size in pages.
func (w *WriteSetStats) AvgPages() float64 {
	if w.Txns == 0 {
		return 0
	}
	return float64(w.TotalPages) / float64(w.Txns)
}

// New builds and formats a fresh machine.
func New(cfg Config) *Machine {
	m, err := build(cfg, nil)
	if err != nil {
		// Only a mismatched restore image can fail the build, and New never
		// passes one.
		panic(err)
	}
	m.format()
	return m
}

// Restore boots a machine from a previous machine's durable NVRAM image
// (post-crash) and runs the backend's recovery.
func Restore(cfg Config, image []byte) (*Machine, error) {
	m, err := build(cfg, image)
	if err != nil {
		return nil, err
	}
	if !vm.IsFormatted(m.mem, m.layout) {
		return nil, fmt.Errorf("machine: image is not a formatted persistent heap")
	}
	m.pt.Rebuild()
	if cfg.Backend != SSP {
		// The logging designs keep no frame metadata beyond the page
		// table; SSP's Recover rebuilds the allocator itself.
		m.frames.Reset()
		for _, e := range m.pt.Mapped() {
			m.frames.Reserve(e.Frame)
		}
	}
	if err := m.backend.Recover(); err != nil {
		return nil, err
	}
	return m, nil
}

func build(cfg Config, image []byte) (*Machine, error) {
	cfg.Cache.Cores = cfg.Cores
	cfg.Layout.Cores = cfg.Cores
	shards := stats.NewSharded(cfg.Cores)
	// Counter routing: the cache hierarchy writes the shared shard under its
	// interconnect lock; each memory channel writes its own channel shard
	// under that channel's timing lock; each TLB and each core's backend
	// execution path write that core's shard. Aggregation is an
	// order-independent sum.
	shared := shards.Shared()
	var mem *memsim.Memory
	if image != nil {
		var err error
		mem, err = memsim.NewFromImage(cfg.Mem, shared, image)
		if err != nil {
			return nil, err
		}
	} else {
		mem = memsim.New(cfg.Mem, shared)
	}
	mem.AttachChannelStats(shards.ChannelShards(mem.Channels()))
	layout := vm.NewLayout(cfg.Mem, cfg.Layout)
	// The memory tier below the caches: bare NVRAM, or a DRAM buffer cache
	// over the data frame pool when configured.
	below := cachesim.Wrap(mem)
	var bcache *buffercache.Cache
	if cfg.DRAMCacheFrames > 0 {
		bcache = buffercache.New(buffercache.Config{
			Frames: cfg.DRAMCacheFrames,
			Lo:     layout.FramePoolBase,
			Hi:     layout.FramePoolEnd,
		}, mem, shards)
		below = bcache
	}
	m := &Machine{
		cfg:    cfg,
		shards: shards,
		mem:    mem,
		bcache: bcache,
		caches: cachesim.NewWithMem(cfg.Cache, below, shared),
		pt:     vm.NewPageTable(mem, layout),
		frames: vm.NewFrameAlloc(layout),
		layout: layout,
		clocks: make([]engine.Cycles, cfg.Cores),
		ws:     make([]WriteSetStats, cfg.Cores),
	}
	perCore := make([]*stats.Stats, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		perCore[c] = shards.Shard(c)
		m.tlbs = append(m.tlbs, tlbsim.NewTwoLevel(cfg.TLBEntries, cfg.STLBEntries, perCore[c]))
	}
	m.env = &txn.Env{
		Mem:           mem,
		Caches:        m.caches,
		TLBs:          m.tlbs,
		PT:            m.pt,
		Frames:        m.frames,
		Layout:        layout,
		Stats:         shared,
		PerCore:       perCore,
		BarrierCycles: cfg.BarrierCycles,
		STLBCycles:    cfg.STLBLat,
	}
	if cfg.TimeWindow > 0 {
		m.sched = newWinSched(m, cfg.TimeWindow)
		m.env.Sched = m.sched
	}
	if cfg.WindowParallel && cfg.TimeWindow <= 0 {
		panic("machine: WindowParallel requires TimeWindow > 0")
	}
	switch cfg.Backend {
	case SSP:
		m.backend = core.NewSSP(m.env, cfg.SSP, image == nil)
	case UndoLog:
		m.backend = logging.NewUndo(m.env)
	case RedoLog:
		m.backend = logging.NewRedo(m.env, cfg.Redo)
	default:
		panic("machine: unknown backend")
	}
	if cfg.WindowParallel {
		if _, ok := m.backend.(txn.Peeker); !ok {
			panic(fmt.Sprintf("machine: backend %s does not support WindowParallel (no txn.Peeker)", cfg.Backend))
		}
	}
	// Heap page mapping allocates frames, so its order must be canonical:
	// inside a WindowParallel Run a speculating core parks and lets its
	// replayer perform the mapping at the operation's canonical position.
	m.heap = &pheap.Heap{EnsureMapped: func(tx pheap.Tx, first, last int) {
		if c, ok := tx.(*Core); ok && c.spec != nil {
			c.spec.ensureMapped(first, last)
			return
		}
		m.ensureMapped(first, last)
	}}
	for c := 0; c < cfg.Cores; c++ {
		m.cores = append(m.cores, &Core{m: m, id: c})
	}
	return m, nil
}

// format initialises the persistent image: superblock, heap page zero, and
// allocator metadata (via a bootstrap transaction on core 0).
func (m *Machine) format() {
	vm.Format(m.mem, m.layout)
	m.ensureMapped(0, 0)
	c := m.Core(0)
	c.Begin()
	m.heap.Format(c, m.layout.Cfg.MaxHeapPages)
	c.Commit()
}

// ensureMapped maps heap VPNs [first,last] to fresh frames with durable
// PTE writes; already-mapped pages are untouched. mapMu makes the
// check-then-map atomic; in concurrent mode the PTE write is timed from
// cycle zero instead of core 0's (racing) clock — the bank timeline orders
// it after in-flight traffic either way.
func (m *Machine) ensureMapped(first, last int) {
	m.mapMu.Lock()
	defer m.mapMu.Unlock()
	var at engine.Cycles
	if !m.parallel {
		at = m.clocks[0]
	}
	for vpn := first; vpn <= last; vpn++ {
		if _, ok := m.pt.Lookup(vpn); ok {
			continue
		}
		frame := m.frames.Alloc()
		m.pt.Set(vpn, frame, at)
	}
}

// Core returns the handle for simulated core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// Cores returns the core count.
func (m *Machine) Cores() int { return m.cfg.Cores }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Stats returns the machine's counters, aggregated across the per-core
// shards at call time. Each call returns a fresh snapshot, so pointers
// taken before and after work compare meaningfully. Not safe during Run;
// quiesce first.
func (m *Machine) Stats() *stats.Stats {
	agg := m.shards.Aggregate()
	m.fillWear(&agg)
	return &agg
}

// fillWear snapshots memsim's per-page NVRAM write counters over the data
// frame pool into st's wear fields (histogram, max, total). The counters
// live in memsim rather than a shard, so they are folded in at snapshot
// time; shards carry zeros for these fields.
func (m *Machine) fillWear(st *stats.Stats) {
	for _, w := range m.mem.WearProfile(m.layout.FramePoolBase, m.layout.Frames) {
		if w == 0 {
			continue
		}
		st.FramesWritten++
		st.FrameWriteTotal += w
		if w > st.FrameWriteMax {
			st.FrameWriteMax = w
		}
		b := bits.Len64(w) - 1
		if b >= len(st.FrameWrites) {
			b = len(st.FrameWrites) - 1
		}
		st.FrameWrites[b]++
	}
}

// CoreStats returns core i's private counter shard (per-core reporting).
// The shard covers the core's execution path — commits, log records, TLB
// behaviour — while shared-structure counters (memory traffic, cache hits)
// live in the shared shard and are only meaningful in aggregate.
func (m *Machine) CoreStats(i int) stats.Stats { return m.shards.PerCore(i) }

// WriteSet returns the Table 3 write-set characterisation, aggregated
// across cores at call time (snapshot semantics, like Stats).
func (m *Machine) WriteSet() *WriteSetStats {
	var agg WriteSetStats
	for i := range m.ws {
		w := &m.ws[i]
		agg.Txns += w.Txns
		agg.TotalLines += w.TotalLines
		agg.TotalPages += w.TotalPages
		if w.MaxPages > agg.MaxPages {
			agg.MaxPages = w.MaxPages
		}
		if w.MaxLines > agg.MaxLines {
			agg.MaxLines = w.MaxLines
		}
	}
	return &agg
}

// ResetStats zeroes all counters (after warm-up, before measurement). Core
// clocks and durable state are untouched.
func (m *Machine) ResetStats() {
	m.shards.Reset()
	m.mem.ResetWear()
	for i := range m.ws {
		m.ws[i] = WriteSetStats{}
	}
}

// Backend exposes the active failure-atomicity mechanism.
func (m *Machine) Backend() txn.Backend { return m.backend }

// Heap returns the persistent heap allocator.
func (m *Machine) Heap() *pheap.Heap { return m.heap }

// Mem exposes the memory system (tests, crash tooling).
func (m *Machine) Mem() *memsim.Memory { return m.mem }

// Channels returns the memory system's effective channel count.
func (m *Machine) Channels() int { return m.mem.Channels() }

// ChannelUtilization converts the aggregated per-channel bus-occupancy
// counters into utilization fractions of the given elapsed window (one entry
// per channel), clamped to [0,1] — the counters charge every transfer, so a
// degenerate window (a straggler core admitted past the occupancy wheel's
// horizon) could otherwise nudge past 1. Quiescent-only, like Stats.
func (m *Machine) ChannelUtilization(elapsed engine.Cycles) []float64 {
	st := m.shards.Aggregate()
	out := make([]float64, m.mem.Channels())
	if elapsed <= 0 {
		return out
	}
	for i := range out {
		out[i] = float64(st.ChannelBusyCycles[i]) / float64(elapsed)
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out
}

// JournalShardPressure re-exports the SSP backend's per-shard journal
// state (fill, records, checkpoints).
type JournalShardPressure = core.JournalShardPressure

// JournalPressure returns the SSP metadata journal's per-shard state, one
// entry per configured shard (nil for the logging backends, which have no
// metadata journal). Quiescent-only, like Stats.
func (m *Machine) JournalPressure() []JournalShardPressure {
	if s, ok := m.backend.(*core.SSP); ok {
		return s.JournalPressure()
	}
	return nil
}

// DebugValidateCaches runs the cache hierarchy's coherence invariant check
// and returns the first violation, or "" (test helper).
func (m *Machine) DebugValidateCaches() string { return m.caches.DebugValidate() }

// MaxClock returns the latest core clock — the run's wall-clock in cycles.
func (m *Machine) MaxClock() engine.Cycles {
	var mx engine.Cycles
	for _, c := range m.clocks {
		if c > mx {
			mx = c
		}
	}
	return mx
}

// Run executes fn once per core, each invocation on its own goroutine, and
// returns when every invocation has finished. This is the machine's
// concurrent mode: the cores genuinely execute in parallel on the host.
//
// Contract:
//
//   - fn(core) owns that Core exclusively: Core methods (Begin, Store64,
//     Commit, Acquire, ...) are safe exactly because only core's goroutine
//     calls them. Do not share a Core across goroutines.
//   - Shared simulated structures (memory, caches, page table, the
//     backend's metadata) synchronise internally; application-level
//     isolation remains the program's job via Lock, as in the paper.
//   - Machine-level operations (Stats, Drain, Crash, Recover, ResetStats,
//     MaxClock) must not be called until Run returns.
//   - Per-core work is deterministic given fixed per-core inputs. With
//     Config.TimeWindow == 0 (free-running mode), cross-core timing (bank
//     contention, lock hand-off order) depends on the host schedule, and
//     aggregate counters are order-independent sums. With TimeWindow > 0
//     the window scheduler serialises cross-core interleaving in simulated
//     time (see winsched.go) and the ENTIRE run — Stats included — is
//     deterministic, unless a core blocks on a host-side event via
//     BlockExternal (the server path).
//
// Serial execution outside Run is unchanged and remains bit-for-bit
// deterministic.
func (m *Machine) Run(fn func(c *Core)) {
	if m.parallel {
		panic("machine: nested Run")
	}
	if m.cfg.WindowParallel {
		m.runWinPar(fn)
		return
	}
	if m.sched != nil {
		m.sched.start()
	}
	m.setParallel(true)
	var wg sync.WaitGroup
	for _, c := range m.cores {
		wg.Add(1)
		go func(c *Core) {
			defer wg.Done()
			if m.sched != nil {
				m.sched.enter(c.id)
				defer m.sched.exit(c.id)
			}
			fn(c)
		}(c)
	}
	wg.Wait()
	m.setParallel(false)
	if m.sched != nil {
		m.sched.stop()
	}
}

// WindowStats returns the window scheduler's activity during the most
// recent Run — zero-valued when Config.TimeWindow == 0. Quiescent-only,
// like Stats. The counters are deterministic; HostWait is host time (the
// barrier's wall-clock cost) and is reported here, outside Stats, so
// byte-identity of Stats across same-seed runs holds exactly.
func (m *Machine) WindowStats() WindowStats {
	if m.sched == nil {
		return WindowStats{}
	}
	return m.sched.snapshot()
}

// setParallel flips concurrent mode on the machine and, when supported, the
// backend. Called only while quiescent.
func (m *Machine) setParallel(on bool) {
	m.parallel = on
	if pa, ok := m.backend.(txn.ParallelAware); ok {
		pa.SetParallel(on)
	}
}

// Drain completes all background work on every core's behalf.
func (m *Machine) Drain() {
	t := m.backend.Drain(m.MaxClock())
	for i := range m.clocks {
		if m.clocks[i] < t {
			m.clocks[i] = t
		}
	}
}

// Crash simulates a power failure: all volatile state (caches, TLBs,
// backend buffers) vanishes; the durable NVRAM image survives. The machine
// itself becomes unusable; continue via Restore(cfg, image) or in place via
// Recover.
func (m *Machine) Crash() []byte {
	m.mem.PowerOff()
	m.dropVolatile()
	return m.mem.NVRAMImage()
}

// dropVolatile clears every volatile structure.
func (m *Machine) dropVolatile() {
	m.caches.DropAll()
	if m.bcache != nil {
		m.bcache.DropAll()
	}
	for _, t := range m.tlbs {
		t.Drop()
	}
	m.backend.Crash()
	for i := range m.clocks {
		m.clocks[i] = 0
	}
	for _, c := range m.cores {
		c.inTxn = false
	}
}

// Recover performs in-place crash recovery after Crash (or after a write
// trap fired): volatile state is dropped, power restored, and the backend's
// recovery runs against the surviving image.
func (m *Machine) Recover() error {
	m.dropVolatile()
	m.mem.PowerOn()
	m.mem.ResetTiming()
	m.pt.Rebuild()
	if m.cfg.Backend != SSP {
		// The logging designs keep no frame metadata beyond the page
		// table; SSP's Recover rebuilds the allocator itself.
		m.frames.Reset()
		for _, e := range m.pt.Mapped() {
			m.frames.Reserve(e.Frame)
		}
	}
	return m.backend.Recover()
}

// Lock is a simulated mutex: acquisition serialises critical sections in
// simulated time without spinning (DESIGN.md §5). In free-running
// concurrent mode the simulated hand-off is backed by a real mutex held
// between Acquire and Release, so host-level mutual exclusion matches the
// simulated one. In windowed mode (Config.TimeWindow > 0) the scheduler
// manages the queue instead and hands the lock to the waiting core with
// the lowest (clock, core-index) pair — a deterministic grant order, where
// a host mutex would wake waiters in host order.
type Lock struct {
	mu     sync.Mutex
	freeAt engine.Cycles

	// Windowed-mode state, guarded by the scheduler's mutex: the holding
	// core (-1 free) and the parked waiters.
	holder int
	q      []int
}

// NewLock returns an unlocked lock.
func (m *Machine) NewLock() *Lock { return &Lock{holder: -1} }
