// Package machine assembles the full simulated system of Table 2 — cores,
// TLBs, cache hierarchy, hybrid memory, page table — around one
// failure-atomicity backend (SSP or a logging baseline), and exposes the
// transactional programming model to workloads.
//
// Execution model: the simulator is single-goroutine and deterministic.
// Each simulated core owns a clock; every operation advances it by the
// modelled latency. Multi-client workloads interleave transactions by
// always running the client whose clock is lowest (see internal/workload),
// while memory-bank and lock timelines are shared across cores so
// contention is modelled (DESIGN.md §5).
package machine

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/logging"
	"repro/internal/memsim"
	"repro/internal/pheap"
	"repro/internal/stats"
	"repro/internal/tlbsim"
	"repro/internal/txn"
	"repro/internal/vm"
)

// BackendKind selects the failure-atomicity design.
type BackendKind int

// Backends under evaluation (§5.1).
const (
	SSP BackendKind = iota
	UndoLog
	RedoLog
)

// String returns the paper's name for the design.
func (b BackendKind) String() string {
	switch b {
	case SSP:
		return "SSP"
	case UndoLog:
		return "UNDO-LOG"
	case RedoLog:
		return "REDO-LOG"
	default:
		return fmt.Sprintf("BackendKind(%d)", int(b))
	}
}

// Backends lists all designs in report order.
func Backends() []BackendKind { return []BackendKind{UndoLog, RedoLog, SSP} }

// Config describes a whole machine. DefaultConfig returns Table 2.
type Config struct {
	Backend BackendKind
	Cores   int

	Mem         memsim.Config
	Cache       cachesim.Config
	TLBEntries  int           // L1 DTLB entries per core (Table 2: 64)
	STLBEntries int           // L2 STLB entries per core (§4.3: 1024; 0 disables)
	STLBLat     engine.Cycles // extra latency of an STLB hit
	Layout      vm.LayoutConfig
	SSP         core.Config
	Redo        logging.RedoConfig

	// BarrierCycles is the cost of ATOMIC_BEGIN/ATOMIC_END full barriers.
	BarrierCycles engine.Cycles
	// OpCycles is the per-operation front-end cost charged by Compute and
	// each memory instruction.
	OpCycles engine.Cycles
	// LockCycles is the hand-off cost of the simulated lock.
	LockCycles engine.Cycles
}

// DefaultConfig returns the paper's system parameters for the given design
// and core count.
func DefaultConfig(backend BackendKind, cores int) Config {
	if cores <= 0 {
		cores = 1
	}
	cfg := Config{
		Backend:       backend,
		Cores:         cores,
		Mem:           memsim.DefaultConfig(),
		Cache:         cachesim.DefaultConfig(cores),
		TLBEntries:    64,
		STLBEntries:   1024,
		STLBLat:       7,
		Layout:        vm.DefaultLayoutConfig(cores),
		SSP:           core.DefaultConfig(),
		Redo:          logging.DefaultRedoConfig(),
		BarrierCycles: 30,
		OpCycles:      2,
		LockCycles:    40,
	}
	// Size the SSP cache as N·T+O (§4.1.2): every TLB-resident page needs
	// an entry, plus overprovisioning for pages under consolidation.
	cfg.SSP.Entries = cores*(cfg.TLBEntries+cfg.STLBEntries) + 64
	cfg.Layout.SSPSlots = cfg.SSP.Entries
	return cfg
}

// Machine is one simulated system.
type Machine struct {
	cfg    Config
	st     *stats.Stats
	mem    *memsim.Memory
	caches *cachesim.Hierarchy
	tlbs   []*tlbsim.TLB
	pt     *vm.PageTable
	frames *vm.FrameAlloc
	layout vm.Layout
	env    *txn.Env

	backend txn.Backend
	heap    *pheap.Heap

	clocks []engine.Cycles
	cores  []*Core
	ws     WriteSetStats
}

// WriteSetStats accumulates the per-transaction write-set characterisation
// the paper's Table 3 reports: cache lines and pages modified per durable
// transaction.
type WriteSetStats struct {
	Txns       uint64
	TotalLines uint64
	TotalPages uint64
	MaxPages   int
	MaxLines   int
}

func (w *WriteSetStats) record(lines, pages int) {
	w.Txns++
	w.TotalLines += uint64(lines)
	w.TotalPages += uint64(pages)
	if pages > w.MaxPages {
		w.MaxPages = pages
	}
	if lines > w.MaxLines {
		w.MaxLines = lines
	}
}

// AvgLines returns the mean write-set size in cache lines.
func (w *WriteSetStats) AvgLines() float64 {
	if w.Txns == 0 {
		return 0
	}
	return float64(w.TotalLines) / float64(w.Txns)
}

// AvgPages returns the mean write-set size in pages.
func (w *WriteSetStats) AvgPages() float64 {
	if w.Txns == 0 {
		return 0
	}
	return float64(w.TotalPages) / float64(w.Txns)
}

// New builds and formats a fresh machine.
func New(cfg Config) *Machine {
	m := build(cfg, nil)
	m.format()
	return m
}

// Restore boots a machine from a previous machine's durable NVRAM image
// (post-crash) and runs the backend's recovery.
func Restore(cfg Config, image []byte) (*Machine, error) {
	m := build(cfg, image)
	if !vm.IsFormatted(m.mem, m.layout) {
		return nil, fmt.Errorf("machine: image is not a formatted persistent heap")
	}
	m.pt.Rebuild()
	if cfg.Backend != SSP {
		// The logging designs keep no frame metadata beyond the page
		// table; SSP's Recover rebuilds the allocator itself.
		m.frames.Reset()
		for _, e := range m.pt.Mapped() {
			m.frames.Reserve(e.Frame)
		}
	}
	if err := m.backend.Recover(); err != nil {
		return nil, err
	}
	return m, nil
}

func build(cfg Config, image []byte) *Machine {
	cfg.Cache.Cores = cfg.Cores
	cfg.Layout.Cores = cfg.Cores
	st := &stats.Stats{}
	var mem *memsim.Memory
	if image != nil {
		mem = memsim.NewFromImage(cfg.Mem, st, image)
	} else {
		mem = memsim.New(cfg.Mem, st)
	}
	layout := vm.NewLayout(cfg.Mem, cfg.Layout)
	m := &Machine{
		cfg:    cfg,
		st:     st,
		mem:    mem,
		caches: cachesim.New(cfg.Cache, mem, st),
		pt:     vm.NewPageTable(mem, layout),
		frames: vm.NewFrameAlloc(layout),
		layout: layout,
		clocks: make([]engine.Cycles, cfg.Cores),
	}
	for c := 0; c < cfg.Cores; c++ {
		m.tlbs = append(m.tlbs, tlbsim.NewTwoLevel(cfg.TLBEntries, cfg.STLBEntries, st))
	}
	m.env = &txn.Env{
		Mem:           mem,
		Caches:        m.caches,
		TLBs:          m.tlbs,
		PT:            m.pt,
		Frames:        m.frames,
		Layout:        layout,
		Stats:         st,
		BarrierCycles: cfg.BarrierCycles,
		STLBCycles:    cfg.STLBLat,
	}
	switch cfg.Backend {
	case SSP:
		m.backend = core.NewSSP(m.env, cfg.SSP, image == nil)
	case UndoLog:
		m.backend = logging.NewUndo(m.env)
	case RedoLog:
		m.backend = logging.NewRedo(m.env, cfg.Redo)
	default:
		panic("machine: unknown backend")
	}
	m.heap = &pheap.Heap{EnsureMapped: m.ensureMapped}
	for c := 0; c < cfg.Cores; c++ {
		m.cores = append(m.cores, &Core{m: m, id: c})
	}
	return m
}

// format initialises the persistent image: superblock, heap page zero, and
// allocator metadata (via a bootstrap transaction on core 0).
func (m *Machine) format() {
	vm.Format(m.mem, m.layout)
	m.ensureMapped(0, 0)
	c := m.Core(0)
	c.Begin()
	m.heap.Format(c, m.layout.Cfg.MaxHeapPages)
	c.Commit()
}

// ensureMapped maps heap VPNs [first,last] to fresh frames with durable
// PTE writes; already-mapped pages are untouched.
func (m *Machine) ensureMapped(first, last int) {
	for vpn := first; vpn <= last; vpn++ {
		if _, ok := m.pt.Lookup(vpn); ok {
			continue
		}
		frame := m.frames.Alloc()
		m.pt.Set(vpn, frame, m.clocks[0])
	}
}

// Core returns the handle for simulated core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// Cores returns the core count.
func (m *Machine) Cores() int { return m.cfg.Cores }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Stats returns the machine's counters.
func (m *Machine) Stats() *stats.Stats { return m.st }

// WriteSet returns the Table 3 write-set characterisation.
func (m *Machine) WriteSet() *WriteSetStats { return &m.ws }

// ResetStats zeroes all counters (after warm-up, before measurement). Core
// clocks and durable state are untouched.
func (m *Machine) ResetStats() {
	*m.st = stats.Stats{}
	m.ws = WriteSetStats{}
}

// Backend exposes the active failure-atomicity mechanism.
func (m *Machine) Backend() txn.Backend { return m.backend }

// Heap returns the persistent heap allocator.
func (m *Machine) Heap() *pheap.Heap { return m.heap }

// Mem exposes the memory system (tests, crash tooling).
func (m *Machine) Mem() *memsim.Memory { return m.mem }

// DebugValidateCaches runs the cache hierarchy's coherence invariant check
// and returns the first violation, or "" (test helper).
func (m *Machine) DebugValidateCaches() string { return m.caches.DebugValidate() }

// MaxClock returns the latest core clock — the run's wall-clock in cycles.
func (m *Machine) MaxClock() engine.Cycles {
	var mx engine.Cycles
	for _, c := range m.clocks {
		if c > mx {
			mx = c
		}
	}
	return mx
}

// Drain completes all background work on every core's behalf.
func (m *Machine) Drain() {
	t := m.backend.Drain(m.MaxClock())
	for i := range m.clocks {
		if m.clocks[i] < t {
			m.clocks[i] = t
		}
	}
}

// Crash simulates a power failure: all volatile state (caches, TLBs,
// backend buffers) vanishes; the durable NVRAM image survives. The machine
// itself becomes unusable; continue via Restore(cfg, image) or in place via
// Recover.
func (m *Machine) Crash() []byte {
	m.mem.PowerOff()
	m.dropVolatile()
	return m.mem.NVRAMImage()
}

// dropVolatile clears every volatile structure.
func (m *Machine) dropVolatile() {
	m.caches.DropAll()
	for _, t := range m.tlbs {
		t.Drop()
	}
	m.backend.Crash()
	for i := range m.clocks {
		m.clocks[i] = 0
	}
	for _, c := range m.cores {
		c.inTxn = false
	}
}

// Recover performs in-place crash recovery after Crash (or after a write
// trap fired): volatile state is dropped, power restored, and the backend's
// recovery runs against the surviving image.
func (m *Machine) Recover() error {
	m.dropVolatile()
	m.mem.PowerOn()
	m.mem.ResetTiming()
	m.pt.Rebuild()
	if m.cfg.Backend != SSP {
		// The logging designs keep no frame metadata beyond the page
		// table; SSP's Recover rebuilds the allocator itself.
		m.frames.Reset()
		for _, e := range m.pt.Mapped() {
			m.frames.Reserve(e.Frame)
		}
	}
	return m.backend.Recover()
}

// Lock is a simulated mutex: acquisition serialises critical sections in
// simulated time without spinning (DESIGN.md §5).
type Lock struct {
	freeAt engine.Cycles
}

// NewLock returns an unlocked lock.
func (m *Machine) NewLock() *Lock { return &Lock{} }
