package machine

import (
	"fmt"
	"testing"

	"repro/internal/engine"
)

// winConfig returns a small windowed machine.
func winConfig(cores int, w engine.Cycles) Config {
	cfg := testConfig(SSP, cores)
	cfg.TimeWindow = w
	return cfg
}

// TestWindowedInterleavingDeterministic records the exact execution
// interleaving of a contended windowed run — legal only because the
// scheduler serialises cores onto one execution slot, so the shared trace
// slice is appended with happens-before edges — and requires two runs to
// produce the identical trace. This is the scheduler's core contract:
// the interleaving is a pure function of simulated state.
func TestWindowedInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		m := New(winConfig(4, 512))
		m.Heap().EnsureMapped(nil, 1, 8)
		var trace []string
		m.Run(func(c *Core) {
			for i := 0; i < 40; i++ {
				// Uneven compute so cores keep overtaking each other at
				// window boundaries.
				c.Compute(engine.Cycles(50 + 37*((c.ID()+i)%5)))
				c.Begin()
				c.Store64(heapVA(1+c.ID(), (i%64)*64), uint64(i))
				c.Commit()
				trace = append(trace, fmt.Sprintf("c%d@%d", c.ID(), c.Now()))
			}
		})
		return trace
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths diverged: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("interleaving diverged at step %d: %q vs %q", i, t1[i], t2[i])
		}
	}
}

// TestWindowedLockHandoffOrder asserts the scheduler's lock protocol:
// when several cores queue on one Lock, release hands it to the waiter
// with the smallest (resume clock, core index), so the acquisition order
// is deterministic and simulated-time sorted — not host mutex order.
func TestWindowedLockHandoffOrder(t *testing.T) {
	run := func() []int {
		m := New(winConfig(4, 1024))
		m.Heap().EnsureMapped(nil, 1, 4)
		l := m.NewLock()
		start := m.MaxClock()
		var order []int
		m.Run(func(c *Core) {
			// Staggered arrival: core i asks for the lock at start+10*i,
			// then holds it long enough that everyone else queues.
			c.SetNow(start + engine.Cycles(10*c.ID()))
			for i := 0; i < 5; i++ {
				c.Acquire(l)
				order = append(order, c.ID())
				c.Compute(300)
				c.Release(l)
				c.Compute(engine.Cycles(20 + 13*c.ID()))
			}
		})
		return order
	}
	o1, o2 := run(), run()
	if len(o1) != 20 || len(o2) != 20 {
		t.Fatalf("expected 20 acquisitions per run, got %d and %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("hand-off order diverged at step %d: %v vs %v", i, o1, o2)
		}
	}
	if o1[0] != 0 {
		t.Fatalf("first acquisition went to core %d, want core 0 (earliest clock)", o1[0])
	}
}

// TestWindowStats checks the reporting path: a windowed run exposes its
// window size and non-zero scheduling counters through Machine.WindowStats,
// and a free-running machine reports the zero value.
func TestWindowStats(t *testing.T) {
	m := New(winConfig(2, 2048))
	m.Heap().EnsureMapped(nil, 1, 4)
	m.Run(func(c *Core) {
		for i := 0; i < 20; i++ {
			c.Begin()
			c.Store64(heapVA(1+c.ID(), (i%64)*64), uint64(i))
			c.Commit()
			c.Compute(500)
		}
	})
	ws := m.WindowStats()
	if ws.Window != 2048 {
		t.Fatalf("WindowStats.Window = %d, want 2048", ws.Window)
	}
	if ws.Windows == 0 || ws.Grants == 0 {
		t.Fatalf("expected scheduling activity, got %+v", ws)
	}

	free := New(testConfig(SSP, 2))
	free.Heap().EnsureMapped(nil, 1, 2)
	free.Run(func(c *Core) {
		c.Begin()
		c.Store64(heapVA(1+c.ID(), 0), 1)
		c.Commit()
	})
	if got := free.WindowStats(); got != (WindowStats{}) {
		t.Fatalf("free-running machine reported scheduler stats: %+v", got)
	}
}

// TestWindowedMatchesFreeRunningFinalState reuses the parallel stress
// script to check the windowed scheduler changes only the interleaving,
// never the per-core outcomes: disjoint-range streams leave the same
// durable values and the same order-independent aggregates as the serial
// reference.
func TestWindowedMatchesFreeRunningFinalState(t *testing.T) {
	txns := 120
	if testing.Short() {
		txns = 50
	}
	ref := stressMachine(SSP)
	refFinal := make([]map[uint64]uint64, stressCores)
	for i := 0; i < stressCores; i++ {
		refFinal[i] = map[uint64]uint64{}
		stressScript(ref.Core(i), txns, 0xC0FFEE, refFinal[i])
	}
	ref.Drain()
	refCommits := ref.Stats().Commits

	cfg := winConfig(stressCores, 4096)
	m := New(cfg)
	m.Heap().EnsureMapped(nil, 1, stressCores*stressPagesPer)
	final := make([]map[uint64]uint64, stressCores)
	for i := range final {
		final[i] = map[uint64]uint64{}
	}
	m.Run(func(c *Core) {
		stressScript(c, txns, 0xC0FFEE, final[c.ID()])
	})
	m.Drain()

	if got := m.Stats().Commits; got != refCommits {
		t.Fatalf("windowed run committed %d, serial reference %d", got, refCommits)
	}
	c0 := m.Core(0)
	for i := range final {
		for va, want := range final[i] {
			if got := c0.Load64(va); got != want {
				t.Fatalf("core %d value at %#x: got %d want %d", i, va, got, want)
			}
		}
		for va, want := range refFinal[i] {
			if got := final[i][va]; got != want {
				t.Fatalf("core %d stream diverged from serial reference at %#x: got %d want %d", i, va, got, want)
			}
		}
	}
}
