package core

import (
	"math/bits"
	"sort"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/wal"
)

// consolidate merges a page's two physical frames into one (§3.4): the side
// holding fewer committed lines is copied into the other, the flip is
// journaled atomically, and the page table is repointed at the survivor.
// It runs off the critical path — NVRAM bank time is charged from `at`, but
// no core waits on it.
//
// Locking: in parallel mode the caller holds structMu (slot reclamation and
// checkpoint execution need it, and it guarantees the page cannot gain a
// first reference mid-consolidation — see translate's slow path);
// consolidate takes the page's own lock and the target journal shard's lock
// itself, in structMu → journalMu → pageMeta.mu order.
func (s *SSP) consolidate(meta *pageMeta, at engine.Cycles) {
	// Relaxed-durability guard: the flip record below carries the page's
	// CUMULATIVE state — frames holding every prior transaction's effects —
	// into the slot's own shard. If the page's most recent update record is
	// still in ANOTHER shard's open epoch, the flip could seal while that
	// epoch drops, and recovery would revive the dropped transaction on
	// this page alone (its bytes are baked into the survivor frame),
	// tearing it across its other pages. Same-shard updates are safe: the
	// ring prefix seals them with the flip or drops them both.
	at = s.hardenPageUpdates(meta, s.shardOfSlot(meta.slot), at)
	s.lockMeta(meta)
	if meta.tlbRef != 0 || meta.coreRef != 0 {
		panic("core: consolidating an active page")
	}
	if meta.current != meta.committed {
		panic("core: current != committed outside transactions")
	}
	if meta.committed == 0 {
		s.unlockMeta(meta)
		return // already consolidated
	}
	s.env.Stats.Consolidations++
	t := at

	units := memsim.LinesPerPage / s.cfg.SubPageLines
	ones := bits.OnesCount64(meta.committed)
	var survivor, spare memsim.PAddr
	var copyBit uint64 // units whose committed copy must move
	if ones*2 <= units {
		// Minority on P1: copy those units into P0.
		survivor, spare = meta.ppn0, meta.ppn1
		copyBit = 1
	} else {
		survivor, spare = meta.ppn1, meta.ppn0
		copyBit = 0
	}
	// Software wear-leveling (beyond the paper): consolidation is the one
	// moment a page's frames are quiescent and about to be re-journaled,
	// so it doubles as the rotation point. A survivor whose cumulative
	// NVRAM write count has crossed the threshold is replaced by a cold
	// frame from the allocator (every committed line is copied there); a
	// hot spare is simply swapped for a cold one — it holds no committed
	// data after the flip. Retired frames go back via FreeCold, behind
	// every other free frame, so the replacement is always the pool's
	// coldest frame rather than the one just retired; they are freed only
	// after the flip record is durable (below).
	var retired []memsim.PAddr
	rotated := false
	if thr := s.cfg.WearRotateWrites; thr > 0 {
		if s.env.Mem.PageWrites(survivor) >= thr && s.env.Frames.FreeCount() > 1 {
			retired = append(retired, survivor)
			survivor = s.env.Frames.Alloc()
			rotated = true
			s.env.Stats.WearRotations++
		}
		if s.env.Mem.PageWrites(spare) >= thr && s.env.Frames.FreeCount() > 1 {
			retired = append(retired, spare)
			spare = s.env.Frames.Alloc()
			s.env.Stats.WearRotations++
		}
	}
	var buf [memsim.LineBytes]byte
	for unit := 0; unit < units; unit++ {
		bit := (meta.committed >> uint(unit)) & 1
		if bit != copyBit && !rotated {
			continue // already resident in the surviving frame
		}
		begin, end := s.unitLines(unit)
		for li := begin; li < end; li++ {
			src := meta.lineAddr(li, bit)
			dst := survivor + memsim.PAddr(li*memsim.LineBytes)
			// Committed lines are clean (flushed at their commit); only a
			// non-transactional store can leave the source dirty.
			if s.env.Caches.DirtyAnywhere(src) {
				t, _ = s.env.Caches.Flush(0, src, t, stats.CatData)
			}
			t = s.env.Mem.ReadLine(src, buf[:], t)
			t = s.env.Mem.WriteLine(dst, buf[:], t, stats.CatConsolidation)
			// Cached copies of the destination hold a dead version; the
			// copy engine updates them in place (cache injection), so the
			// page's next access after refill hits warm lines.
			s.env.Caches.InjectLine(dst, buf[:])
			s.env.Stats.ConsolidatedLines++
		}
	}

	// Journal the atomic flip: the slot now maps the page entirely to the
	// survivor, with the other frame as the slot's spare. The record is
	// NOT flushed here: until it drains, a crash simply reverts to the
	// pre-consolidation state (both frames untouched at committed
	// locations, recovery repairs the PTE). The page's barrier mark makes
	// the next commit on this page flush first, so durably-flushed
	// speculative data can never land in a frame the old metadata still
	// references (§3.4, off-critical-path consolidation).
	st := slotState{vpn: meta.vpn, ppn0: survivor, ppn1: spare, committed: 0, ver: s.allocVer()}
	sid := meta.slot
	payload := s.journalPayload(sid, st)
	s.unlockMeta(meta) // re-acquired below in journalMu → pageMeta.mu order

	si := s.shardOfSlot(sid)
	s.lockShard(si)
	tid := s.allocTID()
	t = s.appendRecord(si, -1, wal.Record{TID: tid, Kind: recConsolidate, Payload: payload}, sid, t)
	s.lockMeta(meta)
	s.slotShadow[sid] = st
	meta.barrier = journalRef{shard: si, mark: s.journals[si].MarkHere()}
	meta.ppn0, meta.ppn1 = survivor, spare
	meta.committed, meta.current = 0, 0
	s.unlockMeta(meta)
	if len(retired) > 0 {
		// The flip record must be durable before the retired frames are
		// recycled: a crash after a new owner overwrites them would
		// otherwise replay this page back onto foreign data.
		t = s.flushShard(si, -1, t)
	}
	s.maybeCheckpointShard(si, t)
	s.unlockShard(si)
	for _, pa := range retired {
		s.env.Frames.FreeCold(pa)
	}

	// Durable page-table repoint. Safe in either order with the journal
	// record: recovery trusts the journal-replayed slot state and repairs
	// the PTE to match.
	t = s.env.PT.Set(meta.vpn, survivor, t)
	s.clock(t)
}

// ---------------------------------------------------------------------------
// Parallel-mode epoch batching. Commit-time consolidation would otherwise
// funnel every core through the journal lock at every commit; instead,
// pages that become inactive are queued, and one core drains the whole
// batch every EpochCommits commits. The deferral window is bounded, and a
// page re-referenced before its batch runs simply skips consolidation —
// exactly the LazyConsolidation semantics the paper sketches in §3.4, with
// an epoch bound instead of a memory-pressure trigger.

// queueConsolidation records that vpn became inactive and is a
// consolidation candidate. Any lock context: consolMu is a leaf lock.
func (s *SSP) queueConsolidation(vpn int) {
	s.consolMu.Lock()
	s.consolQ = append(s.consolQ, vpn)
	s.consolMu.Unlock()
}

// tickEpoch advances the commit-epoch counter and drains the batch when the
// epoch closes. Called at the end of every parallel-mode transaction —
// commit or abort, fast path or fallback — with no locks held, so the
// deferral window stays bounded even in fallback-heavy runs.
func (s *SSP) tickEpoch(at engine.Cycles) {
	s.consolMu.Lock()
	s.epochOps++
	ready := s.epochOps >= s.cfg.EpochCommits && len(s.consolQ) > 0
	if ready {
		s.epochOps = 0
	}
	s.consolMu.Unlock()
	if ready {
		s.drainConsolQueue(at)
	}
}

// drainConsolQueue consolidates every still-quiescent queued page in one
// batch. The batch is sorted and deduplicated, so the drain order is a
// function of the queue contents, not of which cores queued them.
func (s *SSP) drainConsolQueue(at engine.Cycles) {
	s.consolMu.Lock()
	batch := s.consolQ
	s.consolQ = nil
	s.consolMu.Unlock()
	if len(batch) == 0 {
		return
	}
	sort.Ints(batch)
	s.lockStruct()
	t := engine.MaxCycles(at, s.nowCycles())
	prev := -1
	for _, vpn := range batch {
		if vpn == prev {
			continue
		}
		prev = vpn
		meta := s.lookupMeta(vpn)
		if meta == nil {
			continue // released in the meantime
		}
		s.lockMeta(meta)
		quiescent := meta.tlbRef == 0 && meta.coreRef == 0 && meta.committed != 0
		s.unlockMeta(meta)
		if !quiescent {
			continue // re-referenced; a later epoch will requeue it
		}
		s.consolidate(meta, t)
		t = engine.MaxCycles(t, s.nowCycles())
	}
	s.unlockStruct()
}
