package core

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/wal"
)

// Crash implements txn.Backend: power loss wipes every volatile structure —
// transient SSP cache, write-set buffers, journal buffers, residency model.
// The durable slot array, journal shards and fall-back logs survive in
// NVRAM.
func (s *SSP) Crash() {
	s.resetEntries()
	for i := range s.dirtySlots {
		s.dirtySlots[i] = make(map[int]struct{})
	}
	for i := range s.slotOwner {
		s.slotOwner[i] = nil
		s.slotBarrier[i] = journalRef{}
	}
	s.freeSlots = nil
	s.resident.Reset()
	for c := range s.wsb {
		s.wsb[c] = make(map[int]uint64)
		s.inTxn[c] = false
		s.globalTxn[c] = false
		s.ePending[c] = eagerWriteBehind{}
		s.fallback[c] = false
		s.fbOld[c] = make(map[memsim.PAddr][memsim.LineBytes]byte)
		s.fbPages[c] = make(map[int]struct{})
		s.fbLogs[c].Reset()
	}
	for i := range s.journals {
		s.journals[i].Reset()
		s.pendingGlobalSlots[i] = make(map[int]struct{})
		s.epochs[i] = shardEpoch{}
		s.prepHolds[i].Store(0)
	}
	s.now.Store(0)
	s.consolQ = nil
	s.epochOps = 0
}

// Recover implements txn.Backend (§4.4): rebuild the transient SSP cache
// from the persistent slot array, replay the metadata journal shards in
// merged TID order (skipping transactions without a durable End record),
// roll back interrupted fall-back transactions, repair the page table, and
// rebuild the frame allocator.
//
// With sharded journals the replay order is a TID-merge: every shard is
// scanned and batch-validated independently (a shard's torn tail or
// batch-without-End drops exactly as it did with one journal), the
// surviving records are merged by their globally monotonic TIDs, and each
// record applies only if its slot update version is newer than the state
// already in the slot — a record left in one shard's ring must not regress
// a slot that another shard's checkpoint already advanced past it.
//
// Cross-shard transactions add one rule: a recPrepare record — a global
// transaction's slot update in a participant shard — applies iff its TID's
// recGlobalEnd record is durable in the coordinator shard. The end records
// are collected in a first pass over every shard, so per-shard validation
// stays independent otherwise: a torn prepare batch in one shard can never
// drop an unrelated single-shard batch (even one with a higher TID) in
// another.
func (s *SSP) Recover() error {
	s.env.Stats.Recoveries++

	// 1. Load the persistent slot array (including each slot's checkpointed
	// update version).
	buf := make([]byte, slotBytes)
	var maxVer uint32
	for sid := range s.slotShadow {
		s.env.Mem.Peek(s.slotAddr(sid), buf)
		s.slotShadow[sid] = decodeSlot(buf, s.env.Layout.FrameAddr)
		if s.slotShadow[sid].ver > maxVer {
			maxVer = s.slotShadow[sid].ver
		}
	}

	// 2. Scan every journal shard. First pass: collect the durable
	// coordinator end records of cross-shard transactions (and the
	// version/TID high waters). Second pass: validate batch framing per
	// shard, merge the survivors by TID, and replay under the version
	// guard.
	raw := wal.ScanShards(s.env.Mem, s.env.Layout.JournalBase, s.env.Layout.Cfg.JournalBytes)
	var maxTID uint32
	for _, recs := range raw {
		if m := wal.MaxTID(recs); m > maxTID {
			maxTID = m
		}
		for _, r := range recs {
			// Versions and TIDs consumed by dropped batches — including
			// everything the epoch cut below discards — must stay below the
			// next allocation, so this scan covers every record, applied or
			// not.
			if len(r.Payload) == journalPayloadBytes || len(r.Payload) == journalPayloadVerBytes {
				if _, st := decodeJournalPayload(r.Payload, s.env.Layout.FrameAddr); st.ver > maxVer {
					maxVer = st.ver
				}
			}
		}
	}

	// Epoch cut (Config.DurabilityEpoch > 0): each shard replays only up to
	// its last recEpochSeal. Every explicit flush appends a seal first
	// (flushShard), so bytes past the last seal can only be incidental
	// full-line drains of an epoch that never hardened — relaxed commits the
	// machine acknowledged but never promised durable yet. They are absent
	// by definition, and dropping whole epochs (never parts of one) is what
	// keeps a relaxed crash from tearing: in particular the end TIDs below
	// come from the CUT lists, so a coordinator End sitting in an open epoch
	// cannot commit its (durably sealed) prepares in other shards.
	if s.cfg.DurabilityEpoch > 0 {
		for i, recs := range raw {
			cut := 0
			for j, r := range recs {
				if r.Kind == recEpochSeal {
					cut = j + 1
				}
			}
			for _, r := range recs[cut:] {
				s.env.Stats.DroppedEpochRecords++
				if r.Kind == recUpdateEnd || r.Kind == recGlobalEnd {
					s.env.Stats.LostEpochTxns++
				}
			}
			raw[i] = recs[:cut]
		}
	}

	endTIDs := make(map[uint32]bool)
	for _, recs := range raw {
		for _, r := range recs {
			if r.Kind == recGlobalEnd {
				endTIDs[r.TID] = true
			}
		}
	}
	valid := make([][]wal.Record, len(raw))
	droppedGlobal := make(map[uint32]bool)
	for i, recs := range raw {
		v, err := s.validShardRecords(recs, endTIDs, droppedGlobal)
		if err != nil {
			return err
		}
		valid[i] = v
	}
	// Each sealed global transaction recovered once, each unsealed one
	// rolled back once — regardless of how many shards its records span.
	s.env.Stats.RecoveredTxns += uint64(len(endTIDs))
	s.env.Stats.RolledBackTxns += uint64(len(droppedGlobal))
	for _, r := range wal.Merge(valid) {
		sid, st := decodeJournalPayload(r.Payload, s.env.Layout.FrameAddr)
		// With sharded journals a record must be newer than the slot's
		// checkpointed state to apply; with the single paper-model journal
		// the stream order is the update order (records carry no version)
		// and every surviving record applies, exactly as before sharding.
		if s.sharded() && st.ver <= s.slotShadow[sid].ver {
			continue // the slot already holds this update (or a newer one)
		}
		s.slotShadow[sid] = st
		s.env.Stats.ReplayedRecords++
	}

	// 3. Roll back interrupted software fall-back transactions (their undo
	// logs live in the per-core log regions).
	for c := range s.fbLogs {
		lrecs := wal.Scan(s.env.Mem, s.env.Layout.LogBase[c], s.env.Layout.Cfg.LogBytes)
		if m := wal.MaxTID(lrecs); m > maxTID {
			maxTID = m
		}
		if len(lrecs) == 0 || lrecs[len(lrecs)-1].Kind == fbKindCommit {
			continue
		}
		for i := len(lrecs) - 1; i >= 0; i-- {
			if lrecs[i].Kind != fbKindData {
				continue
			}
			pa, img := decodeFBPayload(lrecs[i].Payload)
			s.env.Mem.WriteLine(pa, img, 0, stats.CatRecovery)
			s.env.Stats.RecoveryNVWrites++
		}
		s.env.Stats.RolledBackTxns++
	}

	// 4. Rebuild the page table mirror, repair consolidation flips, and
	// build the transient SSP cache: current := committed, refcounts zero.
	s.env.PT.Rebuild()
	s.resetEntries()
	s.freeSlots = nil
	seenVPN := make(map[int]int)
	for sid := len(s.slotShadow) - 1; sid >= 0; sid-- {
		st := s.slotShadow[sid]
		s.slotOwner[sid] = nil
		s.slotBarrier[sid] = journalRef{}
		if st.vpn < 0 {
			s.freeSlots = append(s.freeSlots, sid)
			continue
		}
		if prev, dup := seenVPN[st.vpn]; dup {
			return fmt.Errorf("core: slots %d and %d both claim vpn %d", prev, sid, st.vpn)
		}
		seenVPN[st.vpn] = sid
		if cur, ok := s.env.PT.Lookup(st.vpn); !ok || cur != st.ppn0 {
			// The consolidation's PTE write was lost; the journal record is
			// authoritative.
			s.env.PT.Set(st.vpn, st.ppn0, 0)
			s.env.Stats.RecoveryNVWrites++
		}
		meta := &pageMeta{
			vpn:       st.vpn,
			slot:      sid,
			ppn0:      st.ppn0,
			ppn1:      st.ppn1,
			committed: st.committed,
			current:   st.committed,
		}
		s.slotOwner[sid] = meta
		s.storeMeta(meta)
	}

	// 5. Rebuild the frame allocator: every PTE-mapped frame plus every
	// slot's spare is live.
	s.env.Frames.Reset()
	for _, m := range s.env.PT.Mapped() {
		s.env.Frames.Reserve(m.Frame)
	}
	for _, st := range s.slotShadow {
		s.env.Frames.Reserve(st.ppn1)
	}

	if s.nextTID.Load() < maxTID {
		s.nextTID.Store(maxTID)
	}
	if s.nextVer.Load() < maxVer {
		s.nextVer.Store(maxVer)
	}
	for i := range s.journals {
		s.journals[i].Reset()
		s.journals[i].SetTIDFloor(maxTID)
	}
	for c := range s.fbLogs {
		s.fbLogs[c].Reset()
		s.fbLogs[c].SetTIDFloor(maxTID)
	}
	return nil
}

// validShardRecords applies one shard's batch-framing semantics: update
// batches survive only through a durable End record (recUpdateEnd, or a
// standalone recEnd sealing the open batch), consolidate/release records
// survive unconditionally, and a global transaction's prepare records
// survive only when endTIDs carries their TID (the coordinator end record
// was durable somewhere). A batch superseded by a new TID mid-stream can
// only be a torn-tail artifact and drops silently; a trailing unsealed
// batch is the crashed transaction and counts as rolled back (§4.1.1).
// Unsealed global TIDs accumulate in droppedGlobal so the caller can count
// each distributed rollback once across all its shards. Shard-local order
// is preserved in the returned slice.
func (s *SSP) validShardRecords(recs []wal.Record, endTIDs, droppedGlobal map[uint32]bool) ([]wal.Record, error) {
	var out []wal.Record
	var batch []wal.Record
	var batchTID uint32
	seal := func() {
		out = append(out, batch...)
		s.env.Stats.RecoveredTxns++
		batch = nil
	}
	for _, r := range recs {
		switch r.Kind {
		case recUpdate:
			if len(batch) > 0 && r.TID != batchTID {
				batch = nil
			}
			batchTID = r.TID
			batch = append(batch, r)
		case recUpdateEnd:
			if len(batch) > 0 && r.TID != batchTID {
				batch = nil
			}
			batchTID = r.TID
			batch = append(batch, r)
			seal()
		case recEnd:
			if len(batch) > 0 && r.TID == batchTID {
				seal()
			}
		case recConsolidate, recRelease:
			out = append(out, r)
		case recPrepare:
			if endTIDs[r.TID] {
				out = append(out, r)
			} else {
				// No durable end record. If the slot array already carries a
				// state at least as new, this prepare is the checkpointed
				// remnant of a COMMITTED global whose coordinator end was
				// truncated (checkpointShard persisted its slots first) —
				// not evidence of a torn transaction. Only a prepare the
				// slot array does not supersede marks a genuine rollback.
				sid, st := decodeJournalPayload(r.Payload, s.env.Layout.FrameAddr)
				if st.ver > s.slotShadow[sid].ver {
					droppedGlobal[r.TID] = true
				}
			}
		case recGlobalEnd:
			// The commit point itself; carries no slot state. Its TIDs were
			// collected in the caller's first pass.
		case recEpochSeal:
			// Epoch boundary marker: no slot state, and never inside a batch
			// (seals are appended under the same shard lock as the batches
			// they follow). Nothing to emit.
		default:
			return nil, fmt.Errorf("core: unknown journal record kind %d", r.Kind)
		}
	}
	if len(batch) > 0 {
		s.env.Stats.RolledBackTxns++ // speculative updates discarded (§4.1.1)
	}
	return out, nil
}
