package core

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/wal"
)

// Crash implements txn.Backend: power loss wipes every volatile structure —
// transient SSP cache, write-set buffers, journal buffer, residency model.
// The durable slot array, journal and fall-back logs survive in NVRAM.
func (s *SSP) Crash() {
	s.resetEntries()
	s.dirtySlots = make(map[int]struct{})
	s.freeSlots = nil
	s.resident.Reset()
	for c := range s.wsb {
		s.wsb[c] = make(map[int]uint64)
		s.inTxn[c] = false
		s.fallback[c] = false
		s.fbOld[c] = make(map[memsim.PAddr][memsim.LineBytes]byte)
		s.fbPages[c] = make(map[int]struct{})
		s.fbLogs[c].Reset()
	}
	s.journal.Reset()
	s.now.Store(0)
	s.consolQ = nil
	s.epochOps = 0
}

// Recover implements txn.Backend (§4.4): rebuild the transient SSP cache
// from the persistent slot array, replay the metadata journal (skipping
// transactions without a durable End record), roll back interrupted
// fall-back transactions, repair the page table, and rebuild the frame
// allocator.
func (s *SSP) Recover() error {
	s.env.Stats.Recoveries++

	// 1. Load the persistent slot array.
	buf := make([]byte, slotBytes)
	for sid := range s.slotShadow {
		s.env.Mem.Peek(s.slotAddr(sid), buf)
		s.slotShadow[sid] = decodeSlot(buf, s.env.Layout.FrameAddr)
	}

	// 2. Replay the journal: update batches apply only through their End
	// record; consolidate/release records apply unconditionally in order.
	recs := wal.Scan(s.env.Mem, s.env.Layout.JournalBase, s.env.Layout.Cfg.JournalBytes)
	var batch []wal.Record
	var batchTID uint32
	applyBatch := func() {
		for _, r := range batch {
			sid, st := decodeJournalPayload(r.Payload, s.env.Layout.FrameAddr)
			s.slotShadow[sid] = st
			s.env.Stats.ReplayedRecords++
		}
		s.env.Stats.RecoveredTxns++
		batch = nil
	}
	for _, r := range recs {
		switch r.Kind {
		case recUpdate:
			if len(batch) > 0 && r.TID != batchTID {
				// A new batch started without the previous End: the prior
				// batch can only be an artifact of a torn tail; drop it.
				batch = nil
			}
			batchTID = r.TID
			batch = append(batch, r)
		case recUpdateEnd:
			if len(batch) > 0 && r.TID != batchTID {
				batch = nil
			}
			batchTID = r.TID
			batch = append(batch, r)
			applyBatch()
		case recEnd:
			if len(batch) > 0 && r.TID == batchTID {
				applyBatch()
			}
		case recConsolidate, recRelease:
			sid, st := decodeJournalPayload(r.Payload, s.env.Layout.FrameAddr)
			s.slotShadow[sid] = st
			s.env.Stats.ReplayedRecords++
		default:
			return fmt.Errorf("core: unknown journal record kind %d", r.Kind)
		}
	}
	if len(batch) > 0 {
		s.env.Stats.RolledBackTxns++ // speculative updates discarded (§4.1.1)
	}
	maxTID := wal.MaxTID(recs)

	// 3. Roll back interrupted software fall-back transactions (their undo
	// logs live in the per-core log regions).
	for c := range s.fbLogs {
		lrecs := wal.Scan(s.env.Mem, s.env.Layout.LogBase[c], s.env.Layout.Cfg.LogBytes)
		if m := wal.MaxTID(lrecs); m > maxTID {
			maxTID = m
		}
		if len(lrecs) == 0 || lrecs[len(lrecs)-1].Kind == fbKindCommit {
			continue
		}
		for i := len(lrecs) - 1; i >= 0; i-- {
			if lrecs[i].Kind != fbKindData {
				continue
			}
			pa, img := decodeFBPayload(lrecs[i].Payload)
			s.env.Mem.WriteLine(pa, img, 0, stats.CatRecovery)
			s.env.Stats.RecoveryNVWrites++
		}
		s.env.Stats.RolledBackTxns++
	}

	// 4. Rebuild the page table mirror, repair consolidation flips, and
	// build the transient SSP cache: current := committed, refcounts zero.
	s.env.PT.Rebuild()
	s.resetEntries()
	s.freeSlots = nil
	seenVPN := make(map[int]int)
	for sid := len(s.slotShadow) - 1; sid >= 0; sid-- {
		st := s.slotShadow[sid]
		if st.vpn < 0 {
			s.freeSlots = append(s.freeSlots, sid)
			continue
		}
		if prev, dup := seenVPN[st.vpn]; dup {
			return fmt.Errorf("core: slots %d and %d both claim vpn %d", prev, sid, st.vpn)
		}
		seenVPN[st.vpn] = sid
		if cur, ok := s.env.PT.Lookup(st.vpn); !ok || cur != st.ppn0 {
			// The consolidation's PTE write was lost; the journal record is
			// authoritative.
			s.env.PT.Set(st.vpn, st.ppn0, 0)
			s.env.Stats.RecoveryNVWrites++
		}
		s.storeMeta(&pageMeta{
			vpn:       st.vpn,
			slot:      sid,
			ppn0:      st.ppn0,
			ppn1:      st.ppn1,
			committed: st.committed,
			current:   st.committed,
		})
	}

	// 5. Rebuild the frame allocator: every PTE-mapped frame plus every
	// slot's spare is live.
	s.env.Frames.Reset()
	for _, m := range s.env.PT.Mapped() {
		s.env.Frames.Reserve(m.Frame)
	}
	for _, st := range s.slotShadow {
		s.env.Frames.Reserve(st.ppn1)
	}

	if maxTID >= s.nextTID {
		s.nextTID = maxTID + 1
	}
	s.journal.Reset()
	s.journal.SetTIDFloor(maxTID)
	for c := range s.fbLogs {
		s.fbLogs[c].Reset()
		s.fbLogs[c].SetTIDFloor(maxTID)
	}
	return nil
}
