package core

import (
	"repro/internal/memsim"
	"repro/internal/vm"
)

// PeekLineAddr implements txn.Peeker: the physical line address holding the
// program-visible value of the line containing va. With a transient cache
// entry the value lives on the side the unit's current bit selects (§3.2's
// redirection); without one the page has been consolidated (or never
// shadowed) and the home frame from the page table is authoritative.
// Untimed and quiescent-only: no TLB, cache, or metadata state changes.
func (s *SSP) PeekLineAddr(va uint64) (memsim.PAddr, bool) {
	vpn := vm.VPNOf(va)
	lineIdx := int(va&(memsim.PageBytes-1)) >> memsim.LineShift
	if meta := s.lookupMeta(vpn); meta != nil {
		bit := (meta.current >> uint(s.unitOf(lineIdx))) & 1
		return meta.lineAddr(lineIdx, bit), true
	}
	ppn, ok := s.env.PT.Lookup(vpn)
	if !ok {
		return 0, false
	}
	return ppn + memsim.PAddr(lineIdx*memsim.LineBytes), true
}
