// Package core implements Shadow Sub-Paging (SSP), the paper's primary
// contribution: failure-atomic durable transactions on NVRAM through
// cache-line-level remapping between each virtual page and two physical
// frames, with lightweight metadata journaling (§3.3), page consolidation
// (§3.4), background checkpointing (§4.1.2) and crash recovery (§4.4).
//
// The package realises the architecture of Figure 3 on the simulated
// hardware of internal/{memsim,cachesim,tlbsim}: the extended TLB caches
// per-page metadata, the memory controller owns the SSP cache (a transient
// DRAM/L3-resident part and a persistent NVRAM slot array), and all
// per-line state lives in three 64-bit bitmaps per active page — current,
// updated and committed.
package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/wal"
)

// invalidU32 marks unused slot fields (free slots, absent frames).
const invalidU32 = ^uint32(0)

// Config tunes the SSP mechanism; see DefaultConfig for the paper's values.
type Config struct {
	// Entries is the transient SSP cache capacity. §4.1.2 sizes it as
	// N·T+O (cores × TLB entries + overprovisioning); §5.1 reserves about
	// 1K entries. It must not exceed the persistent slot count of
	// vm.LayoutConfig.SSPSlots.
	Entries int
	// ResidentEntries of the SSP cache are modelled as resident in the L3
	// slice (§4.2); accesses to them cost CacheHitLat, others CacheMissLat.
	ResidentEntries int
	// CacheHitLat is the SSP-cache access latency when resident (the L3
	// latency, 27 cycles); Figure 9 sweeps this.
	CacheHitLat engine.Cycles
	// CacheMissLat is charged when the entry is not L3-resident (DRAM).
	CacheMissLat engine.Cycles
	// WSBEntries is the per-core write-set buffer capacity in pages
	// (§4.2); overflowing transactions divert to the software fall-back.
	WSBEntries int
	// FlipCycles is charged on a flip-current-bit broadcast (§4.1.1); the
	// message piggybacks on the coherence network, so it is small.
	FlipCycles engine.Cycles
	// JournalHighWater is the journal fill fraction that triggers a
	// checkpoint.
	JournalHighWater float64
	// SubPageLines is the persistence granularity in cache lines (1 = the
	// paper's default 64 B; 4 models the 256 B Optane granularity of
	// §4.3). Updated/current/committed bits are maintained per sub-page.
	SubPageLines int
	// LazyConsolidation defers consolidation of inactive pages until the
	// SSP cache needs their slot (the paper's flagged future work, §3.4:
	// "These inactive pages could be consolidated eagerly ... or lazily
	// (e.g. when the demands on the memory resources are high)"). A page
	// touched again before its slot is reclaimed skips consolidation
	// entirely.
	LazyConsolidation bool
	// FlipViaShootdown replaces the flip-current-bit coherence broadcast
	// with a TLB-shootdown-style synchronisation (§4.3's simpler-hardware
	// alternative): every first write to a line in a transaction pays
	// ShootdownCycles instead of FlipCycles.
	FlipViaShootdown bool
	// ShootdownCycles is the cost of one TLB shootdown (OS trap + IPIs).
	ShootdownCycles engine.Cycles
	// EpochCommits is the parallel-mode consolidation epoch length: pages
	// whose consolidation was deferred during an epoch are drained in one
	// batch every EpochCommits commits (per backend, not per core). Serial
	// runs consolidate inline and ignore this.
	EpochCommits int
	// WearRotateWrites, when positive, retires hot physical frames at
	// consolidation time (SoftWear-style software wear-leveling): a frame
	// whose cumulative NVRAM write count (memsim.Memory.PageWrites) has
	// reached this threshold is swapped for a cold frame from the
	// allocator, with the flip journaled by the same consolidation record.
	// 0 disables rotation.
	WearRotateWrites uint64
	// EagerFlush issues each dirty write-set line's cache flush (clwb)
	// immediately after the store instead of deferring it to the commit
	// fence (Vilamb-style eager persistence). The commit-time fence then
	// waits only on the tail of still-in-flight flushes — a max over the
	// write set's outstanding completion cycles tracked in pageMeta — not
	// on freshly issued write-backs. Repeated stores to a line re-flush
	// it, so eager mode trades extra NVRAM data writes for critical-path
	// latency. Off (the paper's deferred model) by default.
	EagerFlush bool
	// GroupCommitWindow, when positive, coalesces the journal leg of
	// concurrent commits bound for the same shard: the first committer
	// (the leader) holds its batch open for this many simulated cycles,
	// followers arriving within the window append their batches to the
	// same ring and wait on the leader's flush ticket, and one flush
	// hardens them all. Zero (the paper model: one flush per commit) by
	// default; serial execution degenerates to batches of one.
	GroupCommitWindow engine.Cycles
	// DurabilityEpoch, when positive, enables the relaxed-durability commit
	// mode (CommitRelaxed): a relaxed commit is acknowledged as soon as its
	// journal batch is buffered, and each journal shard hardens its open
	// epoch — data fences, a seal record and one ring flush — when the
	// epoch's age reaches this many cycles (or earlier: at Sync, Drain, any
	// synchronous flush of the shard, or a checkpoint). Zero (the paper's
	// synchronous model, bit-for-bit) by default. See journal.go's epoch
	// engine and recover.go's epoch-cut replay.
	DurabilityEpoch engine.Cycles
}

// DefaultConfig returns the paper's SSP parameters.
func DefaultConfig() Config {
	return Config{
		Entries:          1024,
		ResidentEntries:  1024,
		CacheHitLat:      27,
		CacheMissLat:     185,
		WSBEntries:       64,
		FlipCycles:       5,
		JournalHighWater: 0.75,
		SubPageLines:     1,
		ShootdownCycles:  4000, // trap + IPI round trip, per [1,48]
		EpochCommits:     32,
	}
}

// pageMeta is one transient SSP cache entry (Figure 3): the volatile view
// of a page that is being actively updated.
//
// In the machine's parallel mode mu protects every mutable field (bitmaps,
// reference counts, frame pointers) — the fine-grained half of the SSP
// locking scheme: cores updating different pages never serialise on each
// other. vpn and slot are immutable after construction. The barrier mark is
// the exception: it is read and written only under the backend's structMu
// (it is journal state, not page state).
type pageMeta struct {
	mu   sync.Mutex
	vpn  int
	slot int // persistent slot index (SID)

	ppn0 memsim.PAddr // original physical page
	ppn1 memsim.PAddr // shadow physical page (the slot's spare)

	committed uint64 // durable-consistent location of each line (0=P0 1=P1)
	current   uint64 // most-recent location of each line
	tlbRef    int    // TLBs caching this page's translation
	coreRef   int    // cores with the page in an open write set

	// barrier marks the journal shard and position that must be durable
	// before this page's shadow frame may host durably-flushed speculative
	// data: the page's last lazily-journaled consolidation/release records
	// (see consolidate.go). Commits check it before their data flushes.
	// Protected by mu in parallel mode (it names a position in a specific
	// shard's stream; the stream itself is touched under that shard's lock).
	barrier journalRef

	// flushDone is the latest completion cycle of an eager in-flight data
	// flush issued against this page (Config.EagerFlush, and the issued-not-
	// fenced data flushes of relaxed commits). The commit fence takes the
	// max over its write-set pages instead of re-flushing; the value is
	// monotone, so a commit can only over-wait (never under-wait) on
	// another core's already-fenced flushes. Protected by mu.
	flushDone engine.Cycles

	// lastUpdate names the journal position of this page's most recent
	// update/prepare record. Maintained only in relaxed-durability mode
	// (Config.DurabilityEpoch > 0): a record about to carry this page's
	// cumulative committed bitmap into a DIFFERENT shard must harden this
	// position first (barrierFlush's epoch leg, consolidate's guard), or a
	// crash could seal the cumulative state while dropping the open epoch
	// that produced it — reviving the earlier transaction on this page only
	// and tearing it across its other pages. Records bound for the same
	// shard need no barrier: ring order seals them together or drops them
	// together. Protected by mu.
	lastUpdate journalRef
}

// journalRef names a durable position in one journal shard.
type journalRef struct {
	shard int
	mark  wal.Mark
}

// lineAddr returns the physical line address of line idx on the side
// selected by bit (0 → P0, 1 → P1).
func (m *pageMeta) lineAddr(idx int, bit uint64) memsim.PAddr {
	base := m.ppn0
	if bit != 0 {
		base = m.ppn1
	}
	return base + memsim.PAddr(idx*memsim.LineBytes)
}

// slotState mirrors one persistent SSP slot: what the NVRAM slot array
// would contain after applying every journaled update.
//
// ver is the slot's update version: a globally monotonic sequence number
// assigned under the owning page's lock at every snapshot of the slot
// (commit, consolidation, release). With a single journal it is redundant —
// stream order is update order — but with sharded journals a slot's records
// spread across streams that checkpoint independently, so recovery orders a
// record against the checkpointed slot array by comparing versions: a
// record applies only if it is newer than the state already in the slot.
type slotState struct {
	vpn       int // -1 when free
	ppn0      memsim.PAddr
	ppn1      memsim.PAddr // the slot's spare frame; owned forever (§4.1.2)
	committed uint64
	ver       uint32
}

// Slot array entry layout (one 64-byte line per slot):
//
//	+0  u32 vpn (invalidU32 = free)
//	+4  u32 ppn0 frame index (invalidU32 = none)
//	+8  u32 ppn1 frame index (the spare; always valid)
//	+12 u32 update version (checkpointed slotState.ver)
//	+16 u64 committed bitmap
const slotBytes = memsim.LineBytes

func encodeSlot(st slotState, frameIndex func(memsim.PAddr) int) []byte {
	buf := make([]byte, slotBytes)
	vpn := invalidU32
	p0 := invalidU32
	if st.vpn >= 0 {
		vpn = uint32(st.vpn)
		p0 = uint32(frameIndex(st.ppn0))
	}
	binary.LittleEndian.PutUint32(buf[0:], vpn)
	binary.LittleEndian.PutUint32(buf[4:], p0)
	binary.LittleEndian.PutUint32(buf[8:], uint32(frameIndex(st.ppn1)))
	binary.LittleEndian.PutUint32(buf[12:], st.ver)
	binary.LittleEndian.PutUint64(buf[16:], st.committed)
	return buf
}

func decodeSlot(buf []byte, frameAddr func(int) memsim.PAddr) slotState {
	vpn := binary.LittleEndian.Uint32(buf[0:])
	p0 := binary.LittleEndian.Uint32(buf[4:])
	p1 := binary.LittleEndian.Uint32(buf[8:])
	st := slotState{vpn: -1, ppn1: frameAddr(int(p1)), ver: binary.LittleEndian.Uint32(buf[12:])}
	if vpn != invalidU32 {
		st.vpn = int(vpn)
		st.ppn0 = frameAddr(int(p0))
		st.committed = binary.LittleEndian.Uint64(buf[16:])
	}
	return st
}

// Journal record kinds (§3.3 / §4.1.2). Update records commit in batches:
// a transaction appends recUpdate records for all but its last page and
// seals the batch with recUpdateEnd (update + end marker in one record, so
// single-page transactions cost exactly one record). Consolidate and
// release records are single-record atomic operations applied
// unconditionally. recEnd remains as a standalone seal (used by tests).
//
// Cross-shard (global) transactions use the two-phase pair: recPrepare
// records carry a global transaction's slot updates into every participant
// shard (same payload as recUpdate), and one recGlobalEnd record in the
// coordinator shard — the shard that owns the transaction's TID — seals the
// whole distributed batch. Recovery applies a TID's prepare records from
// every shard iff its coordinator end record is durable, so a crash before
// the end rolls back every participant and a crash after it redoes them.
//
// Relaxed durability adds recEpochSeal: a zero-payload marker appended
// immediately before every explicit ring flush when Config.DurabilityEpoch
// > 0 (flushShard). Seals make epoch boundaries the only replay cut points:
// recovery keeps each shard's records only up to its last durable seal, so
// bytes an un-hardened epoch happened to drain line-by-line are treated as
// absent (recover.go).
const (
	recUpdate      = 1
	recEnd         = 2
	recConsolidate = 3
	recRelease     = 4
	recUpdateEnd   = 5
	recPrepare     = 6
	recGlobalEnd   = 7
	recEpochSeal   = 8
)

// journal record payload: u32 sid, u32 vpn, u32 ppn0Idx, u32 ppn1Idx,
// u64 committed — 24 bytes ("128 bits of metadata for each modified page",
// §3.3, plus the slot's frame fields needed for recovery; see DESIGN.md
// §5). With sharded journals (JournalShards > 1) the payload additionally
// carries the u32 slot update version that orders a record against
// independently checkpointed shards; the single-journal paper model keeps
// the 24-byte record — one stream's order is the update order, so the
// version is redundant there and would only inflate the Figure 6/7 write
// traffic.
const (
	journalPayloadBytes    = 24
	journalPayloadVerBytes = 28
)

func encodeJournalPayload(sid int, st slotState, frameIndex func(memsim.PAddr) int, withVer bool) []byte {
	n := journalPayloadBytes
	if withVer {
		n = journalPayloadVerBytes
	}
	p := make([]byte, n)
	binary.LittleEndian.PutUint32(p[0:], uint32(sid))
	vpn := invalidU32
	p0 := invalidU32
	if st.vpn >= 0 {
		vpn = uint32(st.vpn)
		p0 = uint32(frameIndex(st.ppn0))
	}
	binary.LittleEndian.PutUint32(p[4:], vpn)
	binary.LittleEndian.PutUint32(p[8:], p0)
	binary.LittleEndian.PutUint32(p[12:], uint32(frameIndex(st.ppn1)))
	binary.LittleEndian.PutUint64(p[16:], st.committed)
	if withVer {
		binary.LittleEndian.PutUint32(p[24:], st.ver)
	}
	return p
}

// Global-end record payload: u32 participant-shard bitmask. The mask is
// diagnostic (recovery keys on the TID alone); it keeps torn coordinator
// records detectable by length as well as checksum.
const globalEndPayloadBytes = 4

func encodeGlobalEndPayload(mask uint32) []byte {
	p := make([]byte, globalEndPayloadBytes)
	binary.LittleEndian.PutUint32(p, mask)
	return p
}

func decodeJournalPayload(p []byte, frameAddr func(int) memsim.PAddr) (sid int, st slotState) {
	if len(p) != journalPayloadBytes && len(p) != journalPayloadVerBytes {
		panic(fmt.Sprintf("core: bad journal payload length %d", len(p)))
	}
	sid = int(binary.LittleEndian.Uint32(p[0:]))
	vpn := binary.LittleEndian.Uint32(p[4:])
	p0 := binary.LittleEndian.Uint32(p[8:])
	p1 := binary.LittleEndian.Uint32(p[12:])
	st = slotState{vpn: -1, ppn1: frameAddr(int(p1))}
	if len(p) == journalPayloadVerBytes {
		st.ver = binary.LittleEndian.Uint32(p[24:])
	}
	if vpn != invalidU32 {
		st.vpn = int(vpn)
		st.ppn0 = frameAddr(int(p0))
		st.committed = binary.LittleEndian.Uint64(p[16:])
	}
	return sid, st
}

// lruSet models which SSP cache entries currently sit in the L3-resident
// slice: a bounded recency set over slot IDs.
type lruSet struct {
	cap  int
	tick uint64
	at   map[int]uint64 // sid -> last access tick
}

func newLRUSet(capacity int) *lruSet {
	return &lruSet{cap: capacity, at: make(map[int]uint64)}
}

// Touch records an access and reports whether it hit the resident set.
func (l *lruSet) Touch(sid int) bool {
	l.tick++
	if _, ok := l.at[sid]; ok {
		l.at[sid] = l.tick
		return true
	}
	if len(l.at) >= l.cap {
		oldSid, oldTick := -1, ^uint64(0)
		for s, tk := range l.at {
			if tk < oldTick {
				oldSid, oldTick = s, tk
			}
		}
		delete(l.at, oldSid)
	}
	l.at[sid] = l.tick
	return false
}

// Reset clears the set (power loss).
func (l *lruSet) Reset() {
	l.at = make(map[int]uint64)
	l.tick = 0
}
