package core

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/wal"
)

// This file is the metadata-journal layer: shard routing, TID and version
// allocation, record appends' shared helpers, per-shard high-water
// checkpointing (§4.1.2), and the quiescent pressure report. The commit
// pipeline (commit.go, global.go), consolidation (consolidate.go) and slot
// release (slots.go) all append through these helpers; recovery
// (recover.go) is their read side.

// shardFor maps a committing core to its journal shard.
func (s *SSP) shardFor(core int) int { return core % len(s.journals) }

// shardOfSlot maps slot-keyed records (consolidation, release, and a global
// transaction's prepare records) to the slot's owning shard, spreading them
// deterministically.
func (s *SSP) shardOfSlot(sid int) int { return sid % len(s.journals) }

// allocTID draws the next transaction ID. Callers appending to a journal
// shard must hold that shard's lock across the draw and the append — a
// global commit holds every involved shard's lock — so each shard's stream
// stays TID-monotonic; the fall-back path needs no lock (a fall-back log
// only ever receives its own core's records).
func (s *SSP) allocTID() uint32 { return s.nextTID.Add(1) }

// allocVer draws the next slot update version; call under the owning
// page's lock (or with the slot otherwise quiescent under structMu).
func (s *SSP) allocVer() uint32 { return s.nextVer.Add(1) }

// sharded reports whether the journal runs with more than one shard; the
// single-journal paper model skips the per-record version (see meta.go).
func (s *SSP) sharded() bool { return len(s.journals) > 1 }

// journalPayload encodes a record payload for this machine's journal
// geometry.
func (s *SSP) journalPayload(sid int, st slotState) []byte {
	return encodeJournalPayload(sid, st, s.env.Layout.FrameIndex, s.sharded())
}

// appendRecord appends one slot-state record to shard si and accounts it:
// dirty-slot marking and the per-shard/aggregate record counters. Caller
// holds journalMu[si] in parallel mode; core routes the per-core counter
// shard (pass a negative core for background records charged to the shared
// shard).
func (s *SSP) appendRecord(si int, core int, rec wal.Record, sid int, at engine.Cycles) engine.Cycles {
	t := s.journals[si].Append(rec, at)
	s.dirtySlots[si][sid] = struct{}{}
	if core >= 0 {
		s.env.StatsFor(core).JournalRecords++
	} else {
		s.env.Stats.JournalRecords++
	}
	s.env.Stats.JournalShardRecords[si]++
	return t
}

// overHighWater reports whether shard si's ring passed the checkpoint
// trigger (§4.1.2). Caller holds journalMu[si] in parallel mode.
func (s *SSP) overHighWater(si int) bool {
	return float64(s.journals[si].Used()) >= s.cfg.JournalHighWater*float64(s.journals[si].Capacity())
}

// maybeCheckpointShard applies shard si's journal to the persistent slot
// array and truncates the ring once it passes its high-water mark (§4.1.2
// "Checkpointing"). Checkpointing is per-shard: a hot core fills only its
// own ring and drains only its own dirty slots, so it cannot force global
// checkpoints. Background work: bank time only. Caller holds structMu and
// journalMu[si] in parallel mode.
func (s *SSP) maybeCheckpointShard(si int, at engine.Cycles) {
	if !s.overHighWater(si) {
		return
	}
	s.checkpointShard(si, at)
}

// maybeCheckpointAll runs the per-shard high-water check on every shard.
// Serial mode only (the commit path's post-consolidation check).
func (s *SSP) maybeCheckpointAll(at engine.Cycles) {
	for si := range s.journals {
		s.maybeCheckpointShard(si, at)
	}
}

// checkpointShard writes the final state of every slot dirtied through
// shard si to the persistent SSP cache and resets that shard's ring
// ("capture the final state of a modified cache entry and only write it
// back to the persistent cache"). The checkpointed entries carry their slot
// update versions, so records for the same slots still sitting in other
// shards' rings are ordered against the checkpoint at recovery.
//
// Cross-shard rule: if this ring holds coordinator end records of global
// transactions whose prepare records live in OTHER shards' rings, those
// prepares lose their proof of commit once this ring truncates and is
// overwritten — recovery would roll a committed transaction back in the
// participant shards only, tearing it. So the checkpoint also persists
// every such transaction's slots (pendingGlobalSlots, recorded at global
// publish time): the slot array then supersedes the orphaned prepares via
// the version guard, exactly as it supersedes this shard's own truncated
// records. Reading another shard's slot is safe here — slotSnapshot takes
// only the owning page's lock (journalMu → pageMeta.mu order), and
// slotShadow never holds state whose journal records are not yet durable.
func (s *SSP) checkpointShard(si int, at engine.Cycles) {
	dirty := s.dirtySlots[si]
	pending := s.pendingGlobalSlots[si]
	if len(dirty) == 0 && len(pending) == 0 {
		s.journals[si].Reset()
		return
	}
	t := at
	sids := make([]int, 0, len(dirty)+len(pending))
	for sid := range dirty {
		sids = append(sids, sid)
	}
	for sid := range pending {
		if _, own := dirty[sid]; !own {
			sids = append(sids, sid)
		}
	}
	sort.Ints(sids)
	for _, sid := range sids {
		t = s.env.Mem.WriteLine(s.slotAddr(sid), encodeSlot(s.slotSnapshot(sid), s.env.Layout.FrameIndex), t, stats.CatCheckpoint)
	}
	s.journals[si].Reset()
	clear(dirty)
	clear(pending)
	s.env.Stats.Checkpoints++
	s.env.Stats.JournalShardCheckpoints[si]++
	s.clock(t)
}

// slotSnapshot reads slotShadow[sid] consistently: under the owning page's
// lock when the slot is owned (commits on other shards update it under
// that lock), directly otherwise (unowned slots change only under structMu,
// which the checkpoint caller holds).
func (s *SSP) slotSnapshot(sid int) slotState {
	if owner := s.slotOwner[sid]; owner != nil {
		s.lockMeta(owner)
		defer s.unlockMeta(owner)
		return s.slotShadow[sid]
	}
	return s.slotShadow[sid]
}

// JournalShardPressure describes one metadata-journal shard's state at a
// quiescent point: the ring's instantaneous fill plus the work it absorbed
// since the last stats reset.
type JournalShardPressure struct {
	Shard       int
	UsedBytes   int // bytes appended since the shard's last checkpoint
	Capacity    int // ring capacity in bytes
	Records     uint64
	Checkpoints uint64
}

// FillFrac returns the shard ring's current fill fraction.
func (p JournalShardPressure) FillFrac() float64 {
	if p.Capacity == 0 {
		return 0
	}
	return float64(p.UsedBytes) / float64(p.Capacity)
}

// JournalPressure reports per-shard journal state. Quiescent-machine
// helper, like Stats aggregation.
func (s *SSP) JournalPressure() []JournalShardPressure {
	out := make([]JournalShardPressure, len(s.journals))
	for i, j := range s.journals {
		out[i] = JournalShardPressure{
			Shard:       i,
			UsedBytes:   j.Used(),
			Capacity:    j.Capacity(),
			Records:     s.env.Stats.JournalShardRecords[i],
			Checkpoints: s.env.Stats.JournalShardCheckpoints[i],
		}
	}
	return out
}

// slotAddr returns slot sid's durable address in the persistent slot array.
func (s *SSP) slotAddr(sid int) memsim.PAddr {
	return s.env.Layout.SSPSlotsBase + memsim.PAddr(sid*slotBytes)
}
