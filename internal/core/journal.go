package core

import (
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/wal"
)

// This file is the metadata-journal layer: shard routing, TID and version
// allocation, record appends' shared helpers, the group-commit protocol
// (Config.GroupCommitWindow), per-shard high-water checkpointing (§4.1.2),
// and the quiescent pressure report. The commit pipeline (commit.go,
// global.go), consolidation (consolidate.go) and slot release (slots.go)
// all append through these helpers; recovery (recover.go) is their read
// side.

// shardFor maps a committing core to its journal shard.
func (s *SSP) shardFor(core int) int { return core % len(s.journals) }

// shardOfSlot maps slot-keyed records (consolidation, release, and a global
// transaction's prepare records) to the slot's owning shard, spreading them
// deterministically.
func (s *SSP) shardOfSlot(sid int) int { return sid % len(s.journals) }

// allocTID draws the next transaction ID. Callers appending to a journal
// shard must hold that shard's lock across the draw and the append — a
// global commit holds every involved shard's lock — so each shard's stream
// stays TID-monotonic; the fall-back path needs no lock (a fall-back log
// only ever receives its own core's records).
func (s *SSP) allocTID() uint32 { return s.nextTID.Add(1) }

// allocVer draws the next slot update version; call under the owning
// page's lock (or with the slot otherwise quiescent under structMu).
func (s *SSP) allocVer() uint32 { return s.nextVer.Add(1) }

// sharded reports whether the journal runs with more than one shard; the
// single-journal paper model skips the per-record version (see meta.go).
func (s *SSP) sharded() bool { return len(s.journals) > 1 }

// journalPayload encodes a record payload for this machine's journal
// geometry.
func (s *SSP) journalPayload(sid int, st slotState) []byte {
	return encodeJournalPayload(sid, st, s.env.Layout.FrameIndex, s.sharded())
}

// appendRecord appends one slot-state record to shard si and accounts it:
// dirty-slot marking and the per-shard/aggregate record counters. Caller
// holds journalMu[si] in parallel mode; core routes the per-core counter
// shard (pass a negative core for background records charged to the shared
// shard).
func (s *SSP) appendRecord(si int, core int, rec wal.Record, sid int, at engine.Cycles) engine.Cycles {
	t := s.journals[si].Append(rec, at)
	s.markUnsealed(si)
	s.dirtySlots[si][sid] = struct{}{}
	if core >= 0 {
		s.env.StatsFor(core).JournalRecords++
	} else {
		s.env.Stats.JournalRecords++
	}
	s.env.Stats.JournalShardRecords[si]++
	return t
}

// appendBatch appends one transaction's update-record batch (recUpdate …
// recUpdateEnd) for the sorted, non-empty write-set pages to shard si under
// tid, snapshotting each page's slot state as it goes. Caller holds
// journalMu[si] in parallel mode. Returns the pending slot publications and
// the append completion time; the batch is NOT yet flushed.
func (s *SSP) appendBatch(si, core int, pages []int, tid uint32, at engine.Cycles) ([]slotPub, engine.Cycles) {
	t := at
	pubs := make([]slotPub, 0, len(pages))
	for i, vpn := range pages {
		pub := s.snapshotPage(core, vpn)
		kind := uint8(recUpdate)
		if i == len(pages)-1 {
			kind = recUpdateEnd
		}
		t = s.appendRecord(si, core, wal.Record{TID: tid, Kind: kind, Payload: s.journalPayload(pub.sid, pub.st)}, pub.sid, t)
		s.noteUpdate(pub.meta, si)
		pubs = append(pubs, pub)
	}
	return pubs, t
}

// localCommitLocked is the single-shard journal leg body: append the batch,
// flush the shard, publish the slot states. Caller holds journalMu[si] in
// parallel mode (publication under the shard lock keeps a concurrent
// checkpoint from truncating the records before their states reach
// slotShadow). Returns the durable time and whether the ring passed its
// high-water mark.
func (s *SSP) localCommitLocked(si, core int, pages []int, at engine.Cycles) (engine.Cycles, bool) {
	tid := s.allocTID()
	pubs, t := s.appendBatch(si, core, pages, tid, at)
	t = s.flushShard(si, core, t)
	s.publishSlots(pubs)
	return t, s.overHighWater(si)
}

// drainShardCheckpoint is the parallel-mode commit tail: re-acquire
// structMu → journalMu[si] in lock order and re-check the high-water
// trigger under the locks. Only shard si is checkpointed, so one hot core
// cannot force global checkpoints.
func (s *SSP) drainShardCheckpoint(si int, at engine.Cycles) {
	s.lockStruct()
	s.lockShard(si)
	s.maybeCheckpointShard(si, at)
	s.unlockShard(si)
	s.unlockStruct()
}

// ---------------------------------------------------------------------------
// Relaxed-durability epoch engine (Config.DurabilityEpoch > 0). A relaxed
// commit (CommitRelaxed) buffers its journal batch without flushing and
// returns: the batch joins the shard's open EPOCH, together with the
// commit's issued-but-unfenced data flushes and its deferred slot-shadow
// publications. The epoch hardens — in one amortised step — when its age
// reaches DurabilityEpoch cycles, at Sync or Drain, before any checkpoint
// truncation, or piggybacked on any synchronous flush of the shard:
// hardening waits (in simulated time) for the members' data fences,
// appends one recEpochSeal record, flushes the ring once, and only then
// installs the members' slot states. Every explicit flush goes through
// flushShard, so a seal always precedes it and epoch boundaries are the
// ONLY positions recovery may cut replay at — durable bytes past a shard's
// last seal can only be incidental full-line drains of an epoch that never
// hardened, and are treated as absent (recover.go).
//
// Locking: a shard's epoch state (shardEpoch) sits with the rest of the
// shard's journal state under journalMu[si] — hardening takes no lock the
// corresponding synchronous flush would not have taken, so the established
// structMu → journalMu[i] → pageMeta.mu order is unchanged (the deferred
// publications take page locks under the shard lock, exactly like
// localCommitLocked's publish-after-flush).

// shardEpoch is one journal shard's open relaxed-durability epoch.
type shardEpoch struct {
	open   bool          // at least one relaxed commit is buffered unsealed
	openAt engine.Cycles // the first such commit's buffering time
	fence  engine.Cycles // max in-flight data-flush completion of the members
	pubs   []slotPub     // member publications deferred until the seal
	dirty  bool          // any record appended since the last seal
	holds  []int         // participant shards' prepHolds to release at the seal
}

// markUnsealed notes an append to shard si that the next flush must cover
// with a seal. appendRecord calls it; direct Append sites (the global End,
// group members ride appendRecord) must call it themselves. No-op in the
// synchronous model. Caller holds journalMu[si] in parallel mode.
func (s *SSP) markUnsealed(si int) {
	if s.cfg.DurabilityEpoch > 0 {
		s.epochs[si].dirty = true
	}
}

// noteUpdate records the page's most recent update/prepare-record position
// (pageMeta.lastUpdate) for the relaxed-durability cross-shard barrier.
// No-op in the synchronous model. Caller holds journalMu[si].
func (s *SSP) noteUpdate(meta *pageMeta, si int) {
	if s.cfg.DurabilityEpoch <= 0 {
		return
	}
	s.lockMeta(meta)
	meta.lastUpdate = journalRef{shard: si, mark: s.journals[si].MarkHere()}
	s.unlockMeta(meta)
}

// flushShard makes shard si's ring durable. In relaxed-durability mode
// every explicit flush is an epoch boundary and diverts through
// hardenShardLocked; with DurabilityEpoch == 0 it is a plain stream flush —
// bit-for-bit the synchronous model. Caller holds journalMu[si] in parallel
// mode; core routes the stats shard (negative = background/shared).
func (s *SSP) flushShard(si, core int, at engine.Cycles) engine.Cycles {
	if s.cfg.DurabilityEpoch <= 0 {
		return s.journals[si].Flush(at)
	}
	return s.hardenShardLocked(si, core, at)
}

// hardenShardLocked seals and flushes shard si's unsealed records: wait (in
// simulated time) for the open epoch's in-flight data fences, append one
// recEpochSeal record, flush the ring, then install the epoch's deferred
// slot publications. With nothing unsealed it degenerates to a plain (and
// usually free) flush. Caller holds journalMu[si] in parallel mode.
func (s *SSP) hardenShardLocked(si, core int, at engine.Cycles) engine.Cycles {
	ep := &s.epochs[si]
	if !ep.dirty {
		return s.journals[si].Flush(at)
	}
	t := engine.MaxCycles(at, ep.fence)
	// The seal reuses the stream's last TID: a fresh one could regress the
	// stream when a commit still has to append records under the sealed
	// TID's transaction (a global commit eagerly seals participant shards
	// BEFORE its End record lands on the coordinator, which may be one of
	// them). Recovery filters seals out before the TID merge, so the reuse
	// is invisible there.
	t = s.journals[si].Append(wal.Record{TID: s.journals[si].LastTID(), Kind: recEpochSeal}, t)
	t = s.journals[si].Flush(t)
	st := s.env.Stats
	if core >= 0 {
		st = s.env.StatsFor(core)
	}
	st.EpochSeals++
	if ep.open {
		st.HardenedEpochs++
		st.EpochHardenLag += uint64(t - ep.openAt)
	}
	s.publishSlots(ep.pubs)
	for _, h := range ep.holds {
		s.prepHolds[h].Add(-1)
	}
	*ep = shardEpoch{}
	return t
}

// relaxedLocalCommit is the single-shard journal leg of CommitRelaxed:
// append the batch and return at the buffered-append completion — no flush,
// no publication yet. The batch joins the shard's open epoch; hardening
// installs its slot states. The committer whose buffering time crosses the
// epoch's age bound pays the (amortised) harden itself, so an epoch's
// un-hardened age is bounded by DurabilityEpoch under any commit cadence.
func (s *SSP) relaxedLocalCommit(core int, pages []int, start, fence engine.Cycles) engine.Cycles {
	si := s.shardFor(core)
	s.lockShard(si)
	tid := s.allocTID()
	pubs, t := s.appendBatch(si, core, pages, tid, start)
	ep := &s.epochs[si]
	if !ep.open {
		ep.open = true
		ep.openAt = start
	}
	if fence > ep.fence {
		ep.fence = fence
	}
	ep.pubs = append(ep.pubs, pubs...)
	s.env.StatsFor(core).RelaxedCommits++
	if start >= ep.openAt+s.cfg.DurabilityEpoch {
		t = s.hardenShardLocked(si, core, t)
	}
	needCkpt := s.overHighWater(si)
	s.unlockShard(si)
	if needCkpt && s.parallel {
		s.drainShardCheckpoint(si, t)
	}
	return t
}

// hardenPageUpdates hardens the shard holding the page's most recent
// update/prepare record, unless that shard IS dest — the shard about to
// receive a new record carrying the page's cumulative state (consolidation;
// barrierFlush runs the commit-path equivalent inline). No-op in the
// synchronous model and when the position is already durable. Takes the
// page lock briefly, then the shard lock — separate acquisitions, inside
// the established order.
func (s *SSP) hardenPageUpdates(meta *pageMeta, dest int, at engine.Cycles) engine.Cycles {
	if s.cfg.DurabilityEpoch <= 0 {
		return at
	}
	s.lockMeta(meta)
	upd := meta.lastUpdate
	s.unlockMeta(meta)
	if upd.shard == dest {
		return at
	}
	s.lockShard(upd.shard)
	if !s.journals[upd.shard].Durable(upd.mark) {
		at = s.hardenShardLocked(upd.shard, -1, at)
	}
	s.unlockShard(upd.shard)
	return at
}

// HardenIdle implements txn.IdleHardener: it hardens the calling core's
// own metadata shard's open epoch, if one is open, and reports whether a
// harden ran. relaxedLocalCommit bills the epoch age bound to the NEXT
// committer crossing it, so a shard whose cores all go quiet would hold
// its last acknowledged epoch volatile until a Sync or Drain; a serving
// loop's idle path calls this instead. No age check here: an idle core's
// clock is frozen, so the caller decides "idle long enough" in host time.
func (s *SSP) HardenIdle(core int, at engine.Cycles) (engine.Cycles, bool) {
	if s.cfg.DurabilityEpoch <= 0 {
		return at, false
	}
	si := s.shardFor(core)
	s.lockShard(si)
	if !s.epochs[si].dirty {
		s.unlockShard(si)
		return at, false
	}
	t := s.hardenShardLocked(si, core, at)
	s.unlockShard(si)
	s.clock(t)
	return t, true
}

// hardenAllShards hardens every shard's open epoch (Sync, Drain). The
// shards are independent rings flushed concurrently in simulated time, so
// the completion is the max — not the sum — of the per-shard hardens.
func (s *SSP) hardenAllShards(core int, at engine.Cycles) engine.Cycles {
	t := at
	for si := range s.journals {
		s.lockShard(si)
		if done := s.hardenShardLocked(si, core, at); done > t {
			t = done
		}
		s.unlockShard(si)
	}
	return t
}

// Sync implements txn.RelaxedBackend's durability upgrade barrier: on
// return, every commit acknowledged before the call — relaxed or not — is
// durable. With DurabilityEpoch == 0 everything already is, and Sync is
// free.
func (s *SSP) Sync(core int, at engine.Cycles) engine.Cycles {
	if s.cfg.DurabilityEpoch <= 0 {
		return at
	}
	t := s.hardenAllShards(core, at)
	s.clock(t)
	return t
}

// ---------------------------------------------------------------------------
// Group commit (Config.GroupCommitWindow > 0): the journal legs of
// concurrent commits bound for the same shard coalesce into one ring
// append sequence and ONE flush. The first committer (the leader) opens a
// window; followers arriving while it is open append their batches behind
// the leader's under the same shard lock and wait — holding no locks — on
// the leader's flush ticket, which carries the durable cycle. The leader
// closes the window, flushes once at the max of the members' append
// completions, publishes every member's slot states under the shard lock,
// and closes the ticket.
//
// Crash semantics are unchanged: the ring bytes of a group are exactly the
// members' ordinary batches in append order, so recovery's per-shard batch
// validation applies verbatim — a torn group flush loses a suffix of the
// ring, and any member whose recUpdateEnd falls past the tear (every
// follower behind a torn leader included) drops as an unsealed batch.

// commitGroup is one shard's open group-commit window.
type commitGroup struct {
	openAt     engine.Cycles // leader arrival
	deadline   engine.Cycles // simulated close time: leader arrival + window
	appendDone engine.Cycles // latest member append completion
	pubs       []slotPub     // every member's pending slot publications
	durable    engine.Cycles // leader's flush completion; valid once done closes
	done       chan struct{} // the flush ticket: closed after flush + publication
	cores      []int         // windowed mode: follower cores parked on the ticket
}

// admits reports whether a commit at simulated time `at` may join the
// group: within the window on EITHER side of the leader's arrival. The
// upper bound is the window's close; the lower bound keeps a core whose
// simulated clock has drifted far behind the leader from coupling to the
// leader's much later flush — such a commit is not concurrent with the
// window in simulated time (its own flush would long have completed) and
// riding the ticket would teleport its clock forward by the whole drift.
func (g *commitGroup) admits(at, window engine.Cycles) bool {
	return at <= g.deadline && at+window >= g.openAt
}

// maxGroupHostWait caps the leader's host-side rendezvous sleep. Host time
// does not advance simulated time, so the cap bounds only wall-clock cost,
// not the simulated window.
const maxGroupHostWait = 20 * time.Microsecond

// groupHostWait holds the leader open so concurrently committing cores can
// join its batch. Group admission itself is decided by the simulated
// deadline; the sleep is only the rendezvous heuristic that gives the host
// scheduler a chance to run the would-be followers. The simulation runs a
// few host-nanoseconds per simulated cycle, so the sleep over-covers the
// window (capped — host time never advances simulated time, the cap bounds
// only wall-clock cost).
func (s *SSP) groupHostWait() {
	w := 4 * time.Duration(s.cfg.GroupCommitWindow) * time.Nanosecond
	if w > maxGroupHostWait {
		w = maxGroupHostWait
	}
	time.Sleep(w)
}

// groupCommit is the group-commit implementation of commitProtocol: stages
// 3-4 of the pipeline with the shard flush amortised over every member of
// the window. Serial execution — where no concurrent committer can exist —
// degenerates to batches of one with the exact single-shard behaviour.
//
// Windowed mode (env.Sched.Windowed()): the two host-time blocking points —
// the leader's rendezvous sleep and the followers' flush-ticket channel
// wait — divert through the window scheduler (WaitCommitWindow, TicketPark/
// TicketWake). Admission is then decided purely in simulated time, so which
// commits group together — and hence GroupCommitBatches/Followers — is
// deterministic, where free-running mode depends on the host schedule.
type groupCommit struct{ s *SSP }

// windowed reports whether the deterministic window scheduler governs this
// run (it never changes while a core is executing).
func (s *SSP) windowed() bool {
	return s.env.Sched != nil && s.env.Sched.Windowed()
}

// Like commitLocal, a group's flush hardens the members' UpdateEnd seals —
// the commit points — so everything runs from fence.
func (g groupCommit) journalAndPublish(core int, pages []int, _, fence engine.Cycles) engine.Cycles {
	s := g.s
	at := fence
	si := s.shardFor(core)
	if !s.parallel {
		t, _ := s.localCommitLocked(si, core, pages, at)
		s.env.StatsFor(core).GroupCommitBatches++
		return t
	}
	windowed := s.windowed()

	s.lockShard(si)
	if grp := s.groups[si]; grp != nil {
		if grp.admits(at, s.cfg.GroupCommitWindow) {
			// Follower: append behind the leader, ride its flush ticket.
			tid := s.allocTID()
			pubs, tA := s.appendBatch(si, core, pages, tid, at)
			grp.pubs = append(grp.pubs, pubs...)
			if tA > grp.appendDone {
				grp.appendDone = tA
			}
			s.env.StatsFor(core).GroupCommitFollowers++
			if windowed {
				// Park on the scheduler's ticket instead of the channel:
				// the leader (itself parked in its rendezvous) can only
				// flush after this core yields the execution slot, and
				// TicketWake's scheduler hand-off orders the read of
				// grp.durable after the leader's write.
				grp.cores = append(grp.cores, core)
				s.unlockShard(si)
				s.env.Sched.TicketPark(core)
				return engine.MaxCycles(at, grp.durable)
			}
			s.unlockShard(si)
			<-grp.done // no locks held: the ticket wait is outside the lock order
			return engine.MaxCycles(at, grp.durable)
		}
		// Outside the window (expired, or this core's clock drifted far
		// behind the leader) while the leader has not flushed yet: commit
		// solo. The solo flush may harden the open group's records early —
		// harmless, the leader's own flush then writes (almost) nothing.
		t, need := s.localCommitLocked(si, core, pages, at)
		s.env.StatsFor(core).GroupCommitBatches++
		s.unlockShard(si)
		if need {
			s.drainShardCheckpoint(si, t)
		}
		return t
	}

	// Leader: open the window, append, linger, then flush for everyone.
	grp := &commitGroup{openAt: at, deadline: at + s.cfg.GroupCommitWindow, done: make(chan struct{})}
	tid := s.allocTID()
	grp.pubs, grp.appendDone = s.appendBatch(si, core, pages, tid, at)
	s.groups[si] = grp
	s.unlockShard(si)

	if (s.env.Cores()+len(s.journals)-1-si)/len(s.journals) > 1 {
		// The rendezvous only makes sense when another core maps to THIS
		// shard (cores c with c mod shards == si); with one core on the
		// shard no follower can ever arrive and the wait would be pure
		// wall-clock waste.
		if windowed {
			// Deterministic rendezvous: park until no schedulable core's
			// clock is <= the window's simulated deadline — every core
			// that could still be admitted has either joined or provably
			// commits outside the window.
			s.env.Sched.WaitCommitWindow(core, grp.deadline)
		} else {
			s.groupHostWait()
		}
	}

	s.lockShard(si)
	s.groups[si] = nil // close the window: later arrivals lead new groups
	t := s.flushShard(si, core, grp.appendDone)
	grp.durable = t
	// Publish every member's states under the shard lock, before any
	// checkpoint can truncate the just-flushed records.
	s.publishSlots(grp.pubs)
	s.env.StatsFor(core).GroupCommitBatches++
	need := s.overHighWater(si)
	s.unlockShard(si)
	if len(grp.cores) > 0 {
		// Windowed followers: ready them through the scheduler (grants
		// resume in deterministic clock order at this core's next yield).
		s.env.Sched.TicketWake(grp.cores)
	}
	close(grp.done)
	if need {
		s.drainShardCheckpoint(si, t)
	}
	return t
}

// overHighWater reports whether shard si's ring passed the checkpoint
// trigger (§4.1.2). Caller holds journalMu[si] in parallel mode.
func (s *SSP) overHighWater(si int) bool {
	return float64(s.journals[si].Used()) >= s.cfg.JournalHighWater*float64(s.journals[si].Capacity())
}

// maybeCheckpointShard applies shard si's journal to the persistent slot
// array and truncates the ring once it passes its high-water mark (§4.1.2
// "Checkpointing"). Checkpointing is per-shard: a hot core fills only its
// own ring and drains only its own dirty slots, so it cannot force global
// checkpoints. Background work: bank time only. Caller holds structMu and
// journalMu[si] in parallel mode.
func (s *SSP) maybeCheckpointShard(si int, at engine.Cycles) {
	if !s.overHighWater(si) {
		return
	}
	s.checkpointShard(si, at)
}

// maybeCheckpointAll runs the per-shard high-water check on every shard.
// Serial mode only (the commit path's post-consolidation check).
func (s *SSP) maybeCheckpointAll(at engine.Cycles) {
	for si := range s.journals {
		s.maybeCheckpointShard(si, at)
	}
}

// checkpointShard writes the final state of every slot dirtied through
// shard si to the persistent SSP cache and resets that shard's ring
// ("capture the final state of a modified cache entry and only write it
// back to the persistent cache"). The checkpointed entries carry their slot
// update versions, so records for the same slots still sitting in other
// shards' rings are ordered against the checkpoint at recovery.
//
// Cross-shard rule: if this ring holds coordinator end records of global
// transactions whose prepare records live in OTHER shards' rings, those
// prepares lose their proof of commit once this ring truncates and is
// overwritten — recovery would roll a committed transaction back in the
// participant shards only, tearing it. So the checkpoint also persists
// every such transaction's slots (pendingGlobalSlots, recorded at global
// publish time): the slot array then supersedes the orphaned prepares via
// the version guard, exactly as it supersedes this shard's own truncated
// records. Reading another shard's slot is safe here — slotSnapshot takes
// only the owning page's lock (journalMu → pageMeta.mu order), and
// slotShadow never holds state whose journal records are not yet durable.
//
// Group-commit rule (same shape): an OPEN group window on this shard holds
// member batches that are appended — and marked dirty — but not yet
// published to slotShadow, so slotSnapshot would persist their slots'
// PRE-group states while the truncation destroys the records themselves,
// silently losing commits the members will be told are durable. The
// checkpoint therefore first FLUSHES the ring — the members' records,
// End seals included, become durable and hence replayable, exactly the
// invariant the dirty/pendingGlobal slots already enjoy — and then writes
// the group's pending publication states (the newest version per slot,
// against a possibly newer slotShadow) into the slot array before
// truncating. Both legs matter: without the flush the multi-line slot
// writes would be the SOLE durable copy and a crash between two of them
// would tear a member transaction; without the slot writes the truncation
// would orphan the records' effects. The leader's later flush of the
// reset ring writes nothing. The checkpoint effectively commits the open
// group a little early — every member's full batch is already in
// grp.pubs, so each transaction stays all-or-nothing.
func (s *SSP) checkpointShard(si int, at engine.Cycles) {
	// Relaxed-durability legs. A participant shard whose prepare records
	// still await their coordinator End's hardening must not truncate
	// (relaxedGlobalCommit's prepHold) — defer; the high-water trigger
	// refires once the hold clears. Otherwise harden this shard's own open
	// epoch first: the members' records become durable and their slot
	// states published, so the dirty-slot persistence below captures them
	// and the truncation orphans nothing.
	if s.cfg.DurabilityEpoch > 0 {
		if s.prepHolds[si].Load() > 0 {
			return
		}
		at = s.hardenShardLocked(si, -1, at)
	}
	dirty := s.dirtySlots[si]
	pending := s.pendingGlobalSlots[si]
	groupStates := map[int]slotState{}
	if grp := s.groups[si]; grp != nil {
		at = s.flushShard(si, -1, at)
		for _, p := range grp.pubs {
			if cur, ok := groupStates[p.sid]; !ok || p.st.ver > cur.ver {
				groupStates[p.sid] = p.st
			}
		}
	}
	if len(dirty) == 0 && len(pending) == 0 && len(groupStates) == 0 {
		s.journals[si].Reset()
		return
	}
	t := at
	sids := make([]int, 0, len(dirty)+len(pending)+len(groupStates))
	for sid := range dirty {
		sids = append(sids, sid)
	}
	for sid := range pending {
		if _, own := dirty[sid]; !own {
			sids = append(sids, sid)
		}
	}
	for sid := range groupStates {
		_, d := dirty[sid]
		_, p := pending[sid]
		if !d && !p {
			sids = append(sids, sid)
		}
	}
	sort.Ints(sids)
	for _, sid := range sids {
		st := s.slotSnapshot(sid)
		if g, ok := groupStates[sid]; ok && g.ver > st.ver {
			st = g
		}
		t = s.env.Mem.WriteLine(s.slotAddr(sid), encodeSlot(st, s.env.Layout.FrameIndex), t, stats.CatCheckpoint)
	}
	s.journals[si].Reset()
	clear(dirty)
	clear(pending)
	s.env.Stats.Checkpoints++
	s.env.Stats.JournalShardCheckpoints[si]++
	s.clock(t)
}

// slotSnapshot reads slotShadow[sid] consistently: under the owning page's
// lock when the slot is owned (commits on other shards update it under
// that lock), directly otherwise (unowned slots change only under structMu,
// which the checkpoint caller holds).
func (s *SSP) slotSnapshot(sid int) slotState {
	if owner := s.slotOwner[sid]; owner != nil {
		s.lockMeta(owner)
		defer s.unlockMeta(owner)
		return s.slotShadow[sid]
	}
	return s.slotShadow[sid]
}

// JournalShardPressure describes one metadata-journal shard's state at a
// quiescent point: the ring's instantaneous fill plus the work it absorbed
// since the last stats reset.
type JournalShardPressure struct {
	Shard       int
	UsedBytes   int // bytes appended since the shard's last checkpoint
	Capacity    int // ring capacity in bytes
	Records     uint64
	Checkpoints uint64
}

// FillFrac returns the shard ring's current fill fraction.
func (p JournalShardPressure) FillFrac() float64 {
	if p.Capacity == 0 {
		return 0
	}
	return float64(p.UsedBytes) / float64(p.Capacity)
}

// JournalPressure reports per-shard journal state. Quiescent-machine
// helper, like Stats aggregation.
func (s *SSP) JournalPressure() []JournalShardPressure {
	out := make([]JournalShardPressure, len(s.journals))
	for i, j := range s.journals {
		out[i] = JournalShardPressure{
			Shard:       i,
			UsedBytes:   j.Used(),
			Capacity:    j.Capacity(),
			Records:     s.env.Stats.JournalShardRecords[i],
			Checkpoints: s.env.Stats.JournalShardCheckpoints[i],
		}
	}
	return out
}

// slotAddr returns slot sid's durable address in the persistent slot array.
func (s *SSP) slotAddr(sid int) memsim.PAddr {
	return s.env.Layout.SSPSlotsBase + memsim.PAddr(sid*slotBytes)
}
