package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/wal"
)

// Tests for the commit-path batching knobs: eager (write-behind) data
// flushing and group commit. Serial machines only — the parallel legs are
// raced by internal/machine.TestParallelGroupCommit and trap-swept by
// internal/crashsweep.

// TestEagerFlushCommittedEquivalence runs the same transaction script with
// the eager knob on and off and asserts identical committed state: the
// knob changes only when data write-backs are issued, never what commits.
func TestEagerFlushCommittedEquivalence(t *testing.T) {
	script := func(s *SSP) {
		for i := 0; i < 6; i++ {
			core := 0
			s.Begin(core, 0)
			for j := 0; j <= i%3; j++ {
				page := (i + j) % 2
				line := (3*i + 5*j) % 64
				s.Store(core, va(page, line), []byte{byte(0x10 + i)}, 0)
				// A second store to the same line (clustered writes).
				s.Store(core, va(page, line)+8, []byte{byte(0x20 + j)}, 0)
			}
			s.Commit(core, 0)
		}
	}
	envA, a := testEnv(t, 1)
	mapPage(envA, 0)
	mapPage(envA, 1)
	script(a)

	envB, b := testEnv(t, 1)
	b.cfg.EagerFlush = true
	mapPage(envB, 0)
	mapPage(envB, 1)
	script(b)

	if envB.Stats.EagerFlushLines == 0 {
		t.Fatal("eager run issued no write-behind flushes")
	}
	if envA.Stats.EagerFlushLines != 0 {
		t.Fatal("deferred run counted eager flushes")
	}
	if envA.Stats.Commits != envB.Stats.Commits || envA.Stats.JournalRecords != envB.Stats.JournalRecords {
		t.Fatalf("commit accounting diverged: commits %d/%d, records %d/%d",
			envA.Stats.Commits, envB.Stats.Commits, envA.Stats.JournalRecords, envB.Stats.JournalRecords)
	}
	// Crash both; recovered durable state must agree everywhere written.
	crashRecover(t, envA, a)
	crashRecover(t, envB, b)
	var bufA, bufB [1]byte
	for page := 0; page < 2; page++ {
		for line := 0; line < 64; line++ {
			a.Load(0, va(page, line), bufA[:], 0)
			b.Load(0, va(page, line), bufB[:], 0)
			if bufA[0] != bufB[0] {
				t.Fatalf("page %d line %d: deferred %#x, eager %#x", page, line, bufA[0], bufB[0])
			}
		}
	}
}

// TestEagerFlushRollsBackUncommitted is the eager crash class in unit
// form: write-behind flushes land durably in the shadow frame BEFORE the
// transaction commits, and a crash at that point must roll the data back
// via the shadow slots — the committed bitmap never pointed at the eagerly
// flushed lines.
func TestEagerFlushRollsBackUncommitted(t *testing.T) {
	env, s := testEnv(t, 1)
	s.cfg.EagerFlush = true
	mapPage(env, 0)

	// Commit a baseline value so the page has durable committed data.
	s.Begin(0, 0)
	s.Store(0, va(0, 0), []byte{0x11}, 0)
	s.Commit(0, 0)

	// Open a transaction and write three distinct lines: the write-behind
	// queue (depth 2) must have flushed the first line by the third store.
	s.Begin(0, 0)
	s.Store(0, va(0, 0), []byte{0x22}, 0)
	s.Store(0, va(0, 1), []byte{0x33}, 0)
	s.Store(0, va(0, 2), []byte{0x44}, 0)

	meta := s.metaOf(0)
	cur := (meta.current >> 0) & 1
	var shadow [1]byte
	env.Mem.Peek(meta.lineAddr(0, cur), shadow[:])
	if shadow[0] != 0x22 {
		t.Fatalf("line 0 not eagerly flushed to the shadow frame: %#x", shadow[0])
	}
	if meta.committed&1 == cur {
		t.Fatal("committed bitmap moved before commit")
	}

	// Power failure before commit: recovery must restore the baseline.
	crashRecover(t, env, s)
	var buf [1]byte
	s.Load(0, va(0, 0), buf[:], 0)
	if buf[0] != 0x11 {
		t.Fatalf("eagerly flushed uncommitted data survived: %#x, want 0x11", buf[0])
	}
}

// TestGroupWindowSerialDegenerates asserts that a serial machine with a
// group-commit window behaves exactly like the per-commit model: identical
// journal record streams (no concurrent committer can ever join a serial
// window) with every commit counted as a batch of one.
func TestGroupWindowSerialDegenerates(t *testing.T) {
	script := func(s *SSP) {
		for i := 0; i < 5; i++ {
			s.Begin(0, 0)
			s.Store(0, va(i%2, i), []byte{byte(i + 1)}, 0)
			s.Commit(0, 0)
		}
	}
	envA, a := testEnv(t, 1)
	mapPage(envA, 0)
	mapPage(envA, 1)
	script(a)

	envB, b := testEnv(t, 1)
	b.cfg.GroupCommitWindow = 4096
	mapPage(envB, 0)
	mapPage(envB, 1)
	script(b)

	recsA := wal.Scan(envA.Mem, envA.Layout.JournalBase[0], envA.Layout.Cfg.JournalBytes)
	recsB := wal.Scan(envB.Mem, envB.Layout.JournalBase[0], envB.Layout.Cfg.JournalBytes)
	if len(recsA) != len(recsB) {
		t.Fatalf("record streams diverged: %d vs %d records", len(recsA), len(recsB))
	}
	for i := range recsA {
		if recsA[i].Kind != recsB[i].Kind || recsA[i].TID != recsB[i].TID ||
			string(recsA[i].Payload) != string(recsB[i].Payload) {
			t.Fatalf("record %d diverged: %+v vs %+v", i, recsA[i], recsB[i])
		}
	}
	if got, want := envB.Stats.GroupCommitBatches, envB.Stats.Commits; got != want {
		t.Errorf("serial group batches = %d, want one per commit (%d)", got, want)
	}
	if envB.Stats.GroupCommitFollowers != 0 {
		t.Errorf("serial run counted %d followers", envB.Stats.GroupCommitFollowers)
	}
}

// runGroupedPair drives the group-commit journal leg by hand on a serial
// two-core machine: core 0 (the leader) and core 1 (the follower) each
// append their one-page update batch to shard 0, and ONE flush hardens
// both — exactly the ring state a parallel group window produces, but
// deterministically, so a write trap can cut the flush at every point.
// Returns the journal's flush-write count delta.
func runGroupedPair(s *SSP) uint64 {
	before := s.journals[0].FlushWrites()
	var pubs []slotPub
	t := engine.Cycles(0)
	var pageSets [2][]int
	for core := 0; core <= 1; core++ {
		s.Begin(core, 0)
		s.Store(core, va(core, 0), []byte{byte(0xA0 + core)}, 0)
		pageSets[core] = s.sortedWS(core)
		t = s.barrierFlush(core, pageSets[core], t, nil)
		t = s.flushData(core, pageSets[core], t)
	}
	for core := 0; core <= 1; core++ {
		tid := s.allocTID()
		p, tA := s.appendBatch(0, core, pageSets[core], tid, t)
		pubs = append(pubs, p...)
		t = tA
	}
	t = s.journals[0].Flush(t)
	s.publishSlots(pubs)
	for core := 0; core <= 1; core++ {
		s.releaseWriteSet(core, pageSets[core], t)
		clear(s.wsb[core])
		s.inTxn[core] = false
	}
	return s.journals[0].FlushWrites() - before
}

// TestGroupFlushTornTail is the group-commit torn-tail crash class: two
// members' batches ride one ring flush, and a power failure is injected
// after every durable NVRAM write of the grouped commit. A torn leader
// batch must take the follower's batch down with it (the follower's bytes
// sit behind the leader's in the ring, so recovery's scan stops at the
// tear); the follower may never survive a torn leader, and the preceding
// committed transaction must survive every cut.
func TestGroupFlushTornTail(t *testing.T) {
	// Reference run: count the grouped commit's durable writes and check
	// the flush coalescing (two batches, ONE tail-line flush write).
	ref, sRef := testEnv(t, 2)
	mapPage(ref, 0)
	mapPage(ref, 1)
	sRef.Begin(0, 0)
	sRef.Store(0, va(0, 1), []byte{0x11}, 0)
	sRef.Commit(0, 0)
	baselineWrites := ref.Stats.NVRAMWriteLines
	if flushes := runGroupedPair(sRef); flushes != 1 {
		t.Fatalf("grouped pair performed %d flush writes, want 1", flushes)
	}
	groupWrites := int64(ref.Stats.NVRAMWriteLines - baselineWrites)
	if groupWrites < 3 {
		t.Fatalf("grouped commit performed only %d durable writes", groupWrites)
	}

	for k := int64(0); k <= groupWrites; k++ {
		env, s := testEnv(t, 2)
		mapPage(env, 0)
		mapPage(env, 1)
		s.Begin(0, 0)
		s.Store(0, va(0, 1), []byte{0x11}, 0)
		s.Commit(0, 0)

		env.Mem.SetWriteTrap(k)
		runGroupedPair(s)
		env.Mem.SetWriteTrap(-1)
		env.Mem.PowerOn()
		env.Mem.ResetTiming()
		crashRecover(t, env, s)

		read := func(page, line int) byte {
			var b [1]byte
			s.Load(0, va(page, line), b[:], 0)
			return b[0]
		}
		if got := read(0, 1); got != 0x11 {
			t.Fatalf("trap %d: committed baseline lost: %#x", k, got)
		}
		leader, follower := read(0, 0) == 0xA0, read(1, 0) == 0xA1
		if follower && !leader {
			t.Fatalf("trap %d: follower batch survived a torn leader flush", k)
		}
	}
}

// TestBarrierFlushChargesMax pins the satellite fix: with pending
// consolidation records in two DIFFERENT shards, the commit-time metadata
// barrier charges the max of the two independent ring flushes, not their
// sum. (memsim charges each flush's bank time either way; the fence is
// what changes.)
func TestBarrierFlushChargesMax(t *testing.T) {
	env, s := shardEnv(t, 2, 2)
	mapPage(env, 0)
	mapPage(env, 1)
	// Dirty both shards' rings with unflushed records and plant barrier
	// marks on both pages.
	for core := 0; core <= 1; core++ {
		s.Begin(core, 0)
		s.Store(core, va(core, 0), []byte{1}, 0)
		s.Commit(core, 0)
	}
	for core := 0; core <= 1; core++ {
		si := s.shardFor(core)
		st := slotState{vpn: core, ppn0: s.lookupMeta(core).ppn0, ppn1: s.lookupMeta(core).ppn1, ver: s.allocVer()}
		s.appendRecord(si, -1, wal.Record{TID: s.allocTID(), Kind: recConsolidate, Payload: s.journalPayload(s.lookupMeta(core).slot, st)}, s.lookupMeta(core).slot, 0)
		s.lookupMeta(core).barrier = journalRef{shard: si, mark: s.journals[si].MarkHere()}
	}
	soloA := s.journals[0].Flush(0) // measure one shard's flush cost...
	s.journals[0].Reset()
	_ = soloA

	// Re-plant shard 0's record (Reset dropped it) and time the barrier.
	st := slotState{vpn: 0, ppn0: s.lookupMeta(0).ppn0, ppn1: s.lookupMeta(0).ppn1, ver: s.allocVer()}
	s.appendRecord(0, -1, wal.Record{TID: s.allocTID(), Kind: recConsolidate, Payload: s.journalPayload(s.lookupMeta(0).slot, st)}, s.lookupMeta(0).slot, 0)
	s.lookupMeta(0).barrier = journalRef{shard: 0, mark: s.journals[0].MarkHere()}

	done := s.barrierFlush(0, []int{0, 1}, 0, nil)
	// Each ring flush alone costs at least one NVRAM write (~hundreds of
	// cycles). Under the old sum rule the two-shard barrier would charge
	// at least twice a single flush; the max rule stays within ~1.5x.
	if soloA <= 0 {
		t.Fatal("single-shard flush charged no time")
	}
	if done > soloA+soloA/2 {
		t.Errorf("two-shard barrier charged %d cycles, more than 1.5x a single flush (%d): looks like a sum, not a max", done, soloA)
	}
}

// TestCheckpointPersistsOpenGroupStates is the review-caught torn-group
// regression guard: a checkpoint running while a group-commit window is
// still open on the shard truncates the group's (possibly unflushed)
// records and clears their dirty marks, so it MUST write the group's
// pending publication states into the slot array first — otherwise a
// later crash silently loses commits the members were told are durable.
func TestCheckpointPersistsOpenGroupStates(t *testing.T) {
	env, s := testEnv(t, 1)
	s.cfg.GroupCommitWindow = 4096
	mapPage(env, 0)
	s.Begin(0, 0)
	s.Store(0, va(0, 0), []byte{1}, 0)
	s.Commit(0, 0)
	// Arm the trigger by filling the ring directly with background
	// records (commits would checkpoint themselves at the serial tail).
	meta := s.metaOf(0)
	base := slotState{vpn: 0, ppn0: meta.ppn0, ppn1: meta.ppn1, committed: meta.committed, ver: s.allocVer()}
	for !s.overHighWater(0) {
		s.appendRecord(0, -1, wal.Record{TID: s.allocTID(), Kind: recConsolidate, Payload: s.journalPayload(meta.slot, base)}, meta.slot, 0)
	}
	ckpts := env.Stats.Checkpoints

	// An open group holds an appended-but-unpublished state for the slot:
	// a distinct committed bitmap under a fresh version.
	groupSt := base
	groupSt.committed = base.committed | 1<<7
	groupSt.ver = s.allocVer()
	s.groups[0] = &commitGroup{done: make(chan struct{}), pubs: []slotPub{{meta: meta, sid: meta.slot, st: groupSt}}}

	flushes := s.journals[0].FlushWrites()
	s.maybeCheckpointShard(0, 0)
	if env.Stats.Checkpoints != ckpts+1 {
		t.Fatalf("checkpoint did not run (%d -> %d)", ckpts, env.Stats.Checkpoints)
	}
	// The ring must have been flushed before truncation: the members'
	// records (End seals included) stay replayable, so a crash between
	// the checkpoint's non-atomic slot writes cannot tear a member.
	if s.journals[0].FlushWrites() != flushes+1 {
		t.Fatalf("checkpoint truncated an open group without flushing its records (flush writes %d -> %d)",
			flushes, s.journals[0].FlushWrites())
	}
	if s.journals[0].Used() != 0 {
		t.Fatal("ring was not truncated")
	}
	buf := make([]byte, slotBytes)
	env.Mem.Peek(s.slotAddr(meta.slot), buf)
	got := decodeSlot(buf, env.Layout.FrameAddr)
	if got.ver != groupSt.ver || got.committed != groupSt.committed {
		t.Fatalf("slot array holds ver %d committed %#x; want the open group's ver %d committed %#x",
			got.ver, got.committed, groupSt.ver, groupSt.committed)
	}
	s.groups[0] = nil
}
