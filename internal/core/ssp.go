package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/tlbsim"
	"repro/internal/txn"
	"repro/internal/vm"
	"repro/internal/wal"
)

// This file holds the SSP type itself: configuration wiring, the locking
// primitives, the striped transient-cache map, and address translation. The
// rest of the mechanism is split by concern — the transaction pipeline in
// commit.go (with the cross-shard two-phase protocol in global.go), journal
// shard append/checkpoint logic in journal.go, slot allocation and eviction
// in slots.go, page consolidation in consolidate.go, the software fall-back
// path in fallback.go, and crash recovery in recover.go.

// metaShards is the number of striped locks over the transient SSP cache:
// page-metadata lookups on different vpn stripes never contend.
const metaShards = 64

// entryShard is one stripe of the transient SSP cache map. The shard lock
// protects the map structure only; the per-page fields inside a pageMeta
// are protected by the pageMeta's own mutex (see meta.go). Map mutation
// additionally happens only under structMu, so an iterator holding structMu
// needs no shard locks.
type entryShard struct {
	mu sync.RWMutex
	m  map[int]*pageMeta
}

// SSP is the Shadow Sub-Paging backend; it implements txn.Backend.
//
// Concurrency (machine parallel mode, see txn.ParallelAware): locking is
// engaged only while parallel mode is on — serial runs execute exactly the
// unlocked deterministic paths they always did. The lock order is
//
//	structMu → journalMu[i] → pageMeta.mu → residentMu/consolMu
//	  → caches → page table → memory
//
// structMu protects everything "structural": entry-map mutation, the
// free-slot list, slot allocation/eviction, consolidation scheduling and
// checkpoint execution. The metadata journal is sharded: each shard's
// stream, dirty-slot set and high-water trigger are protected by that
// shard's journalMu, so commits on different shards never serialise on a
// journal lock (nor, with the shards in distinct NVRAM regions, on a
// journal bank in simulated time). A single-shard commit takes exactly one
// journalMu; a cross-shard (global) commit takes every participant shard's
// journalMu plus the coordinator's, always in ascending shard order, so two
// global commits — or a global and any set of local commits — can never
// deadlock. TID allocation is a plain atomic; a TID destined for a shard is
// drawn while holding that shard's lock (for a global commit: all involved
// shards' locks) so each stream still sees non-decreasing TIDs. Slot-shadow
// mutation is per-page: slotShadow[sid] is written under the owning
// pageMeta's mutex, with a per-slot update version (allocated under the
// same lock) ordering the slot's records across shards for recovery. Each
// pageMeta's mutex protects that page's bitmaps and reference counts, so
// stores to different pages proceed concurrently. Commit-time page
// consolidation, which would otherwise funnel every core through structMu
// at commit, is deferred to a batched epoch drain (see consolidate.go).
//
// Group commit (Config.GroupCommitWindow > 0) adds one wait rule to the
// order: a follower blocks on its leader's flush ticket holding NO locks —
// the ticket wait sits entirely outside the lock order — and the leader
// closes, flushes and publishes its group under the shard's journalMu
// alone, so a ticket wait can never participate in a lock cycle (see
// journal.go).
type SSP struct {
	env *txn.Env
	cfg Config

	journals []*wal.Stream // metadata journal shards (len ≥ 1)
	resident *lruSet

	// nextTID allocates journal and fall-back transaction IDs; nextVer
	// allocates slot update versions (bumped under the owning page's lock,
	// so per-slot versions are snapshot-ordered — see slotState.ver).
	nextTID atomic.Uint32
	nextVer atomic.Uint32

	shards      [metaShards]entryShard // by vpn; the transient SSP cache
	slotShadow  []slotState            // journal-consistent view of the slot array
	slotOwner   []*pageMeta            // owning cache entry per slot (nil = unowned); structMu
	slotBarrier []journalRef           // pending release-record barrier per slot; structMu
	freeSlots   []int

	dirtySlots []map[int]struct{} // per journal shard: slots needing a checkpoint write

	// groups holds each journal shard's open group-commit window (nil when
	// none): the leader's batch accumulating followers until the leader
	// flushes (Config.GroupCommitWindow; see journal.go). Guarded by the
	// shard's journalMu; only populated in parallel mode.
	groups []*commitGroup

	// epochs holds each journal shard's open relaxed-durability epoch
	// (Config.DurabilityEpoch > 0; zero-valued and untouched otherwise).
	// Guarded by the shard's journalMu, like the shard's stream — see the
	// epoch engine in journal.go. prepHolds counts, per shard, the relaxed
	// global transactions whose prepare records sit in that shard's ring
	// while their coordinator End is still in another shard's open epoch;
	// a held shard defers checkpoints (see relaxedGlobalCommit). Atomic
	// because the coordinator's harden releases holds on other shards while
	// holding only its own shard's lock.
	epochs    []shardEpoch
	prepHolds []atomic.Int32

	// pendingGlobalSlots tracks, per coordinator shard, the slots of global
	// transactions whose end record lives in that shard's ring while their
	// prepare records sit in OTHER shards' rings. A coordinator checkpoint
	// must persist these slots to the slot array before truncating the end
	// records away, or a crash would find orphaned prepares and roll back a
	// committed transaction (see checkpointShard). Mutated under the
	// coordinator shard's journalMu.
	pendingGlobalSlots []map[int]struct{}

	// Per-core transaction state. globalTxn marks sections opened with
	// BeginGlobal, whose commit may spread prepare records over multiple
	// journal shards (see global.go).
	inTxn     []bool
	globalTxn []bool
	wsb       []map[int]uint64 // write-set buffer: vpn -> updated bitmap

	// ePending is each core's write-behind queue (Config.EagerFlush): the
	// units its open transaction stored to most recently, flushed eagerly
	// as they age out (commit.go). Touched only by the owning core's
	// goroutine.
	ePending []eagerWriteBehind

	// Software fall-back path (§3.5).
	fallback []bool
	fbTID    []uint32
	fbLogs   []*wal.Stream
	fbOld    []map[memsim.PAddr][memsim.LineBytes]byte
	fbPages  []map[int]struct{}

	// now tracks the latest time observed by any operation, so background
	// work triggered from timeless callbacks (TLB evictions) has a clock.
	// Maintained as an atomic max so parallel cores can publish times
	// without a lock.
	now atomic.Int64

	// Parallel-mode state. parallel is flipped only while the machine is
	// quiescent. consolQ accumulates pages whose consolidation was deferred;
	// epochOps counts commits since the last batch drain.
	parallel   bool
	structMu   sync.Mutex
	journalMu  []sync.Mutex // one per journal shard
	residentMu sync.Mutex
	consolMu   sync.Mutex
	consolQ    []int
	epochOps   int
}

var _ txn.Backend = (*SSP)(nil)
var _ txn.ParallelAware = (*SSP)(nil)
var _ txn.GlobalBackend = (*SSP)(nil)
var _ txn.RelaxedBackend = (*SSP)(nil)

// NewSSP builds the SSP backend over env. When fresh is true the persistent
// slot array is formatted (every slot assigned its spare frame up front,
// §4.1.2 "Free Space Management"); otherwise the caller runs Recover to
// parse the existing image.
func NewSSP(env *txn.Env, cfg Config, fresh bool) *SSP {
	if cfg.Entries <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.Entries > env.Layout.Cfg.SSPSlots {
		panic(fmt.Sprintf("core: Entries %d exceeds persistent slots %d", cfg.Entries, env.Layout.Cfg.SSPSlots))
	}
	if cfg.SubPageLines <= 0 {
		cfg.SubPageLines = 1
	}
	if memsim.LinesPerPage%cfg.SubPageLines != 0 {
		panic("core: SubPageLines must divide 64")
	}
	if cfg.EpochCommits <= 0 {
		cfg.EpochCommits = DefaultConfig().EpochCommits
	}
	s := &SSP{
		env:         env,
		cfg:         cfg,
		resident:    newLRUSet(cfg.ResidentEntries),
		slotShadow:  make([]slotState, cfg.Entries),
		slotOwner:   make([]*pageMeta, cfg.Entries),
		slotBarrier: make([]journalRef, cfg.Entries),
	}
	for _, base := range env.Layout.JournalBase {
		s.journals = append(s.journals, wal.NewStream(env.Mem, base, env.Layout.Cfg.JournalBytes, stats.CatMetaJournal))
		s.dirtySlots = append(s.dirtySlots, make(map[int]struct{}))
		s.pendingGlobalSlots = append(s.pendingGlobalSlots, make(map[int]struct{}))
	}
	s.journalMu = make([]sync.Mutex, len(s.journals))
	s.groups = make([]*commitGroup, len(s.journals))
	s.epochs = make([]shardEpoch, len(s.journals))
	s.prepHolds = make([]atomic.Int32, len(s.journals))
	if s.cfg.GroupCommitWindow < 0 {
		s.cfg.GroupCommitWindow = 0
	}
	if s.cfg.DurabilityEpoch < 0 {
		s.cfg.DurabilityEpoch = 0
	}
	for i := range s.shards {
		s.shards[i].m = make(map[int]*pageMeta)
	}
	cores := env.Cores()
	s.inTxn = make([]bool, cores)
	s.globalTxn = make([]bool, cores)
	s.ePending = make([]eagerWriteBehind, cores)
	s.wsb = make([]map[int]uint64, cores)
	s.fallback = make([]bool, cores)
	s.fbTID = make([]uint32, cores)
	s.fbOld = make([]map[memsim.PAddr][memsim.LineBytes]byte, cores)
	s.fbPages = make([]map[int]struct{}, cores)
	for c := 0; c < cores; c++ {
		s.wsb[c] = make(map[int]uint64)
		s.fbOld[c] = make(map[memsim.PAddr][memsim.LineBytes]byte)
		s.fbPages[c] = make(map[int]struct{})
		s.fbLogs = append(s.fbLogs, wal.NewStream(env.Mem, env.Layout.LogBase[c], env.Layout.Cfg.LogBytes, stats.CatUndoLog))
		core := c
		env.TLBs[c].OnEvict = func(vpn tlbsim.VPN) { s.onTLBEvict(core, int(vpn)) }
	}
	if fresh {
		s.format()
	}
	return s
}

// SetParallel implements txn.ParallelAware. Turning parallel mode off
// drains any consolidation work the last epoch left queued.
func (s *SSP) SetParallel(on bool) {
	if s.parallel && !on {
		s.drainConsolQueue(s.nowCycles())
	}
	s.parallel = on
}

// ---------------------------------------------------------------------------
// Lock helpers: no-ops in serial mode, so the deterministic single-goroutine
// paths are byte-for-byte the pre-concurrency ones.

func (s *SSP) lockStruct() {
	if s.parallel {
		s.structMu.Lock()
	}
}

func (s *SSP) unlockStruct() {
	if s.parallel {
		s.structMu.Unlock()
	}
}

func (s *SSP) lockMeta(m *pageMeta) {
	if s.parallel {
		m.mu.Lock()
	}
}

func (s *SSP) unlockMeta(m *pageMeta) {
	if s.parallel {
		m.mu.Unlock()
	}
}

func (s *SSP) lockShard(si int) {
	if s.parallel {
		s.journalMu[si].Lock()
	}
}

func (s *SSP) unlockShard(si int) {
	if s.parallel {
		s.journalMu[si].Unlock()
	}
}

// ---------------------------------------------------------------------------
// Transient-cache map access (striped).

func (s *SSP) shard(vpn int) *entryShard { return &s.shards[uint(vpn)%metaShards] }

// lookupMeta returns vpn's transient cache entry, or nil.
func (s *SSP) lookupMeta(vpn int) *pageMeta {
	sh := s.shard(vpn)
	if s.parallel {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
	}
	return sh.m[vpn]
}

// storeMeta inserts an entry. Caller holds structMu in parallel mode.
func (s *SSP) storeMeta(meta *pageMeta) {
	sh := s.shard(meta.vpn)
	if s.parallel {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	sh.m[meta.vpn] = meta
}

// deleteMeta removes an entry. Caller holds structMu in parallel mode.
func (s *SSP) deleteMeta(vpn int) {
	sh := s.shard(vpn)
	if s.parallel {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	delete(sh.m, vpn)
}

// forEachMeta visits every entry. Caller holds structMu in parallel mode
// (map mutation only happens under structMu, so no shard locks are needed).
func (s *SSP) forEachMeta(fn func(vpn int, meta *pageMeta)) {
	for i := range s.shards {
		for vpn, meta := range s.shards[i].m {
			fn(vpn, meta)
		}
	}
}

// metaOf is lookupMeta for tests and forensics.
func (s *SSP) metaOf(vpn int) *pageMeta { return s.lookupMeta(vpn) }

// entryCount returns the transient cache population. Caller holds structMu
// in parallel mode.
func (s *SSP) entryCount() int {
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].m)
	}
	return n
}

// resetEntries replaces the whole transient cache (crash, recovery).
func (s *SSP) resetEntries() {
	for i := range s.shards {
		s.shards[i].m = make(map[int]*pageMeta)
	}
}

// ---------------------------------------------------------------------------

// Name implements txn.Backend.
func (s *SSP) Name() string { return "SSP" }

// unitOf maps a line index to its sub-page unit (bit index).
func (s *SSP) unitOf(lineIdx int) int { return lineIdx / s.cfg.SubPageLines }

// unitLines iterates the line indices of unit u.
func (s *SSP) unitLines(u int) (int, int) {
	return u * s.cfg.SubPageLines, (u + 1) * s.cfg.SubPageLines
}

func (s *SSP) clock(at engine.Cycles) {
	for {
		cur := s.now.Load()
		if int64(at) <= cur || s.now.CompareAndSwap(cur, int64(at)) {
			return
		}
	}
}

func (s *SSP) nowCycles() engine.Cycles { return engine.Cycles(s.now.Load()) }

// translate resolves va's page metadata through core's TLB, charging the
// page walk and the SSP-cache metadata fetch on a miss (§4.1.1). The TLB
// reference count guarantees the returned entry stays in the transient
// cache while the page is TLB-resident.
func (s *SSP) translate(core int, va uint64, at engine.Cycles) (*pageMeta, engine.Cycles) {
	vpn := vm.VPNOf(va)
	if _, level, hit := s.env.TLBs[core].Lookup(tlbsim.VPN(vpn)); hit {
		meta := s.lookupMeta(vpn)
		if meta == nil {
			panic("core: TLB-resident page without SSP cache entry")
		}
		if level == 2 {
			// The SSP-extended fields live in the L1 DTLB entries
			// (§4.1.1); promoting from the STLB refetches the metadata
			// from the SSP cache — this is the access Figure 9 sweeps.
			s.env.StatsFor(core).SSPCacheHits++
			at += s.env.STLBCycles + s.accessLat(meta.slot)
		}
		return meta, at
	}
	ppn, t, ok := s.env.PT.Walk(vpn, at)
	if !ok {
		panic("core: access to unmapped persistent page")
	}
	// The whole slow path — entry creation, TLB insertion (whose eviction
	// hook may fire) and the reference-count increment — runs under
	// structMu in parallel mode, so a page can never gain its first
	// reference while the epoch drain (which also holds structMu) is
	// deciding whether it is quiescent.
	s.lockStruct()
	meta, t := s.fetchMeta(vpn, ppn, t)
	s.env.TLBs[core].Insert(tlbsim.VPN(vpn), ppn)
	s.lockMeta(meta)
	meta.tlbRef++
	s.unlockMeta(meta)
	s.unlockStruct()
	return meta, t
}

// fetchMeta returns the SSP cache entry for vpn, creating one (allocating a
// slot) on a miss, and charges the SSP-cache access latency according to
// the L3-residency model (§4.2, Figure 9). Caller holds structMu in
// parallel mode.
func (s *SSP) fetchMeta(vpn int, ppn memsim.PAddr, at engine.Cycles) (*pageMeta, engine.Cycles) {
	if meta := s.lookupMeta(vpn); meta != nil {
		s.env.Stats.SSPCacheHits++
		t := at + s.accessLat(meta.slot)
		return meta, t
	}
	s.env.Stats.SSPCacheMisses++
	sid := s.allocSlot(at)
	meta := &pageMeta{
		vpn:     vpn,
		slot:    sid,
		ppn0:    ppn,
		ppn1:    s.slotShadow[sid].ppn1,
		barrier: s.slotBarrier[sid],
	}
	s.slotOwner[sid] = meta
	s.storeMeta(meta)
	// The slot association becomes journal-visible only at the page's
	// first commit; until then the page's committed state is entirely in
	// its PTE frame, which needs no metadata (see DESIGN.md).
	t := at + s.accessLat(sid)
	return meta, t
}

func (s *SSP) accessLat(sid int) engine.Cycles {
	if s.parallel {
		s.residentMu.Lock()
		defer s.residentMu.Unlock()
	}
	if s.resident.Touch(sid) {
		return s.cfg.CacheHitLat
	}
	return s.cfg.CacheMissLat
}

// DebugCheckFrames verifies the frame-ownership invariant: every entry's
// ppn0 matches its PTE, and all entry frames plus free-slot spares are
// pairwise disjoint. Returns a description of the first violation, or "".
// Quiescent-machine helper (tests, post-run assertions).
func (s *SSP) DebugCheckFrames() string {
	owner := map[memsim.PAddr]string{}
	claim := func(pa memsim.PAddr, who string) string {
		if prev, dup := owner[pa]; dup {
			return fmt.Sprintf("frame %#x claimed by both %s and %s", pa, prev, who)
		}
		owner[pa] = who
		return ""
	}
	msg := ""
	s.forEachMeta(func(vpn int, meta *pageMeta) {
		if msg != "" {
			return
		}
		if pte, ok := s.env.PT.Lookup(vpn); !ok || pte != meta.ppn0 {
			msg = fmt.Sprintf("vpn %d: meta.ppn0 %#x != PTE %#x", vpn, meta.ppn0, pte)
			return
		}
		if m := claim(meta.ppn0, fmt.Sprintf("vpn%d.p0", vpn)); m != "" {
			msg = m
			return
		}
		if m := claim(meta.ppn1, fmt.Sprintf("vpn%d.p1", vpn)); m != "" {
			msg = m
		}
	})
	if msg != "" {
		return msg
	}
	for _, sid := range s.freeSlots {
		if msg := claim(s.slotShadow[sid].ppn1, fmt.Sprintf("freeslot%d", sid)); msg != "" {
			return msg
		}
	}
	for _, e := range s.env.PT.Mapped() {
		if s.lookupMeta(e.VPN) != nil {
			continue
		}
		if msg := claim(e.Frame, fmt.Sprintf("pte%d", e.VPN)); msg != "" {
			return msg
		}
	}
	return ""
}

// DebugPage exposes a page's SSP state for tests and forensics: the two
// frames and the current/committed bitmaps. ok is false when the page has
// no SSP cache entry.
func (s *SSP) DebugPage(vpn int) (ppn0, ppn1 memsim.PAddr, current, committed uint64, ok bool) {
	meta := s.lookupMeta(vpn)
	if meta == nil {
		return 0, 0, 0, 0, false
	}
	return meta.ppn0, meta.ppn1, meta.current, meta.committed, true
}
