package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/tlbsim"
	"repro/internal/txn"
	"repro/internal/vm"
	"repro/internal/wal"
)

// metaShards is the number of striped locks over the transient SSP cache:
// page-metadata lookups on different vpn stripes never contend.
const metaShards = 64

// entryShard is one stripe of the transient SSP cache map. The shard lock
// protects the map structure only; the per-page fields inside a pageMeta
// are protected by the pageMeta's own mutex (see meta.go). Map mutation
// additionally happens only under structMu, so an iterator holding structMu
// needs no shard locks.
type entryShard struct {
	mu sync.RWMutex
	m  map[int]*pageMeta
}

// SSP is the Shadow Sub-Paging backend; it implements txn.Backend.
//
// Concurrency (machine parallel mode, see txn.ParallelAware): locking is
// engaged only while parallel mode is on — serial runs execute exactly the
// unlocked deterministic paths they always did. The lock order is
//
//	structMu → journalMu[i] → pageMeta.mu → residentMu/consolMu
//	  → caches → page table → memory
//
// structMu protects everything "structural": entry-map mutation, the
// free-slot list, slot allocation/eviction, consolidation scheduling and
// checkpoint execution. The metadata journal is sharded: each shard's
// stream, dirty-slot set and high-water trigger are protected by that
// shard's journalMu, so commits on different shards never serialise on a
// journal lock (nor, with the shards in distinct NVRAM regions, on a
// journal bank in simulated time). TID allocation is a plain atomic; a TID
// destined for a shard is drawn while holding that shard's lock so each
// stream still sees non-decreasing TIDs. Slot-shadow mutation is per-page:
// slotShadow[sid] is written under the owning pageMeta's mutex, with a
// per-slot update version (allocated under the same lock) ordering the
// slot's records across shards for recovery. Each pageMeta's mutex protects
// that page's bitmaps and reference counts, so stores to different pages
// proceed concurrently. Commit-time page consolidation, which would
// otherwise funnel every core through structMu at commit, is deferred to a
// batched epoch drain (see consolidate.go).
type SSP struct {
	env *txn.Env
	cfg Config

	journals []*wal.Stream // metadata journal shards (len ≥ 1)
	resident *lruSet

	// nextTID allocates journal and fall-back transaction IDs; nextVer
	// allocates slot update versions (bumped under the owning page's lock,
	// so per-slot versions are snapshot-ordered — see slotState.ver).
	nextTID atomic.Uint32
	nextVer atomic.Uint32

	shards      [metaShards]entryShard // by vpn; the transient SSP cache
	slotShadow  []slotState            // journal-consistent view of the slot array
	slotOwner   []*pageMeta            // owning cache entry per slot (nil = unowned); structMu
	slotBarrier []journalRef           // pending release-record barrier per slot; structMu
	freeSlots   []int

	dirtySlots []map[int]struct{} // per journal shard: slots needing a checkpoint write

	// Per-core transaction state.
	inTxn []bool
	wsb   []map[int]uint64 // write-set buffer: vpn -> updated bitmap

	// Software fall-back path (§3.5).
	fallback []bool
	fbTID    []uint32
	fbLogs   []*wal.Stream
	fbOld    []map[memsim.PAddr][memsim.LineBytes]byte
	fbPages  []map[int]struct{}

	// now tracks the latest time observed by any operation, so background
	// work triggered from timeless callbacks (TLB evictions) has a clock.
	// Maintained as an atomic max so parallel cores can publish times
	// without a lock.
	now atomic.Int64

	// Parallel-mode state. parallel is flipped only while the machine is
	// quiescent. consolQ accumulates pages whose consolidation was deferred;
	// epochOps counts commits since the last batch drain.
	parallel   bool
	structMu   sync.Mutex
	journalMu  []sync.Mutex // one per journal shard
	residentMu sync.Mutex
	consolMu   sync.Mutex
	consolQ    []int
	epochOps   int
}

var _ txn.Backend = (*SSP)(nil)
var _ txn.ParallelAware = (*SSP)(nil)

// NewSSP builds the SSP backend over env. When fresh is true the persistent
// slot array is formatted (every slot assigned its spare frame up front,
// §4.1.2 "Free Space Management"); otherwise the caller runs Recover to
// parse the existing image.
func NewSSP(env *txn.Env, cfg Config, fresh bool) *SSP {
	if cfg.Entries <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.Entries > env.Layout.Cfg.SSPSlots {
		panic(fmt.Sprintf("core: Entries %d exceeds persistent slots %d", cfg.Entries, env.Layout.Cfg.SSPSlots))
	}
	if cfg.SubPageLines <= 0 {
		cfg.SubPageLines = 1
	}
	if memsim.LinesPerPage%cfg.SubPageLines != 0 {
		panic("core: SubPageLines must divide 64")
	}
	if cfg.EpochCommits <= 0 {
		cfg.EpochCommits = DefaultConfig().EpochCommits
	}
	s := &SSP{
		env:         env,
		cfg:         cfg,
		resident:    newLRUSet(cfg.ResidentEntries),
		slotShadow:  make([]slotState, cfg.Entries),
		slotOwner:   make([]*pageMeta, cfg.Entries),
		slotBarrier: make([]journalRef, cfg.Entries),
	}
	for _, base := range env.Layout.JournalBase {
		s.journals = append(s.journals, wal.NewStream(env.Mem, base, env.Layout.Cfg.JournalBytes, stats.CatMetaJournal))
		s.dirtySlots = append(s.dirtySlots, make(map[int]struct{}))
	}
	s.journalMu = make([]sync.Mutex, len(s.journals))
	for i := range s.shards {
		s.shards[i].m = make(map[int]*pageMeta)
	}
	cores := env.Cores()
	s.inTxn = make([]bool, cores)
	s.wsb = make([]map[int]uint64, cores)
	s.fallback = make([]bool, cores)
	s.fbTID = make([]uint32, cores)
	s.fbOld = make([]map[memsim.PAddr][memsim.LineBytes]byte, cores)
	s.fbPages = make([]map[int]struct{}, cores)
	for c := 0; c < cores; c++ {
		s.wsb[c] = make(map[int]uint64)
		s.fbOld[c] = make(map[memsim.PAddr][memsim.LineBytes]byte)
		s.fbPages[c] = make(map[int]struct{})
		s.fbLogs = append(s.fbLogs, wal.NewStream(env.Mem, env.Layout.LogBase[c], env.Layout.Cfg.LogBytes, stats.CatUndoLog))
		core := c
		env.TLBs[c].OnEvict = func(vpn tlbsim.VPN) { s.onTLBEvict(core, int(vpn)) }
	}
	if fresh {
		s.format()
	}
	return s
}

// SetParallel implements txn.ParallelAware. Turning parallel mode off
// drains any consolidation work the last epoch left queued.
func (s *SSP) SetParallel(on bool) {
	if s.parallel && !on {
		s.drainConsolQueue(s.nowCycles())
	}
	s.parallel = on
}

// ---------------------------------------------------------------------------
// Lock helpers: no-ops in serial mode, so the deterministic single-goroutine
// paths are byte-for-byte the pre-concurrency ones.

func (s *SSP) lockStruct() {
	if s.parallel {
		s.structMu.Lock()
	}
}

func (s *SSP) unlockStruct() {
	if s.parallel {
		s.structMu.Unlock()
	}
}

func (s *SSP) lockMeta(m *pageMeta) {
	if s.parallel {
		m.mu.Lock()
	}
}

func (s *SSP) unlockMeta(m *pageMeta) {
	if s.parallel {
		m.mu.Unlock()
	}
}

func (s *SSP) lockShard(si int) {
	if s.parallel {
		s.journalMu[si].Lock()
	}
}

func (s *SSP) unlockShard(si int) {
	if s.parallel {
		s.journalMu[si].Unlock()
	}
}

// shardFor maps a committing core to its journal shard.
func (s *SSP) shardFor(core int) int { return core % len(s.journals) }

// shardOfSlot maps slot-keyed background records (consolidation, release)
// to a shard, spreading them deterministically.
func (s *SSP) shardOfSlot(sid int) int { return sid % len(s.journals) }

// allocTID draws the next transaction ID. Callers appending to a journal
// shard must hold that shard's lock across the draw and the append, so the
// shard's stream stays TID-monotonic; the fall-back path needs no lock (a
// fall-back log only ever receives its own core's records).
func (s *SSP) allocTID() uint32 { return s.nextTID.Add(1) }

// allocVer draws the next slot update version; call under the owning
// page's lock (or with the slot otherwise quiescent under structMu).
func (s *SSP) allocVer() uint32 { return s.nextVer.Add(1) }

// sharded reports whether the journal runs with more than one shard; the
// single-journal paper model skips the per-record version (see meta.go).
func (s *SSP) sharded() bool { return len(s.journals) > 1 }

// journalPayload encodes a record payload for this machine's journal
// geometry.
func (s *SSP) journalPayload(sid int, st slotState) []byte {
	return encodeJournalPayload(sid, st, s.env.Layout.FrameIndex, s.sharded())
}

// overHighWater reports whether shard si's ring passed the checkpoint
// trigger (§4.1.2). Caller holds journalMu[si] in parallel mode.
func (s *SSP) overHighWater(si int) bool {
	return float64(s.journals[si].Used()) >= s.cfg.JournalHighWater*float64(s.journals[si].Capacity())
}

// ---------------------------------------------------------------------------
// Transient-cache map access (striped).

func (s *SSP) shard(vpn int) *entryShard { return &s.shards[uint(vpn)%metaShards] }

// lookupMeta returns vpn's transient cache entry, or nil.
func (s *SSP) lookupMeta(vpn int) *pageMeta {
	sh := s.shard(vpn)
	if s.parallel {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
	}
	return sh.m[vpn]
}

// storeMeta inserts an entry. Caller holds structMu in parallel mode.
func (s *SSP) storeMeta(meta *pageMeta) {
	sh := s.shard(meta.vpn)
	if s.parallel {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	sh.m[meta.vpn] = meta
}

// deleteMeta removes an entry. Caller holds structMu in parallel mode.
func (s *SSP) deleteMeta(vpn int) {
	sh := s.shard(vpn)
	if s.parallel {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	delete(sh.m, vpn)
}

// forEachMeta visits every entry. Caller holds structMu in parallel mode
// (map mutation only happens under structMu, so no shard locks are needed).
func (s *SSP) forEachMeta(fn func(vpn int, meta *pageMeta)) {
	for i := range s.shards {
		for vpn, meta := range s.shards[i].m {
			fn(vpn, meta)
		}
	}
}

// metaOf is lookupMeta for tests and forensics.
func (s *SSP) metaOf(vpn int) *pageMeta { return s.lookupMeta(vpn) }

// entryCount returns the transient cache population. Caller holds structMu
// in parallel mode.
func (s *SSP) entryCount() int {
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].m)
	}
	return n
}

// resetEntries replaces the whole transient cache (crash, recovery).
func (s *SSP) resetEntries() {
	for i := range s.shards {
		s.shards[i].m = make(map[int]*pageMeta)
	}
}

// ---------------------------------------------------------------------------

// format assigns every slot its spare frame and writes the initial slot
// array (machine initialisation; no timing).
func (s *SSP) format() {
	for sid := range s.slotShadow {
		spare := s.env.Frames.Alloc()
		s.slotShadow[sid] = slotState{vpn: -1, ppn1: spare}
		s.env.Mem.Poke(s.slotAddr(sid), encodeSlot(s.slotShadow[sid], s.env.Layout.FrameIndex))
		s.freeSlots = append(s.freeSlots, sid)
	}
	// Reverse so slot 0 is handed out first.
	for i, j := 0, len(s.freeSlots)-1; i < j; i, j = i+1, j-1 {
		s.freeSlots[i], s.freeSlots[j] = s.freeSlots[j], s.freeSlots[i]
	}
}

func (s *SSP) slotAddr(sid int) memsim.PAddr {
	return s.env.Layout.SSPSlotsBase + memsim.PAddr(sid*slotBytes)
}

// Name implements txn.Backend.
func (s *SSP) Name() string { return "SSP" }

// unitOf maps a line index to its sub-page unit (bit index).
func (s *SSP) unitOf(lineIdx int) int { return lineIdx / s.cfg.SubPageLines }

// unitLines iterates the line indices of unit u.
func (s *SSP) unitLines(u int) (int, int) {
	return u * s.cfg.SubPageLines, (u + 1) * s.cfg.SubPageLines
}

func (s *SSP) clock(at engine.Cycles) {
	for {
		cur := s.now.Load()
		if int64(at) <= cur || s.now.CompareAndSwap(cur, int64(at)) {
			return
		}
	}
}

func (s *SSP) nowCycles() engine.Cycles { return engine.Cycles(s.now.Load()) }

// translate resolves va's page metadata through core's TLB, charging the
// page walk and the SSP-cache metadata fetch on a miss (§4.1.1). The TLB
// reference count guarantees the returned entry stays in the transient
// cache while the page is TLB-resident.
func (s *SSP) translate(core int, va uint64, at engine.Cycles) (*pageMeta, engine.Cycles) {
	vpn := vm.VPNOf(va)
	if _, level, hit := s.env.TLBs[core].Lookup(tlbsim.VPN(vpn)); hit {
		meta := s.lookupMeta(vpn)
		if meta == nil {
			panic("core: TLB-resident page without SSP cache entry")
		}
		if level == 2 {
			// The SSP-extended fields live in the L1 DTLB entries
			// (§4.1.1); promoting from the STLB refetches the metadata
			// from the SSP cache — this is the access Figure 9 sweeps.
			s.env.StatsFor(core).SSPCacheHits++
			at += s.env.STLBCycles + s.accessLat(meta.slot)
		}
		return meta, at
	}
	ppn, t, ok := s.env.PT.Walk(vpn, at)
	if !ok {
		panic("core: access to unmapped persistent page")
	}
	// The whole slow path — entry creation, TLB insertion (whose eviction
	// hook may fire) and the reference-count increment — runs under
	// structMu in parallel mode, so a page can never gain its first
	// reference while the epoch drain (which also holds structMu) is
	// deciding whether it is quiescent.
	s.lockStruct()
	meta, t := s.fetchMeta(vpn, ppn, t)
	s.env.TLBs[core].Insert(tlbsim.VPN(vpn), ppn)
	s.lockMeta(meta)
	meta.tlbRef++
	s.unlockMeta(meta)
	s.unlockStruct()
	return meta, t
}

// fetchMeta returns the SSP cache entry for vpn, creating one (allocating a
// slot) on a miss, and charges the SSP-cache access latency according to
// the L3-residency model (§4.2, Figure 9). Caller holds structMu in
// parallel mode.
func (s *SSP) fetchMeta(vpn int, ppn memsim.PAddr, at engine.Cycles) (*pageMeta, engine.Cycles) {
	if meta := s.lookupMeta(vpn); meta != nil {
		s.env.Stats.SSPCacheHits++
		t := at + s.accessLat(meta.slot)
		return meta, t
	}
	s.env.Stats.SSPCacheMisses++
	sid := s.allocSlot(at)
	meta := &pageMeta{
		vpn:     vpn,
		slot:    sid,
		ppn0:    ppn,
		ppn1:    s.slotShadow[sid].ppn1,
		barrier: s.slotBarrier[sid],
	}
	s.slotOwner[sid] = meta
	s.storeMeta(meta)
	// The slot association becomes journal-visible only at the page's
	// first commit; until then the page's committed state is entirely in
	// its PTE frame, which needs no metadata (see DESIGN.md).
	t := at + s.accessLat(sid)
	return meta, t
}

func (s *SSP) accessLat(sid int) engine.Cycles {
	if s.parallel {
		s.residentMu.Lock()
		defer s.residentMu.Unlock()
	}
	if s.resident.Touch(sid) {
		return s.cfg.CacheHitLat
	}
	return s.cfg.CacheMissLat
}

// allocSlot returns a free slot, evicting (and if needed consolidating) an
// unreferenced entry when the transient cache is full. Caller holds
// structMu in parallel mode; a candidate's reference counts cannot rise
// while it is held (new references require either a TLB hit, impossible for
// a page with tlbRef == 0, or the structMu-guarded slow path).
func (s *SSP) allocSlot(at engine.Cycles) int {
	if len(s.freeSlots) > 0 {
		sid := s.freeSlots[len(s.freeSlots)-1]
		s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
		return sid
	}
	// Evict a quiescent entry (§4.1.2: "already consolidated ... and not
	// referenced by any TLB"). Deterministic choice: lowest vpn first.
	var victims []int
	s.forEachMeta(func(vpn int, m *pageMeta) {
		s.lockMeta(m)
		if m.tlbRef == 0 && m.coreRef == 0 {
			victims = append(victims, vpn)
		}
		s.unlockMeta(m)
	})
	if len(victims) == 0 {
		panic("core: SSP cache exhausted with every entry referenced; raise Config.Entries")
	}
	sort.Ints(victims)
	meta := s.lookupMeta(victims[0])
	s.lockMeta(meta)
	committed := meta.committed
	s.unlockMeta(meta)
	if committed != 0 {
		s.consolidate(meta, engine.MaxCycles(at, s.nowCycles()))
	}
	s.releaseEntry(meta, engine.MaxCycles(at, s.nowCycles()))
	sid := s.freeSlots[len(s.freeSlots)-1]
	s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
	return sid
}

// releaseEntry removes a consolidated, unreferenced entry from the
// transient cache, journaling the slot release so recovery never
// resurrects a stale association. Caller holds structMu in parallel mode.
func (s *SSP) releaseEntry(meta *pageMeta, at engine.Cycles) {
	if meta.committed != 0 || meta.tlbRef != 0 || meta.coreRef != 0 {
		panic("core: releasing a live SSP entry")
	}
	sid := meta.slot
	st := slotState{vpn: -1, ppn1: meta.ppn1, ver: s.allocVer()}
	si := s.shardOfSlot(sid)
	s.lockShard(si)
	tid := s.allocTID()
	s.journals[si].Append(wal.Record{TID: tid, Kind: recRelease, Payload: s.journalPayload(sid, st)}, at)
	// Publishing before the record is durable is safe here (unlike the
	// commit path): a release's NVRAM side effects precede its record, so a
	// checkpoint persisting this state early is equivalent to the record
	// having applied.
	s.slotShadow[sid] = st
	s.dirtySlots[si][sid] = struct{}{}
	s.env.Stats.JournalRecords++
	s.env.Stats.JournalShardRecords[si]++
	// The slot's next tenant inherits a barrier at the release record, so
	// its first commit flushes this shard before its data flushes.
	s.slotBarrier[sid] = journalRef{shard: si, mark: s.journals[si].MarkHere()}
	s.maybeCheckpointShard(si, at)
	s.unlockShard(si)
	s.slotOwner[sid] = nil
	s.deleteMeta(meta.vpn)
	s.freeSlots = append(s.freeSlots, sid)
}

// onTLBEvict is the extended-TLB eviction hook: it drops the page's TLB
// reference count and triggers eager consolidation when the page becomes
// inactive (§3.4). In parallel mode consolidation is deferred to the
// epoch batch instead of running inline (the hook fires inside translate,
// where the journal lock must not be taken).
func (s *SSP) onTLBEvict(core int, vpn int) {
	meta := s.lookupMeta(vpn)
	if meta == nil {
		panic("core: TLB evicted a page without an SSP entry")
	}
	_ = core
	s.lockMeta(meta)
	meta.tlbRef--
	if meta.tlbRef < 0 {
		s.unlockMeta(meta)
		panic("core: negative TLB refcount")
	}
	inactive := meta.tlbRef == 0 && meta.coreRef == 0 && meta.committed != 0 && !s.cfg.LazyConsolidation
	s.unlockMeta(meta)
	if !inactive {
		return
	}
	if s.parallel {
		s.queueConsolidation(vpn)
		return
	}
	s.consolidate(meta, s.nowCycles())
}

// Begin implements txn.Backend (ATOMIC_BEGIN: a full barrier).
func (s *SSP) Begin(core int, at engine.Cycles) engine.Cycles {
	if s.inTxn[core] {
		panic("core: nested transaction")
	}
	s.inTxn[core] = true
	s.clock(at)
	return at + s.env.BarrierCycles
}

// Store implements txn.Backend: the atomic-update protocol of Figure 4.
func (s *SSP) Store(core int, va uint64, data []byte, at engine.Cycles) engine.Cycles {
	if !s.inTxn[core] {
		panic("core: Store outside transaction")
	}
	if s.fallback[core] {
		return s.fbStore(core, va, data, at)
	}
	meta, t := s.translate(core, va, at)

	bm := s.wsb[core][meta.vpn]
	if bm == 0 && len(s.wsb[core]) >= s.cfg.WSBEntries {
		// Write-set buffer overflow: divert the whole transaction to the
		// software fall-back path (§3.5) and retry this store there.
		t = s.transitionToFallback(core, t)
		return s.fbStore(core, va, data, t)
	}

	off := int(va & (memsim.PageBytes - 1))
	lineIdx := off / memsim.LineBytes
	unit := s.unitOf(lineIdx)
	bit := uint64(1) << uint(unit)

	s.lockMeta(meta)
	defer s.unlockMeta(meta)
	if bm&bit == 0 {
		// First write to this unit in the transaction: remap every line of
		// the unit to the "other" page, flip the current bit, broadcast.
		begin, end := s.unitLines(unit)
		cur := (meta.current >> uint(unit)) & 1
		for li := begin; li < end; li++ {
			from := meta.lineAddr(li, cur)
			to := meta.lineAddr(li, cur^1)
			t = s.env.Caches.Retag(core, from, to, t)
		}
		meta.current ^= bit
		s.env.StatsFor(core).FlipBroadcasts++
		if s.cfg.FlipViaShootdown {
			t += s.cfg.ShootdownCycles
		} else {
			t += s.cfg.FlipCycles
		}
		if bm == 0 {
			meta.coreRef++
		}
		s.wsb[core][meta.vpn] = bm | bit
	}
	curBit := (meta.current >> uint(unit)) & 1
	target := meta.lineAddr(lineIdx, curBit) + memsim.PAddr(off&(memsim.LineBytes-1))
	t = s.env.Caches.Store(core, target, data, t)
	s.clock(t)
	return t
}

// Load implements txn.Backend: address translation selects P0 or P1 per
// line according to the current bitmap (§4.1.1 "Memory Read and Write").
func (s *SSP) Load(core int, va uint64, buf []byte, at engine.Cycles) engine.Cycles {
	meta, t := s.translate(core, va, at)
	off := int(va & (memsim.PageBytes - 1))
	lineIdx := off / memsim.LineBytes
	unit := s.unitOf(lineIdx)
	s.lockMeta(meta)
	curBit := (meta.current >> uint(unit)) & 1
	pa := meta.lineAddr(lineIdx, curBit) + memsim.PAddr(off&(memsim.LineBytes-1))
	s.unlockMeta(meta)
	t = s.env.Caches.Load(core, pa, buf, t)
	s.clock(t)
	return t
}

// sortedWS returns the write-set pages in vpn order.
func (s *SSP) sortedWS(core int) []int {
	out := make([]int, 0, len(s.wsb[core]))
	for vpn := range s.wsb[core] {
		out = append(out, vpn)
	}
	sort.Ints(out)
	return out
}

// Commit implements txn.Backend (§4.1.1 "Transaction Commit"): persist the
// write set, then atomically commit the metadata via the journal.
func (s *SSP) Commit(core int, at engine.Cycles) engine.Cycles {
	if !s.inTxn[core] {
		panic("core: Commit outside transaction")
	}
	if s.fallback[core] {
		return s.fbCommit(core, at)
	}
	t := at
	pages := s.sortedWS(core)

	// Step 0: metadata barrier — if any write-set page carries a pending
	// consolidation/release record, persist that record's journal shard
	// before flushing data (see consolidate.go). Pages rarely recommit
	// before their records drain, so these flushes are almost always free.
	t = s.barrierFlush(pages, t)

	// Step 1: data persistence — clwb every write-set line; the fence
	// waits for the slowest flush (bank-level parallelism applies).
	fence := t
	for _, vpn := range pages {
		meta := s.lookupMeta(vpn)
		bm := s.wsb[core][vpn]
		s.lockMeta(meta)
		for unit := 0; unit < memsim.LinesPerPage/s.cfg.SubPageLines; unit++ {
			if bm&(1<<uint(unit)) == 0 {
				continue
			}
			cur := (meta.current >> uint(unit)) & 1
			begin, end := s.unitLines(unit)
			for li := begin; li < end; li++ {
				done, _ := s.env.Caches.Flush(core, meta.lineAddr(li, cur), t, stats.CatData)
				fence = engine.MaxCycles(fence, done)
			}
		}
		s.unlockMeta(meta)
	}
	t = fence

	// Step 2: metadata update — one journal record per modified page (the
	// last one carries the end marker) appended to this core's journal
	// shard, then a shard flush makes the transaction durable. Only the
	// shard's lock is held: the slot-shadow snapshot (and its update
	// version) is taken under each page's own lock, so commits on other
	// shards — even to other pages of the same slot array — proceed
	// concurrently.
	if len(pages) > 0 {
		si := s.shardFor(core)
		type slotPub struct {
			meta *pageMeta
			sid  int
			st   slotState
		}
		pubs := make([]slotPub, 0, len(pages))
		s.lockShard(si)
		tid := s.allocTID()
		for i, vpn := range pages {
			meta := s.lookupMeta(vpn)
			bm := s.wsb[core][vpn]
			s.lockMeta(meta)
			// Note on shared pages: if another core's open transaction on
			// this page committed its bits just before us (under this page
			// lock) but its shard flush is still in flight, our snapshot
			// carries those bits with a newer version. That is safe under
			// the machine's crash model — power failure is injected only in
			// serial execution (where a commit runs to completion before
			// the next begins) or at quiescence (where every flush has
			// landed) — but a hardware realisation with per-controller
			// journals would need a cross-shard ordering fence here.
			meta.committed = (meta.committed &^ bm) | (meta.current & bm)
			st := slotState{vpn: vpn, ppn0: meta.ppn0, ppn1: meta.ppn1, committed: meta.committed, ver: s.allocVer()}
			sid := meta.slot
			payload := s.journalPayload(sid, st)
			s.unlockMeta(meta)
			kind := uint8(recUpdate)
			if i == len(pages)-1 {
				kind = recUpdateEnd
			}
			t = s.journals[si].Append(wal.Record{TID: tid, Kind: kind, Payload: payload}, t)
			s.dirtySlots[si][sid] = struct{}{}
			s.env.StatsFor(core).JournalRecords++
			s.env.Stats.JournalShardRecords[si]++
			pubs = append(pubs, slotPub{meta: meta, sid: sid, st: st})
		}
		t = s.journals[si].Flush(t)
		// Publish the new slot-shadow states only now that the batch is
		// durable: a checkpoint running concurrently on another shard
		// snapshots slotShadow and writes it to the persistent slot array,
		// and must never persist state whose journal records a crash could
		// still lose. The version guard keeps this commit from clobbering a
		// newer state another core published for a shared page meanwhile.
		for _, p := range pubs {
			s.lockMeta(p.meta)
			if p.st.ver > s.slotShadow[p.sid].ver {
				s.slotShadow[p.sid] = p.st
			}
			s.unlockMeta(p.meta)
		}
		needCkpt := s.overHighWater(si)
		s.unlockShard(si)
		if needCkpt && s.parallel {
			// Serial mode checkpoints after step 3's consolidations (below);
			// parallel mode drains here, re-acquiring structMu → shard lock
			// in order. Only this core's shard is checkpointed, so one hot
			// core cannot force global checkpoints.
			s.lockStruct()
			s.lockShard(si)
			s.maybeCheckpointShard(si, t) // recheck under the locks
			s.unlockShard(si)
			s.unlockStruct()
		}
	}

	// Step 3: release core references; pages that became inactive
	// consolidate in the background (off the critical path) — inline in
	// serial mode, batched per epoch in parallel mode.
	for _, vpn := range pages {
		meta := s.lookupMeta(vpn)
		s.lockMeta(meta)
		meta.coreRef--
		inactive := meta.coreRef == 0 && meta.tlbRef == 0 && meta.committed != 0 && !s.cfg.LazyConsolidation
		s.unlockMeta(meta)
		if !inactive {
			continue
		}
		if s.parallel {
			s.queueConsolidation(vpn)
		} else {
			s.consolidate(meta, t)
		}
	}
	clear(s.wsb[core])
	s.inTxn[core] = false
	s.env.StatsFor(core).Commits++
	if s.parallel {
		s.tickEpoch(t)
	} else {
		s.maybeCheckpointAll(t)
	}
	end := t + s.env.BarrierCycles
	s.clock(end)
	return end
}

// barrierFlush persists every journal shard holding a pending
// consolidation/release record of a write-set page (the metadata barrier of
// consolidate.go): durably-flushed data must never land in a frame that
// undrained journal records still remap. pages must be sorted so serial
// runs flush shards in a deterministic order.
func (s *SSP) barrierFlush(pages []int, at engine.Cycles) engine.Cycles {
	t := at
	for _, vpn := range pages {
		meta := s.lookupMeta(vpn)
		s.lockMeta(meta)
		ref := meta.barrier
		s.unlockMeta(meta)
		s.lockShard(ref.shard)
		if !s.journals[ref.shard].Durable(ref.mark) {
			t = s.journals[ref.shard].Flush(t)
		}
		s.unlockShard(ref.shard)
	}
	return t
}

// Abort implements txn.Backend: squash speculative lines and flip the
// current bits back; committed data was never touched.
func (s *SSP) Abort(core int, at engine.Cycles) engine.Cycles {
	if !s.inTxn[core] {
		panic("core: Abort outside transaction")
	}
	if s.fallback[core] {
		return s.fbAbort(core, at)
	}
	t := at
	for _, vpn := range s.sortedWS(core) {
		meta := s.lookupMeta(vpn)
		bm := s.wsb[core][vpn]
		s.lockMeta(meta)
		for unit := 0; unit < memsim.LinesPerPage/s.cfg.SubPageLines; unit++ {
			if bm&(1<<uint(unit)) == 0 {
				continue
			}
			cur := (meta.current >> uint(unit)) & 1
			begin, end := s.unitLines(unit)
			for li := begin; li < end; li++ {
				s.env.Caches.InvalidateLine(meta.lineAddr(li, cur))
			}
			meta.current ^= 1 << uint(unit)
			s.env.StatsFor(core).FlipBroadcasts++
		}
		meta.coreRef--
		inactive := meta.coreRef == 0 && meta.tlbRef == 0 && meta.committed != 0 && !s.cfg.LazyConsolidation
		s.unlockMeta(meta)
		if !inactive {
			continue
		}
		if s.parallel {
			s.queueConsolidation(vpn)
		} else {
			s.consolidate(meta, t)
		}
	}
	clear(s.wsb[core])
	s.inTxn[core] = false
	s.env.StatsFor(core).Aborts++
	if s.parallel {
		s.tickEpoch(t)
	}
	s.clock(t)
	return t + s.env.BarrierCycles
}

// StoreNT implements txn.Backend: a plain store to the current location;
// not failure-atomic (a later transactional remap of the line write-backs
// the dirty data first — cachesim.Retag's precondition).
func (s *SSP) StoreNT(core int, va uint64, data []byte, at engine.Cycles) engine.Cycles {
	meta, t := s.translate(core, va, at)
	off := int(va & (memsim.PageBytes - 1))
	lineIdx := off / memsim.LineBytes
	s.lockMeta(meta)
	curBit := (meta.current >> uint(s.unitOf(lineIdx))) & 1
	pa := meta.lineAddr(lineIdx, curBit) + memsim.PAddr(off&(memsim.LineBytes-1))
	s.unlockMeta(meta)
	t = s.env.Caches.Store(core, pa, data, t)
	s.clock(t)
	return t
}

// Drain implements txn.Backend: any batched consolidation work runs to
// completion (serial mode has none pending — consolidation and
// checkpointing run synchronously in simulated time).
func (s *SSP) Drain(at engine.Cycles) engine.Cycles {
	t := engine.MaxCycles(at, s.nowCycles())
	if s.parallel {
		s.drainConsolQueue(t)
		t = engine.MaxCycles(t, s.nowCycles())
	}
	return t
}

// DebugCheckFrames verifies the frame-ownership invariant: every entry's
// ppn0 matches its PTE, and all entry frames plus free-slot spares are
// pairwise disjoint. Returns a description of the first violation, or "".
// Quiescent-machine helper (tests, post-run assertions).
func (s *SSP) DebugCheckFrames() string {
	owner := map[memsim.PAddr]string{}
	claim := func(pa memsim.PAddr, who string) string {
		if prev, dup := owner[pa]; dup {
			return fmt.Sprintf("frame %#x claimed by both %s and %s", pa, prev, who)
		}
		owner[pa] = who
		return ""
	}
	msg := ""
	s.forEachMeta(func(vpn int, meta *pageMeta) {
		if msg != "" {
			return
		}
		if pte, ok := s.env.PT.Lookup(vpn); !ok || pte != meta.ppn0 {
			msg = fmt.Sprintf("vpn %d: meta.ppn0 %#x != PTE %#x", vpn, meta.ppn0, pte)
			return
		}
		if m := claim(meta.ppn0, fmt.Sprintf("vpn%d.p0", vpn)); m != "" {
			msg = m
			return
		}
		if m := claim(meta.ppn1, fmt.Sprintf("vpn%d.p1", vpn)); m != "" {
			msg = m
		}
	})
	if msg != "" {
		return msg
	}
	for _, sid := range s.freeSlots {
		if msg := claim(s.slotShadow[sid].ppn1, fmt.Sprintf("freeslot%d", sid)); msg != "" {
			return msg
		}
	}
	for _, e := range s.env.PT.Mapped() {
		if s.lookupMeta(e.VPN) != nil {
			continue
		}
		if msg := claim(e.Frame, fmt.Sprintf("pte%d", e.VPN)); msg != "" {
			return msg
		}
	}
	return ""
}

// JournalShardPressure describes one metadata-journal shard's state at a
// quiescent point: the ring's instantaneous fill plus the work it absorbed
// since the last stats reset.
type JournalShardPressure struct {
	Shard       int
	UsedBytes   int // bytes appended since the shard's last checkpoint
	Capacity    int // ring capacity in bytes
	Records     uint64
	Checkpoints uint64
}

// FillFrac returns the shard ring's current fill fraction.
func (p JournalShardPressure) FillFrac() float64 {
	if p.Capacity == 0 {
		return 0
	}
	return float64(p.UsedBytes) / float64(p.Capacity)
}

// JournalPressure reports per-shard journal state. Quiescent-machine
// helper, like Stats aggregation.
func (s *SSP) JournalPressure() []JournalShardPressure {
	out := make([]JournalShardPressure, len(s.journals))
	for i, j := range s.journals {
		out[i] = JournalShardPressure{
			Shard:       i,
			UsedBytes:   j.Used(),
			Capacity:    j.Capacity(),
			Records:     s.env.Stats.JournalShardRecords[i],
			Checkpoints: s.env.Stats.JournalShardCheckpoints[i],
		}
	}
	return out
}

// DebugPage exposes a page's SSP state for tests and forensics: the two
// frames and the current/committed bitmaps. ok is false when the page has
// no SSP cache entry.
func (s *SSP) DebugPage(vpn int) (ppn0, ppn1 memsim.PAddr, current, committed uint64, ok bool) {
	meta := s.lookupMeta(vpn)
	if meta == nil {
		return 0, 0, 0, 0, false
	}
	return meta.ppn0, meta.ppn1, meta.current, meta.committed, true
}
