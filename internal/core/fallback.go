package core

import (
	"encoding/binary"
	"sort"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/wal"
)

// The software fall-back path (§3.5): when a transaction's write set
// overflows the write-set buffer, SSP "aborts the transaction and reverts
// to a fall-back path ... which can implement any kind of unbounded
// software redo or undo logging". We implement unbounded software undo
// logging over the per-core log regions — and rather than re-executing the
// program, the transition converts the SSP-speculative state accumulated so
// far into logged in-place state, which is equivalent and keeps the
// programming model oblivious.
const (
	fbKindData   = 10
	fbKindCommit = 11
)

func encodeFBPayload(pa memsim.PAddr, line []byte) []byte {
	p := make([]byte, 8+memsim.LineBytes)
	binary.LittleEndian.PutUint64(p, uint64(pa))
	copy(p[8:], line)
	return p
}

func decodeFBPayload(p []byte) (memsim.PAddr, []byte) {
	return memsim.PAddr(binary.LittleEndian.Uint64(p)), p[8:]
}

// transitionToFallback converts the open SSP transaction on core into a
// software-undo transaction: every speculative unit is undo-logged
// (committed image) and rewritten in place at its committed location, the
// current bits flip back, and the shadow lines are squashed. Called with no
// page locks held; the TID comes from the structMu-guarded allocator, the
// log itself is per-core.
func (s *SSP) transitionToFallback(core int, at engine.Cycles) engine.Cycles {
	s.env.StatsFor(core).FallbackTxns++
	// The speculative lines move in place under the undo log; the
	// write-behind slot's shadow-frame flush is moot.
	s.ePending[core] = eagerWriteBehind{}
	t := at
	tid := s.allocTID()
	s.fbTID[core] = tid
	log := s.fbLogs[core]

	for _, vpn := range s.sortedWS(core) {
		meta := s.lookupMeta(vpn)
		bm := s.wsb[core][vpn]
		s.lockMeta(meta)
		for unit := 0; unit < memsim.LinesPerPage/s.cfg.SubPageLines; unit++ {
			if bm&(1<<uint(unit)) == 0 {
				continue
			}
			cur := (meta.current >> uint(unit)) & 1
			begin, end := s.unitLines(unit)
			for li := begin; li < end; li++ {
				specLA := meta.lineAddr(li, cur)
				commLA := meta.lineAddr(li, cur^1)
				var spec, comm [memsim.LineBytes]byte
				t = s.env.Caches.Load(core, specLA, spec[:], t)
				t = s.env.Caches.Load(core, commLA, comm[:], t)
				s.fbOld[core][commLA] = comm
				t = log.Append(wal.Record{TID: tid, Kind: fbKindData, Payload: encodeFBPayload(commLA, comm[:])}, t)
				t = log.Flush(t)
				s.env.StatsFor(core).UndoRecords++
				t = s.env.Caches.Store(core, commLA, spec[:], t)
				s.env.Caches.InvalidateLine(specLA)
			}
			meta.current ^= 1 << uint(unit)
			s.env.StatsFor(core).FlipBroadcasts++
		}
		s.unlockMeta(meta)
		// The page stays pinned against consolidation for the rest of the
		// fall-back transaction.
		s.fbPages[core][vpn] = struct{}{}
	}
	clear(s.wsb[core])
	s.fallback[core] = true
	s.clock(t)
	return t
}

// fbStore is the fall-back store: undo-log the committed line (blocking),
// then update in place at the current location.
func (s *SSP) fbStore(core int, va uint64, data []byte, at engine.Cycles) engine.Cycles {
	meta, t := s.translate(core, va, at)
	off := int(va & (memsim.PageBytes - 1))
	lineIdx := off / memsim.LineBytes
	s.lockMeta(meta)
	curBit := (meta.current >> uint(s.unitOf(lineIdx))) & 1
	pa := meta.lineAddr(lineIdx, curBit) + memsim.PAddr(off&(memsim.LineBytes-1))
	la := memsim.LineAddr(pa)
	if _, logged := s.fbOld[core][la]; !logged {
		var img [memsim.LineBytes]byte
		t = s.env.Caches.Load(core, la, img[:], t)
		s.fbOld[core][la] = img
		log := s.fbLogs[core]
		t = log.Append(wal.Record{TID: s.fbTID[core], Kind: fbKindData, Payload: encodeFBPayload(la, img[:])}, t)
		t = log.Flush(t)
		s.env.StatsFor(core).UndoRecords++
	}
	if _, pinned := s.fbPages[core][meta.vpn]; !pinned {
		meta.coreRef++
		s.fbPages[core][meta.vpn] = struct{}{}
	}
	t = s.env.Caches.Store(core, pa, data, t)
	s.unlockMeta(meta)
	s.clock(t)
	return t
}

// fbCommit flushes the in-place write set, persists a commit record and
// truncates the fall-back log.
func (s *SSP) fbCommit(core int, at engine.Cycles) engine.Cycles {
	t := at
	// Same metadata barrier as the SSP commit path: in-place data must not
	// become durable in frames that pending journal records still remap.
	pages := make([]int, 0, len(s.fbPages[core]))
	for vpn := range s.fbPages[core] {
		pages = append(pages, vpn)
	}
	sort.Ints(pages)
	// A nil dest: the fall-back path writes data in place with no journal
	// record of its own, so the epoch leg may never skip an unsealed
	// lastUpdate shard.
	t = s.barrierFlush(core, pages, t, nil)
	fence := t
	for _, la := range s.sortedFBLines(core) {
		done, _ := s.env.Caches.Flush(core, la, t, stats.CatData)
		fence = engine.MaxCycles(fence, done)
	}
	t = fence
	log := s.fbLogs[core]
	t = log.Append(wal.Record{TID: s.fbTID[core], Kind: fbKindCommit}, t)
	t = log.Flush(t)
	s.env.StatsFor(core).NVRAMWriteBytes[stats.CatCommitRecord] += wal.HeaderBytes
	s.env.StatsFor(core).NVRAMWriteBytes[stats.CatUndoLog] -= wal.HeaderBytes
	log.Reset()
	s.finishFallback(core, t)
	s.env.StatsFor(core).Commits++
	if s.parallel {
		s.tickEpoch(t)
	}
	s.clock(t)
	return t + s.env.BarrierCycles
}

// fbAbort restores the logged images in cache and truncates the log.
func (s *SSP) fbAbort(core int, at engine.Cycles) engine.Cycles {
	t := at
	for _, la := range s.sortedFBLines(core) {
		img := s.fbOld[core][la]
		t = s.env.Caches.Store(core, la, img[:], t)
	}
	s.fbLogs[core].Reset()
	s.finishFallback(core, t)
	s.env.StatsFor(core).Aborts++
	if s.parallel {
		s.tickEpoch(t)
	}
	s.clock(t)
	return t + s.env.BarrierCycles
}

// sortedFBLines returns the fall-back transaction's logged line addresses
// in order.
func (s *SSP) sortedFBLines(core int) []memsim.PAddr {
	out := make([]memsim.PAddr, 0, len(s.fbOld[core]))
	for la := range s.fbOld[core] {
		out = append(out, la)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// finishFallback unpins the transaction's pages and clears per-core state.
func (s *SSP) finishFallback(core int, at engine.Cycles) {
	pages := make([]int, 0, len(s.fbPages[core]))
	for vpn := range s.fbPages[core] {
		pages = append(pages, vpn)
	}
	sort.Ints(pages)
	for _, vpn := range pages {
		meta := s.lookupMeta(vpn)
		s.lockMeta(meta)
		if meta.coreRef > 0 {
			meta.coreRef--
		}
		inactive := meta.coreRef == 0 && meta.tlbRef == 0 && meta.committed != 0 && !s.cfg.LazyConsolidation
		s.unlockMeta(meta)
		if !inactive {
			continue
		}
		if s.parallel {
			s.queueConsolidation(vpn)
		} else {
			s.consolidate(meta, at)
		}
	}
	clear(s.fbOld[core])
	clear(s.fbPages[core])
	s.fallback[core] = false
	s.inTxn[core] = false
	s.globalTxn[core] = false
}
