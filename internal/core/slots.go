package core

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/wal"
)

// This file manages the persistent slot array's allocation state: fresh
// formatting, free-slot handout, eviction of quiescent entries, and the
// release records that keep recovery from resurrecting stale associations.

// format assigns every slot its spare frame and writes the initial slot
// array (machine initialisation; no timing).
func (s *SSP) format() {
	for sid := range s.slotShadow {
		spare := s.env.Frames.Alloc()
		s.slotShadow[sid] = slotState{vpn: -1, ppn1: spare}
		s.env.Mem.Poke(s.slotAddr(sid), encodeSlot(s.slotShadow[sid], s.env.Layout.FrameIndex))
		s.freeSlots = append(s.freeSlots, sid)
	}
	// Reverse so slot 0 is handed out first.
	for i, j := 0, len(s.freeSlots)-1; i < j; i, j = i+1, j-1 {
		s.freeSlots[i], s.freeSlots[j] = s.freeSlots[j], s.freeSlots[i]
	}
}

// allocSlot returns a free slot, evicting (and if needed consolidating) an
// unreferenced entry when the transient cache is full. Caller holds
// structMu in parallel mode; a candidate's reference counts cannot rise
// while it is held (new references require either a TLB hit, impossible for
// a page with tlbRef == 0, or the structMu-guarded slow path).
func (s *SSP) allocSlot(at engine.Cycles) int {
	if len(s.freeSlots) > 0 {
		sid := s.freeSlots[len(s.freeSlots)-1]
		s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
		return sid
	}
	// Evict a quiescent entry (§4.1.2: "already consolidated ... and not
	// referenced by any TLB"). Deterministic choice: lowest vpn first.
	var victims []int
	s.forEachMeta(func(vpn int, m *pageMeta) {
		s.lockMeta(m)
		if m.tlbRef == 0 && m.coreRef == 0 {
			victims = append(victims, vpn)
		}
		s.unlockMeta(m)
	})
	if len(victims) == 0 {
		panic("core: SSP cache exhausted with every entry referenced; raise Config.Entries")
	}
	sort.Ints(victims)
	meta := s.lookupMeta(victims[0])
	s.lockMeta(meta)
	committed := meta.committed
	s.unlockMeta(meta)
	if committed != 0 {
		s.consolidate(meta, engine.MaxCycles(at, s.nowCycles()))
	}
	s.releaseEntry(meta, engine.MaxCycles(at, s.nowCycles()))
	sid := s.freeSlots[len(s.freeSlots)-1]
	s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
	return sid
}

// releaseEntry removes a consolidated, unreferenced entry from the
// transient cache, journaling the slot release so recovery never
// resurrects a stale association. Caller holds structMu in parallel mode.
func (s *SSP) releaseEntry(meta *pageMeta, at engine.Cycles) {
	if meta.committed != 0 || meta.tlbRef != 0 || meta.coreRef != 0 {
		panic("core: releasing a live SSP entry")
	}
	sid := meta.slot
	st := slotState{vpn: -1, ppn1: meta.ppn1, ver: s.allocVer()}
	si := s.shardOfSlot(sid)
	s.lockShard(si)
	tid := s.allocTID()
	s.appendRecord(si, -1, wal.Record{TID: tid, Kind: recRelease, Payload: s.journalPayload(sid, st)}, sid, at)
	// Publishing before the record is durable is safe here (unlike the
	// commit path): a release's NVRAM side effects precede its record, so a
	// checkpoint persisting this state early is equivalent to the record
	// having applied.
	s.slotShadow[sid] = st
	// The slot's next tenant inherits a barrier at the release record, so
	// its first commit flushes this shard before its data flushes.
	s.slotBarrier[sid] = journalRef{shard: si, mark: s.journals[si].MarkHere()}
	s.maybeCheckpointShard(si, at)
	s.unlockShard(si)
	s.slotOwner[sid] = nil
	s.deleteMeta(meta.vpn)
	s.freeSlots = append(s.freeSlots, sid)
}

// onTLBEvict is the extended-TLB eviction hook: it drops the page's TLB
// reference count and triggers eager consolidation when the page becomes
// inactive (§3.4). In parallel mode consolidation is deferred to the
// epoch batch instead of running inline (the hook fires inside translate,
// where the journal lock must not be taken).
func (s *SSP) onTLBEvict(core int, vpn int) {
	meta := s.lookupMeta(vpn)
	if meta == nil {
		panic("core: TLB evicted a page without an SSP entry")
	}
	_ = core
	s.lockMeta(meta)
	meta.tlbRef--
	if meta.tlbRef < 0 {
		s.unlockMeta(meta)
		panic("core: negative TLB refcount")
	}
	inactive := meta.tlbRef == 0 && meta.coreRef == 0 && meta.committed != 0 && !s.cfg.LazyConsolidation
	s.unlockMeta(meta)
	if !inactive {
		return
	}
	if s.parallel {
		s.queueConsolidation(vpn)
		return
	}
	s.consolidate(meta, s.nowCycles())
}
