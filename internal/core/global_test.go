package core

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/wal"
)

// TestGlobalCommitSpansShards drives the cross-shard two-phase commit:
// a BeginGlobal transaction writing two pages whose slots belong to
// different journal shards must append one prepare record per participant
// shard plus one coordinator end record, and the committed state must
// survive crash recovery's TID-merge.
func TestGlobalCommitSpansShards(t *testing.T) {
	env, s := shardEnv(t, 2, 2)
	mapPage(env, 0)
	mapPage(env, 1)

	// First touch assigns page 0 → slot 0 (shard 0) and page 1 → slot 1
	// (shard 1), so the global write set spans both shards; core 0's
	// coordinator shard is 0.
	s.BeginGlobal(0, 0)
	s.Store(0, va(0, 1), []byte{0xA1}, 0)
	s.Store(0, va(1, 2), []byte{0xB2}, 0)
	s.Commit(0, 0)

	if env.Stats.GlobalCommits != 1 {
		t.Fatalf("GlobalCommits = %d, want 1", env.Stats.GlobalCommits)
	}
	if env.Stats.PrepareRecords != 2 {
		t.Fatalf("PrepareRecords = %d, want 2", env.Stats.PrepareRecords)
	}
	// Shard 0: prepare for page 0 + coordinator end; shard 1: prepare for
	// page 1.
	if got := env.Stats.JournalShardRecords[0]; got != 2 {
		t.Errorf("shard 0 records = %d, want 2 (prepare + end)", got)
	}
	if got := env.Stats.JournalShardRecords[1]; got != 1 {
		t.Errorf("shard 1 records = %d, want 1 (prepare)", got)
	}

	crashRecover(t, env, s)

	var buf [1]byte
	s.Load(0, va(0, 1), buf[:], 0)
	if buf[0] != 0xA1 {
		t.Errorf("page 0 line 1 = %#x, want 0xA1", buf[0])
	}
	s.Load(0, va(1, 2), buf[:], 0)
	if buf[0] != 0xB2 {
		t.Errorf("page 1 line 2 = %#x, want 0xB2", buf[0])
	}
}

// TestGlobalSingleShardDegradesToFastPath: on a single-shard machine a
// BeginGlobal transaction must commit on the exact PR 3 fast path — plain
// update records with the paper's 24-byte payloads, no prepare or end
// records — so JournalShards=1 reproduces all earlier figure metrics.
func TestGlobalSingleShardDegradesToFastPath(t *testing.T) {
	env, s := shardEnv(t, 2, 1)
	mapPage(env, 0)
	mapPage(env, 1)

	s.BeginGlobal(0, 0)
	s.Store(0, va(0, 1), []byte{0x11}, 0)
	s.Store(0, va(1, 1), []byte{0x22}, 0)
	s.Commit(0, 0)

	if env.Stats.GlobalCommits != 0 || env.Stats.PrepareRecords != 0 {
		t.Fatalf("single-shard global commit used the two-phase path: %d commits, %d prepares",
			env.Stats.GlobalCommits, env.Stats.PrepareRecords)
	}
	recs := wal.Scan(env.Mem, env.Layout.JournalBase[0], env.Layout.Cfg.JournalBytes)
	if len(recs) != 2 {
		t.Fatalf("journal holds %d records, want 2", len(recs))
	}
	for i, r := range recs {
		if r.Kind != recUpdate && r.Kind != recUpdateEnd {
			t.Errorf("record %d kind = %d, want update/update-end", i, r.Kind)
		}
		if len(r.Payload) != journalPayloadBytes {
			t.Errorf("record %d payload = %dB, want the paper's %dB", i, len(r.Payload), journalPayloadBytes)
		}
	}

	crashRecover(t, env, s)
	var buf [1]byte
	s.Load(0, va(0, 1), buf[:], 0)
	if buf[0] != 0x11 {
		t.Errorf("page 0 = %#x, want 0x11", buf[0])
	}
}

// TestGlobalTornEndRollsBackAllShards is the distributed all-or-nothing
// contract plus the interleaving hazard of the issue's test checklist: a
// global transaction whose coordinator end record is torn must roll back in
// EVERY participant shard, while an unrelated single-shard batch with a
// higher TID — appended after the global's prepares — must survive
// untouched.
func TestGlobalTornEndRollsBackAllShards(t *testing.T) {
	env, s := shardEnv(t, 2, 2)
	for vpn := 0; vpn < 3; vpn++ {
		mapPage(env, vpn)
	}

	// Baseline commits: page 0 → slot 0 (shard 0), page 1 → slot 1
	// (shard 1), page 2 → slot 2 (shard 0).
	s.Begin(0, 0)
	s.Store(0, va(0, 0), []byte{0xA0}, 0)
	s.Commit(0, 0)
	s.Begin(1, 0)
	s.Store(1, va(1, 0), []byte{0xB0}, 0)
	s.Commit(1, 0)

	// Global transaction from core 1 (coordinator shard 1): prepares land
	// in shard 0 (page 0) and shard 1 (page 1), end in shard 1.
	s.BeginGlobal(1, 0)
	s.Store(1, va(0, 1), []byte{0xA1}, 0)
	s.Store(1, va(1, 1), []byte{0xB1}, 0)
	s.Commit(1, 0)
	if env.Stats.GlobalCommits != 1 {
		t.Fatalf("setup: GlobalCommits = %d, want 1", env.Stats.GlobalCommits)
	}

	// An unrelated single-shard commit with a higher TID, into shard 0.
	s.Begin(0, 0)
	s.Store(0, va(2, 0), []byte{0xC0}, 0)
	s.Commit(0, 0)

	// Tear the coordinator end record: it is the last record in shard 1's
	// stream (header 16 + 4-byte payload, 8-aligned → 24 bytes). Flipping a
	// payload byte fails its checksum, so the scan drops it — exactly what
	// a crash between the prepare flushes and the end flush leaves behind.
	endOff := s.journals[1].Used() - 24
	addr := env.Layout.JournalBase[1] + memsim.PAddr(endOff) + wal.HeaderBytes
	var b [1]byte
	env.Mem.Peek(addr, b[:])
	b[0] ^= 0xFF
	env.Mem.Poke(addr, b[:])

	rolledBefore := env.Stats.RolledBackTxns
	crashRecover(t, env, s)

	if env.Stats.RolledBackTxns != rolledBefore+1 {
		t.Errorf("RolledBackTxns rose by %d, want 1 (the torn global, counted once across shards)",
			env.Stats.RolledBackTxns-rolledBefore)
	}
	var buf [1]byte
	// The global transaction rolled back everywhere…
	s.Load(0, va(0, 1), buf[:], 0)
	if buf[0] != 0 {
		t.Errorf("page 0 line 1 = %#x, want 0 (global write must roll back)", buf[0])
	}
	s.Load(0, va(1, 1), buf[:], 0)
	if buf[0] != 0 {
		t.Errorf("page 1 line 1 = %#x, want 0 (global write must roll back)", buf[0])
	}
	// …the baselines survived…
	s.Load(0, va(0, 0), buf[:], 0)
	if buf[0] != 0xA0 {
		t.Errorf("page 0 baseline = %#x, want 0xA0", buf[0])
	}
	s.Load(0, va(1, 0), buf[:], 0)
	if buf[0] != 0xB0 {
		t.Errorf("page 1 baseline = %#x, want 0xB0", buf[0])
	}
	// …and the unrelated higher-TID single-shard batch was not dropped.
	s.Load(0, va(2, 0), buf[:], 0)
	if buf[0] != 0xC0 {
		t.Errorf("page 2 = %#x, want 0xC0 (higher-TID local batch must survive a torn global)", buf[0])
	}
}

// TestGlobalSurvivesCoordinatorCheckpoint is the checkpoint-interleaving
// hazard of the two-phase protocol: after a global commit, the COORDINATOR
// shard checkpoints (truncating the end record) and its ring is then
// overwritten by a later commit, while a participant shard still holds the
// global's prepare records. Recovery must NOT treat those orphaned prepares
// as a torn transaction — the coordinator checkpoint persisted the
// transaction's slots (all participants) to the slot array first, so the
// version guard supersedes them and the committed state survives intact in
// every shard.
func TestGlobalSurvivesCoordinatorCheckpoint(t *testing.T) {
	env, s := shardEnv(t, 2, 2)
	mapPage(env, 0) // slot 0 → shard 0
	mapPage(env, 1) // slot 1 → shard 1

	// Global from core 0: coordinator shard 0, prepares in shards 0 and 1,
	// end record in shard 0.
	s.BeginGlobal(0, 0)
	s.Store(0, va(0, 1), []byte{0xA1}, 0)
	s.Store(0, va(1, 1), []byte{0xB1}, 0)
	s.Commit(0, 0)
	if env.Stats.GlobalCommits != 1 {
		t.Fatalf("setup: GlobalCommits = %d, want 1", env.Stats.GlobalCommits)
	}

	// Coordinator checkpoint truncates shard 0's ring — end record
	// included. The fix under test: it must also have persisted slot 1
	// (the participant's) to the slot array, not just its own dirty slots.
	s.checkpointShard(0, 0)

	// A later local commit overwrites shard 0's ring from offset zero, so
	// a post-crash scan can no longer reach the old end record.
	s.Begin(0, 0)
	s.Store(0, va(0, 2), []byte{0xA2}, 0)
	s.Commit(0, 0)

	rolledBefore := env.Stats.RolledBackTxns
	crashRecover(t, env, s)

	if env.Stats.RolledBackTxns != rolledBefore {
		t.Errorf("RolledBackTxns rose by %d; a committed, checkpointed global must not count as torn",
			env.Stats.RolledBackTxns-rolledBefore)
	}
	var buf [1]byte
	for _, c := range []struct {
		vpn, line int
		want      byte
	}{
		{0, 1, 0xA1}, {0, 2, 0xA2}, // coordinator-shard page: global + later local
		{1, 1, 0xB1}, // participant-shard page: the half a torn recovery would lose
	} {
		s.Load(0, va(c.vpn, c.line), buf[:], 0)
		if buf[0] != c.want {
			t.Errorf("page %d line %d = %#x, want %#x (global transaction torn by coordinator checkpoint)",
				c.vpn, c.line, buf[0], c.want)
		}
	}
}

// TestGlobalVersionGuardAfterParticipantCheckpoint: a sealed global
// transaction's stale prepare record, still sitting in a participant
// shard's ring, must not regress a slot that another shard's checkpoint
// already advanced past it — the issue's version-guard scenario.
func TestGlobalVersionGuardAfterParticipantCheckpoint(t *testing.T) {
	env, s := shardEnv(t, 3, 3)
	mapPage(env, 0) // P → slot 0 → shard 0
	mapPage(env, 1) // Q → slot 1 → shard 1

	// Baselines establish the slot assignment.
	s.Begin(0, 0)
	s.Store(0, va(0, 0), []byte{0xA0}, 0)
	s.Commit(0, 0)
	s.Begin(1, 0)
	s.Store(1, va(1, 0), []byte{0xB0}, 0)
	s.Commit(1, 0)

	// Global from core 2 (coordinator shard 2): prepare for P in shard 0,
	// stale-to-be prepare for Q in shard 1, end in shard 2 — the end
	// SURVIVES the later checkpoint, so the stale prepare stays applicable
	// and only the version guard can block it.
	s.BeginGlobal(2, 0)
	s.Store(2, va(0, 1), []byte{0xA1}, 0)
	s.Store(2, va(1, 1), []byte{0xB1}, 0)
	s.Commit(2, 0)

	// A newer single-shard update to Q from core 0 lands in shard 0.
	s.Begin(0, 0)
	s.Store(0, va(1, 2), []byte{0xB2}, 0)
	s.Commit(0, 0)

	metaQ := s.metaOf(1)
	wantCommitted := metaQ.committed
	wantVer := s.slotShadow[metaQ.slot].ver

	// Checkpoint shard 0: the persistent slot array now carries Q's newest
	// state (and P's); shard 0's ring truncates. Shard 1 still durably
	// holds the global's older prepare for Q, and shard 2 its end record.
	s.checkpointShard(0, 0)

	crashRecover(t, env, s)

	sid := s.metaOf(1).slot
	if s.slotShadow[sid].committed != wantCommitted {
		t.Errorf("recovered Q committed bitmap %#x, want %#x (stale global prepare regressed the checkpoint)",
			s.slotShadow[sid].committed, wantCommitted)
	}
	if s.slotShadow[sid].ver != wantVer {
		t.Errorf("recovered Q slot version %d, want %d", s.slotShadow[sid].ver, wantVer)
	}
	var buf [1]byte
	for _, c := range []struct {
		vpn, line int
		want      byte
	}{
		{0, 0, 0xA0}, {0, 1, 0xA1}, // P: baseline + global write
		{1, 0, 0xB0}, {1, 1, 0xB1}, {1, 2, 0xB2}, // Q: baseline + global + newer local
	} {
		s.Load(0, va(c.vpn, c.line), buf[:], 0)
		if buf[0] != c.want {
			t.Errorf("page %d line %d = %#x, want %#x", c.vpn, c.line, buf[0], c.want)
		}
	}
}
