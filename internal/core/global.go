package core

import (
	"slices"
	"sort"

	"repro/internal/engine"
	"repro/internal/wal"
)

// Cross-shard (global) transactions. A section opened with BeginGlobal may
// write pages whose slots belong to different journal shards — the
// distributed-commit workload class the per-core sharded journal had never
// been exercised by. Its commit replaces the single-shard batch with a
// two-phase protocol:
//
//	Phase 1 (prepare): for every participant shard, in ascending shard
//	  order, append one recPrepare record per write-set page owned by that
//	  shard (payload identical to recUpdate, including the slot update
//	  version); then flush every participant shard, issued concurrently in
//	  simulated time — the independent rings absorb their flushes in
//	  parallel, so the fence charges the max, not the sum, of the shard
//	  flush latencies. After this phase every participant holds the
//	  transaction's updates durably — but none may apply yet.
//
//	Phase 2 (decide): append a single recGlobalEnd record carrying the
//	  global TID to the coordinator shard — the committing core's own
//	  shard, the shard that "owns" the TID — and flush it. This one line
//	  write is the commit point.
//
// Publication of the slot-shadow states (and hence checkpoint visibility)
// happens only after the end record is durable, exactly like the fast
// path's publish-after-flush rule.
//
// Recovery (recover.go) TID-merges the shards as before; a prepare record
// applies iff its TID's coordinator end record is durable. A crash anywhere
// before the end record therefore rolls back every participant shard
// (all-or-nothing across arenas), a crash after it redoes all of them, and
// the per-slot update version still guards replay against states that a
// participant shard's checkpoint already advanced past.
//
// Locking: all involved shard locks (participants + coordinator) are taken
// in ascending shard order before the TID draw and held through the end
// flush, so every stream stays TID-monotonic and global commits cannot
// deadlock against each other or against single-shard commits (which take
// exactly one of these locks).

// BeginGlobal implements txn.GlobalBackend: Begin, plus marking the section
// as a cross-shard transaction. On a single-shard machine — or when the
// write set turns out to fit one shard — the commit degrades to the exact
// single-shard fast path, so the flag costs nothing.
func (s *SSP) BeginGlobal(core int, at engine.Cycles) engine.Cycles {
	t := s.Begin(core, at)
	s.globalTxn[core] = true
	return t
}

// participantShards returns the sorted distinct journal shards owning the
// write-set pages' slots. Slot assignment is immutable while the pages are
// core-referenced, so no locks are needed.
func (s *SSP) participantShards(pages []int) []int {
	seen := map[int]bool{}
	var shards []int
	for _, vpn := range pages {
		si := s.shardOfSlot(s.lookupMeta(vpn).slot)
		if !seen[si] {
			seen[si] = true
			shards = append(shards, si)
		}
	}
	sort.Ints(shards)
	return shards
}

// commitGlobal is the two-phase journal leg of a cross-shard commit.
type commitGlobal struct {
	s      *SSP
	shards []int // participant shards, ascending
}

func (g *commitGlobal) journalAndPublish(core int, pages []int, start, fence engine.Cycles) engine.Cycles {
	s := g.s
	// Prepare records carry no commit point, so their appends and flushes
	// overlap the data-flush fence in simulated time: the controller may
	// issue them while the write-set clwbs are still in flight, because
	// only the coordinator End — which waits for both — orders the
	// transaction. (Recovery of prepares without a durable End rolls back,
	// so a crash in the overlap window is the ordinary phase-1 crash.)
	t := start
	coord := s.shardFor(core)

	// Group the write set by owning shard (pages stay vpn-sorted within a
	// group, so serial runs append deterministically).
	groups := make(map[int][]int, len(g.shards))
	for _, vpn := range pages {
		si := s.shardOfSlot(s.lookupMeta(vpn).slot)
		groups[si] = append(groups[si], vpn)
	}

	// Lock every involved shard in ascending order, then draw the TID.
	locked := g.shards
	if !slices.Contains(locked, coord) {
		locked = append(append([]int{}, g.shards...), coord)
		sort.Ints(locked)
	}
	for _, si := range locked {
		s.lockShard(si)
	}
	tid := s.allocTID()

	// Phase 1: prepare records appended into every participant shard first
	// (ascending shard order, under the already-held locks), then the
	// per-shard flushes issued concurrently in simulated time. The shards
	// are independent rings in distinct NVRAM regions, so the fence charges
	// the max — not the sum — of the shard flush completions; the old
	// serialised fan-out was a modelling artefact, not hardware.
	var mask uint32
	pubs := make([]slotPub, 0, len(pages))
	for _, si := range g.shards {
		mask |= 1 << uint(si)
		for _, vpn := range groups[si] {
			pub := s.snapshotPage(core, vpn)
			t = s.appendRecord(si, core, wal.Record{TID: tid, Kind: recPrepare, Payload: s.journalPayload(pub.sid, pub.st)}, pub.sid, t)
			s.noteUpdate(pub.meta, si)
			s.env.StatsFor(core).PrepareRecords++
			pubs = append(pubs, pub)
		}
	}
	prepDone := t
	for _, si := range g.shards {
		if done := s.flushShard(si, core, t); done > prepDone {
			prepDone = done
		}
	}
	// The commit point waits for both legs: every prepare durable AND
	// every write-set line's data flush landed.
	t = engine.MaxCycles(prepDone, fence)
	// flushData charged the full fence wait to CommitBarrierWait, but the
	// part hidden under the concurrently running prepare leg never blocked
	// the core — only the fence tail past prepDone does. Refund the
	// overlap so the counter keeps meaning "cycles blocked on the data
	// barrier".
	if hidden := min(fence, prepDone) - start; hidden > 0 {
		s.env.StatsFor(core).CommitBarrierWait -= uint64(hidden)
	}

	// Phase 2: the coordinator end record is the commit point.
	t = s.journals[coord].Append(wal.Record{TID: tid, Kind: recGlobalEnd, Payload: encodeGlobalEndPayload(mask)}, t)
	s.markUnsealed(coord)
	t = s.flushShard(coord, core, t)
	s.env.StatsFor(core).JournalRecords++
	s.env.Stats.JournalShardRecords[coord]++
	s.env.StatsFor(core).GlobalCommits++

	// Publish only now that the whole distributed batch is durable, then
	// note which rings passed their high-water mark while locked. The
	// coordinator also remembers this transaction's slots: its end record
	// is what keeps the participant-shard prepares applicable, so a
	// coordinator checkpoint must persist these slots before truncating it
	// (see checkpointShard).
	s.publishSlots(pubs)
	for _, p := range pubs {
		s.pendingGlobalSlots[coord][p.sid] = struct{}{}
	}
	var need []int
	for _, si := range locked {
		if s.overHighWater(si) {
			need = append(need, si)
		}
	}
	for i := len(locked) - 1; i >= 0; i-- {
		s.unlockShard(locked[i])
	}
	if len(need) > 0 && s.parallel {
		// Same re-acquisition dance as the fast path: structMu → shard
		// lock, rechecking the trigger under the locks.
		s.lockStruct()
		for _, si := range need {
			s.lockShard(si)
			s.maybeCheckpointShard(si, t)
			s.unlockShard(si)
		}
		s.unlockStruct()
	}
	return t
}

// relaxedGlobalCommit is CommitRelaxed's cross-shard journal leg. Phase 1
// is EAGER: the prepare records are appended and their participant shards
// sealed and flushed immediately (hardening any open epochs there along the
// way) — prepares carry no commit point, so there is nothing to relax, and
// eager sealing keeps the wall-order invariant "coordinator End durable ⇒
// its prepares durable" without any cross-shard hardening dependency.
// Phase 2 is DEFERRED: the coordinator End record — the commit point — is
// buffered into the coordinator's open epoch without a flush, and the whole
// distributed batch's slot publication waits for that epoch to harden. A
// crash before the harden finds durable prepares with no durable End and
// rolls the transaction back on every shard (the ordinary phase-1 crash,
// acknowledged-but-lost); a crash after redoes all of them — never a tear.
//
// The deferral leaves one cross-shard obligation: until the End hardens, a
// PARTICIPANT shard must not checkpoint — its prepares would be truncated
// away (with their pre-transaction slot states, publication being still
// pending) while the End could yet harden, leaving a half-applied global
// transaction for recovery. Each participant therefore takes a prepHold,
// released when the coordinator's epoch hardens; checkpointShard defers
// while holds are outstanding (the high-water trigger simply refires).
func (s *SSP) relaxedGlobalCommit(core int, shards []int, pages []int, start, fence engine.Cycles) engine.Cycles {
	t := start
	coord := s.shardFor(core)

	groups := make(map[int][]int, len(shards))
	for _, vpn := range pages {
		si := s.shardOfSlot(s.lookupMeta(vpn).slot)
		groups[si] = append(groups[si], vpn)
	}

	locked := shards
	if !slices.Contains(locked, coord) {
		locked = append(append([]int{}, shards...), coord)
		sort.Ints(locked)
	}
	for _, si := range locked {
		s.lockShard(si)
	}
	tid := s.allocTID()

	// Phase 1: prepares into every participant, then the eager per-shard
	// seals issued concurrently in simulated time (max, not sum — the same
	// rule as the synchronous protocol's prepare fan-out).
	var mask uint32
	pubs := make([]slotPub, 0, len(pages))
	for _, si := range shards {
		mask |= 1 << uint(si)
		for _, vpn := range groups[si] {
			pub := s.snapshotPage(core, vpn)
			t = s.appendRecord(si, core, wal.Record{TID: tid, Kind: recPrepare, Payload: s.journalPayload(pub.sid, pub.st)}, pub.sid, t)
			s.noteUpdate(pub.meta, si)
			s.env.StatsFor(core).PrepareRecords++
			pubs = append(pubs, pub)
		}
	}
	prepDone := t
	for _, si := range shards {
		if done := s.flushShard(si, core, t); done > prepDone {
			prepDone = done
		}
	}

	// Phase 2, deferred: buffer the End record into the coordinator's open
	// epoch. The acknowledgement waits only for the buffered append; the
	// epoch's fence absorbs both the data flushes and the prepare seals, so
	// the eventual harden — the real commit point — lands after every piece
	// of the transaction is durable in simulated time too.
	t = s.journals[coord].Append(wal.Record{TID: tid, Kind: recGlobalEnd, Payload: encodeGlobalEndPayload(mask)}, t)
	s.markUnsealed(coord)
	s.env.StatsFor(core).JournalRecords++
	s.env.Stats.JournalShardRecords[coord]++
	s.env.StatsFor(core).GlobalCommits++
	s.env.StatsFor(core).RelaxedCommits++

	ep := &s.epochs[coord]
	if !ep.open {
		ep.open = true
		ep.openAt = start
	}
	if f := engine.MaxCycles(fence, prepDone); f > ep.fence {
		ep.fence = f
	}
	ep.pubs = append(ep.pubs, pubs...)
	for _, si := range shards {
		if si != coord {
			s.prepHolds[si].Add(1)
			ep.holds = append(ep.holds, si)
		}
	}
	// The coordinator's ring holds (or will hold, once hardened) the End
	// that keeps the other shards' prepares applicable: its checkpoint must
	// persist these slots before truncating it, exactly as in the
	// synchronous protocol.
	for _, p := range pubs {
		s.pendingGlobalSlots[coord][p.sid] = struct{}{}
	}
	if start >= ep.openAt+s.cfg.DurabilityEpoch {
		t = s.hardenShardLocked(coord, core, t)
	}

	var need []int
	for _, si := range locked {
		if s.overHighWater(si) {
			need = append(need, si)
		}
	}
	for i := len(locked) - 1; i >= 0; i-- {
		s.unlockShard(locked[i])
	}
	if len(need) > 0 && s.parallel {
		s.lockStruct()
		for _, si := range need {
			s.lockShard(si)
			s.maybeCheckpointShard(si, t)
			s.unlockShard(si)
		}
		s.unlockStruct()
	}
	return t
}
