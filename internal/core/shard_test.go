package core

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/tlbsim"
	"repro/internal/txn"
	"repro/internal/vm"
)

// shardEnv is testEnv with a multi-shard metadata journal.
func shardEnv(t *testing.T, cores, shards int) (*txn.Env, *SSP) {
	t.Helper()
	st := &stats.Stats{}
	mcfg := memsim.DefaultConfig()
	mcfg.DRAMBytes = 1 << 20
	mcfg.NVRAMBytes = 24 << 20
	mem := memsim.New(mcfg, st)
	lcfg := vm.DefaultLayoutConfig(cores)
	lcfg.MaxHeapPages = 512
	lcfg.SSPSlots = 64
	lcfg.JournalBytes = 8 << 10
	lcfg.JournalShards = shards
	lcfg.LogBytes = 32 << 10
	layout := vm.NewLayout(mcfg, lcfg)
	env := &txn.Env{
		Mem:           mem,
		Caches:        cachesim.New(cachesim.DefaultConfig(cores), mem, st),
		PT:            vm.NewPageTable(mem, layout),
		Frames:        vm.NewFrameAlloc(layout),
		Layout:        layout,
		Stats:         st,
		BarrierCycles: 30,
	}
	for c := 0; c < cores; c++ {
		env.TLBs = append(env.TLBs, tlbsim.New(8, st))
	}
	vm.Format(mem, layout)
	cfg := DefaultConfig()
	cfg.Entries = 64
	cfg.ResidentEntries = 64
	s := NewSSP(env, cfg, true)
	return env, s
}

// crashRecover drops volatile hardware state and runs SSP recovery.
func crashRecover(t *testing.T, env *txn.Env, s *SSP) {
	t.Helper()
	s.Crash()
	env.Caches.DropAll()
	for _, tl := range env.TLBs {
		tl.Drop()
	}
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
}

// TestShardRoutingByCore asserts the commit-path shard assignment: core i
// appends its batches to journal shard i mod shards.
func TestShardRoutingByCore(t *testing.T) {
	env, s := shardEnv(t, 3, 2)
	mapPage(env, 0)
	mapPage(env, 1)
	for core := 0; core < 3; core++ {
		s.Begin(core, 0)
		s.Store(core, va(core%2, core), []byte{byte(core + 1)}, 0)
		s.Commit(core, 0)
	}
	// Cores 0 and 2 hit shard 0, core 1 hit shard 1.
	if got := env.Stats.JournalShardRecords[0]; got != 2 {
		t.Errorf("shard 0 records = %d, want 2", got)
	}
	if got := env.Stats.JournalShardRecords[1]; got != 1 {
		t.Errorf("shard 1 records = %d, want 1", got)
	}
	if env.Stats.JournalRecords != 3 {
		t.Errorf("total journal records = %d, want 3", env.Stats.JournalRecords)
	}
}

// TestCrossShardCheckpointDoesNotRegress is the cross-shard recovery
// ordering hazard the slot update version exists for: a slot is updated
// through shard 1 (older) and then shard 0 (newer); shard 0 checkpoints —
// writing the newest state to the persistent slot array and truncating its
// own ring — while shard 1's ring still holds the older record. Recovery's
// TID-merge must not let that surviving stale record regress the
// checkpointed slot.
func TestCrossShardCheckpointDoesNotRegress(t *testing.T) {
	env, s := shardEnv(t, 2, 2)
	mapPage(env, 0)

	// Core 1 commits line 1 of page 0 → record in shard 1.
	s.Begin(1, 0)
	s.Store(1, va(0, 1), []byte{0x11}, 0)
	s.Commit(1, 0)
	// Core 0 commits line 2 of the same page → newer record in shard 0.
	s.Begin(0, 0)
	s.Store(0, va(0, 2), []byte{0x22}, 0)
	s.Commit(0, 0)

	meta := s.metaOf(0)
	wantCommitted := meta.committed
	wantVer := s.slotShadow[meta.slot].ver
	if env.Stats.JournalShardRecords[0] != 1 || env.Stats.JournalShardRecords[1] != 1 {
		t.Fatalf("records not split across shards: %d/%d",
			env.Stats.JournalShardRecords[0], env.Stats.JournalShardRecords[1])
	}

	// Checkpoint shard 0 only: the slot array now carries the newer state;
	// shard 1's older record is still durable in its ring.
	s.checkpointShard(0, 0)

	crashRecover(t, env, s)

	sid := s.metaOf(0).slot
	if s.slotShadow[sid].committed != wantCommitted {
		t.Errorf("recovered committed bitmap %#x, want %#x (stale shard-1 record regressed the checkpoint)",
			s.slotShadow[sid].committed, wantCommitted)
	}
	if s.slotShadow[sid].ver != wantVer {
		t.Errorf("recovered slot version %d, want %d", s.slotShadow[sid].ver, wantVer)
	}
	// Both committed lines are intact.
	var buf [1]byte
	s.Load(0, va(0, 1), buf[:], 0)
	if buf[0] != 0x11 {
		t.Errorf("line 1 lost: %#x", buf[0])
	}
	s.Load(0, va(0, 2), buf[:], 0)
	if buf[0] != 0x22 {
		t.Errorf("line 2 lost: %#x", buf[0])
	}
}

// TestShardRecoveryMergesTIDOrder interleaves commits from two cores across
// two shards and checks that recovery reproduces exactly the final state —
// i.e. the merged TID order is the serial commit order.
func TestShardRecoveryMergesTIDOrder(t *testing.T) {
	env, s := shardEnv(t, 2, 2)
	for vpn := 0; vpn < 4; vpn++ {
		mapPage(env, vpn)
	}
	// Ping-pong commits over shared pages: each commit's batch lands in the
	// committing core's shard, TIDs strictly interleaved across shards.
	for i := 0; i < 12; i++ {
		core := i % 2
		vpn := i % 4
		s.Begin(core, 0)
		s.Store(core, va(vpn, i%64), []byte{byte(i + 1)}, 0)
		s.Commit(core, 0)
	}
	type pageState struct {
		committed uint64
		ver       uint32
	}
	want := map[int]pageState{}
	for vpn := 0; vpn < 4; vpn++ {
		m := s.metaOf(vpn)
		want[vpn] = pageState{committed: m.committed, ver: s.slotShadow[m.slot].ver}
	}

	crashRecover(t, env, s)

	for vpn := 0; vpn < 4; vpn++ {
		m := s.metaOf(vpn)
		if m == nil {
			t.Fatalf("page %d lost its slot after recovery", vpn)
		}
		got := pageState{committed: s.slotShadow[m.slot].committed, ver: s.slotShadow[m.slot].ver}
		if got != want[vpn] {
			t.Errorf("page %d: recovered %+v, want %+v", vpn, got, want[vpn])
		}
	}
	for i := 12 - 4; i < 12; i++ { // last write to each page wins
		var buf [1]byte
		s.Load(0, va(i%4, i%64), buf[:], 0)
		if buf[0] != byte(i+1) {
			t.Errorf("page %d line %d: %d, want %d", i%4, i%64, buf[0], i+1)
		}
	}
}
