package core

import (
	"testing"

	"repro/internal/engine"
)

// Tests for the relaxed-durability epoch engine's accounting identities.
// The crash classes proper (every trap point, cross-shard epochs) are swept
// by internal/crashsweep; these pin the deterministic counter contracts.

// TestGroupCommitAccountingIdentity pins the group-path identity on the
// serial machine: every commit that reaches the group-commit journal leg is
// counted exactly once, as a batch leader or as a follower, so batches +
// followers equals the group-path commits — total commits minus the
// empty-write-set ones, which skip the journal leg entirely.
func TestGroupCommitAccountingIdentity(t *testing.T) {
	env, s := testEnv(t, 2)
	s.cfg.GroupCommitWindow = 4096
	mapPage(env, 0)
	mapPage(env, 1)

	const withWrites, empty = 8, 3
	for i := 0; i < withWrites; i++ {
		core := i % 2
		s.Begin(core, 0)
		s.Store(core, va(core, i), []byte{byte(i + 1)}, 0)
		s.Commit(core, 0)
	}
	for i := 0; i < empty; i++ {
		s.Begin(0, 0)
		s.Commit(0, 0)
	}

	st := env.Stats
	if st.Commits != withWrites+empty {
		t.Fatalf("Commits = %d, want %d", st.Commits, withWrites+empty)
	}
	if got := st.GroupCommitBatches + st.GroupCommitFollowers; got != withWrites {
		t.Errorf("batches %d + followers %d = %d, want %d group-path commits",
			st.GroupCommitBatches, st.GroupCommitFollowers, got, withWrites)
	}
}

// TestEpochAccountingIdentity drives the relaxed path through a Sync and a
// crash and checks the loss accounting: acknowledged transactions before
// the Sync all survive, the unhardened suffix is lost whole and in order
// (a relaxed loss is always a suffix of one core's ack order), and the
// counters bound each other as documented on stats.Stats.
func TestEpochAccountingIdentity(t *testing.T) {
	env, s := testEnv(t, 1)
	s.cfg.DurabilityEpoch = 1 << 20 // far beyond the script: only Sync hardens
	mapPage(env, 0)

	const synced, unsynced = 5, 7
	total := synced + unsynced
	at := engine.Cycles(0)
	for i := 0; i < total; i++ {
		s.Begin(0, at)
		// Two lines per transaction so a torn survivor is detectable.
		s.Store(0, va(0, 2*i), []byte{byte(i + 1)}, at)
		s.Store(0, va(0, 2*i+1), []byte{byte(i + 1)}, at)
		at = s.CommitRelaxed(0, at)
		if i == synced-1 {
			at = s.Sync(0, at)
		}
	}
	if got := env.Stats.RelaxedCommits; got != uint64(total) {
		t.Fatalf("RelaxedCommits = %d, want %d", got, total)
	}
	if env.Stats.HardenedEpochs == 0 {
		t.Fatal("Sync hardened no epoch")
	}

	crashRecover(t, env, s)

	survivors := 0
	prefix := true
	for i := 0; i < total; i++ {
		var a, b [1]byte
		s.Load(0, va(0, 2*i), a[:], 0)
		s.Load(0, va(0, 2*i+1), b[:], 0)
		switch {
		case a[0] == byte(i+1) && b[0] == byte(i+1):
			if !prefix {
				t.Fatalf("transaction %d survived after an earlier loss: relaxed losses must be a suffix", i)
			}
			survivors++
		case a[0] == 0 && b[0] == 0:
			prefix = false
		default:
			t.Fatalf("transaction %d torn: lines %#x/%#x", i, a[0], b[0])
		}
	}
	if survivors < synced {
		t.Fatalf("only %d survivors; the %d transactions behind the Sync must all survive", survivors, synced)
	}
	st := env.Stats
	if uint64(survivors)+st.LostEpochTxns > uint64(total) {
		t.Errorf("survivors %d + LostEpochTxns %d exceed %d acknowledged", survivors, st.LostEpochTxns, total)
	}
	if st.DroppedEpochRecords < st.LostEpochTxns {
		t.Errorf("DroppedEpochRecords %d < LostEpochTxns %d", st.DroppedEpochRecords, st.LostEpochTxns)
	}
	t.Logf("%d acknowledged: %d survived, %d lost (%d with durable trace)",
		total, survivors, total-survivors, st.LostEpochTxns)
}

// TestHardenIdleDrainsOpenEpoch pins the idle-hardener contract: a shard
// whose core went idle right after a relaxed commit holds an open dirty
// epoch indefinitely (the age bound is only checked when the NEXT commit
// arrives); HardenIdle closes it without a Sync, making the acknowledged
// data crash-durable, and a second call finds nothing to do.
func TestHardenIdleDrainsOpenEpoch(t *testing.T) {
	env, s := testEnv(t, 1)
	s.cfg.DurabilityEpoch = 1 << 20 // no commit-path hardening in this script
	mapPage(env, 0)

	at := engine.Cycles(0)
	s.Begin(0, at)
	s.Store(0, va(0, 0), []byte{0xAB}, at)
	at = s.CommitRelaxed(0, at)

	done, hardened := s.HardenIdle(0, at)
	if !hardened {
		t.Fatal("HardenIdle found no open dirty epoch after a relaxed commit")
	}
	if done < at {
		t.Errorf("HardenIdle completion %d precedes its start %d", done, at)
	}
	if _, again := s.HardenIdle(0, done); again {
		t.Error("second HardenIdle hardened an already-clean shard")
	}
	if env.Stats.HardenedEpochs == 0 {
		t.Fatal("HardenIdle hardened no epoch in the stats")
	}

	crashRecover(t, env, s)
	var b [1]byte
	s.Load(0, va(0, 0), b[:], 0)
	if b[0] != 0xAB {
		t.Fatalf("idle-hardened commit lost across crash: %#x", b[0])
	}
}

// TestHardenIdleRequiresEpochMode: with strict durability (DurabilityEpoch
// 0) every commit is already durable at its fence, so HardenIdle must be a
// no-op.
func TestHardenIdleRequiresEpochMode(t *testing.T) {
	env, s := testEnv(t, 1)
	mapPage(env, 0)
	s.Begin(0, 0)
	s.Store(0, va(0, 0), []byte{1}, 0)
	s.Commit(0, 0)
	if _, hardened := s.HardenIdle(0, 0); hardened {
		t.Error("HardenIdle reported work in strict-durability mode")
	}
}

// TestEpochAgeBoundHardens pins the epoch-length contract itself: with no
// Sync at all, an epoch hardens once its age reaches DurabilityEpoch, so a
// long-running relaxed workload still becomes durable in bounded lag.
func TestEpochAgeBoundHardens(t *testing.T) {
	env, s := testEnv(t, 1)
	s.cfg.DurabilityEpoch = 2000
	mapPage(env, 0)

	at := engine.Cycles(0)
	for i := 0; i < 40; i++ {
		s.Begin(0, at)
		s.Store(0, va(0, i%64), []byte{byte(i + 1)}, at)
		at = s.CommitRelaxed(0, at)
	}
	if env.Stats.HardenedEpochs == 0 {
		t.Fatalf("no epoch hardened over %d cycles with a 2000-cycle bound", at)
	}
	if env.Stats.EpochHardenLag == 0 {
		t.Error("hardened epochs accumulated no lag")
	}
}
